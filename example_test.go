package weipipe_test

import (
	"fmt"

	"weipipe"
)

// ExampleRunCluster trains a tiny model with WeiPipe-Interleave on two
// in-process workers and verifies the run produced a loss.
func ExampleRunCluster() {
	cfg := weipipe.Config{Vocab: 16, Hidden: 8, Layers: 2, Heads: 2, MaxSeq: 8, Seed: 1}
	batches := weipipe.Microbatches(1, 4, 2, cfg.Vocab, cfg.MaxSeq)
	res, err := weipipe.RunCluster(weipipe.WeiPipeInterleave, 2, cfg, weipipe.DefaultOptions(1e-3), 1,
		func(int) []weipipe.Batch { return batches })
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("iterations: %d, weights match model: %v, loss > 0: %v\n",
		len(res.Losses), len(res.Weights) == weipipe.BuildModel(cfg).NumParams(), res.Losses[0] > 0)
	// Output: iterations: 1, weights match model: true, loss > 0: true
}

// ExampleSimulate asks the performance model the paper's headline question:
// does WeiPipe beat 1F1B at long context on an Ethernet-joined cluster?
func ExampleSimulate() {
	w := weipipe.Workload{H: 2048, S: 16384, G: 4, L: 32, N: 64, P: 16, Recompute: true}
	top := weipipe.NVLinkTwoClusters(16)
	wp, _ := weipipe.Simulate(weipipe.WeiPipeInterleave, w, top)
	base, _ := weipipe.Simulate(weipipe.OneFOneB, w, top)
	fmt.Printf("weipipe wins: %v\n", wp.TokensPerSecPerGPU > base.TokensPerSecPerGPU)
	// Output: weipipe wins: true
}

// ExampleGenerate samples greedily from an (untrained) model — the decode
// path is deterministic.
func ExampleGenerate() {
	m := weipipe.BuildModel(weipipe.Config{Vocab: 16, Hidden: 8, Layers: 2, Heads: 2, MaxSeq: 8, Seed: 1})
	a, _ := weipipe.Generate(m, []int{1, 2}, 3, weipipe.GenOptions{})
	b, _ := weipipe.Generate(m, []int{1, 2}, 3, weipipe.GenOptions{})
	fmt.Printf("len: %d, deterministic: %v\n", len(a), fmt.Sprint(a) == fmt.Sprint(b))
	// Output: len: 5, deterministic: true
}
