package weipipe

import (
	"math"
	"sync"
	"testing"
)

func TestPublicAPITrainsAndMatchesSerial(t *testing.T) {
	cfg := Config{Vocab: 13, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 6, Seed: 7}
	opts := DefaultOptions(0.01)
	opts.Adam.Eps = 1e-5
	batches := Microbatches(3, 4, 2, 13, 6)
	fn := func(int) []Batch { return batches }

	ref, err := RunCluster(Serial, 1, cfg, opts, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCluster(WeiPipeInterleave, 2, cfg, opts, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Losses[0]-ref.Losses[0]) > 1e-4 {
		t.Fatalf("loss %v vs serial %v", got.Losses[0], ref.Losses[0])
	}
	var maxd float64
	for i := range ref.Weights {
		d := math.Abs(float64(got.Weights[i] - ref.Weights[i]))
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 5e-4 {
		t.Fatalf("weights diverge by %v", maxd)
	}
}

func TestPublicAPISimulate(t *testing.T) {
	w := Workload{H: 2048, S: 16384, G: 4, L: 32, N: 32, P: 8, Recompute: true}
	top := NVLinkEthernet(8, 4)
	wp, err := Simulate(WeiPipeInterleave, w, top)
	if err != nil {
		t.Fatal(err)
	}
	f1b, err := Simulate(OneFOneB, w, top)
	if err != nil {
		t.Fatal(err)
	}
	if wp.TokensPerSecPerGPU <= f1b.TokensPerSecPerGPU {
		t.Fatalf("weipipe %v ≤ 1f1b %v on long-context ethernet",
			wp.TokensPerSecPerGPU, f1b.TokensPerSecPerGPU)
	}
	if wp.MemoryGB <= 0 || wp.BubbleRatio < 0 || wp.IterationSeconds <= 0 {
		t.Fatalf("bad sim result %+v", wp)
	}
	// OOM surfaces through the API
	big := Workload{H: 8192, S: 16384, G: 16, L: 32, N: 32, P: 8, Recompute: false}
	r, err := Simulate(ZB2, big, top)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OOM {
		t.Fatal("expected OOM")
	}
}

func TestStrategiesListed(t *testing.T) {
	ss := Strategies()
	if len(ss) < 10 {
		t.Fatalf("only %d strategies", len(ss))
	}
	seen := map[Strategy]bool{}
	for _, s := range ss {
		seen[s] = true
	}
	for _, want := range []Strategy{WeiPipeInterleave, WeiPipeNaive, WZB1, WZB2, OneFOneB, ZB1, ZB2, FSDP, GPipe, DP} {
		if !seen[want] {
			t.Errorf("missing strategy %s", want)
		}
	}
}

func TestHybridTrainerThroughFacade(t *testing.T) {
	cfg := Config{Vocab: 13, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 6, Seed: 7}
	opts := DefaultOptions(0.01)
	opts.Adam.Eps = 1e-5
	batches := Microbatches(3, 8, 2, 13, 6)

	ref, err := RunCluster(Serial, 1, cfg, opts, 1, func(int) []Batch { return batches })
	if err != nil {
		t.Fatal(err)
	}
	transports := NewInprocCluster(4)
	losses := make([]float64, 4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := NewHybridTrainer(transports[r], cfg, opts, 2)
			if err != nil {
				errs[r] = err
				return
			}
			losses[r], errs[r] = tr.TrainIteration(batches)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if math.Abs(losses[0]-ref.Losses[0]) > 1e-4 {
		t.Fatalf("hybrid loss %v vs serial %v", losses[0], ref.Losses[0])
	}
}
