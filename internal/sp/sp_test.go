package sp

import (
	"math"
	"sync"
	"testing"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
)

func spCfg() model.Config {
	return model.Config{Vocab: 13, Hidden: 8, Layers: 3, Heads: 2, MaxSeq: 8, Seed: 31}
}

func adamCfg() optim.AdamWConfig {
	c := optim.DefaultAdamW(0.01)
	c.Eps = 1e-5
	return c
}

func runSP(t *testing.T, tSize, iters int) ([]float64, []*Worker) {
	t.Helper()
	cl := comm.NewCluster(tSize)
	workers := make([]*Worker, tSize)
	losses := make([]float64, tSize)
	errs := make([]error, tSize)
	var wg sync.WaitGroup
	for r := 0; r < tSize; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := New(cl.Transport(r), spCfg())
			if err != nil {
				errs[r] = err
				return
			}
			w.SetAdam(adamCfg())
			workers[r] = w
			for i := 0; i < iters; i++ {
				batches := data.Microbatches(uint64(50+i), 4, 2, 13, 8)
				losses[r], errs[r] = w.TrainIteration(batches)
				if errs[r] != nil {
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return losses, workers
}

func serialRef(t *testing.T, iters int) (*pipeline.Serial, []float64) {
	t.Helper()
	s := pipeline.NewSerial(spCfg(), pipeline.Options{Adam: adamCfg()})
	var losses []float64
	for i := 0; i < iters; i++ {
		batches := data.Microbatches(uint64(50+i), 4, 2, 13, 8)
		loss, err := s.TrainIteration(batches)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	return s, losses
}

func TestSPLossMatchesSerial(t *testing.T) {
	for _, tSize := range []int{2, 4} {
		losses, _ := runSP(t, tSize, 1)
		_, ref := serialRef(t, 1)
		for r := range losses {
			if math.Abs(losses[r]-ref[0]) > 1e-5 {
				t.Errorf("T=%d rank %d: loss %.6f vs serial %.6f", tSize, r, losses[r], ref[0])
			}
		}
	}
}

func TestSPWeightsMatchSerialAfterSteps(t *testing.T) {
	const iters = 2
	_, workers := runSP(t, 2, iters)
	ref, _ := serialRef(t, iters)

	want := make([]float32, ref.Model().NumParams())
	ref.Model().FlattenChunk(0, len(ref.Model().Modules), want)
	for r, w := range workers {
		got := make([]float32, w.Model().NumParams())
		w.Model().FlattenChunk(0, len(w.Model().Modules), got)
		var maxd float64
		for i := range got {
			d := math.Abs(float64(got[i] - want[i]))
			if d > maxd {
				maxd = d
			}
		}
		if maxd > 5e-4 {
			t.Errorf("rank %d: weights diverge from serial by %g", r, maxd)
		}
	}
	// replicas identical across ranks
	a := make([]float32, workers[0].Model().NumParams())
	b := make([]float32, workers[1].Model().NumParams())
	workers[0].Model().FlattenChunk(0, len(workers[0].Model().Modules), a)
	workers[1].Model().FlattenChunk(0, len(workers[1].Model().Modules), b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replicas diverged at %d", i)
		}
	}
}

func TestSPRejectsIndivisibleSequence(t *testing.T) {
	cl := comm.NewCluster(3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := New(cl.Transport(r), spCfg())
			if err != nil {
				errs[r] = err
				return
			}
			_, errs[r] = w.TrainIteration(data.Microbatches(1, 3, 2, 13, 8)) // S=8 not divisible by 3
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d accepted S=8 on 3 ranks", r)
		}
	}
}

func TestSPTrafficScalesWithSequence(t *testing.T) {
	// SP's gathers/scatters are activation-sized: wire bytes must grow with
	// S (unlike WeiPipe's weight belts).
	run := func(s int) int64 {
		cl := comm.NewCluster(2)
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				cfg := spCfg()
				cfg.MaxSeq = s
				w, err := New(cl.Transport(r), cfg)
				if err != nil {
					errs[r] = err
					return
				}
				w.SetAdam(adamCfg())
				_, errs[r] = w.TrainIteration(data.Microbatches(9, 2, 2, 13, s))
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return cl.Stats(0).SentBytes(comm.KindColl) + cl.Stats(1).SentBytes(comm.KindColl)
	}
	base := run(8)
	big := run(16)
	// The S-dependent gathers/scatters ride on top of a fixed
	// weight-gradient all-reduce, so the ratio is diluted at toy scale;
	// growth itself is the property.
	if big < base*5/4 {
		t.Fatalf("SP traffic did not scale with S: %d vs %d", big, base)
	}
}
