// Package sp implements sequence parallelism, the related-work axis the
// paper positions WeiPipe against for long contexts: every rank holds a
// contiguous slice of each sequence's tokens, weights are replicated
// (DP-style), and attention is computed exactly by all-gathering keys and
// values along the sequence dimension (the DeepSpeed-Ulysses/DistAttention
// family's simplest correct variant). Per layer per microbatch the wire
// carries 2 activation-sized all-gathers forward and 2 reduce-scatters
// backward — like TP, bandwidth that scales with G·S·H, which is exactly
// the traffic class WeiPipe's fixed-size weight belts avoid.
package sp

import (
	"fmt"
	"math"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/nn"
	"weipipe/internal/optim"
	"weipipe/internal/tensor"
)

// Worker is one rank of a sequence-parallel group. All ranks hold the full
// replicated model; rank r owns token positions [r·S/T, (r+1)·S/T) of every
// sequence.
type Worker struct {
	t    comm.Transport
	cfg  model.Config
	mdl  *model.Model
	rope *nn.RopeTable
	opt  *optim.AdamW
	seq  int
}

// New builds an SP worker; the model is replicated via the deterministic
// seed.
func New(t comm.Transport, cfg model.Config) (*Worker, error) {
	cfg = cfg.WithDefaults()
	mdl := model.Build(cfg)
	return &Worker{
		t:    t,
		cfg:  cfg,
		mdl:  mdl,
		rope: nn.NewRopeTable(cfg.MaxSeq, cfg.Hidden/cfg.Heads),
		opt:  optim.NewAdamW(mdl.NumParams(), optim.DefaultAdamW(1e-3)),
	}, nil
}

// SetAdam replaces the optimizer configuration (call before training).
func (w *Worker) SetAdam(cfg optim.AdamWConfig) {
	w.opt = optim.NewAdamW(w.mdl.NumParams(), cfg)
}

// Model returns the replicated local model.
func (w *Worker) Model() *model.Model { return w.mdl }

// sliceTokens returns this rank's token slice of a batch.
func (w *Worker) sliceTokens(b data.Batch) (tokens, targets [][]int, sl, offset int, err error) {
	s := b.S()
	tSize := w.t.Size()
	if s%tSize != 0 {
		return nil, nil, 0, 0, fmt.Errorf("sp: sequence length %d not divisible by %d ranks", s, tSize)
	}
	sl = s / tSize
	offset = w.t.Rank() * sl
	for gi := range b.Tokens {
		tokens = append(tokens, b.Tokens[gi][offset:offset+sl])
		targets = append(targets, b.Targets[gi][offset:offset+sl])
	}
	return tokens, targets, sl, offset, nil
}

// layerState carries one layer's forward intermediates to backward.
type layerState struct {
	x      *tensor.Tensor // layer input (local rows)
	n1     *nn.Cache
	n2     *nn.Cache
	ffn    *nn.Cache
	attn   *attnState
	attnIn *tensor.Tensor // norm1 output (local rows)
}

// TrainIteration processes the microbatches and steps the replicated
// optimizer (gradients all-reduced DP-style at the end). Returns the mean
// loss over all tokens, identical on every rank.
func (w *Worker) TrainIteration(batches []data.Batch) (float64, error) {
	grads := make([]*nn.ParamSet, len(w.mdl.Modules))
	for i, m := range w.mdl.Modules {
		grads[i] = m.Params().NewLike()
	}
	var lossSum float64
	for _, b := range batches {
		loss, err := w.trainMicrobatch(b, grads)
		if err != nil {
			return 0, err
		}
		lossSum += loss
	}

	// DP-style weight-gradient all-reduce (weights replicated).
	flatG := make([]float32, 0, w.mdl.NumParams())
	for i := range grads {
		flatG = append(flatG, grads[i].Flatten()...)
	}
	w.seq++
	if err := comm.RingAllReduceSum(w.t, flatG, w.seq); err != nil {
		return 0, err
	}
	inv := float32(1.0 / float64(len(batches)))
	for i := range flatG {
		flatG[i] *= inv
	}
	flatW := make([]float32, w.mdl.NumParams())
	w.mdl.FlattenChunk(0, len(w.mdl.Modules), flatW)
	w.opt.Step(flatW, flatG)
	w.mdl.SetChunk(0, len(w.mdl.Modules), flatW)

	w.seq++
	total, err := comm.AllReduceScalarSum(w.t, lossSum, w.seq)
	if err != nil {
		return 0, err
	}
	return total / float64(len(batches)), nil
}

func (w *Worker) trainMicrobatch(b data.Batch, grads []*nn.ParamSet) (float64, error) {
	tokens, targets, sl, offset, err := w.sliceTokens(b)
	if err != nil {
		return 0, err
	}
	g := b.G()

	embedCache := nn.NewCache(g, sl)
	x := w.mdl.Embed.ForwardTokens(tokens, embedCache)

	states := make([]*layerState, len(w.mdl.Blocks))
	for li, blk := range w.mdl.Blocks {
		st := &layerState{x: x, n1: nn.NewCache(g, sl), n2: nn.NewCache(g, sl), ffn: nn.NewCache(g, sl)}
		x1 := blk.Norm1.Forward(x, st.n1)
		st.attnIn = x1
		ao, as, err := w.attnForward(blk, x1, g, sl, offset, b.S())
		if err != nil {
			return 0, err
		}
		st.attn = as
		y := tensor.New(x.Shape()...)
		tensor.Add(y, x, ao)

		y1 := blk.Norm2.Forward(y, st.n2)
		fo := blk.Ffn.Forward(y1, st.ffn)
		z := tensor.New(x.Shape()...)
		tensor.Add(z, y, fo)
		states[li] = st
		x = z
	}

	headCache := nn.NewCache(g, sl)
	localLoss := w.mdl.Head.ForwardLoss(x, targets, headCache)
	// ForwardLoss averages over local tokens; re-weight to a global mean.
	tSize := float64(w.t.Size())

	// Backward. dlogits inside the head is scaled by 1/(g·sl); the global
	// loss divides by g·S, so scale gradients by 1/T.
	dy := w.mdl.Head.BackwardFromLoss(headCache)
	scaleT := float32(1.0 / tSize)
	tensor.Scale(dy, dy, scaleT)
	headGrads := w.mdl.Head.Params().NewLike()
	w.mdl.Head.BackwardParams(headCache, headGrads)
	headGrads.Scale(scaleT)
	grads[len(grads)-1].AddInto(headGrads)

	for li := len(w.mdl.Blocks) - 1; li >= 0; li-- {
		blk := w.mdl.Blocks[li]
		st := states[li]
		gi := 1 + li

		dy1 := blk.Ffn.BackwardInput(dy, st.ffn)
		blk.Ffn.BackwardParams(st.ffn, subParams(grads[gi], "ffn."))
		dyFfn := blk.Norm2.BackwardInput(dy1, st.n2)
		blk.Norm2.BackwardParams(st.n2, subParams(grads[gi], "norm2."))
		dyMid := tensor.New(dy.Shape()...)
		tensor.Add(dyMid, dy, dyFfn)

		dx1, err := w.attnBackward(blk, st, dyMid, g, sl, offset, b.S(), subParams(grads[gi], "attn."))
		if err != nil {
			return 0, err
		}
		dxAttn := blk.Norm1.BackwardInput(dx1, st.n1)
		blk.Norm1.BackwardParams(st.n1, subParams(grads[gi], "norm1."))
		dx := tensor.New(dy.Shape()...)
		tensor.Add(dx, dyMid, dxAttn)
		dy = dx
	}

	w.mdl.Embed.BackwardInput(dy, embedCache)
	w.mdl.Embed.BackwardParams(embedCache, grads[0])

	return localLoss / tSize, nil
}

// subParams views the grads of one sub-layer by name prefix.
func subParams(grads *nn.ParamSet, prefix string) *nn.ParamSet {
	out := nn.NewParamSet()
	for _, n := range grads.Names() {
		if len(n) > len(prefix) && n[:len(prefix)] == prefix {
			out.Add(n[len(prefix):], grads.Get(n))
		}
	}
	return out
}

// attnState carries the attention intermediates of one layer.
type attnState struct {
	q      *tensor.Tensor // local rows, post-rope
	kFull  *tensor.Tensor // all positions, post-rope
	vFull  *tensor.Tensor
	probs  *tensor.Tensor // [g·heads·sl, S]
	ctx    *tensor.Tensor // local rows
	dyOut  *tensor.Tensor // set in backward for Wo grad
	dq     *tensor.Tensor // pre-rope grads (local)
	dkLoc  *tensor.Tensor // pre-rope grads for the local K slice
	dvLoc  *tensor.Tensor
	xLocal *tensor.Tensor // attention input (norm1 out), local rows
}

// attnForward computes exact causal attention for this rank's query slice
// against the all-gathered keys/values.
func (w *Worker) attnForward(blk *nn.Block, x1 *tensor.Tensor, g, sl, offset, s int) (*tensor.Tensor, *attnState, error) {
	a := blk.Attn
	h := w.cfg.Hidden
	d := a.HeadDim
	heads := a.Heads
	tokensLoc := g * sl

	q := tensor.New(tokensLoc, h)
	k := tensor.New(tokensLoc, h)
	v := tensor.New(tokensLoc, h)
	tensor.MatMul(q, x1, a.Wq)
	tensor.MatMul(k, x1, a.Wk)
	tensor.MatMul(v, x1, a.Wv)
	w.rope.ApplyAllOffset(q, sl, heads, 1, offset)
	w.rope.ApplyAllOffset(k, sl, heads, 1, offset)

	kFull, err := w.gatherSeq(k, g, sl, s, h)
	if err != nil {
		return nil, nil, err
	}
	vFull, err := w.gatherSeq(v, g, sl, s, h)
	if err != nil {
		return nil, nil, err
	}

	probs := tensor.New(g*heads*sl, s)
	ctx := tensor.New(tokensLoc, h)
	scale := float32(1.0 / math.Sqrt(float64(d)))
	qh := tensor.New(sl, d)
	kh := tensor.New(s, d)
	vh := tensor.New(s, d)
	scores := tensor.New(sl, s)
	ctxh := tensor.New(sl, d)
	for gi := 0; gi < g; gi++ {
		for hi := 0; hi < heads; hi++ {
			gatherHeadRect(qh, q, gi, hi, sl, d, h)
			gatherHeadRect(kh, kFull, gi, hi, s, d, h)
			gatherHeadRect(vh, vFull, gi, hi, s, d, h)
			tensor.MatMulTB(scores, qh, kh)
			for i := 0; i < sl; i++ {
				row := scores.Data[i*s : (i+1)*s]
				limit := offset + i // causal: keys ≤ global query position
				for j := 0; j <= limit; j++ {
					row[j] *= scale
				}
				for j := limit + 1; j < s; j++ {
					row[j] = float32(math.Inf(-1))
				}
			}
			ph := probs.SliceRows((gi*heads+hi)*sl, (gi*heads+hi+1)*sl)
			tensor.SoftmaxRows(ph, scores)
			tensor.MatMul(ctxh, ph, vh)
			scatterHeadRect(ctx, ctxh, gi, hi, sl, d, h)
		}
	}
	out := tensor.New(tokensLoc, h)
	tensor.MatMul(out, ctx, a.Wo)
	return out, &attnState{q: q, kFull: kFull, vFull: vFull, probs: probs, ctx: ctx, xLocal: x1}, nil
}

// attnBackward mirrors attnForward; dK/dV contributions for remote
// positions are reduce-scattered back to their owners.
func (w *Worker) attnBackward(blk *nn.Block, st *layerState, dy *tensor.Tensor,
	g, sl, offset, s int, grads *nn.ParamSet) (*tensor.Tensor, error) {
	a := blk.Attn
	as := st.attn
	h := w.cfg.Hidden
	d := a.HeadDim
	heads := a.Heads
	tokensLoc := g * sl
	scale := float32(1.0 / math.Sqrt(float64(d)))

	dctx := tensor.New(tokensLoc, h)
	tensor.MatMulTB(dctx, dy, a.Wo)

	dq := tensor.New(tokensLoc, h)
	dkFull := tensor.New(g*s, h)
	dvFull := tensor.New(g*s, h)

	qh := tensor.New(sl, d)
	kh := tensor.New(s, d)
	vh := tensor.New(s, d)
	dctxh := tensor.New(sl, d)
	dp := tensor.New(sl, s)
	ds := tensor.New(sl, s)
	dqh := tensor.New(sl, d)
	dkh := tensor.New(s, d)
	dvh := tensor.New(s, d)
	for gi := 0; gi < g; gi++ {
		for hi := 0; hi < heads; hi++ {
			gatherHeadRect(qh, as.q, gi, hi, sl, d, h)
			gatherHeadRect(kh, as.kFull, gi, hi, s, d, h)
			gatherHeadRect(vh, as.vFull, gi, hi, s, d, h)
			gatherHeadRect(dctxh, dctx, gi, hi, sl, d, h)
			ph := as.probs.SliceRows((gi*heads+hi)*sl, (gi*heads+hi+1)*sl)

			tensor.MatMulTB(dp, dctxh, vh)
			tensor.MatMulTA(dvh, ph, dctxh)
			tensor.SoftmaxRowsBackward(ds, ph, dp)
			tensor.MatMul(dqh, ds, kh)
			tensor.Scale(dqh, dqh, scale)
			tensor.MatMulTA(dkh, ds, qh)
			tensor.Scale(dkh, dkh, scale)

			scatterHeadRect(dq, dqh, gi, hi, sl, d, h)
			scatterHeadRect(dkFull, dkh, gi, hi, s, d, h)
			scatterHeadRect(dvFull, dvh, gi, hi, s, d, h)
		}
	}

	dkLoc, err := w.scatterSeq(dkFull, g, sl, s, h)
	if err != nil {
		return nil, err
	}
	dvLoc, err := w.scatterSeq(dvFull, g, sl, s, h)
	if err != nil {
		return nil, err
	}

	// un-rope local gradients
	w.rope.ApplyAllOffset(dq, sl, heads, -1, offset)
	w.rope.ApplyAllOffset(dkLoc, sl, heads, -1, offset)

	dx := tensor.New(tokensLoc, h)
	tensor.MatMulTB(dx, dq, a.Wq)
	tensor.MatMulTBAcc(dx, dkLoc, a.Wk)
	tensor.MatMulTBAcc(dx, dvLoc, a.Wv)

	// weight grads from local rows (summed across ranks by the final DP
	// all-reduce)
	tensor.MatMulTAAcc(grads.Get("wq"), st.attnIn, dq)
	tensor.MatMulTAAcc(grads.Get("wk"), st.attnIn, dkLoc)
	tensor.MatMulTAAcc(grads.Get("wv"), st.attnIn, dvLoc)
	tensor.MatMulTAAcc(grads.Get("wo"), as.ctx, dy)
	return dx, nil
}

// gatherSeq all-gathers per-sequence slices so each rank holds the full
// [g·S, h] tensor in global token order. local is [g·sl, h] with this
// rank's slice of every sequence.
func (w *Worker) gatherSeq(local *tensor.Tensor, g, sl, s, h int) (*tensor.Tensor, error) {
	tSize := w.t.Size()
	lens := make([]int, tSize)
	for i := range lens {
		lens[i] = g * sl * h
	}
	w.seq++
	flat, err := comm.AllGather(w.t, local.Data, lens, w.seq)
	if err != nil {
		return nil, err
	}
	full := tensor.New(g*s, h)
	for r := 0; r < tSize; r++ {
		part := flat[r*g*sl*h : (r+1)*g*sl*h]
		for gi := 0; gi < g; gi++ {
			dst := full.Data[(gi*s+r*sl)*h : (gi*s+(r+1)*sl)*h]
			copy(dst, part[gi*sl*h:(gi+1)*sl*h])
		}
	}
	return full, nil
}

// scatterSeq reduce-scatters a full [g·S, h] gradient so each rank receives
// the summed gradient for its own token slice.
func (w *Worker) scatterSeq(full *tensor.Tensor, g, sl, s, h int) (*tensor.Tensor, error) {
	tSize := w.t.Size()
	// rearrange to rank-major so ShardRanges aligns with rank slices
	rankMajor := make([]float32, g*s*h)
	for r := 0; r < tSize; r++ {
		for gi := 0; gi < g; gi++ {
			src := full.Data[(gi*s+r*sl)*h : (gi*s+(r+1)*sl)*h]
			copy(rankMajor[(r*g*sl+gi*sl)*h:(r*g*sl+(gi+1)*sl)*h], src)
		}
	}
	w.seq++
	shard, err := comm.ReduceScatterSum(w.t, rankMajor, w.seq)
	if err != nil {
		return nil, err
	}
	if len(shard) != g*sl*h {
		return nil, fmt.Errorf("sp: scatter shard size %d, want %d", len(shard), g*sl*h)
	}
	return tensor.FromSlice(shard, g*sl, h), nil
}

// gatherHeadRect copies head hi of batch gi from full ([g·rows, width]) into
// dst [rows, d].
func gatherHeadRect(dst, full *tensor.Tensor, gi, hi, rows, d, width int) {
	for i := 0; i < rows; i++ {
		src := full.Data[(gi*rows+i)*width+hi*d : (gi*rows+i)*width+hi*d+d]
		copy(dst.Data[i*d:(i+1)*d], src)
	}
}

// scatterHeadRect copies src [rows, d] into head hi of batch gi of full.
func scatterHeadRect(full, src *tensor.Tensor, gi, hi, rows, d, width int) {
	for i := 0; i < rows; i++ {
		dst := full.Data[(gi*rows+i)*width+hi*d : (gi*rows+i)*width+hi*d+d]
		copy(dst, src.Data[i*d:(i+1)*d])
	}
}
