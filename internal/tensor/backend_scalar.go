package tensor

// scalarBackend is the pure-Go reference backend: the register-tiled
// kernels from the original hot-path work, unchanged. It is the default
// backend, the bit-exactness oracle every other backend is tested
// against, and the fallback on CPUs without a SIMD backend.
type scalarBackend struct{}

func (scalarBackend) Name() string { return "scalar" }
func (scalarBackend) Exact() bool  { return true }

func (scalarBackend) MatMulNN(dst, a, b *Tensor, acc bool) { matmulNN(dst, a, b, acc, false) }
func (scalarBackend) MatMulNT(dst, a, b *Tensor, acc bool) { matmulNT(dst, a, b, acc, false) }
func (scalarBackend) MatMulTN(dst, a, b *Tensor, acc bool) { matmulTN(dst, a, b, acc, false) }

func (scalarBackend) Axpy(dst *Tensor, s float32, a *Tensor) { axpyScalar(dst, s, a) }
func (scalarBackend) Scale(dst, a *Tensor, s float32)        { scaleScalar(dst, a, s) }
func (scalarBackend) AddInto(dst, a *Tensor)                 { addIntoScalar(dst, a) }
func (scalarBackend) Dot(a, b *Tensor) float64               { return dotScalar(a, b) }
func (scalarBackend) DotF32(a, b *Tensor) float32            { return dotF32Scalar(a.Data, b.Data) }

func (scalarBackend) SiLU(dst, a *Tensor)             { siluScalar(dst, a) }
func (scalarBackend) SiLUBackward(dst, x, dy *Tensor) { siluBackwardScalar(dst, x, dy) }
func (scalarBackend) SoftmaxRows(dst, a *Tensor)      { softmaxRowsScalar(dst, a) }
func (scalarBackend) SoftmaxRowsBackward(dst, y, dy *Tensor) {
	softmaxRowsBackwardScalar(dst, y, dy)
}

func (scalarBackend) RMSNormRows(y, inv, x, gain *Tensor, eps float64) {
	rmsNormRowsScalar(y, inv, x, gain, eps)
}
