package tensor

import (
	"math"
	"testing"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	if x.Rows() != 6 || x.Cols() != 4 {
		t.Fatalf("Rows/Cols = %d/%d, want 6/4", x.Rows(), x.Cols())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if got := x.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	if x.Data[5] != 7 {
		t.Fatalf("row-major offset wrong: %v", x.Data)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	_ = x.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := New(4)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	x.Data[0] = 5
	if d[0] != 5 {
		t.Fatal("FromSlice must alias")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 3
	if x.Data[0] != 3 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestRowAndSliceRows(t *testing.T) {
	x := New(3, 2)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	r := x.Row(1)
	if r.Data[0] != 2 || r.Data[1] != 3 {
		t.Fatalf("Row(1) = %v", r.Data)
	}
	s := x.SliceRows(1, 3)
	if s.Rows() != 2 || s.Data[0] != 2 || s.Data[3] != 5 {
		t.Fatalf("SliceRows = %v shape %v", s.Data, s.Shape())
	}
	// views alias
	s.Data[0] = 42
	if x.At(1, 0) != 42 {
		t.Fatal("SliceRows must alias parent")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	dst := New(3)
	Add(dst, a, b)
	want := []float32{5, 7, 9}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("Add = %v", dst.Data)
		}
	}
	Sub(dst, b, a)
	for i, w := range []float32{3, 3, 3} {
		if dst.Data[i] != w {
			t.Fatalf("Sub = %v", dst.Data)
		}
	}
	Mul(dst, a, b)
	for i, w := range []float32{4, 10, 18} {
		if dst.Data[i] != w {
			t.Fatalf("Mul = %v", dst.Data)
		}
	}
	Scale(dst, a, 2)
	for i, w := range []float32{2, 4, 6} {
		if dst.Data[i] != w {
			t.Fatalf("Scale = %v", dst.Data)
		}
	}
	Axpy(dst, 10, a) // dst = 2a + 10a = 12a
	for i, w := range []float32{12, 24, 36} {
		if dst.Data[i] != w {
			t.Fatalf("Axpy = %v", dst.Data)
		}
	}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestAddAliasSafe(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	Add(a, a, a)
	if a.Data[0] != 2 || a.Data[1] != 4 {
		t.Fatalf("aliased Add = %v", a.Data)
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	y := New(2, 3)
	SoftmaxRows(y, x)
	var sum float64
	for _, v := range y.Data[:3] {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("row0 softmax sum = %v", sum)
	}
	// huge-but-equal logits must not overflow
	for _, v := range y.Data[3:] {
		if math.Abs(float64(v)-1.0/3) > 1e-6 {
			t.Fatalf("row1 softmax = %v", y.Data[3:])
		}
	}
	if y.Data[2] <= y.Data[1] || y.Data[1] <= y.Data[0] {
		t.Fatalf("softmax not monotone: %v", y.Data[:3])
	}
}

func TestSoftmaxBackwardMatchesFiniteDiff(t *testing.T) {
	rng := NewRNG(1)
	x := New(2, 5)
	FillNormal(x, rng, 1)
	dy := New(2, 5)
	FillNormal(dy, rng, 1)

	y := New(2, 5)
	SoftmaxRows(y, x)
	dx := New(2, 5)
	SoftmaxRowsBackward(dx, y, dy)

	const eps = 1e-3
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		yp := New(2, 5)
		SoftmaxRows(yp, x)
		x.Data[i] = orig - eps
		ym := New(2, 5)
		SoftmaxRows(ym, x)
		x.Data[i] = orig
		var fd float64
		for j := range dy.Data {
			fd += float64(dy.Data[j]) * float64(yp.Data[j]-ym.Data[j]) / (2 * eps)
		}
		if math.Abs(fd-float64(dx.Data[i])) > 1e-3 {
			t.Fatalf("softmax grad[%d] = %v, fd = %v", i, dx.Data[i], fd)
		}
	}
}

func TestSiLUAndBackward(t *testing.T) {
	x := FromSlice([]float32{-2, 0, 2}, 3)
	y := New(3)
	SiLU(y, x)
	if y.Data[1] != 0 {
		t.Fatalf("silu(0) = %v", y.Data[1])
	}
	if y.Data[2] <= 0 || y.Data[0] >= 0 {
		t.Fatalf("silu signs wrong: %v", y.Data)
	}
	// finite difference
	dy := FromSlice([]float32{1, 1, 1}, 3)
	dx := New(3)
	SiLUBackward(dx, x, dy)
	const eps = 1e-3
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		yp := New(3)
		SiLU(yp, x)
		x.Data[i] = orig - eps
		ym := New(3)
		SiLU(ym, x)
		x.Data[i] = orig
		fd := (yp.Data[i] - ym.Data[i]) / (2 * eps)
		if math.Abs(float64(fd-dx.Data[i])) > 1e-3 {
			t.Fatalf("silu grad[%d] = %v fd %v", i, dx.Data[i], fd)
		}
	}
}

func TestTranspose(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := New(3, 2)
	Transpose(y, x)
	want := []float32{1, 4, 2, 5, 3, 6}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("Transpose = %v", y.Data)
		}
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2}, 3)
	if x.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if !x.AllFinite() {
		t.Fatal("AllFinite false for finite tensor")
	}
	x.Data[1] = float32(math.NaN())
	if x.AllFinite() {
		t.Fatal("AllFinite true for NaN")
	}
	x.Data[1] = float32(math.Inf(1))
	if x.AllFinite() {
		t.Fatal("AllFinite true for Inf")
	}
}

func TestZeroFillCopy(t *testing.T) {
	x := New(3)
	x.Fill(2)
	y := New(3)
	y.CopyFrom(x)
	if y.Data[2] != 2 {
		t.Fatalf("CopyFrom = %v", y.Data)
	}
	x.Zero()
	if x.Sum() != 0 || y.Data[0] != 2 {
		t.Fatal("Zero must not affect copies")
	}
}
