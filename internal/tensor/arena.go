package tensor

import "sync"

// Arena is a scratch allocator for training hot paths. It hands out tensors
// backed by reusable buffers with get/reset semantics: allocations between
// two Resets never alias each other, and Reset recycles every buffer for the
// next round without freeing, so a steady-state training step performs no
// heap allocation once the arena has grown to the step's high-water mark.
//
// Positional reuse: the n-th allocation after a Reset reuses the n-th slot's
// buffer (grown if needed) and the same Tensor header, which is what makes
// the steady state allocation-free — a training step requests the same
// shapes in the same order every time.
//
// Reset invalidates every tensor handed out since the previous Reset; the
// caller must ensure none of them is still live. Concurrent New/SliceRows
// calls from multiple goroutines are safe (slot hand-out is mutex-guarded);
// Reset must not run concurrently with allocation.
type Arena struct {
	mu    sync.Mutex
	slots []*arenaSlot
	next  int
}

// arenaSlot pairs a recycled Tensor header with its backing buffer. View
// slots leave buf untouched (their header points into another tensor).
type arenaSlot struct {
	t   *Tensor
	buf []float32
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// New returns a zero-filled tensor with the given shape, reusing the next
// slot's buffer and header. Semantically identical to tensor.New except for
// the Reset lifetime.
func (a *Arena) New(shape ...int) *Tensor {
	n := 1
	ok := len(shape) > 0
	for _, d := range shape {
		if d <= 0 {
			ok = false
		}
		n *= d
	}
	if !ok {
		panic("tensor: Arena.New with empty or non-positive shape")
	}
	s := a.take()
	if cap(s.buf) < n {
		s.buf = make([]float32, n)
	}
	buf := s.buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	t := s.t
	t.Data = buf
	t.shape = setShape(t.shape, shape)
	return t
}

// SliceRows returns a view of rows [lo, hi) of t's canonical 2-D view,
// using a recycled header instead of allocating one like Tensor.SliceRows.
// The view shares t's storage and dies with the arena's next Reset.
func (a *Arena) SliceRows(t *Tensor, lo, hi int) *Tensor {
	c := t.Cols()
	if lo < 0 || hi > t.Rows() || lo > hi {
		panic("tensor: Arena.SliceRows out of range")
	}
	s := a.take()
	v := s.t
	v.Data = t.Data[lo*c : hi*c : hi*c]
	if cap(v.shape) < 2 {
		v.shape = make([]int, 2)
	}
	v.shape = v.shape[:2]
	v.shape[0] = hi - lo
	v.shape[1] = c
	return v
}

// Reset recycles every slot. All tensors handed out since the previous Reset
// become invalid: their storage will be handed out again.
func (a *Arena) Reset() {
	a.mu.Lock()
	a.next = 0
	a.mu.Unlock()
}

// Slots reports how many slots the arena has grown to (its high-water mark).
func (a *Arena) Slots() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.slots)
}

// take claims the next slot, growing the slot list if needed.
func (a *Arena) take() *arenaSlot {
	a.mu.Lock()
	if a.next == len(a.slots) {
		a.slots = append(a.slots, &arenaSlot{t: &Tensor{}})
	}
	s := a.slots[a.next]
	a.next++
	a.mu.Unlock()
	return s
}

// setShape copies shape into dst, reusing dst's backing array when possible
// (so the incoming variadic slice never escapes to the heap).
func setShape(dst, shape []int) []int {
	if cap(dst) < len(shape) {
		dst = make([]int, len(shape))
	}
	dst = dst[:len(shape)]
	copy(dst, shape)
	return dst
}
