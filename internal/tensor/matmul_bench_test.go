package tensor

import (
	"fmt"
	"testing"
)

// benchShapes are the transformer-typical matmul shapes tracked by the
// kernel benchmarks: a square projection-sized product and a long-sequence
// narrow-head product (attention scores / context shapes).
var benchShapes = []struct{ m, k, n int }{
	{256, 256, 256},
	{1024, 64, 1024},
	{64, 512, 64},
}

func benchMatMul(b *testing.B, run func(dst, a, bb *Tensor)) {
	for _, sh := range benchShapes {
		b.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(b *testing.B) {
			rng := NewRNG(1)
			a := New(sh.m, sh.k)
			bb := New(sh.k, sh.n)
			dst := New(sh.m, sh.n)
			FillUniform(a, rng, -1, 1)
			FillUniform(bb, rng, -1, 1)
			b.SetBytes(int64(sh.m) * int64(sh.k) * int64(sh.n) * 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(dst, a, bb)
			}
		})
	}
}

func BenchmarkMatMulNN(b *testing.B) {
	benchMatMul(b, MatMul)
}

// BenchmarkMatMulNT benchmarks dst = a·bᵀ; b is allocated [n,k] so the
// benchmark exercises the same output shapes as NN.
func BenchmarkMatMulNT(b *testing.B) {
	for _, sh := range benchShapes {
		b.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(b *testing.B) {
			rng := NewRNG(1)
			a := New(sh.m, sh.k)
			bt := New(sh.n, sh.k)
			dst := New(sh.m, sh.n)
			FillUniform(a, rng, -1, 1)
			FillUniform(bt, rng, -1, 1)
			b.SetBytes(int64(sh.m) * int64(sh.k) * int64(sh.n) * 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTB(dst, a, bt)
			}
		})
	}
}

// BenchmarkMatMulTN benchmarks dst = aᵀ·b; a is allocated [k,m] so the
// benchmark exercises the same output shapes as NN (the dW = Xᵀ·dY shape).
func BenchmarkMatMulTN(b *testing.B) {
	for _, sh := range benchShapes {
		b.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(b *testing.B) {
			rng := NewRNG(1)
			at := New(sh.k, sh.m)
			bb := New(sh.k, sh.n)
			dst := New(sh.m, sh.n)
			FillUniform(at, rng, -1, 1)
			FillUniform(bb, rng, -1, 1)
			b.SetBytes(int64(sh.m) * int64(sh.k) * int64(sh.n) * 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTA(dst, at, bb)
			}
		})
	}
}

func BenchmarkTranspose(b *testing.B) {
	rng := NewRNG(1)
	a := New(1024, 1024)
	dst := New(1024, 1024)
	FillUniform(a, rng, -1, 1)
	b.SetBytes(1024 * 1024 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(dst, a)
	}
}
