package tensor

import (
	"fmt"
	"testing"
)

// benchShapes are the transformer-typical matmul shapes tracked by the
// kernel benchmarks: a square projection-sized product and a long-sequence
// narrow-head product (attention scores / context shapes).
var benchShapes = []struct{ m, k, n int }{
	{256, 256, 256},
	{1024, 64, 1024},
	{64, 512, 64},
}

// benchMatMulBackends runs one sub-benchmark per shape per registered
// backend (scalar always; avx2 on capable amd64 machines), so a single
// `go test -bench` run produces the backend A/B comparison.
func benchMatMulBackends(b *testing.B, mk func(sh struct{ m, k, n int }) (dst, x, y *Tensor), run func(dst, x, y *Tensor)) {
	for _, sh := range benchShapes {
		for _, bk := range Backends() {
			b.Run(fmt.Sprintf("%dx%dx%d/%s", sh.m, sh.k, sh.n, bk), func(b *testing.B) {
				if err := SetBackend(bk); err != nil {
					b.Fatal(err)
				}
				defer func() {
					if err := SetBackend("scalar"); err != nil {
						b.Fatal(err)
					}
				}()
				dst, x, y := mk(sh)
				b.SetBytes(int64(sh.m) * int64(sh.k) * int64(sh.n) * 4)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run(dst, x, y)
				}
			})
		}
	}
}

func BenchmarkMatMulNN(b *testing.B) {
	benchMatMulBackends(b,
		func(sh struct{ m, k, n int }) (*Tensor, *Tensor, *Tensor) {
			rng := NewRNG(1)
			a := New(sh.m, sh.k)
			bb := New(sh.k, sh.n)
			FillUniform(a, rng, -1, 1)
			FillUniform(bb, rng, -1, 1)
			return New(sh.m, sh.n), a, bb
		},
		MatMul)
}

// BenchmarkMatMulNT benchmarks dst = a·bᵀ; b is allocated [n,k] so the
// benchmark exercises the same output shapes as NN. The 256x256x256/avx2
// cell is the headline kernel number guarded by CI.
func BenchmarkMatMulNT(b *testing.B) {
	benchMatMulBackends(b,
		func(sh struct{ m, k, n int }) (*Tensor, *Tensor, *Tensor) {
			rng := NewRNG(1)
			a := New(sh.m, sh.k)
			bt := New(sh.n, sh.k)
			FillUniform(a, rng, -1, 1)
			FillUniform(bt, rng, -1, 1)
			return New(sh.m, sh.n), a, bt
		},
		MatMulTB)
}

// BenchmarkMatMulTN benchmarks dst = aᵀ·b; a is allocated [k,m] so the
// benchmark exercises the same output shapes as NN (the dW = Xᵀ·dY shape).
func BenchmarkMatMulTN(b *testing.B) {
	benchMatMulBackends(b,
		func(sh struct{ m, k, n int }) (*Tensor, *Tensor, *Tensor) {
			rng := NewRNG(1)
			at := New(sh.k, sh.m)
			bb := New(sh.k, sh.n)
			FillUniform(at, rng, -1, 1)
			FillUniform(bb, rng, -1, 1)
			return New(sh.m, sh.n), at, bb
		},
		MatMulTA)
}

func BenchmarkTranspose(b *testing.B) {
	rng := NewRNG(1)
	a := New(1024, 1024)
	dst := New(1024, 1024)
	FillUniform(a, rng, -1, 1)
	b.SetBytes(1024 * 1024 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(dst, a)
	}
}
