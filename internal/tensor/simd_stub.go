//go:build !amd64 || noasm

package tensor

// Scalar-only builds (non-amd64, or the noasm tag): no SIMD backend ever
// registers, so mmArgs.simd is never set; these stubs keep the static call
// sites in mmArgs.run linking and defensively fall back to the scalar
// kernels.

func simdNNRange(g *mmArgs, lo, hi int) { mmNNRange(g, lo, hi) }
func simdNTRange(g *mmArgs, lo, hi int) { mmNTRange(g, lo, hi) }
func simdTNRange(g *mmArgs, lo, hi int) { mmTNRange(g, lo, hi) }
