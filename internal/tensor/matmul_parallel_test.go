package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// Matmul results must be bitwise identical regardless of how many workers the
// dispatcher uses: chunking splits destination rows only, so each element's
// accumulation order is fixed by the shapes. The host may have a single CPU,
// so both sides of the comparison force GOMAXPROCS explicitly.
func TestMatMulBitwiseIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Big enough to clear parallelThreshold (m*n*k ≥ 1<<17) with rows to split.
	const m, k, n = 96, 64, 80
	a := New(m, k)
	bNN := New(k, n)
	bNT := New(n, k)
	aTN := New(k, m)
	for _, x := range []*Tensor{a, bNN, bNT, aTN} {
		for i := range x.Data {
			x.Data[i] = rng.Float32()*2 - 1
		}
	}
	if m*n*k < parallelThreshold {
		t.Fatalf("test shape below parallelThreshold; enlarge it")
	}

	run := func(workers int) (nn, nt, tn *Tensor) {
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		nn, nt, tn = New(m, n), New(m, n), New(m, n)
		MatMul(nn, a, bNN)
		MatMulTB(nt, a, bNT)
		MatMulTA(tn, aTN, bNN)
		return
	}

	nn1, nt1, tn1 := run(1)
	for _, workers := range []int{2, 4, 7} {
		nnN, ntN, tnN := run(workers)
		for name, pair := range map[string][2]*Tensor{
			"NN": {nn1, nnN}, "NT": {nt1, ntN}, "TN": {tn1, tnN},
		} {
			for i := range pair[0].Data {
				b0 := math.Float32bits(pair[0].Data[i])
				bN := math.Float32bits(pair[1].Data[i])
				if b0 != bN {
					t.Fatalf("%s elem %d differs between 1 and %d workers: %08x vs %08x",
						name, i, workers, b0, bN)
				}
			}
		}
	}
}
