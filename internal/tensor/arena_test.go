package tensor

import (
	"sync"
	"testing"
)

// Allocations between two Resets must never alias: writing through one must
// not show through another.
func TestArenaNoAliasingBetweenResets(t *testing.T) {
	a := NewArena()
	ts := make([]*Tensor, 8)
	for i := range ts {
		ts[i] = a.New(4, 4)
	}
	for i, x := range ts {
		x.Fill(float32(i + 1))
	}
	for i, x := range ts {
		for _, v := range x.Data {
			if v != float32(i+1) {
				t.Fatalf("tensor %d clobbered: got %v", i, v)
			}
		}
	}
	// Overlap check on the raw storage.
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			if &ts[i].Data[0] == &ts[j].Data[0] {
				t.Fatalf("tensors %d and %d share storage", i, j)
			}
		}
	}
}

// After Reset the arena must hand out the same buffers again (that is the
// whole point), zero-filled, honouring the new shapes.
func TestArenaResetReusesBuffers(t *testing.T) {
	a := NewArena()
	first := a.New(8, 8)
	first.Fill(3)
	p0 := &first.Data[0]

	a.Reset()
	second := a.New(4, 4) // smaller: must reuse the same backing array
	if &second.Data[0] != p0 {
		t.Fatalf("Reset did not recycle the first slot's buffer")
	}
	if got := second.Shape(); got[0] != 4 || got[1] != 4 {
		t.Fatalf("recycled tensor has shape %v, want [4 4]", got)
	}
	for _, v := range second.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed: %v", v)
		}
	}
	if a.Slots() != 1 {
		t.Fatalf("arena grew to %d slots, want 1", a.Slots())
	}
}

func TestArenaSliceRows(t *testing.T) {
	a := NewArena()
	x := a.New(6, 3)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	v := a.SliceRows(x, 2, 4)
	if v.Rows() != 2 || v.Cols() != 3 {
		t.Fatalf("view shape %v", v.Shape())
	}
	if v.Data[0] != 6 || &v.Data[0] != &x.Data[6] {
		t.Fatalf("view does not alias rows [2,4) of the source")
	}
}

// Concurrent allocation from one arena must be safe (slot hand-out is
// mutex-guarded) and still non-aliasing. Run with -race.
func TestArenaConcurrentAllocation(t *testing.T) {
	a := NewArena()
	const workers, per = 8, 50
	out := make([][]*Tensor, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				x := a.New(16)
				x.Fill(float32(w))
				out[w] = append(out[w], x)
			}
		}(w)
	}
	wg.Wait()
	for w, ts := range out {
		for _, x := range ts {
			for _, v := range x.Data {
				if v != float32(w) {
					t.Fatalf("worker %d saw cross-worker write: %v", w, v)
				}
			}
		}
	}
	if got := a.Slots(); got != workers*per {
		t.Fatalf("arena has %d slots, want %d", got, workers*per)
	}
}

func TestArenaNewPanicsOnBadShape(t *testing.T) {
	a := NewArena()
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Arena.New(%v) did not panic", shape)
				}
			}()
			a.New(shape...)
		}()
	}
}

// Steady-state arena allocation must not touch the heap.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	a := NewArena()
	// Warm up the high-water mark.
	for i := 0; i < 4; i++ {
		a.New(32, 32)
	}
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 4; i++ {
			a.New(32, 32)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena round allocates %v times, want 0", allocs)
	}
}
