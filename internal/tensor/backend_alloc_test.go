package tensor

import "testing"

// TestMatMulBackendZeroAlloc pins the zero-allocation contract of the
// matmul dispatch on every registered backend: the mmArgs value must not
// escape (static kernel linking, no closures) regardless of which range
// kernels run.
func TestMatMulBackendZeroAlloc(t *testing.T) {
	rng := NewRNG(3)
	a := New(256, 256)
	b := New(256, 256)
	dst := New(256, 256)
	FillUniform(a, rng, -1, 1)
	FillUniform(b, rng, -1, 1)
	for _, bk := range Backends() {
		if err := SetBackend(bk); err != nil {
			t.Fatal(err)
		}
		for name, fn := range map[string]func(){
			"NN":    func() { MatMul(dst, a, b) },
			"NT":    func() { MatMulTB(dst, a, b) },
			"TN":    func() { MatMulTA(dst, a, b) },
			"NNacc": func() { MatMulAcc(dst, a, b) },
		} {
			if n := testing.AllocsPerRun(5, fn); n != 0 {
				t.Errorf("backend %s %s: %v allocs per run, want 0", bk, name, n)
			}
		}
	}
	if err := SetBackend("scalar"); err != nil {
		t.Fatal(err)
	}
}
