package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference kernel tests compare against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			out.Data[i*n+j] = float32(s)
		}
	}
	return out
}

func approxEqual(t *testing.T, got, want *Tensor, tol float64, name string) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: size %d != %d", name, got.Size(), want.Size())
	}
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > tol {
			t.Fatalf("%s: elem %d: got %v want %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulSmallExact(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", dst.Data, want)
		}
	}
}

func TestMatMulMatchesNaiveVariousShapes(t *testing.T) {
	rng := NewRNG(7)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {17, 65, 33}, {64, 64, 64}, {1, 128, 1}, {100, 1, 100}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k)
		b := New(k, n)
		FillNormal(a, rng, 1)
		FillNormal(b, rng, 1)
		dst := New(m, n)
		MatMul(dst, a, b)
		approxEqual(t, dst, naiveMatMul(a, b), 1e-3*float64(k), "MatMul")
	}
}

func TestMatMulTBMatchesNaive(t *testing.T) {
	rng := NewRNG(8)
	for _, s := range [][3]int{{3, 5, 4}, {16, 70, 9}, {65, 64, 65}} {
		m, k, n := s[0], s[1], s[2]
		a := New(m, k)
		b := New(n, k) // will be transposed
		FillNormal(a, rng, 1)
		FillNormal(b, rng, 1)
		bt := New(k, n)
		Transpose(bt, b)
		dst := New(m, n)
		MatMulTB(dst, a, b)
		approxEqual(t, dst, naiveMatMul(a, bt), 1e-3*float64(k), "MatMulTB")
	}
}

func TestMatMulTAMatchesNaive(t *testing.T) {
	rng := NewRNG(9)
	for _, s := range [][3]int{{3, 5, 4}, {16, 70, 9}, {65, 64, 65}} {
		m, k, n := s[0], s[1], s[2]
		a := New(k, m) // will be transposed
		b := New(k, n)
		FillNormal(a, rng, 1)
		FillNormal(b, rng, 1)
		at := New(m, k)
		Transpose(at, a)
		dst := New(m, n)
		MatMulTA(dst, a, b)
		approxEqual(t, dst, naiveMatMul(at, b), 1e-3*float64(k), "MatMulTA")
	}
}

func TestMatMulAccAccumulates(t *testing.T) {
	rng := NewRNG(10)
	a := New(4, 6)
	b := New(6, 5)
	FillNormal(a, rng, 1)
	FillNormal(b, rng, 1)
	base := naiveMatMul(a, b)

	dst := New(4, 5)
	MatMul(dst, a, b)
	MatMulAcc(dst, a, b)
	twice := base.Clone()
	Scale(twice, base, 2)
	approxEqual(t, dst, twice, 1e-3, "MatMulAcc")

	// TB / TA acc variants
	bt := New(5, 6)
	Transpose(bt, b)
	dst2 := New(4, 5)
	MatMulTB(dst2, a, bt)
	MatMulTBAcc(dst2, a, bt)
	approxEqual(t, dst2, twice, 1e-3, "MatMulTBAcc")

	at := New(6, 4)
	Transpose(at, a)
	dst3 := New(4, 5)
	MatMulTA(dst3, at, b)
	MatMulTAAcc(dst3, at, b)
	approxEqual(t, dst3, twice, 1e-3, "MatMulTAAcc")
}

func TestMatMulShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	dst := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(dst, a, b)
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ, exercised through the three kernels.
func TestMatMulTransposeIdentityProperty(t *testing.T) {
	rng := NewRNG(11)
	f := func(mi, ki, ni uint8) bool {
		m := int(mi%8) + 1
		k := int(ki%8) + 1
		n := int(ni%8) + 1
		a := New(m, k)
		b := New(k, n)
		FillNormal(a, rng, 1)
		FillNormal(b, rng, 1)
		ab := New(m, n)
		MatMul(ab, a, b)
		abT := New(n, m)
		Transpose(abT, ab)
		// Bᵀ·Aᵀ via MatMulTA(Aᵀ from a) — compute directly: (bᵀ)(aᵀ) with
		// MatMulTA(dst, b, a) is aᵀ-shaped mismatch, so use explicit transposes.
		bt := New(n, k)
		Transpose(bt, b)
		at := New(k, m)
		Transpose(at, a)
		btat := New(n, m)
		MatMul(btat, bt, at)
		for i := range abT.Data {
			if math.Abs(float64(abT.Data[i]-btat.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := NewRNG(1)
	x := New(256, 256)
	y := New(256, 256)
	FillNormal(x, rng, 1)
	FillNormal(y, rng, 1)
	dst := New(256, 256)
	b.SetBytes(256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}
