package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The backend equivalence suite: every registered backend is checked
// against the scalar oracle over edge-case shapes. Order-preserving
// kernels (NN, TN, Axpy, Scale, AddInto, Dot) must match bit for bit on
// every backend; reduction-reassociated kernels (NT, DotF32) on
// tolerance-mode backends must stay within a bound derived from the
// absolute-value dot product.

// equivShapes covers the dispatch edge cases: unit dims, odd sizes,
// non-multiples of the 8-lane vector width and of the 4-wide unrolls,
// sizes straddling the blockK/blockN boundaries, and odd m (the NT
// pair-kernel remainder row).
var equivShapes = [][3]int{
	{1, 1, 1},
	{1, 5, 3},
	{3, 1, 7},
	{7, 9, 1},
	{2, 3, 4},
	{8, 8, 8},
	{5, 13, 17},
	{9, 7, 15},
	{16, 16, 16},
	{31, 33, 63},
	{33, 7, 65},
	{4, 260, 66},
	{3, 258, 130},
	{64, 64, 64},
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// withBackend runs fn with the named backend selected, restoring the
// previous backend afterwards.
func withBackend(t *testing.T, name string, fn func()) {
	t.Helper()
	prev := BackendName()
	if err := SetBackend(name); err != nil {
		t.Fatalf("SetBackend(%q): %v", name, err)
	}
	defer func() {
		if err := SetBackend(prev); err != nil {
			t.Fatalf("restore backend %q: %v", prev, err)
		}
	}()
	fn()
}

// nonScalarBackends returns the names of every registered backend except
// the scalar oracle (empty on machines with no SIMD backend).
func nonScalarBackends() []string {
	var names []string
	for _, n := range Backends() {
		if n != "scalar" {
			names = append(names, n)
		}
	}
	return names
}

// absDotRow returns Σ_p |a_p|·|b_p| for NT output element (i,j), the
// scale factor of the reassociation error bound.
func absDotNT(a, b *Tensor, i, j, k int) float64 {
	var s float64
	for p := 0; p < k; p++ {
		s += math.Abs(float64(a.Data[i*k+p])) * math.Abs(float64(b.Data[j*k+p]))
	}
	return s
}

// tolUlps is the relative reassociation bound: splitting a float32 sum
// into 8 lanes plus a balanced tree changes each partial by a few ULPs;
// 4e-7 (~3.4 float32 ULPs) times the absolute-value sum covers it with
// margin while still catching real kernel bugs, which produce errors
// orders of magnitude larger.
const tolUlps = 4e-7

func TestBackendMatMulEquivalence(t *testing.T) {
	others := nonScalarBackends()
	if len(others) == 0 {
		t.Skip("no non-scalar backend registered on this machine")
	}
	rng := rand.New(rand.NewSource(11))
	type mmCase struct {
		name  string
		exact bool // order-preserving on every backend
		run   func(dst, a, b *Tensor, acc bool)
		// shapes of a and b given (m, n, k)
		aShape func(m, n, k int) [2]int
		bShape func(m, n, k int) [2]int
	}
	cases := []mmCase{
		{"NN", true,
			func(dst, a, b *Tensor, acc bool) { current().MatMulNN(dst, a, b, acc) },
			func(m, n, k int) [2]int { return [2]int{m, k} },
			func(m, n, k int) [2]int { return [2]int{k, n} }},
		{"NT", false,
			func(dst, a, b *Tensor, acc bool) { current().MatMulNT(dst, a, b, acc) },
			func(m, n, k int) [2]int { return [2]int{m, k} },
			func(m, n, k int) [2]int { return [2]int{n, k} }},
		{"TN", true,
			func(dst, a, b *Tensor, acc bool) { current().MatMulTN(dst, a, b, acc) },
			func(m, n, k int) [2]int { return [2]int{k, m} },
			func(m, n, k int) [2]int { return [2]int{k, n} }},
	}
	for _, name := range others {
		for _, c := range cases {
			for _, acc := range []bool{false, true} {
				for _, sh := range equivShapes {
					m, n, k := sh[0], sh[1], sh[2]
					as, bs := c.aShape(m, n, k), c.bShape(m, n, k)
					a := randTensor(rng, as[0], as[1])
					b := randTensor(rng, bs[0], bs[1])
					seed := randTensor(rng, m, n)
					want := New(m, n)
					got := New(m, n)
					copy(want.Data, seed.Data)
					copy(got.Data, seed.Data)

					c.run(want, a, b, acc) // scalar is current by default
					withBackend(t, name, func() { c.run(got, a, b, acc) })

					for i := 0; i < m; i++ {
						for j := 0; j < n; j++ {
							w, g := want.Data[i*n+j], got.Data[i*n+j]
							if c.exact {
								if w != g {
									t.Fatalf("%s/%s acc=%v shape %v: dst[%d,%d] = %g, scalar %g (must be bit-identical)",
										name, c.name, acc, sh, i, j, g, w)
								}
								continue
							}
							bound := tolUlps * absDotNT(a, b, i, j, k)
							if acc {
								bound += tolUlps * math.Abs(float64(seed.Data[i*n+j]))
							}
							if diff := math.Abs(float64(w) - float64(g)); diff > bound+1e-12 {
								t.Fatalf("%s/%s acc=%v shape %v: dst[%d,%d] = %g, scalar %g, |diff| %g > bound %g",
									name, c.name, acc, sh, i, j, g, w, diff, bound)
							}
						}
					}
				}
			}
		}
	}
}

// TestBackendMatMulAccAliasedHistory checks the accumulate path against a
// dst that already holds a previous matmul result from the same backend —
// the aliased-accumulate pattern of the backward pass (dW += xᵀ·dy).
func TestBackendMatMulAccAliasedHistory(t *testing.T) {
	others := nonScalarBackends()
	if len(others) == 0 {
		t.Skip("no non-scalar backend registered on this machine")
	}
	rng := rand.New(rand.NewSource(12))
	for _, name := range others {
		for _, sh := range equivShapes {
			m, n, k := sh[0], sh[1], sh[2]
			a1 := randTensor(rng, k, m)
			b1 := randTensor(rng, k, n)
			a2 := randTensor(rng, k, m)
			b2 := randTensor(rng, k, n)
			want := New(m, n)
			got := New(m, n)

			current().MatMulTN(want, a1, b1, false)
			current().MatMulTN(want, a2, b2, true)
			withBackend(t, name, func() {
				current().MatMulTN(got, a1, b1, false)
				current().MatMulTN(got, a2, b2, true)
			})
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%s TN acc-chain shape %v: elem %d = %g, scalar %g",
						name, sh, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestBackendElementwiseEquivalence(t *testing.T) {
	others := nonScalarBackends()
	if len(others) == 0 {
		t.Skip("no non-scalar backend registered on this machine")
	}
	rng := rand.New(rand.NewSource(13))
	sizes := []int{1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 100, 255, 1024}
	for _, name := range others {
		for _, sz := range sizes {
			a := randTensor(rng, sz)
			seed := randTensor(rng, sz)
			s := float32(rng.NormFloat64())

			// Axpy: bit-identical on every backend.
			want, got := New(sz), New(sz)
			copy(want.Data, seed.Data)
			copy(got.Data, seed.Data)
			current().Axpy(want, s, a)
			withBackend(t, name, func() { current().Axpy(got, s, a) })
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%s Axpy n=%d elem %d: %g vs scalar %g", name, sz, i, got.Data[i], want.Data[i])
				}
			}

			// Scale, aliased dst==a: bit-identical.
			copy(want.Data, a.Data)
			copy(got.Data, a.Data)
			current().Scale(want, want, s)
			withBackend(t, name, func() { current().Scale(got, got, s) })
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%s Scale(aliased) n=%d elem %d: %g vs scalar %g", name, sz, i, got.Data[i], want.Data[i])
				}
			}

			// AddInto: bit-identical.
			copy(want.Data, seed.Data)
			copy(got.Data, seed.Data)
			current().AddInto(want, a)
			withBackend(t, name, func() { current().AddInto(got, a) })
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%s AddInto n=%d elem %d: %g vs scalar %g", name, sz, i, got.Data[i], want.Data[i])
				}
			}

			// Dot (float64 accumulation): bit-identical on every backend.
			b := randTensor(rng, sz)
			dw := current().Dot(a, b)
			var dg float64
			withBackend(t, name, func() { dg = current().Dot(a, b) })
			if dw != dg {
				t.Fatalf("%s Dot n=%d: %g vs scalar %g", name, sz, dg, dw)
			}

			// DotF32: tolerance-bounded.
			fw := current().DotF32(a, b)
			var fg float32
			withBackend(t, name, func() { fg = current().DotF32(a, b) })
			var absSum float64
			for i := range a.Data {
				absSum += math.Abs(float64(a.Data[i])) * math.Abs(float64(b.Data[i]))
			}
			if diff := math.Abs(float64(fw) - float64(fg)); diff > tolUlps*absSum+1e-12 {
				t.Fatalf("%s DotF32 n=%d: %g vs scalar %g, |diff| %g > bound %g",
					name, sz, fg, fw, diff, tolUlps*absSum)
			}
		}
	}
}

// TestBackendRegistry exercises the selection API.
func TestBackendRegistry(t *testing.T) {
	if BackendName() != "scalar" {
		t.Fatalf("default backend = %q, want scalar", BackendName())
	}
	if !BackendExact() {
		t.Fatal("scalar backend must report Exact")
	}
	if err := SetBackend("no-such-backend"); err == nil {
		t.Fatal("SetBackend with unknown name must fail")
	}
	if BackendName() != "scalar" {
		t.Fatalf("failed SetBackend changed backend to %q", BackendName())
	}
	names := Backends()
	found := false
	for _, n := range names {
		if n == "scalar" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Backends() = %v, missing scalar", names)
	}
	// auto resolves to some registered backend and back.
	withBackend(t, "auto", func() {
		cur := BackendName()
		ok := false
		for _, n := range names {
			if n == cur {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("auto selected %q, not in %v", cur, names)
		}
	})
	if BackendName() != "scalar" {
		t.Fatalf("backend not restored, now %q", BackendName())
	}
}

// FuzzBackendNTEquivalence drives the tolerance contract of the NT kernel
// with fuzzer-chosen shapes and data.
func FuzzBackendNTEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(9))
	f.Add(int64(7), uint8(1), uint8(1), uint8(1))
	f.Add(int64(42), uint8(16), uint8(8), uint8(32))
	f.Add(int64(99), uint8(5), uint8(4), uint8(65))
	f.Fuzz(func(t *testing.T, seed int64, mr, nr, kr uint8) {
		others := nonScalarBackends()
		if len(others) == 0 {
			t.Skip("no non-scalar backend registered")
		}
		m := int(mr%24) + 1
		n := int(nr%24) + 1
		k := int(kr%96) + 1
		rng := rand.New(rand.NewSource(seed))
		a := randTensor(rng, m, k)
		b := randTensor(rng, n, k)
		want := New(m, n)
		got := New(m, n)
		current().MatMulNT(want, a, b, false)
		for _, name := range others {
			withBackend(t, name, func() { current().MatMulNT(got, a, b, false) })
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					bound := tolUlps*absDotNT(a, b, i, j, k) + 1e-12
					diff := math.Abs(float64(want.Data[i*n+j]) - float64(got.Data[i*n+j]))
					if diff > bound {
						t.Fatalf("%s NT %dx%dx%d dst[%d,%d]: |diff| %g > bound %g",
							name, m, n, k, i, j, diff, bound)
					}
				}
			}
		}
	})
}
