//go:build !noasm

#include "textflag.h"

// AVX2/FMA kernel set for the avx2 backend. Conventions:
//
//   - All kernels are leaf NOSPLIT functions taking raw pointers; bounds
//     are the caller's responsibility (the Go wrappers slice-check first).
//   - R14 (goroutine pointer) and X15/Y15 (ABIInternal zero register) are
//     never touched.
//   - Every kernel that executes VEX-256 instructions ends with VZEROUPPER
//     so SSE code after the call pays no transition penalty.
//   - Plan 9 operand order: VFMADD231PS m, y1, y2 means y2 += y1 * m.

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyAVX2(dst, a *float32, n8 int, s float32)
//
// dst[i] += s*a[i] for i in [0, n8*8). One VMULPS + one VADDPS per lane:
// exactly the scalar rounding sequence (no FMA), so this path is
// bit-identical to axpyScalar. n8 must be >= 1.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n8+16(FP), CX
	VBROADCASTSS s+24(FP), Y0

axpy_loop:
	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VMOVUPS (DI), Y2
	VADDPS  Y1, Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNE     axpy_loop
	VZEROUPPER
	RET

// func scaleAVX2(dst, a *float32, n8 int, s float32)
//
// dst[i] = s*a[i] for i in [0, n8*8). Bit-identical to scaleScalar.
TEXT ·scaleAVX2(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n8+16(FP), CX
	VBROADCASTSS s+24(FP), Y0

scale_loop:
	VMOVUPS (SI), Y1
	VMULPS  Y0, Y1, Y1
	VMOVUPS Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNE     scale_loop
	VZEROUPPER
	RET

// func addIntoAVX2(dst, a *float32, n8 int)
//
// dst[i] += a[i] for i in [0, n8*8). Bit-identical to addIntoScalar.
TEXT ·addIntoAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ n8+16(FP), CX

addinto_loop:
	VMOVUPS (SI), Y1
	VMOVUPS (DI), Y2
	VADDPS  Y1, Y2, Y2
	VMOVUPS Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNE     addinto_loop
	VZEROUPPER
	RET

// func dotAVX2(a, b *float32, n int) float32
//
// Single-vector FMA dot product. Lane l accumulates elements with index
// ≡ l (mod 8) in ascending order; lanes combine through the balanced tree
// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)); the n%8 remainder then folds in
// ascending with one mul and one add per element. This is the documented
// tolerance-mode reduction contract shared with the NT matmul kernels.
TEXT ·dotAVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DX
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	MOVQ CX, BX
	SHRQ $3, BX
	JZ   dot_reduce

dot_loop8:
	VMOVUPS     (SI), Y1
	VFMADD231PS (DX), Y1, Y0
	ADDQ        $32, SI
	ADDQ        $32, DX
	DECQ        BX
	JNE         dot_loop8

dot_reduce:
	// Balanced tree: after two VHADDPS each 128-bit half holds its own
	// 4-lane tree sum in every element; add high half onto low.
	VHADDPS      Y0, Y0, Y0
	VHADDPS      Y0, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDSS       X1, X0, X0
	ANDQ         $7, CX
	JZ           dot_done

dot_tail:
	VMOVSS (SI), X2
	VMULSS (DX), X2, X2
	VADDSS X2, X0, X0
	ADDQ   $4, SI
	ADDQ   $4, DX
	DECQ   CX
	JNE    dot_tail

dot_done:
	VMOVSS X0, ret+24(FP)
	VZEROUPPER
	RET

// func nnQuadAVX2(drow, b0, b1, b2, b3 *float32, n8 int, a0, a1, a2, a3 float32)
//
// drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] for j in [0, n8*8),
// evaluated per element as (((a0*b0 + a1*b1) + a2*b2) + a3*b3) then added
// to drow — the exact rounding sequence of the scalar NN/TN quad kernel
// (separate VMULPS/VADDPS, no FMA), so the avx2 NN and TN paths stay
// bit-identical to scalar. n8 must be >= 1.
TEXT ·nnQuadAVX2(SB), NOSPLIT, $0-64
	MOVQ drow+0(FP), DI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n8+40(FP), CX
	VBROADCASTSS a0+48(FP), Y8
	VBROADCASTSS a1+52(FP), Y9
	VBROADCASTSS a2+56(FP), Y10
	VBROADCASTSS a3+60(FP), Y11
	XORQ DX, DX

nnquad_loop:
	VMOVUPS (R8)(DX*1), Y0
	VMULPS  Y8, Y0, Y0
	VMOVUPS (R9)(DX*1), Y1
	VMULPS  Y9, Y1, Y1
	VADDPS  Y1, Y0, Y0
	VMOVUPS (R10)(DX*1), Y2
	VMULPS  Y10, Y2, Y2
	VADDPS  Y2, Y0, Y0
	VMOVUPS (R11)(DX*1), Y3
	VMULPS  Y11, Y3, Y3
	VADDPS  Y3, Y0, Y0
	VMOVUPS (DI)(DX*1), Y4
	VADDPS  Y0, Y4, Y4
	VMOVUPS Y4, (DI)(DX*1)
	ADDQ    $32, DX
	DECQ    CX
	JNE     nnquad_loop
	VZEROUPPER
	RET

// func ntQuad2AVX2(a0, a1, b *float32, k8, kstride int, out *float32)
//
// Main-sum kernel of the register-blocked NT matmul: two a rows against
// four consecutive b rows (b, b+kstride, ..., b+3*kstride bytes), over the
// first k8*8 elements of k. Eight independent FMA accumulators (2 rows ×
// 4 columns) share every a and b load. Writes the eight raw column sums
// to out[0..7] (row0 in out[0..3], row1 in out[4..7]); the caller folds
// the k remainder and performs the store/accumulate, so every code path
// shares one per-column reduction contract (see dotAVX2). k8 may be 0,
// in which case out is zeroed.
TEXT ·ntQuad2AVX2(SB), NOSPLIT, $0-48
	MOVQ a0+0(FP), SI
	MOVQ a1+8(FP), DI
	MOVQ b+16(FP), R8
	MOVQ k8+24(FP), CX
	MOVQ kstride+32(FP), R13
	MOVQ out+40(FP), R12
	LEAQ (R8)(R13*1), R9
	LEAQ (R9)(R13*1), R10
	LEAQ (R10)(R13*1), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	XORQ DX, DX
	TESTQ CX, CX
	JZ   nt2_reduce

nt2_loop:
	VMOVUPS     (SI)(DX*1), Y8
	VMOVUPS     (DI)(DX*1), Y9
	VMOVUPS     (R8)(DX*1), Y10
	VMOVUPS     (R9)(DX*1), Y11
	VFMADD231PS Y10, Y8, Y0
	VFMADD231PS Y10, Y9, Y4
	VFMADD231PS Y11, Y8, Y1
	VFMADD231PS Y11, Y9, Y5
	VMOVUPS     (R10)(DX*1), Y10
	VMOVUPS     (R11)(DX*1), Y11
	VFMADD231PS Y10, Y8, Y2
	VFMADD231PS Y10, Y9, Y6
	VFMADD231PS Y11, Y8, Y3
	VFMADD231PS Y11, Y9, Y7
	ADDQ        $32, DX
	DECQ        CX
	JNE         nt2_loop

nt2_reduce:
	// Row 0: Y0..Y3 -> out[0..3]. Two VHADDPS interleave the four
	// accumulators so each 128-bit half of the result holds the four
	// per-column half-tree sums; adding the high half onto the low yields
	// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)) per column — the dotAVX2 tree.
	VHADDPS      Y1, Y0, Y0
	VHADDPS      Y3, Y2, Y2
	VHADDPS      Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X12
	VADDPS       X12, X0, X12
	VMOVUPS      X12, (R12)

	// Row 1: Y4..Y7 -> out[4..7].
	VHADDPS      Y5, Y4, Y4
	VHADDPS      Y7, Y6, Y6
	VHADDPS      Y6, Y4, Y4
	VEXTRACTF128 $1, Y4, X13
	VADDPS       X13, X4, X13
	VMOVUPS      X13, 16(R12)
	VZEROUPPER
	RET

// func ntQuad1AVX2(a, b *float32, k8, kstride int, out *float32)
//
// Single-row variant of ntQuad2AVX2: one a row against four b rows,
// writing the four raw column sums to out[0..3]. Identical per-column
// accumulation and reduction order to ntQuad2AVX2, so a row computed via
// the single path is bitwise identical to the same row computed as either
// half of a pair.
TEXT ·ntQuad1AVX2(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), R8
	MOVQ k8+16(FP), CX
	MOVQ kstride+24(FP), R13
	MOVQ out+32(FP), R12
	LEAQ (R8)(R13*1), R9
	LEAQ (R9)(R13*1), R10
	LEAQ (R10)(R13*1), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ DX, DX
	TESTQ CX, CX
	JZ   nt1_reduce

nt1_loop:
	VMOVUPS     (SI)(DX*1), Y8
	VMOVUPS     (R8)(DX*1), Y10
	VMOVUPS     (R9)(DX*1), Y11
	VFMADD231PS Y10, Y8, Y0
	VFMADD231PS Y11, Y8, Y1
	VMOVUPS     (R10)(DX*1), Y10
	VMOVUPS     (R11)(DX*1), Y11
	VFMADD231PS Y10, Y8, Y2
	VFMADD231PS Y11, Y8, Y3
	ADDQ        $32, DX
	DECQ        CX
	JNE         nt1_loop

nt1_reduce:
	VHADDPS      Y1, Y0, Y0
	VHADDPS      Y3, Y2, Y2
	VHADDPS      Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X12
	VADDPS       X12, X0, X12
	VMOVUPS      X12, (R12)
	VZEROUPPER
	RET
