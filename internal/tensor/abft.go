package tensor

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Algorithm-based fault tolerance (ABFT) for the matmul kernels. The
// classical Huang–Abraham scheme extends the operands with checksum rows
// and columns; here the same invariant is verified without touching the
// operands: for C = A·B every output row must satisfy
//
//	Σ_j C_ij = Σ_k A_ik · s_k   with   s_k = Σ_j B_kj
//
// so one extra O(m·k + k·n + m·n) pass — O(n²) against the kernel's O(n³)
// — localizes a bit flip that corrupted the kernel's output (ALU fault,
// bad store, flipped cache line) to a specific row of a specific call.
// The NT and TN variants satisfy the same identity with s taken over B's
// other axis and A addressed transposed.
//
// The checksums accumulate in float64, so the comparison needs a tolerance
// envelope for the kernel's float32 arithmetic (and for tolerance-mode
// SIMD backends, which may reassociate with FMA): row i passes when
//
//	|r_i − y_i| ≤ abftRelC · (k + n) · 2⁻²⁴ · ŷ_i + abftAbsEps
//
// where ŷ_i = Σ_k |A_ik| · ŝ_k (ŝ over |B|) bounds the magnitude flowing
// into the row. A flip in an exponent or high-mantissa bit shifts the row
// sum far outside this envelope; flips in the lowest mantissa bits of
// values ≪ ŷ_i can hide inside it — the documented detection floor
// (DESIGN.md §15). Verification reads the kernel's output but never
// changes it: wrapping preserves bit-identical results on every backend.

const (
	// abftRelC is the safety factor on the float32 rounding-error model.
	// 32 covers the scalar ascending-k chains and the AVX2/FMA lane-split
	// reassociations measured in the kernel A/B suite, with headroom for
	// cancellation-heavy inputs.
	abftRelC = 32.0
	// abftAbsEps is the absolute floor of the envelope, for rows whose
	// magnitude sum is ~0 (all-zero operands still deserve a check).
	abftAbsEps = 1e-30
)

// ABFTError reports a matmul whose output failed checksum verification.
// The pipeline layer converts the panic carrying it into a typed
// comm.IntegrityError feeding the repair path.
type ABFTError struct {
	// Op is the kernel variant ("NN", "NT", "TN").
	Op string
	// M, N, K are the operation dimensions.
	M, N, K int
	// Row is the first output row whose checksum left the envelope.
	Row int
	// Diff is |rowsum − checksum| for that row; Tol is the envelope.
	Diff, Tol float64
	// Backend is the wrapped backend that produced the output.
	Backend string
}

func (e *ABFTError) Error() string {
	return fmt.Sprintf("tensor: ABFT checksum mismatch in MatMul%s [%d×%d×%d] on %q: row %d off by %.6g (tolerance %.6g)",
		e.Op, e.M, e.K, e.N, e.Backend, e.Row, e.Diff, e.Tol)
}

// abftBackend wraps another backend, verifying every matmul. All other
// kernels delegate untouched: they are O(n) with no reduction structure to
// checksum, so the belt/resident-state CRCs cover their outputs instead.
type abftBackend struct {
	inner Backend
}

// abftFault, when non-nil, is called with every verified matmul's output
// buffer between the kernel and its checksum verification — the seam the
// bit-flip chaos injector uses to prove kernel flips are detected. Stored
// atomically; nil in production.
var abftFault atomic.Pointer[func([]float32)]

// SetABFTFault installs (or, with nil, removes) the fault-injection hook
// called on every ABFT-verified matmul output. Test/chaos use only.
func SetABFTFault(h func([]float32)) {
	if h == nil {
		abftFault.Store(nil)
		return
	}
	abftFault.Store(&h)
}

// EnableABFT wraps the current backend with ABFT matmul verification.
// Idempotent; a later SetBackend replaces the wrapper (call EnableABFT
// again after switching backends).
func EnableABFT() {
	backendMu.Lock()
	defer backendMu.Unlock()
	cur := *curBackend.Load()
	if _, ok := cur.(*abftBackend); ok {
		return
	}
	b := Backend(&abftBackend{inner: cur})
	curBackend.Store(&b)
}

// DisableABFT unwraps the ABFT verifier, restoring the inner backend.
func DisableABFT() {
	backendMu.Lock()
	defer backendMu.Unlock()
	if w, ok := (*curBackend.Load()).(*abftBackend); ok {
		curBackend.Store(&w.inner)
	}
}

// ABFTEnabled reports whether the active backend verifies matmuls.
func ABFTEnabled() bool {
	_, ok := current().(*abftBackend)
	return ok
}

// Name implements Backend.
func (b *abftBackend) Name() string { return "abft(" + b.inner.Name() + ")" }

// Exact implements Backend: verification never alters results.
func (b *abftBackend) Exact() bool { return b.inner.Exact() }

// abftScratch pools the per-call float64 checksum vectors (s, ŝ, and the
// row budget both live in one backing slice) so steady-state verification
// allocates nothing even under concurrent callers.
var abftScratch = sync.Pool{
	New: func() any { s := make([]float64, 0, 1024); return &s },
}

func abftGet(n int) (*[]float64, []float64) {
	p := abftScratch.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	return p, (*p)[:n]
}

// rowSumCheck verifies Σ_j dst_ij against y (the predicted row sums) with
// the per-row envelope tol, panicking with an ABFTError on the first
// violation. prev, when non-nil, holds dst's row sums before an
// accumulating call — the check then covers only the kernel's contribution.
func (b *abftBackend) rowSumCheck(op string, dst *Tensor, m, n, k int, y, yabs, prev []float64) {
	d := dst.Data
	relScale := abftRelC * float64(k+n) / (1 << 24)
	for i := 0; i < m; i++ {
		var r float64
		row := d[i*n : (i+1)*n]
		for _, v := range row {
			r += float64(v)
		}
		if prev != nil {
			r -= prev[i]
		}
		diff := math.Abs(r - y[i])
		tol := relScale*yabs[i] + abftAbsEps
		if prev != nil {
			// An accumulating call sees the pre-existing dst rounded into
			// the float32 row as well; widen by its magnitude.
			tol += relScale * math.Abs(prev[i])
		}
		if diff > tol || r != r {
			panic(&ABFTError{Op: op, M: m, N: n, K: k, Row: i, Diff: diff, Tol: tol, Backend: b.inner.Name()})
		}
	}
}

// verifyMatMul runs one checksummed matmul. sum(bk) must return
// (Σ_j B_kj, Σ_j |B_kj|) for contraction index bk, and aRow(i, k) must
// return A's element multiplying it for output row i.
func (b *abftBackend) verifyMatMul(op string, dst *Tensor, m, n, k int, acc bool,
	aAt func(i, kk int) float32, bSum func(kk int) (float64, float64), kernel func()) {

	// One scratch block: s, ŝ (k each), y, ŷ, prev (m each).
	hold, buf := abftGet(2*k + 3*m)
	defer abftScratch.Put(hold)
	s, sabs := buf[:k], buf[k:2*k]
	y, yabs := buf[2*k:2*k+m], buf[2*k+m:2*k+2*m]
	var prev []float64
	for kk := 0; kk < k; kk++ {
		s[kk], sabs[kk] = bSum(kk)
	}
	if acc {
		prev = buf[2*k+2*m : 2*k+3*m]
		d := dst.Data
		for i := 0; i < m; i++ {
			var r float64
			for _, v := range d[i*n : (i+1)*n] {
				r += float64(v)
			}
			prev[i] = r
		}
	}
	for i := 0; i < m; i++ {
		var yi, ya float64
		for kk := 0; kk < k; kk++ {
			a := float64(aAt(i, kk))
			yi += a * s[kk]
			ya += math.Abs(a) * sabs[kk]
		}
		y[i], yabs[i] = yi, ya
	}

	kernel()

	if h := abftFault.Load(); h != nil {
		(*h)(dst.Data)
	}
	b.rowSumCheck(op, dst, m, n, k, y, yabs, prev)
}

// MatMulNN implements Backend with ABFT verification.
func (b *abftBackend) MatMulNN(dst, a, bb *Tensor, acc bool) {
	m, k, n := a.Rows(), a.Cols(), bb.Cols()
	ad, bd := a.Data, bb.Data
	b.verifyMatMul("NN", dst, m, n, k, acc,
		func(i, kk int) float32 { return ad[i*k+kk] },
		func(kk int) (float64, float64) {
			var s, sa float64
			for _, v := range bd[kk*n : (kk+1)*n] {
				s += float64(v)
				sa += math.Abs(float64(v))
			}
			return s, sa
		},
		func() { b.inner.MatMulNN(dst, a, bb, acc) })
}

// MatMulNT implements Backend with ABFT verification.
func (b *abftBackend) MatMulNT(dst, a, bb *Tensor, acc bool) {
	m, k, n := a.Rows(), a.Cols(), bb.Rows()
	ad, bd := a.Data, bb.Data
	b.verifyMatMul("NT", dst, m, n, k, acc,
		func(i, kk int) float32 { return ad[i*k+kk] },
		func(kk int) (float64, float64) {
			// s_k = Σ_j B_jk over B's rows (B is [n,k]).
			var s, sa float64
			for j := 0; j < n; j++ {
				v := float64(bd[j*k+kk])
				s += v
				sa += math.Abs(v)
			}
			return s, sa
		},
		func() { b.inner.MatMulNT(dst, a, bb, acc) })
}

// MatMulTN implements Backend with ABFT verification.
func (b *abftBackend) MatMulTN(dst, a, bb *Tensor, acc bool) {
	k, m, n := a.Rows(), a.Cols(), bb.Cols()
	ad, bd := a.Data, bb.Data
	b.verifyMatMul("TN", dst, m, n, k, acc,
		func(i, kk int) float32 { return ad[kk*m+i] },
		func(kk int) (float64, float64) {
			var s, sa float64
			for _, v := range bd[kk*n : (kk+1)*n] {
				s += float64(v)
				sa += math.Abs(float64(v))
			}
			return s, sa
		},
		func() { b.inner.MatMulTN(dst, a, bb, acc) })
}

// The remaining kernels delegate untouched.

func (b *abftBackend) Axpy(dst *Tensor, s float32, a *Tensor) { b.inner.Axpy(dst, s, a) }
func (b *abftBackend) Scale(dst, a *Tensor, s float32)        { b.inner.Scale(dst, a, s) }
func (b *abftBackend) AddInto(dst, a *Tensor)                 { b.inner.AddInto(dst, a) }
func (b *abftBackend) Dot(a, bb *Tensor) float64              { return b.inner.Dot(a, bb) }
func (b *abftBackend) DotF32(a, bb *Tensor) float32           { return b.inner.DotF32(a, bb) }
func (b *abftBackend) SiLU(dst, a *Tensor)                    { b.inner.SiLU(dst, a) }
func (b *abftBackend) SiLUBackward(dst, x, dy *Tensor)        { b.inner.SiLUBackward(dst, x, dy) }
func (b *abftBackend) SoftmaxRows(dst, a *Tensor)             { b.inner.SoftmaxRows(dst, a) }
func (b *abftBackend) SoftmaxRowsBackward(dst, y, dy *Tensor) {
	b.inner.SoftmaxRowsBackward(dst, y, dy)
}
func (b *abftBackend) RMSNormRows(y, inv, x, gain *Tensor, eps float64) {
	b.inner.RMSNormRows(y, inv, x, gain, eps)
}

var _ Backend = (*abftBackend)(nil)
