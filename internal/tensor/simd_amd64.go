//go:build !noasm

package tensor

// AVX2 backend: Go-side drivers for the assembly kernels in
// simd_avx2_amd64.s. Registered at init when the CPU supports AVX2+FMA;
// selected only by an explicit SetBackend("avx2"/"auto") call — the
// default backend stays scalar so all training strategies remain
// bit-identical to the reference unless the user opts in.
//
// Exactness partition (see DESIGN.md §13):
//
//   - NN and TN matmuls, Axpy, Scale, AddInto: vectorized across
//     independent output elements with the scalar per-element rounding
//     sequence (separate mul/add, no FMA) — bit-identical to scalar.
//   - NT matmul and DotF32: dot-product shaped, vectorized along the
//     reduction axis with 8 FMA lane chains and a fixed balanced
//     combine tree — reassociated relative to scalar, hence tolerance
//     mode. The order is a pure function of the shapes (never the
//     worker chunking), so results stay deterministic and every
//     strategy remains bit-identical to every other under this backend.
//   - Dot (float64), SiLU, Softmax, RMSNorm: delegate to the scalar
//     kernels (exp/sqrt-bound or float64; vectorizing buys little).

//go:noescape
func axpyAVX2(dst, a *float32, n8 int, s float32)

//go:noescape
func scaleAVX2(dst, a *float32, n8 int, s float32)

//go:noescape
func addIntoAVX2(dst, a *float32, n8 int)

//go:noescape
func dotAVX2(a, b *float32, n int) float32

//go:noescape
func nnQuadAVX2(drow, b0, b1, b2, b3 *float32, n8 int, a0, a1, a2, a3 float32)

//go:noescape
func ntQuad2AVX2(a0, a1, b *float32, k8, kstride int, out *float32)

//go:noescape
func ntQuad1AVX2(a, b *float32, k8, kstride int, out *float32)

func init() {
	if cpuHasAVX2FMA() {
		registerBackend(avx2Backend{})
	}
}

// avx2Backend implements Backend with the AVX2/FMA kernels.
type avx2Backend struct{}

func (avx2Backend) Name() string { return "avx2" }

// Exact is false because the NT matmul and DotF32 use FMA lane chains
// (reassociated relative to the scalar reference). All other primitives
// are bit-identical to scalar; the equivalence suite enforces both halves
// of this contract.
func (avx2Backend) Exact() bool { return false }

func (avx2Backend) MatMulNN(dst, a, b *Tensor, acc bool) { matmulNN(dst, a, b, acc, true) }
func (avx2Backend) MatMulNT(dst, a, b *Tensor, acc bool) { matmulNT(dst, a, b, acc, true) }
func (avx2Backend) MatMulTN(dst, a, b *Tensor, acc bool) { matmulTN(dst, a, b, acc, true) }

func (avx2Backend) Axpy(dst *Tensor, s float32, a *Tensor) {
	d, src := dst.Data, a.Data
	n8 := len(d) >> 3
	if n8 > 0 {
		axpyAVX2(&d[0], &src[0], n8, s)
	}
	for i := n8 << 3; i < len(d); i++ {
		d[i] += s * src[i]
	}
}

func (avx2Backend) Scale(dst, a *Tensor, s float32) {
	d, src := dst.Data, a.Data
	n8 := len(d) >> 3
	if n8 > 0 {
		scaleAVX2(&d[0], &src[0], n8, s)
	}
	for i := n8 << 3; i < len(d); i++ {
		d[i] = s * src[i]
	}
}

func (avx2Backend) AddInto(dst, a *Tensor) {
	d, src := dst.Data, a.Data
	n8 := len(d) >> 3
	if n8 > 0 {
		addIntoAVX2(&d[0], &src[0], n8)
	}
	for i := n8 << 3; i < len(d); i++ {
		d[i] += src[i]
	}
}

func (avx2Backend) Dot(a, b *Tensor) float64 { return dotScalar(a, b) }

func (avx2Backend) DotF32(a, b *Tensor) float32 {
	if len(a.Data) == 0 {
		return 0
	}
	return dotAVX2(&a.Data[0], &b.Data[0], len(a.Data))
}

func (avx2Backend) SiLU(dst, a *Tensor)                    { siluScalar(dst, a) }
func (avx2Backend) SiLUBackward(dst, x, dy *Tensor)        { siluBackwardScalar(dst, x, dy) }
func (avx2Backend) SoftmaxRows(dst, a *Tensor)             { softmaxRowsScalar(dst, a) }
func (avx2Backend) SoftmaxRowsBackward(dst, y, dy *Tensor) { softmaxRowsBackwardScalar(dst, y, dy) }

func (avx2Backend) RMSNormRows(y, inv, x, gain *Tensor, eps float64) {
	rmsNormRowsScalar(y, inv, x, gain, eps)
}

// simdNNRange is the AVX2 NN kernel over dst rows [lo, hi). Same blocking
// and identical per-element accumulation order as mmNNRange: the k-quad
// body runs through nnQuadAVX2 (mul/add, no FMA) and the j/k remainders
// run the scalar expressions, so the result is bit-identical to scalar.
func simdNNRange(g *mmArgs, lo, hi int) {
	ad, bd, dd := g.ad, g.bd, g.dd
	n, k := g.n, g.k
	if !g.acc {
		for i := lo; i < hi; i++ {
			row := dd[i*n : (i+1)*n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	for j0 := 0; j0 < n; j0 += blockN {
		j1 := j0 + blockN
		if j1 > n {
			j1 = n
		}
		jw := j1 - j0
		j8 := jw &^ 7
		for k0 := 0; k0 < k; k0 += blockK {
			k1 := k0 + blockK
			if k1 > k {
				k1 = k
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				drow := dd[i*n+j0 : i*n+j1]
				p := k0
				for ; p+3 < k1; p += 4 {
					a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
					b0 := bd[p*n+j0 : p*n+j1]
					b1 := bd[(p+1)*n+j0 : (p+1)*n+j1]
					b2 := bd[(p+2)*n+j0 : (p+2)*n+j1]
					b3 := bd[(p+3)*n+j0 : (p+3)*n+j1]
					if j8 > 0 {
						nnQuadAVX2(&drow[0], &b0[0], &b1[0], &b2[0], &b3[0], j8>>3, a0, a1, a2, a3)
					}
					for j := j8; j < jw; j++ {
						drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; p < k1; p++ {
					av := arow[p]
					brow := bd[p*n+j0 : p*n+j1]
					if j8 > 0 {
						axpyAVX2(&drow[0], &brow[0], j8>>3, av)
					}
					for j := j8; j < jw; j++ {
						drow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// simdTNRange mirrors simdNNRange for aᵀ·b; only the four a loads differ
// (strided a[p..p+3][i]). Bit-identical to mmTNRange.
func simdTNRange(g *mmArgs, lo, hi int) {
	ad, bd, dd := g.ad, g.bd, g.dd
	m, n, k := g.m, g.n, g.k
	if !g.acc {
		for i := lo; i < hi; i++ {
			row := dd[i*n : (i+1)*n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	for j0 := 0; j0 < n; j0 += blockN {
		j1 := j0 + blockN
		if j1 > n {
			j1 = n
		}
		jw := j1 - j0
		j8 := jw &^ 7
		for k0 := 0; k0 < k; k0 += blockK {
			k1 := k0 + blockK
			if k1 > k {
				k1 = k
			}
			for i := lo; i < hi; i++ {
				drow := dd[i*n+j0 : i*n+j1]
				p := k0
				for ; p+3 < k1; p += 4 {
					a0 := ad[p*m+i]
					a1 := ad[(p+1)*m+i]
					a2 := ad[(p+2)*m+i]
					a3 := ad[(p+3)*m+i]
					b0 := bd[p*n+j0 : p*n+j1]
					b1 := bd[(p+1)*n+j0 : (p+1)*n+j1]
					b2 := bd[(p+2)*n+j0 : (p+2)*n+j1]
					b3 := bd[(p+3)*n+j0 : (p+3)*n+j1]
					if j8 > 0 {
						nnQuadAVX2(&drow[0], &b0[0], &b1[0], &b2[0], &b3[0], j8>>3, a0, a1, a2, a3)
					}
					for j := j8; j < jw; j++ {
						drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; p < k1; p++ {
					av := ad[p*m+i]
					brow := bd[p*n+j0 : p*n+j1]
					if j8 > 0 {
						axpyAVX2(&drow[0], &brow[0], j8>>3, av)
					}
					for j := j8; j < jw; j++ {
						drow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// simdNTRange is the AVX2 NT kernel over dst rows [lo, hi): 2 dst rows ×
// 4 columns register blocking through ntQuad2AVX2, each b vector feeding
// two FMAs. Rows pair on global parity (2t with 2t+1) so the pairing —
// and with it every element's accumulation order — is independent of the
// worker chunking; a chunk-boundary row runs the single-row kernel, which
// follows the identical per-column contract.
//
// Per-column contract (shared by ntQuad2AVX2, ntQuad1AVX2 and dotAVX2):
// main sum = 8 ascending FMA lane chains combined by the balanced tree
// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)); the k%8 remainder folds in
// ascending with one mul+add per element; finally dst = sum (store) or
// dst += sum (accumulate).
func simdNTRange(g *mmArgs, lo, hi int) {
	ad, bd, dd := g.ad, g.bd, g.dd
	n, k := g.n, g.k
	k8 := k >> 3
	kTail := k8 << 3
	kstride := k * 4
	nq := n >> 2
	var out [8]float32
	i := lo
	if i < hi && i&1 == 1 {
		ntRowSIMD(g, i, nq, k8, kTail, kstride)
		i++
	}
	for ; i+1 < hi; i += 2 {
		arow0 := ad[i*k : (i+1)*k]
		arow1 := ad[(i+1)*k : (i+2)*k]
		drow0 := dd[i*n : (i+1)*n]
		drow1 := dd[(i+1)*n : (i+2)*n]
		for q := 0; q < nq; q++ {
			j := q * 4
			if k8 > 0 {
				ntQuad2AVX2(&arow0[0], &arow1[0], &bd[j*k], k8, kstride, &out[0])
			} else {
				out = [8]float32{}
			}
			for c := 0; c < 4; c++ {
				s0, s1 := out[c], out[4+c]
				brow := bd[(j+c)*k : (j+c+1)*k]
				for p := kTail; p < k; p++ {
					s0 += arow0[p] * brow[p]
					s1 += arow1[p] * brow[p]
				}
				if g.acc {
					drow0[j+c] += s0
					drow1[j+c] += s1
				} else {
					drow0[j+c] = s0
					drow1[j+c] = s1
				}
			}
		}
		for j := nq * 4; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s0, s1 float32
			if k > 0 {
				s0 = dotAVX2(&arow0[0], &brow[0], k)
				s1 = dotAVX2(&arow1[0], &brow[0], k)
			}
			if g.acc {
				drow0[j] += s0
				drow1[j] += s1
			} else {
				drow0[j] = s0
				drow1[j] = s1
			}
		}
	}
	if i < hi {
		ntRowSIMD(g, i, nq, k8, kTail, kstride)
	}
}

// ntRowSIMD computes one NT dst row with the single-row kernel, following
// exactly the per-column contract of the pair path.
func ntRowSIMD(g *mmArgs, i, nq, k8, kTail, kstride int) {
	ad, bd, dd := g.ad, g.bd, g.dd
	n, k := g.n, g.k
	arow := ad[i*k : (i+1)*k]
	drow := dd[i*n : (i+1)*n]
	var out [4]float32
	for q := 0; q < nq; q++ {
		j := q * 4
		if k8 > 0 {
			ntQuad1AVX2(&arow[0], &bd[j*k], k8, kstride, &out[0])
		} else {
			out = [4]float32{}
		}
		for c := 0; c < 4; c++ {
			s := out[c]
			brow := bd[(j+c)*k : (j+c+1)*k]
			for p := kTail; p < k; p++ {
				s += arow[p] * brow[p]
			}
			if g.acc {
				drow[j+c] += s
			} else {
				drow[j+c] = s
			}
		}
	}
	for j := nq * 4; j < n; j++ {
		brow := bd[j*k : (j+1)*k]
		var s float32
		if k > 0 {
			s = dotAVX2(&arow[0], &brow[0], k)
		}
		if g.acc {
			drow[j] += s
		} else {
			drow[j] = s
		}
	}
}
