package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// withABFT runs f with the ABFT wrapper installed, restoring the plain
// backend (and clearing any fault hook) afterwards.
func withABFT(t *testing.T, f func()) {
	t.Helper()
	EnableABFT()
	defer func() {
		SetABFTFault(nil)
		DisableABFT()
	}()
	if !ABFTEnabled() {
		t.Fatal("EnableABFT did not install the wrapper")
	}
	f()
}

// TestABFTCleanPass: correct kernels of every variant, plain and
// accumulating, must pass verification and produce bit-identical output to
// the unwrapped backend.
func TestABFTCleanPass(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 17, 23, 13
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	bt := randTensor(rng, n, k) // for NT
	at := randTensor(rng, k, m) // for TN

	type op struct {
		name string
		run  func(dst *Tensor)
	}
	ops := []op{
		{"NN", func(d *Tensor) { MatMul(d, a, b) }},
		{"NN+acc", func(d *Tensor) { MatMulAcc(d, a, b) }},
		{"NT", func(d *Tensor) { MatMulTB(d, a, bt) }},
		{"NT+acc", func(d *Tensor) { MatMulTBAcc(d, a, bt) }},
		{"TN", func(d *Tensor) { MatMulTA(d, at, b) }},
		{"TN+acc", func(d *Tensor) { MatMulTAAcc(d, at, b) }},
	}
	for _, o := range ops {
		plain := New(m, n)
		for i := range plain.Data {
			plain.Data[i] = float32(i%7) * 0.5 // nonzero acc baseline
		}
		wrapped := New(m, n)
		copy(wrapped.Data, plain.Data)
		o.run(plain)
		withABFT(t, func() { o.run(wrapped) })
		for i := range plain.Data {
			if math.Float32bits(plain.Data[i]) != math.Float32bits(wrapped.Data[i]) {
				t.Fatalf("%s: ABFT changed output at %d: %v vs %v", o.name, i, plain.Data[i], wrapped.Data[i])
			}
		}
	}
}

// TestABFTDetectsFlip: a high-bit flip planted in the kernel output via the
// fault hook must panic with a localizing ABFTError.
func TestABFTDetectsFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, k, n := 9, 31, 21
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	dst := New(m, n)

	const wantRow = 4
	withABFT(t, func() {
		SetABFTFault(func(out []float32) {
			idx := wantRow*n + 3
			out[idx] = math.Float32frombits(math.Float32bits(out[idx]) ^ 1<<30)
		})
		defer func() {
			r := recover()
			ae, ok := r.(*ABFTError)
			if !ok {
				t.Fatalf("expected *ABFTError panic, got %v", r)
			}
			if ae.Op != "NN" || ae.M != m || ae.N != n || ae.K != k {
				t.Fatalf("wrong localization: %v", ae)
			}
			if ae.Row != wantRow {
				t.Fatalf("flip in row %d reported as row %d", wantRow, ae.Row)
			}
		}()
		MatMul(dst, a, b)
		t.Fatal("flipped output passed verification")
	})
}

// TestABFTDetectsFlipAllVariants exercises the NT/TN and accumulate paths
// with an exponent-bit flip each.
func TestABFTDetectsFlipAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, k, n := 8, 16, 12
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	bt := randTensor(rng, n, k)
	at := randTensor(rng, k, m)
	runs := []struct {
		name string
		run  func(dst *Tensor)
	}{
		{"NT", func(d *Tensor) { MatMulTB(d, a, bt) }},
		{"TN", func(d *Tensor) { MatMulTA(d, at, b) }},
		{"NN+acc", func(d *Tensor) { MatMulAcc(d, a, b) }},
	}
	for _, o := range runs {
		dst := New(m, n)
		caught := false
		withABFT(t, func() {
			SetABFTFault(func(out []float32) {
				out[5] = math.Float32frombits(math.Float32bits(out[5]) ^ 1<<27)
			})
			defer func() {
				if _, ok := recover().(*ABFTError); ok {
					caught = true
				}
			}()
			o.run(dst)
		})
		if !caught {
			t.Fatalf("%s: flip not caught", o.name)
		}
	}
}

// TestABFTToleranceEnvelope: honest float32 rounding noise must stay
// inside the envelope even for cancellation-heavy inputs, across many
// random shapes.
func TestABFTToleranceEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	withABFT(t, func() {
		for trial := 0; trial < 50; trial++ {
			m, k, n := 1+rng.Intn(24), 1+rng.Intn(64), 1+rng.Intn(24)
			a := randTensor(rng, m, k)
			b := randTensor(rng, k, n)
			// Mix in large-magnitude cancelling pairs.
			for i := 0; i+1 < len(a.Data); i += 2 {
				s := float32(int32(1) << (10 + i%8))
				a.Data[i] *= s
				a.Data[i+1] *= -s
			}
			dst := New(m, n)
			MatMul(dst, a, b) // panics on a false positive
		}
	})
}

// TestABFTZeroOperands: degenerate all-zero inputs must verify (the
// absolute epsilon floor).
func TestABFTZeroOperands(t *testing.T) {
	withABFT(t, func() {
		dst := New(4, 4)
		MatMul(dst, New(4, 4), New(4, 4))
	})
}

func TestABFTSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randTensor(rng, 16, 16)
	b := randTensor(rng, 16, 16)
	dst := New(16, 16)
	withABFT(t, func() {
		MatMul(dst, a, b) // warm the scratch pool
		allocs := testing.AllocsPerRun(50, func() { MatMul(dst, a, b) })
		if allocs > 0 {
			t.Fatalf("ABFT-wrapped matmul allocates %.1f per call in steady state", allocs)
		}
	})
}

func TestABFTNameAndDisable(t *testing.T) {
	base := current().Name()
	EnableABFT()
	if got := current().Name(); got != "abft("+base+")" {
		t.Fatalf("wrapped name %q", got)
	}
	EnableABFT() // idempotent
	if got := current().Name(); got != "abft("+base+")" {
		t.Fatalf("double-enable nested: %q", got)
	}
	DisableABFT()
	if ABFTEnabled() {
		t.Fatal("DisableABFT left the wrapper installed")
	}
	if got := current().Name(); got != base {
		t.Fatalf("unwrapped name %q, want %q", got, base)
	}
}
