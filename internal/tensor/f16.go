package tensor

import "math"

// This file emulates the paper's mixed-precision storage formats. The paper
// stores activations, weights and weight-gradients in fp16, activation
// gradients in bf16, and optimizer state in fp32. We compute in fp32 but can
// round values through fp16/bf16 so that the numerical behaviour (and the
// byte counts used by the cost model) match the paper's recipe.

// F32ToF16 converts a float32 to IEEE 754 binary16, round-to-nearest-even,
// with overflow to infinity and subnormal flushing handled per the standard.
func F32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow or inf/nan
		if int32(b>>23&0xff) == 0xff {
			if mant != 0 {
				return sign | 0x7e00 // nan
			}
			return sign | 0x7c00 // inf
		}
		return sign | 0x7c00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		v := mant >> shift
		// round to nearest even
		if mant&(half<<1-1) > half || (mant&half != 0 && v&1 == 1) {
			v++
		}
		return sign | uint16(v)
	default:
		v := uint16(exp)<<10 | uint16(mant>>13)
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
			v++
		}
		return sign | v
	}
}

// F16ToF32 converts an IEEE 754 binary16 value to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f:
		if mant != 0 {
			return math.Float32frombits(sign | 0x7fc00000)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalise
		for mant&0x400 == 0 {
			mant <<= 1
			exp--
		}
		mant &= 0x3ff
		exp++
		return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
	}
}

// F32ToBF16 converts a float32 to bfloat16 (stored in uint16), with
// round-to-nearest-even. NaNs are preserved quiet.
func F32ToBF16(f float32) uint16 {
	b := math.Float32bits(f)
	if b&0x7fffffff > 0x7f800000 { // nan
		return uint16(b>>16) | 0x0040
	}
	rounding := uint32(0x7fff + (b>>16)&1)
	return uint16((b + rounding) >> 16)
}

// BF16ToF32 converts a bfloat16 value back to float32.
func BF16ToF32(h uint16) float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// RoundF16 rounds every element of t through fp16 in place.
func RoundF16(t *Tensor) {
	for i, v := range t.Data {
		t.Data[i] = F16ToF32(F32ToF16(v))
	}
}

// RoundBF16 rounds every element of t through bf16 in place.
func RoundBF16(t *Tensor) {
	for i, v := range t.Data {
		t.Data[i] = BF16ToF32(F32ToBF16(v))
	}
}

// RoundBF16Slice rounds every element of x through bf16 in place — the
// value-domain effect of shipping x over a bf16 wire and decoding it back.
func RoundBF16Slice(x []float32) {
	for i, v := range x {
		x[i] = BF16ToF32(F32ToBF16(v))
	}
}

// PackBF16LE encodes src as little-endian bf16 words into dst, which must
// hold 2·len(src) bytes. It allocates nothing; the transports use it to
// halve belt payloads on the wire.
func PackBF16LE(dst []byte, src []float32) {
	if len(dst) < 2*len(src) {
		panic("tensor: PackBF16LE dst too short")
	}
	for i, v := range src {
		h := F32ToBF16(v)
		dst[2*i] = byte(h)
		dst[2*i+1] = byte(h >> 8)
	}
}

// UnpackBF16LE decodes little-endian bf16 words from src into dst, which
// must hold len(src)/2 float32s. It allocates nothing.
func UnpackBF16LE(dst []float32, src []byte) {
	n := len(src) / 2
	if len(dst) < n {
		panic("tensor: UnpackBF16LE dst too short")
	}
	for i := 0; i < n; i++ {
		h := uint16(src[2*i]) | uint16(src[2*i+1])<<8
		dst[i] = BF16ToF32(h)
	}
}

// PackF16 encodes src into half-precision words.
func PackF16(src []float32) []uint16 {
	out := make([]uint16, len(src))
	for i, v := range src {
		out[i] = F32ToF16(v)
	}
	return out
}

// UnpackF16 decodes half-precision words into float32s.
func UnpackF16(src []uint16) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = F16ToF32(v)
	}
	return out
}
