// Package tensor implements a small dense float32 tensor engine used by the
// WeiPipe training runtime and its baselines.
//
// Tensors are row-major and always contiguous. The package favours
// predictable memory behaviour over generality: shapes are immutable after
// creation, views share storage explicitly via Slice/Reshape, and all
// compute happens in float32 with optional float16 round-tripping to emulate
// the mixed-precision storage/wire format the paper uses.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major, contiguous float32 tensor.
type Tensor struct {
	// Data holds the elements in row-major order. len(Data) == Size().
	Data []float32
	// shape holds the dimension sizes. It is never mutated after creation.
	shape []int
}

// New creates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Data: make([]float32, n), shape: dup(shape)}
}

// FromSlice wraps data in a tensor with the given shape. The tensor aliases
// data; it does not copy.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(data) {
		panic(fmt.Sprintf("tensor: FromSlice shape %v needs %d elems, got %d", shape, n, len(data)))
	}
	return &Tensor{Data: data, shape: dup(shape)}
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	bad := false
	for _, d := range shape {
		if d <= 0 {
			bad = true
		}
		n *= d
	}
	if bad {
		// Copy before formatting: handing shape itself to fmt would make
		// every caller's variadic shape argument escape to the heap.
		panic(fmt.Sprintf("tensor: non-positive dim in shape %v", dup(shape)))
	}
	return n
}

func dup(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// Shape returns the dimension sizes. The caller must not mutate the result.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rows returns the product of all dimensions except the last; Cols returns
// the last dimension. Together they give the canonical 2-D view used by the
// matmul kernels.
func (t *Tensor) Rows() int { return t.Size() / t.Cols() }

// Cols returns the size of the last dimension.
func (t *Tensor) Cols() int { return t.shape[len(t.shape)-1] }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.shape...)
	copy(out.Data, t.Data)
	return out
}

// CopyFrom copies src's elements into t. Shapes must have equal sizes.
func (t *Tensor) CopyFrom(src *Tensor) {
	if t.Size() != src.Size() {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d != %d", t.Size(), src.Size()))
	}
	copy(t.Data, src.Data)
}

// Reshape returns a view with a new shape sharing storage. The total element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != t.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{Data: t.Data, shape: dup(shape)}
}

// Row returns a view of row i of the canonical 2-D view.
func (t *Tensor) Row(i int) *Tensor {
	c := t.Cols()
	if i < 0 || i >= t.Rows() {
		panic(fmt.Sprintf("tensor: row %d out of range (%d rows)", i, t.Rows()))
	}
	return &Tensor{Data: t.Data[i*c : (i+1)*c : (i+1)*c], shape: []int{c}}
}

// SliceRows returns a view of rows [lo,hi) of the canonical 2-D view.
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	c := t.Cols()
	r := t.Rows()
	if lo < 0 || hi > r || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range (%d rows)", lo, hi, r))
	}
	return &Tensor{Data: t.Data[lo*c : hi*c : hi*c], shape: []int{hi - lo, c}}
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := t.Size()
	k := n
	if k > 8 {
		k = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.Data[:k])
}

// MaxAbs returns the largest absolute element value (0 for empty data).
// NaNs are ignored, as in the float64 formulation (NaN comparisons are
// false), but the scan stays in float32 with no conversion per element.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all elements in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// AllFinite reports whether every element is finite (no NaN/Inf). A float32
// is NaN or Inf exactly when its exponent bits are all ones, so one bit test
// replaces the float64 round-trip per element.
func (t *Tensor) AllFinite() bool {
	const expMask = 0x7f80_0000
	for _, v := range t.Data {
		if math.Float32bits(v)&expMask == expMask {
			return false
		}
	}
	return true
}
