package tensor

import "fmt"

// parallelThreshold is the approximate FLOP count below which matmuls run on
// the calling goroutine. Small problems are dominated by dispatch overhead.
const parallelThreshold = 1 << 17

// blockK is the k-panel size of the cache-blocked NN/TN kernels.
const blockK = 64

// blockN is the j-block width of the NN/TN kernels: the dst row segment and
// the four active b row segments stay resident in L1 while a k panel streams.
const blockN = 256

// MatMul computes dst = a·b where a is [m,k] and b is [k,n] under the
// canonical 2-D views. dst must be [m,n] and must not alias a or b.
func MatMul(dst, a, b *Tensor) { current().MatMulNN(dst, a, b, false) }

// MatMulAcc computes dst += a·b.
func MatMulAcc(dst, a, b *Tensor) { current().MatMulNN(dst, a, b, true) }

// MatMulTB computes dst = a·bᵀ where a is [m,k] and b is [n,k]. dst must be
// [m,n] and must not alias a or b. This is the shape of dX = dY·Wᵀ with W
// stored [in,out], and of attention scores Q·Kᵀ.
func MatMulTB(dst, a, b *Tensor) { current().MatMulNT(dst, a, b, false) }

// MatMulTBAcc computes dst += a·bᵀ.
func MatMulTBAcc(dst, a, b *Tensor) { current().MatMulNT(dst, a, b, true) }

// MatMulTA computes dst = aᵀ·b where a is [k,m] and b is [k,n]. dst must be
// [m,n] and must not alias a or b. This is the shape of dW = Xᵀ·dY.
func MatMulTA(dst, a, b *Tensor) { current().MatMulTN(dst, a, b, false) }

// MatMulTAAcc computes dst += aᵀ·b.
func MatMulTAAcc(dst, a, b *Tensor) { current().MatMulTN(dst, a, b, true) }

// mmKind selects the concrete kernel of a dispatched matmul.
type mmKind uint8

const (
	mmNN mmKind = iota
	mmNT
	mmTN
)

// mmArgs carries a kernel invocation by value through the worker pool, so a
// dispatch allocates nothing: no closures are formed and the tensor data is
// referenced through plain slices.
type mmArgs struct {
	kind       mmKind
	acc        bool
	simd       bool
	ad, bd, dd []float32
	m, n, k    int
}

// run executes the kernel over dst rows [lo, hi). Every dst element is
// produced by a fixed-order accumulation that depends only on the shapes
// and the selected backend, never on the chunking, so parallel and serial
// runs are bitwise identical.
//
// The simd range kernels are statically linked (build-tagged stubs fall
// back to the scalar kernels) rather than dispatched through function
// values: a function-value call would make g escape and put one heap
// allocation back on every matmul.
func (g *mmArgs) run(lo, hi int) {
	if g.simd {
		switch g.kind {
		case mmNN:
			simdNNRange(g, lo, hi)
		case mmNT:
			simdNTRange(g, lo, hi)
		case mmTN:
			simdTNRange(g, lo, hi)
		}
		return
	}
	switch g.kind {
	case mmNN:
		mmNNRange(g, lo, hi)
	case mmNT:
		mmNTRange(g, lo, hi)
	case mmTN:
		mmTNRange(g, lo, hi)
	}
}

func matmulNN(dst, a, b *Tensor, acc, simd bool) {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMul shapes %v x %v -> %v", a.shape, b.shape, dst.shape))
	}
	args := mmArgs{kind: mmNN, acc: acc, simd: simd, ad: a.Data, bd: b.Data, dd: dst.Data, m: m, n: n, k: k}
	dispatch(&args, m, m*n*k)
}

func matmulNT(dst, a, b *Tensor, acc, simd bool) {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulTB shapes %v x %vᵀ -> %v", a.shape, b.shape, dst.shape))
	}
	args := mmArgs{kind: mmNT, acc: acc, simd: simd, ad: a.Data, bd: b.Data, dd: dst.Data, m: m, n: n, k: k}
	dispatch(&args, m, m*n*k)
}

func matmulTN(dst, a, b *Tensor, acc, simd bool) {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulTA shapes %vᵀ x %v -> %v", a.shape, b.shape, dst.shape))
	}
	// Parallelise over output rows (columns of a) so workers never write the
	// same dst element.
	args := mmArgs{kind: mmTN, acc: acc, simd: simd, ad: a.Data, bd: b.Data, dd: dst.Data, m: m, n: n, k: k}
	dispatch(&args, m, m*n*k)
}

// mmNNRange is a j-blocked i-k-j kernel with a 4-wide k unroll: each pass
// folds four b rows into the dst row segment, quartering dst load/store
// traffic versus the scalar i-k-j loop. The per-element accumulation order
// stays ascending in k (Go's left-associative +), matching the scalar loop.
func mmNNRange(g *mmArgs, lo, hi int) {
	ad, bd, dd := g.ad, g.bd, g.dd
	n, k := g.n, g.k
	if !g.acc {
		for i := lo; i < hi; i++ {
			row := dd[i*n : (i+1)*n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	for j0 := 0; j0 < n; j0 += blockN {
		j1 := j0 + blockN
		if j1 > n {
			j1 = n
		}
		for k0 := 0; k0 < k; k0 += blockK {
			k1 := k0 + blockK
			if k1 > k {
				k1 = k
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				drow := dd[i*n+j0 : i*n+j1]
				p := k0
				for ; p+3 < k1; p += 4 {
					a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
					b0 := bd[p*n+j0 : p*n+j1]
					b1 := bd[(p+1)*n+j0 : (p+1)*n+j1]
					b2 := bd[(p+2)*n+j0 : (p+2)*n+j1]
					b3 := bd[(p+3)*n+j0 : (p+3)*n+j1]
					b0 = b0[:len(drow)]
					b1 = b1[:len(drow)]
					b2 = b2[:len(drow)]
					b3 = b3[:len(drow)]
					for j := range drow {
						drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; p < k1; p++ {
					av := arow[p]
					brow := bd[p*n+j0 : p*n+j1]
					brow = brow[:len(drow)]
					for j := range drow {
						drow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// mmNTRange computes a·bᵀ as row-dot-row products, four b rows at a time:
// one pass over the a row feeds four independent accumulator chains (one per
// j column), so each a element loaded is reused across four dot products and
// the chains hide each other's add latency. Quad columns accumulate in
// ascending k with a single chain; the j remainder falls back to a
// 4-accumulator strided dot. Which path an element takes — and therefore its
// combine order — depends only on the shapes, never on the worker chunking.
func mmNTRange(g *mmArgs, lo, hi int) {
	ad, bd, dd := g.ad, g.bd, g.dd
	n, k := g.n, g.k
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		drow := dd[i*n : (i+1)*n]
		j := 0
		for ; j+3 < n; j += 4 {
			b0 := bd[j*k : (j+1)*k]
			b1 := bd[(j+1)*k : (j+2)*k]
			b2 := bd[(j+2)*k : (j+3)*k]
			b3 := bd[(j+3)*k : (j+4)*k]
			b0 = b0[:len(arow)]
			b1 = b1[:len(arow)]
			b2 = b2[:len(arow)]
			b3 = b3[:len(arow)]
			var s0, s1, s2, s3 float32
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			if g.acc {
				drow[j] += s0
				drow[j+1] += s1
				drow[j+2] += s2
				drow[j+3] += s3
			} else {
				drow[j] = s0
				drow[j+1] = s1
				drow[j+2] = s2
				drow[j+3] = s3
			}
		}
		for ; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			brow = brow[:len(arow)]
			var s0, s1, s2, s3 float32
			p := 0
			for ; p+3 < len(arow); p += 4 {
				s0 += arow[p] * brow[p]
				s1 += arow[p+1] * brow[p+1]
				s2 += arow[p+2] * brow[p+2]
				s3 += arow[p+3] * brow[p+3]
			}
			s := (s0 + s1) + (s2 + s3)
			for ; p < len(arow); p++ {
				s += arow[p] * brow[p]
			}
			if g.acc {
				drow[j] += s
			} else {
				drow[j] = s
			}
		}
	}
}

// mmTNRange mirrors mmNNRange for aᵀ·b: the four a values per pass are
// strided loads a[p..p+3][i], amortised over the j block.
func mmTNRange(g *mmArgs, lo, hi int) {
	ad, bd, dd := g.ad, g.bd, g.dd
	m, n, k := g.m, g.n, g.k
	if !g.acc {
		for i := lo; i < hi; i++ {
			row := dd[i*n : (i+1)*n]
			for j := range row {
				row[j] = 0
			}
		}
	}
	for j0 := 0; j0 < n; j0 += blockN {
		j1 := j0 + blockN
		if j1 > n {
			j1 = n
		}
		for k0 := 0; k0 < k; k0 += blockK {
			k1 := k0 + blockK
			if k1 > k {
				k1 = k
			}
			for i := lo; i < hi; i++ {
				drow := dd[i*n+j0 : i*n+j1]
				p := k0
				for ; p+3 < k1; p += 4 {
					a0 := ad[p*m+i]
					a1 := ad[(p+1)*m+i]
					a2 := ad[(p+2)*m+i]
					a3 := ad[(p+3)*m+i]
					b0 := bd[p*n+j0 : p*n+j1]
					b1 := bd[(p+1)*n+j0 : (p+1)*n+j1]
					b2 := bd[(p+2)*n+j0 : (p+2)*n+j1]
					b3 := bd[(p+3)*n+j0 : (p+3)*n+j1]
					b0 = b0[:len(drow)]
					b1 = b1[:len(drow)]
					b2 = b2[:len(drow)]
					b3 = b3[:len(drow)]
					for j := range drow {
						drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; p < k1; p++ {
					av := ad[p*m+i]
					brow := bd[p*n+j0 : p*n+j1]
					brow = brow[:len(drow)]
					for j := range drow {
						drow[j] += av * brow[j]
					}
				}
			}
		}
	}
}
