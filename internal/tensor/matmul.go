package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the approximate FLOP count below which matmuls run on
// the calling goroutine. Small problems are dominated by goroutine dispatch.
const parallelThreshold = 1 << 17

// blockK is the k-panel size of the cache-blocked kernel.
const blockK = 64

// MatMul computes dst = a·b where a is [m,k] and b is [k,n] under the
// canonical 2-D views. dst must be [m,n] and must not alias a or b.
func MatMul(dst, a, b *Tensor) { matmulNN(dst, a, b, false) }

// MatMulAcc computes dst += a·b.
func MatMulAcc(dst, a, b *Tensor) { matmulNN(dst, a, b, true) }

// MatMulTB computes dst = a·bᵀ where a is [m,k] and b is [n,k]. dst must be
// [m,n] and must not alias a or b. This is the shape of dX = dY·Wᵀ with W
// stored [in,out], and of attention scores Q·Kᵀ.
func MatMulTB(dst, a, b *Tensor) { matmulNT(dst, a, b, false) }

// MatMulTBAcc computes dst += a·bᵀ.
func MatMulTBAcc(dst, a, b *Tensor) { matmulNT(dst, a, b, true) }

// MatMulTA computes dst = aᵀ·b where a is [k,m] and b is [k,n]. dst must be
// [m,n] and must not alias a or b. This is the shape of dW = Xᵀ·dY.
func MatMulTA(dst, a, b *Tensor) { matmulTN(dst, a, b, false) }

// MatMulTAAcc computes dst += aᵀ·b.
func MatMulTAAcc(dst, a, b *Tensor) { matmulTN(dst, a, b, true) }

func matmulNN(dst, a, b *Tensor, acc bool) {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMul shapes %v x %v -> %v", a.shape, b.shape, dst.shape))
	}
	parallelRows(m, m*n*k, func(lo, hi int) {
		ad, bd, dd := a.Data, b.Data, dst.Data
		if !acc {
			for i := lo; i < hi; i++ {
				row := dd[i*n : (i+1)*n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		// i-k-j loop with k panels: streams b rows, accumulates into dst row.
		for k0 := 0; k0 < k; k0 += blockK {
			k1 := k0 + blockK
			if k1 > k {
				k1 = k
			}
			for i := lo; i < hi; i++ {
				arow := ad[i*k : (i+1)*k]
				drow := dd[i*n : (i+1)*n]
				for p := k0; p < k1; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := bd[p*n : (p+1)*n]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	})
}

func matmulNT(dst, a, b *Tensor, acc bool) {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulTB shapes %v x %vᵀ -> %v", a.shape, b.shape, dst.shape))
	}
	parallelRows(m, m*n*k, func(lo, hi int) {
		ad, bd, dd := a.Data, b.Data, dst.Data
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			drow := dd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				if acc {
					drow[j] += s
				} else {
					drow[j] = s
				}
			}
		}
	})
}

func matmulTN(dst, a, b *Tensor, acc bool) {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulTA shapes %vᵀ x %v -> %v", a.shape, b.shape, dst.shape))
	}
	// Parallelise over output rows (columns of a) so workers never write the
	// same dst element.
	parallelRows(m, m*n*k, func(lo, hi int) {
		ad, bd, dd := a.Data, b.Data, dst.Data
		if !acc {
			for i := lo; i < hi; i++ {
				row := dd[i*n : (i+1)*n]
				for j := range row {
					row[j] = 0
				}
			}
		}
		for p := 0; p < k; p++ {
			arow := ad[p*m : (p+1)*m]
			brow := bd[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				drow := dd[i*n : (i+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// parallelRows splits [0,rows) into contiguous chunks across GOMAXPROCS
// workers when the problem is large enough, else runs fn(0,rows) inline.
func parallelRows(rows, flops int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers <= 1 || rows <= 1 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
