package tensor

import (
	"fmt"
	"math"
)

// The exported ops below are thin routers: they validate shapes and hand
// the kernel to the current Backend. Elementwise ops not on the Backend
// seam (Add, Sub, Mul, Transpose) are pure memory-bound copies with a
// single rounding per element and stay direct.

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b *Tensor) {
	checkSameSize3(dst, a, b, "Add")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a - b elementwise. dst may alias a or b.
func Sub(dst, a, b *Tensor) {
	checkSameSize3(dst, a, b, "Sub")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Mul computes dst = a * b elementwise (Hadamard). dst may alias a or b.
func Mul(dst, a, b *Tensor) {
	checkSameSize3(dst, a, b, "Mul")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// Scale computes dst = s * a. dst may alias a.
func Scale(dst, a *Tensor, s float32) {
	checkSameSize2(dst, a, "Scale")
	current().Scale(dst, a, s)
}

// Axpy computes dst += s * a.
func Axpy(dst *Tensor, s float32, a *Tensor) {
	checkSameSize2(dst, a, "Axpy")
	current().Axpy(dst, s, a)
}

// AddInto computes dst += a.
func AddInto(dst, a *Tensor) {
	checkSameSize2(dst, a, "AddInto")
	current().AddInto(dst, a)
}

// Dot returns the inner product of a and b accumulated in float64,
// ascending. Every backend preserves this contract exactly; use DotF32
// for the float32-native fast path.
func Dot(a, b *Tensor) float64 {
	checkSameSize2(a, b, "Dot")
	return current().Dot(a, b)
}

// DotF32 returns the inner product of a and b accumulated natively in
// float32. Accumulation contract: the scalar reference sums ascending in
// a single chain; tolerance backends split the sum into per-lane chains
// (lane l accumulates elements with index ≡ l mod 8, ascending) combined
// by the balanced tree ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)), followed by
// the ascending remainder. Deviation from the scalar chain is bounded by
// the equivalence suite.
func DotF32(a, b *Tensor) float32 {
	checkSameSize2(a, b, "DotF32")
	return current().DotF32(a, b)
}

// SiLU computes dst = a * sigmoid(a). dst may alias a.
func SiLU(dst, a *Tensor) {
	checkSameSize2(dst, a, "SiLU")
	current().SiLU(dst, a)
}

// SiLUBackward computes dst = dy * d(silu)/dx evaluated at x.
// dst may alias dy but not x.
func SiLUBackward(dst, x, dy *Tensor) {
	checkSameSize3(dst, x, dy, "SiLUBackward")
	current().SiLUBackward(dst, x, dy)
}

// SoftmaxRows computes a numerically stable softmax over each row of the
// canonical 2-D view of a, writing into dst. dst may alias a.
func SoftmaxRows(dst, a *Tensor) {
	checkSameSize2(dst, a, "SoftmaxRows")
	current().SoftmaxRows(dst, a)
}

// SoftmaxRowsBackward computes dx for y = softmax(x) row-wise given y and dy:
// dx = y ⊙ (dy − sum(dy ⊙ y)). dst may alias dy.
func SoftmaxRowsBackward(dst, y, dy *Tensor) {
	checkSameSize3(dst, y, dy, "SoftmaxRowsBackward")
	current().SoftmaxRowsBackward(dst, y, dy)
}

// RMSNormRows computes y_ij = g_j · x_ij / rms_i row-wise over the hidden
// dimension, where rms_i = sqrt(mean_j(x_ij²) + eps), and stores each
// row's 1/rms_i into inv (for the backward pass). x and y are [rows, h]
// under the canonical 2-D view with h = gain.Size(); inv has rows
// elements. y may alias x.
func RMSNormRows(y, inv, x, gain *Tensor, eps float64) {
	h := gain.Size()
	if x.Size()%h != 0 || y.Size() != x.Size() || inv.Size() != x.Size()/h {
		panic(fmt.Sprintf("tensor: RMSNormRows shapes y %v inv %v x %v gain %v",
			y.shape, inv.shape, x.shape, gain.shape))
	}
	current().RMSNormRows(y, inv, x, gain, eps)
}

// ---- scalar reference kernels ---------------------------------------------

func scaleScalar(dst, a *Tensor, s float32) {
	for i := range dst.Data {
		dst.Data[i] = s * a.Data[i]
	}
}

func axpyScalar(dst *Tensor, s float32, a *Tensor) {
	for i := range dst.Data {
		dst.Data[i] += s * a.Data[i]
	}
}

func addIntoScalar(dst, a *Tensor) {
	for i := range dst.Data {
		dst.Data[i] += a.Data[i]
	}
}

func dotScalar(a, b *Tensor) float64 {
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

func dotF32Scalar(a, b []float32) float32 {
	var s float32
	b = b[:len(a)]
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func siluScalar(dst, a *Tensor) {
	for i, v := range a.Data {
		dst.Data[i] = v * sigmoid(v)
	}
}

func siluBackwardScalar(dst, x, dy *Tensor) {
	for i, v := range x.Data {
		s := sigmoid(v)
		dst.Data[i] = dy.Data[i] * (s + v*s*(1-s))
	}
}

func sigmoid(v float32) float32 {
	return float32(1.0 / (1.0 + math.Exp(-float64(v))))
}

func softmaxRowsScalar(dst, a *Tensor) {
	c := a.Cols()
	r := a.Rows()
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		out := dst.Data[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			out[j] = e
			sum += float64(e)
		}
		inv := float32(1.0 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
}

func softmaxRowsBackwardScalar(dst, y, dy *Tensor) {
	c := y.Cols()
	r := y.Rows()
	for i := 0; i < r; i++ {
		yr := y.Data[i*c : (i+1)*c]
		dyr := dy.Data[i*c : (i+1)*c]
		out := dst.Data[i*c : (i+1)*c]
		var dot float64
		for j := range yr {
			dot += float64(yr[j]) * float64(dyr[j])
		}
		d := float32(dot)
		for j := range yr {
			out[j] = yr[j] * (dyr[j] - d)
		}
	}
}

func rmsNormRowsScalar(y, inv, x, gain *Tensor, eps float64) {
	h := gain.Size()
	rows := x.Size() / h
	g := gain.Data
	for i := 0; i < rows; i++ {
		xr := x.Data[i*h : (i+1)*h]
		yr := y.Data[i*h : (i+1)*h]
		var ss float64
		for _, v := range xr {
			ss += float64(v) * float64(v)
		}
		r := float32(1.0 / math.Sqrt(ss/float64(h)+eps))
		inv.Data[i] = r
		for j, v := range xr {
			yr[j] = g[j] * v * r
		}
	}
}

// transposeBlock is the square tile edge of the blocked Transpose; a 32×32
// float32 tile is 4 KB, so source and destination tiles sit in L1 together.
const transposeBlock = 32

// Transpose writes aᵀ of the canonical 2-D view of a into dst, which must
// have Cols()==a.Rows() and Rows()==a.Cols(). dst must not alias a. The copy
// runs tile by tile so both the row-major reads and the column-major writes
// stay cache-resident, instead of striding the full destination per row.
func Transpose(dst, a *Tensor) {
	r, c := a.Rows(), a.Cols()
	if dst.Rows() != c || dst.Cols() != r {
		panic(fmt.Sprintf("tensor: Transpose dst %v incompatible with src %v", dst.shape, a.shape))
	}
	ad, dd := a.Data, dst.Data
	for i0 := 0; i0 < r; i0 += transposeBlock {
		i1 := i0 + transposeBlock
		if i1 > r {
			i1 = r
		}
		for j0 := 0; j0 < c; j0 += transposeBlock {
			j1 := j0 + transposeBlock
			if j1 > c {
				j1 = c
			}
			for i := i0; i < i1; i++ {
				arow := ad[i*c+j0 : i*c+j1]
				for jj, v := range arow {
					dd[(j0+jj)*r+i] = v
				}
			}
		}
	}
}

func checkSameSize2(a, b *Tensor, op string) {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, a.shape, b.shape))
	}
}

func checkSameSize3(a, b, c *Tensor, op string) {
	if a.Size() != b.Size() || a.Size() != c.Size() {
		panic(fmt.Sprintf("tensor: %s size mismatch %v, %v, %v", op, a.shape, b.shape, c.shape))
	}
}
