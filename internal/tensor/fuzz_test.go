package tensor

import (
	"math"
	"testing"
)

// FuzzF16RoundTrip checks the fp16 codec invariants on arbitrary floats:
// the round trip never panics, preserves sign and ordering class, and is
// idempotent (rounding a rounded value changes nothing).
func FuzzF16RoundTrip(f *testing.F) {
	for _, seed := range []float32{0, 1, -1, 0.5, 65504, 1e-8, 3.14159, -2.71828, 1e30} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v float32) {
		h := F32ToF16(v)
		back := F16ToF32(h)
		switch {
		case math.IsNaN(float64(v)):
			if !math.IsNaN(float64(back)) {
				t.Fatalf("NaN lost: %v -> %#04x -> %v", v, h, back)
			}
			return
		case math.IsInf(float64(v), 1):
			if !math.IsInf(float64(back), 1) {
				t.Fatalf("+inf lost")
			}
		case math.IsInf(float64(v), -1):
			if !math.IsInf(float64(back), -1) {
				t.Fatalf("-inf lost")
			}
		}
		// sign preserved (or flushed to zero)
		if v > 0 && back < 0 || v < 0 && back > 0 {
			t.Fatalf("sign flip: %v -> %v", v, back)
		}
		// idempotence
		if again := F16ToF32(F32ToF16(back)); again != back && !math.IsNaN(float64(back)) {
			t.Fatalf("not idempotent: %v -> %v -> %v", v, back, again)
		}
	})
}

// FuzzBF16RoundTrip mirrors the fp16 fuzz for the bfloat16 codec.
func FuzzBF16RoundTrip(f *testing.F) {
	for _, seed := range []float32{0, 1, -1e20, 7.5, 1e-30} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v float32) {
		back := BF16ToF32(F32ToBF16(v))
		if math.IsNaN(float64(v)) {
			if !math.IsNaN(float64(back)) {
				t.Fatal("NaN lost")
			}
			return
		}
		if v > 0 && back < 0 || v < 0 && back > 0 {
			t.Fatalf("sign flip: %v -> %v", v, back)
		}
		if again := BF16ToF32(F32ToBF16(back)); again != back && !math.IsNaN(float64(back)) {
			t.Fatalf("not idempotent: %v -> %v -> %v", v, back, again)
		}
	})
}
