package tensor

import (
	"runtime"
	"sync"
)

// The matmul kernels fan work out to a persistent pool of worker goroutines
// instead of spawning goroutines per call: small and medium matmuls would
// otherwise pay goroutine-creation latency comparable to their compute time.
// The pool is started lazily on the first parallel dispatch and sized by
// GOMAXPROCS at that moment; it lives for the process lifetime.
//
// Work items reference a pooled job header (mmJob) so a steady-state dispatch
// performs no heap allocation: the job headers are recycled through a
// sync.Pool and the per-chunk tasks are passed by value through the channel.
//
// Determinism: a chunk [lo,hi) always computes exactly the per-row results
// the serial kernel computes — the kernels never accumulate across rows — so
// results are bitwise identical regardless of worker count or chunking.

// poolTask is one contiguous row-range of a dispatched kernel.
type poolTask struct {
	job    *mmJob
	lo, hi int
}

// mmJob is the shared state of one dispatch: the kernel arguments plus the
// completion latch. Recycled via jobPool.
type mmJob struct {
	args mmArgs
	wg   sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolCh   chan poolTask
	jobPool  = sync.Pool{New: func() any { return new(mmJob) }}
)

func startPool() {
	workers := runtime.GOMAXPROCS(0)
	poolCh = make(chan poolTask, 4*workers)
	for i := 0; i < workers; i++ {
		go poolWorker()
	}
}

func poolWorker() {
	for t := range poolCh {
		t.job.args.run(t.lo, t.hi)
		t.job.wg.Done()
	}
}

// dispatch runs args over [0, rows) rows, splitting across the worker pool
// when the problem is large enough. The calling goroutine always executes
// the first chunk itself, so the pool only ever carries workers-1 tasks per
// dispatch and the caller never idles while work remains.
func dispatch(args *mmArgs, rows, flops int) {
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelThreshold || workers <= 1 || rows <= 1 {
		args.run(0, rows)
		return
	}
	poolOnce.Do(startPool)
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	tasks := (rows - 1) / chunk // chunks beyond the caller's first
	job := jobPool.Get().(*mmJob)
	job.args = *args
	job.wg.Add(tasks)
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		poolCh <- poolTask{job: job, lo: lo, hi: hi}
	}
	args.run(0, chunk)
	job.wg.Wait()
	jobPool.Put(job)
}
