package tensor

import "math"

// RNG is a small deterministic PRNG (splitmix64 core) used for reproducible
// parameter initialisation and synthetic data. It is deliberately independent
// of math/rand so that seeds produce identical streams across Go versions.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the spare is discarded to keep the stream position predictable).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Split returns a new independent generator derived from this one, used to
// give each module its own stream so initialisation is order-independent.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}

// FillNormal fills t with N(0, std²) values.
func FillNormal(t *Tensor, r *RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64() * std)
	}
}

// FillXavier fills t (viewed as [fanIn, fanOut]) with Xavier-uniform values.
func FillXavier(t *Tensor, r *RNG) {
	fanIn, fanOut := t.Rows(), t.Cols()
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = float32((2*r.Float64() - 1) * limit)
	}
}

// FillUniform fills t with uniform values in [lo, hi).
func FillUniform(t *Tensor, r *RNG, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + r.Float64()*(hi-lo))
	}
}
