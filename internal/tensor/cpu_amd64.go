//go:build !noasm

package tensor

// CPU feature detection for the SIMD backend. The container-baked module
// has no external dependencies, so instead of golang.org/x/sys/cpu this is
// the same three-probe sequence that package uses: CPUID leaf 1 for
// AVX/FMA/OSXSAVE, XGETBV for OS-enabled XMM+YMM state, CPUID leaf 7 for
// AVX2.

// cpuidAsm executes CPUID with the given leaf and subleaf.
//
//go:noescape
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (requires OSXSAVE, checked by the caller).
//
//go:noescape
func xgetbvAsm() (eax, edx uint32)

// cpuHasAVX2FMA reports whether this CPU and OS support the AVX2+FMA
// kernel set: AVX2 and FMA3 instructions present, and the OS saving
// XMM+YMM register state across context switches.
func cpuHasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fma     = 1 << 12 // CPUID.1:ECX.FMA
		osxsave = 1 << 27 // CPUID.1:ECX.OSXSAVE
		avx     = 1 << 28 // CPUID.1:ECX.AVX
	)
	_, _, ecx1, _ := cpuidAsm(1, 0)
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS preserves YMM state.
	xlo, _ := xgetbvAsm()
	if xlo&0x6 != 0x6 {
		return false
	}
	const avx2 = 1 << 5 // CPUID.7.0:EBX.AVX2
	_, ebx7, _, _ := cpuidAsm(7, 0)
	return ebx7&avx2 != 0
}
