package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestF16ExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff}, // max finite half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.h {
			t.Errorf("F32ToF16(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := F16ToF32(c.h); got != c.f {
			t.Errorf("F16ToF32(%#04x) = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestF16Overflow(t *testing.T) {
	if got := F32ToF16(1e6); got != 0x7c00 {
		t.Fatalf("overflow = %#04x, want +inf", got)
	}
	if got := F32ToF16(-1e6); got != 0xfc00 {
		t.Fatalf("neg overflow = %#04x, want -inf", got)
	}
}

func TestF16NaN(t *testing.T) {
	h := F32ToF16(float32(math.NaN()))
	if h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Fatalf("NaN encoding = %#04x", h)
	}
	if !math.IsNaN(float64(F16ToF32(h))) {
		t.Fatal("F16ToF32(NaN) not NaN")
	}
}

func TestF16Subnormals(t *testing.T) {
	// smallest positive subnormal half = 2^-24
	tiny := float32(math.Ldexp(1, -24))
	if got := F32ToF16(tiny); got != 0x0001 {
		t.Fatalf("subnormal = %#04x, want 0x0001", got)
	}
	if got := F16ToF32(0x0001); got != tiny {
		t.Fatalf("round-trip subnormal = %v, want %v", got, tiny)
	}
	// below half the smallest subnormal flushes to zero
	if got := F32ToF16(float32(math.Ldexp(1, -26))); got != 0 {
		t.Fatalf("underflow = %#04x, want 0", got)
	}
}

// Property: round-tripping any representable half is the identity.
func TestF16RoundTripExhaustiveFinite(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		hu := uint16(h)
		if hu&0x7c00 == 0x7c00 && hu&0x3ff != 0 {
			continue // NaN payloads need not round-trip exactly
		}
		if got := F32ToF16(F16ToF32(hu)); got != hu {
			// -0 vs +0 must still round-trip
			t.Fatalf("round trip %#04x -> %v -> %#04x", hu, F16ToF32(hu), got)
		}
	}
}

// Property: f16 quantisation error is bounded by 2^-11 relative for normals.
func TestF16RelativeError(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		a := math.Abs(float64(v))
		if a < 6.2e-5 || a > 65000 {
			return true // outside half normal range
		}
		rt := float64(F16ToF32(F32ToF16(v)))
		return math.Abs(rt-float64(v)) <= a*math.Ldexp(1, -11)+1e-30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBF16RoundTrip(t *testing.T) {
	vals := []float32{0, 1, -1, 3.14159, 1e20, -1e-20, 65504}
	for _, v := range vals {
		rt := BF16ToF32(F32ToBF16(v))
		if v == 0 {
			if rt != 0 {
				t.Fatalf("bf16(0) = %v", rt)
			}
			continue
		}
		rel := math.Abs(float64(rt-v)) / math.Abs(float64(v))
		if rel > 1.0/128 {
			t.Fatalf("bf16 rel err %v for %v (got %v)", rel, v, rt)
		}
	}
	if !math.IsNaN(float64(BF16ToF32(F32ToBF16(float32(math.NaN()))))) {
		t.Fatal("bf16 NaN lost")
	}
}

func TestRoundTensorsAndPack(t *testing.T) {
	rng := NewRNG(3)
	x := New(64)
	FillNormal(x, rng, 1)
	y := x.Clone()
	RoundF16(y)
	for i := range y.Data {
		if got := F16ToF32(F32ToF16(x.Data[i])); got != y.Data[i] {
			t.Fatalf("RoundF16 mismatch at %d", i)
		}
	}
	packed := PackF16(x.Data)
	un := UnpackF16(packed)
	for i := range un {
		if un[i] != y.Data[i] {
			t.Fatalf("Pack/Unpack mismatch at %d", i)
		}
	}
	z := x.Clone()
	RoundBF16(z)
	for i := range z.Data {
		if got := BF16ToF32(F32ToBF16(x.Data[i])); got != z.Data[i] {
			t.Fatalf("RoundBF16 mismatch at %d", i)
		}
	}
}

func TestBF16WireKernels(t *testing.T) {
	rng := NewRNG(9)
	x := New(129) // odd length: no whole-vector alignment assumptions
	FillNormal(x, rng, 1)

	// RoundBF16Slice matches the scalar round-trip elementwise.
	rounded := append([]float32(nil), x.Data...)
	RoundBF16Slice(rounded)
	for i, v := range x.Data {
		if want := BF16ToF32(F32ToBF16(v)); rounded[i] != want {
			t.Fatalf("RoundBF16Slice[%d] = %v, want %v", i, rounded[i], want)
		}
	}

	// Pack/Unpack round-trips through the 2-byte LE wire format onto the
	// rounded values.
	buf := make([]byte, 2*len(x.Data))
	PackBF16LE(buf, x.Data)
	for i, v := range x.Data {
		h := F32ToBF16(v)
		if buf[2*i] != byte(h) || buf[2*i+1] != byte(h>>8) {
			t.Fatalf("PackBF16LE[%d] wrong byte order", i)
		}
	}
	out := make([]float32, len(x.Data))
	UnpackBF16LE(out, buf)
	for i := range out {
		if out[i] != rounded[i] {
			t.Fatalf("UnpackBF16LE[%d] = %v, want %v", i, out[i], rounded[i])
		}
	}
}

func TestPackBF16LEShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackBF16LE accepted a short destination")
		}
	}()
	PackBF16LE(make([]byte, 3), []float32{1, 2})
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestRNGDistributions(t *testing.T) {
	r := NewRNG(5)
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v", variance)
	}
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFillers(t *testing.T) {
	r := NewRNG(6)
	x := New(10, 20)
	FillXavier(x, r)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range x.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("xavier value %v exceeds limit %v", v, limit)
		}
	}
	FillUniform(x, r, 2, 3)
	for _, v := range x.Data {
		if v < 2 || v >= 3 {
			t.Fatalf("uniform value %v outside [2,3)", v)
		}
	}
	FillNormal(x, r, 0.02)
	if x.MaxAbs() > 0.2 {
		t.Fatalf("normal(0.02) value too large: %v", x.MaxAbs())
	}
}
