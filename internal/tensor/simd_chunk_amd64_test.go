//go:build !noasm

package tensor

import (
	"math/rand"
	"testing"
)

// TestSIMDNTChunkInvariance pins the determinism contract of the NT pair
// kernel: rows pair on global parity, so computing the same rows through
// different worker chunkings — including chunk boundaries that split a
// pair, forcing the single-row kernel — must produce bitwise identical
// results.
func TestSIMDNTChunkInvariance(t *testing.T) {
	if !cpuHasAVX2FMA() {
		t.Skip("no AVX2+FMA on this machine")
	}
	rng := rand.New(rand.NewSource(21))
	for _, sh := range [][3]int{{8, 6, 19}, {7, 9, 33}, {5, 4, 8}, {9, 13, 64}} {
		m, n, k := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, n, k)
		for _, acc := range []bool{false, true} {
			seed := randTensor(rng, m, n)
			ref := New(m, n)
			copy(ref.Data, seed.Data)
			refArgs := mmArgs{kind: mmNT, acc: acc, simd: true, ad: a.Data, bd: b.Data, dd: ref.Data, m: m, n: n, k: k}
			refArgs.run(0, m)

			// Every contiguous two-way split, including odd boundaries.
			for cut := 0; cut <= m; cut++ {
				got := New(m, n)
				copy(got.Data, seed.Data)
				args := mmArgs{kind: mmNT, acc: acc, simd: true, ad: a.Data, bd: b.Data, dd: got.Data, m: m, n: n, k: k}
				args.run(0, cut)
				args.run(cut, m)
				for i := range ref.Data {
					if ref.Data[i] != got.Data[i] {
						t.Fatalf("shape %v acc=%v cut=%d: elem %d = %b, serial %b",
							sh, acc, cut, i, got.Data[i], ref.Data[i])
					}
				}
			}
		}
	}
}
