package tensor

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Backend is the pluggable compute seam: every hot primitive the training
// and inference runtimes execute — the matmul variants, the BLAS-1 update
// ops, the activation and softmax kernels, and the row-wise norm — goes
// through the process-wide current Backend. The scalar backend (pure Go,
// the PR-1 kernels) is the default and the bit-exactness reference oracle;
// SIMD backends register themselves at init when the CPU supports them and
// are selected explicitly via SetBackend (or the cmd binaries' -backend
// flag). A future BLAS or GPU backend drops into the same seam.
//
// Contract:
//
//   - Shapes are validated by the package-level wrapper functions
//     (MatMul, Axpy, ...); Backend methods may assume conforming shapes.
//   - Every backend is deterministic: identical inputs produce bitwise
//     identical outputs on every call, regardless of worker count or
//     chunking. This is what keeps all training strategies bit-identical
//     to each other under any single backend.
//   - A backend reporting Exact() == true additionally reproduces the
//     scalar reference bit-for-bit on every method. Inexact ("tolerance
//     mode") backends may reassociate reductions (FMA, multi-lane
//     accumulators) on the kernels where preserving the scalar
//     ascending-k order would forfeit the speedup; the equivalence suite
//     bounds their per-element deviation. See DESIGN.md §13.
type Backend interface {
	// Name returns the registry key ("scalar", "avx2", ...).
	Name() string
	// Exact reports whether every kernel is bit-identical to the scalar
	// reference backend.
	Exact() bool

	// MatMulNN computes dst = a·b (dst += a·b when acc); a is [m,k],
	// b is [k,n], dst is [m,n].
	MatMulNN(dst, a, b *Tensor, acc bool)
	// MatMulNT computes dst = a·bᵀ (dst += when acc); a is [m,k],
	// b is [n,k], dst is [m,n].
	MatMulNT(dst, a, b *Tensor, acc bool)
	// MatMulTN computes dst = aᵀ·b (dst += when acc); a is [k,m],
	// b is [k,n], dst is [m,n].
	MatMulTN(dst, a, b *Tensor, acc bool)

	// Axpy computes dst += s*a elementwise.
	Axpy(dst *Tensor, s float32, a *Tensor)
	// Scale computes dst = s*a elementwise; dst may alias a.
	Scale(dst, a *Tensor, s float32)
	// AddInto computes dst += a elementwise.
	AddInto(dst, a *Tensor)
	// Dot returns the inner product accumulated in float64, ascending.
	Dot(a, b *Tensor) float64
	// DotF32 returns the inner product accumulated natively in float32.
	// The scalar reference accumulates ascending in one chain; tolerance
	// backends may use lane-split chains with a balanced combine tree.
	DotF32(a, b *Tensor) float32

	// SiLU computes dst = a·sigmoid(a); dst may alias a.
	SiLU(dst, a *Tensor)
	// SiLUBackward computes dst = dy ⊙ silu'(x); dst may alias dy, not x.
	SiLUBackward(dst, x, dy *Tensor)
	// SoftmaxRows computes a numerically stable row-wise softmax.
	SoftmaxRows(dst, a *Tensor)
	// SoftmaxRowsBackward computes dx = y ⊙ (dy − Σ(dy⊙y)) row-wise.
	SoftmaxRowsBackward(dst, y, dy *Tensor)
	// RMSNormRows computes y_ij = g_j · x_ij / rms_i and stores each row's
	// 1/rms_i into inv, where rms_i = sqrt(mean_j(x_ij²) + eps). y and x
	// are [rows, h], gain is [h], inv is [rows]. The mean-square
	// accumulates ascending in float64 in every backend.
	RMSNormRows(y, inv, x, gain *Tensor, eps float64)
}

var (
	backendMu  sync.Mutex
	backends   = map[string]Backend{}
	curBackend atomic.Pointer[Backend]
)

// registerBackend adds a backend to the registry. Called from init
// functions; later registrations under the same name win (tests use this
// to shadow).
func registerBackend(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backends[b.Name()] = b
}

// current returns the active backend. The pointer is read atomically so a
// SetBackend in one goroutine is safe against concurrent kernels, but ops
// already in flight finish on the backend they started with.
func current() Backend { return *curBackend.Load() }

// SetBackend selects the kernel backend by name. The name "auto" picks
// the fastest available backend (a SIMD backend when the CPU supports
// one, the scalar reference otherwise). Returns an error and leaves the
// selection unchanged if the name is unknown on this build/CPU.
//
// Selecting a non-Exact backend is the documented tolerance-mode gate:
// results remain deterministic and strategy-invariant, but are no longer
// bit-identical to the scalar oracle on the reassociated kernels.
func SetBackend(name string) error {
	backendMu.Lock()
	defer backendMu.Unlock()
	if name == "auto" {
		name = bestBackendLocked()
	}
	b, ok := backends[name]
	if !ok {
		return fmt.Errorf("tensor: unknown backend %q (available: %v)", name, backendNamesLocked())
	}
	curBackend.Store(&b)
	return nil
}

// bestBackendLocked resolves "auto": any non-scalar backend beats the
// scalar reference; ties break lexicographically for determinism.
func bestBackendLocked() string {
	best := "scalar"
	for n := range backends {
		if n == "scalar" {
			continue
		}
		if best == "scalar" || n < best {
			best = n
		}
	}
	return best
}

// BackendName returns the name of the active backend.
func BackendName() string { return current().Name() }

// BackendExact reports whether the active backend is bit-identical to the
// scalar reference.
func BackendExact() bool { return current().Exact() }

// Backends lists the registered backend names, sorted.
func Backends() []string {
	backendMu.Lock()
	defer backendMu.Unlock()
	return backendNamesLocked()
}

func backendNamesLocked() []string {
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BackendByName returns a registered backend without selecting it — the
// equivalence suite and the kernel A/B bench compare backends side by
// side through this.
func BackendByName(name string) (Backend, bool) {
	backendMu.Lock()
	defer backendMu.Unlock()
	b, ok := backends[name]
	return b, ok
}

func init() {
	b := Backend(scalarBackend{})
	backends["scalar"] = b
	curBackend.Store(&b)
}
