package sim

import (
	"math"
	"testing"
)

func mustRun(t *testing.T, tasks []Task) *Result {
	t.Helper()
	r, err := Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSerialChain(t *testing.T) {
	tasks := []Task{
		{ID: 0, Resource: "w0", Worker: 0, Dur: 1, Kind: "F"},
		{ID: 1, Resource: "w0", Worker: 0, Dur: 2, Deps: []int{0}, Kind: "F"},
		{ID: 2, Resource: "w0", Worker: 0, Dur: 3, Deps: []int{1}, Kind: "F"},
	}
	r := mustRun(t, tasks)
	if r.Makespan != 6 {
		t.Fatalf("makespan = %v", r.Makespan)
	}
	if r.BusyTime[0] != 6 {
		t.Fatalf("busy = %v", r.BusyTime[0])
	}
	if r.BubbleRatio() != 0 {
		t.Fatalf("bubble = %v", r.BubbleRatio())
	}
}

func TestParallelWorkers(t *testing.T) {
	tasks := []Task{
		{ID: 0, Resource: "w0", Worker: 0, Dur: 5, Kind: "F"},
		{ID: 1, Resource: "w1", Worker: 1, Dur: 3, Kind: "F"},
	}
	r := mustRun(t, tasks)
	if r.Makespan != 5 {
		t.Fatalf("makespan = %v", r.Makespan)
	}
	// worker 1 idles 2 of 5 → bubble (0+2)/(2·5) = 0.2
	if math.Abs(r.BubbleRatio()-0.2) > 1e-12 {
		t.Fatalf("bubble = %v", r.BubbleRatio())
	}
}

func TestResourceSerialisation(t *testing.T) {
	// Two independent tasks on one resource must run back to back.
	tasks := []Task{
		{ID: 0, Resource: "l0", Worker: -1, Dur: 2, Kind: "comm"},
		{ID: 1, Resource: "l0", Worker: -1, Dur: 2, Kind: "comm"},
	}
	r := mustRun(t, tasks)
	if r.Makespan != 4 {
		t.Fatalf("makespan = %v", r.Makespan)
	}
}

func TestCommOverlapsCompute(t *testing.T) {
	// A link transfer concurrent with compute on another resource.
	tasks := []Task{
		{ID: 0, Resource: "w0", Worker: 0, Dur: 1, Kind: "F"},
		{ID: 1, Resource: "l0", Worker: -1, Dur: 4, Deps: []int{0}, Kind: "comm"},
		{ID: 2, Resource: "w0", Worker: 0, Dur: 4, Deps: []int{0}, Kind: "F"},
		{ID: 3, Resource: "w1", Worker: 1, Dur: 1, Deps: []int{1}, Kind: "F"},
	}
	r := mustRun(t, tasks)
	// transfer runs 1→5 while w0 computes 1→5; w1 runs 5→6
	if r.Makespan != 6 {
		t.Fatalf("makespan = %v", r.Makespan)
	}
}

func TestReadyQueueAvoidsHeadOfLineBlocking(t *testing.T) {
	// Task 0 on l0 is created first but its dep (task 2) finishes late;
	// task 1 (no deps) must go first rather than deadlock/behind-block.
	tasks := []Task{
		{ID: 0, Resource: "l0", Worker: -1, Dur: 1, Deps: []int{2}, Kind: "comm"},
		{ID: 1, Resource: "l0", Worker: -1, Dur: 1, Kind: "comm"},
		{ID: 2, Resource: "w0", Worker: 0, Dur: 5, Deps: []int{3}, Kind: "F"},
		{ID: 3, Resource: "w0", Worker: 0, Dur: 1, Deps: []int{1}, Kind: "F"},
	}
	r := mustRun(t, tasks)
	// l0 runs task1 at 0→1; w0 task3 1→2, task2 2→7; l0 task0 7→8
	if r.Makespan != 8 {
		t.Fatalf("makespan = %v", r.Makespan)
	}
}

func TestZeroDurationTasks(t *testing.T) {
	tasks := []Task{
		{ID: 0, Resource: "w0", Worker: 0, Dur: 0, Kind: "F"},
		{ID: 1, Resource: "w0", Worker: 0, Dur: 0, Deps: []int{0}, Kind: "F"},
		{ID: 2, Resource: "w0", Worker: 0, Dur: 1, Deps: []int{1}, Kind: "F"},
	}
	r := mustRun(t, tasks)
	if r.Makespan != 1 {
		t.Fatalf("makespan = %v", r.Makespan)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []Task {
		var tasks []Task
		for i := 0; i < 50; i++ {
			deps := []int{}
			if i >= 3 {
				deps = append(deps, i-3)
			}
			tasks = append(tasks, Task{
				ID: i, Resource: []string{"w0", "w1", "l0"}[i%3],
				Worker: i % 3, Dur: float64(i%7) * 0.1, Deps: deps, Kind: "F",
			})
		}
		return tasks
	}
	a := mustRun(t, mk())
	b := mustRun(t, mk())
	if a.Makespan != b.Makespan {
		t.Fatal("nondeterministic makespan")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Start != b.Tasks[i].Start || a.Tasks[i].ID != b.Tasks[i].ID {
			t.Fatal("nondeterministic schedule")
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	tasks := []Task{
		{ID: 0, Resource: "w0", Worker: 0, Dur: 1, Deps: []int{1}},
		{ID: 1, Resource: "w0", Worker: 0, Dur: 1, Deps: []int{0}},
	}
	if _, err := Run(tasks); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Run([]Task{{ID: 1}}); err == nil {
		t.Fatal("bad ID accepted")
	}
	if _, err := Run([]Task{{ID: 0, Dur: -1}}); err == nil {
		t.Fatal("negative duration accepted")
	}
	if _, err := Run([]Task{{ID: 0, Deps: []int{5}}}); err == nil {
		t.Fatal("missing dep accepted")
	}
	if _, err := Run([]Task{{ID: 0, Deps: []int{0}}}); err == nil {
		t.Fatal("self dep accepted")
	}
}

func TestWorkerTimelineFiltersComm(t *testing.T) {
	tasks := []Task{
		{ID: 0, Resource: "w0", Worker: 0, Dur: 1, Kind: "F", Label: "f"},
		{ID: 1, Resource: "l0", Worker: -1, Dur: 1, Kind: "comm", Deps: []int{0}},
		{ID: 2, Resource: "w0", Worker: 0, Dur: 1, Kind: "B", Deps: []int{1}, Label: "b"},
	}
	r := mustRun(t, tasks)
	tl := r.WorkerTimeline(0)
	if len(tl) != 2 || tl[0].Label != "f" || tl[1].Label != "b" {
		t.Fatalf("timeline = %+v", tl)
	}
}

// Property-ish test: a classic 1F1B-shaped pipeline of P stages and N
// microbatches should have makespan ≈ (P−1+N)·(tF+tB) when comm is free.
func TestPipelineMakespanFormula(t *testing.T) {
	const P, N = 4, 8
	tF, tB := 1.0, 2.0
	var tasks []Task
	id := 0
	fid := make([][]int, P)
	bid := make([][]int, P)
	for r := 0; r < P; r++ {
		fid[r] = make([]int, N)
		bid[r] = make([]int, N)
	}
	add := func(res string, w int, dur float64, deps []int) int {
		tasks = append(tasks, Task{ID: id, Resource: res, Worker: w, Dur: dur, Deps: deps, Kind: "F"})
		id++
		return id - 1
	}
	for r := 0; r < P; r++ {
		var prev = -1
		warm := P - 1 - r
		prog := func(dur float64) int {
			deps := []int{}
			if prev >= 0 {
				deps = append(deps, prev)
			}
			prev = add("w"+string(rune('0'+r)), r, dur, deps)
			return prev
		}
		emitF := func(m int) { fid[r][m] = prog(tF) }
		emitB := func(m int) { bid[r][m] = prog(tB) }
		for m := 0; m < warm; m++ {
			emitF(m)
		}
		for m := warm; m < N; m++ {
			emitF(m)
			emitB(m - warm)
		}
		for m := N - warm; m < N; m++ {
			emitB(m)
		}
	}
	// cross-rank dataflow deps (wired after creation, as schedule.Build does)
	for r := 1; r < P; r++ {
		for m := 0; m < N; m++ {
			tasks[fid[r][m]].Deps = append(tasks[fid[r][m]].Deps, fid[r-1][m])
		}
	}
	for r := 0; r < P-1; r++ {
		for m := 0; m < N; m++ {
			tasks[bid[r][m]].Deps = append(tasks[bid[r][m]].Deps, bid[r+1][m])
		}
	}
	r := mustRun(t, tasks)
	ideal := float64(N) * (tF + tB)
	upper := ideal + float64(P-1)*(tF+tB) + 1e-9
	if r.Makespan < ideal || r.Makespan > upper {
		t.Fatalf("makespan %v outside [%v, %v]", r.Makespan, ideal, upper)
	}
	// bubble ratio ≈ (P−1)/(N+P−1)
	want := float64(P-1) / float64(N+P-1)
	if math.Abs(r.BubbleRatio()-want) > 0.05 {
		t.Fatalf("bubble %v, want ≈ %v", r.BubbleRatio(), want)
	}
}
