// Package sim is a deterministic discrete-event simulator for pipeline
// training schedules. A schedule is a list of Tasks, each bound to one
// serial resource (a worker's compute engine, one direction of a ring link,
// or the shared collective fabric) with explicit dependencies. A resource
// runs one task at a time; whenever it is idle it dispatches the
// lowest-numbered task whose dependencies have completed. Program order on
// a worker is expressed through dependencies (the schedule package chains
// every worker's compute ops), so compute engines execute their rank's
// program exactly while links stay free to relay whichever belt chunk
// arrives first.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Task is one unit of occupancy of a serial resource.
type Task struct {
	// ID must be the task's index in the schedule slice.
	ID int
	// Resource names the serial engine this task occupies. Conventions
	// used by the schedule package: "w<i>" compute engines, "l<i>" the
	// ring link i→i+1, "r<i>" the reverse direction of link i, "fabric"
	// the shared collective fabric.
	Resource string
	// Worker is the worker this task's time is accounted to, or -1 for
	// pure communication tasks.
	Worker int
	// Dur is the task duration in seconds (≥ 0).
	Dur float64
	// Deps lists task IDs that must complete before this task starts.
	Deps []int
	// Kind is a short class tag ("F", "B", "W", "comm", "coll") used by
	// traces and the bubble accounting.
	Kind string
	// Label is a human-readable description for timelines.
	Label string
	// Bytes is the wire payload of a point-to-point transfer task (0 for
	// compute and collective tasks). The simulator ignores it; the
	// schedule package's traffic accounting classifies it by link tier.
	Bytes float64
	// Coalesced marks a transfer that rides another transfer's burst
	// envelope (the batched P2P link model): it still occupies the link
	// for its bandwidth cost, but opens no envelope of its own — the
	// traffic accounting counts its bytes without counting a send.
	Coalesced bool
}

// ScheduledTask is a task with its simulated start and end times.
type ScheduledTask struct {
	Task
	Start float64
	End   float64
}

// Result is the outcome of running a schedule.
type Result struct {
	// Makespan is the completion time of the last task.
	Makespan float64
	// BusyTime[w] is the total compute occupancy of worker w (tasks with
	// Worker == w and a non-communication kind).
	BusyTime map[int]float64
	// LinkBytesSeconds is reserved for diagnostics.
	// Tasks holds every task with its schedule, in start-time order.
	Tasks []ScheduledTask
}

// BubbleRatio returns the idle fraction of the workers' compute engines
// over the makespan: 1 − Σ busy / (workers · makespan). The sum runs in
// ascending worker order, not map order, so the ratio is reproducible to
// the last bit and regenerated reports (BENCH_sweep.json) diff clean.
func (r *Result) BubbleRatio() float64 {
	if r.Makespan == 0 || len(r.BusyTime) == 0 {
		return 0
	}
	workers := make([]int, 0, len(r.BusyTime))
	for w := range r.BusyTime {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	var busy float64
	for _, w := range workers {
		busy += r.BusyTime[w]
	}
	return 1 - busy/(float64(len(r.BusyTime))*r.Makespan)
}

// WorkerTimeline returns worker w's compute tasks in start order.
func (r *Result) WorkerTimeline(w int) []ScheduledTask {
	var out []ScheduledTask
	for _, t := range r.Tasks {
		if t.Worker == w && t.Kind != "comm" && t.Kind != "coll" {
			out = append(out, t)
		}
	}
	return out
}

// event is a task completion.
type event struct {
	time float64
	id   int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// intHeap is a min-heap of task IDs (the per-resource ready set).
type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Run executes the schedule and returns the timing result. It returns an
// error if the schedule deadlocks (a dependency cycle or a dependency on a
// missing task).
func Run(tasks []Task) (*Result, error) {
	n := len(tasks)
	for i, t := range tasks {
		if t.ID != i {
			return nil, fmt.Errorf("sim: task %d has ID %d (must equal its index)", i, t.ID)
		}
		if t.Dur < 0 {
			return nil, fmt.Errorf("sim: task %d has negative duration", i)
		}
		for _, d := range t.Deps {
			if d < 0 || d >= n {
				return nil, fmt.Errorf("sim: task %d depends on missing task %d", i, d)
			}
			if d == i {
				return nil, fmt.Errorf("sim: task %d depends on itself", i)
			}
		}
	}

	depsLeft := make([]int, n)
	dependents := make([][]int, n)
	for _, t := range tasks {
		depsLeft[t.ID] = len(t.Deps)
		for _, d := range t.Deps {
			dependents[d] = append(dependents[d], t.ID)
		}
	}

	ready := make(map[string]*intHeap)
	busy := make(map[string]bool)
	start := make([]float64, n)
	end := make([]float64, n)
	started := make([]bool, n)

	var eh eventHeap
	now := 0.0
	startedCount := 0

	dispatch := func(res string) {
		if busy[res] {
			return
		}
		h := ready[res]
		if h == nil || h.Len() == 0 {
			return
		}
		id := heap.Pop(h).(int)
		start[id] = now
		end[id] = now + tasks[id].Dur
		started[id] = true
		busy[res] = true
		startedCount++
		heap.Push(&eh, event{time: end[id], id: id})
	}

	markReady := func(id int) {
		res := tasks[id].Resource
		h := ready[res]
		if h == nil {
			h = &intHeap{}
			ready[res] = h
		}
		heap.Push(h, id)
		dispatch(res)
	}

	for i := 0; i < n; i++ {
		if depsLeft[i] == 0 {
			markReady(i)
		}
	}

	for eh.Len() > 0 {
		e := heap.Pop(&eh).(event)
		now = e.time
		// Drain all completions at this timestamp before dispatching, so
		// simultaneous arrivals unlock dependents deterministically.
		completedRes := map[string]bool{}
		newlyReady := []int{}
		for {
			busy[tasks[e.id].Resource] = false
			completedRes[tasks[e.id].Resource] = true
			for _, dep := range dependents[e.id] {
				depsLeft[dep]--
				if depsLeft[dep] == 0 {
					newlyReady = append(newlyReady, dep)
				}
			}
			if eh.Len() == 0 || eh[0].time != now {
				break
			}
			e = heap.Pop(&eh).(event)
		}
		sort.Ints(newlyReady)
		for _, id := range newlyReady {
			res := tasks[id].Resource
			h := ready[res]
			if h == nil {
				h = &intHeap{}
				ready[res] = h
			}
			heap.Push(h, id)
			completedRes[res] = true
		}
		resList := make([]string, 0, len(completedRes))
		for r := range completedRes {
			resList = append(resList, r)
		}
		sort.Strings(resList)
		for _, r := range resList {
			dispatch(r)
		}
	}

	if startedCount != n {
		for i := 0; i < n; i++ {
			if !started[i] {
				return nil, fmt.Errorf("sim: deadlock — task %d (%s on %s) never started",
					i, tasks[i].Label, tasks[i].Resource)
			}
		}
	}

	res := &Result{BusyTime: make(map[int]float64)}
	for i, t := range tasks {
		if end[i] > res.Makespan {
			res.Makespan = end[i]
		}
		if t.Worker >= 0 && t.Kind != "comm" && t.Kind != "coll" {
			res.BusyTime[t.Worker] += t.Dur
		}
		res.Tasks = append(res.Tasks, ScheduledTask{Task: t, Start: start[i], End: end[i]})
	}
	sort.Slice(res.Tasks, func(i, j int) bool {
		if res.Tasks[i].Start != res.Tasks[j].Start {
			return res.Tasks[i].Start < res.Tasks[j].Start
		}
		return res.Tasks[i].ID < res.Tasks[j].ID
	})
	return res, nil
}
