package sim

import (
	"fmt"
	"sort"

	"weipipe/internal/trace"
)

// ChromeTrace renders the schedule as a Chrome/Perfetto trace: one track
// per resource (compute engines first, then links and the fabric), one
// complete event per task. The events marshal through the shared
// trace.ChromeEvent writer — the same format the runtime tracer exports —
// so a predicted schedule and a measured run load side by side in
// Perfetto and feed the same -compare parser. Load the output in
// chrome://tracing or ui.perfetto.dev.
func (r *Result) ChromeTrace() ([]byte, error) {
	events := make([]trace.ChromeEvent, 0, len(r.Tasks))
	for _, t := range r.Tasks {
		if t.Dur == 0 {
			continue // barriers and zero-cost syncs only clutter the view
		}
		events = append(events, trace.ChromeEvent{
			Name: t.Label,
			Cat:  t.Kind,
			Ph:   "X",
			Ts:   t.Start * 1e6,
			Dur:  (t.End - t.Start) * 1e6,
			Pid:  0,
			Tid:  t.Resource,
			Args: map[string]string{"kind": t.Kind},
		})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Ts < events[j].Ts
	})
	return trace.MarshalChrome(events, nil)
}

// ResourceBusy returns each resource's total occupied time, a utilisation
// view of links and compute engines.
func (r *Result) ResourceBusy() map[string]float64 {
	out := make(map[string]float64)
	for _, t := range r.Tasks {
		out[t.Resource] += t.End - t.Start
	}
	return out
}

// LinkUtilisation returns every link resource's busy fraction of the
// makespan, sorted by resource name — the simulator's view of the paper's
// bandwidth-pressure argument.
func (r *Result) LinkUtilisation() []struct {
	Resource string
	Fraction float64
} {
	busy := r.ResourceBusy()
	var out []struct {
		Resource string
		Fraction float64
	}
	for res, b := range busy {
		if len(res) > 0 && (res[0] == 'l' || res[0] == 'r') || res == "fabric" {
			out = append(out, struct {
				Resource string
				Fraction float64
			}{res, b / r.Makespan})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource < out[j].Resource })
	return out
}

// String summarises the result.
func (r *Result) String() string {
	return fmt.Sprintf("makespan=%.3fs bubble=%.1f%% tasks=%d",
		r.Makespan, r.BubbleRatio()*100, len(r.Tasks))
}
