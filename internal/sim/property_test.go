package sim

import (
	"testing"
	"testing/quick"

	"weipipe/internal/tensor"
)

// randomDAG builds a random but valid schedule: tasks may only depend on
// lower-numbered tasks, resources drawn from a small pool.
func randomDAG(rng *tensor.RNG, n int) []Task {
	resources := []string{"w0", "w1", "w2", "l0", "l1", "fabric"}
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		var deps []int
		for d := 0; d < i && d < 3; d++ {
			if rng.Float64() < 0.3 {
				deps = append(deps, rng.Intn(i))
			}
		}
		res := resources[rng.Intn(len(resources))]
		worker := -1
		if res[0] == 'w' {
			worker = int(res[1] - '0')
		}
		tasks[i] = Task{
			ID: i, Resource: res, Worker: worker,
			Dur: rng.Float64(), Deps: deps, Kind: "F",
		}
	}
	return tasks
}

// Property: every random DAG schedules (no spurious deadlocks), start times
// respect dependencies, and same-resource tasks never overlap.
func TestRandomDAGsScheduleConsistently(t *testing.T) {
	f := func(seed uint64, szRaw uint8) bool {
		rng := tensor.NewRNG(seed)
		n := int(szRaw%40) + 2
		tasks := randomDAG(rng, n)
		res, err := Run(tasks)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		byID := make(map[int]ScheduledTask, n)
		for _, st := range res.Tasks {
			byID[st.ID] = st
		}
		// dependency order
		for _, st := range res.Tasks {
			for _, d := range st.Deps {
				if byID[d].End > st.Start+1e-12 {
					t.Logf("task %d starts %.6f before dep %d ends %.6f", st.ID, st.Start, d, byID[d].End)
					return false
				}
			}
		}
		// per-resource mutual exclusion
		perRes := map[string][]ScheduledTask{}
		for _, st := range res.Tasks {
			perRes[st.Resource] = append(perRes[st.Resource], st)
		}
		for _, list := range perRes {
			for i := 1; i < len(list); i++ {
				if list[i].Start < list[i-1].End-1e-12 {
					t.Logf("overlap on %s: [%f,%f) then [%f,%f)",
						list[i].Resource, list[i-1].Start, list[i-1].End, list[i].Start, list[i].End)
					return false
				}
			}
		}
		// makespan ≥ any task's duration and ≥ any end time
		for _, st := range res.Tasks {
			if st.End > res.Makespan+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the makespan respects the classical list-scheduling bounds —
// at least the critical path and the busiest resource's load, at most the
// critical path plus the total work (Graham's bound for greedy schedulers).
//
// Note: strict monotonicity in task durations is deliberately NOT asserted.
// Greedy ready-queue dispatch exhibits Graham's scheduling anomalies:
// lengthening one task can reorder dispatch and legitimately *shorten* the
// makespan. (An earlier version of this test asserted monotonicity and the
// quick checker found a counterexample within a few dozen cases.)
func TestMakespanWithinGrahamBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		tasks := randomDAG(rng, 25)
		res, err := Run(tasks)
		if err != nil {
			return false
		}
		// critical path via longest path over deps
		cp := make([]float64, len(tasks))
		var maxCP, totalWork float64
		resourceLoad := map[string]float64{}
		for i, task := range tasks {
			best := 0.0
			for _, d := range task.Deps {
				if cp[d] > best {
					best = cp[d]
				}
			}
			cp[i] = best + task.Dur
			if cp[i] > maxCP {
				maxCP = cp[i]
			}
			totalWork += task.Dur
			resourceLoad[task.Resource] += task.Dur
		}
		maxLoad := 0.0
		for _, l := range resourceLoad {
			if l > maxLoad {
				maxLoad = l
			}
		}
		lower := maxCP
		if maxLoad > lower {
			lower = maxLoad
		}
		upper := maxCP + totalWork
		return res.Makespan >= lower-1e-9 && res.Makespan <= upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the bubble ratio is always in [0, 1).
func TestBubbleRatioBounded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		tasks := randomDAG(rng, 25)
		res, err := Run(tasks)
		if err != nil {
			return false
		}
		br := res.BubbleRatio()
		return br >= 0 && br < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
