package sim

import (
	"encoding/json"
	"strings"
	"testing"
)

func traceFixture(t *testing.T) *Result {
	t.Helper()
	tasks := []Task{
		{ID: 0, Resource: "w0", Worker: 0, Dur: 1, Kind: "F", Label: "F0"},
		{ID: 1, Resource: "l0", Worker: -1, Dur: 0.5, Deps: []int{0}, Kind: "comm", Label: "act"},
		{ID: 2, Resource: "w1", Worker: 1, Dur: 2, Deps: []int{1}, Kind: "B", Label: "B0"},
		{ID: 3, Resource: "barrier", Worker: -1, Dur: 0, Deps: []int{2}, Kind: "coll", Label: "sync"},
	}
	r, err := Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestChromeTraceWellFormed(t *testing.T) {
	r := traceFixture(t)
	blob, err := r.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  string  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// zero-duration barrier excluded → 3 events
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(parsed.TraceEvents))
	}
	for _, e := range parsed.TraceEvents {
		if e.Ph != "X" || e.Dur <= 0 {
			t.Fatalf("bad event %+v", e)
		}
	}
	// B0 on worker 1 runs after the link: ts = 1.5s = 1.5e6 µs
	found := false
	for _, e := range parsed.TraceEvents {
		if e.Name == "B0" {
			found = true
			if e.Ts != 1.5e6 || e.Dur != 2e6 || e.Tid != "w1" {
				t.Fatalf("B0 event wrong: %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("B0 missing from trace")
	}
}

func TestResourceBusyAndLinkUtilisation(t *testing.T) {
	r := traceFixture(t)
	busy := r.ResourceBusy()
	if busy["w0"] != 1 || busy["l0"] != 0.5 || busy["w1"] != 2 {
		t.Fatalf("busy = %v", busy)
	}
	util := r.LinkUtilisation()
	if len(util) != 1 || util[0].Resource != "l0" {
		t.Fatalf("util = %v", util)
	}
	want := 0.5 / r.Makespan
	if diff := util[0].Fraction - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("l0 utilisation %v, want %v", util[0].Fraction, want)
	}
	if !strings.Contains(r.String(), "makespan") {
		t.Fatal("String() malformed")
	}
}
