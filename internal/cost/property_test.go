package cost

import (
	"testing"
	"testing/quick"

	"weipipe/internal/cluster"
	"weipipe/internal/tensor"
)

// randWorkload draws a small-but-valid workload from fuzz bytes.
func randWorkload(seed uint64) Workload {
	rng := tensor.NewRNG(seed)
	p := 1 << rng.Intn(4)      // 1..8
	l := p * (1 + rng.Intn(4)) // divisible by p
	n := p * (1 + rng.Intn(4)) // divisible by p
	h := 256 << rng.Intn(4)    // 256..2048
	s := 1024 << rng.Intn(4)   // 1k..8k
	g := 1 << rng.Intn(4)      // 1..8
	return Workload{
		H: h, S: s, G: g, L: l, N: n, P: p,
		Recompute: rng.Intn(2) == 0,
	}.WithDefaults()
}

var allMemStrategies = []string{
	"gpipe", "1f1b", "zb1", "zb2", "fsdp", "dp",
	"weipipe-naive", "weipipe-interleave", "wzb1", "wzb2", "wzb2g", "tp", "sp",
}

// Property: memory is positive and monotone non-decreasing in G for every
// strategy (activations only grow with the microbatch).
func TestMemoryMonotoneInMicrobatch(t *testing.T) {
	f := func(seed uint64) bool {
		w := randWorkload(seed)
		big := w
		big.G = w.G * 2
		for _, s := range allMemStrategies {
			a := w.MemoryBytes(s)
			b := big.MemoryBytes(s)
			if a <= 0 || b < a {
				t.Logf("%s: G=%d -> %f, G=%d -> %f", s, w.G, a, big.G, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: recomputation never increases memory and never decreases the
// B-pass duration, for the strategies that honour the flag.
func TestRecomputeTradeoffProperty(t *testing.T) {
	f := func(seed uint64) bool {
		w := randWorkload(seed)
		w.Recompute = true
		off := w
		off.Recompute = false
		for _, s := range []string{"1f1b", "gpipe", "fsdp", "dp", "weipipe-interleave", "tp"} {
			if w.MemoryBytes(s) > off.MemoryBytes(s) {
				t.Logf("%s: recompute increased memory", s)
				return false
			}
		}
		gpu := cluster.A800()
		return w.Times(gpu).B > off.Times(gpu).B
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: FLOPs are strictly monotone in each of G, S, H.
func TestFLOPsMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		w := randWorkload(seed)
		base := w.LayerFwdFLOPs()
		gG, gS, gH := w, w, w
		gG.G *= 2
		gS.S *= 2
		gH.H *= 2
		return gG.LayerFwdFLOPs() > base &&
			gS.LayerFwdFLOPs() > base &&
			gH.LayerFwdFLOPs() > base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: WeiPipe's chunk bytes never depend on G or S; activation
// boundary bytes scale exactly linearly in both.
func TestWireSizeProperties(t *testing.T) {
	f := func(seed uint64) bool {
		w := randWorkload(seed)
		gG, gS := w, w
		gG.G *= 2
		gS.S *= 2
		if gG.ChunkWeightBytes() != w.ChunkWeightBytes() ||
			gS.ChunkWeightBytes() != w.ChunkWeightBytes() {
			return false
		}
		return gG.ActBoundaryBytes() == 2*w.ActBoundaryBytes() &&
			gS.ActBoundaryBytes() == 2*w.ActBoundaryBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
