package cost

import "math"

// Checkpoint-interval planning: given a machine's mean time between
// failures and the cost of writing one coordinated checkpoint, the
// Young/Daly first-order optimum balances the overhead of checkpointing
// too often against the work lost replaying from the last checkpoint after
// a failure. The simulator surfaces this as a recommended -ckpt-every for
// each strategy's modelled iteration time (elastic repair changes the
// trade-off by shrinking the lost-work term to under one iteration, which
// is why the recommendation is reported per recovery mode).

// CheckpointBytes returns the size of one coordinated full-state
// checkpoint: fp32 weights plus the two fp32 AdamW moment vectors for every
// parameter — 12 bytes/param, matching checkpoint.Snapshot's weights +
// adam.m + adam.v sections.
func (w Workload) CheckpointBytes() float64 {
	return w.TotalParams() * (4 + 4 + 4)
}

// OptimalCheckpointInterval returns the Young/Daly checkpoint period in
// seconds: τ ≈ sqrt(2·δ·M) − δ for checkpoint write time δ and mean time
// between failures M (Daly's first-order correction of Young's formula).
// Returns +Inf when failures are not expected (mtbfSec ≤ 0) and 0 when the
// checkpoint is free.
func OptimalCheckpointInterval(ckptSec, mtbfSec float64) float64 {
	if mtbfSec <= 0 {
		return math.Inf(1)
	}
	if ckptSec <= 0 {
		return 0
	}
	tau := math.Sqrt(2*ckptSec*mtbfSec) - ckptSec
	if tau < ckptSec {
		// Failure-dominated regime: checkpointing can't go faster than the
		// write itself.
		tau = ckptSec
	}
	return tau
}

// OptimalCheckpointIters converts the Young/Daly period into a whole
// iteration count for a run whose iterations take iterSec (a recommended
// -ckpt-every value, at least 1).
func OptimalCheckpointIters(iterSec, ckptSec, mtbfSec float64) int {
	tau := OptimalCheckpointInterval(ckptSec, mtbfSec)
	if math.IsInf(tau, 1) || iterSec <= 0 {
		return 0 // checkpointing unnecessary
	}
	iters := int(math.Round(tau / iterSec))
	if iters < 1 {
		iters = 1
	}
	return iters
}
