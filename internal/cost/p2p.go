package cost

// P2P link-mode policy thresholds.
//
// The TCP transport's auto mode controller (comm.P2PAuto) picks a wire
// packaging mode per link: batched bursts amortize per-frame overhead on
// high-RTT links, a duplex ctl lane removes head-of-line blocking on fast
// ones. The decision inputs live here, next to the rest of the calibration
// machinery, so the transport, the simulator's link model, and the
// trace-compare tooling all classify links with the same constants.

// P2PBatchRTTSec is the measured round-trip threshold above which a link
// prefers the batched mode: past this RTT the per-frame envelope overhead
// and syscall count dominate over the serialization a burst introduces.
// The value sits an order of magnitude above intra-server ack RTTs and an
// order below cross-datacenter ones, splitting the two tiers the grouped
// topologies model (NVLink/PCIe vs Ethernet).
const P2PBatchRTTSec = 200e-6

// p2pHysteresis keeps a link from flapping between modes when its measured
// RTT hovers near the threshold: a batched link only reverts to duplex
// once the RTT falls below threshold/p2pHysteresis.
const p2pHysteresis = 2.0

// SuggestP2PBatched classifies a link from its measured ack round-trip
// time: true means the batched mode is the better fit. currentBatched
// feeds the hysteresis band; thresholdSec <= 0 selects P2PBatchRTTSec.
func SuggestP2PBatched(rttSec float64, currentBatched bool, thresholdSec float64) bool {
	thr := thresholdSec
	if thr <= 0 {
		thr = P2PBatchRTTSec
	}
	if currentBatched {
		return rttSec > thr/p2pHysteresis
	}
	return rttSec > thr
}

// P2PTopoBatched seeds the auto decision before any measurement exists,
// from a link's modelled one-way latency: Ethernet-class links (tens of
// microseconds) start batched, NVLink/PCIe-class links start duplex. The
// simulator's link model applies the same classification so predicted and
// measured schedules pick the same modes.
func P2PTopoBatched(latencySec float64) bool {
	return latencySec >= P2PBatchRTTSec/2/10 // one-way ~ RTT/2; 10µs splits the tiers
}
