package cost

import (
	"weipipe/internal/cluster"
)

// PhaseTotals summarises a measured runtime trace at the granularity the
// analytic model reasons in: per-iteration wall time and per-rank-iteration
// compute/exposed-communication sums, in seconds. It is the bridge type
// between internal/trace's nanosecond IterMetrics and this package's
// second-denominated cost model.
type PhaseTotals struct {
	// StepSec is the mean per-iteration step time (max across ranks — an
	// iteration is as slow as its slowest rank).
	StepSec float64
	// FSec/BSec/WSec are mean per rank-iteration compute sums by pass.
	FSec float64
	BSec float64
	WSec float64
	// OptSec is the mean per rank-iteration optimizer-phase time.
	OptSec float64
	// ExposedSec is the mean per rank-iteration exposed-communication time
	// (the compute thread's stall spans) — the measured bubble.
	ExposedSec float64
	Iters      int
	Ranks      int
}

// ComputeSec returns the per rank-iteration compute total.
func (p PhaseTotals) ComputeSec() float64 { return p.FSec + p.BSec + p.WSec + p.OptSec }

// PerRankFwdFLOPs returns the forward FLOPs one rank executes per
// iteration: its N/P microbatches through all L layers plus the LM head.
// (In weight-passing schedules the weights travel to the data, so every
// rank runs the full depth for its own microbatches — the same count an
// activation-passing stage performs across all microbatches for its L/P
// layers.)
func (w Workload) PerRankFwdFLOPs() float64 {
	mb := float64(w.N) / float64(w.P)
	return mb * (float64(w.L)*w.LayerFwdFLOPs() + w.HeadFwdFLOPs())
}

// Calibration is a measurement-grounded parameter suggestion for the
// analytic model: what the GPU actually sustained and how much link time
// really stayed exposed, expressed in the knobs Workload.Times and
// schedule.Spec consume.
type Calibration struct {
	// EffectiveFLOPS is the achieved forward throughput implied by the
	// measured F time (0 when the trace carried no F spans).
	EffectiveFLOPS float64
	// SuggestedMFU is EffectiveFLOPS over the GPU's peak, clamped to
	// (0, 1] — drop it into cluster.GPUSpec.MFU to make Times() predict the
	// measured compute durations.
	SuggestedMFU float64
	// SuggestedLinkScale is the measured exposed communication over the
	// simulator's predicted exposed link time, clamped to [0.01, 1] — drop
	// it into schedule.Spec.LinkScale (same semantics as
	// OverlapMeasurement.SuggestedLinkScale).
	SuggestedLinkScale float64
}

// Calibrate fits the analytic model to a measured run. predictedExposedSec
// is the simulator's per rank-iteration exposed link time for the same
// (strategy, workload, topology); pass 0 when unknown and the link scale
// suggestion stays at 1.
func Calibrate(w Workload, gpu cluster.GPUSpec, m PhaseTotals, predictedExposedSec float64) Calibration {
	w = w.WithDefaults()
	c := Calibration{SuggestedMFU: gpu.MFU, SuggestedLinkScale: 1}
	if m.FSec > 0 {
		c.EffectiveFLOPS = w.PerRankFwdFLOPs() / m.FSec
		if gpu.PeakFLOPS > 0 {
			mfu := c.EffectiveFLOPS / gpu.PeakFLOPS
			if mfu > 1 {
				mfu = 1
			}
			if mfu > 0 {
				c.SuggestedMFU = mfu
			}
		}
	}
	if predictedExposedSec > 0 {
		const eps = 0.01
		s := m.ExposedSec / predictedExposedSec
		switch {
		case s < eps:
			s = eps
		case s > 1:
			s = 1
		}
		c.SuggestedLinkScale = s
	}
	return c
}
