package cost

import (
	"math"
	"testing"

	"weipipe/internal/cluster"
)

func calWorkload() Workload {
	return Workload{H: 64, S: 32, G: 1, L: 4, N: 4, P: 2, Heads: 4, Vocab: 100}
}

func TestPerRankFwdFLOPs(t *testing.T) {
	w := calWorkload()
	// N/P microbatches, each through all L layers plus the head.
	want := 2 * (4*w.LayerFwdFLOPs() + w.HeadFwdFLOPs())
	if got := w.PerRankFwdFLOPs(); math.Abs(got-want) > want*1e-12 {
		t.Fatalf("PerRankFwdFLOPs = %v, want %v", got, want)
	}
}

func TestCalibrateRecoversMFU(t *testing.T) {
	w := calWorkload()
	gpu := cluster.A800()
	// Fabricate a measurement where the rank sustained exactly half of peak.
	m := PhaseTotals{FSec: w.PerRankFwdFLOPs() / (gpu.PeakFLOPS * 0.5)}
	c := Calibrate(w, gpu, m, 0)
	if math.Abs(c.SuggestedMFU-0.5) > 1e-9 {
		t.Fatalf("SuggestedMFU = %v, want 0.5", c.SuggestedMFU)
	}
	if math.Abs(c.EffectiveFLOPS-gpu.PeakFLOPS*0.5) > gpu.PeakFLOPS*1e-9 {
		t.Fatalf("EffectiveFLOPS = %v", c.EffectiveFLOPS)
	}
	// Above-peak measurements clamp to MFU 1.
	fast := PhaseTotals{FSec: w.PerRankFwdFLOPs() / (gpu.PeakFLOPS * 2)}
	if c := Calibrate(w, gpu, fast, 0); c.SuggestedMFU != 1 {
		t.Fatalf("above-peak SuggestedMFU = %v, want 1", c.SuggestedMFU)
	}
}

func TestCalibrateLinkScaleClamps(t *testing.T) {
	w := calWorkload()
	gpu := cluster.A800()
	cases := []struct {
		measured, predicted, want float64
	}{
		{0.5, 1, 0.5},   // in range
		{3, 1, 1},       // clamp high
		{1e-5, 1, 0.01}, // clamp low
		{0.5, 0, 1},     // no prediction → neutral
	}
	for _, tc := range cases {
		c := Calibrate(w, gpu, PhaseTotals{ExposedSec: tc.measured}, tc.predicted)
		if math.Abs(c.SuggestedLinkScale-tc.want) > 1e-12 {
			t.Fatalf("measured=%v predicted=%v: SuggestedLinkScale = %v, want %v",
				tc.measured, tc.predicted, c.SuggestedLinkScale, tc.want)
		}
	}
}

func TestCalibrateNoComputeFallsBack(t *testing.T) {
	gpu := cluster.A800()
	c := Calibrate(calWorkload(), gpu, PhaseTotals{}, 0)
	if c.EffectiveFLOPS != 0 {
		t.Fatalf("EffectiveFLOPS = %v, want 0", c.EffectiveFLOPS)
	}
	if c.SuggestedMFU != gpu.MFU {
		t.Fatalf("SuggestedMFU = %v, want GPU default %v", c.SuggestedMFU, gpu.MFU)
	}
}
