package cost

import (
	"math"
	"testing"
)

func TestCheckpointBytes(t *testing.T) {
	w := Workload{H: 64, S: 128, G: 1, L: 2, N: 4, P: 2}.WithDefaults()
	// fp32 weights + two fp32 AdamW moments: 12 bytes per parameter.
	if got, want := w.CheckpointBytes(), w.TotalParams()*12; got != want {
		t.Fatalf("CheckpointBytes = %v, want %v", got, want)
	}
}

func TestOptimalCheckpointInterval(t *testing.T) {
	// Young/Daly: τ = sqrt(2·δ·M) − δ. δ=10s, M=6h=21600s → sqrt(432000)−10.
	want := math.Sqrt(2*10*21600) - 10
	if got := OptimalCheckpointInterval(10, 21600); math.Abs(got-want) > 1e-9 {
		t.Fatalf("OptimalCheckpointInterval(10, 21600) = %v, want %v", got, want)
	}
	// No failures expected → never checkpoint.
	if got := OptimalCheckpointInterval(10, 0); !math.IsInf(got, 1) {
		t.Fatalf("mtbf=0 should disable checkpointing, got %v", got)
	}
	// Free checkpoints → continuous checkpointing.
	if got := OptimalCheckpointInterval(0, 21600); got != 0 {
		t.Fatalf("free checkpoint should give 0, got %v", got)
	}
	// Failure-dominated regime: the interval never drops below the write
	// time itself.
	if got := OptimalCheckpointInterval(100, 1); got != 100 {
		t.Fatalf("failure-dominated interval = %v, want clamped to 100", got)
	}
}

func TestOptimalCheckpointIters(t *testing.T) {
	// τ ≈ 647s at δ=10s, M=6h; iterations of 60s → every ~11 iterations.
	tau := OptimalCheckpointInterval(10, 21600)
	want := int(math.Round(tau / 60))
	if got := OptimalCheckpointIters(60, 10, 21600); got != want {
		t.Fatalf("OptimalCheckpointIters = %d, want %d", got, want)
	}
	// Always at least one iteration between checkpoints.
	if got := OptimalCheckpointIters(1e6, 10, 21600); got != 1 {
		t.Fatalf("long iterations should clamp to 1, got %d", got)
	}
	// Disabled when no failures are expected.
	if got := OptimalCheckpointIters(60, 10, 0); got != 0 {
		t.Fatalf("mtbf=0 should give 0, got %d", got)
	}
}
