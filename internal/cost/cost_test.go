package cost

import (
	"testing"

	"weipipe/internal/cluster"
)

// paperTable2 returns the paper's Table 2 workload for the given row.
func paperTable2(h, s, g int) Workload {
	return Workload{H: h, S: s, G: g, L: 32, N: 64, P: 16, Recompute: true}.WithDefaults()
}

// zbTable2 returns the same row with the ZB strategies' reduced microbatch
// (G=4 at S=4096, G=1 otherwise) and no recomputation.
func zbTable2(h, s int) Workload {
	g := 1
	if s == 4096 {
		g = 4
	}
	return Workload{H: h, S: s, G: g, L: 32, N: 64, P: 16, Recompute: false}.WithDefaults()
}

func gb(b float64) float64 { return b / (1 << 30) }

func TestParamCounts(t *testing.T) {
	w := paperTable2(1024, 4096, 16)
	if got := w.LayerParams(); got < 12*1024*1024 || got > 12*1024*1024+3000 {
		t.Fatalf("LayerParams = %v", got)
	}
	// 32 layers of 12H² + two V·H edges ≈ 470M at H=1024
	total := w.TotalParams()
	if total < 4.6e8 || total > 4.8e8 {
		t.Fatalf("TotalParams = %v", total)
	}
}

func TestFLOPsFormula(t *testing.T) {
	w := paperTable2(1024, 4096, 16)
	g, s, h := 16.0, 4096.0, 1024.0
	want := 24*g*s*h*h + 4*g*s*s*h
	if got := w.LayerFwdFLOPs(); got != want {
		t.Fatalf("LayerFwdFLOPs = %v, want %v", got, want)
	}
	// attention term grows quadratically with S
	w2 := paperTable2(1024, 8192, 16)
	if w2.LayerFwdFLOPs() <= 2*w.LayerFwdFLOPs() {
		t.Fatal("doubling S should more than double layer FLOPs")
	}
}

func TestTimesRecomputeAddsForward(t *testing.T) {
	gpu := cluster.A800()
	w := paperTable2(1024, 4096, 16)
	withR := w.Times(gpu)
	w.Recompute = false
	without := w.Times(gpu)
	if withR.F != without.F || withR.W != without.W {
		t.Fatal("recompute must only change B")
	}
	if withR.B <= without.B {
		t.Fatal("recompute must lengthen B")
	}
	if without.B != without.F {
		t.Fatal("B ≈ F without recompute")
	}
}

func TestWeightRatioCrossover(t *testing.T) {
	// The paper's motivation: G·S/(12H) > 1 for the long-context configs.
	long := paperTable2(1024, 16384, 4)
	if long.WeightRatio() <= 1 {
		t.Fatalf("long-context ratio = %v, want > 1", long.WeightRatio())
	}
	short := Workload{H: 4096, S: 512, G: 1, L: 32, N: 16, P: 8}.WithDefaults()
	if short.WeightRatio() >= 1 {
		t.Fatalf("short-context ratio = %v, want < 1", short.WeightRatio())
	}
}

func TestMessageSizes(t *testing.T) {
	w := paperTable2(2048, 8192, 8)
	if got := w.ActBoundaryBytes(); got != 8*8192*2048*2 {
		t.Fatalf("ActBoundaryBytes = %v", got)
	}
	if w.ChunkWeightBytes() <= 2*w.LayerWeightBytes() {
		t.Fatal("chunk must hold L/P layers plus an edge module")
	}
	// For long contexts an activation boundary exceeds a chunk of weights.
	if w.ActBoundaryBytes() < w.LayerWeightBytes() {
		t.Fatal("long-context activation should outweigh layer weights")
	}
}

// TestMemoryModelMatchesTable2Shape pins the calibrated memory model to the
// paper's measured Table 2 column: ordering, rough magnitude, and the OOM
// pattern.
func TestMemoryModelMatchesTable2Shape(t *testing.T) {
	gpu := cluster.A800()

	type row struct {
		h, s, g  int
		fsdpGB   float64 // paper-measured, for ±60% magnitude checks
		weipipGB float64
		f1bGB    float64
		zb1OOM   bool
		zb2OOM   bool
	}
	rows := []row{
		{1024, 4096, 16, 8.6, 9.4, 13.0, false, false},
		{1024, 8192, 8, 8.6, 9.4, 9.9, false, false},
		{1024, 16384, 4, 8.6, 9.4, 9.1, false, false},
		{2048, 4096, 16, 17.9, 19.9, 18.7, false, true},
		{2048, 8192, 8, 17.9, 19.9, 19.6, false, true},
		{2048, 16384, 4, 17.9, 19.9, 22.9, false, true},
		{4096, 4096, 16, 39, 44.5, 40.5, true, true},
		{4096, 8192, 8, 39, 44.5, 41.6, true, true},
		{4096, 16384, 4, 39, 44.5, 45.1, true, true},
	}
	for _, r := range rows {
		w := paperTable2(r.h, r.s, r.g)
		zw := zbTable2(r.h, r.s)

		fsdp := gb(w.MemoryBytes("fsdp"))
		wp := gb(w.MemoryBytes("weipipe-interleave"))
		f1b := gb(w.MemoryBytes("1f1b"))

		// ordering: FSDP ≤ WeiPipe; both well under the ZB footprints
		if fsdp > wp {
			t.Errorf("H=%d S=%d: fsdp %f > weipipe %f", r.h, r.s, fsdp, wp)
		}
		// magnitude within ±60% of the paper's measurement
		check := func(name string, got, paper float64) {
			if got < paper*0.4 || got > paper*1.6 {
				t.Errorf("H=%d S=%d %s: model %.1f GB vs paper %.1f GB", r.h, r.s, name, got, paper)
			}
		}
		check("fsdp", fsdp, r.fsdpGB)
		check("weipipe", wp, r.weipipGB)
		check("1f1b", f1b, r.f1bGB)

		// OOM pattern at the 80 GB boundary
		if got := !zw.FitsMemory("zb1", gpu); got != r.zb1OOM {
			t.Errorf("H=%d S=%d zb1 OOM=%v want %v (%.1f GB)", r.h, r.s, got, r.zb1OOM, gb(zw.MemoryBytes("zb1")))
		}
		if got := !zw.FitsMemory("zb2", gpu); got != r.zb2OOM {
			t.Errorf("H=%d S=%d zb2 OOM=%v want %v (%.1f GB)", r.h, r.s, got, r.zb2OOM, gb(zw.MemoryBytes("zb2")))
		}
		// the non-ZB strategies always fit in Table 2
		for _, s := range []string{"fsdp", "weipipe-interleave", "1f1b"} {
			if !w.FitsMemory(s, gpu) {
				t.Errorf("H=%d S=%d: %s unexpectedly OOM (%.1f GB)", r.h, r.s, s, gb(w.MemoryBytes(s)))
			}
		}
	}
}

func TestMemoryIndependentOfSequenceAtFixedGS(t *testing.T) {
	// Rows of Table 2 hold G·S constant; the model's activation terms
	// should then be S-invariant.
	a := paperTable2(1024, 4096, 16).MemoryBytes("weipipe-interleave")
	b := paperTable2(1024, 16384, 4).MemoryBytes("weipipe-interleave")
	if a != b {
		t.Fatalf("memory changed with S at fixed G·S: %v vs %v", a, b)
	}
}

func TestWorkloadValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid workload did not panic")
		}
	}()
	Workload{H: 0, S: 1, G: 1, L: 1, N: 1, P: 1}.WithDefaults()
}

func TestUnknownStrategyPanics(t *testing.T) {
	w := paperTable2(1024, 4096, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown strategy did not panic")
		}
	}()
	w.MemoryBytes("nope")
}

func TestTPAndSPMemoryEntries(t *testing.T) {
	w := paperTable2(2048, 8192, 8)
	tp := w.MemoryBytes("tp")
	sp := w.MemoryBytes("sp")
	dp := w.MemoryBytes("dp")
	if tp <= 0 || sp <= 0 {
		t.Fatal("non-positive memory")
	}
	// TP shards weights 1/P; SP replicates them — SP must carry the full
	// DP-style weight footprint while TP sits far below it.
	if tp >= dp {
		t.Errorf("tp memory %v not below dp %v", tp, dp)
	}
	if sp < w.TotalParams()*16 {
		t.Errorf("sp memory %v below its replicated weight floor", sp)
	}
	// SP's activations shrink with P; TP's do not.
	w2 := w
	w2.P = 32
	if w2.MemoryBytes("sp") >= sp {
		t.Error("sp memory did not shrink with more ranks")
	}
}
