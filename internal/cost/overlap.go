package cost

// OverlapMeasurement captures a matched pair of functional-runtime runs —
// the blocking belt engine versus the overlapped one, same strategy, same
// workload — and converts them into a calibration for the simulator's link
// model. Step times come from wall-clock measurement; stall times are the
// runners' RecordBeltStall telemetry (the compute thread's critical-path
// wait for belt payloads, measured identically in both modes).
type OverlapMeasurement struct {
	// BlockingStepSec / OverlappedStepSec are mean per-iteration wall
	// times.
	BlockingStepSec   float64
	OverlappedStepSec float64
	// BlockingStallSec / OverlappedStallSec are mean per-iteration belt
	// stalls summed over ranks.
	BlockingStallSec   float64
	OverlappedStallSec float64
}

// Speedup returns blocking/overlapped step time (>1 when overlap wins).
func (m OverlapMeasurement) Speedup() float64 {
	if m.OverlappedStepSec <= 0 {
		return 0
	}
	return m.BlockingStepSec / m.OverlappedStepSec
}

// StallReduction returns the fraction of the blocking run's belt stall the
// overlapped engine removed (1 = all of it, 0 = none).
func (m OverlapMeasurement) StallReduction() float64 {
	if m.BlockingStallSec <= 0 {
		return 0
	}
	r := 1 - m.OverlappedStallSec/m.BlockingStallSec
	if r < 0 {
		return 0
	}
	return r
}

// SuggestedLinkScale returns the schedule.Spec.LinkScale calibrated by this
// measurement: the fraction of blocking-mode exposed link time that
// survives under the overlapped engine. The simulator's Overlap=true graphs
// already hide belt links behind compute structurally; scaling the link
// durations by the *measured* residual closes the remaining gap between the
// analytic model and the functional runtime. Clamped to [ε, 1] so the
// result always yields a well-formed Spec (0 would mean "links are free",
// which no measurement can honestly claim).
func (m OverlapMeasurement) SuggestedLinkScale() float64 {
	const eps = 0.01
	if m.BlockingStallSec <= 0 {
		return 1
	}
	s := m.OverlappedStallSec / m.BlockingStallSec
	if s < eps {
		return eps
	}
	if s > 1 {
		return 1
	}
	return s
}
