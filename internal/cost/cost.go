// Package cost is the analytic model of the paper's workloads: FLOP counts,
// message sizes and per-worker memory footprints for Llama-style training
// under each parallel strategy. The discrete-event simulator turns the FLOP
// counts into op durations; the benchmark harness turns the memory model
// into the OOM column of the paper's tables.
//
// All constants that calibrate the memory model are named and documented
// here; the calibration target is the measured memory column of the paper's
// Table 2 (see EXPERIMENTS.md for the paper-vs-model comparison).
package cost

import (
	"fmt"

	"weipipe/internal/cluster"
)

// Workload describes one training configuration (the paper's H/S/G/L/N
// parameters plus vocab and head count).
type Workload struct {
	H     int // hidden size
	S     int // sequence length
	G     int // microbatch size
	L     int // transformer layers
	Heads int // attention heads (fixed at 32 in the paper)
	Vocab int // vocabulary size (Llama-2's 32000 unless overridden)
	N     int // microbatches per iteration
	P     int // workers
	// Recompute marks activation checkpointing (applied to every strategy
	// except the zero-bubble ones, following the paper).
	Recompute bool
}

// WithDefaults fills Heads/Vocab and validates.
func (w Workload) WithDefaults() Workload {
	if w.Heads == 0 {
		w.Heads = 32
	}
	if w.Vocab == 0 {
		w.Vocab = 32000
	}
	if w.H <= 0 || w.S <= 0 || w.G <= 0 || w.L <= 0 || w.N <= 0 || w.P <= 0 {
		panic(fmt.Sprintf("cost: invalid workload %+v", w))
	}
	return w
}

// Tokens returns tokens processed per iteration (G·S·N).
func (w Workload) Tokens() float64 {
	return float64(w.G) * float64(w.S) * float64(w.N)
}

// ---- parameter counts -----------------------------------------------------

// LayerParams returns the per-layer parameter count: 12H² from the
// attention (4H²) and SwiGLU FFN (8H²) projections plus the two norm gains.
func (w Workload) LayerParams() float64 {
	h := float64(w.H)
	return 12*h*h + 2*h
}

// EmbedParams returns the token-embedding parameter count (V·H).
func (w Workload) EmbedParams() float64 { return float64(w.Vocab) * float64(w.H) }

// HeadParams returns the output head parameter count (V·H plus final norm).
func (w Workload) HeadParams() float64 { return float64(w.Vocab)*float64(w.H) + float64(w.H) }

// TotalParams returns the full model parameter count.
func (w Workload) TotalParams() float64 {
	return float64(w.L)*w.LayerParams() + w.EmbedParams() + w.HeadParams()
}

// ---- FLOPs and op durations ------------------------------------------------

// LayerFwdFLOPs returns the forward FLOPs of one transformer layer for one
// microbatch: 24·G·S·H² for the linear projections (2 FLOPs per MAC over
// 12H² weights and G·S tokens) plus 4·G·S²·H for QKᵀ and attention·V.
func (w Workload) LayerFwdFLOPs() float64 {
	g, s, h := float64(w.G), float64(w.S), float64(w.H)
	return 24*g*s*h*h + 4*g*s*s*h
}

// HeadFwdFLOPs returns the LM-head forward FLOPs (2·G·S·H·V).
func (w Workload) HeadFwdFLOPs() float64 {
	return 2 * float64(w.G) * float64(w.S) * float64(w.H) * float64(w.Vocab)
}

// OpTimes holds the simulator's per-(layer, microbatch) compute durations in
// seconds: F forward, B the activation-gradient pass, W the weight-gradient
// pass. The paper's "backward ≈ 2× forward" is B+W; recomputation adds one
// extra F to B.
type OpTimes struct {
	F float64
	B float64
	W float64
	// HeadF/HeadB/HeadW add the output-projection cost on top of the
	// layer cost for the stage containing the LM head.
	HeadF float64
	HeadB float64
	HeadW float64
}

// Times derives op durations from the workload and GPU.
func (w Workload) Times(gpu cluster.GPUSpec) OpTimes {
	eff := gpu.PeakFLOPS * gpu.MFU
	f := w.LayerFwdFLOPs() / eff
	t := OpTimes{F: f, B: f, W: f}
	if w.Recompute {
		t.B += f // re-run forward before the B pass
	}
	hf := w.HeadFwdFLOPs() / eff
	t.HeadF = hf
	t.HeadB = hf
	t.HeadW = hf
	return t
}

// ---- message sizes ----------------------------------------------------------

// Bytes-per-element of the paper's wire formats.
const (
	fp16Bytes = 2
	fp32Bytes = 4
)

// ActBoundaryBytes returns the bytes of one boundary activation tensor
// (G·S·H fp16 values) — what activation-passing pipelines ship per
// microbatch per stage boundary. Activation gradients (bf16) are the same
// size.
func (w Workload) ActBoundaryBytes() float64 {
	return float64(w.G) * float64(w.S) * float64(w.H) * fp16Bytes
}

// LayerWeightBytes returns the fp16 bytes of one layer's weights (≈ 24H²,
// the paper's 12H² parameters at 2 bytes).
func (w Workload) LayerWeightBytes() float64 { return w.LayerParams() * fp16Bytes }

// ChunkWeightBytes returns the fp16 bytes of one WeiPipe chunk (L/P layers,
// with the embedding attached to chunk 0 and the head to chunk P−1; for
// sizing we use the largest chunk). Gradient chunks are the same size.
func (w Workload) ChunkWeightBytes() float64 {
	perChunk := float64(w.L) / float64(w.P) * w.LayerWeightBytes()
	edge := w.EmbedParams() * fp16Bytes
	if hp := w.HeadParams() * fp16Bytes; hp > edge {
		edge = hp
	}
	return perChunk + edge
}

// WeightRatio returns the paper's key quantity G·S/(12·H): when it exceeds
// 1, a boundary activation outweighs a layer's weights and weight-passing
// wins on communication volume.
func (w Workload) WeightRatio() float64 {
	return float64(w.G) * float64(w.S) / (12 * float64(w.H))
}

// ---- memory model ------------------------------------------------------------

// Calibration constants for the per-worker memory model, fit against the
// measured memory column of the paper's Table 2 (A800, 16 GPUs, L=32).
const (
	// bytesPerOwnedParam: fp16 weight + fp16 grad + fp32 master + two fp32
	// Adam moments.
	bytesPerOwnedParam = 2 + 2 + 4 + 4 + 4

	// actFullUnits: full per-layer activation footprint retained for an
	// un-checkpointed backward, in units of G·S·H fp16 elements. With Flash
	// Attention the S² matrices never materialise; what remains is the
	// residual stream, q/k/v/ctx, and the three F-wide FFN intermediates.
	actFullUnits = 17

	// actCkptUnits: per-layer footprint with checkpointing — just the
	// boundary input.
	actCkptUnits = 1

	// megatronCkptUnits: Megatron-LM's 1F1B/GPipe stages retain both the
	// input and output boundary tensors of the stage per in-flight
	// microbatch (observed in the paper's higher 1F1B memory).
	megatronCkptUnits = 2

	// zbStashFrac / zb2StashFrac: fraction of the full activation footprint
	// additionally retained between a B pass and its deferred W pass (paper
	// §4.2.4's α·M_A + M_B term, folded into one fitted constant; ZB2
	// defers every W pass so it retains more).
	zbStashFrac  = 0.15
	zb2StashFrac = 0.25

	// zbUsableFrac: effective memory budget fraction for the zero-bubble
	// strategies. The paper observes that with Flash Attention their peak
	// occurs on the last rank before its first W pass and is roughly twice
	// the steady footprint of the first rank; we fold that transient into a
	// reduced budget rather than into the reported steady number, which is
	// what the paper's Table 2 measures.
	zbUsableFrac = 0.55

	// weipipeInflight: WeiPipe-Interleave keeps one draining and one
	// filling microbatch whose chunk lifetimes sum to ≈ one model's worth;
	// the overshoot covers the half-turn both are live.
	weipipeInflight = 1.15

	// beltBufferCopies: receive + send double buffers for the two weight
	// belts and the gradient belt (the "larger buffers" the paper notes
	// put WeiPipe slightly above FSDP).
	beltBufferCopies = 6
)

// unitBytes returns G·S·H fp16 bytes — the memory model's activation unit.
func (w Workload) unitBytes() float64 {
	return float64(w.G) * float64(w.S) * float64(w.H) * fp16Bytes
}

// MemoryBytes estimates the peak per-worker memory of the given strategy
// (identified by the same names the pipeline package uses). It returns the
// worst rank's footprint.
func (w Workload) MemoryBytes(strategy string) float64 {
	u := w.unitBytes()
	lp := float64(w.L) / float64(w.P)
	inflight := float64(w.P)
	if n := float64(w.N); n < inflight {
		inflight = n
	}
	edgeParams := w.EmbedParams()
	if hp := w.HeadParams(); hp > edgeParams {
		edgeParams = hp
	}
	ownStage := (lp*w.LayerParams() + edgeParams) * bytesPerOwnedParam
	workspace := actFullUnits * u // one layer recomputed during backward

	// Per-layer retained activations for the strategies that honour the
	// recompute flag: boundary-only when checkpointing, full otherwise.
	ckpt := float64(actCkptUnits)
	megatronCkpt := float64(megatronCkptUnits)
	if !w.Recompute {
		ckpt = actFullUnits
		megatronCkpt = actFullUnits
	}

	switch strategy {
	case "gpipe":
		return ownStage + float64(w.N)*lp*megatronCkpt*u + workspace
	case "1f1b":
		return ownStage + inflight*lp*megatronCkpt*u + workspace
	case "zb1":
		acts := inflight * lp * actFullUnits * u
		return ownStage + acts*(1+zbStashFrac)
	case "zb2":
		acts := inflight * lp * actFullUnits * u
		return ownStage + 2*acts*(1+zb2StashFrac)
	case "fsdp":
		sharded := w.TotalParams() * bytesPerOwnedParam / float64(w.P)
		// prefetch double buffer of the largest gathered module
		gathered := 2 * maxf(w.LayerParams(), edgeParams) * fp16Bytes
		acts := float64(w.L) * ckpt * u
		return sharded + gathered + acts + workspace
	case "dp":
		return w.TotalParams()*bytesPerOwnedParam + float64(w.L)*ckpt*u + workspace
	case "tp":
		// weights sharded 1/P; activations fully replicated on every rank.
		return w.TotalParams()*bytesPerOwnedParam/float64(w.P) +
			float64(w.L)*ckpt*u + workspace
	case "sp":
		// weights fully replicated (DP-style); activations split 1/P along
		// the sequence, except each layer's gathered K/V (2 activation
		// units, transient).
		return w.TotalParams()*bytesPerOwnedParam +
			float64(w.L)*ckpt*u/float64(w.P) + 2*u + workspace/float64(w.P)
	case "weipipe-naive":
		chunk := (lp*w.LayerParams() + edgeParams) * fp16Bytes
		own := (lp*w.LayerParams() + edgeParams) * bytesPerOwnedParam
		return own + beltBufferCopies*chunk + float64(w.L)*ckpt*u + workspace
	case "weipipe-interleave":
		chunk := (lp*w.LayerParams() + edgeParams) * fp16Bytes
		own := (lp*w.LayerParams() + edgeParams) * bytesPerOwnedParam
		return own + beltBufferCopies*chunk +
			weipipeInflight*float64(w.L)*ckpt*u + 2*workspace
	case "wzb1":
		chunk := (lp*w.LayerParams() + edgeParams) * fp16Bytes
		own := (lp*w.LayerParams() + edgeParams) * bytesPerOwnedParam
		// paper §4.2.4: WZB1 peaks near 1.5·G·M_A
		return own + beltBufferCopies*chunk + 1.5*float64(w.L)*ckpt*u +
			2*workspace + lp*actFullUnits*u*zbStashFrac
	case "wzb2":
		chunk := (lp*w.LayerParams() + edgeParams) * fp16Bytes
		own := (lp*w.LayerParams() + edgeParams) * bytesPerOwnedParam
		// one chunk operation per two chunks on the wire: double belts and
		// a model's worth of pending W stashes.
		return own + 2*beltBufferCopies*chunk + 2*float64(w.L)*ckpt*u +
			2*workspace + float64(w.L)*actFullUnits*u*zbStashFrac
	case "wzb2g":
		chunk := (lp*w.LayerParams() + edgeParams) * fp16Bytes
		own := (lp*w.LayerParams() + edgeParams) * bytesPerOwnedParam
		// wzb2's footprint plus the holder shard cache: each rank caches the
		// P/m chunks it re-injects into its group's belt each round, held as
		// full-precision buffers (2× the fp16 wire chunk). Uses the runtime's
		// topology-friendly default group size (pipeline.normalizeGroupSize).
		m := defaultGroupSize(w.P)
		cache := float64(w.P/m) * 2 * chunk
		return own + 2*beltBufferCopies*chunk + cache + 2*float64(w.L)*ckpt*u +
			2*workspace + float64(w.L)*actFullUnits*u*zbStashFrac
	default:
		panic("cost: unknown strategy " + strategy)
	}
}

// defaultGroupSize mirrors pipeline.normalizeGroupSize's default: groups of
// 4 when the ring allows it, pairs on smaller even rings, flat otherwise.
func defaultGroupSize(p int) int {
	switch {
	case p%4 == 0 && p >= 8:
		return 4
	case p%2 == 0:
		return 2
	default:
		return 1
	}
}

// FitsMemory reports whether the strategy fits the GPU ("OOM" otherwise).
// The zero-bubble strategies are checked against a reduced budget
// (zbUsableFrac) to account for their last-rank transient spike.
func (w Workload) FitsMemory(strategy string, gpu cluster.GPUSpec) bool {
	budget := gpu.MemBytes
	if strategy == "zb1" || strategy == "zb2" {
		budget *= zbUsableFrac
	}
	return w.MemoryBytes(strategy) <= budget
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
