package launch

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"weipipe/internal/checkpoint"
	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
)

// IsWorker reports whether this process was spawned by a supervisor and
// must run RunWorker instead of its normal main. Check it before flag
// parsing — re-exec'ed binaries (weipipe-launch, test binaries) carry
// their parent's argv, which is not meant for the worker.
func IsWorker() bool { return os.Getenv(envWorker) == "1" }

// WorkerMain is the entry point of a spawned worker process: dial the
// supervisor's control port, introduce ourselves, then serve rank
// assignments until told to exit. The returned code is the process exit
// status.
func WorkerMain() int {
	addr := os.Getenv(envSupAddr)
	id, _ := strconv.Atoi(os.Getenv(envWorkID))
	if err := RunWorker(addr, id); err != nil {
		fmt.Fprintf(os.Stderr, "launch worker %d: %v\n", id, err)
		return 1
	}
	return 0
}

// worker is one process's view of its life under a supervisor.
type worker struct {
	id int
	c  *codec

	mu   sync.Mutex
	tr   *comm.TCPTransport // live data-mesh transport, for partition cmds
	snap *checkpoint.Snapshot
}

// RunWorker connects to the supervisor at addr and serves assignments.
func RunWorker(addr string, id int) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial supervisor: %w", err)
	}
	w := &worker{id: id, c: newCodec(conn)}
	defer w.c.close()
	if err := w.c.send(Msg{Type: "hello", ID: id, PID: os.Getpid()}); err != nil {
		return err
	}

	// The reader goroutine owns the control connection's receive side:
	// assignments queue for the main loop, partitions apply immediately to
	// the live transport (the whole point is hitting a rank mid-training),
	// exit terminates.
	assigns := make(chan Msg, 4)
	done := make(chan error, 1)
	go func() {
		for {
			m, err := w.c.recv()
			if err != nil {
				done <- nil // supervisor gone: nothing left to serve
				return
			}
			switch m.Type {
			case "assign":
				assigns <- m
			case "partition":
				w.partition(m.Peers, m.Dur)
			case "exit":
				done <- nil
				return
			}
		}
	}()

	for {
		select {
		case err := <-done:
			return err
		case m := <-assigns:
			if err := w.serve(m); err != nil {
				return err
			}
		}
	}
}

func (w *worker) partition(peers []int, d time.Duration) {
	w.mu.Lock()
	tr := w.tr
	w.mu.Unlock()
	if tr != nil {
		tr.Blackhole(peers, d)
	}
}

func (w *worker) setTransport(tr *comm.TCPTransport) {
	w.mu.Lock()
	w.tr = tr
	w.mu.Unlock()
}

// serve runs one incarnation and reports its outcome. Every error that
// can be reported as a result is; only control-channel failures (the
// supervisor is gone) escape.
func (w *worker) serve(m Msg) error {
	spec := m.Spec
	if spec == nil {
		return fmt.Errorf("assign without spec")
	}
	snap := w.snap
	if m.FromCkpt {
		loaded, err := checkpoint.Load(spec.CheckpointPath)
		if err != nil {
			return w.c.send(Msg{Type: "result", Epoch: m.Epoch, Aborted: true,
				Reason: "checkpoint: " + err.Error()})
		}
		snap = loaded
	}

	seedFrom := -1
	if m.SeedFrom != nil {
		seedFrom = *m.SeedFrom
	}
	a := pipeline.RankAssignment{
		Epoch: m.Epoch, Rank: m.Rank, World: m.World, Addrs: m.Addrs,
		StartIter: m.StartIter, SeedFrom: seedFrom, SeedTo: m.SeedTo,
	}
	dl := spec.Deadlines.WithDefaults()
	rc := pipeline.RankConfig{
		Strategy:        pipeline.StrategyWZB2,
		Cfg:             spec.config(),
		Opts:            spec.options(),
		Iters:           spec.Iters,
		BatchesFn:       spec.batches(),
		Deadlines:       dl,
		Chaos:           spec.Chaos,
		CheckpointEvery: spec.CheckpointEvery,
		CheckpointPath:  spec.CheckpointPath,
		Snapshot:        snap,
		OnIteration: func(iter int, loss float64) {
			w.c.send(Msg{Type: "progress", Epoch: m.Epoch, Iter: iter})
		},
		Beacon: func(state string, iter int) {
			w.c.send(Msg{Type: "progress", Epoch: m.Epoch, Iter: iter, State: state})
		},
		Transport: func(a pipeline.RankAssignment) (comm.Transport, error) {
			opts := dl.TCPOptions()
			opts.Epoch = a.Epoch
			opts.Chaos = spec.Chaos
			tr, err := comm.DialTCPOpts(a.Rank, a.Addrs, opts)
			if err == nil {
				w.setTransport(tr)
			}
			return tr, err
		},
	}

	out, err := pipeline.RunRank(a, rc)
	w.setTransport(nil)
	if err != nil {
		w.snap = nil
		return w.c.send(Msg{Type: "result", Epoch: m.Epoch, Aborted: true,
			Reason: "rank: " + err.Error()})
	}

	res := Msg{Type: "result", Epoch: m.Epoch, Rank: m.Rank,
		Done: out.Done, Aborted: out.Aborted, Reason: out.Reason, Cut: out.Iter}
	switch {
	case out.Done:
		w.snap = nil
		res.WHash = fmt.Sprintf("%016x", out.WeightsHash)
		res.Losses = out.Losses
	case out.Snapshot != nil:
		// A survivor: hold the harvested state for the next incarnation and
		// report its fingerprint so the supervisor can cross-check every
		// survivor harvested the identical snapshot.
		w.snap = out.Snapshot
		res.Dead = out.Membership.Dead
		res.SnapHash = fmt.Sprintf("%016x", pipeline.HashWeights(out.Snapshot.Weights))
	default:
		// Evicted, quorum lost, or harvest failed: this process keeps no
		// usable state and retires to standby (re-seedable as a spare).
		w.snap = nil
	}
	return w.c.send(res)
}

// batches is the per-iteration microbatch source every rank and the
// replay oracle share: iteration i draws from BatchSeed+i, so data is a
// pure function of the spec and the global iteration number — no rank or
// incarnation leaks into it.
func (s *TrainSpec) batches() func(int) []data.Batch {
	return func(i int) []data.Batch {
		return data.Microbatches(s.BatchSeed+uint64(i), s.MicroBatches, s.MicroBatchSize, s.Vocab, s.MaxSeq)
	}
}

// config materialises the model configuration (shared with the oracle).
func (s *TrainSpec) config() model.Config {
	return model.Config{
		Vocab: s.Vocab, Hidden: s.Hidden, Layers: s.Layers,
		Heads: s.Heads, MaxSeq: s.MaxSeq, Seed: s.ModelSeed,
	}
}

// options materialises the trainer options (shared with the oracle).
func (s *TrainSpec) options() pipeline.Options {
	adam := optim.DefaultAdamW(s.LR)
	adam.Eps = s.Eps
	return pipeline.Options{Adam: adam}
}
