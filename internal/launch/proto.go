// Package launch is the cross-process elastic training harness: a rank
// supervisor (RunSupervisor) that spawns one OS process per rank, watches
// them over a JSON-lines control channel, executes seeded fault schedules
// against them (SIGKILL, SIGSTOP stalls, timed partitions), and drives the
// cluster through repair incarnations — spare admission, shrink to p−1, or
// checkpoint restart — with every incarnation fenced by a fresh epoch and
// a fresh TCP mesh. The worker side (RunWorker) is a thin loop around
// pipeline.RunRank: it holds the harvested repair snapshot between
// incarnations and reports outcomes back.
//
// The control protocol is deliberately boring: newline-delimited JSON over
// one TCP connection per worker. The supervisor never carries training
// state — snapshots live in the worker processes (survivors keep theirs,
// spares are seeded over the data mesh by rank 0) or on disk (checkpoint
// restart) — so control messages stay small regardless of model size.
package launch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"weipipe/internal/comm"
)

// envWorker marks a spawned process as a launch worker; the re-exec'ed
// binary (weipipe-launch or a test binary's TestMain) checks it before
// flag parsing and calls RunWorker instead of its normal main.
const (
	envWorker  = "WEIPIPE_LAUNCH_WORKER"
	envSupAddr = "WEIPIPE_LAUNCH_SUP"
	envWorkID  = "WEIPIPE_LAUNCH_ID"
)

// TrainSpec is the full training configuration a worker needs — identical
// across every incarnation of one run, so the supervisor resends it with
// each assignment and workers stay stateless between runs.
type TrainSpec struct {
	Vocab, Hidden, Layers, Heads, MaxSeq int
	ModelSeed                            uint64
	LR, Eps                              float64
	// Iters is the total training length; MicroBatches per iteration (must
	// divide every world size the run can shrink to), each of
	// MicroBatchSize sequences, drawn from BatchSeed+iter.
	Iters, MicroBatches, MicroBatchSize int
	BatchSeed                           uint64
	// CheckpointEvery/CheckpointPath enable the disk fallback; rank 0
	// writes, every worker can read (same machine).
	CheckpointEvery int
	CheckpointPath  string
	// Deadlines is the single timeout budget threaded through transport,
	// detector and protocol layers on every rank.
	Deadlines comm.Deadlines
	// Chaos, when set, injects frame-level faults under the reliability
	// layer on every rank — the soak harness's knob.
	Chaos *comm.ChaosConfig
}

// Msg is the single wire envelope; Type selects which fields matter.
type Msg struct {
	Type string `json:"type"`

	// hello (worker → supervisor)
	ID  int `json:"id,omitempty"`
	PID int `json:"pid,omitempty"`

	// progress (worker → supervisor): one per completed iteration, plus
	// barrier beacons (State nonempty) during long off-wire phases so the
	// supervisor's stall view can exempt barrier-parked workers.
	Epoch uint32 `json:"epoch,omitempty"`
	Iter  int    `json:"iter,omitempty"`
	State string `json:"state,omitempty"`

	// result (worker → supervisor)
	Done     bool      `json:"done,omitempty"`
	Aborted  bool      `json:"aborted,omitempty"`
	Reason   string    `json:"reason,omitempty"`
	Cut      int       `json:"cut,omitempty"`
	Dead     []int     `json:"dead,omitempty"`
	SnapHash string    `json:"snapHash,omitempty"`
	WHash    string    `json:"wHash,omitempty"`
	Losses   []float64 `json:"losses,omitempty"`

	// assign (supervisor → worker)
	Rank      int        `json:"rank,omitempty"`
	World     int        `json:"world,omitempty"`
	Addrs     []string   `json:"addrs,omitempty"`
	StartIter int        `json:"startIter,omitempty"`
	SeedFrom  *int       `json:"seedFrom,omitempty"`
	SeedTo    []int      `json:"seedTo,omitempty"`
	FromCkpt  bool       `json:"fromCkpt,omitempty"`
	Spec      *TrainSpec `json:"spec,omitempty"`

	// partition (supervisor → worker): blackhole the worker's live links
	// toward Peers for Dur — nothing leaves those links, modelling a
	// one-sided network partition.
	Peers []int         `json:"peers,omitempty"`
	Dur   time.Duration `json:"dur,omitempty"`

	// exit (supervisor → worker) carries nothing extra.
}

// codec wraps one control connection with line-framed JSON and a write
// lock (the worker writes progress from the training goroutine and
// results from its main loop).
type codec struct {
	conn net.Conn
	rd   *bufio.Reader
	wmu  sync.Mutex
}

func newCodec(conn net.Conn) *codec {
	return &codec{conn: conn, rd: bufio.NewReader(conn)}
}

func (c *codec) send(m Msg) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err = c.conn.Write(append(raw, '\n'))
	return err
}

func (c *codec) recv() (Msg, error) {
	line, err := c.rd.ReadBytes('\n')
	if err != nil {
		return Msg{}, err
	}
	var m Msg
	if err := json.Unmarshal(line, &m); err != nil {
		return Msg{}, fmt.Errorf("launch: malformed control message %q: %w", line, err)
	}
	return m, nil
}

func (c *codec) close() { c.conn.Close() }
