package launch

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"weipipe/internal/comm"
	"weipipe/internal/pipeline"
)

// TestMain doubles as the worker entry point: the supervisor under test
// re-execs this very test binary, and the environment marker diverts the
// child into RunWorker before the testing framework starts.
func TestMain(m *testing.M) {
	if IsWorker() {
		os.Exit(WorkerMain())
	}
	os.Exit(m.Run())
}

// testSpec mirrors the in-process equivalence fixtures (eqCfg/eqOpts/
// eqBatches in the pipeline package) so oracle trajectories line up with
// the rest of the test suite's expectations.
func testSpec(dir string, iters int) TrainSpec {
	return TrainSpec{
		Vocab: 13, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 6,
		ModelSeed: 42, LR: 0.01, Eps: 1e-5,
		Iters: iters, MicroBatches: 12, MicroBatchSize: 2, BatchSeed: 100,
		CheckpointEvery: 1,
		CheckpointPath:  filepath.Join(dir, "ckpt.bin"),
		Deadlines: comm.Deadlines{
			Dial:       10 * time.Second,
			Heartbeat:  25 * time.Millisecond,
			PeerDead:   1500 * time.Millisecond,
			Retransmit: 50 * time.Millisecond,
			AgreeRound: 3 * time.Second,
			Barrier:    8 * time.Second,
		},
	}
}

// runSupervised runs one supervised cluster and checks it bit-identically
// against the fault-free in-process replay of the history it took.
func runSupervised(t *testing.T, o Options) *Report {
	t.Helper()
	var trace bytes.Buffer
	if o.Log == nil {
		o.Log = &trace
	}
	rep, err := RunSupervisor(o)
	if err != nil {
		t.Fatalf("supervisor: %v\ntrace:\n%s", err, trace.String())
	}
	verifyOracle(t, o.Spec, rep)
	return rep
}

// verifyOracle replays rep.History in-process and requires bit-identical
// final weights and identical final-segment losses.
func verifyOracle(t *testing.T, spec TrainSpec, rep *Report) {
	t.Helper()
	losses, weights, err := ReplayOracle(spec, rep.History)
	if err != nil {
		t.Fatalf("oracle: %v (history %+v)", err, rep.History)
	}
	wantHash := fmt.Sprintf("%016x", pipeline.HashWeights(weights))
	if rep.WeightsHash != wantHash {
		t.Fatalf("weights diverged: cluster %s vs oracle %s (history %+v)",
			rep.WeightsHash, wantHash, rep.History)
	}
	lastStart := rep.History[len(rep.History)-1].StartIter
	if len(rep.Losses) != len(losses) {
		t.Fatalf("loss vector length %d vs oracle %d", len(rep.Losses), len(losses))
	}
	for it := lastStart; it < len(losses); it++ {
		if rep.Losses[it] != losses[it] {
			t.Fatalf("loss diverged at iter %d: cluster %v vs oracle %v", it, rep.Losses[it], losses[it])
		}
	}
}

// checkNoLeaks verifies the supervisor tore down every goroutine and file
// descriptor it created.
func checkNoLeaks(t *testing.T, baseGoroutines, baseFDs int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseGoroutines+2 && countFDs(t) <= baseFDs+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: %d goroutines (base %d), %d fds (base %d)",
				runtime.NumGoroutine(), baseGoroutines, countFDs(t), baseFDs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func countFDs(t *testing.T) int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatalf("read fd table: %v", err)
	}
	return len(ents)
}

func TestCrossProcessPlain(t *testing.T) {
	rep := runSupervised(t, Options{
		Ranks: 3,
		Spec:  testSpec(t.TempDir(), 4),
	})
	if len(rep.History) != 1 || rep.History[0].Policy != "initial" || rep.History[0].World != 3 {
		t.Fatalf("unexpected history %+v", rep.History)
	}
}

func TestCrossProcessSIGKILLShrinkRecovery(t *testing.T) {
	rep := runSupervised(t, Options{
		Ranks: 4,
		Spec:  testSpec(t.TempDir(), 6),
		Schedule: []FaultEvent{
			{AtIter: 2, Action: "kill", Target: 1},
		},
	})
	if len(rep.History) != 2 {
		t.Fatalf("expected 2 incarnations, got %+v", rep.History)
	}
	ev := rep.History[1]
	if ev.Policy != "shrink" || ev.World != 3 || len(ev.Dead) != 1 || ev.Dead[0] != 1 {
		t.Fatalf("expected shrink to 3 around dead rank 1, got %+v", ev)
	}
	if ev.StartIter < 2 || ev.StartIter >= 6 {
		t.Fatalf("implausible harvest cut %d", ev.StartIter)
	}
}

func TestCrossProcessSIGKILLSpareRecovery(t *testing.T) {
	rep := runSupervised(t, Options{
		Ranks:  4,
		Spares: 1,
		Spec:   testSpec(t.TempDir(), 6),
		Schedule: []FaultEvent{
			{AtIter: 2, Action: "kill", Target: 1},
		},
	})
	if len(rep.History) != 2 {
		t.Fatalf("expected 2 incarnations, got %+v", rep.History)
	}
	ev := rep.History[1]
	if ev.Policy != "spare" || ev.World != 4 {
		t.Fatalf("expected spare re-admission keeping world 4, got %+v", ev)
	}
}

// TestCrossProcessPartitionMembershipFence partitions one rank away from
// every peer for longer than the death budget. The majority must converge
// on burying it; the victim — whose own detector sees everyone else dead —
// must abort without quorum to standby, from where the supervisor re-seeds
// it as a spare into the next epoch (world stays 4: the healed zombie
// re-admission path). Bit-identity with the oracle proves no frame from
// the fenced segment leaked into the survivors' new epoch, and the
// serialized progress stream proves the two epochs never progressed
// concurrently.
func TestCrossProcessPartitionMembershipFence(t *testing.T) {
	const victim = 2
	var mu sync.Mutex
	type step struct {
		id    int
		epoch uint32
	}
	var steps []step
	rep := runSupervised(t, Options{
		Ranks: 4,
		Spec:  testSpec(t.TempDir(), 6),
		Schedule: []FaultEvent{
			{AtIter: 2, Action: "partition", Target: victim,
				Dur: 3 * time.Second, Peers: []int{0, 1, 3}},
		},
		OnProgress: func(id int, m Msg) {
			if m.State != "" {
				return // barrier beacons are liveness, not progress
			}
			mu.Lock()
			steps = append(steps, step{id: id, epoch: m.Epoch})
			mu.Unlock()
		},
	})
	if len(rep.History) != 2 {
		t.Fatalf("expected 2 incarnations, got %+v", rep.History)
	}
	ev := rep.History[1]
	if len(ev.Dead) != 1 || ev.Dead[0] != victim {
		t.Fatalf("expected majority to bury partitioned rank %d, got %+v", victim, ev)
	}
	if ev.Policy != "spare" || ev.World != 4 {
		t.Fatalf("expected the aborted victim re-seeded as a spare (world 4), got %+v", ev)
	}
	// Split-brain check over the supervisor-serialized progress stream:
	// once any worker completes an iteration in the new epoch, no worker
	// may complete one in the fenced-off old epoch.
	mu.Lock()
	defer mu.Unlock()
	sawNew := false
	for _, s := range steps {
		if s.epoch == ev.Epoch {
			sawNew = true
		} else if sawNew {
			t.Fatalf("worker %d progressed in stale epoch %d after epoch %d began: split brain",
				s.id, s.epoch, ev.Epoch)
		}
	}
	if !sawNew {
		t.Fatal("no progress observed in the repaired epoch")
	}
}

// TestSoakChaosSchedules is the seeded chaos soak: WEIPIPE_SOAK=N replays
// N deterministic randomized fault schedules — process kills, stalls,
// timed partitions, plus frame-level chaos under the reliability layer —
// each verified bit-identical to its fault-free oracle and leak-free.
// WEIPIPE_SOAK_OUT, when set, receives one JSONL trace per schedule (the
// CI artifact uploaded on failure).
func TestSoakChaosSchedules(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("WEIPIPE_SOAK"))
	if n <= 0 {
		t.Skip("set WEIPIPE_SOAK=<n> to run the chaos soak")
	}
	outDir := os.Getenv("WEIPIPE_SOAK_OUT")
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	baseG, baseFD := runtime.NumGoroutine(), countFDs(t)
	for i := 0; i < n; i++ {
		seed := uint64(0xdecaf + 7919*i)
		t.Run(fmt.Sprintf("seed_%#x", seed), func(t *testing.T) {
			spec := testSpec(t.TempDir(), 8)
			spec.Chaos = &comm.ChaosConfig{
				Seed: seed, Drop: 0.01, Dup: 0.01, Reorder: 0.01, Corrupt: 0.005,
			}
			var trace bytes.Buffer
			o := Options{
				Ranks:    4,
				Spares:   1,
				Spec:     spec,
				Schedule: GenSchedule(seed, 4, 8, 3),
				Log:      &trace,
			}
			rep, err := RunSupervisor(o)
			if outDir != "" {
				path := filepath.Join(outDir, fmt.Sprintf("schedule-%#x.jsonl", seed))
				if werr := os.WriteFile(path, trace.Bytes(), 0o644); werr != nil {
					t.Errorf("write trace: %v", werr)
				}
			}
			if err != nil {
				t.Fatalf("schedule %#x: %v\ntrace:\n%s", seed, err, trace.String())
			}
			verifyOracle(t, spec, rep)
		})
	}
	checkNoLeaks(t, baseG, baseFD)
}
