package launch

import "time"

// splitmix64 is the seeded PRNG behind GenSchedule — deterministic and
// dependency-free, so the same seed always yields the same fault schedule
// on every platform (the soak harness's reproducibility contract).
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int { return int(r.next() % uint64(n)) }

// GenSchedule derives a randomized fault schedule from seed: up to events
// faults mixing SIGKILLs, survivable stalls, lethal stalls (long enough
// that the detector buries the rank), and timed one-sided partitions.
//
// The schedule is constrained so a run with `ranks` initial ranks and the
// supervisor's repair policies can always finish: at most ranks-2 faults
// are lethal (kill or long stall), so even with zero spares the world can
// shrink past every casualty and still hold ≥2 ranks. Partition durations
// exceed the peer-death budget, so the victim's peers bury it — lethal for
// the victim's membership but recoverable, and the fault the epoch-fencing
// guarantee ("never two progressing segments") is proven against.
func GenSchedule(seed uint64, ranks, iters, events int) []FaultEvent {
	r := &splitmix64{s: seed}
	lethalBudget := ranks - 2
	var out []FaultEvent
	for i := 0; i < events; i++ {
		// Fire in the first two-thirds of the run so repair has room to
		// finish. Iterations 0–1 stay clean: every rank dials in and (with
		// CheckpointEvery=1) at least one coordinated checkpoint lands on
		// disk before any fault, so the restart fallback always has a file.
		at := 2 + r.intn(max(1, 2*iters/3))
		target := r.intn(ranks)
		switch r.intn(4) {
		case 0: // SIGKILL mid-iteration
			if lethalBudget <= 0 {
				continue
			}
			lethalBudget--
			out = append(out, FaultEvent{AtIter: at, Action: "kill", Target: target})
		case 1: // survivable stall: shorter than the death budget
			out = append(out, FaultEvent{AtIter: at, Action: "stall", Target: target,
				Dur: time.Duration(50+r.intn(200)) * time.Millisecond})
		case 2: // lethal stall: the detector buries the rank before SIGCONT
			if lethalBudget <= 0 {
				continue
			}
			lethalBudget--
			out = append(out, FaultEvent{AtIter: at, Action: "stall", Target: target,
				Dur: 4 * time.Second})
		default: // one-sided partition toward every peer
			if lethalBudget <= 0 {
				continue
			}
			lethalBudget--
			var peers []int
			for p := 0; p < ranks; p++ {
				if p != target {
					peers = append(peers, p)
				}
			}
			out = append(out, FaultEvent{AtIter: at, Action: "partition", Target: target,
				Dur: 3 * time.Second, Peers: peers})
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
