package launch

import (
	"fmt"

	"weipipe/internal/checkpoint"
	"weipipe/internal/comm"
	"weipipe/internal/pipeline"
)

// ReplayOracle reproduces, entirely in-process and fault-free, the exact
// training trajectory a supervised run took through its incarnations, and
// returns the per-iteration losses plus the final assembled weights.
//
// The trajectory of a segment is fully determined by (world size, start
// iteration, starting snapshot): data is a pure function of the global
// iteration number, and WZB2 arithmetic depends only on the world size.
// So the oracle walks the epoch history, trains each segment at its world
// size, and carries a snapshot across the boundary exactly where the real
// run harvested (or checkpoint-loaded) one. Bit-identity between this
// replay and the cross-process run is the soak harness's correctness
// criterion: any frame loss, re-admission bug, or partition leak shows up
// as a diverging weight hash.
func ReplayOracle(spec TrainSpec, history []EpochEvent) ([]float64, []float32, error) {
	if len(history) == 0 {
		return nil, nil, fmt.Errorf("launch: empty history")
	}
	losses := make([]float64, spec.Iters)
	var snap *checkpoint.Snapshot
	batches := spec.batches()
	opts := spec.options()
	opts.Buddy = true // RunRank forces buddy replication on; mirror it

	for i, ev := range history {
		// The segment ends where the next incarnation starts — not at
		// spec.Iters — because a failure may roll back past iterations the
		// previous segment already ran (checkpoint restart) or cut them at
		// the harvest point.
		end := spec.Iters
		if i+1 < len(history) {
			end = history[i+1].StartIter
		}
		if end < ev.StartIter {
			return nil, nil, fmt.Errorf("launch: epoch %d rolls back from %d to %d across the boundary",
				ev.Epoch, ev.StartIter, end)
		}

		cluster := comm.NewCluster(ev.World)
		trainers := make([]pipeline.Trainer, ev.World)
		for r := 0; r < ev.World; r++ {
			tr, err := pipeline.New(pipeline.StrategyWZB2, cluster.Transport(r), spec.config(), opts)
			if err != nil {
				cluster.Close()
				return nil, nil, err
			}
			trainers[r] = tr
		}
		if snap != nil {
			if err := pipeline.RestoreSnapshot(snap, trainers); err != nil {
				cluster.Close()
				return nil, nil, err
			}
		}

		for it := ev.StartIter; it < end; it++ {
			mb := batches(it)
			perRank := make([]float64, ev.World)
			errs := make([]error, ev.World)
			done := make(chan int, ev.World)
			for r := 0; r < ev.World; r++ {
				go func(r int) {
					perRank[r], errs[r] = trainers[r].TrainIteration(mb)
					done <- r
				}(r)
			}
			for r := 0; r < ev.World; r++ {
				<-done
			}
			for r := 0; r < ev.World; r++ {
				if errs[r] != nil {
					cluster.Close()
					return nil, nil, fmt.Errorf("launch: oracle epoch %d iter %d rank %d: %w", ev.Epoch, it, r, errs[r])
				}
			}
			losses[it] = perRank[0]
		}

		if i+1 == len(history) {
			w := pipeline.AssembleWeights(trainers)
			cluster.Close()
			return losses, w, nil
		}
		captured, err := pipeline.CaptureSnapshot(trainers, end)
		cluster.Close()
		if err != nil {
			return nil, nil, err
		}
		snap = captured
	}
	return nil, nil, fmt.Errorf("launch: unreachable")
}
