package launch

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"syscall"
	"time"

	"weipipe/internal/checkpoint"
	"weipipe/internal/comm"
)

// Options configures RunSupervisor.
type Options struct {
	// Ranks is the initial world size; Spares is how many extra standby
	// worker processes to spawn (admitted after failures to keep the world
	// size, then re-filled by fenced-out zombies that retire to standby).
	Ranks, Spares int
	// Spec is the training configuration handed to every worker.
	Spec TrainSpec
	// Schedule is the fault schedule to execute (see GenSchedule).
	Schedule []FaultEvent
	// WorkerArgv is the command re-exec'ed for each worker process
	// (default: this binary — os.Executable). The worker entry is selected
	// via environment, not argv, so any argv works as long as the target
	// binary checks IsWorker before its normal main.
	WorkerArgv []string
	// Log, when set, receives one JSON line per supervisor event — the
	// per-schedule trace artifact the soak harness uploads on failure.
	Log io.Writer
	// OnProgress, when set, observes every progress message (test hook).
	OnProgress func(workerID int, m Msg)
	// EpochTimeout bounds how long the supervisor waits for one incarnation
	// to resolve (default 120s).
	EpochTimeout time.Duration
}

// FaultEvent is one scheduled fault, fired when its target rank reports
// reaching AtIter.
type FaultEvent struct {
	// AtIter is the global iteration count that triggers the event.
	AtIter int
	// Action is "kill" (SIGKILL), "stall" (SIGSTOP for Dur, then SIGCONT),
	// or "partition" (blackhole the target's links toward Peers for Dur).
	Action string
	// Target is the victim rank in the incarnation current at fire time.
	Target int
	Dur    time.Duration
	Peers  []int
}

// EpochEvent records one incarnation for the replay oracle: the world
// size and start iteration fully determine the training trajectory of the
// segment, so the oracle can reproduce the whole run in-process.
type EpochEvent struct {
	Epoch     uint32 `json:"epoch"`
	World     int    `json:"world"`
	StartIter int    `json:"startIter"`
	// Policy is how this incarnation came to be: "initial", "spare",
	// "shrink", or "checkpoint".
	Policy string `json:"policy"`
	// Dead lists the previous incarnation's ranks whose loss caused this
	// one (empty for "initial").
	Dead []int `json:"dead,omitempty"`
}

// Report is the supervisor's account of a completed run.
type Report struct {
	History []EpochEvent
	// Losses is the final incarnation's loss vector (entries before its
	// start iteration are zero); WeightsHash fingerprints the final
	// weights, agreed bit-identically by every rank of that incarnation.
	Losses      []float64
	WeightsHash string
}

// proc is the supervisor's book-keeping for one worker process.
type proc struct {
	id    int
	cmd   *exec.Cmd
	c     *codec
	alive bool
	rank  int    // rank in the current incarnation; -1 = standby
	epoch uint32 // epoch of the last assignment sent
	// busy means an assignment is outstanding: the worker has not yet sent
	// its result for p.epoch. A fenced-out zombie stays busy until its
	// (stale) abort result arrives, which keeps it out of the standby pool
	// — admitting a worker that is still tearing down its old incarnation
	// would race its dial against the new mesh.
	busy bool
	// terminal state within the current incarnation
	res  *Msg
	died bool
}

type supEvent struct {
	id   int
	msg  Msg
	c    *codec // set on hello
	err  error  // control-channel read error (worker gone)
	died bool   // process exited
}

// RunSupervisor spawns Ranks+Spares worker processes, drives them through
// training incarnations under the fault schedule, and returns the final
// report. The run succeeds when every rank of some incarnation completes
// all iterations; it fails when no repair policy can continue.
func RunSupervisor(o Options) (*Report, error) {
	if o.Ranks < 2 {
		return nil, fmt.Errorf("launch: need at least 2 ranks, got %d", o.Ranks)
	}
	if o.EpochTimeout <= 0 {
		o.EpochTimeout = 120 * time.Second
	}
	argv := o.WorkerArgv
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		argv = []string{exe}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &supervisor{
		o:      o,
		events: make(chan supEvent, 1024),
		procs:  make(map[int]*proc),
	}
	defer s.teardown(ln)

	// Accept loop: each worker dials in, identifies itself with a hello,
	// then its connection feeds the event channel.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.handleConn(conn)
		}
	}()

	total := o.Ranks + o.Spares
	for i := 0; i < total; i++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envSupAddr+"="+ln.Addr().String(),
			envWorkID+"="+strconv.Itoa(i),
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("launch: spawn worker %d: %w", i, err)
		}
		p := &proc{id: i, cmd: cmd, alive: true, rank: -1}
		s.procs[i] = p
		go func(id int) {
			cmd.Wait()
			s.events <- supEvent{id: id, died: true}
		}(i)
	}
	s.log(Msg{Type: "spawned", ID: total})

	if err := s.waitHellos(total); err != nil {
		return nil, err
	}
	return s.run()
}

type supervisor struct {
	o      Options
	events chan supEvent
	procs  map[int]*proc
	hist   []EpochEvent
	fired  []bool
}

func (s *supervisor) log(m Msg) {
	if s.o.Log != nil {
		raw, _ := json.Marshal(m)
		s.o.Log.Write(append(raw, '\n'))
	}
}

func (s *supervisor) handleConn(conn net.Conn) {
	c := newCodec(conn)
	m, err := c.recv()
	if err != nil || m.Type != "hello" {
		c.close()
		return
	}
	id := m.ID
	s.events <- supEvent{id: id, msg: m, c: c}
	for {
		m, err := c.recv()
		if err != nil {
			s.events <- supEvent{id: id, err: err}
			return
		}
		s.events <- supEvent{id: id, msg: m}
	}
}

func (s *supervisor) waitHellos(total int) error {
	deadline := time.After(30 * time.Second)
	helloed := 0
	for helloed < total {
		select {
		case ev := <-s.events:
			if ev.c != nil {
				if p := s.procs[ev.id]; p != nil && p.c == nil {
					p.c = ev.c
					helloed++
				}
			} else if ev.died {
				return fmt.Errorf("launch: worker %d died before hello", ev.id)
			}
		case <-deadline:
			return fmt.Errorf("launch: %d/%d workers checked in before timeout", helloed, total)
		}
	}
	s.log(Msg{Type: "hellos", ID: total})
	return nil
}

// teardown dismisses every worker: a polite exit first, SIGKILL for
// whoever lingers, then wait until all process-exit events arrive so no
// goroutine or child outlives the call.
func (s *supervisor) teardown(ln net.Listener) {
	ln.Close()
	for _, p := range s.procs {
		if p.alive && p.c != nil {
			p.c.send(Msg{Type: "exit"})
		}
	}
	grace := time.After(3 * time.Second)
	for {
		remaining := 0
		for _, p := range s.procs {
			if p.alive {
				remaining++
			}
		}
		if remaining == 0 {
			break
		}
		select {
		case ev := <-s.events:
			if ev.died {
				if p := s.procs[ev.id]; p != nil {
					p.alive = false
				}
			}
		case <-grace:
			for _, p := range s.procs {
				if p.alive {
					p.cmd.Process.Kill()
					// SIGCONT after SIGKILL is harmless and frees a worker
					// that was SIGSTOPped by a stall event.
					p.cmd.Process.Signal(syscall.SIGCONT)
				}
			}
			grace = time.After(3 * time.Second)
		}
	}
	for _, p := range s.procs {
		if p.c != nil {
			p.c.close()
		}
	}
}

// run drives incarnations until one completes or no policy can continue.
func (s *supervisor) run() (*Report, error) {
	s.fired = make([]bool, len(s.o.Schedule))
	epoch := uint32(1)
	world := s.o.Ranks
	startIter := 0
	policy := "initial"
	var dead []int // previous incarnation's dead ranks
	var seedTo []int

	// Initial assignment: workers 0..Ranks-1 in order; the rest standby.
	ids := make([]int, 0, len(s.procs))
	for id := range s.procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	active := ids[:world]

	for {
		addrs, err := comm.LoopbackAddrs(world)
		if err != nil {
			return nil, err
		}
		s.hist = append(s.hist, EpochEvent{
			Epoch: epoch, World: world, StartIter: startIter, Policy: policy, Dead: dead,
		})
		s.log(Msg{Type: "epoch", Epoch: epoch, World: world, Iter: startIter, State: policy, Dead: dead})

		for rank, id := range active {
			p := s.procs[id]
			p.rank, p.res, p.died = rank, nil, false
			p.epoch, p.busy = epoch, true
			assign := Msg{
				Type: "assign", Epoch: epoch, Rank: rank, World: world,
				Addrs: addrs, StartIter: startIter, FromCkpt: policy == "checkpoint",
				Spec: &s.o.Spec,
			}
			if len(seedTo) > 0 {
				zero := 0
				assign.SeedFrom = &zero
				assign.SeedTo = seedTo
			}
			if err := p.c.send(assign); err != nil {
				return nil, fmt.Errorf("launch: assign rank %d to worker %d: %w", rank, id, err)
			}
		}

		if err := s.collect(active, epoch); err != nil {
			return nil, err
		}

		if rep, done := s.completed(active); done {
			return rep, nil
		}

		next, err := s.plan(active, world)
		if err != nil {
			return nil, err
		}
		epoch++
		world = next.world
		startIter = next.startIter
		policy = next.policy
		dead = next.dead
		seedTo = next.seedTo
		active = next.active
	}
}

// collect waits until every active rank reached a terminal state for this
// epoch (result message or process death), firing fault-schedule events
// as progress reports come in.
func (s *supervisor) collect(active []int, epoch uint32) error {
	deadline := time.After(s.o.EpochTimeout)
	for {
		resolved := 0
		for _, id := range active {
			p := s.procs[id]
			if p.res != nil || p.died {
				resolved++
			}
		}
		if resolved == len(active) {
			return nil
		}
		select {
		case ev := <-s.events:
			s.handleEvent(ev, active, epoch)
		case <-deadline:
			return fmt.Errorf("launch: epoch %d unresolved after %v", epoch, s.o.EpochTimeout)
		}
	}
}

func (s *supervisor) handleEvent(ev supEvent, active []int, epoch uint32) {
	p := s.procs[ev.id]
	if p == nil {
		return
	}
	switch {
	case ev.died:
		p.alive = false
		p.died = true
		p.busy = false
		s.log(Msg{Type: "died", ID: ev.id})
	case ev.err != nil:
		// Control channel gone; the process-exit event follows.
	case ev.msg.Type == "progress":
		s.log(Msg{Type: "progress", ID: ev.id, Epoch: ev.msg.Epoch, Iter: ev.msg.Iter, State: ev.msg.State})
		if s.o.OnProgress != nil {
			s.o.OnProgress(ev.id, ev.msg)
		}
		// Stale-epoch progress (a zombie that woke up mid-repair) never
		// triggers faults: the rank numbering it reports is from a fenced
		// incarnation.
		if ev.msg.Epoch == epoch && ev.msg.State == "" {
			s.fire(p, ev.msg.Iter)
		}
	case ev.msg.Type == "result":
		s.log(Msg{Type: "result", ID: ev.id, Epoch: ev.msg.Epoch, Done: ev.msg.Done,
			Aborted: ev.msg.Aborted, Reason: ev.msg.Reason, Cut: ev.msg.Cut,
			Dead: ev.msg.Dead, SnapHash: ev.msg.SnapHash, WHash: ev.msg.WHash})
		if ev.msg.Epoch == p.epoch {
			p.busy = false
			if p.rank >= 0 {
				m := ev.msg
				p.res = &m
			}
		}
		// A result for an epoch older than the last assignment would mean
		// the control channel reordered — impossible on one TCP stream.
	}
}

// fire executes schedule events targeting rank p.rank at iteration iter.
func (s *supervisor) fire(p *proc, iter int) {
	for i, ev := range s.o.Schedule {
		if s.fired[i] || ev.Target != p.rank || iter < ev.AtIter {
			continue
		}
		s.fired[i] = true
		s.log(Msg{Type: "fault", State: ev.Action, Rank: ev.Target, Iter: iter, ID: p.id})
		switch ev.Action {
		case "kill":
			p.cmd.Process.Kill()
		case "stall":
			p.cmd.Process.Signal(syscall.SIGSTOP)
			pr := p.cmd.Process
			time.AfterFunc(ev.Dur, func() { pr.Signal(syscall.SIGCONT) })
		case "partition":
			p.c.send(Msg{Type: "partition", Peers: ev.Peers, Dur: ev.Dur})
		}
	}
}

// completed returns the success report if every active rank finished all
// iterations, cross-checking that they agreed on the final weights.
func (s *supervisor) completed(active []int) (*Report, bool) {
	var rep *Report
	for _, id := range active {
		p := s.procs[id]
		if p.res == nil || !p.res.Done {
			return nil, false
		}
		if rep == nil {
			rep = &Report{History: s.hist, WeightsHash: p.res.WHash}
		}
		if p.res.WHash != rep.WeightsHash {
			// Divergent final weights are a protocol bug, not a policy
			// decision; surface loudly via an impossible hash.
			rep.WeightsHash = "DIVERGED:" + p.res.WHash
		}
		if p.rank == 0 {
			rep.Losses = p.res.Losses
		}
	}
	return rep, rep != nil
}

// nextEpoch is plan's decision for the following incarnation.
type nextEpoch struct {
	world, startIter int
	policy           string
	dead             []int
	seedTo           []int
	active           []int
}

// plan decides how the run continues after a failed incarnation: spare
// admission while standbys last, else shrink, else checkpoint restart.
func (s *supervisor) plan(active []int, world int) (*nextEpoch, error) {
	// Survivors: ranks that harvested a repair snapshot. Cross-check that
	// they agreed on the dead set, the cut, and the snapshot bits.
	type sv struct {
		id, rank int
	}
	var survivors []sv
	var cut int
	var deadSet []int
	var snapHash string
	for _, id := range active {
		p := s.procs[id]
		if p.res == nil || p.res.SnapHash == "" {
			continue
		}
		if len(survivors) == 0 {
			cut, deadSet, snapHash = p.res.Cut, p.res.Dead, p.res.SnapHash
		} else if p.res.Cut != cut || p.res.SnapHash != snapHash || !equalInts(p.res.Dead, deadSet) {
			return nil, fmt.Errorf("launch: survivors diverged: worker %d cut=%d hash=%s dead=%v vs cut=%d hash=%s dead=%v",
				id, p.res.Cut, p.res.SnapHash, p.res.Dead, cut, snapHash, deadSet)
		}
		survivors = append(survivors, sv{id: id, rank: p.rank})
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].rank < survivors[j].rank })

	// Everyone not surviving returns to the pool (if alive) or is buried.
	// A rank the survivors agreed dead but whose process still runs (a
	// partitioned zombie) gets no new assignment; when its fenced epoch
	// aborts it will retire to standby via the late-result path.
	for _, id := range active {
		p := s.procs[id]
		issurv := false
		for _, v := range survivors {
			if v.id == id {
				issurv = true
			}
		}
		if !issurv {
			p.rank = -1
		}
	}

	standbys := s.standbys()
	if len(survivors) >= 2 {
		admit := len(deadSet)
		if admit > len(standbys) {
			admit = len(standbys)
		}
		// Prefer keeping the world size; peel admissions off until the
		// shrunken-world constraints hold.
		for ; admit >= 0; admit-- {
			nw := len(survivors) + admit
			if nw < 2 || nw > s.o.Spec.Layers+2 || s.o.Spec.MicroBatches%nw != 0 {
				continue
			}
			next := &nextEpoch{world: nw, startIter: cut, dead: deadSet}
			for _, v := range survivors {
				next.active = append(next.active, v.id)
			}
			if admit > 0 {
				next.policy = "spare"
				for i := 0; i < admit; i++ {
					next.seedTo = append(next.seedTo, len(survivors)+i)
					next.active = append(next.active, standbys[i])
				}
			} else {
				next.policy = "shrink"
			}
			return next, nil
		}
	}

	// Checkpoint restart: every usable worker re-reads the last coordinated
	// checkpoint from disk.
	if s.o.Spec.CheckpointPath == "" {
		return nil, fmt.Errorf("launch: no repair possible (survivors=%d, standbys=%d) and no checkpoint configured",
			len(survivors), len(standbys))
	}
	snap, err := checkpoint.Load(s.o.Spec.CheckpointPath)
	if err != nil {
		return nil, fmt.Errorf("launch: checkpoint restart: %w", err)
	}
	pool := append([]int(nil), standbys...)
	for _, v := range survivors {
		pool = append(pool, v.id)
	}
	sort.Ints(pool)
	for nw := min(s.o.Ranks, len(pool)); nw >= 2; nw-- {
		if nw > s.o.Spec.Layers+2 || s.o.Spec.MicroBatches%nw != 0 {
			continue
		}
		return &nextEpoch{
			world: nw, startIter: int(snap.Step), policy: "checkpoint",
			dead: deadSet, active: pool[:nw],
		}, nil
	}
	return nil, fmt.Errorf("launch: %d usable workers cannot form a valid world", len(pool))
}

// standbys lists alive, unassigned, idle workers in id order. A fenced-out
// zombie that has not yet reported its stale abort is still busy and not
// eligible; once its result drains it becomes re-admissible as a spare.
func (s *supervisor) standbys() []int {
	var out []int
	for id, p := range s.procs {
		if p.alive && p.rank == -1 && !p.busy {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
