package generate

import (
	"fmt"
	"math"

	"weipipe/internal/model"
	"weipipe/internal/nn"
	"weipipe/internal/tensor"
)

// Decoder is an incremental (KV-cached) autoregressive decoder: each Step
// runs one token through the model, appending its keys and values to
// per-layer caches instead of re-forwarding the whole context — O(t) work
// per token instead of O(t²). Verified against the full re-forward path.
type Decoder struct {
	m    *model.Model
	rope *nn.RopeTable
	// per layer: cached keys/values, [t, H] grown by one row per step
	kCache []*tensor.Tensor
	vCache []*tensor.Tensor
	pos    int
}

// NewDecoder builds a decoder for a trained model.
func NewDecoder(m *model.Model) *Decoder {
	return &Decoder{
		m:      m,
		rope:   nn.NewRopeTable(m.Cfg.MaxSeq, m.Cfg.Hidden/m.Cfg.Heads),
		kCache: make([]*tensor.Tensor, m.Cfg.Layers),
		vCache: make([]*tensor.Tensor, m.Cfg.Layers),
	}
}

// Pos returns the number of tokens consumed so far.
func (d *Decoder) Pos() int { return d.pos }

// Reset clears the caches so the decoder can start a new sequence.
func (d *Decoder) Reset() {
	for i := range d.kCache {
		d.kCache[i] = nil
		d.vCache[i] = nil
	}
	d.pos = 0
}

// Step consumes one token and returns the next-token logits.
func (d *Decoder) Step(token int) ([]float32, error) {
	cfg := d.m.Cfg
	if token < 0 || token >= cfg.Vocab {
		return nil, fmt.Errorf("generate: token %d out of vocab", token)
	}
	if d.pos >= cfg.MaxSeq {
		return nil, fmt.Errorf("generate: decoder exceeded MaxSeq %d (Reset or window externally)", cfg.MaxSeq)
	}
	h := cfg.Hidden
	heads := cfg.Heads
	hd := h / heads

	// embed one token
	x := tensor.New(1, h)
	copy(x.Data, d.m.Embed.W.Data[token*h:(token+1)*h])

	for li, blk := range d.m.Blocks {
		// attention branch
		x1 := rmsNormRow(x, blk.Norm1.Gain)
		q := tensor.New(1, h)
		k := tensor.New(1, h)
		v := tensor.New(1, h)
		tensor.MatMul(q, x1, blk.Attn.Wq)
		tensor.MatMul(k, x1, blk.Attn.Wk)
		tensor.MatMul(v, x1, blk.Attn.Wv)
		d.rope.ApplyAllOffset(q, 1, heads, 1, d.pos)
		d.rope.ApplyAllOffset(k, 1, heads, 1, d.pos)

		d.kCache[li] = appendRow(d.kCache[li], k, h)
		d.vCache[li] = appendRow(d.vCache[li], v, h)
		kc, vc := d.kCache[li], d.vCache[li]
		t := kc.Rows()

		ctx := tensor.New(1, h)
		scale := 1.0 / math.Sqrt(float64(hd))
		for hi := 0; hi < heads; hi++ {
			// scores over the cached positions for this head
			scores := make([]float64, t)
			maxv := math.Inf(-1)
			for j := 0; j < t; j++ {
				var dot float64
				for c := 0; c < hd; c++ {
					dot += float64(q.Data[hi*hd+c]) * float64(kc.Data[j*h+hi*hd+c])
				}
				scores[j] = dot * scale
				if scores[j] > maxv {
					maxv = scores[j]
				}
			}
			var sum float64
			for j := range scores {
				scores[j] = math.Exp(scores[j] - maxv)
				sum += scores[j]
			}
			for j := range scores {
				p := float32(scores[j] / sum)
				for c := 0; c < hd; c++ {
					ctx.Data[hi*hd+c] += p * vc.Data[j*h+hi*hd+c]
				}
			}
		}
		ao := tensor.New(1, h)
		tensor.MatMul(ao, ctx, blk.Attn.Wo)
		y := tensor.New(1, h)
		tensor.Add(y, x, ao)

		// FFN branch
		y1 := rmsNormRow(y, blk.Norm2.Gain)
		fo := blk.Ffn.Forward(y1, nn.NewCache(1, 1))
		z := tensor.New(1, h)
		tensor.Add(z, y, fo)
		x = z
	}

	normed := rmsNormRow(x, d.m.Head.Norm.Gain)
	logits := tensor.New(1, cfg.Vocab)
	tensor.MatMul(logits, normed, d.m.Head.W)
	d.pos++
	out := make([]float32, cfg.Vocab)
	copy(out, logits.Data)
	return out, nil
}

// GenerateCached extends prompt by n sampled tokens using the KV-cached
// decoder (no sliding window: prompt+n must fit MaxSeq).
func GenerateCached(m *model.Model, prompt []int, n int, opts Options) ([]int, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("generate: empty prompt")
	}
	if len(prompt)+n > m.Cfg.MaxSeq {
		return nil, fmt.Errorf("generate: prompt %d + %d tokens exceeds MaxSeq %d", len(prompt), n, m.Cfg.MaxSeq)
	}
	rng := tensor.NewRNG(opts.Seed)
	dec := NewDecoder(m)
	var logits []float32
	var err error
	for _, tok := range prompt {
		if logits, err = dec.Step(tok); err != nil {
			return nil, err
		}
	}
	out := append([]int(nil), prompt...)
	for i := 0; i < n; i++ {
		tok := Sample(logits, opts, rng)
		out = append(out, tok)
		if i == n-1 {
			break
		}
		if logits, err = dec.Step(tok); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rmsNormRow applies RMSNorm with gain g to a [rows, H] tensor (inference
// path; no cache needed).
func rmsNormRow(x *tensor.Tensor, g *tensor.Tensor) *tensor.Tensor {
	h := g.Size()
	rows := x.Size() / h
	out := tensor.New(rows, h)
	for i := 0; i < rows; i++ {
		xr := x.Data[i*h : (i+1)*h]
		or := out.Data[i*h : (i+1)*h]
		var ss float64
		for _, v := range xr {
			ss += float64(v) * float64(v)
		}
		r := float32(1.0 / math.Sqrt(ss/float64(h)+1e-5))
		for j, v := range xr {
			or[j] = g.Data[j] * v * r
		}
	}
	return out
}

// appendRow grows cache by one [1, h] row.
func appendRow(cache, row *tensor.Tensor, h int) *tensor.Tensor {
	if cache == nil {
		out := tensor.New(1, h)
		copy(out.Data, row.Data)
		return out
	}
	t := cache.Rows()
	out := tensor.New(t+1, h)
	copy(out.Data, cache.Data)
	copy(out.Data[t*h:], row.Data)
	return out
}
