// Package generate runs autoregressive inference on a trained model:
// greedy or temperature sampling over the next-token distribution. It is
// deliberately simple (full re-forward per emitted token, no KV cache) —
// its job is to demonstrate that the distributed training runtimes produce
// a model that actually works, and to power the generation example.
package generate

import (
	"fmt"
	"math"

	"weipipe/internal/model"
	"weipipe/internal/nn"
	"weipipe/internal/tensor"
)

// Options controls sampling.
type Options struct {
	// Temperature 0 selects the argmax (greedy); higher values flatten the
	// distribution.
	Temperature float64
	// TopK, when positive, samples only among the K most likely tokens.
	TopK int
	// Seed drives the sampler's RNG (ignored for greedy decoding).
	Seed uint64
}

// Logits computes the next-token logits after the final position of tokens.
func Logits(m *model.Model, tokens []int) ([]float32, error) {
	s := len(tokens)
	if s == 0 {
		return nil, fmt.Errorf("generate: empty context")
	}
	if s > m.Cfg.MaxSeq {
		return nil, fmt.Errorf("generate: context %d exceeds MaxSeq %d", s, m.Cfg.MaxSeq)
	}
	cache := nn.NewCache(1, s)
	x := m.Embed.ForwardTokens([][]int{tokens}, cache)
	for _, b := range m.Blocks {
		x = b.Forward(x, nn.NewCache(1, s))
	}
	logits := m.Head.ForwardLogits(x, nn.NewCache(1, s))
	// last position's row
	v := m.Cfg.Vocab
	out := make([]float32, v)
	copy(out, logits.Data[(s-1)*v:s*v])
	return out, nil
}

// Next samples one token continuing the given context.
func Next(m *model.Model, tokens []int, opts Options, rng *tensor.RNG) (int, error) {
	logits, err := Logits(m, tokens)
	if err != nil {
		return 0, err
	}
	return Sample(logits, opts, rng), nil
}

// Sample draws a token id from logits according to opts.
func Sample(logits []float32, opts Options, rng *tensor.RNG) int {
	if opts.Temperature <= 0 {
		return argmax(logits)
	}
	// temperature softmax (optionally over the top-K set)
	idx := make([]int, len(logits))
	for i := range idx {
		idx[i] = i
	}
	if opts.TopK > 0 && opts.TopK < len(logits) {
		// partial selection sort of the top K (K is small)
		for i := 0; i < opts.TopK; i++ {
			best := i
			for j := i + 1; j < len(idx); j++ {
				if logits[idx[j]] > logits[idx[best]] {
					best = j
				}
			}
			idx[i], idx[best] = idx[best], idx[i]
		}
		idx = idx[:opts.TopK]
	}
	maxv := logits[idx[0]]
	for _, i := range idx {
		if logits[i] > maxv {
			maxv = logits[i]
		}
	}
	probs := make([]float64, len(idx))
	var sum float64
	for k, i := range idx {
		p := math.Exp(float64(logits[i]-maxv) / opts.Temperature)
		probs[k] = p
		sum += p
	}
	r := rng.Float64() * sum
	for k, p := range probs {
		r -= p
		if r <= 0 {
			return idx[k]
		}
	}
	return idx[len(idx)-1]
}

func argmax(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// Generate extends prompt by n sampled tokens. When the context would
// exceed the model's MaxSeq, the oldest tokens are dropped (sliding
// window).
func Generate(m *model.Model, prompt []int, n int, opts Options) ([]int, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("generate: empty prompt")
	}
	rng := tensor.NewRNG(opts.Seed)
	out := append([]int(nil), prompt...)
	for i := 0; i < n; i++ {
		ctx := out
		if len(ctx) > m.Cfg.MaxSeq {
			ctx = ctx[len(ctx)-m.Cfg.MaxSeq:]
		}
		tok, err := Next(m, ctx, opts, rng)
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
	}
	return out, nil
}
