package generate

import (
	"math"
	"testing"
)

// The decisive test: KV-cached incremental decoding must produce the same
// logits as the full re-forward path at every position.
func TestDecoderMatchesFullForward(t *testing.T) {
	m := genModel()
	tokens := []int{3, 1, 4, 1, 5, 9, 2, 6}
	dec := NewDecoder(m)
	for i, tok := range tokens {
		cached, err := dec.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Logits(m, tokens[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		for j := range full {
			if d := math.Abs(float64(cached[j] - full[j])); d > 1e-4 {
				t.Fatalf("pos %d logit %d: cached %v vs full %v (diff %g)", i, j, cached[j], full[j], d)
			}
		}
	}
	if dec.Pos() != len(tokens) {
		t.Fatalf("Pos = %d", dec.Pos())
	}
}

func TestDecoderResetStartsFresh(t *testing.T) {
	m := genModel()
	dec := NewDecoder(m)
	a, _ := dec.Step(5)
	dec.Reset()
	if dec.Pos() != 0 {
		t.Fatal("Reset did not zero position")
	}
	b, _ := dec.Step(5)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("reset decoder diverges from fresh decoder")
		}
	}
}

func TestDecoderValidation(t *testing.T) {
	m := genModel()
	dec := NewDecoder(m)
	if _, err := dec.Step(99); err == nil {
		t.Fatal("out-of-vocab token accepted")
	}
	for i := 0; i < m.Cfg.MaxSeq; i++ {
		if _, err := dec.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dec.Step(1); err == nil {
		t.Fatal("step beyond MaxSeq accepted")
	}
}

func TestGenerateCachedMatchesUncachedGreedy(t *testing.T) {
	m := genModel()
	prompt := []int{1, 2, 3}
	a, err := GenerateCached(m, prompt, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(m, prompt, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached and uncached greedy diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestGenerateCachedBoundsChecked(t *testing.T) {
	m := genModel()
	if _, err := GenerateCached(m, nil, 3, Options{}); err == nil {
		t.Fatal("empty prompt accepted")
	}
	if _, err := GenerateCached(m, []int{1}, m.Cfg.MaxSeq, Options{}); err == nil {
		t.Fatal("overlong generation accepted")
	}
}

func BenchmarkDecoderStepVsFullForward(b *testing.B) {
	m := genModel()
	// warm a decoder to near MaxSeq so Step cost reflects the cached path
	dec := NewDecoder(m)
	for i := 0; i < m.Cfg.MaxSeq-1; i++ {
		if _, err := dec.Step(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reset()
		for j := 0; j < 8; j++ {
			if _, err := dec.Step(1); err != nil {
				b.Fatal(err)
			}
		}
	}
}
