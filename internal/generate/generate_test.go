package generate

import (
	"testing"

	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
	"weipipe/internal/tensor"
)

func genModel() *model.Model {
	return model.Build(model.Config{Vocab: 16, Hidden: 16, Layers: 2, Heads: 2, MaxSeq: 12, Seed: 9})
}

func TestLogitsShapeAndDeterminism(t *testing.T) {
	m := genModel()
	a, err := Logits(m, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 16 {
		t.Fatalf("logits len %d", len(a))
	}
	b, _ := Logits(m, []int{1, 2, 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("logits nondeterministic")
		}
	}
	// only the trailing token matters for the last position's causal view
	c, _ := Logits(m, []int{9, 2, 3})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("changing an earlier token did not change the logits (attention inert)")
	}
}

func TestLogitsValidation(t *testing.T) {
	m := genModel()
	if _, err := Logits(m, nil); err == nil {
		t.Fatal("empty context accepted")
	}
	if _, err := Logits(m, make([]int, 13)); err == nil {
		t.Fatal("overlong context accepted")
	}
}

func TestGreedyIsDeterministicAndInVocab(t *testing.T) {
	m := genModel()
	a, err := Generate(m, []int{1, 2}, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(m, []int{1, 2}, 6, Options{})
	if len(a) != 8 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy decoding nondeterministic")
		}
		if a[i] < 0 || a[i] >= 16 {
			t.Fatalf("token %d out of vocab", a[i])
		}
	}
}

func TestTemperatureSamplingSeeded(t *testing.T) {
	m := genModel()
	a, _ := Generate(m, []int{1}, 10, Options{Temperature: 1.0, Seed: 1})
	b, _ := Generate(m, []int{1}, 10, Options{Temperature: 1.0, Seed: 1})
	c, _ := Generate(m, []int{1}, 10, Options{Temperature: 1.0, Seed: 2})
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples (suspicious)")
	}
}

func TestTopKRestrictsSupport(t *testing.T) {
	logits := []float32{0, 10, 9, -5, 8}
	rng := tensor.NewRNG(3)
	counts := map[int]int{}
	for i := 0; i < 200; i++ {
		counts[Sample(logits, Options{Temperature: 2, TopK: 2}, rng)]++
	}
	for tok := range counts {
		if tok != 1 && tok != 2 {
			t.Fatalf("top-2 sampling emitted token %d", tok)
		}
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("top-2 sampling degenerate: %v", counts)
	}
}

func TestSlidingWindowBeyondMaxSeq(t *testing.T) {
	m := genModel()
	out, err := Generate(m, []int{1, 2, 3}, 20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 23 {
		t.Fatalf("len = %d", len(out))
	}
}

// TestTrainedModelBeatsUntrainedOnStructure trains briefly on the Markov
// stream and checks the trained model predicts the stream better than the
// untrained one — generation plumbing on top of a real training run.
func TestTrainedModelPredictsStream(t *testing.T) {
	cfg := model.Config{Vocab: 16, Hidden: 16, Layers: 2, Heads: 2, MaxSeq: 12, Seed: 9}
	opts := pipeline.Options{Adam: optimDefault()}
	batches := data.Microbatches(4, 4, 2, 16, 12)
	res, err := pipeline.RunCluster(pipeline.StrategyWeiPipeInterleave, 2, cfg, opts, 25,
		func(int) []data.Batch { return batches })
	if err != nil {
		t.Fatal(err)
	}
	trained := model.Build(cfg)
	trained.SetChunk(0, len(trained.Modules), res.Weights)

	untrained := model.Build(cfg)
	score := func(m *model.Model) int {
		hits := 0
		for _, b := range batches {
			for gi := range b.Tokens {
				for s := 3; s < b.S(); s++ {
					logits, err := Logits(m, b.Tokens[gi][:s])
					if err != nil {
						t.Fatal(err)
					}
					if argmax(logits) == b.Targets[gi][s-1] {
						hits++
					}
				}
			}
		}
		return hits
	}
	if st, su := score(trained), score(untrained); st <= su {
		t.Fatalf("trained model (%d hits) not better than untrained (%d)", st, su)
	}
}

func optimDefault() optim.AdamWConfig {
	return optim.DefaultAdamW(0.01)
}
