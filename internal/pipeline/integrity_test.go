package pipeline

import (
	"errors"
	"testing"

	"weipipe/internal/comm"
	"weipipe/internal/tensor"
)

// End-to-end SDC defense: every injected bit flip must be detected at a
// consumption point and surface as a typed *comm.IntegrityError — never
// silently absorbed into training state — and a repaired run must land on
// the fault-free trajectory bit-identically.

func integrityOpts() Options {
	opts := eqOpts()
	opts.Integrity = true
	return opts
}

// TestIntegrityCleanRunUnperturbed: with integrity armed and no faults,
// training must be bit-identical to the undefended run — the seal rounds
// through the identity (f32) or the codec the payload was going through
// anyway (bf16) — and the meters must show the checks happening.
func TestIntegrityCleanRunUnperturbed(t *testing.T) {
	const p, iters, n = 2, 4, 4
	for _, bf16 := range []bool{false, true} {
		name := "f32"
		if bf16 {
			name = "bf16"
		}
		t.Run(name, func(t *testing.T) {
			plain := eqOpts()
			plain.BF16Wire = bf16
			ref, err := RunCluster(StrategyWZB2, p, eqCfg(), plain, iters, eqBatches(iters, n))
			if err != nil {
				t.Fatal(err)
			}
			armed := integrityOpts()
			armed.BF16Wire = bf16
			res, err := RunCluster(StrategyWZB2, p, eqCfg(), armed, iters, eqBatches(iters, n))
			if err != nil {
				t.Fatal(err)
			}
			bitIdentical(t, "integrity on vs off", res.Losses, ref.Losses, res.Weights, ref.Weights)

			total := res.TotalComm()
			checks, fails := total.TotalIntegrityChecks()
			if checks == 0 {
				t.Fatal("integrity run recorded no checks; defense was a no-op")
			}
			if fails != 0 {
				t.Fatalf("clean run recorded %d integrity failures", fails)
			}
			for _, k := range []comm.Kind{comm.KindWeight, comm.KindGrad, comm.KindCtl} {
				if total.IntegrityChecks(k) == 0 {
					t.Errorf("no %v integrity checks recorded", k)
				}
			}
			// The undefended run must not pay for the machinery.
			refChecks, _ := ref.TotalComm().TotalIntegrityChecks()
			if refChecks != 0 {
				t.Fatalf("integrity-off run recorded %d checks", refChecks)
			}
		})
	}
}

// TestIntegrityDetectsEverysite plants one flip per site and demands a
// typed detection at the documented site, with nothing absorbed.
func TestIntegrityDetectsEverySite(t *testing.T) {
	const p, iters, n = 2, 4, 4
	cases := []struct {
		site     FlipSite
		wantSite comm.IntegritySite
	}{
		{FlipWeights, comm.SiteWeights},
		{FlipMomentM, comm.SiteMoments},
		{FlipMomentV, comm.SiteMoments},
		{FlipBeltWeight, comm.SiteBelt},
		{FlipBeltGrad, comm.SiteRetire},
	}
	for _, tc := range cases {
		t.Run(tc.site.String(), func(t *testing.T) {
			inj := NewBitFlipInjector([]BitFlipEvent{
				{Rank: 1, Iter: 2, Site: tc.site, Word: 12345, Bit: 23},
			})
			opts := integrityOpts()
			opts.BitFlip = inj
			// RunResilient with a zero restart budget: the typed error must
			// fail the run cleanly (RunCluster has no failure propagation).
			_, err := RunResilient(StrategyWZB2, p, eqCfg(), opts, iters, eqBatches(iters, n),
				inprocFactory(p), ResilientOptions{})
			if err == nil {
				t.Fatal("injected flip was silently absorbed")
			}
			if !errors.Is(err, comm.ErrIntegrity) {
				t.Fatalf("flip surfaced as untyped error: %v", err)
			}
			var ie *comm.IntegrityError
			if !errors.As(err, &ie) {
				t.Fatalf("no *IntegrityError in chain: %v", err)
			}
			if ie.Site != tc.wantSite {
				t.Fatalf("detected at %v, want %v (err: %v)", ie.Site, tc.wantSite, err)
			}
			if inj.Fired() != 1 {
				t.Fatalf("injector fired %d events, want 1", inj.Fired())
			}
		})
	}
}

// TestIntegrityDetectsKernelFlip: a bit flip planted in a matmul output
// via the ABFT fault hook must surface as a SiteKernel integrity error.
func TestIntegrityDetectsKernelFlip(t *testing.T) {
	const p, iters, n = 2, 4, 4
	inj := NewBitFlipInjector([]BitFlipEvent{
		{Rank: 0, Iter: 2, Site: FlipKernel, Word: 777, Bit: 30},
	})
	tensor.EnableABFT()
	tensor.SetABFTFault(inj.KernelHook())
	defer func() {
		tensor.SetABFTFault(nil)
		tensor.DisableABFT()
	}()
	opts := integrityOpts()
	opts.BitFlip = inj
	_, err := RunResilient(StrategyWZB2, p, eqCfg(), opts, iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{})
	if err == nil {
		t.Fatal("kernel flip was silently absorbed")
	}
	var ie *comm.IntegrityError
	if !errors.As(err, &ie) || ie.Site != comm.SiteKernel {
		t.Fatalf("kernel flip surfaced as %v, want SiteKernel", err)
	}
	if inj.Fired() != 1 {
		t.Fatalf("injector fired %d events, want 1", inj.Fired())
	}
}

// TestIntegrityRepairBitIdentical: detection must feed the existing repair
// machinery — a detected resident-state flip restarts from the checkpoint,
// the replay (in which the one-shot injector stays quiet) must land on the
// fault-free trajectory bit-identically.
func TestIntegrityRepairBitIdentical(t *testing.T) {
	const p, iters, n = 2, 6, 4
	opts := integrityOpts()
	opts.SpikeWindow = 4 // exercise spike snapshot/restore across the restart
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}

	inj := NewBitFlipInjector([]BitFlipEvent{
		{Rank: 1, Iter: 3, Site: FlipWeights, Word: 999, Bit: 27},
	})
	faulted := opts
	faulted.BitFlip = inj
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), faulted, iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			CheckpointEvery: 2,
			MaxRestarts:     1,
		})
	if err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	if inj.Fired() != 1 {
		t.Fatal("scheduled flip never fired; the test proved nothing")
	}
	bitIdentical(t, "integrity repair", res.Losses, ref.Losses, res.Weights, ref.Weights)
	if res.SpikeSteps != ref.SpikeSteps {
		t.Fatalf("SpikeSteps %d after repair, reference %d", res.SpikeSteps, ref.SpikeSteps)
	}
}

// TestIntegrityElasticShrinkOnFlip: under an elastic policy the detecting
// rank offers itself as evidence and the survivors rebuild its shard from
// the buddy replica — a memory flip is repaired like a rank death, without
// reading a checkpoint.
func TestIntegrityElasticShrinkOnFlip(t *testing.T) {
	const p, iters, n = 3, 6, 6
	opts := integrityOpts()
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}

	inj := NewBitFlipInjector([]BitFlipEvent{
		{Rank: 1, Iter: 3, Site: FlipMomentV, Word: 4242, Bit: 29},
	})
	faulted := opts
	faulted.BitFlip = inj
	var repaired []RepairEvent
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), faulted, iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			Elastic:     ElasticShrink,
			MaxRestarts: 1,
			OnRepair:    func(ev RepairEvent) { repaired = append(repaired, ev) },
		})
	if err != nil {
		t.Fatalf("elastic repair failed: %v", err)
	}
	if inj.Fired() != 1 {
		t.Fatal("scheduled flip never fired")
	}
	if len(repaired) != 1 {
		t.Fatalf("%d repairs, want 1", len(repaired))
	}
	ev := repaired[0]
	if ev.Policy != ElasticShrink || ev.NewSize != p-1 {
		t.Fatalf("repair %+v, want shrink to %d", ev, p-1)
	}
	if len(ev.Dead) != 1 || ev.Dead[0] != 1 {
		t.Fatalf("dead set %v, want [1] (the detecting rank's state is suspect)", ev.Dead)
	}
	// Iterations completed before the cut are bit-identical to the
	// fault-free 3-rank run; the continuation at the new world size stays
	// within the cross-world float-reassociation envelope.
	for i := 0; i < ev.Iteration; i++ {
		if res.Losses[i] != ref.Losses[i] {
			t.Fatalf("pre-cut loss %d: %v != %v", i, res.Losses[i], ref.Losses[i])
		}
	}
	if len(res.Weights) != len(ref.Weights) {
		t.Fatalf("weights %d, want %d", len(res.Weights), len(ref.Weights))
	}
	if d := maxAbsDiff(res.Weights, ref.Weights); d > 5e-4 {
		t.Fatalf("post-repair weights drift %g from fault-free reference", d)
	}
}

// TestSpikeCleanEquivalence: an armed spike detector must not perturb a
// healthy run — identical trajectory, zero flags.
func TestSpikeCleanEquivalence(t *testing.T) {
	const p, iters, n = 2, 5, 4
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	opts := eqOpts()
	opts.SpikeWindow = 6
	res, err := RunCluster(StrategyWZB2, p, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "spike detector on vs off", res.Losses, ref.Losses, res.Weights, ref.Weights)
	if res.SpikeSteps != 0 {
		t.Fatalf("healthy run flagged %d spike steps", res.SpikeSteps)
	}
}

// TestSpikeFlagsCorruptedGradients: with belt integrity off, a high-bit
// flip in a retiring gradient inflates that step's norm to a finite but
// absurd value (the sum of squares accumulates in float64, so even ~1e34
// gradient elements square without overflowing); the spike detector is the
// second line of defense and must flag the step and, in skip mode, refuse
// to feed it to the optimizer.
func TestSpikeFlagsCorruptedGradients(t *testing.T) {
	const p, iters, n = 2, 8, 4
	inj := NewBitFlipInjector([]BitFlipEvent{
		{Rank: 0, Iter: 4, Site: FlipBeltGrad, Word: 31, Bit: 30},
	})
	opts := eqOpts()
	opts.SpikeWindow = 4
	opts.SpikeSkip = true
	opts.BitFlip = inj // integrity OFF: the flip sails into the step
	res, err := RunCluster(StrategyWZB2, p, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	if inj.Fired() != 1 {
		t.Fatal("scheduled flip never fired")
	}
	if res.SpikeSteps != 1 {
		t.Fatalf("SpikeSteps = %d, want exactly the corrupted step", res.SpikeSteps)
	}
	if res.SkippedSteps != 1 {
		t.Fatalf("SkippedSteps = %d, want the flagged step skipped", res.SkippedSteps)
	}
	// The skip kept the corruption out of the weights: training continues
	// on finite losses.
	for i, l := range res.Losses {
		if l != l {
			t.Fatalf("loss %d is NaN; the corrupt step leaked into the weights", i)
		}
	}
}
