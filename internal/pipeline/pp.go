package pipeline

import (
	"fmt"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/nn"
	"weipipe/internal/optim"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// ppBase is the shared machinery of the activation-passing pipeline
// strategies (GPipe, 1F1B, ZB1, ZB2): rank r permanently owns the
// contiguous module range bounds[r] (its stage), activations flow
// r → r+1 during forward and activation gradients flow r+1 → r during
// backward, and every stage steps its own parameters locally — no weight
// communication at all.
type ppBase struct {
	t      Transport
	mdl    *model.Model
	lo, hi int
	opt    *optim.AdamW
	opts   Options

	// per-microbatch state for the current iteration
	caches map[int][]*nn.Cache
	grads  []*nn.ParamSet
	lossMB map[int]float64
	seq    int

	// arenas holds each in-flight microbatch's scratch arena, acquired at
	// forward time and released (reset + pooled) after the W pass. The pool
	// therefore holds as many arenas as the schedule's peak in-flight
	// microbatch count (N for GPipe, warm-up depth for 1F1B/ZB).
	arenas  map[int]*tensor.Arena
	apool   arenaPool
	skipped int

	// tr is this rank's runtime tracer (nil when tracing is off).
	tr *trace.Tracer
}

// ArenaHighWater implements ArenaMeter.
func (p *ppBase) ArenaHighWater() int { return p.apool.highWater() }

func newPPBase(t Transport, cfg model.Config, opts Options) (*ppBase, error) {
	if opts.Scaler != nil {
		opts.Scaler = opts.Scaler.Clone()
	}
	mdl := model.Build(cfg)
	p := t.Size()
	if p > len(mdl.Modules) {
		return nil, fmt.Errorf("pipeline: %d ranks exceed %d modules", p, len(mdl.Modules))
	}
	bounds := mdl.Partition(p)
	lo, hi := bounds[t.Rank()][0], bounds[t.Rank()][1]
	return &ppBase{
		t:    t,
		mdl:  mdl,
		lo:   lo,
		hi:   hi,
		opt:  optim.NewAdamW(mdl.ChunkSize(lo, hi), opts.Adam),
		opts: opts,
		tr:   opts.Trace.Rank(t.Rank()),
	}, nil
}

func (p *ppBase) Model() *model.Model { return p.mdl }

func (p *ppBase) isFirst() bool { return p.t.Rank() == 0 }
func (p *ppBase) isLast() bool  { return p.t.Rank() == p.t.Size()-1 }

// beginIteration resets per-iteration state.
func (p *ppBase) beginIteration() {
	if p.opts.Scaler != nil {
		// Only the last stage runs the head, but setting the scale is
		// harmless elsewhere and keeps the stages symmetric.
		p.mdl.Head.LossScale = float32(p.opts.Scaler.Scale())
	}
	p.caches = make(map[int][]*nn.Cache)
	p.grads = newGrads(p.mdl)
	p.lossMB = make(map[int]float64)
	p.arenas = make(map[int]*tensor.Arena)
}

// hidden returns the boundary activation width (the hidden size).
func (p *ppBase) hidden() int { return p.mdl.Cfg.Hidden }

// forwardMB runs this stage's forward for microbatch m, receiving boundary
// activations from the previous stage and sending them to the next.
func (p *ppBase) forwardMB(m int, b data.Batch, recompute bool) error {
	var x *tensor.Tensor
	if !p.isFirst() {
		span := p.tr.Begin()
		payload, err := p.t.Recv(p.t.Rank()-1, Tag{Kind: comm.KindAct, A: m})
		p.tr.End(span, trace.CodeStall, int64(comm.KindAct), int64(p.t.Rank()-1))
		if err != nil {
			return err
		}
		x = tensor.FromSlice(payload, b.G()*b.S(), p.hidden())
	}
	arena := p.apool.acquire()
	p.arenas[m] = arena
	caches := newCaches(p.lo, p.hi, b.G(), b.S(), arena)
	p.caches[m] = caches
	span := p.tr.Begin()
	out, loss := forwardRange(p.mdl, p.lo, p.hi, x, b, caches, recompute)
	p.tr.End(span, trace.CodeF, int64(m), int64(p.t.Rank()))
	if p.isLast() {
		p.lossMB[m] = loss
		return nil
	}
	return p.t.Send(p.t.Rank()+1, Tag{Kind: comm.KindAct, A: m}, maybeRoundF16(p.opts, out.Data))
}

// backwardMBInput runs this stage's B pass for microbatch m, receiving the
// boundary gradient from the next stage and sending the propagated gradient
// to the previous stage. The caches stay alive for the W pass.
func (p *ppBase) backwardMBInput(m int, b data.Batch, recompute bool) error {
	var dy *tensor.Tensor
	if !p.isLast() {
		span := p.tr.Begin()
		payload, err := p.t.Recv(p.t.Rank()+1, Tag{Kind: comm.KindActGrad, A: m})
		p.tr.End(span, trace.CodeStall, int64(comm.KindActGrad), int64(p.t.Rank()+1))
		if err != nil {
			return err
		}
		dy = tensor.FromSlice(payload, b.G()*b.S(), p.hidden())
	}
	span := p.tr.Begin()
	dx := backwardRangeB(p.mdl, p.lo, p.hi, dy, p.caches[m], recompute)
	p.tr.End(span, trace.CodeB, int64(m), int64(p.t.Rank()))
	if p.isFirst() {
		return nil
	}
	return p.t.Send(p.t.Rank()-1, Tag{Kind: comm.KindActGrad, A: m}, maybeRoundBF16(p.opts, dx.Data))
}

// backwardMBParams runs this stage's W pass for microbatch m and releases
// the microbatch's activation caches.
func (p *ppBase) backwardMBParams(m int) {
	span := p.tr.Begin()
	backwardRangeW(p.mdl, p.lo, p.hi, p.caches[m], p.grads)
	p.tr.End(span, trace.CodeW, int64(m), int64(p.t.Rank()))
	delete(p.caches, m)
	p.apool.release(p.arenas[m])
	delete(p.arenas, m)
}

// step averages this stage's accumulated gradients over n microbatches,
// applies global-norm clipping (combining the stages' partial norms with a
// scalar all-reduce) and takes the local optimizer update.
func (p *ppBase) step(n int) error {
	span := p.tr.Begin()
	defer func() { p.tr.End(span, trace.CodeOpt, int64(p.seq), 0) }()
	size := p.mdl.ChunkSize(p.lo, p.hi)
	flatW := make([]float32, size)
	flatG := make([]float32, size)
	p.mdl.FlattenChunk(p.lo, p.hi, flatW)
	flattenGradsRange(p.mdl, p.grads, p.lo, p.hi, flatG)
	inv := gradFactor(p.opts, n)
	for i := range flatG {
		flatG[i] *= inv
	}
	// The stages' partial Σg² combine in one scalar all-reduce, serving
	// both global-norm clipping and the non-finite guard with the identical
	// verdict on every stage.
	var sumSq float64
	if needGlobalSumSq(p.opts) {
		p.seq++
		var err error
		sumSq, err = comm.AllReduceScalarSum(p.t, sumSquares(flatG), p.seq)
		if err != nil {
			return err
		}
	}
	if guardActive(p.opts) && !finiteSum(sumSq) {
		p.skipped++
		if p.opts.Scaler != nil {
			p.opts.Scaler.Observe(false)
		}
		return nil
	}
	if c := clipScale(p.opts, sumSq); c != 1 {
		for i := range flatG {
			flatG[i] *= c
		}
	}
	p.opt.Step(flatW, flatG)
	p.mdl.SetChunk(p.lo, p.hi, flatW)
	if p.opts.Scaler != nil {
		p.opts.Scaler.Observe(true)
	}
	return nil
}

// finishLoss broadcasts the last stage's mean loss to every rank.
func (p *ppBase) finishLoss(n int) (float64, error) {
	var sum float64
	for _, l := range p.lossMB {
		sum += l
	}
	p.seq++
	var payload []float32
	if p.isLast() {
		payload = []float32{float32(sum / float64(n))}
	}
	out, err := comm.Broadcast(p.t, p.t.Size()-1, payload, p.seq)
	if err != nil {
		return 0, err
	}
	return float64(out[0]), nil
}

// GPipe runs all forwards, then all backwards in reverse microbatch order —
// the classic schedule with the largest bubble and the largest activation
// footprint.
type GPipe struct{ *ppBase }

// NewGPipe builds a GPipe stage for this rank.
func NewGPipe(t Transport, cfg model.Config, opts Options) (*GPipe, error) {
	b, err := newPPBase(t, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &GPipe{b}, nil
}

// TrainIteration implements Trainer.
func (g *GPipe) TrainIteration(batches []data.Batch) (float64, error) {
	g.beginIteration()
	n := len(batches)
	for m := 0; m < n; m++ {
		if err := g.forwardMB(m, batches[m], g.opts.Recompute); err != nil {
			return 0, err
		}
	}
	for m := n - 1; m >= 0; m-- {
		if err := g.backwardMBInput(m, batches[m], g.opts.Recompute); err != nil {
			return 0, err
		}
		g.backwardMBParams(m)
	}
	if err := g.step(n); err != nil {
		return 0, err
	}
	return g.finishLoss(n)
}

// OneFOneB is the 1F1B schedule (Megatron's default): a warm-up of
// min(P−1−rank, N) forwards, then strict one-forward-one-backward
// alternation, then a cool-down of the remaining backwards. Peak activation
// memory is bounded by the warm-up depth instead of N.
type OneFOneB struct{ *ppBase }

// NewOneFOneB builds a 1F1B stage for this rank.
func NewOneFOneB(t Transport, cfg model.Config, opts Options) (*OneFOneB, error) {
	b, err := newPPBase(t, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &OneFOneB{b}, nil
}

// TrainIteration implements Trainer.
func (o *OneFOneB) TrainIteration(batches []data.Batch) (float64, error) {
	o.beginIteration()
	n := len(batches)
	warmup := o.t.Size() - 1 - o.t.Rank()
	if warmup > n {
		warmup = n
	}
	for m := 0; m < warmup; m++ {
		if err := o.forwardMB(m, batches[m], o.opts.Recompute); err != nil {
			return 0, err
		}
	}
	for m := warmup; m < n; m++ {
		if err := o.forwardMB(m, batches[m], o.opts.Recompute); err != nil {
			return 0, err
		}
		bm := m - warmup
		if err := o.backwardMBInput(bm, batches[bm], o.opts.Recompute); err != nil {
			return 0, err
		}
		o.backwardMBParams(bm)
	}
	for m := n - warmup; m < n; m++ {
		if err := o.backwardMBInput(m, batches[m], o.opts.Recompute); err != nil {
			return 0, err
		}
		o.backwardMBParams(m)
	}
	if err := o.step(n); err != nil {
		return 0, err
	}
	return o.finishLoss(n)
}

var (
	_ Trainer = (*GPipe)(nil)
	_ Trainer = (*OneFOneB)(nil)
)
