package pipeline

import (
	"math"
	"testing"

	"weipipe/internal/tensor"
)

// TestStrategiesPerBackend pins the determinism contract of the kernel
// backends at the training level. Under any single backend — including
// tolerance-mode SIMD backends whose NT reductions are reassociated
// relative to scalar — each backend's accumulation order is a pure
// function of the shapes, never of the worker-pool chunking, so:
//
//  1. repeating a run must reproduce bitwise identical weights, and
//  2. every strategy must stay within the same tolerance of the serial
//     reference that the scalar equivalence suite enforces (strategies
//     are not bitwise equal to *each other*: they legitimately differ in
//     gradient accumulation order, on every backend).
func TestStrategiesPerBackend(t *testing.T) {
	const iters, n = 2, 8
	for _, bk := range tensor.Backends() {
		bk := bk
		t.Run(bk, func(t *testing.T) {
			if err := tensor.SetBackend(bk); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := tensor.SetBackend("scalar"); err != nil {
					t.Fatal(err)
				}
			}()
			ref, err := RunCluster(StrategySerial, 1, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			for _, s := range Strategies() {
				if s == StrategySerial {
					continue
				}
				first, err := RunCluster(s, 2, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
				if err != nil {
					t.Fatalf("%s: %v", s, err)
				}
				again, err := RunCluster(s, 2, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
				if err != nil {
					t.Fatalf("%s rerun: %v", s, err)
				}
				for i := range first.Weights {
					if first.Weights[i] != again.Weights[i] {
						t.Fatalf("backend %s: %s is nondeterministic at weight %d: %b vs %b",
							bk, s, i, first.Weights[i], again.Weights[i])
					}
				}
				if len(first.Weights) != len(ref.Weights) {
					t.Fatalf("%s: weight count %d != %d", s, len(first.Weights), len(ref.Weights))
				}
				var maxd float64
				for i := range ref.Weights {
					if d := math.Abs(float64(first.Weights[i] - ref.Weights[i])); d > maxd {
						maxd = d
					}
				}
				if maxd > 5e-4 {
					t.Errorf("backend %s: %s max weight diff vs serial = %g", bk, s, maxd)
				}
			}
		})
	}
}
