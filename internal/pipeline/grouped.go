package pipeline

import (
	"fmt"

	"weipipe/internal/comm"
	"weipipe/internal/model"
)

// Topology-aware grouped weight belts (strategy "wzb2g"; DESIGN.md §16).
//
// The flat belt ships every weight chunk across every ring link each round,
// so on hierarchical clusters the slow inter-group links carry the whole
// belt. The grouped belt splits the ring into contiguous groups of m ranks
// (Options.GroupSize — servers, NVLink islands) and restructures the weight
// belts so each chunk crosses the slow links exactly once per iteration:
//
//   - Shard exchange (iteration start): chunk c's owner builds the sealed
//     belt payload exactly as the flat injection would, hands it to the
//     chunk's local holder (rank group·m + c mod m), and the holders
//     store-and-forward it around the *holder ring* — one hop per group
//     boundary, G−1 inter-group sends in total. Every group ends up with a
//     cached copy of every chunk; one copy serves both weight belts (the
//     ×2 dedup) and all R rounds (the ×R dedup).
//   - Intra-group circulation: each round the holder injects its cached
//     chunk to the group's first rank over the group sub-transport
//     (comm.Group), the chunk relays member-to-member on fast intra links
//     with the *flat* belt tags, and the group's last rank never forwards —
//     the belt never touches a boundary link. Round k+1's injection is sent
//     by the holder right after its own round-k consumption, so belt memory
//     stays bounded without any cross-group pacing.
//   - The gradient accumulator D is untouched: it still rides the flat ring
//     (its strict left-fold order is what makes runs bit-identical), and it
//     already crosses each boundary only once per round.
//
// The values every rank consumes are bit-identical to flat WZB2: the owner
// builds the payload the same way, the cache is rounded through the wire
// codec exactly once (idempotently re-applied on every later hop), and the
// CRC seal covers only the body, so a cached trailer survives re-sends.

// beltXchg is the spare belt id (< beltCount) tagging shard-exchange hops;
// its use field is the holder-ring hop index.
const beltXchg = 3

// groupedSaltBase salts the per-group sub-transports (group g uses
// groupedSaltBase+g), clear of the WeiPipeDP salts (replica id + 64+rank).
const groupedSaltBase = 200

// groupedState is the per-rank runtime of the grouped belt.
type groupedState struct {
	m     int // group size
	g     int // this rank's group index
	first int // global rank of the group's first member
	nG    int // number of groups
	grp   *comm.Group
	// cache maps chunk id -> this group's sealed, wire-rounded belt payload
	// for the current iteration. Filled by the exchange, immutable until
	// releaseCache, shared with the overlap engine's local ops.
	cache map[int][]float32
}

// NewWeiPipeGrouped builds the wzb2g trainer: WZB2 compute order with
// grouped weight belts. An unusable group size (not dividing the ring, or
// group count exceeding the salt space) falls back to the flat belt, which
// keeps elastic shrink-to-p−1 rebuilds working.
func NewWeiPipeGrouped(t Transport, cfg model.Config, opts Options) (Trainer, error) {
	w, err := NewWeiPipe(t, cfg, opts, WeiPipeZB2)
	if err != nil {
		return nil, err
	}
	if m := normalizeGroupSize(opts.GroupSize, t.Size()); m > 1 {
		if err := w.initGrouped(m); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// normalizeGroupSize resolves Options.GroupSize against ring size p.
// Returns 1 (flat belt) when grouping is impossible.
func normalizeGroupSize(gs, p int) int {
	if p < 2 {
		return 1
	}
	if gs == 0 {
		// Topology-friendly default: 4-rank servers when they fit, else pairs.
		switch {
		case p%4 == 0 && p >= 8:
			gs = 4
		case p%2 == 0:
			gs = 2
		default:
			return 1
		}
	}
	if gs <= 1 || p%gs != 0 {
		return 1
	}
	if groupedSaltBase+p/gs > 255 { // group salts must fit the tag salt field
		return 1
	}
	return gs
}

// initGrouped carves this rank's group sub-transport out of the ring and
// arms link-tier accounting.
func (w *WeiPipe) initGrouped(m int) error {
	p := w.t.Size()
	g := w.t.Rank() / m
	ranks := make([]int, m)
	for i := range ranks {
		ranks[i] = g*m + i
	}
	grp, err := comm.NewGroup(w.t, ranks, groupedSaltBase+g)
	if err != nil {
		return fmt.Errorf("pipeline: grouped belt: %w", err)
	}
	w.grouped = &groupedState{
		m:     m,
		g:     g,
		first: g * m,
		nG:    p / m,
		grp:   grp,
		cache: make(map[int][]float32, p/m),
	}
	w.stats.SetGroupSize(m)
	return nil
}

// holderLocal returns the group-local rank holding chunk c (every group
// holds every chunk; member i holds the chunks with c mod m == i).
func (gs *groupedState) holderLocal(c int) int { return c % gs.m }

// holderIn returns the global rank holding chunk c in group g.
func (gs *groupedState) holderIn(g, c int) int { return g*gs.m + c%gs.m }

// heldChunks returns the chunks this rank holds, ascending.
func (gs *groupedState) heldChunks(p, rank int) []int {
	i := rank - gs.first
	held := make([]int, 0, gs.nG)
	for c := i; c < p; c += gs.m {
		held = append(held, c)
	}
	return held
}

// releaseCache returns the iteration's cached payloads to the pool.
// Idempotent (deferred before the exchange runs, so aborts leak nothing).
func (gs *groupedState) releaseCache() {
	for c, buf := range gs.cache {
		comm.Release(buf)
		delete(gs.cache, c)
	}
}

// xchgTag tags holder-ring hop `hop` of chunk c's shard exchange.
func (w *WeiPipe) xchgTag(c, hop int) Tag {
	return Tag{Kind: comm.KindWeight, A: c, B: w.enc(beltXchg, hop)}
}

// cacheCodec resolves the wire codec chunk c's belt payloads travel under,
// mirroring initIntegrity's resolution but independent of Options.Integrity:
// the cache must hold wire-domain values even when seals are off.
func (w *WeiPipe) cacheCodec(tag Tag) comm.WireCodec {
	if cp, ok := w.t.(comm.CodecProvider); ok {
		return cp.WireCodec(tag)
	}
	if w.opts.BF16Wire {
		return comm.BeltBF16(tag)
	}
	return comm.CodecF32
}

// cachePayload rounds payload's body into the wire-value domain and caches
// it, taking ownership. Transport-received payloads are already rounded
// (RoundToWire is idempotent); the rounding matters for the owner's
// self-held copy, which never crossed a link.
func (w *WeiPipe) cachePayload(c int, payload []float32) {
	comm.RoundToWire(w.cacheCodec(w.xchgTag(c, 0)), w.beltBody(payload))
	w.grouped.cache[c] = payload
}

// groupedExchange runs the iteration-start shard exchange and the round-0
// belt injections. On return every held chunk is cached and the group's
// first rank can start consuming; errors leave the cache releasable.
func (w *WeiPipe) groupedExchange() error {
	g := w.grouped
	p, rank := w.t.Size(), w.t.Rank()

	// 1. Build the owned chunk's belt payload exactly as the flat injection
	// would (copy, optional fp16 rounding, seal), then hand it to its local
	// holder: cache it here, or send it as holder-ring hop 0.
	payload := comm.GetBuf(len(w.masterW) + w.pad)
	body := payload[:len(w.masterW)]
	copy(body, w.masterW)
	maybeRoundF16(w.opts, body)
	w.sealBelt(w.xchgTag(w.ownChunk, 0), payload)
	if h0 := g.holderIn(g.g, w.ownChunk); h0 == rank {
		// Owner is the holder: the chain's first hop is ours to send.
		if g.nG > 1 {
			if err := w.t.Send(g.holderIn((g.g+1)%g.nG, w.ownChunk), w.xchgTag(w.ownChunk, 1), payload); err != nil {
				comm.Release(payload)
				return err
			}
		}
		w.cachePayload(w.ownChunk, payload)
	} else {
		if err := comm.SendOwned(w.t, h0, w.xchgTag(w.ownChunk, 0), payload); err != nil {
			return err
		}
	}

	// 2. Receive every other held chunk: from its owner when it originates
	// in this group (hop 0), else from the previous group's holder; cache
	// and forward (store-and-forward) until the chain has visited all
	// groups. Chains of distinct chunks are independent, so a fixed receive
	// order cannot deadlock.
	for _, c := range g.heldChunks(p, rank) {
		ownerG := w.owner(c) / g.m
		hop := (g.g - ownerG + g.nG) % g.nG
		if hop == 0 && w.owner(c) == rank {
			continue // the self-cached owned chunk above
		}
		src := w.owner(c)
		if hop > 0 {
			src = g.holderIn((g.g-1+g.nG)%g.nG, c)
		}
		payload, err := w.beltRecv(src, w.xchgTag(c, hop))
		if err != nil {
			comm.Release(payload)
			return err
		}
		// Verify before caching or forwarding: a corrupt shard must neither
		// seed R rounds of local consumption nor travel on.
		if verr := w.verifyBelt(comm.SiteBelt, comm.KindWeight, c, payload); verr != nil {
			comm.Release(payload)
			return verr
		}
		if hop < g.nG-1 {
			if err := w.t.Send(g.holderIn((g.g+1)%g.nG, c), w.xchgTag(c, hop+1), payload); err != nil {
				comm.Release(payload)
				return err
			}
		}
		w.cachePayload(c, payload)
	}

	// 3. Round-0 injections: each held chunk enters both weight belts at
	// the group's first rank under the flat belt tags (use index = first's
	// microbatch index). Chunks held *by* the first rank are consumed
	// straight from the cache — no message at all.
	for _, c := range g.heldChunks(p, rank) {
		if g.holderLocal(c) == 0 {
			continue
		}
		for _, belt := range []int{beltFwd, beltBwd} {
			if err := g.grp.Send(0, Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, g.first)}, g.cache[c]); err != nil {
				return err
			}
		}
	}
	return nil
}

// recvBeltChunkGrouped is the grouped-belt analogue of recvBeltChunk: the
// weight belt lives on the group sub-transport, the group's first rank is
// fed by the chunk's holder (or its own cache), the last rank never
// forwards, and the holder paces round k+1's injection off its own round-k
// consumption.
func (w *WeiPipe) recvBeltChunkGrouped(belt, c, use int) error {
	g := w.grouped
	i := w.t.Rank() - g.first
	tag := Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, use)}
	var payload []float32
	var err error
	switch {
	case w.engine != nil:
		// The engine's plan covers every op, including cache-local ones.
		payload, err = w.engine.next(tag, w.stats)
	case i == 0 && g.holderLocal(c) == 0:
		// First rank holds the chunk itself: consume a pooled copy of the
		// cache, no message.
		cached := g.cache[c]
		payload = comm.GetBuf(len(cached))
		copy(payload, cached)
	default:
		src := i - 1
		if i == 0 {
			src = g.holderLocal(c)
		}
		payload, err = w.beltRecvOn(g.grp, src, tag)
	}
	if err != nil {
		comm.Release(payload)
		return err
	}
	if w.opts.BitFlip != nil {
		w.opts.BitFlip.Flip(w.t.Rank(), w.iter, FlipBeltWeight, w.beltBody(payload))
	}
	if verr := w.verifyBelt(comm.SiteBelt, comm.KindWeight, c, payload); verr != nil {
		comm.Release(payload)
		return verr
	}
	lo, hi := w.chunkRange(c)
	w.mdl.SetChunk(lo, hi, w.beltBody(payload))
	if w.engine == nil && i < g.m-1 {
		err = g.grp.Send(i+1, Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, use+1)}, payload)
	}
	comm.Release(payload)
	if err != nil {
		return err
	}
	// Holder re-injection: our own consumption of round k frees the belt
	// slot round k+1's injection will fill, so sending here bounds the
	// group's in-flight belt copies exactly as the flat ring's hop-by-hop
	// pacing does. Self-held chunks (holder == first) re-enter from the
	// cache without a message.
	if g.holderLocal(c) == i && i != 0 {
		if k := use / w.t.Size(); k+1 < w.curR {
			return g.grp.Send(0, Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, (k+1)*w.t.Size()+g.first)}, g.cache[c])
		}
	}
	return nil
}
