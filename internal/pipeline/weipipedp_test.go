package pipeline

import (
	"math"
	"sync"
	"testing"

	"weipipe/internal/comm"
)

// runHybrid trains WeiPipe×DP on `world` ranks in rings of wpSize.
func runHybrid(t *testing.T, world, wpSize, iters, n int, opts Options) ([]float64, []Trainer) {
	t.Helper()
	cl := comm.NewCluster(world)
	trainers := make([]Trainer, world)
	losses := make([]float64, world)
	errs := make([]error, world)
	batches := eqBatches(iters, n)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := NewWeiPipeDP(cl.Transport(r), eqCfg(), opts, WeiPipeInterleave, wpSize)
			if err != nil {
				errs[r] = err
				return
			}
			trainers[r] = tr
			for i := 0; i < iters; i++ {
				losses[r], errs[r] = tr.TrainIteration(batches(i))
				if errs[r] != nil {
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return losses, trainers
}

func TestWeiPipeDPMatchesSerial(t *testing.T) {
	const iters, n = 2, 12 // divisible by 2×2, 2×3 and 1×4 ring layouts
	wantLoss, wantW := serialReference(t, iters, n)
	for _, cfg := range []struct{ world, wp int }{{4, 2}, {6, 3}, {4, 4} /* degenerate: 1 replica */} {
		losses, trainers := runHybrid(t, cfg.world, cfg.wp, iters, n, eqOpts())
		for r := range losses {
			if math.Abs(losses[r]-wantLoss[iters-1]) > 1e-4 {
				t.Errorf("world=%d wp=%d rank %d: loss %.6f vs serial %.6f",
					cfg.world, cfg.wp, r, losses[r], wantLoss[iters-1])
			}
		}
		// assemble from replica 0's ring
		got := AssembleWeights(trainers[:cfg.wp])
		var maxd float64
		for i := range got {
			d := math.Abs(float64(got[i] - wantW[i]))
			if d > maxd {
				maxd = d
			}
		}
		if maxd > 5e-4 {
			t.Errorf("world=%d wp=%d: weights diverge by %g", cfg.world, cfg.wp, maxd)
		}
		// replicas agree: same chunk owner in replica 1 must match replica 0
		if cfg.world > cfg.wp {
			a := AssembleWeights(trainers[:cfg.wp])
			b := AssembleWeights(trainers[cfg.wp : 2*cfg.wp])
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("world=%d wp=%d: replicas diverged at weight %d", cfg.world, cfg.wp, i)
					break
				}
			}
		}
	}
}

func TestWeiPipeDPWithClipMatchesSerial(t *testing.T) {
	const iters, n = 1, 8
	opts := eqOpts()
	opts.ClipNorm = 0.05
	ref, err := RunCluster(StrategySerial, 1, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	_, trainers := runHybrid(t, 4, 2, iters, n, opts)
	got := AssembleWeights(trainers[:2])
	if d := maxAbsDiff(got, ref.Weights); d > 5e-4 {
		t.Errorf("clipped hybrid diverges by %g", d)
	}
}

func TestWeiPipeDPValidation(t *testing.T) {
	cl := comm.NewCluster(4)
	if _, err := NewWeiPipeDP(cl.Transport(0), eqCfg(), eqOpts(), WeiPipeInterleave, 3); err == nil {
		t.Fatal("indivisible ring size accepted")
	}
	// microbatch divisibility enforced at iteration time
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := NewWeiPipeDP(cl.Transport(r), eqCfg(), eqOpts(), WeiPipeInterleave, 2)
			if err != nil {
				errs[r] = err
				return
			}
			_, errs[r] = tr.TrainIteration(eqBatches(1, 6)(0)) // 6 % (2 replicas × 2) != 0
		}(r)
	}
	wg.Wait()
	for r := 0; r < 4; r++ {
		if errs[r] == nil {
			t.Fatalf("rank %d accepted indivisible microbatches", r)
		}
	}
}

func TestGroupTransportIsolation(t *testing.T) {
	// Two groups reusing identical tags must not cross-deliver.
	cl := comm.NewCluster(4)
	g0a, _ := comm.NewGroup(cl.Transport(0), []int{0, 1}, 1)
	g0b, _ := comm.NewGroup(cl.Transport(1), []int{0, 1}, 1)
	g1a, _ := comm.NewGroup(cl.Transport(2), []int{2, 3}, 2)
	g1b, _ := comm.NewGroup(cl.Transport(3), []int{2, 3}, 2)

	tag := comm.Tag{Kind: comm.KindCtl, A: 1, B: 2}
	g0a.Send(1, tag, []float32{10})
	g1a.Send(1, tag, []float32{20})
	v0, err := g0b.Recv(0, tag)
	if err != nil || v0[0] != 10 {
		t.Fatalf("group0 recv: %v %v", v0, err)
	}
	v1, err := g1b.Recv(0, tag)
	if err != nil || v1[0] != 20 {
		t.Fatalf("group1 recv: %v %v", v1, err)
	}
}

func TestGroupValidation(t *testing.T) {
	cl := comm.NewCluster(4)
	if _, err := comm.NewGroup(cl.Transport(0), []int{0, 1}, 0); err == nil {
		t.Fatal("zero salt accepted")
	}
	if _, err := comm.NewGroup(cl.Transport(0), []int{1, 2}, 1); err == nil {
		t.Fatal("non-member accepted")
	}
	if _, err := comm.NewGroup(cl.Transport(0), []int{0, 0}, 1); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	if _, err := comm.NewGroup(cl.Transport(0), []int{0, 9}, 1); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}
