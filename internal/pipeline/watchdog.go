package pipeline

import (
	"sort"
	"sync"
	"time"

	"weipipe/internal/comm"
)

// The straggler watchdog handles the failure mode heartbeats cannot: a
// rank that is alive — its link answers — but has stopped making progress.
// Every rank posts progress beacons (a timestamp on each transport
// operation, plus iteration/microbatch/phase from the WeiPipe stages); the
// watchdog samples them and flags any rank whose beacon has been stale for
// longer than a threshold derived from the trailing per-iteration median.
//
// The discriminator that prevents false positives in a ring is the waiting
// bit: a rank parked in Recv is the *victim* of a stall somewhere
// upstream, not its cause, so only ranks that are stale while NOT waiting
// (computing, or sleeping inside a Send — where an artificially delayed
// link puts them) are flagged. Ranks that finished the iteration and are
// parked at the driver barrier are marked idle and exempt. The threshold
// arms only once a full iteration has completed, so bring-up cannot trip
// it.

// WatchdogConfig tunes the straggler watchdog.
type WatchdogConfig struct {
	// Interval is the sampling period (default 10ms).
	Interval time.Duration
	// Multiple scales the trailing per-iteration median into the stall
	// threshold (default 8).
	Multiple float64
	// MinStall is the absolute floor of the stall threshold, guarding
	// against tiny medians on fast workloads (default 250ms).
	MinStall time.Duration
	// History bounds the trailing window of iteration durations the median
	// is computed over (default 8).
	History int
	// DeclareDead closes a flagged rank's transport, converting the hang
	// into a rank failure that flows through the same elastic repair (or
	// checkpoint restart) path as a crash.
	DeclareDead bool
	// OnStraggler is invoked (from the watchdog goroutine) once per rank
	// per attempt when it is flagged.
	OnStraggler func(StragglerReport)
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Millisecond
	}
	if c.Multiple <= 0 {
		c.Multiple = 8
	}
	if c.MinStall <= 0 {
		c.MinStall = 250 * time.Millisecond
	}
	if c.History <= 0 {
		c.History = 8
	}
	return c
}

// StragglerReport describes one flagged rank.
type StragglerReport struct {
	Rank  int
	Stall time.Duration // time since the rank's last progress beacon
	// Iteration, Microbatch and Phase are the rank's last reported
	// schedule position ('F', 'B' or 'W'; 0 when the trainer posts none).
	Iteration  int
	Microbatch int
	Phase      byte
	// Declared reports whether the watchdog killed the rank's transport.
	Declared bool
}

// ProgressBoard collects per-rank progress beacons. Beacon writes come
// from rank goroutines on every transport operation; the watchdog samples
// the board on its own goroutine.
type ProgressBoard struct {
	mu    sync.Mutex
	ranks []rankProgress
}

type rankProgress struct {
	lastBeat time.Time
	waiting  bool // parked in Recv: a stall victim, never a cause
	idle     bool // finished the iteration / between iterations
	iter, mb int
	phase    byte
}

// NewProgressBoard builds a board for n ranks, all idle.
func NewProgressBoard(n int) *ProgressBoard {
	b := &ProgressBoard{ranks: make([]rankProgress, n)}
	now := time.Now()
	for r := range b.ranks {
		b.ranks[r].lastBeat = now
		b.ranks[r].idle = true
	}
	return b
}

func (b *ProgressBoard) beat(rank int) {
	b.mu.Lock()
	b.ranks[rank].lastBeat = time.Now()
	b.mu.Unlock()
}

func (b *ProgressBoard) setWaiting(rank int, waiting bool) {
	b.mu.Lock()
	b.ranks[rank].waiting = waiting
	b.ranks[rank].lastBeat = time.Now()
	b.mu.Unlock()
}

// Beat stamps a liveness beacon for rank without changing its state — the
// hook long non-transport work (checkpoint capture, membership agreement,
// snapshot serialisation) uses so a rank that is legitimately busy off
// the wire is not mistaken for a straggler.
func (b *ProgressBoard) Beat(rank int) { b.beat(rank) }

// BeaconBarrier runs fn with rank marked as barrier-parked: the waiting
// bit exempts it from straggler detection (a rank parked at a coordinated
// barrier is a victim of whoever is slowest, never a cause), and periodic
// beats keep its beacon fresh for monitors that key on staleness alone —
// the cross-process supervisor's stall monitor among them. It returns
// fn's error. A nil board degrades to a plain call.
func BeaconBarrier(b *ProgressBoard, rank int, interval time.Duration, fn func() error) error {
	if b == nil {
		return fn()
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	b.setWaiting(rank, true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				b.beat(rank)
			}
		}
	}()
	err := fn()
	close(stop)
	wg.Wait()
	b.setWaiting(rank, false)
	return err
}

// SetIdle marks a rank as parked at the driver barrier (exempt from
// straggler detection) or active again.
func (b *ProgressBoard) SetIdle(rank int, idle bool) {
	b.mu.Lock()
	b.ranks[rank].idle = idle
	b.ranks[rank].lastBeat = time.Now()
	b.mu.Unlock()
}

// Post records a rank's schedule position (iteration, microbatch, phase).
func (b *ProgressBoard) Post(rank, iter, mb int, phase byte) {
	b.mu.Lock()
	p := &b.ranks[rank]
	p.iter, p.mb, p.phase = iter, mb, phase
	p.lastBeat = time.Now()
	b.mu.Unlock()
}

func (b *ProgressBoard) snapshot() []rankProgress {
	b.mu.Lock()
	out := make([]rankProgress, len(b.ranks))
	copy(out, b.ranks)
	b.mu.Unlock()
	return out
}

// progressSink is implemented by trainers that can post schedule-position
// beacons to a board.
type progressSink interface {
	SetProgressBoard(b *ProgressBoard, rank int)
}

// SetProgressBoard implements progressSink for WeiPipe.
func (w *WeiPipe) SetProgressBoard(b *ProgressBoard, rank int) {
	w.board = b
	w.boardRank = rank
}

// beaconTransport stamps the board on every transport operation and tracks
// the waiting-in-Recv state. It wraps OUTSIDE any fault-injection wrapper,
// so an injected send delay registers as non-waiting time — exactly the
// signature of a stalled-but-alive rank.
type beaconTransport struct {
	comm.Transport
	board *ProgressBoard
	rank  int
}

// WrapBeacon wraps t so its operations post progress beacons for rank.
func WrapBeacon(t comm.Transport, board *ProgressBoard, rank int) comm.Transport {
	return &beaconTransport{Transport: t, board: board, rank: rank}
}

func (b *beaconTransport) Send(dst int, tag Tag, payload []float32) error {
	b.board.beat(b.rank)
	err := b.Transport.Send(dst, tag, payload)
	b.board.beat(b.rank)
	return err
}

func (b *beaconTransport) Recv(src int, tag Tag) ([]float32, error) {
	b.board.setWaiting(b.rank, true)
	payload, err := b.Transport.Recv(src, tag)
	b.board.setWaiting(b.rank, false)
	return payload, err
}

func (b *beaconTransport) RecvTimeout(src int, tag Tag, d time.Duration) ([]float32, error) {
	b.board.setWaiting(b.rank, true)
	payload, err := b.Transport.RecvTimeout(src, tag, d)
	b.board.setWaiting(b.rank, false)
	return payload, err
}

// CommStats forwards the inner meter (the wrapper adds no traffic).
func (b *beaconTransport) CommStats() *comm.Stats {
	if m, ok := b.Transport.(comm.Meter); ok {
		return m.CommStats()
	}
	return comm.NewStats()
}

// WireCodec forwards the inner codec report (the wrapper never re-encodes).
func (b *beaconTransport) WireCodec(tag Tag) comm.WireCodec {
	if cp, ok := b.Transport.(comm.CodecProvider); ok {
		return cp.WireCodec(tag)
	}
	return comm.CodecF32
}

// watchdog samples a ProgressBoard and flags stragglers.
type watchdog struct {
	cfg   WatchdogConfig
	board *ProgressBoard
	kill  func(rank int)

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu        sync.Mutex
	durations []time.Duration
	flagged   map[int]bool
	killed    map[int]bool
}

// startWatchdog launches the sampling goroutine. kill is invoked (at most
// once per rank) when DeclareDead is set and a straggler is flagged; it
// must be safe to call from the watchdog goroutine.
func startWatchdog(cfg WatchdogConfig, board *ProgressBoard, kill func(int)) *watchdog {
	wd := &watchdog{
		cfg:     cfg.withDefaults(),
		board:   board,
		kill:    kill,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		flagged: make(map[int]bool),
		killed:  make(map[int]bool),
	}
	go wd.run()
	return wd
}

// NoteIteration feeds a completed iteration's wall-clock duration into the
// trailing median; the first call arms the detector.
func (wd *watchdog) NoteIteration(d time.Duration) {
	wd.mu.Lock()
	wd.durations = append(wd.durations, d)
	if len(wd.durations) > wd.cfg.History {
		wd.durations = wd.durations[len(wd.durations)-wd.cfg.History:]
	}
	wd.mu.Unlock()
}

// threshold returns the current stall threshold, or 0 while unarmed.
func (wd *watchdog) threshold() time.Duration {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	if len(wd.durations) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), wd.durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	th := time.Duration(float64(median) * wd.cfg.Multiple)
	if th < wd.cfg.MinStall {
		th = wd.cfg.MinStall
	}
	return th
}

// Killed returns the ranks the watchdog declared dead.
func (wd *watchdog) Killed() []int {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	out := make([]int, 0, len(wd.killed))
	for r := range wd.killed {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Stop terminates and joins the sampling goroutine (idempotent).
func (wd *watchdog) Stop() {
	wd.stopOnce.Do(func() { close(wd.stop) })
	<-wd.done
}

func (wd *watchdog) run() {
	defer close(wd.done)
	ticker := time.NewTicker(wd.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-wd.stop:
			return
		case <-ticker.C:
		}
		th := wd.threshold()
		if th == 0 {
			continue // unarmed until the first iteration completes
		}
		now := time.Now()
		for rank, p := range wd.board.snapshot() {
			if p.idle || p.waiting {
				continue
			}
			stall := now.Sub(p.lastBeat)
			if stall <= th {
				continue
			}
			wd.mu.Lock()
			already := wd.flagged[rank]
			wd.flagged[rank] = true
			declare := wd.cfg.DeclareDead && !wd.killed[rank]
			if declare {
				wd.killed[rank] = true
			}
			wd.mu.Unlock()
			if already {
				continue
			}
			if declare {
				wd.kill(rank)
			}
			if wd.cfg.OnStraggler != nil {
				wd.cfg.OnStraggler(StragglerReport{
					Rank:       rank,
					Stall:      stall,
					Iteration:  p.iter,
					Microbatch: p.mb,
					Phase:      p.phase,
					Declared:   declare,
				})
			}
		}
	}
}
