package pipeline

import (
	"fmt"

	"weipipe/internal/checkpoint"
	"weipipe/internal/comm"
	"weipipe/internal/model"
)

// Elastic repair: when ranks die mid-run, the survivors already hold every
// piece of the lost trainer state — each dead rank's owned chunk lives on
// as its predecessor's buddy shadow (buddy.go). Repair therefore never
// reads a checkpoint: at the failure barrier the driver agrees on the dead
// set (comm.AgreeMembership over the typed failure evidence), picks a
// consistent cut (the minimum committed step phase across survivors, with
// the one-deep rollback bridging ranks that already stepped past it),
// harvests a full-state snapshot from owners and buddies, and restarts the
// cluster at the new world size from that snapshot. Re-sharding is free:
// the snapshot is world-size-agnostic, so the existing RestoreSnapshot
// machinery re-partitions it across p−1 survivors (shrink) or p ranks
// including a freshly admitted spare (spare) exactly as it would for a
// checkpoint — but from live, zero-iteration-loss state.

// ElasticPolicy selects how RunResilient reacts to dead ranks.
type ElasticPolicy int

const (
	// ElasticNone restores from the last checkpoint (PR 2 behaviour).
	ElasticNone ElasticPolicy = iota
	// ElasticShrink repairs by re-sharding across the survivors (world
	// size drops by the number of dead ranks), rebuilding lost shards from
	// buddy replicas. Falls back to checkpoint restart when repair is
	// impossible (a buddy died too, or the shrunken world is invalid).
	ElasticShrink
	// ElasticSpare repairs by admitting standby spares (world size is
	// preserved while ResilientOptions.Spares last), seeding the
	// replacement ranks from the harvested snapshot; once spares run out
	// it shrinks, and as a last resort falls back to checkpoint restart.
	ElasticSpare
)

// String names the policy (CLI flag values).
func (e ElasticPolicy) String() string {
	switch e {
	case ElasticShrink:
		return "shrink"
	case ElasticSpare:
		return "spare"
	}
	return "none"
}

// RepairEvent describes one elastic repair RunResilient performed.
type RepairEvent struct {
	// Attempt is the attempt index that failed and was repaired.
	Attempt int
	// Iteration is the repair cut: the snapshot resumes from this many
	// completed iterations — no survivor progress is discarded beyond the
	// iteration in flight when the failure hit.
	Iteration int
	// Dead lists the lost old-world ranks (sorted).
	Dead []int
	// Policy is the repair actually applied (shrink or spare).
	Policy ElasticPolicy
	// OldSize and NewSize are the world sizes before and after repair.
	OldSize, NewSize int
	// Snapshot is the harvested full trainer state the new world started
	// from — assembled from surviving owners and buddy replicas, never
	// from disk.
	Snapshot *checkpoint.Snapshot
}

// chunkSource decides which survivor supplies chunk c's state once the
// dead set is agreed: the chunk's owner when it survived, the owner's
// buddy otherwise. fromBuddy tells the source which replica to export.
// This is the single provenance mapping both the in-process harvest and
// the cross-process wire harvest (rankrun.go) follow, so the two repair
// paths can never disagree about which rank serves a chunk.
func chunkSource(c int, m comm.Membership) (rank int, fromBuddy bool, err error) {
	p := m.OldSize
	owner := (c - 1 + p) % p
	if !m.IsDead(owner) {
		return owner, false, nil
	}
	buddy := (owner - 1 + p) % p
	if m.IsDead(buddy) {
		return 0, false, fmt.Errorf("pipeline: chunk %d unrecoverable: owner %d and buddy %d both dead", c, owner, buddy)
	}
	return buddy, true, nil
}

// newRepairSnapshot allocates the empty full-state snapshot a harvest
// fills in, cut at tCut completed iterations.
func newRepairSnapshot(mdl *model.Model, tCut int) *checkpoint.Snapshot {
	total := mdl.NumParams()
	return &checkpoint.Snapshot{
		Config:  mdl.Cfg,
		Weights: make([]float32, total),
		Sections: map[string][]float32{
			"adam.m": make([]float32, total),
			"adam.v": make([]float32, total),
		},
		Step: int64(tCut),
	}
}

// placeChunkState copies one chunk's harvested state into the snapshot,
// validating the extent against the model layout.
func placeChunkState(snap *checkpoint.Snapshot, ref *WeiPipe, offsets []int, c int, st StateExport) error {
	lo, hi := ref.chunkRange(c)
	want := offsets[hi] - offsets[lo]
	if len(st.W) != want || len(st.M) != want || len(st.V) != want {
		return fmt.Errorf("pipeline: chunk %d harvest covers %d params, want %d", c, len(st.W), want)
	}
	copy(snap.Weights[offsets[lo]:offsets[hi]], st.W)
	copy(snap.Sections["adam.m"][offsets[lo]:offsets[hi]], st.M)
	copy(snap.Sections["adam.v"][offsets[lo]:offsets[hi]], st.V)
	return nil
}

// harvestRepairSnapshot assembles a full-state snapshot from the
// survivors of a failed attempt: every chunk's fp32 weights, AdamW moments
// and step count come from the chunk's owner when it survived, or from the
// owner's buddy shadow otherwise. All state is taken at the repair cut —
// the minimum committed step phase across survivors — using the one-deep
// rollback for ranks that had already stepped past it. Returns an error
// when any lost chunk's buddy died too (checkpoint fallback territory) or
// when the trainers do not carry buddy replicas.
func harvestRepairSnapshot(trainers []Trainer, m comm.Membership) (*checkpoint.Snapshot, error) {
	if len(m.Dead) == 0 {
		return nil, fmt.Errorf("pipeline: harvest with no dead ranks")
	}
	p := m.OldSize
	wps := make([]*WeiPipe, p)
	for r, tr := range trainers {
		wp, ok := tr.(*WeiPipe)
		if !ok {
			return nil, fmt.Errorf("pipeline: elastic repair needs WeiPipe trainers, got %T", tr)
		}
		wps[r] = wp
	}
	survivors := m.Survivors()
	if len(survivors) == 0 {
		return nil, fmt.Errorf("pipeline: no survivors to harvest from")
	}
	// The repair cut: the lock-step driver bounds the iteration spread to
	// one, so every needed export is either live or one rollback away.
	tCut := wps[survivors[0]].CompletedStepPhases()
	for _, r := range survivors[1:] {
		if c := wps[r].CompletedStepPhases(); c < tCut {
			tCut = c
		}
	}

	ref := wps[survivors[0]]
	mdl := ref.Model()
	offsets := moduleOffsets(mdl)
	snap := newRepairSnapshot(mdl, tCut)
	optStep := -1
	for c := 0; c < p; c++ {
		src, fromBuddy, err := chunkSource(c, m)
		if err != nil {
			return nil, err
		}
		var st StateExport
		if fromBuddy {
			if sc, ok := wps[src].BuddyChunk(); !ok || sc != c {
				return nil, fmt.Errorf("pipeline: rank %d does not shadow chunk %d", src, c)
			}
			st, err = wps[src].ExportBuddyStateAt(tCut)
		} else {
			st, err = wps[src].ExportOwnedStateAt(tCut)
		}
		if err != nil {
			return nil, fmt.Errorf("pipeline: harvest chunk %d: %w", c, err)
		}
		if err := placeChunkState(snap, ref, offsets, c, st); err != nil {
			return nil, err
		}
		if optStep == -1 {
			optStep = st.Step
		} else if optStep != st.Step {
			return nil, fmt.Errorf("pipeline: inconsistent optimizer steps across chunks: %d vs %d", optStep, st.Step)
		}
	}
	snap.Sections["adam.step"] = []float32{float32(optStep)}
	// Spike-detector state at the cut: the verdict history is lock-step
	// identical across ranks, so any survivor whose phase count brackets the
	// cut can contribute it.
	for _, r := range survivors {
		ss, err := wps[r].exportSpikeAt(tCut)
		if err != nil {
			continue
		}
		if ss != nil {
			snap.Sections[spikeSection] = ss
		}
		break
	}
	return snap, nil
}

// planRepair decides how a failed attempt should continue under the
// elastic policy: the new world size, the snapshot to restore, and the
// event to report. ok=false means checkpoint fallback.
func planRepair(fail *attemptFailure, world, spares, modules, nextBatches int,
	policy ElasticPolicy, attempt int) (RepairEvent, int, bool) {

	if policy == ElasticNone || fail.repair == nil || len(fail.dead) == 0 {
		return RepairEvent{}, 0, false
	}
	newWorld := world - len(fail.dead)
	applied := ElasticShrink
	if policy == ElasticSpare {
		replaced := len(fail.dead)
		if replaced > spares {
			replaced = spares
		}
		newWorld += replaced
		if replaced > 0 {
			applied = ElasticSpare
		}
	}
	// WeiPipe validity at the new world size: a real ring, enough modules
	// to partition, and a divisible microbatch count.
	if newWorld < 2 || newWorld > modules || nextBatches%newWorld != 0 {
		return RepairEvent{}, 0, false
	}
	return RepairEvent{
		Attempt:   attempt,
		Iteration: int(fail.repair.Step),
		Dead:      fail.dead,
		Policy:    applied,
		OldSize:   world,
		NewSize:   newWorld,
		Snapshot:  fail.repair,
	}, newWorld, true
}
