package pipeline

import (
	"fmt"
	"os"

	"weipipe/internal/checkpoint"
	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
)

// Recoverable is implemented by trainers that can checkpoint and restore
// their full training state: the owned weights (via Owner + Model()), the
// optimizer moments of the owned range, and the iteration counter. It is
// what coordinated checkpoint/restart needs from each rank.
type Recoverable interface {
	Owner
	// ExportOptimState returns the optimizer step count and copies of the
	// first/second moment vectors covering exactly the owned module range
	// (flat, in module order).
	ExportOptimState() (step int64, m, v []float32)
	// RestoreOptimState loads a previously exported state (copied in).
	RestoreOptimState(step int64, m, v []float32) error
	// SetIteration resets the trainer's iteration counter, so wire tags and
	// collective salts agree across ranks after a restart.
	SetIteration(iter int)
}

// ExportOptimState implements Recoverable for WeiPipe (the owned chunk).
func (w *WeiPipe) ExportOptimState() (int64, []float32, []float32) {
	step, m, v := w.opt.ExportState()
	return int64(step), m, v
}

// RestoreOptimState implements Recoverable for WeiPipe.
func (w *WeiPipe) RestoreOptimState(step int64, m, v []float32) error {
	return w.opt.LoadState(int(step), m, v)
}

// SetIteration implements Recoverable for WeiPipe.
func (w *WeiPipe) SetIteration(iter int) { w.iter = iter }

// ExportOptimState implements Recoverable for the serial reference.
func (s *Serial) ExportOptimState() (int64, []float32, []float32) {
	step, m, v := s.opt.ExportState()
	return int64(step), m, v
}

// RestoreOptimState implements Recoverable for the serial reference.
func (s *Serial) RestoreOptimState(step int64, m, v []float32) error {
	return s.opt.LoadState(int(step), m, v)
}

// SetIteration implements Recoverable for the serial reference (stateless:
// the AdamW step count is the only counter).
func (s *Serial) SetIteration(int) {}

// moduleOffsets returns the flat-vector offset of every module boundary.
func moduleOffsets(mdl *model.Model) []int {
	offsets := make([]int, len(mdl.Modules)+1)
	for i := 0; i < len(mdl.Modules); i++ {
		offsets[i+1] = offsets[i] + mdl.ModuleParamSize(i)
	}
	return offsets
}

// CaptureSnapshot takes a coordinated checkpoint of a cluster: the
// assembled post-step weights plus the optimizer moments, each rank
// contributing its owned range, and the completed-iteration count (which
// doubles as the data cursor — iteration i always trains on batchesFn(i)).
// Every trainer must be quiescent (between iterations) and implement
// Recoverable.
func CaptureSnapshot(trainers []Trainer, completedIters int) (*checkpoint.Snapshot, error) {
	mdl := trainers[0].Model()
	offsets := moduleOffsets(mdl)
	total := mdl.NumParams()
	snap := &checkpoint.Snapshot{
		Config:  mdl.Cfg,
		Weights: AssembleWeights(trainers),
		Sections: map[string][]float32{
			"adam.m": make([]float32, total),
			"adam.v": make([]float32, total),
		},
		Step: int64(completedIters),
	}
	for _, tr := range trainers {
		rec, ok := tr.(Recoverable)
		if !ok {
			return nil, fmt.Errorf("pipeline: %T cannot checkpoint optimizer state", tr)
		}
		lo, hi := rec.OwnedModules()
		_, m, v := rec.ExportOptimState()
		want := offsets[hi] - offsets[lo]
		if len(m) != want || len(v) != want {
			return nil, fmt.Errorf("pipeline: %T optimizer state covers %d params, owned range holds %d",
				tr, len(m), want)
		}
		copy(snap.Sections["adam.m"][offsets[lo]:offsets[hi]], m)
		copy(snap.Sections["adam.v"][offsets[lo]:offsets[hi]], v)
	}
	return snap, nil
}

// RestoreSnapshot loads a coordinated checkpoint into a fresh cluster:
// every rank gets the full weights, its owned slice of the optimizer
// moments, and the snapshot's iteration counter. Training resumed from the
// restored state is bit-identical to a run that never stopped.
func RestoreSnapshot(snap *checkpoint.Snapshot, trainers []Trainer) error {
	offsets := moduleOffsets(trainers[0].Model())
	am, av := snap.Sections["adam.m"], snap.Sections["adam.v"]
	if am == nil || av == nil {
		return fmt.Errorf("pipeline: snapshot lacks optimizer moment sections")
	}
	for _, tr := range trainers {
		rec, ok := tr.(Recoverable)
		if !ok {
			return fmt.Errorf("pipeline: %T cannot restore optimizer state", tr)
		}
		if err := snap.ApplyTo(tr.Model()); err != nil {
			return err
		}
		if r, ok := tr.(interface{ ReloadMasterFromModel() }); ok {
			r.ReloadMasterFromModel()
		}
		lo, hi := rec.OwnedModules()
		if err := rec.RestoreOptimState(snap.Step, am[offsets[lo]:offsets[hi]], av[offsets[lo]:offsets[hi]]); err != nil {
			return err
		}
		rec.SetIteration(int(snap.Step))
	}
	return nil
}

// ResilientOptions configures RunResilient.
type ResilientOptions struct {
	// CheckpointEvery takes a coordinated checkpoint after every n-th
	// completed iteration (0 = only recover from scratch).
	CheckpointEvery int
	// CheckpointPath, when set, persists each checkpoint to disk (and an
	// existing file there seeds the run, resuming a previous process).
	CheckpointPath string
	// MaxRestarts bounds the recovery attempts; 0 means fail on the first
	// rank failure like a plain run.
	MaxRestarts int
	// WrapTransport, when set, wraps each rank's transport per attempt —
	// the hook the chaos tests use to inject rank crashes.
	WrapTransport func(attempt, rank int, t comm.Transport) comm.Transport
	// OnIteration is called at each completed iteration barrier.
	OnIteration func(iter int, loss float64)
	// LR, when set, is evaluated before every iteration and applied to each
	// trainer implementing LRSetter. Because it is a function of the
	// iteration index alone, replayed iterations after a restart see the
	// same learning rate.
	LR func(iter int) float64
}

// RunResilient is RunCluster with failure recovery: it drives `iters`
// lock-step iterations of strategy s on p ranks, takes coordinated
// checkpoints at the iteration barrier, and — when any rank fails (peer
// death, transport closure, injected crash) — tears the surviving ranks
// down cleanly, rebuilds the cluster on fresh transports and resumes from
// the last checkpoint. Because checkpoints capture weights, optimizer
// moments and the data cursor exactly, the recovered run's loss trajectory
// is bit-identical to an uninterrupted one.
//
// transports builds one endpoint per rank for each incarnation of the
// cluster (attempt 0 is the initial bring-up).
func RunResilient(s Strategy, p int, cfg model.Config, opts Options, iters int,
	batchesFn func(iter int) []data.Batch,
	transports func(attempt int) ([]comm.Transport, error),
	ropts ResilientOptions) (*ClusterResult, error) {

	losses := make([]float64, iters)
	var snap *checkpoint.Snapshot
	if ropts.CheckpointPath != "" {
		if _, err := os.Stat(ropts.CheckpointPath); err == nil {
			loaded, err := checkpoint.Load(ropts.CheckpointPath)
			if err != nil {
				return nil, fmt.Errorf("pipeline: resume checkpoint: %w", err)
			}
			if loaded.Sections["adam.m"] == nil || loaded.Sections["adam.v"] == nil {
				return nil, fmt.Errorf("pipeline: %s is a weight-only snapshot (no optimizer state); full-state resume needs a checkpoint written by RunResilient mid-run", ropts.CheckpointPath)
			}
			snap = loaded
		}
	}

	for attempt := 0; ; attempt++ {
		res, failErr := runAttempt(s, p, cfg, opts, iters, batchesFn, transports, ropts, attempt, losses, &snap)
		if failErr == nil {
			return res, nil
		}
		if attempt >= ropts.MaxRestarts {
			return nil, fmt.Errorf("pipeline: failed after %d restarts: %w", attempt, failErr)
		}
	}
}

// runAttempt runs one incarnation of the cluster: bring-up, (optional)
// restore, lock-step iterations with checkpointing, teardown. On a rank
// failure it closes every transport — unblocking ranks stuck in Recv — and
// waits for all rank goroutines before returning, so nothing leaks into
// the next attempt.
func runAttempt(s Strategy, p int, cfg model.Config, opts Options, iters int,
	batchesFn func(iter int) []data.Batch,
	transports func(attempt int) ([]comm.Transport, error),
	ropts ResilientOptions, attempt int,
	losses []float64, snap **checkpoint.Snapshot) (*ClusterResult, error) {

	ts, err := transports(attempt)
	if err != nil {
		return nil, fmt.Errorf("attempt %d bring-up: %w", attempt, err)
	}
	if len(ts) != p {
		return nil, fmt.Errorf("attempt %d: got %d transports for %d ranks", attempt, len(ts), p)
	}
	if ropts.WrapTransport != nil {
		for r := range ts {
			ts[r] = ropts.WrapTransport(attempt, r, ts[r])
		}
	}
	closeAll := func() {
		for _, t := range ts {
			t.Close()
		}
	}

	trainers := make([]Trainer, p)
	for r := 0; r < p; r++ {
		tr, err := New(s, ts[r], cfg, opts)
		if err != nil {
			closeAll()
			return nil, err
		}
		trainers[r] = tr
	}
	start := 0
	if *snap != nil {
		if err := RestoreSnapshot(*snap, trainers); err != nil {
			closeAll()
			return nil, err
		}
		start = int((*snap).Step)
	}

	type outcome struct {
		rank int
		loss float64
		err  error
	}
	for iter := start; iter < iters; iter++ {
		if ropts.LR != nil {
			lr := ropts.LR(iter)
			for _, tr := range trainers {
				if ls, ok := tr.(LRSetter); ok {
					ls.SetLR(lr)
				}
			}
		}
		batches := batchesFn(iter)
		results := make(chan outcome, p)
		for r := 0; r < p; r++ {
			go func(r int) {
				loss, err := trainers[r].TrainIteration(batches)
				results <- outcome{rank: r, loss: loss, err: err}
			}(r)
		}
		var firstErr error
		var iterLoss float64
		for got := 0; got < p; got++ {
			o := <-results
			if o.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("rank %d, iteration %d: %w", o.rank, iter, o.err)
					// Surviving ranks are blocked in Recv on a protocol that
					// can no longer complete: closing every endpoint fails
					// their receives and brings them home.
					closeAll()
				}
				continue
			}
			if o.rank == 0 {
				iterLoss = o.loss
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
		losses[iter] = iterLoss
		if ropts.OnIteration != nil {
			ropts.OnIteration(iter, iterLoss)
		}
		if ropts.CheckpointEvery > 0 && (iter+1)%ropts.CheckpointEvery == 0 && iter+1 < iters {
			ns, err := CaptureSnapshot(trainers, iter+1)
			if err != nil {
				closeAll()
				return nil, err
			}
			if ropts.CheckpointPath != "" {
				if err := checkpoint.Save(ropts.CheckpointPath, ns); err != nil {
					closeAll()
					return nil, err
				}
			}
			*snap = ns
		}
	}

	res := &ClusterResult{
		Losses:  append([]float64(nil), losses...),
		Weights: AssembleWeights(trainers),
	}
	for _, t := range ts {
		if m, ok := t.(comm.Meter); ok {
			res.Comm = append(res.Comm, m.CommStats())
		}
	}
	closeAll()
	return res, nil
}
