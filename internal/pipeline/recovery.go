package pipeline

import (
	"errors"
	"fmt"
	"os"
	"time"

	"weipipe/internal/checkpoint"
	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/trace"
)

// Recoverable is implemented by trainers that can checkpoint and restore
// their full training state: the owned weights (via Owner + Model()), the
// optimizer moments of the owned range, and the iteration counter. It is
// what coordinated checkpoint/restart needs from each rank.
type Recoverable interface {
	Owner
	// ExportOptimState returns the optimizer step count and copies of the
	// first/second moment vectors covering exactly the owned module range
	// (flat, in module order).
	ExportOptimState() (step int64, m, v []float32)
	// RestoreOptimState loads a previously exported state (copied in).
	RestoreOptimState(step int64, m, v []float32) error
	// SetIteration resets the trainer's iteration counter, so wire tags and
	// collective salts agree across ranks after a restart.
	SetIteration(iter int)
}

// ExportOptimState implements Recoverable for WeiPipe (the owned chunk).
func (w *WeiPipe) ExportOptimState() (int64, []float32, []float32) {
	step, m, v := w.opt.ExportState()
	return int64(step), m, v
}

// RestoreOptimState implements Recoverable for WeiPipe. Loading moments is
// a legitimate mutation of guarded resident state, so the integrity guards
// are re-armed eagerly — deferring the refresh to the next iteration entry
// would let a flip that lands in the window go unseen.
func (w *WeiPipe) RestoreOptimState(step int64, m, v []float32) error {
	if err := w.opt.LoadState(int(step), m, v); err != nil {
		return err
	}
	w.refreshResidentGuards()
	return nil
}

// SetIteration implements Recoverable for WeiPipe. Beyond the wire-tag
// counter it realigns the step-phase bookkeeping the elastic machinery
// keeps: a trainer restored to iteration i has, by definition, committed i
// step phases, holds no rollback, and its buddy shadow (if any) starts the
// same cut with no stashed retire gradient.
func (w *WeiPipe) SetIteration(iter int) {
	w.iter = iter
	w.ownerIters = iter
	w.rbValid = false
	if w.buddy != nil {
		w.buddy.iters = iter
		w.buddy.rbValid = false
		w.buddy.pendingLocal = false
	}
}

// ExportOptimState implements Recoverable for the serial reference.
func (s *Serial) ExportOptimState() (int64, []float32, []float32) {
	step, m, v := s.opt.ExportState()
	return int64(step), m, v
}

// RestoreOptimState implements Recoverable for the serial reference.
func (s *Serial) RestoreOptimState(step int64, m, v []float32) error {
	return s.opt.LoadState(int(step), m, v)
}

// SetIteration implements Recoverable for the serial reference (stateless:
// the AdamW step count is the only counter).
func (s *Serial) SetIteration(int) {}

// moduleOffsets returns the flat-vector offset of every module boundary.
func moduleOffsets(mdl *model.Model) []int {
	offsets := make([]int, len(mdl.Modules)+1)
	for i := 0; i < len(mdl.Modules); i++ {
		offsets[i+1] = offsets[i] + mdl.ModuleParamSize(i)
	}
	return offsets
}

// CaptureSnapshot takes a coordinated checkpoint of a cluster: the
// assembled post-step weights plus the optimizer moments, each rank
// contributing its owned range, and the completed-iteration count (which
// doubles as the data cursor — iteration i always trains on batchesFn(i)).
// The optimizer step count travels in its own "adam.step" section: with the
// non-finite guard, skipped steps make it run behind the iteration count,
// so the two must not be conflated. Every trainer must be quiescent
// (between iterations) and implement Recoverable.
func CaptureSnapshot(trainers []Trainer, completedIters int) (*checkpoint.Snapshot, error) {
	// The capture is one coordinated barrier; span it once, on the first
	// rank that carries a tracer, rather than once per rank.
	var ctr *trace.Tracer
	for _, tr := range trainers {
		if tj, ok := tr.(tracedRunner); ok && tj.tracer() != nil {
			ctr = tj.tracer()
			break
		}
	}
	span := ctr.Begin()
	defer ctr.End(span, trace.CodeCkpt, int64(completedIters), 0)
	mdl := trainers[0].Model()
	offsets := moduleOffsets(mdl)
	total := mdl.NumParams()
	snap := &checkpoint.Snapshot{
		Config:  mdl.Cfg,
		Weights: AssembleWeights(trainers),
		Sections: map[string][]float32{
			"adam.m": make([]float32, total),
			"adam.v": make([]float32, total),
		},
		Step: int64(completedIters),
	}
	optStep := int64(-1)
	for _, tr := range trainers {
		rec, ok := tr.(Recoverable)
		if !ok {
			return nil, fmt.Errorf("pipeline: %T cannot checkpoint optimizer state", tr)
		}
		lo, hi := rec.OwnedModules()
		step, m, v := rec.ExportOptimState()
		want := offsets[hi] - offsets[lo]
		if len(m) != want || len(v) != want {
			return nil, fmt.Errorf("pipeline: %T optimizer state covers %d params, owned range holds %d",
				tr, len(m), want)
		}
		copy(snap.Sections["adam.m"][offsets[lo]:offsets[hi]], m)
		copy(snap.Sections["adam.v"][offsets[lo]:offsets[hi]], v)
		if optStep == -1 {
			optStep = step
		} else if optStep != step {
			return nil, fmt.Errorf("pipeline: inconsistent optimizer steps across ranks: %d vs %d", optStep, step)
		}
	}
	snap.Sections["adam.step"] = []float32{float32(optStep)}
	// The spike-detector window evolves in lock-step on every rank; the
	// first trainer carrying one contributes the (identical) state, so a
	// resumed run's verdicts match an uninterrupted run's bit-for-bit.
	for _, tr := range trainers {
		if wp, ok := tr.(*WeiPipe); ok {
			ss, err := wp.exportSpikeAt(completedIters)
			if err != nil {
				return nil, err
			}
			if ss != nil {
				snap.Sections[spikeSection] = ss
			}
			break
		}
	}
	return snap, nil
}

// snapshotOptStep returns the optimizer step count a snapshot carries: the
// dedicated "adam.step" section when present, the iteration counter for
// older snapshots (correct whenever no step was ever guard-skipped).
func snapshotOptStep(snap *checkpoint.Snapshot) int64 {
	if s := snap.Sections["adam.step"]; len(s) == 1 {
		return int64(s[0])
	}
	return snap.Step
}

// RestoreSnapshot loads a coordinated checkpoint into a fresh cluster:
// every rank gets the full weights, its owned slice of the optimizer
// moments, and the snapshot's iteration counter; WeiPipe ranks running
// buddy replication additionally seed their shadow replica from the
// successor chunk's slice — which is how elastic repair re-arms the next
// failure's recovery without any extra traffic. Because the snapshot is a
// full flat state, the cluster restored into may have a different world
// size than the one that captured it (that is the elastic re-shard).
// Training resumed from the restored state is bit-identical to a run that
// never stopped.
func RestoreSnapshot(snap *checkpoint.Snapshot, trainers []Trainer) error {
	offsets := moduleOffsets(trainers[0].Model())
	am, av := snap.Sections["adam.m"], snap.Sections["adam.v"]
	if am == nil || av == nil {
		return fmt.Errorf("pipeline: snapshot lacks optimizer moment sections")
	}
	optStep := snapshotOptStep(snap)
	for _, tr := range trainers {
		rec, ok := tr.(Recoverable)
		if !ok {
			return fmt.Errorf("pipeline: %T cannot restore optimizer state", tr)
		}
		if err := snap.ApplyTo(tr.Model()); err != nil {
			return err
		}
		if r, ok := tr.(interface{ ReloadMasterFromModel() }); ok {
			r.ReloadMasterFromModel()
		}
		lo, hi := rec.OwnedModules()
		if err := rec.RestoreOptimState(optStep, am[offsets[lo]:offsets[hi]], av[offsets[lo]:offsets[hi]]); err != nil {
			return err
		}
		rec.SetIteration(int(snap.Step))
		if wp, ok := tr.(*WeiPipe); ok {
			wp.restoreSpikeState(snap.Sections[spikeSection])
		}
		if wp, ok := tr.(*WeiPipe); ok && wp.buddy != nil {
			c, _ := wp.BuddyChunk()
			blo, bhi := wp.chunkRange(c)
			st := StateExport{
				W:    snap.Weights[offsets[blo]:offsets[bhi]],
				M:    am[offsets[blo]:offsets[bhi]],
				V:    av[offsets[blo]:offsets[bhi]],
				Step: int(optStep),
			}
			if err := wp.SeedBuddyFromState(st, int(snap.Step)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ResilientOptions configures RunResilient.
type ResilientOptions struct {
	// CheckpointEvery takes a coordinated checkpoint after every n-th
	// completed iteration (0 = never; elastic repair still works, since it
	// recovers from buddy replicas, not checkpoints).
	CheckpointEvery int
	// CheckpointPath, when set, persists each checkpoint to disk (and an
	// existing file there seeds the run, resuming a previous process).
	CheckpointPath string
	// KeepCheckpoints rotates the on-disk checkpoint, retaining the last k
	// files (path, path.1, …, path.k−1). 0 or 1 keeps only the latest.
	KeepCheckpoints int
	// MaxRestarts bounds the recovery attempts; 0 means fail on the first
	// rank failure like a plain run.
	MaxRestarts int
	// Elastic selects how dead ranks are handled: checkpoint restart at the
	// same world size (ElasticNone), re-sharding across the survivors
	// (ElasticShrink), or admitting standby spares (ElasticSpare). Both
	// elastic policies repair from buddy replicas at the failure barrier —
	// no checkpoint is read — and fall back to checkpoint restart when
	// repair is impossible. Elastic repair forces Options.Buddy on.
	Elastic ElasticPolicy
	// Spares is the standby rank budget ElasticSpare may admit.
	Spares int
	// Watchdog, when set, runs a straggler watchdog over per-rank progress
	// beacons; see WatchdogConfig.
	Watchdog *WatchdogConfig
	// OnRepair is called after each successful elastic repair.
	OnRepair func(RepairEvent)
	// InitialSnapshot, when set, seeds the run from an in-memory snapshot
	// instead of CheckpointPath — the hook the repair equivalence tests use
	// to start a fresh cluster from a harvested repair state.
	InitialSnapshot *checkpoint.Snapshot
	// WrapTransport, when set, wraps each rank's transport per attempt —
	// the hook the chaos tests use to inject rank crashes. The straggler
	// watchdog's beacons wrap outside this, so injected delays register as
	// stalls.
	WrapTransport func(attempt, rank int, t comm.Transport) comm.Transport
	// OnIteration is called at each completed iteration barrier.
	OnIteration func(iter int, loss float64)
	// LR, when set, is evaluated before every iteration and applied to each
	// trainer implementing LRSetter. Because it is a function of the
	// iteration index alone, replayed iterations after a restart see the
	// same learning rate.
	LR func(iter int) float64
}

// attemptFailure is the evidence one failed attempt hands the restart loop:
// the triggering error, the iteration it struck, the agreed dead set, and —
// when the survivors' buddy replicas covered every lost shard — the
// harvested repair snapshot.
type attemptFailure struct {
	err    error
	iter   int
	dead   []int
	repair *checkpoint.Snapshot
}

// RunResilient is RunCluster with failure recovery: it drives `iters`
// lock-step iterations of strategy s on p ranks and — when any rank fails
// (peer death, transport closure, injected crash, watchdog declaration) —
// tears the survivors down cleanly and continues. How it continues is the
// ElasticPolicy's choice: ElasticNone rebuilds the same world from the last
// coordinated checkpoint; ElasticShrink and ElasticSpare repair at the
// failure barrier from the survivors' buddy replicas — re-sharding across
// p−1 ranks or admitting a spare — losing at most the iteration in flight
// and reading nothing from disk. Either way the continued run's loss
// trajectory is bit-identical to an uninterrupted run of the same
// world-size history.
//
// transports builds one endpoint per rank for each incarnation of the
// cluster (attempt 0 is the initial bring-up); elastic repair changes the
// requested size between attempts.
func RunResilient(s Strategy, p int, cfg model.Config, opts Options, iters int,
	batchesFn func(iter int) []data.Batch,
	transports func(attempt, size int) ([]comm.Transport, error),
	ropts ResilientOptions) (*ClusterResult, error) {

	losses := make([]float64, iters)
	snap := ropts.InitialSnapshot
	if snap == nil && ropts.CheckpointPath != "" {
		if _, err := os.Stat(ropts.CheckpointPath); err == nil {
			loaded, err := checkpoint.Load(ropts.CheckpointPath)
			if err != nil {
				return nil, fmt.Errorf("pipeline: resume checkpoint: %w", err)
			}
			if loaded.Sections["adam.m"] == nil || loaded.Sections["adam.v"] == nil {
				return nil, fmt.Errorf("pipeline: %s is a weight-only snapshot (no optimizer state); full-state resume needs a checkpoint written by RunResilient mid-run", ropts.CheckpointPath)
			}
			snap = loaded
		}
	}

	world := p
	spares := ropts.Spares
	var repairs []RepairEvent
	for attempt := 0; ; attempt++ {
		res, fail := runAttempt(s, world, cfg, opts, iters, batchesFn, transports, ropts, attempt, losses, &snap)
		if fail == nil {
			res.Repairs = repairs
			return res, nil
		}
		if attempt >= ropts.MaxRestarts {
			return nil, fmt.Errorf("pipeline: failed after %d restarts: %w", attempt, fail.err)
		}
		if fail.repair != nil {
			bIter := int(fail.repair.Step)
			if bIter >= iters {
				bIter = iters - 1
			}
			modules := len(model.Build(cfg).Modules)
			if ev, newWorld, ok := planRepair(fail, world, spares, modules,
				len(batchesFn(bIter)), ropts.Elastic, attempt); ok {
				if ev.Policy == ElasticSpare {
					spares -= ev.NewSize - (world - len(fail.dead))
				}
				snap = ev.Snapshot
				world = newWorld
				repairs = append(repairs, ev)
				if ropts.OnRepair != nil {
					ropts.OnRepair(ev)
				}
			}
		}
		// No viable repair: retry at the current world size from the last
		// checkpoint (or from scratch), exactly the pre-elastic behaviour.
	}
}

// runAttempt runs one incarnation of the cluster: bring-up, (optional)
// restore, lock-step iterations with checkpointing, teardown. On a rank
// failure it closes every transport — unblocking ranks stuck in Recv — and
// waits for all rank goroutines before returning, so nothing leaks into
// the next attempt; it then gathers the failure evidence (typed dead-rank
// errors plus watchdog declarations) and, under an elastic policy,
// harvests the repair snapshot from the quiescent survivors.
func runAttempt(s Strategy, p int, cfg model.Config, opts Options, iters int,
	batchesFn func(iter int) []data.Batch,
	transports func(attempt, size int) ([]comm.Transport, error),
	ropts ResilientOptions, attempt int,
	losses []float64, snap **checkpoint.Snapshot) (*ClusterResult, *attemptFailure) {

	ts, err := transports(attempt, p)
	if err != nil {
		return nil, &attemptFailure{err: fmt.Errorf("attempt %d bring-up: %w", attempt, err)}
	}
	if len(ts) != p {
		for _, t := range ts {
			t.Close()
		}
		return nil, &attemptFailure{err: fmt.Errorf("attempt %d: got %d transports for %d ranks", attempt, len(ts), p)}
	}
	if ropts.WrapTransport != nil {
		for r := range ts {
			ts[r] = ropts.WrapTransport(attempt, r, ts[r])
		}
	}
	var board *ProgressBoard
	if ropts.Watchdog != nil {
		board = NewProgressBoard(p)
		for r := range ts {
			ts[r] = WrapBeacon(ts[r], board, r)
		}
	}
	closeAll := func() {
		for _, t := range ts {
			t.Close()
		}
	}

	optsRank := opts
	if ropts.Elastic != ElasticNone {
		// Repair needs every shard replicated; the buddy belt rides along
		// off the critical path, so forcing it on costs no blocking sends.
		optsRank.Buddy = true
	}
	trainers := make([]Trainer, p)
	for r := 0; r < p; r++ {
		tr, err := New(s, ts[r], cfg, optsRank)
		if err != nil {
			closeAll()
			return nil, &attemptFailure{err: err}
		}
		if board != nil {
			if ps, ok := tr.(progressSink); ok {
				ps.SetProgressBoard(board, r)
			}
		}
		trainers[r] = tr
	}
	start := 0
	if *snap != nil {
		if err := RestoreSnapshot(*snap, trainers); err != nil {
			closeAll()
			return nil, &attemptFailure{err: err}
		}
		start = int((*snap).Step)
		if attempt > 0 {
			// Mark the recovery restore on the timeline: attempt index and
			// the iteration training resumes from.
			for _, tr := range trainers {
				if tj, ok := tr.(tracedRunner); ok && tj.tracer() != nil {
					tj.tracer().Instant(trace.CodeRepair, int64(attempt), int64(start))
					break
				}
			}
		}
	}

	var wd *watchdog
	if ropts.Watchdog != nil {
		wd = startWatchdog(*ropts.Watchdog, board, func(rank int) {
			// Declaring a straggler dead = closing its endpoint: its next
			// transport op fails and the failure flows through the same
			// typed-error repair path as a crash.
			ts[rank].Close()
		})
		defer wd.Stop()
	}

	type outcome struct {
		rank int
		loss float64
		err  error
	}
	for iter := start; iter < iters; iter++ {
		if ropts.LR != nil {
			lr := ropts.LR(iter)
			for _, tr := range trainers {
				if ls, ok := tr.(LRSetter); ok {
					ls.SetLR(lr)
				}
			}
		}
		batches := batchesFn(iter)
		iterStart := time.Now()
		results := make(chan outcome, p)
		for r := 0; r < p; r++ {
			if board != nil {
				board.SetIdle(r, false)
			}
			go func(r int) {
				loss, err := trainers[r].TrainIteration(batches)
				if board != nil {
					board.SetIdle(r, true)
				}
				results <- outcome{rank: r, loss: loss, err: err}
			}(r)
		}
		var firstErr error
		var dead []int
		var iterLoss float64
		for got := 0; got < p; got++ {
			o := <-results
			if o.err != nil {
				if errors.Is(o.err, comm.ErrCrashed) {
					dead = append(dead, o.rank)
				}
				if errors.Is(o.err, comm.ErrIntegrity) {
					// Detected silent corruption: the detecting rank's
					// resident state is suspect, so repair treats it exactly
					// like a crashed rank — its shard is rebuilt from the
					// buddy replica (or the checkpoint), never trusted.
					dead = append(dead, o.rank)
				}
				if r, ok := comm.DeadPeer(o.err); ok {
					dead = append(dead, r)
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("rank %d, iteration %d: %w", o.rank, iter, o.err)
					// Surviving ranks are blocked in Recv on a protocol that
					// can no longer complete: closing every endpoint fails
					// their receives and brings them home.
					closeAll()
				}
				continue
			}
			if o.rank == 0 {
				iterLoss = o.loss
			}
		}
		if firstErr != nil {
			fail := &attemptFailure{err: firstErr, iter: iter}
			if wd != nil {
				wd.Stop()
				dead = append(dead, wd.Killed()...)
			}
			if ropts.Elastic != ElasticNone && len(dead) > 0 {
				m := comm.AgreeMembership(p, dead)
				fail.dead = m.Dead
				if hs, err := harvestRepairSnapshot(trainers, m); err == nil {
					fail.repair = hs
				}
				// A failed harvest (buddy died too, non-WeiPipe strategy)
				// leaves repair nil: the restart loop falls back to the last
				// checkpoint.
			}
			return nil, fail
		}
		if wd != nil {
			wd.NoteIteration(time.Since(iterStart))
		}
		losses[iter] = iterLoss
		if ropts.OnIteration != nil {
			ropts.OnIteration(iter, iterLoss)
		}
		if ropts.CheckpointEvery > 0 && (iter+1)%ropts.CheckpointEvery == 0 && iter+1 < iters {
			// The capture (and any disk write below) is a long off-wire
			// barrier; beacon through it so a slow checkpoint never reads as
			// a stalled rank.
			var ns *checkpoint.Snapshot
			err := BeaconBarrier(board, 0, 0, func() error {
				var cerr error
				ns, cerr = CaptureSnapshot(trainers, iter+1)
				return cerr
			})
			if err != nil {
				closeAll()
				return nil, &attemptFailure{err: err, iter: iter}
			}
			if ropts.CheckpointPath != "" {
				if err := checkpoint.SaveRotate(ropts.CheckpointPath, ns, ropts.KeepCheckpoints); err != nil {
					closeAll()
					return nil, &attemptFailure{err: err, iter: iter}
				}
			}
			*snap = ns
		}
	}

	res := &ClusterResult{
		Losses:       append([]float64(nil), losses...),
		Weights:      AssembleWeights(trainers),
		SkippedSteps: maxSkipped(trainers),
		SpikeSteps:   maxSpikes(trainers),
	}
	for _, t := range ts {
		if m, ok := t.(comm.Meter); ok {
			res.Comm = append(res.Comm, m.CommStats())
		}
	}
	closeAll()
	return res, nil
}

// tracedRunner is implemented by runners that carry a runtime tracer; the
// checkpoint barrier uses it to attribute its span without widening the
// Trainer interface.
type tracedRunner interface{ tracer() *trace.Tracer }

func (s *Serial) tracer() *trace.Tracer  { return s.tr }
func (d *DP) tracer() *trace.Tracer      { return d.tr }
func (f *FSDP) tracer() *trace.Tracer    { return f.tr }
func (p *ppBase) tracer() *trace.Tracer  { return p.tr }
func (w *WeiPipe) tracer() *trace.Tracer { return w.tr }
