package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"weipipe/internal/comm"
)

// The elastic contract: a rank killed mid-run is repaired at the iteration
// barrier from the survivors' buddy replicas — no checkpoint file is read —
// and training continues at the new world size on exactly the trajectory a
// fresh cluster of that size would produce from the repaired state. The
// buddy maintenance that makes this possible must be invisible on the
// critical path: identical losses, weights and KindWeight/KindGrad message
// counts whether it is on or off.

// buddySendsPerIteration measures rank 1's per-iteration send count with
// buddy replication active (an elastic policy forces it on), so crash
// schedules in elastic tests land in the intended iteration.
func buddySendsPerIteration(t *testing.T, p, iters, n int) int64 {
	t.Helper()
	var probe *comm.FaultTransport
	_, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			Elastic: ElasticShrink,
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if rank == 1 {
					probe = comm.NewFaultTransport(tr, comm.FaultConfig{})
					return probe
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("buddy probe run: %v", err)
	}
	_, _, _, _, sends := probe.Injected()
	if sends == 0 || sends%int64(iters) != 0 {
		t.Fatalf("buddy probe counted %d sends over %d iterations", sends, iters)
	}
	return sends / int64(iters)
}

// Buddy replication must not perturb training (bit-identical losses and
// weights) and must not add a single message to the KindWeight/KindGrad
// critical path — its traffic rides exclusively on KindBuddy.
func TestBuddyReplicationOffCriticalPath(t *testing.T) {
	const p, iters, n = 3, 3, 6
	off, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	opts := eqOpts()
	opts.Buddy = true
	on, err := RunCluster(StrategyWZB2, p, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "buddy on vs off", on.Losses, off.Losses, on.Weights, off.Weights)
	for r := 0; r < p; r++ {
		for _, k := range []comm.Kind{comm.KindWeight, comm.KindGrad} {
			if got, want := on.Comm[r].SentMsgs(k), off.Comm[r].SentMsgs(k); got != want {
				t.Errorf("rank %d: %d %v messages with buddy on, %d off — buddy leaked onto the critical path",
					r, got, k, want)
			}
		}
	}
	if off.TotalComm().SentMsgs(comm.KindBuddy) != 0 {
		t.Error("buddy-off run sent KindBuddy traffic")
	}
	if on.TotalComm().SentMsgs(comm.KindBuddy) == 0 {
		t.Error("buddy-on run sent no KindBuddy traffic; replication was a no-op")
	}
}

// chaosTCPFactory builds per-attempt TCP clusters with seeded frame-level
// chaos, at whatever world size the elastic runner asks for.
func chaosTCPFactory(tcpOpts comm.TCPOptions) func(attempt, size int) ([]comm.Transport, error) {
	return func(attempt, size int) ([]comm.Transport, error) {
		addrs, err := comm.LoopbackAddrs(size)
		if err != nil {
			return nil, err
		}
		out := make([]comm.Transport, size)
		errs := make([]error, size)
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr, err := comm.DialTCPOpts(r, addrs, tcpOpts)
				if err != nil {
					errs[r] = err
					return
				}
				out[r] = tr
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				for _, tr := range out {
					if tr != nil {
						tr.Close()
					}
				}
				return nil, err
			}
		}
		return out, nil
	}
}

// The headline elastic test: WZB2 on 3 ranks over real TCP with frame-level
// chaos, one rank killed mid-iteration, repaired by shrinking to 2 ranks
// from buddy replicas — with checkpointing disabled, so the repair provably
// reads nothing from disk. From the repair cut on, losses and final weights
// must be bit-identical to a fresh 2-rank cluster started from the repaired
// state.
func TestElasticShrinkRepairWZB2ChaosTCP(t *testing.T) {
	const p, iters, n = 3, 6, 6
	perIter := buddySendsPerIteration(t, p, iters, n)
	base := runtime.NumGoroutine()

	tcpOpts := comm.TCPOptions{
		DialTimeout:       10 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		PeerDeadTimeout:   2 * time.Second,
		RetransmitTimeout: 40 * time.Millisecond,
		ReconnectBackoff:  5 * time.Millisecond,
		Chaos: &comm.ChaosConfig{
			Seed:      2025,
			Drop:      0.06,
			Dup:       0.06,
			Reorder:   0.05,
			Corrupt:   0.03,
			DelayProb: 0.05,
			MaxDelay:  2 * time.Millisecond,
		},
	}

	var crashed *comm.FaultTransport
	var ev RepairEvent
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		chaosTCPFactory(tcpOpts), ResilientOptions{
			MaxRestarts: 1,
			Elastic:     ElasticShrink,
			OnRepair:    func(e RepairEvent) { ev = e },
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if attempt == 0 && rank == 1 {
					crashed = comm.NewFaultTransport(tr, comm.FaultConfig{
						CrashAtSend: perIter*3 + perIter/2,
					})
					return crashed
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("elastic chaos run failed: %v", err)
	}
	if !crashed.Crashed() {
		t.Fatal("scheduled rank kill never fired; the test proved nothing")
	}
	if len(res.Repairs) != 1 {
		t.Fatalf("expected exactly one repair, got %d", len(res.Repairs))
	}
	if ev.OldSize != 3 || ev.NewSize != 2 || ev.Policy != ElasticShrink {
		t.Fatalf("repair %d->%d policy %v, want 3->2 shrink", ev.OldSize, ev.NewSize, ev.Policy)
	}
	if len(ev.Dead) != 1 || ev.Dead[0] != 1 {
		t.Fatalf("dead set %v, want [1]", ev.Dead)
	}
	// The crash struck mid-iteration 3; the repair cut must keep every
	// completed iteration (losing at most the one in flight).
	if ev.Iteration < 3 || ev.Iteration >= iters {
		t.Fatalf("repair cut at iteration %d; survivors had completed at least 3", ev.Iteration)
	}

	// Reference: a fresh 2-rank cluster started from the harvested snapshot.
	ref, err := RunResilient(StrategyWZB2, ev.NewSize, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(ev.NewSize), ResilientOptions{
			Elastic:         ElasticShrink,
			InitialSnapshot: ev.Snapshot,
		})
	if err != nil {
		t.Fatalf("reference run from repair snapshot: %v", err)
	}
	bitIdentical(t, "shrink repair vs fresh cluster",
		res.Losses[ev.Iteration:], ref.Losses[ev.Iteration:], res.Weights, ref.Weights)

	// The chaos must actually have exercised the reliability machinery.
	f := res.TotalComm().TotalFaults()
	if f.Retransmits+f.DupFrames+f.CorruptFrames == 0 {
		t.Error("chaos run recorded no transport faults; injection was a no-op")
	}
	waitPipelineGoroutines(t, base)
}

// Spare admission: the world size is preserved by seeding a standby rank
// from the harvested snapshot, again without reading any checkpoint.
func TestElasticSpareRepairInproc(t *testing.T) {
	const p, iters, n = 2, 6, 4
	perIter := buddySendsPerIteration(t, p, iters, n)
	base := runtime.NumGoroutine()

	var crashed *comm.FaultTransport
	var ev RepairEvent
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			MaxRestarts: 1,
			Elastic:     ElasticSpare,
			Spares:      1,
			OnRepair:    func(e RepairEvent) { ev = e },
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if attempt == 0 && rank == 1 {
					crashed = comm.NewFaultTransport(tr, comm.FaultConfig{
						CrashAtSend: perIter*2 + perIter/2,
					})
					return crashed
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("spare repair run failed: %v", err)
	}
	if !crashed.Crashed() {
		t.Fatal("scheduled rank kill never fired")
	}
	if len(res.Repairs) != 1 || ev.Policy != ElasticSpare || ev.OldSize != 2 || ev.NewSize != 2 {
		t.Fatalf("repair %+v, want one 2->2 spare admission", ev)
	}

	ref, err := RunResilient(StrategyWZB2, ev.NewSize, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(ev.NewSize), ResilientOptions{
			Elastic:         ElasticSpare,
			InitialSnapshot: ev.Snapshot,
		})
	if err != nil {
		t.Fatalf("reference run from repair snapshot: %v", err)
	}
	bitIdentical(t, "spare repair vs fresh cluster",
		res.Losses[ev.Iteration:], ref.Losses[ev.Iteration:], res.Weights, ref.Weights)
	waitPipelineGoroutines(t, base)
}

// killSwitch fails every transport operation with ErrCrashed once armed —
// a deterministic way to kill several ranks at the same iteration barrier,
// which CrashAtSend cannot guarantee (the first crash may unblock the
// second rank into a non-crash error first).
type killSwitch struct {
	comm.Transport
	dead *atomic.Bool
}

func (k *killSwitch) Send(dst int, tag comm.Tag, data []float32) error {
	if k.dead.Load() {
		return comm.ErrCrashed
	}
	return k.Transport.Send(dst, tag, data)
}

func (k *killSwitch) Recv(src int, tag comm.Tag) ([]float32, error) {
	if k.dead.Load() {
		return nil, comm.ErrCrashed
	}
	return k.Transport.Recv(src, tag)
}

func (k *killSwitch) RecvTimeout(src int, tag comm.Tag, d time.Duration) ([]float32, error) {
	if k.dead.Load() {
		return nil, comm.ErrCrashed
	}
	return k.Transport.RecvTimeout(src, tag, d)
}

// When a chunk's owner AND its buddy die in the same iteration, elastic
// repair is impossible; the run must fall back to checkpoint restart at the
// original world size and still land on the reference trajectory.
func TestElasticDoubleDeathFallsBackToCheckpoint(t *testing.T) {
	const p, iters, n = 3, 6, 6
	base := runtime.NumGoroutine()
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}

	// Chunk 0 is owned by rank 2 and shadowed by rank 1: killing both at
	// the iteration-3 barrier makes chunk 0 unrecoverable from replicas.
	var dead atomic.Bool
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			CheckpointEvery: 2,
			MaxRestarts:     1,
			Elastic:         ElasticShrink,
			OnIteration: func(iter int, loss float64) {
				if iter == 2 {
					dead.Store(true)
				}
			},
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if attempt == 0 && (rank == 1 || rank == 2) {
					return &killSwitch{Transport: tr, dead: &dead}
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("double-death run failed to recover: %v", err)
	}
	if len(res.Repairs) != 0 {
		t.Fatalf("repair reported despite owner+buddy death: %+v", res.Repairs)
	}
	bitIdentical(t, "double-death checkpoint fallback", res.Losses, ref.Losses, res.Weights, ref.Weights)
	waitPipelineGoroutines(t, base)
}
