package pipeline

import (
	"fmt"
	"time"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// FSDP is fully-sharded data parallelism in the ZeRO-3 style the paper
// benchmarks through DeepSpeed: every rank owns a 1/P shard of each
// module's parameters, gradients and optimizer state. Parameters are
// materialised module-by-module with a ring all-gather immediately before
// each forward and each backward use and dropped afterwards; gradients are
// ring reduce-scattered so each rank keeps only its shard. Data flow is
// data-parallel: each rank trains its round-robin share of the
// microbatches.
type FSDP struct {
	t       Transport
	mdl     *model.Model // weight buffer; authoritative state is the shards
	shards  [][]float32  // per-module owned parameter shard (fp32 master)
	opts    []*optim.AdamW
	o       Options
	seq     int
	arena   *tensor.Arena
	skipped int

	// stats is the transport's meter when it exposes one (nil otherwise);
	// gather waits are recorded into it as belt stall so FSDP's exposed
	// communication is measured the same way as WeiPipe's.
	stats *comm.Stats

	// tr is this rank's runtime tracer (nil when tracing is off).
	tr *trace.Tracer
}

// NewFSDP builds an FSDP trainer for this rank.
func NewFSDP(t Transport, cfg model.Config, o Options) (*FSDP, error) {
	if o.Scaler != nil {
		o.Scaler = o.Scaler.Clone()
	}
	mdl := model.Build(cfg)
	p := t.Size()
	r := t.Rank()
	f := &FSDP{t: t, mdl: mdl, o: o, arena: tensor.NewArena(), tr: o.Trace.Rank(t.Rank())}
	if m, ok := t.(comm.Meter); ok {
		f.stats = m.CommStats()
	}
	for i := range mdl.Modules {
		size := mdl.ModuleParamSize(i)
		full := make([]float32, size)
		mdl.FlattenChunk(i, i+1, full)
		rg := comm.ShardRanges(size, p)[r]
		shard := make([]float32, rg[1]-rg[0])
		copy(shard, full[rg[0]:rg[1]])
		f.shards = append(f.shards, shard)
		f.opts = append(f.opts, optim.NewAdamW(len(shard), o.Adam))
	}
	return f, nil
}

// Model implements Trainer.
func (f *FSDP) Model() *model.Model { return f.mdl }

// shardLens returns every rank's shard length for module i.
func (f *FSDP) shardLens(i int) []int {
	p := f.t.Size()
	lens := make([]int, p)
	for q, rg := range comm.ShardRanges(f.mdl.ModuleParamSize(i), p) {
		lens[q] = rg[1] - rg[0]
	}
	return lens
}

// gatherModule all-gathers module i's weights into the local buffer.
func (f *FSDP) gatherModule(i int) error {
	f.seq++
	span := f.tr.Begin()
	start := time.Now()
	full, err := comm.AllGather(f.t, f.shards[i], f.shardLens(i), f.seq)
	f.tr.End(span, trace.CodeStall, int64(comm.KindWeight), int64(i))
	f.stats.RecordBeltStallKind(comm.KindWeight, time.Since(start))
	if err != nil {
		return err
	}
	f.mdl.SetChunk(i, i+1, full)
	comm.Release(full)
	return nil
}

// gatherItem is one prefetched module's gathered weights.
type gatherItem struct {
	full []float32
	err  error
}

// gatherStream prefetches module all-gathers one ahead of compute
// (Options.Overlap): a background goroutine runs the ring collectives for
// the microbatch loop's known gather sequence while the compute thread
// works on the previous module. The goroutine is the only transport user
// during the loop (so the collectives stay well-ordered), and the compute
// thread installs each buffer into the model at its consumption point (so
// model mutation stays single-threaded). Sequence numbers are assigned from
// the same counter in the same order as blocking mode, making the two modes
// indistinguishable on the wire.
type gatherStream struct {
	ch   chan gatherItem
	quit chan struct{}
}

// startGatherStream arms the prefetch goroutine for nMB local microbatches
// (forward gathers 0..n-1 then backward gathers n-1..0, per microbatch).
// The caller must pair it with stop().
func (f *FSDP) startGatherStream(nMB int) *gatherStream {
	nMods := len(f.mdl.Modules)
	plan := make([]int, 0, 2*nMods*nMB)
	for mb := 0; mb < nMB; mb++ {
		for i := 0; i < nMods; i++ {
			plan = append(plan, i)
		}
		for i := nMods - 1; i >= 0; i-- {
			plan = append(plan, i)
		}
	}
	s := &gatherStream{ch: make(chan gatherItem, 1), quit: make(chan struct{})}
	base := f.seq
	f.seq += len(plan) // reserve the stream's sequence range up front
	go func() {
		defer close(s.ch)
		for j, i := range plan {
			full, err := comm.AllGather(f.t, f.shards[i], f.shardLens(i), base+j+1)
			if err != nil {
				full = nil
			}
			select {
			case <-s.quit:
				comm.Release(full)
				return
			default:
			}
			select {
			case s.ch <- gatherItem{full: full, err: err}:
			case <-s.quit:
				comm.Release(full)
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return s
}

// nextGather installs the stream's next prefetched module (which must be
// module i — the stream replays the same order as the compute loop).
func (f *FSDP) nextGather(s *gatherStream, i int) error {
	span := f.tr.Begin()
	start := time.Now()
	it, ok := <-s.ch
	f.tr.End(span, trace.CodeStall, int64(comm.KindWeight), int64(i))
	f.stats.RecordBeltStallKind(comm.KindWeight, time.Since(start))
	if !ok {
		return fmt.Errorf("pipeline: gather stream exhausted")
	}
	if it.err != nil {
		return it.err
	}
	f.mdl.SetChunk(i, i+1, it.full)
	comm.Release(it.full)
	return nil
}

// stop tears the stream down, draining staged buffers back to the pool. It
// never blocks; a goroutine still inside a collective bails at its next
// quit check or when the transport closes.
func (s *gatherStream) stop() {
	close(s.quit)
	for {
		select {
		case it, ok := <-s.ch:
			if !ok {
				return
			}
			comm.Release(it.full)
		default:
			return
		}
	}
}

// TrainIteration implements Trainer.
func (f *FSDP) TrainIteration(batches []data.Batch) (float64, error) {
	p := f.t.Size()
	if len(batches)%p != 0 {
		return 0, fmt.Errorf("pipeline: FSDP needs microbatch count divisible by %d ranks", p)
	}
	mine := data.Split(batches, p)[f.t.Rank()]
	if f.o.Scaler != nil {
		f.mdl.Head.LossScale = float32(f.o.Scaler.Scale())
	}
	nMods := len(f.mdl.Modules)
	grads := newGrads(f.mdl)
	var lossSum float64

	// With Overlap the microbatch loop's gathers run one ahead of compute on
	// a background stream; without it every gather blocks in place. Both
	// paths install identical bytes under identical sequence numbers.
	var stream *gatherStream
	if f.o.Overlap {
		stream = f.startGatherStream(len(mine))
		defer stream.stop()
	}
	gather := func(i int) error {
		if stream != nil {
			return f.nextGather(stream, i)
		}
		return f.gatherModule(i)
	}

	for mi, b := range mine {
		mb := int64(mi)
		caches := newCaches(0, nMods, b.G(), b.S(), f.arena)

		// Forward: gather each module just in time; the buffer is
		// overwritten by the next gather, which is FSDP's "free".
		var x *tensor.Tensor
		for i := 0; i < nMods; i++ {
			if err := gather(i); err != nil {
				return 0, err
			}
			span := f.tr.Begin()
			var l float64
			x, l = forwardModule(f.mdl, i, x, b, caches[i])
			f.tr.End(span, trace.CodeF, mb, int64(i))
			lossSum += l
			if f.o.Recompute && i != 0 && i != nMods-1 {
				caches[i].DropAllButX()
			}
		}

		// Backward: gather again before each module's B+W pass.
		var dy *tensor.Tensor
		for i := nMods - 1; i >= 0; i-- {
			if err := gather(i); err != nil {
				return 0, err
			}
			c := caches[i]
			span := f.tr.Begin()
			if f.o.Recompute && i != 0 && i != nMods-1 {
				f.mdl.Modules[i].Forward(c.X, c)
			}
			dy = f.mdl.Modules[i].BackwardInput(dy, c)
			f.tr.End(span, trace.CodeB, mb, int64(i))
			span = f.tr.Begin()
			f.mdl.Modules[i].BackwardParams(c, grads[i])
			f.tr.End(span, trace.CodeW, mb, int64(i))
		}
		f.arena.Reset()
	}

	// Reduce-scatter each module's gradient into the owned shards.
	optSpan := f.tr.Begin()
	invN := gradFactor(f.o, len(batches))
	gradShards := make([][]float32, nMods)
	for i := 0; i < nMods; i++ {
		full := make([]float32, f.mdl.ModuleParamSize(i))
		flattenGradsRange(f.mdl, grads, i, i+1, full)
		f.seq++
		shard, err := comm.ReduceScatterSum(f.t, full, f.seq)
		if err != nil {
			return 0, err
		}
		for j := range shard {
			shard[j] *= invN
		}
		gradShards[i] = shard
	}
	// Global-norm clip and non-finite guard across all shards (one scalar
	// all-reduce gives every rank the identical verdict), then step.
	var sumSq float64
	if needGlobalSumSq(f.o) {
		var local float64
		for _, s := range gradShards {
			local += sumSquares(s)
		}
		f.seq++
		var err error
		sumSq, err = comm.AllReduceScalarSum(f.t, local, f.seq)
		if err != nil {
			return 0, err
		}
	}
	if guardActive(f.o) && !finiteSum(sumSq) {
		f.skipped++
		if f.o.Scaler != nil {
			f.o.Scaler.Observe(false)
		}
	} else {
		if c := clipScale(f.o, sumSq); c != 1 {
			for _, s := range gradShards {
				for j := range s {
					s[j] *= c
				}
			}
		}
		for i := 0; i < nMods; i++ {
			f.opts[i].Step(f.shards[i], gradShards[i])
		}
		if f.o.Scaler != nil {
			f.o.Scaler.Observe(true)
		}
	}

	f.tr.End(optSpan, trace.CodeOpt, int64(f.seq), 0)

	// Refresh the local buffer so Model() exposes post-step weights.
	for i := 0; i < nMods; i++ {
		if err := f.gatherModule(i); err != nil {
			return 0, err
		}
	}

	f.seq++
	sum, err := comm.AllReduceScalarSum(f.t, lossSum, f.seq)
	if err != nil {
		return 0, err
	}
	return sum / float64(len(batches)), nil
}

var _ Trainer = (*FSDP)(nil)
