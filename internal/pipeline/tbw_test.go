package pipeline

import (
	"testing"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
)

// These tests verify the paper's central communication claim *functionally*
// — not through the cost model but by metering real bytes on the wire:
//
//   - WeiPipe's traffic is weights and weight-gradients only, and its
//     volume is independent of microbatch size G and sequence length S;
//   - activation-passing pipelines ship activations whose volume scales
//     linearly with G·S;
//   - FSDP's traffic is collective and scales with parameters × microbatch
//     count.

// runMetered trains one iteration and returns the aggregated meter.
func runMetered(t *testing.T, s Strategy, p int, cfg model.Config, g, seq, n int) *comm.Stats {
	t.Helper()
	cfg.MaxSeq = seq
	batches := data.Microbatches(5, n, g, cfg.Vocab, seq)
	res, err := RunCluster(s, p, cfg, eqOpts(), 1, func(int) []data.Batch { return batches })
	if err != nil {
		t.Fatal(err)
	}
	return res.TotalComm()
}

func tbwCfg() model.Config {
	return model.Config{Vocab: 13, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 16, Seed: 1}
}

func TestWeiPipeShipsNoActivations(t *testing.T) {
	st := runMetered(t, StrategyWeiPipeInterleave, 2, tbwCfg(), 2, 8, 4)
	if st.SentBytes(comm.KindAct) != 0 || st.SentBytes(comm.KindActGrad) != 0 {
		t.Fatalf("weipipe shipped activations: %s", st)
	}
	if st.SentBytes(comm.KindWeight) == 0 || st.SentBytes(comm.KindGrad) == 0 {
		t.Fatalf("weipipe shipped no weights/grads: %s", st)
	}
}

func TestWeiPipeWireVolumeIndependentOfGAndS(t *testing.T) {
	base := runMetered(t, StrategyWeiPipeInterleave, 2, tbwCfg(), 2, 8, 4)
	bigG := runMetered(t, StrategyWeiPipeInterleave, 2, tbwCfg(), 4, 8, 4)
	bigS := runMetered(t, StrategyWeiPipeInterleave, 2, tbwCfg(), 2, 16, 4)

	wb := st3(base)
	if st3(bigG) != wb {
		t.Fatalf("weight traffic changed with G: %d vs %d", st3(bigG), wb)
	}
	if st3(bigS) != wb {
		t.Fatalf("weight traffic changed with S: %d vs %d", st3(bigS), wb)
	}
}

// st3 sums the weight-pipeline kinds.
func st3(s *comm.Stats) int64 {
	return s.SentBytes(comm.KindWeight) + s.SentBytes(comm.KindGrad)
}

func TestActivationPassingScalesWithGS(t *testing.T) {
	base := runMetered(t, Strategy1F1B, 2, tbwCfg(), 2, 8, 4)
	bigG := runMetered(t, Strategy1F1B, 2, tbwCfg(), 4, 8, 4)
	bigS := runMetered(t, Strategy1F1B, 2, tbwCfg(), 2, 16, 4)

	if base.SentBytes(comm.KindWeight) != 0 || base.SentBytes(comm.KindGrad) != 0 {
		t.Fatalf("1f1b shipped weights: %s", base)
	}
	actBase := base.SentBytes(comm.KindAct) + base.SentBytes(comm.KindActGrad)
	actBigG := bigG.SentBytes(comm.KindAct) + bigG.SentBytes(comm.KindActGrad)
	actBigS := bigS.SentBytes(comm.KindAct) + bigS.SentBytes(comm.KindActGrad)
	if actBigG != 2*actBase {
		t.Fatalf("doubling G: activation traffic %d, want %d", actBigG, 2*actBase)
	}
	if actBigS != 2*actBase {
		t.Fatalf("doubling S: activation traffic %d, want %d", actBigS, 2*actBase)
	}
}

func TestWeiPipePerTurnVolumeMatchesAnalysis(t *testing.T) {
	// §4.2.2: per belt use the wire carries 2 weight chunks + 1 gradient
	// chunk. Total per iteration: uses × 3 × chunk bytes (+ injections and
	// retirements, which add ~2 chunks per owner). Verify within 15%.
	cfg := tbwCfg()
	const p, n = 2, 4
	st := runMetered(t, StrategyWeiPipeInterleave, p, cfg, 2, 8, n)

	mdl := model.Build(cfg)
	bounds := mdl.Partition(p)
	var chunkBytes int64
	for _, b := range bounds {
		chunkBytes += int64(mdl.ChunkSize(b[0], b[1])) * 4
	}
	// belts: fwd hops (uses−1 per chunk) + bwd hops + D hops + 2 injections
	// + 1 retirement per chunk ≈ 3·uses·avgChunk
	uses := int64(n)                                      // per chunk: uses = N (belt use count) — hops ≈ uses−1
	approx := 3 * uses * chunkBytes / int64(p) * int64(p) // = 3·uses·Σchunk/p·p
	got := st3(st)
	lo, hi := approx*85/100, approx*125/100
	if got < lo || got > hi {
		t.Fatalf("weight traffic %d outside [%d, %d] (analysis ≈ %d)", got, lo, hi, approx)
	}
}

func TestFSDPTrafficIsCollective(t *testing.T) {
	st := runMetered(t, StrategyFSDP, 2, tbwCfg(), 2, 8, 4)
	if st.SentBytes(comm.KindColl) == 0 {
		t.Fatalf("fsdp sent no collective traffic: %s", st)
	}
	if st.SentBytes(comm.KindAct) != 0 || st.SentBytes(comm.KindWeight) != 0 {
		t.Fatalf("fsdp sent P2P tensor traffic: %s", st)
	}
	// Collective traffic grows with local microbatch count (per-mb gathers).
	more := runMetered(t, StrategyFSDP, 2, tbwCfg(), 2, 8, 8)
	if more.SentBytes(comm.KindColl) <= st.SentBytes(comm.KindColl) {
		t.Fatal("fsdp collective traffic did not grow with microbatches")
	}
}

func TestStatsAggregation(t *testing.T) {
	a := comm.NewStats()
	b := comm.NewStats()
	cl := comm.NewCluster(2)
	tr := cl.Transport(0)
	tr.Send(1, comm.Tag{Kind: comm.KindWeight}, make([]float32, 10))
	tr.Send(1, comm.Tag{Kind: comm.KindGrad}, make([]float32, 5))
	a.Add(cl.Stats(0))
	b.Add(cl.Stats(0))
	b.Add(cl.Stats(0))
	if a.SentBytes(comm.KindWeight) != 40 || a.SentMsgs(comm.KindWeight) != 1 {
		t.Fatalf("meter wrong: %s", a)
	}
	if b.SentBytes(comm.KindWeight) != 80 {
		t.Fatalf("aggregation wrong: %s", b)
	}
	if a.TotalSentBytes() != 60 {
		t.Fatalf("total = %d", a.TotalSentBytes())
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}
