package pipeline

import (
	"fmt"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// DP is plain data parallelism: every rank holds a full model replica and a
// full optimizer replica, processes its round-robin share of the
// microbatches, and ring-all-reduces the flat gradient before every rank
// takes the identical optimizer step.
type DP struct {
	t       Transport
	mdl     *model.Model
	opt     *optim.AdamW
	opts    Options
	seq     int // collective sequence counter (identical across ranks)
	arena   *tensor.Arena
	skipped int
	tr      *trace.Tracer
}

// NewDP builds a DP trainer for this rank.
func NewDP(t Transport, cfg model.Config, opts Options) (*DP, error) {
	if opts.Scaler != nil {
		opts.Scaler = opts.Scaler.Clone()
	}
	mdl := model.Build(cfg)
	return &DP{
		t:     t,
		mdl:   mdl,
		opt:   optim.NewAdamW(mdl.NumParams(), opts.Adam),
		opts:  opts,
		arena: tensor.NewArena(),
		tr:    opts.Trace.Rank(t.Rank()),
	}, nil
}

// Model implements Trainer.
func (d *DP) Model() *model.Model { return d.mdl }

// TrainIteration implements Trainer.
func (d *DP) TrainIteration(batches []data.Batch) (float64, error) {
	p := d.t.Size()
	if len(batches)%p != 0 {
		return 0, fmt.Errorf("pipeline: DP needs microbatch count divisible by %d ranks", p)
	}
	mine := data.Split(batches, p)[d.t.Rank()]
	if d.opts.Scaler != nil {
		d.mdl.Head.LossScale = float32(d.opts.Scaler.Scale())
	}
	nMods := len(d.mdl.Modules)
	grads := newGrads(d.mdl)
	var lossSum float64
	for mi, b := range mine {
		mb := int64(mi)
		caches := newCaches(0, nMods, b.G(), b.S(), d.arena)
		span := d.tr.Begin()
		_, loss := forwardRange(d.mdl, 0, nMods, nil, b, caches, d.opts.Recompute)
		d.tr.End(span, trace.CodeF, mb, 0)
		lossSum += loss
		var dy *tensor.Tensor
		span = d.tr.Begin()
		backwardRangeB(d.mdl, 0, nMods, dy, caches, d.opts.Recompute)
		d.tr.End(span, trace.CodeB, mb, 0)
		span = d.tr.Begin()
		backwardRangeW(d.mdl, 0, nMods, caches, grads)
		d.tr.End(span, trace.CodeW, mb, 0)
		d.arena.Reset()
	}

	optSpan := d.tr.Begin()
	total := d.mdl.NumParams()
	flatG := make([]float32, total)
	flattenGradsRange(d.mdl, grads, 0, nMods, flatG)
	d.seq++
	if err := comm.RingAllReduceSum(d.t, flatG, d.seq); err != nil {
		return 0, err
	}
	inv := gradFactor(d.opts, len(batches))
	for i := range flatG {
		flatG[i] *= inv
	}
	// The all-reduced gradient is replicated, so Σg² is already a global
	// quantity — every rank computes the same value and makes the same
	// clip/skip decision with no extra collective.
	var sumSq float64
	if needGlobalSumSq(d.opts) {
		sumSq = sumSquares(flatG)
	}
	if guardActive(d.opts) && !finiteSum(sumSq) {
		d.skipped++
		if d.opts.Scaler != nil {
			d.opts.Scaler.Observe(false)
		}
	} else {
		if c := clipScale(d.opts, sumSq); c != 1 {
			for i := range flatG {
				flatG[i] *= c
			}
		}
		flatW := make([]float32, total)
		d.mdl.FlattenChunk(0, nMods, flatW)
		d.opt.Step(flatW, flatG)
		d.mdl.SetChunk(0, nMods, flatW)
		if d.opts.Scaler != nil {
			d.opts.Scaler.Observe(true)
		}
	}

	d.tr.End(optSpan, trace.CodeOpt, int64(d.seq), 0)

	d.seq++
	sum, err := comm.AllReduceScalarSum(d.t, lossSum, d.seq)
	if err != nil {
		return 0, err
	}
	return sum / float64(len(batches)), nil
}

var _ Trainer = (*DP)(nil)
