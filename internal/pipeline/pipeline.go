// Package pipeline implements the functional distributed-training runtimes:
// the paper's WeiPipe variants (Naive, Interleave, WZB1, WZB2) and every
// baseline it compares against (GPipe, 1F1B, ZB1, ZB2, FSDP/ZeRO-3, DP),
// plus the serial reference they are all checked against.
//
// Ranks are goroutines (or processes, over the TCP transport) communicating
// only through comm.Transport. Every strategy consumes the same global
// microbatch list and performs one optimizer step per iteration; the test
// suite asserts that all of them land on the same post-step weights as the
// serial reference within floating-point tolerance.
package pipeline

import (
	"fmt"
	"math"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/nn"
	"weipipe/internal/optim"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// Strategy names a parallel training strategy.
type Strategy string

// The implemented strategies.
const (
	StrategySerial            Strategy = "serial"
	StrategyDP                Strategy = "dp"
	StrategyFSDP              Strategy = "fsdp"
	StrategyGPipe             Strategy = "gpipe"
	Strategy1F1B              Strategy = "1f1b"
	StrategyZB1               Strategy = "zb1"
	StrategyZB2               Strategy = "zb2"
	StrategyWeiPipeNaive      Strategy = "weipipe-naive"
	StrategyWeiPipeInterleave Strategy = "weipipe-interleave"
	StrategyWZB1              Strategy = "wzb1"
	StrategyWZB2              Strategy = "wzb2"
	// StrategyWZB2G is WZB2 with topology-aware grouped weight belts: the
	// two weight belts circulate only inside contiguous rank groups
	// (Options.GroupSize ranks each, the fast fabric), and each chunk
	// crosses the slow inter-group links exactly once per iteration via a
	// deduplicated holder-ring shard exchange. Bit-identical to WZB2.
	StrategyWZB2G Strategy = "wzb2g"
)

// Strategies lists every distributed strategy (excluding the serial
// reference), in the order the benchmarks report them.
func Strategies() []Strategy {
	return []Strategy{
		Strategy1F1B, StrategyZB1, StrategyZB2, StrategyFSDP,
		StrategyWeiPipeInterleave, StrategyWeiPipeNaive,
		StrategyWZB1, StrategyWZB2, StrategyWZB2G, StrategyGPipe, StrategyDP,
	}
}

// Options configures a trainer.
type Options struct {
	// Optimizer hyperparameters (AdamW).
	Adam optim.AdamWConfig
	// Recompute enables activation checkpointing: interior modules keep
	// only their input between forward and backward and re-run forward
	// before the B pass. Ignored by the ZB strategies (the paper applies
	// recomputation to all strategies except zero-bubble ones).
	Recompute bool
	// MixedPrecision rounds weight and gradient payloads through fp16 and
	// activation-gradient payloads through bf16 at every send, emulating
	// the paper's wire format. Off in equivalence tests.
	MixedPrecision bool
	// ClipNorm, when positive, clips the global (cross-rank) gradient norm
	// to this value before the optimizer step. Distributed strategies
	// combine their local partial norms with a scalar all-reduce.
	ClipNorm float64
	// Scaler, when non-nil, enables dynamic loss scaling (the fp16
	// mixed-precision guard): the loss gradient is multiplied by the scale
	// at its source, gradients are unscaled before the step, and steps
	// with non-finite gradients are skipped while the scale halves.
	// Supported by the serial reference and the distributed runners (which
	// fold the non-finite check into a global scalar all-reduce so every
	// rank skips or steps identically).
	Scaler *optim.LossScaler
	// GuardNonFinite skips the optimizer step (without touching any loss
	// scale) whenever the global gradient is non-finite, so a single NaN/Inf
	// cannot poison the weights. The check rides the same scalar all-reduce
	// global-norm clipping uses, so every rank makes the identical decision.
	GuardNonFinite bool
	// Overlap enables the asynchronous belt engine on WeiPipe trainers (and
	// gather prefetch on FSDP): a background receiver goroutine prefetches
	// the next belt chunk into a second buffer and relays it downstream
	// while the compute thread works on the current one, and gradient belts
	// retire through buffer donation instead of a copying send. The engine
	// preserves the exact dataflow — same payload values, same reduction
	// order — so overlapped training is bit-identical to the blocking path;
	// the equivalence suite asserts it for every strategy. Strategies
	// without a belt (activation-passing pipelines, DP, serial) ignore the
	// flag. All ranks of a run must agree on it.
	Overlap bool
	// BF16Wire selects the bf16 belt codec on the transport-facing helpers
	// (RunCluster and the CLIs): weight/grad belt payloads travel as 2-byte
	// bfloat16, halving belt bytes at a bounded rounding cost. Unlike the
	// other options it configures the *transport*, not the runner — trainers
	// built directly on a caller-owned Transport inherit whatever codec that
	// transport was created with.
	BF16Wire bool
	// Buddy enables buddy replication on WeiPipe trainers: each rank
	// additionally shadows its ring successor's owned chunk (fp32 weights,
	// AdamW moments and step count) by replaying the successor's optimizer
	// step from a dual-delivered copy of the retired gradient. The copy is
	// sent asynchronously by the retiring worker, adding no blocking send —
	// and no KindWeight/KindGrad message — to the training critical path.
	// Ignored by non-WeiPipe strategies and single-rank rings.
	Buddy bool
	// Trace, when non-nil, receives runtime spans from every rank: F/B/W
	// compute stages, optimizer steps, exposed-communication stalls, belt
	// engine prefetch/relay activity and checkpoint barriers. All ranks of
	// a run share the one Set (each pulls its own tracer by rank), so the
	// per-rank timelines align on a common monotonic epoch. Nil means
	// tracing off, which costs one pointer test per instrumentation site.
	Trace *trace.Set
	// Integrity enables end-to-end silent-data-corruption defense on
	// WeiPipe trainers: every belt chunk carries a CRC32 trailer sealed at
	// its origin over the canonical wire-value domain and verified at
	// consumption (surviving relay hops and the lossy bf16/f16 codecs),
	// and the resident fp32 master weights and optimizer moments are
	// guarded by checksums refreshed after each legitimate mutation. A
	// mismatch surfaces as a typed *comm.IntegrityError, which RunResilient
	// treats as lost rank state — the same buddy-harvest/checkpoint repair
	// path a crash takes. Off by default: the belt hot path then carries no
	// trailer, runs no checks and allocates nothing extra. All ranks of a
	// run must agree on it (payload sizes change).
	Integrity bool
	// SpikeWindow, when positive, arms the windowed grad-norm spike
	// detector: the globally agreed Σg² of each step is compared against
	// the median + SpikeMAD·(1.4826·MAD) envelope of the last SpikeWindow
	// accepted norms. Detected spikes are counted (see SpikeCounter) and,
	// with SpikeSkip, skip the optimizer step exactly like the non-finite
	// guard — the verdict is global, so every rank and buddy shadow agrees.
	SpikeWindow int
	// SpikeMAD is the spike verdict threshold in robust standard
	// deviations; ≤ 0 defaults to 6.
	SpikeMAD float64
	// SpikeSkip makes detected spikes skip the optimizer step instead of
	// only counting them.
	SpikeSkip bool
	// GroupSize partitions the ring into contiguous blocks of this many
	// ranks for the grouped-belt strategy (wzb2g) and for link-tier
	// traffic accounting. 0 picks a topology-friendly default (4 when the
	// ring divides by 4, else 2, else flat); a value that does not divide
	// the ring size falls back to the flat belt (which keeps elastic
	// shrink-to-p−1 working). All ranks of a run must agree on it.
	GroupSize int
	// P2PMode selects the transport's per-link packaging policy (see
	// comm.P2PMode): frame (the zero value, the baseline protocol),
	// batched burst envelopes, duplex ctl lanes, or the auto controller.
	// Like BF16Wire it configures the *transport*, not the runner —
	// RunCluster records it on the in-process fabric and the CLIs pass it
	// to DialTCPOpts; trainers built on a caller-owned Transport inherit
	// that transport's mode. Every mode is bit-identical to frame by
	// construction (modes change wire packaging, never delivery order or
	// payload bytes), which the mode-matrix suite asserts.
	P2PMode comm.P2PMode
	// BitFlip, when non-nil, is the seeded in-memory fault injector of the
	// chaos tier: it flips scheduled bits in master weights, optimizer
	// moments and staged belt payloads as the schedule's (rank, iteration)
	// points pass. Shared by every rank of a run (and across restart
	// attempts — events fire once). Test/chaos use only.
	BitFlip *BitFlipInjector
}

// guardActive reports whether non-finite gradients must skip the step.
func guardActive(opts Options) bool { return opts.GuardNonFinite || opts.Scaler != nil }

// needGlobalSumSq reports whether the step phase needs the global Σg²
// (for clipping, for the non-finite guard, or for the spike detector —
// one all-reduce serves every consumer).
func needGlobalSumSq(opts Options) bool {
	return opts.ClipNorm > 0 || guardActive(opts) || opts.SpikeWindow > 0
}

// finiteSum reports whether a gradient sum-of-squares is finite.
func finiteSum(sumSq float64) bool {
	return !math.IsNaN(sumSq) && !math.IsInf(sumSq, 0)
}

// gradFactor returns the factor that turns an accumulated gradient sum into
// the (unscaled) mean gradient: 1/(n·scale), folding the dynamic loss scale
// into the same multiply as the microbatch average.
func gradFactor(opts Options, n int) float32 {
	scale := 1.0
	if opts.Scaler != nil {
		scale = opts.Scaler.Scale()
	}
	return float32(1.0 / (float64(n) * scale))
}

// clipScale returns the factor to scale gradients by so the global norm
// (whose square is sumSq) does not exceed opts.ClipNorm.
func clipScale(opts Options, sumSq float64) float32 {
	if opts.ClipNorm <= 0 {
		return 1
	}
	norm := math.Sqrt(sumSq)
	if norm <= opts.ClipNorm {
		return 1
	}
	return float32(opts.ClipNorm / norm)
}

// sumSquares returns Σ g².
func sumSquares(g []float32) float64 {
	var s float64
	for _, v := range g {
		s += float64(v) * float64(v)
	}
	return s
}

// Trainer runs training iterations for one rank.
type Trainer interface {
	// TrainIteration processes the full global microbatch list (every rank
	// receives the same slice) and performs one optimizer step. It returns
	// the mean microbatch loss (identical on every rank).
	TrainIteration(batches []data.Batch) (float64, error)
	// Model returns the rank's local model replica. After TrainIteration
	// the modules this rank owns hold post-step weights; which modules
	// those are depends on the strategy.
	Model() *model.Model
}

// New builds a trainer for the given strategy on transport t. cfg must be
// identical on every rank (models are reconstructed from the seed rather
// than broadcast).
func New(s Strategy, t Transport, cfg model.Config, opts Options) (Trainer, error) {
	switch s {
	case StrategySerial:
		if t.Size() != 1 {
			return nil, fmt.Errorf("pipeline: serial strategy needs exactly 1 rank, got %d", t.Size())
		}
		return NewSerial(cfg, opts), nil
	case StrategyDP:
		return NewDP(t, cfg, opts)
	case StrategyFSDP:
		return NewFSDP(t, cfg, opts)
	case StrategyGPipe:
		return NewGPipe(t, cfg, opts)
	case Strategy1F1B:
		return NewOneFOneB(t, cfg, opts)
	case StrategyZB1:
		return NewZeroBubble(t, cfg, opts, 1)
	case StrategyZB2:
		return NewZeroBubble(t, cfg, opts, 2)
	case StrategyWeiPipeNaive:
		return NewWeiPipe(t, cfg, opts, WeiPipeNaive)
	case StrategyWeiPipeInterleave:
		return NewWeiPipe(t, cfg, opts, WeiPipeInterleave)
	case StrategyWZB1:
		return NewWeiPipe(t, cfg, opts, WeiPipeZB1)
	case StrategyWZB2:
		return NewWeiPipe(t, cfg, opts, WeiPipeZB2)
	case StrategyWZB2G:
		return NewWeiPipeGrouped(t, cfg, opts)
	default:
		return nil, fmt.Errorf("pipeline: unknown strategy %q", s)
	}
}

// Transport aliases comm.Transport; ranks communicate only through it.
type Transport = comm.Transport

// Tag aliases comm.Tag.
type Tag = comm.Tag

// forwardModule runs module i of mdl on x for batch b, handling the
// embedding and head specially. Returns the output activations (nil for the
// head) and, for the head, the microbatch loss.
func forwardModule(mdl *model.Model, i int, x *tensor.Tensor, b data.Batch, c *nn.Cache) (*tensor.Tensor, float64) {
	switch m := mdl.Modules[i].(type) {
	case *nn.Embedding:
		return m.ForwardTokens(b.Tokens, c), 0
	case *nn.OutputHead:
		return nil, m.ForwardLoss(x, b.Targets, c)
	default:
		return m.Forward(x, c), 0
	}
}

// forwardRange runs modules [lo, hi) on batch b starting from activations x
// (nil when lo == 0). caches must have hi−lo entries. When recompute is
// true, interior modules drop their intermediates after forward. Returns
// the boundary activations leaving the range (nil if the range ends with
// the head) and the loss (non-zero only if the head is inside the range).
func forwardRange(mdl *model.Model, lo, hi int, x *tensor.Tensor, b data.Batch,
	caches []*nn.Cache, recompute bool) (*tensor.Tensor, float64) {
	var loss float64
	last := len(mdl.Modules) - 1
	for i := lo; i < hi; i++ {
		c := caches[i-lo]
		var l float64
		x, l = forwardModule(mdl, i, x, b, c)
		loss += l
		if recompute && i != 0 && i != last {
			c.DropAllButX()
		}
	}
	return x, loss
}

// backwardRangeB runs the B pass (BackwardInput) backwards through modules
// [lo, hi), recomputing the forward of checkpointed modules first. dy is
// the gradient entering from above (ignored when the range ends with the
// head, which owns the loss). Returns the gradient leaving below (nil when
// the range starts with the embedding).
func backwardRangeB(mdl *model.Model, lo, hi int, dy *tensor.Tensor,
	caches []*nn.Cache, recompute bool) *tensor.Tensor {
	last := len(mdl.Modules) - 1
	for i := hi - 1; i >= lo; i-- {
		c := caches[i-lo]
		if recompute && i != 0 && i != last {
			mdl.Modules[i].Forward(c.X, c)
		}
		dy = mdl.Modules[i].BackwardInput(dy, c)
	}
	return dy
}

// backwardRangeW runs the W pass (BackwardParams) for modules [lo, hi),
// accumulating into grads (indexed by global module index).
func backwardRangeW(mdl *model.Model, lo, hi int, caches []*nn.Cache, grads []*nn.ParamSet) {
	for i := lo; i < hi; i++ {
		mdl.Modules[i].BackwardParams(caches[i-lo], grads[i])
	}
}

// newCaches allocates one cache per module in [lo, hi), all drawing scratch
// from arena (which may be nil for heap allocation). The runner that owns
// arena must not reset it before the last module's W pass has consumed the
// stashes.
func newCaches(lo, hi, g, s int, arena *tensor.Arena) []*nn.Cache {
	out := make([]*nn.Cache, hi-lo)
	for i := range out {
		out[i] = nn.NewCache(g, s)
		out[i].Arena = arena
	}
	return out
}

// arenaPool recycles per-microbatch scratch arenas: a runner acquires one
// arena per in-flight microbatch and returns it (reset) once that
// microbatch's W passes have finished, so the number of live arenas tracks
// the schedule's peak microbatch concurrency and steady-state steps reuse
// the same buffers.
type arenaPool struct {
	free []*tensor.Arena
}

func (ap *arenaPool) acquire() *tensor.Arena {
	if n := len(ap.free); n > 0 {
		a := ap.free[n-1]
		ap.free = ap.free[:n-1]
		return a
	}
	return tensor.NewArena()
}

// release resets a and returns it to the pool. Every tensor allocated from a
// must be dead: the caller has finished the owning microbatch's W pass.
func (ap *arenaPool) release(a *tensor.Arena) {
	if a == nil {
		return
	}
	a.Reset()
	ap.free = append(ap.free, a)
}

// highWater returns the largest slot count among the pool's arenas — the
// scratch-memory high-water mark of the microbatches trained so far.
// Meaningful between iterations, when every in-flight arena has been
// released back.
func (ap *arenaPool) highWater() int {
	hw := 0
	for _, a := range ap.free {
		if s := a.Slots(); s > hw {
			hw = s
		}
	}
	return hw
}

// ArenaMeter is implemented by runners that recycle per-microbatch scratch
// arenas; ArenaHighWater reports the peak arena slot count, the memory
// figure the -metrics snapshot surfaces next to the comm buffer gauges.
type ArenaMeter interface {
	ArenaHighWater() int
}

// newGrads allocates a gradient set per module of mdl (nil-safe access by
// global module index).
func newGrads(mdl *model.Model) []*nn.ParamSet {
	out := make([]*nn.ParamSet, len(mdl.Modules))
	for i, m := range mdl.Modules {
		out[i] = m.Params().NewLike()
	}
	return out
}

// flattenGradsRange copies grads of modules [lo, hi) into dst in wire order.
func flattenGradsRange(mdl *model.Model, grads []*nn.ParamSet, lo, hi int, dst []float32) {
	off := 0
	for i := lo; i < hi; i++ {
		n := grads[i].Size()
		grads[i].FlattenInto(dst[off : off+n])
		off += n
	}
	if off != len(dst) {
		panic("pipeline: flattenGradsRange size mismatch")
	}
}

// maybeRoundF16 rounds payload through fp16 when mixed precision is on.
func maybeRoundF16(opts Options, payload []float32) []float32 {
	if !opts.MixedPrecision {
		return payload
	}
	for i, v := range payload {
		payload[i] = tensor.F16ToF32(tensor.F32ToF16(v))
	}
	return payload
}

// maybeRoundBF16 rounds payload through bf16 when mixed precision is on
// (the paper ships activation gradients in bf16).
func maybeRoundBF16(opts Options, payload []float32) []float32 {
	if !opts.MixedPrecision {
		return payload
	}
	for i, v := range payload {
		payload[i] = tensor.BF16ToF32(tensor.F32ToBF16(v))
	}
	return payload
}
