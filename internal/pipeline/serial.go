package pipeline

import (
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/nn"
	"weipipe/internal/optim"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// Serial is the single-process reference trainer every distributed strategy
// is validated against: it processes the microbatches one by one, sums
// their gradients, divides by the microbatch count and takes one AdamW
// step over the full flat parameter vector.
type Serial struct {
	mdl  *model.Model
	opt  *optim.AdamW
	opts Options
	// arena supplies every per-microbatch intermediate; with one microbatch
	// in flight at a time it is reset as soon as the W pass has run.
	arena   *tensor.Arena
	skipped int
	tr      *trace.Tracer
}

// NewSerial builds the reference trainer.
func NewSerial(cfg model.Config, opts Options) *Serial {
	mdl := model.Build(cfg)
	return &Serial{
		mdl:   mdl,
		opt:   optim.NewAdamW(mdl.NumParams(), opts.Adam),
		opts:  opts,
		arena: tensor.NewArena(),
		tr:    opts.Trace.Rank(0),
	}
}

// Model implements Trainer.
func (s *Serial) Model() *model.Model { return s.mdl }

// TrainIteration implements Trainer.
func (s *Serial) TrainIteration(batches []data.Batch) (float64, error) {
	n := len(s.mdl.Modules)
	grads := newGrads(s.mdl)
	if s.opts.Scaler != nil {
		s.mdl.Head.LossScale = float32(s.opts.Scaler.Scale())
	}
	var lossSum float64
	for mi, b := range batches {
		mb := int64(mi)
		caches := newCaches(0, n, b.G(), b.S(), s.arena)
		span := s.tr.Begin()
		_, loss := forwardRange(s.mdl, 0, n, nil, b, caches, s.opts.Recompute)
		s.tr.End(span, trace.CodeF, mb, 0)
		lossSum += loss
		var dy *tensor.Tensor
		span = s.tr.Begin()
		backwardRangeB(s.mdl, 0, n, dy, caches, s.opts.Recompute)
		s.tr.End(span, trace.CodeB, mb, 0)
		span = s.tr.Begin()
		backwardRangeW(s.mdl, 0, n, caches, grads)
		s.tr.End(span, trace.CodeW, mb, 0)
		s.arena.Reset() // grads live on the heap; all scratch is now dead
	}
	span := s.tr.Begin()
	s.step(grads, len(batches))
	s.tr.End(span, trace.CodeOpt, 0, 0)
	return lossSum / float64(len(batches)), nil
}

// step averages the accumulated gradients over n microbatches, unscales
// the dynamic loss scale (skipping the update on overflow) and applies one
// optimizer update across the whole model.
func (s *Serial) step(grads []*nn.ParamSet, n int) {
	total := s.mdl.NumParams()
	flatW := make([]float32, total)
	flatG := make([]float32, total)
	s.mdl.FlattenChunk(0, len(s.mdl.Modules), flatW)
	flattenGradsRange(s.mdl, grads, 0, len(s.mdl.Modules), flatG)
	if s.opts.Scaler != nil && !s.opts.Scaler.Unscale(flatG) {
		s.skipped++
		return // overflow: skip the step; the scaler has already backed off
	}
	inv := float32(1.0 / float64(n))
	for i := range flatG {
		flatG[i] *= inv
	}
	var sumSq float64
	if needGlobalSumSq(s.opts) {
		sumSq = sumSquares(flatG)
	}
	if s.opts.GuardNonFinite && !finiteSum(sumSq) {
		s.skipped++
		return
	}
	if c := clipScale(s.opts, sumSq); c != 1 {
		for i := range flatG {
			flatG[i] *= c
		}
	}
	s.opt.Step(flatW, flatG)
	s.mdl.SetChunk(0, len(s.mdl.Modules), flatW)
}

// Loss runs a forward-only pass over the batches (no update) and returns
// the mean loss; used by examples to report evaluation loss.
func (s *Serial) Loss(batches []data.Batch) float64 {
	n := len(s.mdl.Modules)
	var sum float64
	for _, b := range batches {
		caches := newCaches(0, n, b.G(), b.S(), s.arena)
		_, loss := forwardRange(s.mdl, 0, n, nil, b, caches, false)
		sum += loss
		s.arena.Reset()
	}
	return sum / float64(len(batches))
}

var _ Trainer = (*Serial)(nil)
