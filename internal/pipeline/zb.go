package pipeline

import (
	"weipipe/internal/data"
	"weipipe/internal/model"
)

// ZeroBubble implements the ZB1/ZB2 schedules of "Zero Bubble Pipeline
// Parallelism" on the 1F1B skeleton: the backward pass is split into a B
// pass (activation gradients — on the critical path, sent upstream
// immediately) and a W pass (weight gradients — off the critical path,
// used as filler work). Functionally the two variants differ in how long W
// passes are deferred:
//
//   - ZB1 keeps at most `warmup` W passes pending, draining the oldest
//     after every steady-state B pass (bounded extra memory).
//   - ZB2 defers every W pass to the end of the iteration (near-zero
//     bubble in time, at roughly twice ZB1's retained-activation memory).
//
// Per the paper, recomputation is never combined with zero-bubble
// schedules (it would save nothing: the B pass needs the activations that
// checkpointing would have dropped), so Options.Recompute is ignored.
type ZeroBubble struct {
	*ppBase
	variant int // 1 or 2
}

// NewZeroBubble builds a ZB1 (variant=1) or ZB2 (variant=2) stage.
func NewZeroBubble(t Transport, cfg model.Config, opts Options, variant int) (*ZeroBubble, error) {
	if variant != 1 && variant != 2 {
		panic("pipeline: zero-bubble variant must be 1 or 2")
	}
	b, err := newPPBase(t, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &ZeroBubble{ppBase: b, variant: variant}, nil
}

// TrainIteration implements Trainer.
func (z *ZeroBubble) TrainIteration(batches []data.Batch) (float64, error) {
	z.beginIteration()
	n := len(batches)
	warmup := z.t.Size() - 1 - z.t.Rank()
	if warmup > n {
		warmup = n
	}
	var pendingW []int // microbatches whose W pass is deferred

	for m := 0; m < warmup; m++ {
		if err := z.forwardMB(m, batches[m], false); err != nil {
			return 0, err
		}
	}
	for m := warmup; m < n; m++ {
		if err := z.forwardMB(m, batches[m], false); err != nil {
			return 0, err
		}
		bm := m - warmup
		if err := z.backwardMBInput(bm, batches[bm], false); err != nil {
			return 0, err
		}
		pendingW = append(pendingW, bm)
		if z.variant == 1 && len(pendingW) > warmup {
			z.backwardMBParams(pendingW[0])
			pendingW = pendingW[1:]
		}
	}
	for m := n - warmup; m < n; m++ {
		if err := z.backwardMBInput(m, batches[m], false); err != nil {
			return 0, err
		}
		pendingW = append(pendingW, m)
	}
	for _, m := range pendingW {
		z.backwardMBParams(m)
	}
	if err := z.step(n); err != nil {
		return 0, err
	}
	return z.finishLoss(n)
}

var _ Trainer = (*ZeroBubble)(nil)
