package pipeline

import (
	"math"
	"testing"

	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
)

// The central claim of the functional runtimes: every distributed strategy,
// at any worker count, lands on the same post-step weights and losses as
// the serial reference. AdamW's eps is raised to 1e-5 in these tests so
// that benign float-reassociation differences in gradient accumulation are
// not amplified by near-zero second moments.

func eqCfg() model.Config {
	return model.Config{Vocab: 13, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 6, Seed: 42}
}

func eqOpts() Options {
	adam := optim.DefaultAdamW(0.01)
	adam.Eps = 1e-5
	return Options{Adam: adam}
}

func eqBatches(iters, n int) func(int) []data.Batch {
	all := make([][]data.Batch, iters)
	for i := range all {
		all[i] = data.Microbatches(uint64(100+i), n, 2, 13, 6)
	}
	return func(i int) []data.Batch { return all[i] }
}

// serialReference trains the reference and returns per-iteration losses and
// final weights.
func serialReference(t *testing.T, iters, n int) ([]float64, []float32) {
	t.Helper()
	res, err := RunCluster(StrategySerial, 1, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	return res.Losses, res.Weights
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func checkEquivalence(t *testing.T, s Strategy, p, iters, n int, wantLoss []float64, wantW []float32) {
	t.Helper()
	res, err := RunCluster(s, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatalf("%s p=%d: %v", s, p, err)
	}
	for i := range wantLoss {
		if math.Abs(res.Losses[i]-wantLoss[i]) > 1e-4 {
			t.Errorf("%s p=%d iter %d: loss %.6f, serial %.6f", s, p, i, res.Losses[i], wantLoss[i])
		}
	}
	if len(res.Weights) != len(wantW) {
		t.Fatalf("%s p=%d: weight count %d != %d", s, p, len(res.Weights), len(wantW))
	}
	if d := maxAbsDiff(res.Weights, wantW); d > 5e-4 {
		t.Errorf("%s p=%d: max weight diff vs serial = %g", s, p, d)
	}
}

func TestAllStrategiesMatchSerial(t *testing.T) {
	const iters, n = 2, 8
	wantLoss, wantW := serialReference(t, iters, n)
	for _, s := range Strategies() {
		for _, p := range []int{2, 4} {
			s, p := s, p
			t.Run(string(s)+"_p"+string(rune('0'+p)), func(t *testing.T) {
				t.Parallel()
				checkEquivalence(t, s, p, iters, n, wantLoss, wantW)
			})
		}
	}
}

func TestStrategiesMatchSerialOddWorkerCount(t *testing.T) {
	// 3 workers with 6 microbatches exercises the non-power-of-two paths
	// (uneven chunk sizes from the param-balanced partition).
	const iters, n = 1, 6
	wantLoss, wantW := serialReference(t, iters, n)
	for _, s := range []Strategy{Strategy1F1B, StrategyFSDP, StrategyWeiPipeInterleave, StrategyWZB2} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			checkEquivalence(t, s, 3, iters, n, wantLoss, wantW)
		})
	}
}

func TestRecomputeMatchesSerial(t *testing.T) {
	// Recomputation must not change results for the strategies that use it.
	const iters, n = 1, 4
	wantLoss, wantW := serialReference(t, iters, n)
	opts := eqOpts()
	opts.Recompute = true
	for _, s := range []Strategy{Strategy1F1B, StrategyGPipe, StrategyFSDP, StrategyWeiPipeInterleave, StrategyWeiPipeNaive} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			res, err := RunCluster(s, 2, eqCfg(), opts, iters, eqBatches(iters, n))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Losses[0]-wantLoss[0]) > 1e-4 {
				t.Errorf("loss %.6f vs serial %.6f", res.Losses[0], wantLoss[0])
			}
			if d := maxAbsDiff(res.Weights, wantW); d > 5e-4 {
				t.Errorf("max weight diff vs serial = %g", d)
			}
		})
	}
}

func TestWeiPipeManyRounds(t *testing.T) {
	// R = N/P > 2 rounds: belts must keep circulating across rounds.
	const iters, n = 1, 12
	wantLoss, wantW := serialReference(t, iters, n)
	checkEquivalence(t, StrategyWeiPipeInterleave, 2, iters, n, wantLoss, wantW)
	checkEquivalence(t, StrategyWeiPipeNaive, 4, iters, n, wantLoss, wantW)
}

func TestLossDecreasesOverIterations(t *testing.T) {
	// Sanity: training actually learns on the synthetic Markov stream.
	const iters, n = 6, 4
	batches := data.Microbatches(7, n, 2, 13, 6)
	fn := func(int) []data.Batch { return batches } // overfit one batch set
	res, err := RunCluster(StrategyWeiPipeInterleave, 2, eqCfg(), eqOpts(), iters, fn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[iters-1] >= res.Losses[0] {
		t.Fatalf("loss did not decrease: %v", res.Losses)
	}
}

func TestIndivisibleMicrobatchesRejected(t *testing.T) {
	fn := eqBatches(1, 5) // 5 microbatches, 2 ranks
	for _, s := range []Strategy{StrategyDP, StrategyFSDP, StrategyWeiPipeInterleave} {
		if _, err := RunCluster(s, 2, eqCfg(), eqOpts(), 1, fn); err == nil {
			t.Errorf("%s accepted indivisible microbatch count", s)
		}
	}
}

func TestMixedPrecisionStaysClose(t *testing.T) {
	// fp16 wire format perturbs but must not diverge: losses within a few
	// percent of the fp32 run after two iterations.
	const iters, n = 2, 4
	wantLoss, _ := serialReference(t, iters, n)
	opts := eqOpts()
	opts.MixedPrecision = true
	res, err := RunCluster(StrategyWeiPipeInterleave, 2, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantLoss {
		rel := math.Abs(res.Losses[i]-wantLoss[i]) / wantLoss[i]
		if rel > 0.05 {
			t.Errorf("iter %d: mixed-precision loss %.5f vs fp32 %.5f (rel %f)", i, res.Losses[i], wantLoss[i], rel)
		}
	}
}

func TestClipNormMatchesSerial(t *testing.T) {
	// A tight clip forces the scale path; every strategy must still match
	// the serial reference (the clip is on the *global* norm, so the
	// distributed partial-norm all-reduce has to be correct).
	const iters, n = 2, 4
	opts := eqOpts()
	opts.ClipNorm = 0.05
	ref, err := RunCluster(StrategySerial, 1, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Strategy1F1B, StrategyZB2, StrategyFSDP, StrategyDP, StrategyWeiPipeInterleave, StrategyWZB1} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			res, err := RunCluster(s, 2, eqCfg(), opts, iters, eqBatches(iters, n))
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(res.Weights, ref.Weights); d > 5e-4 {
				t.Errorf("clipped weights diverge by %g", d)
			}
		})
	}
	// and the clip actually engaged: weights differ from the unclipped run
	unclipped, err := RunCluster(StrategySerial, 1, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(ref.Weights, unclipped.Weights) == 0 {
		t.Fatal("ClipNorm=0.05 did not change the trajectory (clip never engaged?)")
	}
}

func TestDynamicLossScalingSerial(t *testing.T) {
	// With a sane scale the trajectory matches the unscaled run (scaling is
	// linear and exactly undone); with an absurd scale the gradients
	// overflow, the step is skipped and the scale backs off.
	const iters, n = 2, 4
	ref, err := RunCluster(StrategySerial, 1, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	opts := eqOpts()
	opts.Scaler = optim.NewLossScaler(1024, 1000)
	res, err := RunCluster(StrategySerial, 1, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Weights, ref.Weights); d > 1e-4 {
		t.Errorf("scaled run diverges by %g", d)
	}

	// absurd scale → overflow → skipped steps → weights unchanged
	cfg := eqCfg()
	sOpts := eqOpts()
	sOpts.Scaler = optim.NewLossScaler(1e38, 1000)
	tr := NewSerial(cfg, sOpts)
	before := make([]float32, tr.Model().NumParams())
	tr.Model().FlattenChunk(0, len(tr.Model().Modules), before)
	if _, err := tr.TrainIteration(eqBatches(1, n)(0)); err != nil {
		t.Fatal(err)
	}
	after := make([]float32, tr.Model().NumParams())
	tr.Model().FlattenChunk(0, len(tr.Model().Modules), after)
	if maxAbsDiff(before, after) != 0 {
		t.Error("overflowed step was not skipped")
	}
	if sOpts.Scaler.Skipped == 0 || sOpts.Scaler.Scale() >= 1e38 {
		t.Errorf("scaler did not back off: skipped=%d scale=%g", sOpts.Scaler.Skipped, sOpts.Scaler.Scale())
	}
}

func TestSerialLossEvalMatchesForward(t *testing.T) {
	s := NewSerial(eqCfg(), eqOpts())
	batches := eqBatches(1, 4)(0)
	evalBefore := s.Loss(batches)
	trainLoss, err := s.TrainIteration(batches)
	if err != nil {
		t.Fatal(err)
	}
	// the training loss is measured before the step → equals the eval loss
	if math.Abs(evalBefore-trainLoss) > 1e-9 {
		t.Fatalf("eval %v != train %v", evalBefore, trainLoss)
	}
	// and after the step the eval loss moved
	if s.Loss(batches) == evalBefore {
		t.Fatal("step did not change the eval loss")
	}
}
