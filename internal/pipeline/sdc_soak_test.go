package pipeline

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"weipipe/internal/comm"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// TestSoakBitFlipSchedules is the silent-data-corruption soak: WEIPIPE_SDC=N
// replays N deterministic bit-flip schedules — flips in resident weights,
// optimizer moments, belt staging buffers and (on odd schedules) matmul
// outputs — against WZB2 over real TCP with frame-level chaos, recovering
// via checkpoint restart. Every schedule must end with:
//
//   - every scheduled flip actually fired (the schedule was exercised),
//   - at least one detection-triggered restart (the defense engaged),
//   - losses and final weights bit-identical to the fault-free oracle —
//     i.e. zero corruptions silently absorbed into training.
//
// WEIPIPE_SDC_OUT, when set, receives one JSON report and one Chrome trace
// per schedule (the CI artifact uploaded on failure).
func TestSoakBitFlipSchedules(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("WEIPIPE_SDC"))
	if n <= 0 {
		t.Skip("set WEIPIPE_SDC=<n> to run the bit-flip soak")
	}
	outDir := os.Getenv("WEIPIPE_SDC_OUT")
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	const p, iters, nb = 2, 8, 4
	baseG := runtime.NumGoroutine()
	for i := 0; i < n; i++ {
		seed := uint64(0x5DC0 + 104729*i)
		t.Run(fmt.Sprintf("seed_%#x", seed), func(t *testing.T) {
			sites := []FlipSite{FlipWeights, FlipMomentM, FlipMomentV, FlipBeltWeight, FlipBeltGrad}
			kernel := i%2 == 1
			if kernel {
				sites = append(sites, FlipKernel)
			}
			events := GenBitFlips(seed, p, iters, 3, sites)
			inj := NewBitFlipInjector(events)

			opts := integrityOpts()
			opts.BF16Wire = i%3 == 0 // bf16 belts × checksum coverage
			ref, err := RunCluster(StrategyWZB2, p, eqCfg(), opts, iters, eqBatches(iters, nb))
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}

			if kernel {
				tensor.EnableABFT()
				tensor.SetABFTFault(inj.KernelHook())
				defer func() {
					tensor.SetABFTFault(nil)
					tensor.DisableABFT()
				}()
			}
			faulted := opts
			faulted.BitFlip = inj
			set := trace.NewSet(p, 1<<13)
			faulted.Trace = set

			tcpOpts := comm.TCPOptions{
				// The TCP wire codec is a transport option, not a trainer one:
				// match the oracle's belt width so trajectories are comparable.
				Codec:             wireCodecFor(opts),
				DialTimeout:       10 * time.Second,
				HeartbeatInterval: 20 * time.Millisecond,
				PeerDeadTimeout:   2 * time.Second,
				RetransmitTimeout: 40 * time.Millisecond,
				ReconnectBackoff:  5 * time.Millisecond,
				Chaos: &comm.ChaosConfig{
					Seed: seed, Drop: 0.02, Dup: 0.02, Reorder: 0.02, Corrupt: 0.01,
					DelayProb: 0.02, MaxDelay: 1 * time.Millisecond,
				},
			}
			var attempts atomic.Int64
			factory := chaosTCPFactory(tcpOpts)
			counting := func(attempt, size int) ([]comm.Transport, error) {
				if int64(attempt) > attempts.Load() {
					attempts.Store(int64(attempt))
				}
				return factory(attempt, size)
			}
			res, err := RunResilient(StrategyWZB2, p, eqCfg(), faulted, iters, eqBatches(iters, nb),
				counting, ResilientOptions{
					CheckpointEvery: 2,
					CheckpointPath:  filepath.Join(t.TempDir(), "sdc.wpck"),
					MaxRestarts:     len(events) + 3,
				})

			if outDir != "" {
				writeSDCReport(t, outDir, seed, inj, events, attempts.Load(), set, err)
			}
			if err != nil {
				t.Fatalf("schedule %#x: %v", seed, err)
			}
			if got := inj.Fired(); got != len(events) {
				t.Fatalf("schedule %#x: %d/%d flips fired (pending: %+v)", seed, got, len(events), inj.Pending())
			}
			if attempts.Load() == 0 {
				t.Fatalf("schedule %#x: flips fired but no restart happened — a detection was swallowed", seed)
			}
			bitIdentical(t, fmt.Sprintf("schedule %#x", seed), res.Losses, ref.Losses, res.Weights, ref.Weights)
			checks, _ := res.TotalComm().TotalIntegrityChecks()
			if checks == 0 {
				t.Fatalf("schedule %#x: final attempt recorded no integrity checks", seed)
			}
		})
	}
	waitPipelineGoroutines(t, baseG)
}

// wireCodecFor maps the trainer's BF16Wire option to the transport-level
// codec, the way a launcher wires the two layers together.
func wireCodecFor(opts Options) comm.CodecFunc {
	if opts.BF16Wire {
		return comm.BeltBF16
	}
	return nil
}

// writeSDCReport persists one schedule's artifacts: a JSON report of the
// schedule, fired flips and restart count, plus the Chrome trace carrying
// the integrity/repair instants.
func writeSDCReport(t *testing.T, dir string, seed uint64, inj *BitFlipInjector,
	events []BitFlipEvent, restarts int64, set *trace.Set, runErr error) {
	t.Helper()
	report := struct {
		Seed     string         `json:"seed"`
		Events   []BitFlipEvent `json:"events"`
		Fired    []FiredFlip    `json:"fired"`
		Restarts int64          `json:"restarts"`
		Err      string         `json:"err,omitempty"`
	}{Seed: fmt.Sprintf("%#x", seed), Events: events, Fired: inj.Log(), Restarts: restarts}
	if runErr != nil {
		report.Err = runErr.Error()
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Errorf("marshal report: %v", err)
		return
	}
	base := filepath.Join(dir, fmt.Sprintf("sdc-%#x", seed))
	if err := os.WriteFile(base+".json", blob, 0o644); err != nil {
		t.Errorf("write report: %v", err)
	}
	if tb, err := set.ChromeTrace(nil); err == nil {
		if err := os.WriteFile(base+".trace.json", tb, 0o644); err != nil {
			t.Errorf("write trace: %v", err)
		}
	}
}
