package pipeline

import (
	"fmt"
	"time"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/nn"
	"weipipe/internal/optim"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// WeiPipeVariant selects which of the paper's weight-passing schedules a
// WeiPipe trainer runs.
type WeiPipeVariant int

// The four schedules of the paper (§4.2). All share the same dataflow —
// and therefore produce identical gradients — but differ in the local
// interleaving of forward, B and W work, which is what the performance
// simulator distinguishes them by.
const (
	// WeiPipeNaive: a worker alternates whole-microbatch forward phases and
	// whole-microbatch backward phases; both weight belts circulate but only
	// one is used at a time (§4.2.1).
	WeiPipeNaive WeiPipeVariant = iota
	// WeiPipeInterleave: once warm, every turn pairs one forward stage of a
	// new microbatch with one backward stage of an old one, using the two
	// chunks at diagonal belt positions (§4.2.2).
	WeiPipeInterleave
	// WeiPipeZB1: like Interleave but the backward is split; a turn pairs a
	// forward with either a B pass or a (one-step-delayed) W pass (§4.2.3.1).
	WeiPipeZB1
	// WeiPipeZB2: B passes run in reverse order as usual, but the W passes
	// of a microbatch run afterwards in forward layer order, letting chunk
	// gradients complete and retire as early as possible (§4.2.3.2).
	WeiPipeZB2
)

// String returns the paper's name for the variant.
func (v WeiPipeVariant) String() string {
	switch v {
	case WeiPipeNaive:
		return "weipipe-naive"
	case WeiPipeInterleave:
		return "weipipe-interleave"
	case WeiPipeZB1:
		return "wzb1"
	case WeiPipeZB2:
		return "wzb2"
	}
	return "weipipe-unknown"
}

// WeiPipe is the weight-passing pipeline runtime. The model's modules are
// split into P contiguous chunks. Two copies of every chunk circulate
// around the worker ring as "belts":
//
//   - the forward belt, whose chunk c reaches worker w exactly when w's
//     forward pass needs modules [chunk c];
//   - the backward belt, which trails a full model-depth behind and feeds
//     each worker's backward passes in reverse chunk order.
//
// A gradient accumulator D_c rides the backward belt: each worker adds its
// local weight-gradient contribution before passing it on, so by the time
// the belt completes its final circle D_c holds the sum over all N
// microbatches — gradient aggregation without any collective (§4.2.1,
// "update pass"). Each worker keeps its own microbatches' activations and
// never ships an activation anywhere: per turn the wire carries two weight
// chunks and one gradient chunk, the paper's 36H² bytes, independent of
// both microbatch size G and sequence length S.
//
// Belt use indices are global: use j of a belt chunk is performed by worker
// j mod P during its round ⌊j/P⌋, so use j happens one hop downstream of
// use j−1 and message matching is exact. Chunk c's fully-accumulated
// gradient retires at worker P−1 and is delivered to chunk c's owner,
// worker (c−1) mod P — the resting position of the backward belt at the
// iteration boundary — which keeps the chunk's fp32 master weights and
// optimizer state and re-injects the updated chunk next iteration.
type WeiPipe struct {
	t       Transport
	mdl     *model.Model
	bounds  [][2]int
	variant WeiPipeVariant
	opts    Options

	ownChunk int // the chunk this worker owns: (rank+1) mod P
	masterW  []float32
	opt      *optim.AdamW

	// dpGroup, when non-nil, is the cross-replica communicator of this
	// chunk's owners in a hybrid WeiPipe×DP run: the fully-accumulated D is
	// additionally all-reduced across replicas before the step, and the
	// gradient average divides by globalN instead of the local microbatch
	// count.
	dpGroup Transport
	globalN int

	iter int
	curR int // rounds in the current iteration (N/P)

	// skipped counts optimizer steps dropped by the non-finite guard (or
	// the loss scaler); the decision is global, so every rank agrees.
	skipped int

	// Integrity layer state (Options.Integrity; see integrity.go). pad is
	// the checksum trailer length every belt buffer grows by (0 = off);
	// wireCodec reports the codec a tag's payload travels under, so seals
	// cover the canonical wire-value domain. guard* cache the resident
	// state's checksums between legitimate mutations.
	pad        int
	wireCodec  comm.CodecFunc
	guardW     uint32
	guardM     uint32
	guardV     uint32
	guardValid bool

	// spike, when non-nil, is the windowed grad-norm anomaly detector
	// (Options.SpikeWindow). Its verdict is driven by the globally agreed
	// Σg², so every rank's copy evolves in lock-step.
	spike *optim.SpikeDetector

	// buddy, when non-nil, shadows the ring successor's owned chunk (see
	// buddy.go). ownerIters counts this rank's committed step phases, and
	// rb* hold the one-deep pre-step rollback of the owned chunk that lets
	// elastic repair export a consistent cut.
	buddy         *buddyState
	ownerIters    int
	rbW, rbM, rbV []float32
	rbStep        int
	rbIters       int
	rbValid       bool

	// Step-phase decisions recorded for the buddy shadow replay: the
	// gradient factor, the globally agreed Σg², and the skip verdict are
	// bit-identical on every rank, so the shadow replays the owner's step
	// exactly.
	lastInv   float32
	lastSumSq float64
	lastSkip  bool

	// apool recycles per-microbatch scratch arenas across rounds and
	// iterations; at most R microbatches of this worker are in flight, so the
	// pool stabilises at that many arenas.
	apool arenaPool

	// grouped, when non-nil, activates the topology-aware grouped belt
	// (strategy wzb2g; see grouped.go): weight belts circulate on a
	// per-group sub-transport and chunks cross group boundaries once per
	// iteration via the holder-ring shard exchange. Nil runs the flat belt.
	grouped *groupedState

	// engine, when non-nil, is the per-iteration asynchronous belt engine
	// (opts.Overlap): a background goroutine that receives belt payloads in
	// schedule order, relays weight chunks downstream as soon as they
	// arrive, and double-buffers them for the compute thread. Nil in
	// blocking mode and between iterations.
	engine *beltEngine

	// stats is the transport's meter when it exposes one (nil otherwise);
	// the runner records its critical-path belt waits into it so blocking
	// and overlapped runs report comparable exposed-communication time.
	stats *comm.Stats

	// board, when non-nil, receives this rank's schedule position before
	// every compute stage so the straggler watchdog can report where a
	// stalled rank got stuck.
	board     *ProgressBoard
	boardRank int

	// tr is this rank's runtime tracer (nil when tracing is off).
	tr *trace.Tracer
}

// ArenaHighWater implements ArenaMeter.
func (w *WeiPipe) ArenaHighWater() int { return w.apool.highWater() }

// post publishes the rank's schedule position to the progress board.
func (w *WeiPipe) post(mb int, phase byte) {
	if w.board != nil {
		w.board.Post(w.boardRank, w.iter, mb, phase)
	}
}

// Belt identifiers used in wire tags.
const (
	beltFwd    = 0
	beltBwd    = 1
	beltRetire = 2

	// Tag.B layout: the low beltUseBits hold the belt use index, the high
	// bits hold iter*beltCount+belt (so the belt id is recoverable as the
	// residue mod beltCount — see beltOf).
	beltCount   = 4
	beltUseBits = 36
)

// NewWeiPipe builds a WeiPipe trainer for this rank.
func NewWeiPipe(t Transport, cfg model.Config, opts Options, v WeiPipeVariant) (*WeiPipe, error) {
	mdl := model.Build(cfg)
	p := t.Size()
	if p > len(mdl.Modules) {
		return nil, fmt.Errorf("pipeline: %d ranks exceed %d modules", p, len(mdl.Modules))
	}
	if opts.Scaler != nil {
		// Every rank advances its own scaler copy; the skip decisions are
		// global, so the copies evolve in lock-step without sharing state.
		opts.Scaler = opts.Scaler.Clone()
	}
	w := &WeiPipe{
		t:       t,
		mdl:     mdl,
		bounds:  mdl.Partition(p),
		variant: v,
		opts:    opts,
	}
	w.ownChunk = (t.Rank() + 1) % p
	lo, hi := w.chunkRange(w.ownChunk)
	w.masterW = make([]float32, mdl.ChunkSize(lo, hi))
	mdl.FlattenChunk(lo, hi, w.masterW)
	w.opt = optim.NewAdamW(len(w.masterW), opts.Adam)
	if m, ok := t.(comm.Meter); ok {
		w.stats = m.CommStats()
	}
	// Arm link-tier traffic accounting whenever a group size is known, so
	// flat and grouped runs report comparable intra/inter splits.
	if gs := opts.GroupSize; gs > 1 && p%gs == 0 {
		w.stats.SetGroupSize(gs)
	}
	w.tr = opts.Trace.Rank(t.Rank())
	w.initIntegrity()
	w.refreshResidentGuards()
	if opts.SpikeWindow > 0 {
		w.spike = optim.NewSpikeDetector(opts.SpikeWindow, opts.SpikeMAD, opts.SpikeSkip)
	}
	if opts.Buddy && p >= 2 {
		w.initBuddy()
	}
	return w, nil
}

// Model implements Trainer.
func (w *WeiPipe) Model() *model.Model { return w.mdl }

// chunkRange returns the module range of chunk c.
func (w *WeiPipe) chunkRange(c int) (int, int) { return w.bounds[c][0], w.bounds[c][1] }

// owner returns the rank owning chunk c.
func (w *WeiPipe) owner(c int) int { return (c - 1 + w.t.Size()) % w.t.Size() }

// enc builds a tag B field from (iteration, belt, belt use index).
func (w *WeiPipe) enc(belt, use int) int {
	return (w.iter*beltCount+belt)<<beltUseBits | use
}

// totalUses returns the per-iteration use count of each belt: one use per
// (round, worker) pair.
func (w *WeiPipe) totalUses() int { return w.curR * w.t.Size() }

// wpState is the per-iteration working state.
type wpState struct {
	batches []data.Batch
	R       int
	// Per in-flight microbatch of this worker:
	caches     map[int][]*nn.Cache    // one cache per model module
	fwdX       map[int]*tensor.Tensor // boundary activations (forward cursor)
	bwdDy      map[int]*tensor.Tensor // boundary gradients (backward cursor)
	wRemaining map[int]int            // W passes left before caches release
	arenas     map[int]*tensor.Arena  // scratch arena, released with caches
	lossSum    float64
}

// TrainIteration implements Trainer.
func (w *WeiPipe) TrainIteration(batches []data.Batch) (loss float64, err error) {
	// Deferred first → runs last during an unwind, after the arena and
	// engine cleanups below: an ABFT kernel panic leaves no leaked state
	// and surfaces as a typed integrity error.
	defer w.recoverIntegrity(&err)
	p := w.t.Size()
	n := len(batches)
	if n%p != 0 {
		return 0, fmt.Errorf("pipeline: WeiPipe needs microbatch count divisible by %d workers", p)
	}
	// Chaos-tier resident-state flips land before the guard check, so a
	// scheduled corruption is always in the detector's field of view.
	w.injectStateFlips()
	if gerr := w.checkResidentGuards(); gerr != nil {
		return 0, gerr
	}
	w.curR = n / p
	if w.opts.Scaler != nil {
		w.mdl.Head.LossScale = float32(w.opts.Scaler.Scale())
	}
	st := &wpState{
		batches:    batches,
		R:          w.curR,
		caches:     make(map[int][]*nn.Cache),
		fwdX:       make(map[int]*tensor.Tensor),
		bwdDy:      make(map[int]*tensor.Tensor),
		wRemaining: make(map[int]int),
		arenas:     make(map[int]*tensor.Arena),
	}
	// Abort safety: when the iteration fails mid-schedule (a peer died, the
	// transport closed), the in-flight microbatches' scratch arenas must go
	// back to the pool — an aborting runner leaks nothing. On the success
	// path every arena has already been released by its final W pass.
	defer func() {
		for mb, a := range st.arenas {
			w.apool.release(a)
			delete(st.arenas, mb)
		}
	}()

	// The overlapped belt engine prefetches and relays this iteration's belt
	// messages on a background goroutine; it is armed before the injection
	// sends so the very first belt hop is already overlapped. stop() is
	// abort-safe: it drains staged payloads back to the pool on any exit.
	// The grouped belt arms it *after* the shard exchange instead: the
	// engine's cache-local ops read payloads the exchange installs.
	if w.opts.Overlap {
		defer func() {
			if w.engine != nil {
				w.engine.stop()
				w.engine = nil
			}
		}()
		if w.grouped == nil {
			w.engine = w.startBeltEngine(st.R)
		}
	}

	if w.grouped != nil {
		defer w.grouped.releaseCache()
		if err := w.groupedExchange(); err != nil {
			return 0, err
		}
		if w.opts.Overlap {
			w.engine = w.startBeltEngine(st.R)
		}
	} else {
		// Inject the owned chunk into both belts; the first user of every belt
		// chunk is worker 0 at use index 0. The first send copies the buffer
		// (the second belt still needs it); the second donates it to the
		// transport, which releases it on completion — there is no window where
		// a released buffer could still be queued for encoding.
		payload := comm.GetBuf(len(w.masterW) + w.pad)
		body := payload[:len(w.masterW)]
		copy(body, w.masterW)
		maybeRoundF16(w.opts, body)
		tagFwd := Tag{Kind: comm.KindWeight, A: w.ownChunk, B: w.enc(beltFwd, 0)}
		w.sealBelt(tagFwd, payload)
		errInj := w.t.Send(0, tagFwd, payload)
		if errInj == nil {
			errInj = comm.SendOwned(w.t, 0, Tag{Kind: comm.KindWeight, A: w.ownChunk, B: w.enc(beltBwd, 0)}, payload)
		} else {
			comm.Release(payload)
		}
		if errInj != nil {
			return 0, errInj
		}
	}

	if serr := w.runSchedule(st); serr != nil {
		return 0, serr
	}

	// Collect the fully-accumulated gradient for the owned chunk and step.
	optSpan := w.tr.Begin()
	d, err := w.beltRecv(p-1, Tag{Kind: comm.KindGrad, A: w.ownChunk, B: w.enc(beltRetire, 0)})
	if err != nil {
		return 0, err
	}
	if w.opts.BitFlip != nil {
		w.opts.BitFlip.Flip(w.t.Rank(), w.iter, FlipBeltGrad, w.beltBody(d))
	}
	if verr := w.verifyBelt(comm.SiteRetire, comm.KindGrad, w.ownChunk, d); verr != nil {
		comm.Release(d)
		return 0, verr
	}
	db := w.beltBody(d)
	if w.dpGroup != nil {
		if err := comm.RingAllReduceSum(w.dpGroup, db, w.iter+1); err != nil {
			comm.Release(d)
			return 0, err
		}
	}
	denom := n
	if w.globalN > 0 {
		denom = w.globalN
	}
	inv := gradFactor(w.opts, denom)
	for i := range db {
		db[i] *= inv
	}
	// One scalar all-reduce serves global-norm clipping, the non-finite
	// guard and the spike detector: NaN/Inf propagates through the sum, and
	// the agreed float64 is bit-identical everywhere, so every rank (and
	// every buddy shadow) reaches the identical verdict.
	var sumSq float64
	if needGlobalSumSq(w.opts) {
		sumSq, err = comm.AllReduceScalarSum(w.t, sumSquares(db), (1<<30)+w.iter)
		if err != nil {
			comm.Release(d)
			return 0, err
		}
	}
	skip := guardActive(w.opts) && !finiteSum(sumSq)
	spikeSkip := false
	if w.spike != nil {
		var isSpike bool
		isSpike, spikeSkip = w.spike.Observe(sumSq)
		if isSpike {
			flagged := int64(0)
			if spikeSkip {
				flagged = 1
			}
			w.tr.Instant(trace.CodeSpike, int64(w.iter), flagged)
		}
	}
	w.lastInv, w.lastSumSq, w.lastSkip = inv, sumSq, skip || spikeSkip
	w.stashOwnedRollback()
	if skip {
		w.skipped++
		if w.opts.Scaler != nil {
			w.opts.Scaler.Observe(false)
		}
	} else {
		if spikeSkip {
			w.skipped++
		} else {
			if c := clipScale(w.opts, sumSq); c != 1 {
				for i := range db {
					db[i] *= c
				}
			}
			w.opt.Step(w.masterW, db)
		}
		// The scaler reacts to finiteness only: a finite spike says nothing
		// about the loss scale.
		if w.opts.Scaler != nil {
			w.opts.Scaler.Observe(true)
		}
	}
	w.ownerIters++
	comm.Release(d)
	// Reflect the update in the local replica buffer so Model() exposes
	// this worker's post-step chunk.
	lo, hi := w.chunkRange(w.ownChunk)
	w.mdl.SetChunk(lo, hi, w.masterW)

	if w.buddy != nil {
		if err := w.buddyStep(); err != nil {
			return 0, err
		}
	}
	// The step (or the skip decision) was the last legitimate mutation of
	// the resident state this iteration; re-arm the guards over it.
	w.refreshResidentGuards()
	w.tr.End(optSpan, trace.CodeOpt, int64(w.iter), 0)

	w.iter++
	loss, err = comm.AllReduceScalarSum(w.t, st.lossSum, w.iter)
	if err != nil {
		return 0, err
	}
	return loss / float64(n), nil
}

// ---- local program orders (the four schedules) ---------------------------

// forEachStage drives a variant's local program order, invoking visit for
// every compute stage: phase 'F' (forward), 'B' (backward-input) or 'W'
// (backward-params) of chunk c in round k. It is the single source of truth
// for stage order — the compute loop executes it, and the overlapped belt
// engine derives its receive plan from it, so the prefetch order matches
// the consumption order by construction.
func forEachStage(v WeiPipeVariant, R, p int, visit func(phase byte, k, c int) error) error {
	switch v {
	case WeiPipeNaive:
		// Whole-microbatch forward phases alternate with whole-microbatch
		// backward phases; B and W stay fused.
		for k := 0; k < R; k++ {
			for c := 0; c < p; c++ {
				if err := visit('F', k, c); err != nil {
					return err
				}
			}
			for c := p - 1; c >= 0; c-- {
				if err := visit('B', k, c); err != nil {
					return err
				}
				if err := visit('W', k, c); err != nil {
					return err
				}
			}
		}
	case WeiPipeInterleave:
		// Once warm, each turn pairs one forward stage (new microbatch)
		// with one fused backward stage (previous microbatch).
		for k := 0; k <= R; k++ {
			for step := 0; step < p; step++ {
				if k < R {
					if err := visit('F', k, step); err != nil {
						return err
					}
				}
				if k >= 1 {
					c := p - 1 - step
					if err := visit('B', k-1, c); err != nil {
						return err
					}
					if err := visit('W', k-1, c); err != nil {
						return err
					}
				}
			}
		}
	case WeiPipeZB1:
		// The backward splits: each turn pairs a forward with a B pass, and
		// the W pass runs one turn later (bounded pending set of one).
		type pending struct{ k, c int }
		var queue []pending
		for k := 0; k <= R; k++ {
			for step := 0; step < p; step++ {
				if k < R {
					if err := visit('F', k, step); err != nil {
						return err
					}
				}
				if k >= 1 {
					c := p - 1 - step
					if err := visit('B', k-1, c); err != nil {
						return err
					}
					queue = append(queue, pending{k - 1, c})
					if len(queue) > 1 {
						q := queue[0]
						queue = queue[1:]
						if err := visit('W', q.k, q.c); err != nil {
							return err
						}
					}
				}
			}
		}
		for _, q := range queue {
			if err := visit('W', q.k, q.c); err != nil {
				return err
			}
		}
	case WeiPipeZB2:
		// All B passes of a microbatch run in reverse order (interleaved
		// with the next microbatch's forwards), then its W passes run in
		// forward chunk order so gradients retire as early as possible.
		for k := 0; k <= R; k++ {
			for step := 0; step < p; step++ {
				if k < R {
					if err := visit('F', k, step); err != nil {
						return err
					}
				}
				if k >= 1 {
					if err := visit('B', k-1, p-1-step); err != nil {
						return err
					}
				}
			}
			if k >= 1 {
				for c := 0; c < p; c++ {
					if err := visit('W', k-1, c); err != nil {
						return err
					}
				}
			}
		}
	default:
		return fmt.Errorf("pipeline: unknown WeiPipe variant %d", v)
	}
	return nil
}

// runSchedule executes the variant's program order against the compute
// stages.
func (w *WeiPipe) runSchedule(st *wpState) error {
	return forEachStage(w.variant, st.R, w.t.Size(), func(phase byte, k, c int) error {
		switch phase {
		case 'F':
			return w.fStage(st, k, c)
		case 'B':
			return w.bStage(st, k, c)
		default:
			return w.wStage(st, k, c)
		}
	})
}

// ---- belt plumbing -------------------------------------------------------

// beltRecv obtains the next belt payload the schedule consumes: from the
// prefetch engine when overlapped, or with a blocking transport receive
// otherwise. Both paths record the compute thread's wait as belt stall, so
// the two modes report comparable exposed-communication time.
func (w *WeiPipe) beltRecv(src int, tag Tag) ([]float32, error) {
	if w.engine != nil && tag.Kind == comm.KindWeight && beltOf(tag) != beltXchg {
		span := w.tr.Begin()
		payload, err := w.engine.next(tag, w.stats)
		w.tr.End(span, trace.CodeStall, int64(tag.Kind), int64(src))
		return payload, err
	}
	return w.beltRecvOn(w.t, src, tag)
}

// beltRecvOn is beltRecv's blocking transport path against an explicit
// transport (the ring, or a grouped belt's sub-ring).
func (w *WeiPipe) beltRecvOn(t Transport, src int, tag Tag) ([]float32, error) {
	span := w.tr.Begin()
	start := time.Now()
	payload, err := t.Recv(src, tag)
	wait := time.Since(start)
	w.tr.End(span, trace.CodeStall, int64(tag.Kind), int64(src))
	w.stats.RecordBeltStallKind(tag.Kind, wait)
	if tag.Kind == comm.KindWeight {
		// In overlapped mode the engine owns every weight-belt transport
		// receive, so this counter stays zero there by construction.
		w.stats.RecordComputeRecvWait(wait)
	}
	return payload, err
}

// sendBelt passes an exhausted-here belt buffer on: in overlap mode the
// buffer is donated to the transport (zero-copy on the in-process fabric),
// in blocking mode it is copied out and released — the legacy semantics the
// overlapped engine is measured against.
func (w *WeiPipe) sendBelt(dst int, tag Tag, payload []float32) error {
	if w.engine != nil {
		return comm.SendOwned(w.t, dst, tag, payload)
	}
	err := w.t.Send(dst, tag, payload)
	comm.Release(payload)
	return err
}

// recvBeltChunk receives belt-copy `belt` of chunk c for use index `use`,
// installs it into the local model buffer and forwards it downstream. In
// overlap mode the engine has already relayed the chunk downstream at
// receive time (store-and-forward), so only the install remains here.
func (w *WeiPipe) recvBeltChunk(belt, c, use int) error {
	if w.grouped != nil {
		return w.recvBeltChunkGrouped(belt, c, use)
	}
	src := (w.t.Rank() - 1 + w.t.Size()) % w.t.Size()
	if use == 0 {
		src = w.owner(c)
	}
	payload, err := w.beltRecv(src, Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, use)})
	if err != nil {
		comm.Release(payload)
		return err
	}
	if w.opts.BitFlip != nil {
		w.opts.BitFlip.Flip(w.t.Rank(), w.iter, FlipBeltWeight, w.beltBody(payload))
	}
	// Verify before installing *and* before the blocking-mode forward: a
	// corrupt chunk neither enters this rank's compute nor travels on. (The
	// overlapped engine store-and-forwards at receive time; its relayed copy
	// is re-verified by the downstream consumer, so nothing corrupt is ever
	// consumed there either.)
	if verr := w.verifyBelt(comm.SiteBelt, comm.KindWeight, c, payload); verr != nil {
		comm.Release(payload)
		return verr
	}
	lo, hi := w.chunkRange(c)
	w.mdl.SetChunk(lo, hi, w.beltBody(payload))
	if w.engine == nil && use < w.totalUses()-1 {
		err = w.t.Send((w.t.Rank()+1)%w.t.Size(),
			Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, use+1)}, payload)
	}
	comm.Release(payload)
	return err
}

// accumulateAndForwardD folds this worker's local gradient contribution for
// chunk c into the belt accumulator and passes it on (or retires it to the
// owner after the final use). It takes ownership of local: the buffer is
// donated downstream in overlap mode and released here in blocking mode —
// callers must not touch it after the call.
func (w *WeiPipe) accumulateAndForwardD(c, use int, local []float32) error {
	body := w.beltBody(local)
	if use > 0 {
		prev := (w.t.Rank() - 1 + w.t.Size()) % w.t.Size()
		d, err := w.beltRecv(prev, Tag{Kind: comm.KindGrad, A: c, B: w.enc(beltBwd, use)})
		if err != nil {
			comm.Release(d)
			comm.Release(local)
			return err
		}
		// Verify the incoming accumulator before folding our contribution in
		// — summing over a corrupt partial would launder the flip into a
		// freshly sealed chunk.
		if verr := w.verifyBelt(comm.SiteBelt, comm.KindGrad, c, d); verr != nil {
			comm.Release(d)
			comm.Release(local)
			return verr
		}
		db := w.beltBody(d)
		if len(db) != len(body) {
			comm.Release(d)
			comm.Release(local)
			return fmt.Errorf("pipeline: D chunk size mismatch %d != %d", len(db), len(body))
		}
		for i := range body {
			body[i] += db[i]
		}
		comm.Release(d)
	}
	maybeRoundF16(w.opts, body)
	if use < w.totalUses()-1 {
		tag := Tag{Kind: comm.KindGrad, A: c, B: w.enc(beltBwd, use+1)}
		w.sealBelt(tag, local)
		return w.sendBelt((w.t.Rank()+1)%w.t.Size(), tag, local)
	}
	tag := Tag{Kind: comm.KindGrad, A: c, B: w.enc(beltRetire, 0)}
	w.sealBelt(tag, local)
	// The buddy copy must go out before the retire send: the retire donates
	// the buffer in overlap mode, after which local is no longer ours.
	if err := w.buddyRetire(c, local); err != nil {
		comm.Release(local)
		return err
	}
	return w.sendBelt(w.owner(c), tag, local)
}

// ---- compute stages ------------------------------------------------------

// fStage runs the forward of chunk c for this worker's round-k microbatch.
// The belt use index equals the microbatch index kP+rank.
func (w *WeiPipe) fStage(st *wpState, k, c int) error {
	mb := k*w.t.Size() + w.t.Rank()
	w.post(mb, 'F')
	if err := w.recvBeltChunk(beltFwd, c, mb); err != nil {
		return err
	}
	b := st.batches[mb]
	caches, ok := st.caches[mb]
	if !ok {
		arena := w.apool.acquire()
		st.arenas[mb] = arena
		caches = newCaches(0, len(w.mdl.Modules), b.G(), b.S(), arena)
		st.caches[mb] = caches
		st.wRemaining[mb] = w.t.Size()
	}
	lo, hi := w.chunkRange(c)
	span := w.tr.Begin()
	out, loss := forwardRange(w.mdl, lo, hi, st.fwdX[mb], b, caches[lo:hi], w.opts.Recompute)
	w.tr.End(span, trace.CodeF, int64(mb), int64(c))
	st.lossSum += loss
	if out != nil {
		st.fwdX[mb] = out
	} else {
		delete(st.fwdX, mb)
	}
	return nil
}

// bStage runs the B pass of chunk c for this worker's round-k microbatch.
func (w *WeiPipe) bStage(st *wpState, k, c int) error {
	mb := k*w.t.Size() + w.t.Rank()
	w.post(mb, 'B')
	if err := w.recvBeltChunk(beltBwd, c, mb); err != nil {
		return err
	}
	caches := st.caches[mb]
	lo, hi := w.chunkRange(c)
	span := w.tr.Begin()
	dx := backwardRangeB(w.mdl, lo, hi, st.bwdDy[mb], caches[lo:hi], w.opts.Recompute)
	w.tr.End(span, trace.CodeB, int64(mb), int64(c))
	if lo > 0 && dx != nil {
		st.bwdDy[mb] = dx
	} else {
		delete(st.bwdDy, mb)
	}
	return nil
}

// wStage runs the W pass of chunk c for this worker's round-k microbatch,
// folds the result into the belt accumulator and forwards it. When the
// microbatch's last W pass completes, its activations are released.
func (w *WeiPipe) wStage(st *wpState, k, c int) error {
	mb := k*w.t.Size() + w.t.Rank()
	w.post(mb, 'W')
	caches := st.caches[mb]
	lo, hi := w.chunkRange(c)
	span := w.tr.Begin()
	grads := make([]*nn.ParamSet, len(w.mdl.Modules))
	for i := lo; i < hi; i++ {
		grads[i] = w.mdl.Modules[i].Params().NewLike()
	}
	backwardRangeW(w.mdl, lo, hi, caches[lo:hi], grads)
	size := w.mdl.ChunkSize(lo, hi)
	local := comm.GetBuf(size + w.pad)
	flattenGradsRange(w.mdl, grads, lo, hi, local[:size])
	w.tr.End(span, trace.CodeW, int64(mb), int64(c))
	// accumulateAndForwardD owns local from here (donated or released inside).
	if err := w.accumulateAndForwardD(c, mb, local); err != nil {
		return err
	}
	st.wRemaining[mb]--
	if st.wRemaining[mb] == 0 {
		delete(st.caches, mb)
		delete(st.wRemaining, mb)
		// The microbatch's boundary tensors (fwdX/bwdDy) and stashes are all
		// dead now; its scratch arena can be recycled for the next round.
		w.apool.release(st.arenas[mb])
		delete(st.arenas, mb)
	}
	return nil
}

var _ Trainer = (*WeiPipe)(nil)
