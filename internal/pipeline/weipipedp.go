package pipeline

import (
	"fmt"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
)

// WeiPipeDP is hybrid 2-D parallelism: the world of P workers is split into
// P/wpSize data-parallel replicas, each an independent WeiPipe ring over
// wpSize workers. Replica g trains the microbatches g, g+G, g+2G, …; at the
// end of the iteration each chunk's owners — one per replica, at the same
// ring position — all-reduce their fully-accumulated gradient chunk before
// stepping, so the weight update is identical everywhere and matches the
// serial reference.
//
// This is the scale-out composition the paper's conclusion points toward:
// the WeiPipe rings keep their fixed-size weight traffic on the
// intra-replica links, and only the (equally weight-sized) owner gradients
// cross replicas once per iteration.
type WeiPipeDP struct {
	world   Transport
	inner   *WeiPipe
	groups  int
	wpSize  int
	groupID int
}

// NewWeiPipeDP builds the hybrid trainer. wpSize must divide the world
// size; workers [g·wpSize, (g+1)·wpSize) form replica g.
func NewWeiPipeDP(t Transport, cfg model.Config, opts Options, v WeiPipeVariant, wpSize int) (*WeiPipeDP, error) {
	world := t.Size()
	if wpSize <= 0 || world%wpSize != 0 {
		return nil, fmt.Errorf("pipeline: world %d not divisible into WeiPipe rings of %d", world, wpSize)
	}
	groups := world / wpSize
	gid := t.Rank() / wpSize
	innerRank := t.Rank() % wpSize

	ringRanks := make([]int, wpSize)
	for i := range ringRanks {
		ringRanks[i] = gid*wpSize + i
	}
	ring, err := comm.NewGroup(t, ringRanks, gid+1)
	if err != nil {
		return nil, err
	}
	// Buddy replication shadows the step from the pre-all-reduce retired
	// gradient; with a cross-replica reduce in the step path the replay
	// would diverge, so the hybrid disables it.
	opts.Buddy = false
	w, err := NewWeiPipe(ring, cfg, opts, v)
	if err != nil {
		return nil, err
	}
	if groups > 1 {
		crossRanks := make([]int, groups)
		for g := range crossRanks {
			crossRanks[g] = g*wpSize + innerRank
		}
		cross, err := comm.NewGroup(t, crossRanks, 64+innerRank)
		if err != nil {
			return nil, err
		}
		w.dpGroup = cross
	}
	return &WeiPipeDP{world: t, inner: w, groups: groups, wpSize: wpSize, groupID: gid}, nil
}

// Model implements Trainer.
func (h *WeiPipeDP) Model() *model.Model { return h.inner.Model() }

// OwnedModules implements Owner (the inner ring's owned chunk; every
// replica owns a full copy, so replica 0 alone covers the model).
func (h *WeiPipeDP) OwnedModules() (int, int) { return h.inner.OwnedModules() }

// TrainIteration implements Trainer.
func (h *WeiPipeDP) TrainIteration(batches []data.Batch) (float64, error) {
	n := len(batches)
	if n%(h.groups*h.wpSize) != 0 {
		return 0, fmt.Errorf("pipeline: %d microbatches not divisible by %d replicas × %d workers",
			n, h.groups, h.wpSize)
	}
	mine := data.Split(batches, h.groups)[h.groupID]
	h.inner.globalN = n
	loss, err := h.inner.TrainIteration(mine)
	if err != nil {
		return 0, err
	}
	// inner loss is the replica's mean microbatch loss; average replicas.
	total, err := comm.AllReduceScalarSum(h.world, loss, (h.inner.iter<<8)+7)
	if err != nil {
		return 0, err
	}
	return total / float64(h.world.Size()), nil
}

var (
	_ Trainer = (*WeiPipeDP)(nil)
	_ Owner   = (*WeiPipeDP)(nil)
)
