package pipeline

import (
	"fmt"

	"weipipe/internal/comm"
	"weipipe/internal/optim"
)

// Buddy replication gives every WeiPipe rank a live, bit-exact replica of
// its ring successor's trainer state — fp32 master weights, AdamW moments
// and step count — so a dead rank's shard can be rebuilt by its
// predecessor without touching a checkpoint.
//
// The trick is that the wire already carries everything the replica needs.
// Chunk c's fully-accumulated gradient retires at worker P−1, which
// delivers it to the owner. With replication on, the retiring worker sends
// one extra copy of the very same payload to the owner's predecessor (the
// "buddy"); both sends are asynchronous (Send never blocks on this
// transport family), and the belt messages (KindWeight/KindGrad) are
// untouched, so the critical path's message count per iteration is
// identical with replication on or off.
//
// The buddy cannot copy the owner's optimizer moments off the wire — they
// never travel. Instead it *replays* the owner's step: both sides start
// from the same deterministic initial state (model.Build is seeded, fresh
// moments are zero), and each iteration both apply the identical
// arithmetic — the same raw gradient bytes, the same 1/(n·scale) factor,
// the same globally-all-reduced clip/guard decision (AllReduceScalarSum
// returns the identical float64 on every rank). By induction the shadow
// state is bit-identical to the owner's forever.
//
// Rank r owns chunk (r+1) mod P, so r's successor owns chunk (r+2) mod P:
// that is the chunk rank r shadows. The buddy of chunk c's owner is rank
// (owner(c)−1+P) mod P. On rank P−1 one of the dual deliveries is to
// itself; it short-circuits through a local stash instead of the wire.

// buddyState is the shadow replica of the successor's owned chunk.
type buddyState struct {
	chunk int // the shadowed chunk: (rank+2) mod P
	w     []float32
	opt   *optim.AdamW

	scratch      []float32 // per-iteration gradient replay buffer
	pendingD     []float32 // local stash for the rank P−1 self-delivery
	pendingLocal bool

	iters int // completed shadow step phases

	// One-deep rollback so a repair cut at the previous iteration barrier
	// can be exported even when this iteration's step already ran.
	rbW, rbM, rbV []float32
	rbStep        int
	rbIters       int
	rbValid       bool
}

// initBuddy sets up buddy replication (and the owned chunk's rollback
// stash). Called from NewWeiPipe before any training, while mdl still
// holds the deterministic seed-built initial weights — which is why the
// shadow needs no bootstrap message.
func (w *WeiPipe) initBuddy() {
	p := w.t.Size()
	sc := (w.t.Rank() + 2) % p
	lo, hi := w.chunkRange(sc)
	size := w.mdl.ChunkSize(lo, hi)
	bs := &buddyState{
		chunk:   sc,
		w:       make([]float32, size),
		opt:     optim.NewAdamW(size, w.opts.Adam),
		scratch: make([]float32, size),
		// The self-stash holds the exact sealed payload the wire path would
		// deliver, trailer included, so both delivery paths verify alike.
		pendingD: make([]float32, size+w.pad),
		rbW:      make([]float32, size),
		rbM:      make([]float32, size),
		rbV:      make([]float32, size),
	}
	w.mdl.FlattenChunk(lo, hi, bs.w)
	w.buddy = bs

	own := len(w.masterW)
	w.rbW = make([]float32, own)
	w.rbM = make([]float32, own)
	w.rbV = make([]float32, own)
}

// buddyRank returns the rank shadowing chunk c: the owner's predecessor.
func (w *WeiPipe) buddyRank(c int) int {
	p := w.t.Size()
	return (w.owner(c) - 1 + p) % p
}

// buddyRetire dual-delivers chunk c's freshly retired gradient to its
// buddy. Called by the retiring worker (rank P−1) right after the retire
// send; the payload is the exact bytes the owner receives. The send is
// asynchronous and uses KindBuddy, leaving the critical path's
// KindWeight/KindGrad message counts untouched.
func (w *WeiPipe) buddyRetire(c int, local []float32) error {
	if w.buddy == nil {
		return nil
	}
	b := w.buddyRank(c)
	if b == w.t.Rank() {
		if len(local) != len(w.buddy.pendingD) {
			return fmt.Errorf("pipeline: buddy self-stash size mismatch %d != %d",
				len(local), len(w.buddy.pendingD))
		}
		copy(w.buddy.pendingD, local)
		w.buddy.pendingLocal = true
		return nil
	}
	return w.t.Send(b, Tag{Kind: comm.KindBuddy, A: c, B: w.enc(beltRetire, 0)}, local)
}

// stashOwnedRollback snapshots the owned chunk's pre-step state, so a
// repair cut at the previous iteration barrier stays exportable after this
// iteration's step mutates the live state.
func (w *WeiPipe) stashOwnedRollback() {
	if w.buddy == nil {
		return
	}
	copy(w.rbW, w.masterW)
	w.rbStep = w.opt.CopyStateInto(w.rbM, w.rbV)
	w.rbIters = w.ownerIters
	w.rbValid = true
}

// buddyStep replays the successor's optimizer step on the shadow replica,
// consuming the dual-delivered retired gradient and the step-phase
// decisions (gradient factor, global Σg², skip verdict) the owner's phase
// just recorded — all of which are bit-identical on every rank.
func (w *WeiPipe) buddyStep() error {
	bs := w.buddy
	var d []float32
	if bs.pendingLocal {
		d = bs.pendingD
		bs.pendingLocal = false
	} else {
		var err error
		d, err = w.t.Recv(w.t.Size()-1,
			Tag{Kind: comm.KindBuddy, A: bs.chunk, B: w.enc(beltRetire, 0)})
		if err != nil {
			return err
		}
		defer comm.Release(d)
	}
	// The dual-delivered payload carries the retiring worker's seal; verify
	// it before replaying — a flip in the buddy copy would otherwise fork
	// the shadow from the owner silently.
	if verr := w.verifyBelt(comm.SiteBuddy, comm.KindBuddy, bs.chunk, d); verr != nil {
		return verr
	}
	db := w.beltBody(d)
	if len(db) != len(bs.w) {
		return fmt.Errorf("pipeline: buddy gradient size mismatch %d != %d", len(db), len(bs.w))
	}
	for i := range db {
		bs.scratch[i] = db[i] * w.lastInv
	}
	// Pre-step rollback stash, mirroring the owned chunk's.
	copy(bs.rbW, bs.w)
	bs.rbStep = bs.opt.CopyStateInto(bs.rbM, bs.rbV)
	bs.rbIters = bs.iters
	bs.rbValid = true
	if !w.lastSkip {
		if c := clipScale(w.opts, w.lastSumSq); c != 1 {
			for i := range bs.scratch {
				bs.scratch[i] *= c
			}
		}
		bs.opt.Step(bs.w, bs.scratch)
	}
	bs.iters++
	return nil
}

// StateExport is a point-in-time copy of one chunk's full trainer state,
// harvested during elastic repair.
type StateExport struct {
	W, M, V []float32
	Step    int
}

// exportAt resolves "state as of completed iteration atIter" against a
// live/rollback pair: iters counts completed step phases, and the rollback
// holds the state from just before the latest one.
func exportAt(atIter, iters int, curW, curM, curV []float32, curStep int,
	rbValid bool, rbIters int, rbW, rbM, rbV []float32, rbStep int) (StateExport, error) {

	cp := func(w, m, v []float32, step int) StateExport {
		return StateExport{
			W:    append([]float32(nil), w...),
			M:    append([]float32(nil), m...),
			V:    append([]float32(nil), v...),
			Step: step,
		}
	}
	switch {
	case iters == atIter:
		return cp(curW, curM, curV, curStep), nil
	case iters == atIter+1 && rbValid && rbIters == atIter:
		return cp(rbW, rbM, rbV, rbStep), nil
	default:
		return StateExport{}, fmt.Errorf("pipeline: state at iteration %d unavailable (completed %d, rollback valid=%v)",
			atIter, iters, rbValid)
	}
}

// ExportOwnedStateAt returns the owned chunk's state as of completed
// iteration atIter — the live state, or the one-deep rollback when this
// rank already stepped past the repair cut. The trainer must be quiescent.
func (w *WeiPipe) ExportOwnedStateAt(atIter int) (StateExport, error) {
	step, m, v := w.opt.ExportState()
	return exportAt(atIter, w.ownerIters, w.masterW, m, v, step,
		w.rbValid, w.rbIters, w.rbW, w.rbM, w.rbV, w.rbStep)
}

// ExportBuddyStateAt returns the shadowed successor chunk's state as of
// completed iteration atIter. Fails when buddy replication is off.
func (w *WeiPipe) ExportBuddyStateAt(atIter int) (StateExport, error) {
	bs := w.buddy
	if bs == nil {
		return StateExport{}, fmt.Errorf("pipeline: buddy replication disabled on rank %d", w.t.Rank())
	}
	step, m, v := bs.opt.ExportState()
	return exportAt(atIter, bs.iters, bs.w, m, v, step,
		bs.rbValid, bs.rbIters, bs.rbW, bs.rbM, bs.rbV, bs.rbStep)
}

// BuddyChunk reports which chunk this rank shadows (ok=false when buddy
// replication is off).
func (w *WeiPipe) BuddyChunk() (int, bool) {
	if w.buddy == nil {
		return 0, false
	}
	return w.buddy.chunk, true
}

// CompletedStepPhases reports how many iteration step phases this rank has
// fully committed — the lower of the owned chunk's and the shadow's
// counters, which is what bounds the repair cut this rank can serve.
func (w *WeiPipe) CompletedStepPhases() int {
	if w.buddy != nil && w.buddy.iters < w.ownerIters {
		return w.buddy.iters
	}
	return w.ownerIters
}

// SeedBuddyFromState reinitialises the shadow replica from harvested state
// (used when restoring a repaired snapshot into a fresh cluster, where the
// successor's moments are non-zero). The slices are copied in.
func (w *WeiPipe) SeedBuddyFromState(st StateExport, iters int) error {
	bs := w.buddy
	if bs == nil {
		return nil
	}
	if len(st.W) != len(bs.w) {
		return fmt.Errorf("pipeline: buddy seed size mismatch %d != %d", len(st.W), len(bs.w))
	}
	copy(bs.w, st.W)
	if err := bs.opt.LoadState(st.Step, st.M, st.V); err != nil {
		return err
	}
	bs.iters = iters
	bs.rbValid = false
	bs.pendingLocal = false
	return nil
}
