package pipeline

import (
	"testing"

	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/trace"
)

// traceTestConfig is a tiny 4-layer model, enough for a p=2 ring.
func traceTestConfig() model.Config {
	return model.Config{Vocab: 13, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 8, Seed: 7}
}

func traceTestBatches(n int) []data.Batch {
	gen := data.NewGenerator(99, traceTestConfig().Vocab, 8)
	out := make([]data.Batch, n)
	for i := range out {
		out[i] = gen.Next(1)
	}
	return out
}

// codesByRank collects which span codes each rank emitted.
func codesByRank(set *trace.Set) map[int32]map[trace.Code]int {
	out := make(map[int32]map[trace.Code]int)
	for _, e := range set.Events() {
		m := out[e.Rank]
		if m == nil {
			m = make(map[trace.Code]int)
			out[e.Rank] = m
		}
		m[e.Code]++
	}
	return out
}

// TestWeiPipeTraceOverlap runs an overlapped WZB2 cluster with tracing on
// and checks every instrumentation layer reported: per-stage compute spans,
// step and optimizer spans, stall spans, engine prefetch/relay spans and
// transport send/recv spans — on every rank.
func TestWeiPipeTraceOverlap(t *testing.T) {
	const p, n, iters = 2, 4, 2
	set := trace.NewSet(p, 1<<14)
	opts := Options{Overlap: true, Trace: set}
	batches := traceTestBatches(n)
	res, err := RunCluster(StrategyWZB2, p, traceTestConfig(), opts, iters,
		func(int) []data.Batch { return batches })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != iters {
		t.Fatalf("losses = %d", len(res.Losses))
	}
	if set.Dropped() != 0 {
		t.Fatalf("ring overflowed: %d dropped", set.Dropped())
	}

	byRank := codesByRank(set)
	if len(byRank) != p {
		t.Fatalf("ranks seen = %d, want %d", len(byRank), p)
	}
	// Per rank per iteration: p F, p B, p W stages (n/p rounds × p chunks ×
	// ... = n stages of each kind per iteration: R rounds × p chunks).
	wantStages := n * iters
	for rank, codes := range byRank {
		if codes[trace.CodeStep] != iters {
			t.Errorf("rank %d: step spans = %d, want %d", rank, codes[trace.CodeStep], iters)
		}
		for _, c := range []trace.Code{trace.CodeF, trace.CodeB, trace.CodeW} {
			if codes[c] != wantStages {
				t.Errorf("rank %d: %v spans = %d, want %d", rank, c, codes[c], wantStages)
			}
		}
		if codes[trace.CodeOpt] != iters {
			t.Errorf("rank %d: opt spans = %d, want %d", rank, codes[trace.CodeOpt], iters)
		}
		if codes[trace.CodeStall] == 0 {
			t.Errorf("rank %d: no stall spans", rank)
		}
		// Overlap engine: one prefetch per F/B stage; relays on all but the
		// final use of each belt.
		if codes[trace.CodePrefetch] != 2*wantStages {
			t.Errorf("rank %d: prefetch spans = %d, want %d", rank, codes[trace.CodePrefetch], 2*wantStages)
		}
		if codes[trace.CodeRelay] == 0 {
			t.Errorf("rank %d: no relay spans", rank)
		}
		if codes[trace.CodeSend] == 0 || codes[trace.CodeRecv] == 0 {
			t.Errorf("rank %d: transport spans missing (send=%d recv=%d)",
				rank, codes[trace.CodeSend], codes[trace.CodeRecv])
		}
	}

	// The metrics rollup must attribute compute into every step span.
	ms := trace.PerIteration(set.Events())
	if len(ms) != p*iters {
		t.Fatalf("metrics rows = %d, want %d", len(ms), p*iters)
	}
	for _, m := range ms {
		if m.Step <= 0 || m.Fwd <= 0 || m.Bwd <= 0 || m.Wgrad <= 0 {
			t.Fatalf("empty metrics row: %+v", m)
		}
	}

	// And the Chrome export must carry it all.
	blob, err := set.ChromeTrace(&trace.RunMeta{Strategy: "wzb2", P: p, N: n, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	events, meta, err := trace.ParseChrome(blob)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.Strategy != "wzb2" {
		t.Fatalf("meta = %+v", meta)
	}
	if len(events) == 0 {
		t.Fatal("no chrome events")
	}
}

// TestTraceBlockingModeStalls checks the blocking (non-overlap) path emits
// the same span families minus the engine lanes.
func TestTraceBlockingModeStalls(t *testing.T) {
	const p, n = 2, 2
	set := trace.NewSet(p, 1<<13)
	opts := Options{Trace: set}
	batches := traceTestBatches(n)
	if _, err := RunCluster(StrategyWZB2, p, traceTestConfig(), opts, 1,
		func(int) []data.Batch { return batches }); err != nil {
		t.Fatal(err)
	}
	byRank := codesByRank(set)
	for rank, codes := range byRank {
		if codes[trace.CodePrefetch] != 0 || codes[trace.CodeRelay] != 0 {
			t.Errorf("rank %d: engine spans in blocking mode", rank)
		}
		if codes[trace.CodeStall] == 0 {
			t.Errorf("rank %d: no stall spans in blocking mode", rank)
		}
		if codes[trace.CodeF] == 0 || codes[trace.CodeB] == 0 || codes[trace.CodeW] == 0 {
			t.Errorf("rank %d: compute spans missing", rank)
		}
	}
}

// TestTraceOffIsUntouched pins that a run without a trace set behaves
// identically and that instrumented runners tolerate the nil tracer (the
// rest of the suite runs with tracing off, so any panic would surface
// there too — this is the explicit contract check).
func TestTraceOffIsUntouched(t *testing.T) {
	const p, n = 2, 2
	batches := traceTestBatches(n)
	on := trace.NewSet(p, 1<<13)
	resOff, err := RunCluster(StrategyWZB2, p, traceTestConfig(), Options{Overlap: true}, 1,
		func(int) []data.Batch { return batches })
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := RunCluster(StrategyWZB2, p, traceTestConfig(), Options{Overlap: true, Trace: on}, 1,
		func(int) []data.Batch { return batches })
	if err != nil {
		t.Fatal(err)
	}
	// Tracing must not perturb the numerics: bit-identical weights.
	if len(resOff.Weights) != len(resOn.Weights) {
		t.Fatal("weight length mismatch")
	}
	for i := range resOff.Weights {
		if resOff.Weights[i] != resOn.Weights[i] {
			t.Fatalf("weights diverge at %d: %v != %v", i, resOff.Weights[i], resOn.Weights[i])
		}
	}
}
