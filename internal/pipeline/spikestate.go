package pipeline

import (
	"fmt"
	"math"
)

// Spike-detector snapshot plumbing. The detector's window is float64 (its
// verdicts hinge on the bit-identical globally-agreed Σg²), while checkpoint
// sections carry float32 — so the state rides in a section as float64 bit
// patterns split across float32 word pairs. Every copy along the snapshot
// paths is a bitwise move (no float arithmetic), and the checkpoint codec
// round-trips raw bits, so a restored detector is exactly the saved one and
// a resumed run's spike verdicts stay bit-identical to an uninterrupted run.

// spikeSection names the snapshot section carrying the detector state.
const spikeSection = "spike.state"

// packF64Bits encodes float64 values as (lo, hi) float32 bit-pattern pairs.
func packF64Bits(xs []float64) []float32 {
	out := make([]float32, 2*len(xs))
	for i, x := range xs {
		b := math.Float64bits(x)
		out[2*i] = math.Float32frombits(uint32(b))
		out[2*i+1] = math.Float32frombits(uint32(b >> 32))
	}
	return out
}

// unpackF64Bits reverses packF64Bits.
func unpackF64Bits(xs []float32) []float64 {
	out := make([]float64, len(xs)/2)
	for i := range out {
		lo := uint64(math.Float32bits(xs[2*i]))
		hi := uint64(math.Float32bits(xs[2*i+1]))
		out[i] = math.Float64frombits(hi<<32 | lo)
	}
	return out
}

// exportSpikeAt returns the packed spike-detector state as of completed
// iteration atIter, bridging one step past the cut with the detector's
// one-deep rollback — the same live/rollback resolution exportAt applies to
// the trainer state. nil when no detector is armed.
func (w *WeiPipe) exportSpikeAt(atIter int) ([]float32, error) {
	if w.spike == nil {
		return nil, nil
	}
	switch {
	case w.ownerIters == atIter:
		return packF64Bits(w.spike.ExportState(false)), nil
	case w.ownerIters == atIter+1:
		return packF64Bits(w.spike.ExportState(true)), nil
	}
	return nil, fmt.Errorf("pipeline: spike state at iteration %d unavailable (completed %d)",
		atIter, w.ownerIters)
}

// restoreSpikeState loads a packed detector state (nil or empty resets the
// window — the right behaviour for snapshots that predate the detector).
func (w *WeiPipe) restoreSpikeState(st []float32) {
	if w.spike == nil {
		return
	}
	w.spike.RestoreState(unpackF64Bits(st))
}

// SpikeCounter is implemented by trainers running the grad-norm spike
// detector (Options.SpikeWindow).
type SpikeCounter interface {
	// SpikeSteps reports how many steps the detector flagged as anomalous.
	SpikeSteps() int
}

// SpikeSteps implements SpikeCounter for WeiPipe.
func (w *WeiPipe) SpikeSteps() int {
	if w.spike == nil {
		return 0
	}
	return w.spike.Spikes()
}

// SpikeSteps implements SpikeCounter for the hybrid trainer.
func (h *WeiPipeDP) SpikeSteps() int { return h.inner.SpikeSteps() }

// maxSpikes returns the largest per-trainer spike count (the verdicts are
// global, so every detecting rank agrees; max is robust to mixtures).
func maxSpikes(trainers []Trainer) int {
	out := 0
	for _, tr := range trainers {
		if sc, ok := tr.(SpikeCounter); ok && sc.SpikeSteps() > out {
			out = sc.SpikeSteps()
		}
	}
	return out
}
