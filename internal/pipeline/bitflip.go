package pipeline

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Seeded in-memory bit-flip chaos. The transport chaos injectors (frame
// ChaosConfig, message FaultTransport) exercise the *wire* failure model;
// this one exercises the silent-data-corruption model the integrity layer
// defends against: a bit flipped in resident state (master weights,
// optimizer moments), in a staged belt payload after the link CRC was
// already verified, or in a matmul's output between the ALU and the
// consumer. Every event is a pure function of the schedule seed, so a
// soak failure replays exactly, and events fire at most once even across
// restart attempts (the injector outlives the trainers it corrupts).

// FlipSite names where a scheduled bit flip lands.
type FlipSite int

// The injection sites of the chaos tier. Each maps to one of the
// integrity layer's detection points (DESIGN.md §15).
const (
	// FlipWeights corrupts the rank's resident fp32 master weights at the
	// start of the scheduled iteration (detected by the resident guard).
	FlipWeights FlipSite = iota
	// FlipMomentM / FlipMomentV corrupt the AdamW moment vectors
	// (detected by the resident guard).
	FlipMomentM
	FlipMomentV
	// FlipBeltWeight corrupts a staged weight-belt payload between
	// receive and verification (detected by the chunk checksum).
	FlipBeltWeight
	// FlipBeltGrad corrupts a staged gradient-belt payload (detected by
	// the chunk checksum at the accumulate or retire hop).
	FlipBeltGrad
	// FlipKernel corrupts a matmul output between the kernel and its
	// ABFT verification (detected by the row-checksum envelope). Fired
	// through tensor.SetABFTFault on a global call ordinal rather than a
	// (rank, iteration) point, since the kernel layer is rank-agnostic.
	FlipKernel

	flipSiteCount
)

// String names the site for logs and soak reports.
func (s FlipSite) String() string {
	switch s {
	case FlipWeights:
		return "weights"
	case FlipMomentM:
		return "moment-m"
	case FlipMomentV:
		return "moment-v"
	case FlipBeltWeight:
		return "belt-weight"
	case FlipBeltGrad:
		return "belt-grad"
	case FlipKernel:
		return "kernel"
	}
	return fmt.Sprintf("site-%d", int(s))
}

// BitFlipEvent schedules one bit flip. For kernel events Rank/Iter are
// ignored and Word selects the global matmul ordinal to corrupt.
type BitFlipEvent struct {
	// Rank and Iter select the (rank, iteration) point at which the flip
	// fires; the first matching injection call in that iteration takes it.
	Rank, Iter int
	// Site selects the target buffer.
	Site FlipSite
	// Word indexes the target element (modulo the buffer length at fire
	// time). For FlipKernel it is the matmul-call ordinal instead.
	Word uint64
	// Bit is the bit to flip within the float32 word, 0–30. Bit 31 (the
	// sign of what may be a tiny value) is avoided by the generator so
	// weight flips stay detectable above rounding noise — the generator
	// biases toward exponent and high-mantissa bits, where real SDC does
	// its damage.
	Bit uint
}

// GenBitFlips derives a deterministic flip schedule from a seed: count
// events spread over iterations [2, iters) (leaving the first iterations
// clean so a checkpoint exists before the first fault) across ranks and
// the given sites. Iteration/rank/site/word/bit are all drawn from
// independent splitmix64 streams, mirroring launch.GenSchedule.
func GenBitFlips(seed uint64, ranks, iters, count int, sites []FlipSite) []BitFlipEvent {
	if len(sites) == 0 {
		sites = []FlipSite{FlipWeights, FlipMomentM, FlipMomentV, FlipBeltWeight, FlipBeltGrad}
	}
	lo := 2
	if iters <= lo {
		lo = 0
	}
	span := iters - lo
	if span < 1 {
		span = 1
	}
	out := make([]BitFlipEvent, 0, count)
	s := seed
	draw := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := 0; i < count; i++ {
		ev := BitFlipEvent{
			Rank: int(draw() % uint64(ranks)),
			Iter: lo + int(draw()%uint64(span)),
			Site: sites[draw()%uint64(len(sites))],
			Word: draw(),
			// Exponent and high-mantissa bits (16–30): the corruption class
			// that actually damages training. Checksummed sites detect any
			// bit, but keeping the schedule in the damaging band makes an
			// undetected flip a training-visible failure, not a benign one.
			Bit: 16 + uint(draw()%15),
		}
		if ev.Site == FlipKernel {
			// Kernel flips are caught by the ABFT magnitude envelope, not a
			// CRC: pin the high exponent bit, whose flip always throws the
			// row sum far outside the tolerance (low-mantissa flips of tiny
			// values sit below the documented detection floor).
			ev.Bit = 30
		}
		out = append(out, ev)
	}
	// Deterministic order for reports: by iteration, then rank.
	sort.Slice(out, func(a, b int) bool {
		if out[a].Iter != out[b].Iter {
			return out[a].Iter < out[b].Iter
		}
		return out[a].Rank < out[b].Rank
	})
	return out
}

// FiredFlip records one injected flip for soak assertions.
type FiredFlip struct {
	Event BitFlipEvent
	// Index is the concrete element index the flip landed in.
	Index int
	// Old and New are the float32 bit patterns before and after.
	Old, New uint32
}

// BitFlipInjector applies a BitFlipEvent schedule. It is shared by every
// rank goroutine of a run and survives restart attempts; all methods are
// concurrency-safe. Each event fires at most once — a replayed iteration
// after a repair does not re-inject.
type BitFlipInjector struct {
	mu     sync.Mutex
	events []BitFlipEvent
	fired  []bool
	log    []FiredFlip

	kernelCalls atomic.Uint64
}

// NewBitFlipInjector builds an injector over a schedule.
func NewBitFlipInjector(events []BitFlipEvent) *BitFlipInjector {
	return &BitFlipInjector{events: events, fired: make([]bool, len(events))}
}

// flipWord flips bit in buf[idx] and returns the old/new bit patterns.
func flipWord(buf []float32, idx int, bit uint) (old, nw uint32) {
	old = math.Float32bits(buf[idx])
	nw = old ^ (1 << bit)
	buf[idx] = math.Float32frombits(nw)
	return old, nw
}

// Flip fires any unfired event scheduled for (rank, iter, site) into buf,
// returning whether a flip was applied. Callers place it immediately
// before the corresponding integrity check so a fired flip is always in
// the detector's field of view.
func (in *BitFlipInjector) Flip(rank, iter int, site FlipSite, buf []float32) bool {
	if in == nil || len(buf) == 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, ev := range in.events {
		if in.fired[i] || ev.Site != site || ev.Rank != rank || ev.Iter != iter || ev.Site == FlipKernel {
			continue
		}
		in.fired[i] = true
		idx := int(ev.Word % uint64(len(buf)))
		old, nw := flipWord(buf, idx, ev.Bit)
		in.log = append(in.log, FiredFlip{Event: ev, Index: idx, Old: old, New: nw})
		return true
	}
	return false
}

// KernelHook returns the tensor.SetABFTFault hook implementing the
// schedule's FlipKernel events: the n-th verified matmul output (global
// ordinal n = Word % 1024) gets one bit flipped, once per event.
func (in *BitFlipInjector) KernelHook() func([]float32) {
	return func(dst []float32) {
		ord := in.kernelCalls.Add(1) - 1
		if len(dst) == 0 {
			return
		}
		in.mu.Lock()
		defer in.mu.Unlock()
		for i, ev := range in.events {
			if in.fired[i] || ev.Site != FlipKernel || ev.Word%1024 != ord%1024 {
				continue
			}
			in.fired[i] = true
			idx := int(ev.Word % uint64(len(dst)))
			old, nw := flipWord(dst, idx, ev.Bit)
			in.log = append(in.log, FiredFlip{Event: ev, Index: idx, Old: old, New: nw})
			return
		}
	}
}

// Fired returns how many scheduled events have fired.
func (in *BitFlipInjector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, f := range in.fired {
		if f {
			n++
		}
	}
	return n
}

// Pending returns the events that have not fired yet.
func (in *BitFlipInjector) Pending() []BitFlipEvent {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []BitFlipEvent
	for i, ev := range in.events {
		if !in.fired[i] {
			out = append(out, ev)
		}
	}
	return out
}

// Log returns a copy of the fired-flip records.
func (in *BitFlipInjector) Log() []FiredFlip {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]FiredFlip(nil), in.log...)
}
