package pipeline

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"weipipe/internal/comm"
)

// Watchdog contract: clean runs of every strategy are never flagged (the
// waiting-in-Recv discriminator exempts stall victims, idle marks exempt
// ranks parked at the barrier), while a rank artificially stalled inside a
// Send — alive, link up, making no progress — is flagged, and optionally
// declared dead, funnelling into the same elastic repair path as a crash.

func TestWatchdogNoFalsePositives(t *testing.T) {
	const iters, n = 3, 4
	for _, s := range Strategies() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			_, err := RunResilient(s, 2, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
				inprocFactory(2), ResilientOptions{
					Watchdog: &WatchdogConfig{
						Interval: 2 * time.Millisecond,
						Multiple: 4,
					},
					OnRepair: func(ev RepairEvent) { t.Errorf("repair on a clean run: %+v", ev) },
				})
			if err != nil {
				t.Fatalf("clean run failed: %v", err)
			}
		})
	}
	// OnStraggler is checked separately on a WZB2 run so the callback's
	// absence above cannot hide a flag.
	var mu sync.Mutex
	var flagged []StragglerReport
	_, err := RunResilient(StrategyWZB2, 2, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(2), ResilientOptions{
			Watchdog: &WatchdogConfig{
				Interval: 2 * time.Millisecond,
				Multiple: 4,
				OnStraggler: func(r StragglerReport) {
					mu.Lock()
					flagged = append(flagged, r)
					mu.Unlock()
				},
			},
		})
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if len(flagged) != 0 {
		t.Fatalf("clean WZB2 run flagged stragglers: %+v", flagged)
	}
}

// A rank stalled for 2 s inside a Send (one deterministic straggler event
// injected by the fault transport) must be flagged — and only that rank —
// without perturbing the training result.
func TestWatchdogFlagsStalledRank(t *testing.T) {
	const p, iters, n = 2, 4, 4
	perIter := sendsPerIteration(t, p, iters, n)
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var flagged []StragglerReport
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			Watchdog: &WatchdogConfig{
				Interval: 5 * time.Millisecond,
				Multiple: 2,
				MinStall: 150 * time.Millisecond,
				OnStraggler: func(r StragglerReport) {
					mu.Lock()
					flagged = append(flagged, r)
					mu.Unlock()
				},
			},
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if rank == 1 {
					// Stall in iteration 1, after the first completed
					// iteration has armed the threshold.
					return comm.NewFaultTransport(tr, comm.FaultConfig{
						StallAtSend: perIter + 2,
						StallFor:    2 * time.Second,
					})
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("stalled run failed: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flagged) != 1 {
		t.Fatalf("flagged %+v, want exactly one report", flagged)
	}
	if flagged[0].Rank != 1 || flagged[0].Declared {
		t.Fatalf("flagged %+v, want rank 1, not declared dead", flagged[0])
	}
	// A straggler that recovers on its own must not have perturbed training.
	bitIdentical(t, "stalled run", res.Losses, ref.Losses, res.Weights, ref.Weights)
}

// End-to-end: DeclareDead converts a stuck rank into a rank failure, and
// the elastic policy repairs around it from buddy replicas.
func TestWatchdogDeclareDeadTriggersRepair(t *testing.T) {
	const p, iters, n = 3, 6, 6
	perIter := buddySendsPerIteration(t, p, iters, n)
	base := runtime.NumGoroutine()

	var ev RepairEvent
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			MaxRestarts: 1,
			Elastic:     ElasticShrink,
			OnRepair:    func(e RepairEvent) { ev = e },
			Watchdog: &WatchdogConfig{
				Interval:    5 * time.Millisecond,
				Multiple:    2,
				MinStall:    150 * time.Millisecond,
				DeclareDead: true,
			},
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if attempt == 0 && rank == 1 {
					// A stall far past any threshold: the watchdog must
					// declare rank 1 dead long before it wakes.
					return comm.NewFaultTransport(tr, comm.FaultConfig{
						StallAtSend: perIter + 2,
						StallFor:    4 * time.Second,
					})
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("declare-dead run failed: %v", err)
	}
	if len(res.Repairs) != 1 {
		t.Fatalf("expected one repair, got %d", len(res.Repairs))
	}
	if len(ev.Dead) != 1 || ev.Dead[0] != 1 || ev.NewSize != 2 {
		t.Fatalf("repair %+v, want rank 1 declared dead and a 3->2 shrink", ev)
	}

	ref, err := RunResilient(StrategyWZB2, ev.NewSize, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(ev.NewSize), ResilientOptions{
			Elastic:         ElasticShrink,
			InitialSnapshot: ev.Snapshot,
		})
	if err != nil {
		t.Fatalf("reference run from repair snapshot: %v", err)
	}
	bitIdentical(t, "declared-dead repair vs fresh cluster",
		res.Losses[ev.Iteration:], ref.Losses[ev.Iteration:], res.Weights, ref.Weights)
	waitPipelineGoroutines(t, base)
}
