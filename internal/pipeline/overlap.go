package pipeline

import (
	"fmt"
	"time"

	"weipipe/internal/comm"
	"weipipe/internal/trace"
)

// The asynchronous weight-belt engine (Options.Overlap).
//
// In blocking mode every belt hop sits on the compute thread's critical
// path: a stage Recvs its weight chunk, consumes it, and only then forwards
// it downstream, so a chunk crosses the ring no faster than compute drains
// it. The engine moves the belt off that path. A background receiver
// goroutine walks the iteration's receive plan — derived from the *same*
// schedule iterator the compute loop runs, so the two orders agree by
// construction — and for each op:
//
//  1. blocks in Recv for the payload;
//  2. if the op is a weight-belt hop with further uses ahead, immediately
//     relays the payload to the ring successor (store-and-forward): the
//     belt circulates at wire speed instead of compute speed, so
//     downstream ranks stop waiting on upstream compute;
//  3. stages the payload on a small buffered channel (the double buffer)
//     for the compute thread to take when the schedule reaches that stage.
//
// The engine handles only the two *weight* belts, one receive lane per
// belt (forward and backward), so a late hop on one belt cannot throttle
// the other belt's wavefront. Lanes are safe to split because the streams
// occupy disjoint mailbox keys (the belt id is folded into Tag.B), so
// per-stream delivery order is untouched.
//
// Gradient-belt receives deliberately stay on the compute thread, exactly
// as in blocking mode. A gradient hop waits on the upstream rank's
// accumulate — producer serialization the schedule dictates, not transport
// latency — so prefetching it cannot make it arrive earlier, and routing
// it through an engine goroutine only inserts scheduler wake-ups into the
// accumulation chain, which is the iteration's critical path. What overlap
// does change for gradients is the outbound hop: buffer donation
// (comm.SendOwned) instead of the copy-and-release pair of blocking mode,
// removing one full chunk memcpy per W stage from the hot loop.
//
// Determinism: the engine reorders nothing and touches no payload bytes.
// Relayed chunks are forwarded verbatim (blocking mode forwards the same
// bytes, just later), and gradient accumulation stays on the compute thread
// in schedule order — so an overlapped run is bit-identical to a blocking
// one.

// beltPrefetchDepth bounds how many received-but-unconsumed payloads each
// lane holds beyond the one the compute thread is consuming: the classic
// double buffer (one chunk in use, one staged) with the engine's in-progress
// receive as the refill. Deeper prefetch only inflates the resident payload
// working set — the belt is demand-paced, so depth 1 already keeps the next
// chunk ready the moment the compute thread asks.
const beltPrefetchDepth = 1

// beltOp is one receive in the engine's per-iteration plan, plus the
// optional immediate downstream relay for weight-belt hops. Grouped-belt
// ops (grp) run against the group sub-transport with group-local ranks;
// local ops source the payload from the iteration's shard cache instead of
// a receive (the group-first rank consuming a chunk it holds itself).
type beltOp struct {
	src    int
	tag    Tag
	fwdDst int // -1: no relay (gradient ops, final belt use)
	fwdTag Tag
	grp    bool
	local  bool
	chunk  int // cache key for local ops
}

// beltItem is a staged payload (or the receive/relay error that ended the
// plan) handed from the engine to the compute thread.
type beltItem struct {
	payload []float32
	err     error
}

// beltLane is one of the engine's two receive streams: a background
// goroutine draining its share of the plan into a double-buffered channel.
type beltLane struct {
	staged chan beltItem
	done   chan struct{}
}

// beltEngine runs one iteration's weight-belt receive plan on two
// background goroutines, one per belt.
type beltEngine struct {
	t       Transport
	grp     Transport         // group sub-transport for grp ops (grouped belt)
	cache   map[int][]float32 // shard cache for local ops (grouped belt; immutable while armed)
	tr      *trace.Tracer
	weights [2]*beltLane // indexed by beltFwd/beltBwd: weight hops, relayed at receipt
	quit    chan struct{}
}

// beltPlan derives the rank's weight-belt receive plan for an R-round
// iteration by replaying the schedule iterator: one weight receive per F
// and B stage. Gradient receives are not planned — they stay on the
// compute thread (see the package comment).
func (w *WeiPipe) beltPlan(R int) []beltOp {
	p := w.t.Size()
	rank := w.t.Rank()
	next := (rank + 1) % p
	prev := (rank - 1 + p) % p
	total := R * p
	plan := make([]beltOp, 0, 3*R*p+1)
	weightOp := func(belt, c, use int) beltOp {
		op := beltOp{
			tag:    Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, use)},
			fwdDst: -1,
		}
		if g := w.grouped; g != nil {
			// Grouped belt: sources and relays are group-local on the
			// sub-transport. The group-first rank is fed by the chunk's
			// holder (or the cache, when it holds the chunk itself); the
			// group-last rank never relays — boundary links stay idle.
			op.grp = true
			i := rank - g.first
			switch {
			case i > 0:
				op.src = i - 1
			case g.holderLocal(c) == 0:
				op.local = true
				op.chunk = c
			default:
				op.src = g.holderLocal(c)
			}
			if i < g.m-1 {
				op.fwdDst = i + 1
				op.fwdTag = Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, use+1)}
			}
			return op
		}
		op.src = prev
		if use == 0 {
			op.src = w.owner(c)
		}
		if use < total-1 {
			op.fwdDst = next
			op.fwdTag = Tag{Kind: comm.KindWeight, A: c, B: w.enc(belt, use+1)}
		}
		return op
	}
	// forEachStage cannot fail here: the variant was validated when the
	// schedule first ran, and the visitor below never returns an error.
	_ = forEachStage(w.variant, R, p, func(phase byte, k, c int) error {
		mb := k*p + rank
		switch phase {
		case 'F':
			plan = append(plan, weightOp(beltFwd, c, mb))
		case 'B':
			plan = append(plan, weightOp(beltBwd, c, mb))
		default: // 'W': gradient receives are unplanned (compute-thread direct).
		}
		return nil
	})
	return plan
}

// startBeltEngine arms the engine for one iteration. The caller must pair
// it with stop().
func (w *WeiPipe) startBeltEngine(R int) *beltEngine {
	var wPlans [2][]beltOp
	for _, op := range w.beltPlan(R) {
		b := beltOf(op.tag)
		wPlans[b] = append(wPlans[b], op)
	}
	e := &beltEngine{t: w.t, tr: w.tr, quit: make(chan struct{})}
	if w.grouped != nil {
		e.grp = w.grouped.grp
		e.cache = w.grouped.cache
	}
	for b := range wPlans {
		e.weights[b] = e.runLane(wPlans[b])
	}
	return e
}

// beltOf recovers the belt id folded into a weight tag's use field by enc:
// the high bits hold iter*beltCount+belt, so the belt is the residue.
func beltOf(tag Tag) int {
	return int((tag.B >> beltUseBits) % beltCount)
}

// runLane spawns the receiver goroutine for one lane's share of the plan.
func (e *beltEngine) runLane(plan []beltOp) *beltLane {
	l := &beltLane{
		staged: make(chan beltItem, beltPrefetchDepth),
		done:   make(chan struct{}),
	}
	go func() {
		defer close(l.done)
		defer close(l.staged)
		for _, op := range plan {
			t := e.t
			if op.grp {
				t = e.grp
			}
			belt := int64(beltOf(op.tag))
			use := int64(op.tag.B & (1<<beltUseBits - 1))
			var payload []float32
			var err error
			if op.local {
				// Grouped belt, self-held chunk: the payload comes off the
				// immutable shard cache, wire-speed by construction.
				cached := e.cache[op.chunk]
				payload = comm.GetBuf(len(cached))
				copy(payload, cached)
			} else {
				span := e.tr.Begin()
				payload, err = t.Recv(op.src, op.tag)
				e.tr.End(span, trace.CodePrefetch, belt, use)
			}
			if err == nil && op.fwdDst >= 0 {
				// Store-and-forward: relay the weight chunk downstream the
				// moment it lands, long before compute consumes it here.
				span := e.tr.Begin()
				err = t.Send(op.fwdDst, op.fwdTag, payload)
				e.tr.End(span, trace.CodeRelay, belt, use+1)
			}
			if err != nil {
				comm.Release(payload)
				payload = nil
			}
			// Prefer quit once it is closed so an aborting iteration reclaims
			// the payload instead of parking it on a channel nobody reads.
			select {
			case <-e.quit:
				comm.Release(payload)
				return
			default:
			}
			select {
			case l.staged <- beltItem{payload: payload, err: err}:
			case <-e.quit:
				comm.Release(payload)
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return l
}

// next hands the compute thread its next belt payload for the given tag,
// recording the time it spent waiting — the engine's analogue of the
// blocking path's exposed receive latency.
func (e *beltEngine) next(tag Tag, stats *comm.Stats) ([]float32, error) {
	lane := e.weights[beltOf(tag)]
	start := time.Now()
	it, ok := <-lane.staged
	stats.RecordBeltStallKind(tag.Kind, time.Since(start))
	if !ok {
		return nil, fmt.Errorf("pipeline: belt engine plan exhausted")
	}
	return it.payload, it.err
}

// stop tears the engine down at iteration end (or abort): it signals quit
// and drains any staged payloads back to the pool. It never blocks — a
// receiver still parked in Recv (abort path) releases its own payload at
// its next quit check, or exits when the transport closes under it.
func (e *beltEngine) stop() {
	close(e.quit)
	for _, l := range []*beltLane{e.weights[beltFwd], e.weights[beltBwd]} {
		for drained := false; !drained; {
			select {
			case it, ok := <-l.staged:
				if !ok {
					drained = true
					break
				}
				comm.Release(it.payload)
			default:
				drained = true
			}
		}
	}
}
