package pipeline

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"weipipe/internal/comm"
)

// The overlapped belt engine's contract: turning Options.Overlap on changes
// *when* belt messages move, never *what* they carry or the order gradients
// accumulate in — so every lossless strategy must land on bit-identical
// losses and weights with the engine on and off, under -race, over both the
// in-process fabric and chaos-injected TCP.

// runOnTransports trains strategy s over pre-built transports and returns
// rank 0's losses plus the assembled weights. The caller owns the
// transports' lifetime.
func runOnTransports(t *testing.T, trs []comm.Transport, s Strategy, opts Options, iters, n int) ([]float64, []float32) {
	t.Helper()
	p := len(trs)
	batches := eqBatches(iters, n)
	trainers := make([]Trainer, p)
	losses := make([][]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := New(s, trs[r], eqCfg(), opts)
			if err != nil {
				errs[r] = err
				return
			}
			trainers[r] = tr
			for i := 0; i < iters; i++ {
				loss, err := tr.TrainIteration(batches(i))
				if err != nil {
					errs[r] = err
					return
				}
				losses[r] = append(losses[r], loss)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return losses[0], AssembleWeights(trainers)
}

func TestOverlapBitIdenticalAllStrategies(t *testing.T) {
	const iters, n = 2, 8
	for _, s := range Strategies() {
		for _, p := range []int{2, 4} {
			s, p := s, p
			t.Run(string(s)+"_p"+string(rune('0'+p)), func(t *testing.T) {
				t.Parallel()
				ref, err := RunCluster(s, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
				if err != nil {
					t.Fatalf("blocking: %v", err)
				}
				opts := eqOpts()
				opts.Overlap = true
				got, err := RunCluster(s, p, eqCfg(), opts, iters, eqBatches(iters, n))
				if err != nil {
					t.Fatalf("overlap: %v", err)
				}
				bitIdentical(t, string(s), got.Losses, ref.Losses, got.Weights, ref.Weights)
			})
		}
	}
}

func TestOverlapBitIdenticalOddWorkerCount(t *testing.T) {
	// Uneven chunk sizes exercise the plan's per-chunk buffer lengths.
	const iters, n = 1, 6
	for _, s := range []Strategy{StrategyWZB2, StrategyWeiPipeNaive, StrategyFSDP} {
		ref, err := RunCluster(s, 3, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
		if err != nil {
			t.Fatalf("%s blocking: %v", s, err)
		}
		opts := eqOpts()
		opts.Overlap = true
		got, err := RunCluster(s, 3, eqCfg(), opts, iters, eqBatches(iters, n))
		if err != nil {
			t.Fatalf("%s overlap: %v", s, err)
		}
		bitIdentical(t, string(s), got.Losses, ref.Losses, got.Weights, ref.Weights)
	}
}

func TestOverlapBitIdenticalWithBuddyAndClip(t *testing.T) {
	// The engine must coexist with buddy replication (extra KindBuddy
	// traffic outside its plan) and the global-norm clip's scalar
	// all-reduces.
	const iters, n = 2, 8
	base := eqOpts()
	base.Buddy = true
	base.ClipNorm = 0.05
	ref, err := RunCluster(StrategyWZB2, 4, eqCfg(), base, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatalf("blocking: %v", err)
	}
	opts := base
	opts.Overlap = true
	got, err := RunCluster(StrategyWZB2, 4, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatalf("overlap: %v", err)
	}
	bitIdentical(t, "wzb2+buddy+clip", got.Losses, ref.Losses, got.Weights, ref.Weights)
}

func TestOverlapBitIdenticalWeiPipeDP(t *testing.T) {
	// The hybrid runs the engine inside a Group transport: donation and
	// prefetch must pass through the rank mapping and tag salt unchanged.
	const iters, n = 2, 8
	_, refTr := runHybrid(t, 4, 2, iters, n, eqOpts())
	opts := eqOpts()
	opts.Overlap = true
	_, gotTr := runHybrid(t, 4, 2, iters, n, opts)
	ref := AssembleWeights(refTr[:2])
	got := AssembleWeights(gotTr[:2])
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("hybrid overlap diverged at weight %d: %v != %v", i, got[i], ref[i])
		}
	}
}

// The async engine over real TCP with frame-level chaos: retransmission,
// duplication, reordering and corruption underneath a prefetching receiver
// must still produce the bit-exact blocking in-process trajectory.
func TestOverlapChaosTCPWZB2(t *testing.T) {
	const p, iters, n = 2, 3, 4
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	addrs, err := comm.LoopbackAddrs(p)
	if err != nil {
		t.Fatal(err)
	}
	tcpOpts := comm.TCPOptions{
		DialTimeout:       10 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		PeerDeadTimeout:   2 * time.Second,
		RetransmitTimeout: 40 * time.Millisecond,
		ReconnectBackoff:  5 * time.Millisecond,
		Chaos: &comm.ChaosConfig{
			Seed:      4242,
			Drop:      0.05,
			Dup:       0.05,
			Reorder:   0.05,
			Corrupt:   0.02,
			DelayProb: 0.05,
			MaxDelay:  2 * time.Millisecond,
		},
	}
	trs := make([]comm.Transport, p)
	dialErrs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], dialErrs[r] = comm.DialTCPOpts(r, addrs, tcpOpts)
		}(r)
	}
	wg.Wait()
	for _, err := range dialErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	opts := eqOpts()
	opts.Overlap = true
	losses, weights := runOnTransports(t, trs, StrategyWZB2, opts, iters, n)
	bitIdentical(t, "overlap chaos TCP", losses, ref.Losses, weights, ref.Weights)

	// The chaos must actually have exercised the reliability machinery
	// underneath the prefetcher.
	total := comm.NewStats()
	for _, tr := range trs {
		total.Add(tr.(comm.Meter).CommStats())
	}
	f := total.TotalFaults()
	if f.Retransmits+f.DupFrames+f.CorruptFrames == 0 {
		t.Error("chaos run recorded no transport faults; injection was a no-op")
	}
	for _, tr := range trs {
		tr.Close()
	}
	waitPipelineGoroutines(t, base)
}

func TestOverlapRecordsBeltStall(t *testing.T) {
	// Both modes must report their exposed belt wait through the same meter
	// so the benchmark's stall comparison is apples-to-apples. Blocking mode
	// provably waits (the belt moves at compute speed); the overlapped run
	// must at minimum produce the telemetry without disturbing training.
	const iters, n = 2, 8
	ref, err := RunCluster(StrategyWZB2, 4, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	if ref.TotalComm().BeltStall() <= 0 {
		t.Error("blocking run recorded no belt stall")
	}
	opts := eqOpts()
	opts.Overlap = true
	res, err := RunCluster(StrategyWZB2, 4, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalComm().BeltStall() < 0 {
		t.Error("overlapped run recorded negative belt stall")
	}
}

func TestBF16WireStaysClose(t *testing.T) {
	// The bf16 belt codec perturbs but must not diverge (cf. the fp16
	// mixed-precision bound), and it must actually halve the weight-belt
	// wire volume.
	const iters, n = 2, 4
	wantLoss, _ := serialReference(t, iters, n)
	f32, err := RunCluster(StrategyWZB2, 2, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	opts := eqOpts()
	opts.BF16Wire = true
	res, err := RunCluster(StrategyWZB2, 2, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantLoss {
		rel := math.Abs(res.Losses[i]-wantLoss[i]) / wantLoss[i]
		if rel > 0.05 {
			t.Errorf("iter %d: bf16-wire loss %.5f vs fp32 %.5f (rel %f)", i, res.Losses[i], wantLoss[i], rel)
		}
	}
	fw := f32.TotalComm().SentBytes(comm.KindWeight)
	bw := res.TotalComm().SentBytes(comm.KindWeight)
	if 2*bw != fw {
		t.Errorf("bf16 weight-belt bytes %d, want exactly half of fp32's %d", bw, fw)
	}
}

func TestBF16WireWithOverlapStaysClose(t *testing.T) {
	// Codec and engine compose: the engine's store-and-forward relays
	// re-encode already-rounded values (idempotent), so overlap keeps the
	// bf16 trajectory identical to blocking bf16.
	const iters, n = 2, 4
	opts := eqOpts()
	opts.BF16Wire = true
	ref, err := RunCluster(StrategyWZB2, 2, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	opts.Overlap = true
	got, err := RunCluster(StrategyWZB2, 2, eqCfg(), opts, iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "bf16+overlap", got.Losses, ref.Losses, got.Weights, ref.Weights)
}
