package pipeline

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"weipipe/internal/comm"
)

// The P2P mode matrix: every link packaging mode — frame, batched burst
// envelopes, duplex ctl lanes, the auto controller — must reproduce the
// frame baseline's training trajectory bit for bit, over the in-process
// fabric and over chaos-injected TCP, including when the auto controller
// re-decides a link's mode in the middle of a run. CI shards this suite by
// mode via WEIPIPE_P2P_MODE; WEIPIPE_MODE_OUT collects JSONL run
// descriptors for the failure artifact.

var p2pTestModes = []comm.P2PMode{comm.P2PFrame, comm.P2PBatched, comm.P2PDuplex, comm.P2PAuto}

// skipUnlessMode applies the CI matrix shard filter. The frame baseline is
// never skipped: every shard needs it as its comparison oracle.
func skipUnlessMode(t *testing.T, mode comm.P2PMode) {
	t.Helper()
	want := os.Getenv("WEIPIPE_P2P_MODE")
	if want != "" && mode != comm.P2PFrame && mode.String() != want {
		t.Skipf("WEIPIPE_P2P_MODE=%s shards out mode %s", want, mode)
	}
}

var modeOutMu sync.Mutex

// logModeRun appends one JSONL run descriptor to WEIPIPE_MODE_OUT.
func logModeRun(t *testing.T, desc map[string]any) {
	t.Helper()
	path := os.Getenv("WEIPIPE_MODE_OUT")
	if path == "" {
		return
	}
	modeOutMu.Lock()
	defer modeOutMu.Unlock()
	if dir := filepath.Dir(path); dir != "." {
		os.MkdirAll(dir, 0o755)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("mode-out: %v", err)
		return
	}
	defer f.Close()
	desc["test"] = t.Name()
	json.NewEncoder(f).Encode(desc)
}

// TestP2PModeEquivalenceInproc: every mode × {flat, grouped} on the
// in-process fabric must match the frame baseline exactly. The in-process
// fabric has no wire, so this pins the mode plumbing (options → transport
// meters → runners) rather than the packaging itself.
func TestP2PModeEquivalenceInproc(t *testing.T) {
	const p, gs, iters, n = 4, 2, 2, 8
	for _, s := range []Strategy{StrategyWZB2, StrategyWZB2G} {
		var ref *ClusterResult
		for _, mode := range p2pTestModes {
			mode := mode
			t.Run(string(s)+"_"+mode.String(), func(t *testing.T) {
				skipUnlessMode(t, mode)
				opts := eqOpts()
				opts.P2PMode = mode
				if s == StrategyWZB2G {
					opts.GroupSize = gs
				}
				res, err := RunCluster(s, p, eqCfg(), opts, iters, eqBatches(iters, n))
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = res // frame runs first: the shard's oracle
					return
				}
				bitIdentical(t, string(s)+" "+mode.String(), res.Losses, ref.Losses, res.Weights, ref.Weights)
				logModeRun(t, map[string]any{
					"fabric": "inproc", "strategy": string(s), "mode": mode.String(),
					"bit_identical": true,
				})
			})
		}
	}
}

// chaosTCPOpts is the shared chaotic failure model of the TCP matrix legs.
func chaosTCPOpts(mode comm.P2PMode, groupSize int) comm.TCPOptions {
	return comm.TCPOptions{
		DialTimeout:       10 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		PeerDeadTimeout:   2 * time.Second,
		RetransmitTimeout: 40 * time.Millisecond,
		ReconnectBackoff:  5 * time.Millisecond,
		P2PMode:           mode,
		GroupSize:         groupSize,
		Chaos: &comm.ChaosConfig{
			Seed:      4242,
			Drop:      0.05,
			Dup:       0.05,
			Reorder:   0.05,
			Corrupt:   0.02,
			DelayProb: 0.05,
			MaxDelay:  2 * time.Millisecond,
		},
	}
}

// dialChaosMesh brings up a p-rank chaotic TCP mesh in the given mode.
func dialChaosMesh(t *testing.T, p int, opts comm.TCPOptions) []comm.Transport {
	t.Helper()
	addrs, err := comm.LoopbackAddrs(p)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]comm.Transport, p)
	dialErrs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], dialErrs[r] = comm.DialTCPOpts(r, addrs, opts)
		}(r)
	}
	wg.Wait()
	for _, err := range dialErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return trs
}

// TestP2PModeEquivalenceChaosTCP: the full matrix over real TCP with
// frame-level chaos — every mode's grouped overlapped run must reproduce
// the clean in-process flat frame trajectory bit for bit, with the
// reliability machinery demonstrably exercised and (for the packaging
// modes) the mode demonstrably on the wire.
func TestP2PModeEquivalenceChaosTCP(t *testing.T) {
	const p, gs, iters, n = 4, 2, 2, 8
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range p2pTestModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			skipUnlessMode(t, mode)
			base := runtime.NumGoroutine()
			trs := dialChaosMesh(t, p, chaosTCPOpts(mode, gs))

			opts := eqOpts()
			opts.GroupSize = gs
			opts.Overlap = true
			opts.P2PMode = mode
			losses, weights := runOnTransports(t, trs, StrategyWZB2G, opts, iters, n)
			bitIdentical(t, "wzb2g chaos TCP "+mode.String(), losses, ref.Losses, weights, ref.Weights)

			total := comm.NewStats()
			for _, tr := range trs {
				total.Add(tr.(comm.Meter).CommStats())
			}
			f := total.TotalFaults()
			if f.Retransmits+f.DupFrames+f.CorruptFrames == 0 {
				t.Error("chaos run recorded no transport faults; injection was a no-op")
			}
			envelopes, _ := total.Bursts()
			if mode == comm.P2PBatched && envelopes == 0 {
				t.Error("batched run put no burst envelopes on the wire")
			}
			if mode == comm.P2PAuto && envelopes == 0 && total.CtlLaneFrames() == 0 {
				t.Error("auto run exercised neither batched nor duplex packaging")
			}
			logModeRun(t, map[string]any{
				"fabric": "tcp+chaos", "strategy": "wzb2g", "mode": mode.String(),
				"bit_identical": true, "retransmits": f.Retransmits,
				"bursts": envelopes, "ctl_lane_frames": total.CtlLaneFrames(),
			})
			for _, tr := range trs {
				tr.Close()
			}
			waitPipelineGoroutines(t, base)
		})
	}
}

// TestP2PModeMidRunAutoRedecision: with the RTT threshold forced to
// effectively zero, the auto controller re-decides the duplex-seeded
// loopback links to batched *during* training — and the trajectory must
// still match the clean frame baseline bit for bit. This is the mid-run
// switch-safety claim: a mode change affects wire layout only.
func TestP2PModeMidRunAutoRedecision(t *testing.T) {
	skipUnlessMode(t, comm.P2PAuto)
	const p, iters, n = 4, 2, 8
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	tcpOpts := chaosTCPOpts(comm.P2PAuto, 0) // flat: every link seeds duplex
	tcpOpts.AutoRTTSec = 1e-12               // any measured RTT forces batched
	trs := dialChaosMesh(t, p, tcpOpts)

	opts := eqOpts()
	opts.Overlap = true
	opts.P2PMode = comm.P2PAuto
	losses, weights := runOnTransports(t, trs, StrategyWZB2, opts, iters, n)
	bitIdentical(t, "wzb2 mid-run auto re-decision", losses, ref.Losses, weights, ref.Weights)

	total := comm.NewStats()
	for _, tr := range trs {
		total.Add(tr.(comm.Meter).CommStats())
	}
	if total.P2PModeSwitches() == 0 {
		t.Error("forcing threshold produced no mid-run mode switch")
	}
	envelopes, _ := total.Bursts()
	if envelopes == 0 {
		t.Error("re-decided links sent no burst envelopes")
	}
	logModeRun(t, map[string]any{
		"fabric": "tcp+chaos", "strategy": "wzb2", "mode": "auto-redecision",
		"bit_identical": true, "switches": total.P2PModeSwitches(), "bursts": envelopes,
	})
	for _, tr := range trs {
		tr.Close()
	}
	waitPipelineGoroutines(t, base)
}
