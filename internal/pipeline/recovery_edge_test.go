package pipeline

import (
	"runtime"
	"strings"
	"testing"

	"weipipe/internal/comm"
)

// Edge cases of the restart loop: a failure before any state exists, a
// failure in the iteration right after a checkpoint barrier, and a failure
// budget that runs out.

// A crash on the very first send — before any iteration completed, with no
// checkpoint and no repair state — must restart from scratch and still land
// on the reference trajectory.
func TestRepairAtIterationZeroRestartsFromScratch(t *testing.T) {
	const p, iters, n = 2, 3, 4
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	var crashed *comm.FaultTransport
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			MaxRestarts: 1,
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if attempt == 0 && rank == 1 {
					crashed = comm.NewFaultTransport(tr, comm.FaultConfig{CrashAtSend: 1})
					return crashed
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("iteration-0 recovery failed: %v", err)
	}
	if !crashed.Crashed() {
		t.Fatal("scheduled crash never fired")
	}
	bitIdentical(t, "iteration-0 restart", res.Losses, ref.Losses, res.Weights, ref.Weights)
}

// A crash on the first send after a checkpoint barrier: the checkpoint is
// brand new, the replay window is a single iteration prefix, and the resumed
// run must not double-apply anything.
func TestRepairRightAfterCheckpointBarrier(t *testing.T) {
	const p, iters, n = 2, 6, 4
	perIter := sendsPerIteration(t, p, iters, n)
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	var crashed *comm.FaultTransport
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			CheckpointEvery: 2,
			MaxRestarts:     1,
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if attempt == 0 && rank == 1 {
					// First send of iteration 2, immediately after the
					// checkpoint taken at the iteration-2 barrier.
					crashed = comm.NewFaultTransport(tr, comm.FaultConfig{CrashAtSend: perIter*2 + 1})
					return crashed
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("post-barrier recovery failed: %v", err)
	}
	if !crashed.Crashed() {
		t.Fatal("scheduled crash never fired")
	}
	bitIdentical(t, "post-barrier restart", res.Losses, ref.Losses, res.Weights, ref.Weights)
}

// When every attempt crashes, the restart budget must be exhausted cleanly:
// a typed error naming the budget, no hang, no leaked goroutines.
func TestRepairBudgetExhaustion(t *testing.T) {
	const p, iters, n = 2, 4, 4
	base := runtime.NumGoroutine()
	_, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			MaxRestarts: 2,
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if rank == 0 {
					return comm.NewFaultTransport(tr, comm.FaultConfig{CrashAtSend: 5})
				}
				return tr
			},
		})
	if err == nil {
		t.Fatal("run with a crash on every attempt reported success")
	}
	if !strings.Contains(err.Error(), "failed after 2 restarts") {
		t.Fatalf("error %q does not name the exhausted restart budget", err)
	}
	waitPipelineGoroutines(t, base)
}
