package pipeline

import (
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"weipipe/internal/comm"
)

// The resilience contract: a training run that loses a rank mid-iteration
// and recovers from its last coordinated checkpoint must land on exactly
// the loss trajectory and weights of a run that never failed. Not "close" —
// bit-identical: checkpoints capture fp32 weights, optimizer moments and
// the data cursor exactly, and the replayed iterations consume the same
// batches in the same order.

func waitPipelineGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func bitIdentical(t *testing.T, name string, gotLoss, wantLoss []float64, gotW, wantW []float32) {
	t.Helper()
	if len(gotLoss) != len(wantLoss) {
		t.Fatalf("%s: %d losses, want %d", name, len(gotLoss), len(wantLoss))
	}
	for i := range wantLoss {
		if gotLoss[i] != wantLoss[i] {
			t.Errorf("%s: iteration %d loss %v != reference %v (must be bit-identical)",
				name, i, gotLoss[i], wantLoss[i])
		}
	}
	if len(gotW) != len(wantW) {
		t.Fatalf("%s: %d weights, want %d", name, len(gotW), len(wantW))
	}
	for i := range wantW {
		if gotW[i] != wantW[i] {
			t.Fatalf("%s: weight %d = %v != reference %v (must be bit-identical)",
				name, i, gotW[i], wantW[i])
		}
	}
}

// inprocFactory builds a fresh in-process cluster per recovery attempt,
// honouring the size the elastic runner asks for.
func inprocFactory(int) func(int, int) ([]comm.Transport, error) {
	return func(_, size int) ([]comm.Transport, error) {
		return comm.NewCluster(size).Transports(), nil
	}
}

// sendsPerIteration measures how many transport sends one WZB2 rank issues
// per iteration, so crash schedules can be placed at a chosen iteration.
func sendsPerIteration(t *testing.T, p, iters, n int) int64 {
	t.Helper()
	var probe *comm.FaultTransport
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if rank == 1 {
					probe = comm.NewFaultTransport(tr, comm.FaultConfig{})
					return probe
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	_ = res
	_, _, _, _, sends := probe.Injected()
	if sends == 0 || sends%int64(iters) != 0 {
		t.Fatalf("probe counted %d sends over %d iterations", sends, iters)
	}
	return sends / int64(iters)
}

// A fault-free RunResilient must reproduce RunCluster exactly — the
// recovery scaffolding itself (lock-step driver, checkpoint capture) must
// not perturb training.
func TestResilientRunnerMatchesCluster(t *testing.T) {
	const p, iters, n = 2, 4, 4
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "fault-free resilient", res.Losses, ref.Losses, res.Weights, ref.Weights)
}

// Kill a rank mid-iteration (in-process), recover from the checkpoint, and
// demand the reference trajectory.
func TestCrashRecoveryInproc(t *testing.T) {
	const p, iters, n = 2, 6, 4
	perIter := sendsPerIteration(t, p, iters, n)
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	// Crash rank 1 in the middle of iteration 4 (0-based iteration 3): a
	// checkpoint exists at iteration-2, so recovery replays iterations 2-5.
	var crashed *comm.FaultTransport
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			CheckpointEvery: 2,
			MaxRestarts:     1,
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if attempt == 0 && rank == 1 {
					crashed = comm.NewFaultTransport(tr, comm.FaultConfig{
						CrashAtSend: perIter*3 + perIter/2,
					})
					return crashed
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if !crashed.Crashed() {
		t.Fatal("scheduled crash never fired; the test proved nothing")
	}
	bitIdentical(t, "in-proc crash recovery", res.Losses, ref.Losses, res.Weights, ref.Weights)
}

// Without a restart budget, a rank failure must surface as an error, not a
// hang: every surviving rank is unblocked and the run fails cleanly.
func TestCrashWithoutRestartsFailsCleanly(t *testing.T) {
	const p, iters, n = 2, 4, 4
	base := runtime.NumGoroutine()
	_, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		inprocFactory(p), ResilientOptions{
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if rank == 0 {
					return comm.NewFaultTransport(tr, comm.FaultConfig{CrashAtSend: 10})
				}
				return tr
			},
		})
	if err == nil {
		t.Fatal("crash with MaxRestarts=0 did not fail the run")
	}
	waitPipelineGoroutines(t, base)
}

// The headline chaos test: WZB2 over real TCP with seeded frame-level
// chaos (delay, drop, duplication, reordering, corruption) plus a rank
// killed mid-run, recovered from its checkpoint file — against a fault-free
// in-process reference. Loss trajectory and final weights must come back
// bit-identical, and the whole ordeal must leak no goroutines.
func TestChaosEquivalenceWZB2TCP(t *testing.T) {
	const p, iters, n = 2, 6, 4
	perIter := sendsPerIteration(t, p, iters, n)
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	tcpOpts := comm.TCPOptions{
		DialTimeout:       10 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		PeerDeadTimeout:   2 * time.Second,
		RetransmitTimeout: 40 * time.Millisecond,
		ReconnectBackoff:  5 * time.Millisecond,
		Chaos: &comm.ChaosConfig{
			Seed:      2025,
			Drop:      0.06,
			Dup:       0.06,
			Reorder:   0.05,
			Corrupt:   0.03,
			DelayProb: 0.05,
			MaxDelay:  2 * time.Millisecond,
		},
	}
	tcpFactory := func(attempt, size int) ([]comm.Transport, error) {
		addrs, err := comm.LoopbackAddrs(size)
		if err != nil {
			return nil, err
		}
		out := make([]comm.Transport, size)
		errs := make([]error, size)
		var wg sync.WaitGroup
		for r := 0; r < size; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				tr, err := comm.DialTCPOpts(r, addrs, tcpOpts)
				if err != nil {
					errs[r] = err
					return
				}
				out[r] = tr
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				for _, tr := range out {
					if tr != nil {
						tr.Close()
					}
				}
				return nil, err
			}
		}
		return out, nil
	}

	ckpt := filepath.Join(t.TempDir(), "chaos.wpck")
	var crashed *comm.FaultTransport
	res, err := RunResilient(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n),
		tcpFactory, ResilientOptions{
			CheckpointEvery: 2,
			CheckpointPath:  ckpt,
			MaxRestarts:     1,
			WrapTransport: func(attempt, rank int, tr comm.Transport) comm.Transport {
				if attempt == 0 && rank == 1 {
					crashed = comm.NewFaultTransport(tr, comm.FaultConfig{
						CrashAtSend: perIter*3 + perIter/2,
					})
					return crashed
				}
				return tr
			},
		})
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if !crashed.Crashed() {
		t.Fatal("scheduled rank kill never fired; the test proved nothing")
	}
	bitIdentical(t, "chaos WZB2/TCP", res.Losses, ref.Losses, res.Weights, ref.Weights)

	// The chaos must actually have exercised the reliability machinery.
	f := res.TotalComm().TotalFaults()
	if f.Retransmits+f.DupFrames+f.CorruptFrames == 0 {
		t.Error("chaos run recorded no transport faults; injection was a no-op")
	}
	// A clean recovery leaves nothing behind: transports closed, rank
	// goroutines joined.
	waitPipelineGoroutines(t, base)
}
