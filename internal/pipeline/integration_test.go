package pipeline

import (
	"math"
	"testing"

	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
)

// A medium-scale end-to-end run: a bigger model (8 layers, hidden 32, real
// multi-head attention over 24-token sequences) trained for three
// iterations under every strategy at 4 workers, all required to land on the
// serial trajectory. This exercises numerics far from the toy scale of the
// unit tests. Skipped with -short.
func TestMediumScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale integration skipped in -short mode")
	}
	cfg := model.Config{Vocab: 64, Hidden: 32, Layers: 8, Heads: 4, MaxSeq: 24, Seed: 99}
	adam := optim.DefaultAdamW(3e-3)
	adam.Eps = 1e-5
	opts := Options{Adam: adam, ClipNorm: 1.0}

	const iters, n = 3, 8
	batchSets := make([][]data.Batch, iters)
	for i := range batchSets {
		batchSets[i] = data.Microbatches(uint64(500+i), n, 2, cfg.Vocab, cfg.MaxSeq)
	}
	fn := func(i int) []data.Batch { return batchSets[i] }

	ref, err := RunCluster(StrategySerial, 1, cfg, opts, iters, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !(ref.Losses[iters-1] < ref.Losses[0]) {
		t.Fatalf("serial loss did not decrease: %v", ref.Losses)
	}

	for _, s := range Strategies() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			res, err := RunCluster(s, 4, cfg, opts, iters, fn)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref.Losses {
				if math.Abs(res.Losses[i]-ref.Losses[i]) > 1e-4 {
					t.Errorf("iter %d: loss %.6f vs serial %.6f", i, res.Losses[i], ref.Losses[i])
				}
			}
			if d := maxAbsDiff(res.Weights, ref.Weights); d > 1e-3 {
				t.Errorf("weights diverge by %g after %d iterations", d, iters)
			}
		})
	}
}
