package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
)

// The grouped belt's contract: wzb2g changes *where* weight chunks travel
// (cached once per group, recirculated on the fast fabric) but never what
// any rank computes — so for every lossless configuration it must land on
// bit-identical losses and weights to flat WZB2, while moving strictly
// fewer bytes between groups.

// groupedCfg is a ring-divisible model for p-rank grouped runs.
func groupedCfg(p int) model.Config {
	return model.Config{Vocab: 13, Hidden: 8, Layers: p, Heads: 2, MaxSeq: 6, Seed: 42}
}

func groupedBatches(iters, n int) func(int) []data.Batch {
	all := make([][]data.Batch, iters)
	for i := range all {
		all[i] = data.Microbatches(uint64(100+i), n, 2, 13, 6)
	}
	return func(i int) []data.Batch { return all[i] }
}

// TestGroupedBitIdenticalToFlat sweeps ring size × group size × wire/engine
// variants: plain blocking, the async engine, bf16 wire, integrity seals,
// and all of them together. Every cell must reproduce flat WZB2 exactly.
func TestGroupedBitIdenticalToFlat(t *testing.T) {
	const iters, n2 = 2, 2 // n2: microbatch rounds (n = n2*p per iteration)
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"plain", func(*Options) {}},
		{"overlap", func(o *Options) { o.Overlap = true }},
		{"bf16", func(o *Options) { o.BF16Wire = true }},
		{"integrity", func(o *Options) { o.Integrity = true }},
		{"all", func(o *Options) { o.Overlap = true; o.BF16Wire = true; o.Integrity = true }},
	}
	for _, p := range []int{4, 8} {
		for _, gs := range []int{0, 2, 4} {
			if gs > p {
				continue
			}
			cfg := groupedCfg(p)
			n := n2 * p
			for _, v := range variants {
				p, gs, v := p, gs, v
				t.Run(fmt.Sprintf("p%d_gs%d_%s", p, gs, v.name), func(t *testing.T) {
					t.Parallel()
					flatOpts := eqOpts()
					v.mod(&flatOpts)
					ref, err := RunCluster(StrategyWZB2, p, cfg, flatOpts, iters, groupedBatches(iters, n))
					if err != nil {
						t.Fatalf("flat: %v", err)
					}
					opts := flatOpts
					opts.GroupSize = gs
					got, err := RunCluster(StrategyWZB2G, p, cfg, opts, iters, groupedBatches(iters, n))
					if err != nil {
						t.Fatalf("grouped: %v", err)
					}
					bitIdentical(t, "wzb2g", got.Losses, ref.Losses, got.Weights, ref.Weights)
				})
			}
		}
	}
}

// TestGroupedIndivisibleFallsBackFlat: a group size that does not divide
// the ring (the elastic-shrink case) must degrade to the flat belt, not
// fail — and still match flat WZB2 exactly.
func TestGroupedIndivisibleFallsBackFlat(t *testing.T) {
	const p, iters, n = 4, 2, 8
	cfg := groupedCfg(p)
	ref, err := RunCluster(StrategyWZB2, p, cfg, eqOpts(), iters, groupedBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	opts := eqOpts()
	opts.GroupSize = 3 // does not divide p=4
	got, err := RunCluster(StrategyWZB2G, p, cfg, opts, iters, groupedBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "wzb2g gs=3 fallback", got.Losses, ref.Losses, got.Weights, ref.Weights)
}

// TestGroupedCutsInterGroupBytes is the measured half of the tentpole
// claim at test scale: on an 8-rank ring in groups of 2, the grouped belt
// must move strictly fewer bytes (and messages) between groups than flat
// WZB2, as counted by the transports' per-link-tier meters.
func TestGroupedCutsInterGroupBytes(t *testing.T) {
	const p, gs, iters, n = 8, 2, 2, 16
	cfg := groupedCfg(p)
	opts := eqOpts()
	opts.GroupSize = gs // arms the tier meters for both strategies
	flat, err := RunCluster(StrategyWZB2, p, cfg, opts, iters, groupedBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := RunCluster(StrategyWZB2G, p, cfg, opts, iters, groupedBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "wzb2g traffic run", grouped.Losses, flat.Losses, grouped.Weights, flat.Weights)

	fBytes, fMsgs := flat.TotalComm().InterGroupTraffic()
	gBytes, gMsgs := grouped.TotalComm().InterGroupTraffic()
	if fBytes == 0 {
		t.Fatal("flat run recorded no inter-group bytes; tier meters unarmed?")
	}
	if gBytes >= fBytes {
		t.Errorf("grouped inter-group bytes %d not below flat %d", gBytes, fBytes)
	}
	if gMsgs >= fMsgs {
		t.Errorf("grouped inter-group msgs %d not below flat %d", gMsgs, fMsgs)
	}
	if iBytes, _ := grouped.TotalComm().IntraGroupTraffic(); iBytes == 0 {
		t.Error("grouped run recorded no intra-group bytes")
	}
}

// TestGroupedChaosTCPEquivalence: the grouped belt over real TCP with
// frame-level chaos (drop/dup/reorder/corrupt/delay) — shard exchange on
// the chaotic parent transport, belt circulation on sub-ring groups, async
// engine armed — must still reproduce the clean in-process flat trajectory
// bit for bit.
func TestGroupedChaosTCPEquivalence(t *testing.T) {
	const p, gs, iters, n = 4, 2, 2, 8
	ref, err := RunCluster(StrategyWZB2, p, eqCfg(), eqOpts(), iters, eqBatches(iters, n))
	if err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	addrs, err := comm.LoopbackAddrs(p)
	if err != nil {
		t.Fatal(err)
	}
	tcpOpts := comm.TCPOptions{
		DialTimeout:       10 * time.Second,
		HeartbeatInterval: 20 * time.Millisecond,
		PeerDeadTimeout:   2 * time.Second,
		RetransmitTimeout: 40 * time.Millisecond,
		ReconnectBackoff:  5 * time.Millisecond,
		Chaos: &comm.ChaosConfig{
			Seed:      4242,
			Drop:      0.05,
			Dup:       0.05,
			Reorder:   0.05,
			Corrupt:   0.02,
			DelayProb: 0.05,
			MaxDelay:  2 * time.Millisecond,
		},
	}
	trs := make([]comm.Transport, p)
	dialErrs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], dialErrs[r] = comm.DialTCPOpts(r, addrs, tcpOpts)
		}(r)
	}
	wg.Wait()
	for _, err := range dialErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	opts := eqOpts()
	opts.GroupSize = gs
	opts.Overlap = true
	losses, weights := runOnTransports(t, trs, StrategyWZB2G, opts, iters, n)
	bitIdentical(t, "wzb2g chaos TCP", losses, ref.Losses, weights, ref.Weights)

	// The run must actually have exercised the reliability machinery.
	total := comm.NewStats()
	for _, tr := range trs {
		total.Add(tr.(comm.Meter).CommStats())
	}
	f := total.TotalFaults()
	if f.Retransmits+f.DupFrames+f.CorruptFrames == 0 {
		t.Error("chaos run recorded no transport faults; injection was a no-op")
	}
	for _, tr := range trs {
		tr.Close()
	}
	waitPipelineGoroutines(t, base)
}
