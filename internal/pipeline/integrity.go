package pipeline

import (
	"weipipe/internal/comm"
	"weipipe/internal/tensor"
	"weipipe/internal/trace"
)

// WeiPipe integrity wiring (Options.Integrity). Three defenses compose into
// end-to-end silent-data-corruption coverage (DESIGN.md §15):
//
//   - belt chunks grow a CRC32 trailer sealed at the chunk's origin over the
//     canonical wire-value domain, relayed untouched and verified at every
//     consumption point (weight install, gradient accumulate, retire, buddy
//     replay);
//   - the resident fp32 master weights and AdamW moments carry cached
//     checksums, verified at each iteration entry and refreshed after every
//     legitimate mutation — a flip while the state rests between iterations
//     cannot silently enter the next step;
//   - matmul outputs are (optionally) verified by the tensor layer's ABFT
//     row checksums; the panic that raises is converted here into the same
//     typed error the other detectors produce.
//
// Every detection returns a *comm.IntegrityError, which RunResilient treats
// as lost rank state — the evidence → agreement → buddy-harvest/checkpoint
// repair path — so a detected flip is repaired or rejected, never trained on.

// initIntegrity resolves the per-rank integrity configuration: the trailer
// pad every belt buffer grows by, and the wire codec the seal must round
// through (asked of the transport when it can say, inferred from the options
// otherwise).
func (w *WeiPipe) initIntegrity() {
	if !w.opts.Integrity {
		return
	}
	w.pad = comm.ChecksumTrailerLen
	if cp, ok := w.t.(comm.CodecProvider); ok {
		w.wireCodec = cp.WireCodec
	} else if w.opts.BF16Wire {
		w.wireCodec = comm.BeltBF16
	}
}

// beltBody strips the checksum trailer (identity with integrity off).
func (w *WeiPipe) beltBody(buf []float32) []float32 {
	if w.pad == 0 {
		return buf
	}
	return buf[:len(buf)-w.pad]
}

// sealBelt projects buf's body into the wire-value domain of the codec tag
// travels under and seals the CRC trailer over it. Idempotent rounding makes
// the seal survive every downstream re-encode bit-exactly.
func (w *WeiPipe) sealBelt(tag Tag, buf []float32) {
	if w.pad == 0 {
		return
	}
	c := comm.CodecF32
	if w.wireCodec != nil {
		c = w.wireCodec(tag)
	}
	comm.RoundToWire(c, buf[:len(buf)-w.pad])
	comm.SealChunk(buf)
}

// verifyBelt checks a sealed belt payload at a consumption point, recording
// the check in the transport meter and, on mismatch, emitting a trace
// instant and returning the typed integrity error.
func (w *WeiPipe) verifyBelt(site comm.IntegritySite, kind comm.Kind, chunk int, buf []float32) error {
	if w.pad == 0 {
		return nil
	}
	want, got, ok := comm.VerifyChunk(buf)
	w.stats.RecordIntegrityCheck(kind, ok)
	if ok {
		return nil
	}
	w.tr.Instant(trace.CodeIntegrity, int64(kind), int64(chunk))
	return &comm.IntegrityError{
		Rank: w.t.Rank(), Site: site, Kind: kind, Chunk: chunk, Want: want, Got: got,
	}
}

// refreshResidentGuards recomputes the cached checksums of the owned chunk's
// resident state. Called after every legitimate mutation (construction, the
// optimizer step, checkpoint restore) — and never between an injected fault
// and its check, which is what makes the guard sound.
func (w *WeiPipe) refreshResidentGuards() {
	if w.pad == 0 {
		return
	}
	w.guardW = comm.ChecksumSlice(w.masterW)
	w.opt.VisitState(func(m, v []float32) {
		w.guardM = comm.ChecksumSlice(m)
		w.guardV = comm.ChecksumSlice(v)
	})
	w.guardValid = true
}

// checkResidentGuards verifies the resident state against the cached
// checksums (iteration entry). Resident checks record under KindCtl: they
// never crossed a transport.
func (w *WeiPipe) checkResidentGuards() error {
	if w.pad == 0 || !w.guardValid {
		return nil
	}
	gotW := comm.ChecksumSlice(w.masterW)
	var gotM, gotV uint32
	w.opt.VisitState(func(m, v []float32) {
		gotM = comm.ChecksumSlice(m)
		gotV = comm.ChecksumSlice(v)
	})
	check := func(site comm.IntegritySite, want, got uint32) error {
		ok := want == got
		w.stats.RecordIntegrityCheck(comm.KindCtl, ok)
		if ok {
			return nil
		}
		w.tr.Instant(trace.CodeIntegrity, int64(comm.KindCtl), int64(w.ownChunk))
		return &comm.IntegrityError{
			Rank: w.t.Rank(), Site: site, Kind: comm.KindCtl, Chunk: w.ownChunk, Want: want, Got: got,
		}
	}
	if err := check(comm.SiteWeights, w.guardW, gotW); err != nil {
		return err
	}
	if err := check(comm.SiteMoments, w.guardM, gotM); err != nil {
		return err
	}
	return check(comm.SiteMoments, w.guardV, gotV)
}

// recoverIntegrity converts a tensor-layer ABFT panic into the typed
// integrity error the repair path consumes. It is deferred first in
// TrainIteration, so it runs last during an unwind — after the arena and
// belt-engine cleanups have already released their resources. Any other
// panic is re-raised untouched.
func (w *WeiPipe) recoverIntegrity(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	ae, ok := r.(*tensor.ABFTError)
	if !ok {
		panic(r)
	}
	w.stats.RecordIntegrityCheck(comm.KindCtl, false)
	w.tr.Instant(trace.CodeIntegrity, int64(comm.KindCtl), int64(ae.Row))
	*errp = &comm.IntegrityError{
		Rank: w.t.Rank(), Site: comm.SiteKernel, Kind: comm.KindCtl, Chunk: -1, Cause: ae,
	}
}

// injectStateFlips fires any bit-flip chaos events scheduled against this
// rank's resident state for the current iteration. Placed immediately before
// checkResidentGuards, so a fired flip is always in the guard's view.
func (w *WeiPipe) injectStateFlips() {
	in := w.opts.BitFlip
	if in == nil {
		return
	}
	r := w.t.Rank()
	in.Flip(r, w.iter, FlipWeights, w.masterW)
	w.opt.VisitState(func(m, v []float32) {
		in.Flip(r, w.iter, FlipMomentM, m)
		in.Flip(r, w.iter, FlipMomentV, v)
	})
}
