package pipeline

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"weipipe/internal/checkpoint"
	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
)

// RunRank is the cross-process counterpart of RunResilient's per-rank
// goroutine: one OS process calls it with its rank assignment and drives
// lock-step training over a real TCP mesh, with no shared memory to lean
// on. Everything RunResilient does centrally — the iteration barrier,
// coordinated checkpoints, failure-evidence gathering, the buddy-replica
// harvest — happens here via explicit wire protocols:
//
//   - a per-iteration all-to-all control barrier carrying the loss, so no
//     rank can run ahead into an iteration its peers have abandoned;
//   - a coordinated checkpoint exchange in which every rank broadcasts its
//     owned chunk state and all ranks assemble the identical snapshot;
//   - on failure, transport-level membership agreement
//     (comm.AgreeOverTransport) over the typed evidence, followed by a
//     harvest-meta exchange (dead-set hash + committed step phases) that
//     fixes the repair cut, and a chunk-state exchange that rebuilds the
//     full snapshot on every survivor — bit-identical to the in-process
//     harvestRepairSnapshot, because both follow the same chunkSource
//     provenance mapping.
//
// RunRank never decides the cluster's future: it returns a RankOutcome
// describing what happened (completed; repaired with a harvested
// snapshot; aborted) and the supervisor (internal/launch) chooses the
// next incarnation — shrink, spare admission, or checkpoint restart —
// and hands every process a fresh RankAssignment at a new epoch.

// RankAssignment is one process's place in one cluster incarnation.
type RankAssignment struct {
	// Epoch is the incarnation number, fencing this mesh's frames and
	// handshakes from every earlier (possibly still-twitching) cluster.
	Epoch uint32
	// Rank and World position this process in the incarnation.
	Rank, World int
	// Addrs lists every rank's listen address (len == World).
	Addrs []string
	// StartIter is the completed-iteration count training resumes from
	// when no snapshot says otherwise.
	StartIter int
	// SeedFrom, when >= 0, names the rank that broadcasts its snapshot to
	// the ranks in SeedTo before training starts — how freshly admitted
	// spares receive the harvested state over the *new* mesh (they never
	// heard the old one).
	SeedFrom int
	// SeedTo lists the ranks waiting for the snapshot broadcast.
	SeedTo []int
}

// RankConfig is the per-process training configuration (identical on
// every rank of an incarnation, except Snapshot which only survivors and
// the seeding rank hold).
type RankConfig struct {
	Strategy  Strategy
	Cfg       model.Config
	Opts      Options
	Iters     int
	BatchesFn func(iter int) []data.Batch
	// Deadlines is the single timeout budget threaded through transport,
	// detector and protocol layers.
	Deadlines comm.Deadlines
	// Chaos, when set, injects frame-level faults under the reliability
	// layer (the soak harness's knob).
	Chaos *comm.ChaosConfig
	// CheckpointEvery/CheckpointPath/CheckpointKeep mirror
	// ResilientOptions; only rank 0 writes to disk.
	CheckpointEvery int
	CheckpointPath  string
	CheckpointKeep  int
	// Snapshot seeds this rank's trainer (survivors carry their harvested
	// state here between incarnations; nil on spares, which receive it via
	// the SeedFrom broadcast).
	Snapshot *checkpoint.Snapshot
	// LR, when set, is applied before every iteration.
	LR func(iter int) float64
	// OnIteration is called at each completed iteration barrier.
	OnIteration func(iter int, loss float64)
	// Beacon, when set, is called around long off-wire barriers ("ckpt",
	// "agree", "harvest", "seed") and each iteration ("iter"), so an
	// external stall monitor can exempt barrier-parked processes instead
	// of declaring them dead. The empty state ends the preceding one.
	Beacon func(state string, iter int)
	// Transport, when set, replaces the default TCP dial — the hook tests
	// use to interpose fault injection. It must honour a.Epoch.
	Transport func(a RankAssignment) (comm.Transport, error)
}

// RankOutcome reports how one incarnation ended for this rank.
type RankOutcome struct {
	// Done is true when all Iters iterations completed.
	Done bool
	// Iter is the completed-iteration count at exit (the repair cut after
	// a failure).
	Iter int
	// Weights and WeightsHash hold the assembled full parameter vector
	// (Done only) and its FNV-64a fingerprint for cheap cross-process
	// bit-identity checks.
	Weights     []float32
	WeightsHash uint64
	// Losses holds the per-iteration losses this incarnation observed
	// (indexed from 0; entries before StartIter are zero).
	Losses []float64
	// Membership is the agreed post-failure membership (failure only).
	Membership comm.Membership
	// Snapshot is the harvested repair state (failure with successful
	// harvest only) — the seed for the next incarnation.
	Snapshot *checkpoint.Snapshot
	// Aborted is true when this rank cannot contribute to a repair:
	// evicted, quorum lost, or the harvest failed. The supervisor falls
	// back to checkpoint restart (or retires the rank to standby).
	Aborted bool
	// Reason explains the abort ("evicted", "no-quorum", ...).
	Reason string
}

// Reserved KindCtl tag namespaces for the cross-process protocols; the
// training strategies use KindWeight/KindGrad/KindAct/KindBuddy/KindColl,
// and comm's agreement owns A >= 1<<30, so these cannot collide.
const (
	barrierTagBase = 1 << 29       // + iter: the per-iteration loss barrier
	ckptTagBase    = 1<<29 + 1<<27 // + iter: coordinated checkpoint exchange
	harvestTagMeta = 1<<29 + 1<<28 // harvest meta (dead hash, step phases)
	harvestTagBase = 1<<29 + 3<<27 // + chunk: harvested chunk state
	seedTagBase    = 1<<29 + 1<<26 // snapshot broadcast to spares
)

func (rc RankConfig) beacon(state string, iter int) {
	if rc.Beacon != nil {
		rc.Beacon(state, iter)
	}
}

// RunRank drives this process's rank through one cluster incarnation.
func RunRank(a RankAssignment, rc RankConfig) (*RankOutcome, error) {
	if a.World < 1 || a.Rank < 0 || a.Rank >= a.World || len(a.Addrs) != a.World {
		return nil, fmt.Errorf("pipeline: invalid assignment rank %d world %d addrs %d",
			a.Rank, a.World, len(a.Addrs))
	}
	dl := rc.Deadlines.WithDefaults()

	var t comm.Transport
	var err error
	if rc.Transport != nil {
		t, err = rc.Transport(a)
	} else {
		opts := dl.TCPOptions()
		opts.Epoch = a.Epoch
		opts.Chaos = rc.Chaos
		t, err = comm.DialTCPOpts(a.Rank, a.Addrs, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: rank %d epoch %d bring-up: %w", a.Rank, a.Epoch, err)
	}
	// Close models an abrupt kill and abandons queued frames, so every
	// exit — completion, agreement verdict, harvest — first drains the send
	// queues toward live peers; otherwise the tail of an exchange protocol
	// disappears from under a slower rank and a healthy run reports a
	// phantom death.
	defer func() {
		comm.FlushTransport(t, dl.Barrier)
		t.Close()
	}()

	opts := rc.Opts
	if a.World >= 2 {
		// Elastic repair needs every shard replicated (see RunResilient).
		opts.Buddy = true
	}
	tr, err := New(rc.Strategy, t, rc.Cfg, opts)
	if err != nil {
		return nil, err
	}

	snap := rc.Snapshot
	if snap, err = seedExchange(a, rc, t, snap); err != nil {
		return failureOutcome(a, rc, t, tr, 0, err)
	}
	start := a.StartIter
	if snap != nil {
		if err := RestoreSnapshot(snap, []Trainer{tr}); err != nil {
			return nil, err
		}
		start = int(snap.Step)
	}

	losses := make([]float64, rc.Iters)
	for iter := start; iter < rc.Iters; iter++ {
		if rc.LR != nil {
			if ls, ok := tr.(LRSetter); ok {
				ls.SetLR(rc.LR(iter))
			}
		}
		rc.beacon("iter", iter)
		loss, err := tr.TrainIteration(rc.BatchesFn(iter))
		if err != nil {
			return failureOutcome(a, rc, t, tr, iter, err)
		}
		if loss, err = lossBarrier(a, t, dl, iter, loss); err != nil {
			return failureOutcome(a, rc, t, tr, iter, err)
		}
		losses[iter] = loss
		if rc.OnIteration != nil {
			rc.OnIteration(iter, loss)
		}
		if rc.CheckpointEvery > 0 && (iter+1)%rc.CheckpointEvery == 0 && iter+1 < rc.Iters {
			rc.beacon("ckpt", iter+1)
			ns, err := checkpointExchange(a, t, dl, tr, iter+1)
			rc.beacon("", iter+1)
			if err != nil {
				return failureOutcome(a, rc, t, tr, iter, err)
			}
			if rc.CheckpointPath != "" && a.Rank == 0 {
				if err := checkpoint.SaveRotate(rc.CheckpointPath, ns, rc.CheckpointKeep); err != nil {
					return nil, err
				}
			}
		}
	}

	rc.beacon("ckpt", rc.Iters)
	final, err := checkpointExchange(a, t, dl, tr, rc.Iters)
	rc.beacon("", rc.Iters)
	if err != nil {
		return failureOutcome(a, rc, t, tr, rc.Iters-1, err)
	}
	return &RankOutcome{
		Done:        true,
		Iter:        rc.Iters,
		Weights:     final.Weights,
		WeightsHash: hashWeights(final.Weights),
		Losses:      losses,
	}, nil
}

// HashWeights fingerprints a flat parameter vector for cheap cross-process
// bit-identity comparison — the supervisor and its replay oracle compare
// these instead of shipping full vectors over the control channel.
func HashWeights(w []float32) uint64 { return hashWeights(w) }

// hashWeights fingerprints a flat parameter vector (FNV-64a over the
// little-endian f32 bit patterns) for cheap cross-process bit-identity
// comparison.
func hashWeights(w []float32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range w {
		bits := math.Float32bits(v)
		b[0], b[1], b[2], b[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
		h.Write(b[:])
	}
	return h.Sum64()
}

// seedExchange runs the pre-training snapshot broadcast: the SeedFrom
// rank marshals its snapshot to every SeedTo rank over the new mesh.
// Spares (ranks listed in SeedTo) block until it arrives.
func seedExchange(a RankAssignment, rc RankConfig, t comm.Transport, snap *checkpoint.Snapshot) (*checkpoint.Snapshot, error) {
	if a.SeedFrom < 0 || len(a.SeedTo) == 0 {
		return snap, nil
	}
	tag := Tag{Kind: comm.KindCtl, A: seedTagBase, B: int(a.Epoch)}
	if a.Rank == a.SeedFrom {
		if snap == nil {
			return nil, fmt.Errorf("pipeline: rank %d must seed %v but holds no snapshot", a.Rank, a.SeedTo)
		}
		rc.beacon("seed", int(snap.Step))
		defer rc.beacon("", int(snap.Step))
		raw, err := checkpoint.Marshal(snap)
		if err != nil {
			return nil, err
		}
		payload := comm.PackBytes(raw)
		for _, dst := range a.SeedTo {
			if dst == a.Rank {
				continue
			}
			if err := t.Send(dst, tag, payload); err != nil {
				return nil, err
			}
		}
		return snap, nil
	}
	for _, dst := range a.SeedTo {
		if dst != a.Rank {
			continue
		}
		rc.beacon("seed", 0)
		defer rc.beacon("", 0)
		payload, err := t.RecvTimeout(a.SeedFrom, tag, dl2barrier(rc.Deadlines))
		if err != nil {
			return nil, err
		}
		raw, err := comm.UnpackBytes(payload)
		comm.Release(payload)
		if err != nil {
			return nil, err
		}
		return checkpoint.Unmarshal(raw)
	}
	return snap, nil
}

func dl2barrier(d comm.Deadlines) time.Duration { return d.WithDefaults().Barrier }

// lossBarrier is the per-iteration all-to-all control barrier: every rank
// broadcasts its loss, waits for every peer's, and adopts rank 0's as the
// canonical value. A rank that cannot complete the barrier knows the
// iteration did not commit cluster-wide. The receive deadline is the
// Barrier budget, which exceeds PeerDead by construction, so a dead peer
// surfaces as typed evidence — never as an anonymous timeout racing it.
func lossBarrier(a RankAssignment, t comm.Transport, dl comm.Deadlines, iter int, loss float64) (float64, error) {
	tag := Tag{Kind: comm.KindCtl, A: barrierTagBase + iter}
	// The f64 loss rides as two f32 bit-alias words: a float32 cast would
	// round it, and the canonical loss must survive the wire bit-exactly.
	bits := math.Float64bits(loss)
	payload := []float32{
		math.Float32frombits(uint32(bits)),
		math.Float32frombits(uint32(bits >> 32)),
	}
	for r := 0; r < a.World; r++ {
		if r == a.Rank {
			continue
		}
		if err := t.Send(r, tag, payload); err != nil {
			return 0, fmt.Errorf("iteration %d barrier: %w", iter, err)
		}
	}
	canonical := loss
	for r := 0; r < a.World; r++ {
		if r == a.Rank {
			continue
		}
		got, err := t.RecvTimeout(r, tag, dl.Barrier)
		if err != nil {
			return 0, fmt.Errorf("iteration %d barrier: %w", iter, err)
		}
		if len(got) != 2 {
			comm.Release(got)
			return 0, fmt.Errorf("iteration %d barrier: malformed loss frame from rank %d", iter, r)
		}
		if r == 0 {
			canonical = math.Float64frombits(
				uint64(math.Float32bits(got[0])) | uint64(math.Float32bits(got[1]))<<32)
		}
		comm.Release(got)
	}
	if a.Rank == 0 {
		canonical = loss
	}
	return canonical, nil
}

// stateExportPayload flattens a chunk's state export for the wire:
// [chunk, step] header words followed by W, M, V. The f32 header words
// are exact (chunk and step are small integers).
func stateExportPayload(c int, st StateExport) []float32 {
	out := make([]float32, 0, 2+3*len(st.W))
	out = append(out, float32(c), float32(st.Step))
	out = append(out, st.W...)
	out = append(out, st.M...)
	return append(out, st.V...)
}

func parseStateExport(payload []float32) (c int, st StateExport, err error) {
	if len(payload) < 2 || (len(payload)-2)%3 != 0 {
		return 0, st, fmt.Errorf("pipeline: malformed state export payload (%d words)", len(payload))
	}
	n := (len(payload) - 2) / 3
	c = int(payload[0])
	st.Step = int(payload[1])
	st.W = append([]float32(nil), payload[2:2+n]...)
	st.M = append([]float32(nil), payload[2+n:2+2*n]...)
	st.V = append([]float32(nil), payload[2+2*n:]...)
	return c, st, nil
}

// checkpointExchange assembles a coordinated full-state snapshot at a
// quiescent iteration barrier: every rank broadcasts its owned chunk's
// live state, every rank places all World chunks into an identical
// snapshot. Mirrors CaptureSnapshot, with the wire replacing shared
// memory.
func checkpointExchange(a RankAssignment, t comm.Transport, dl comm.Deadlines,
	tr Trainer, completed int) (*checkpoint.Snapshot, error) {

	wp, ok := tr.(*WeiPipe)
	if !ok {
		return nil, fmt.Errorf("pipeline: cross-process checkpoint needs a WeiPipe trainer, got %T", tr)
	}
	ownChunk := (a.Rank + 1) % a.World
	own, err := wp.ExportOwnedStateAt(completed)
	if err != nil {
		return nil, err
	}
	tag := Tag{Kind: comm.KindCtl, A: ckptTagBase + completed}
	payload := stateExportPayload(ownChunk, own)
	for r := 0; r < a.World; r++ {
		if r == a.Rank {
			continue
		}
		if err := t.Send(r, tag, payload); err != nil {
			return nil, err
		}
	}

	mdl := wp.Model()
	offsets := moduleOffsets(mdl)
	snap := newRepairSnapshot(mdl, completed)
	optStep := -1
	place := func(c int, st StateExport) error {
		if err := placeChunkState(snap, wp, offsets, c, st); err != nil {
			return err
		}
		if optStep == -1 {
			optStep = st.Step
		} else if optStep != st.Step {
			return fmt.Errorf("pipeline: inconsistent optimizer steps across chunks: %d vs %d", optStep, st.Step)
		}
		return nil
	}
	if err := place(ownChunk, own); err != nil {
		return nil, err
	}
	for r := 0; r < a.World; r++ {
		if r == a.Rank {
			continue
		}
		got, err := t.RecvTimeout(r, tag, dl.Barrier)
		if err != nil {
			return nil, err
		}
		c, st, perr := parseStateExport(got)
		comm.Release(got)
		if perr != nil {
			return nil, perr
		}
		if want := (r + 1) % a.World; c != want {
			return nil, fmt.Errorf("pipeline: rank %d exported chunk %d, expected %d", r, c, want)
		}
		if err := place(c, st); err != nil {
			return nil, err
		}
	}
	snap.Sections["adam.step"] = []float32{float32(optStep)}
	// Spike-detector state is lock-step identical on every rank, so each
	// rank contributes its own copy locally — no extra wire traffic.
	if ss, err := wp.exportSpikeAt(completed); err != nil {
		return nil, err
	} else if ss != nil {
		snap.Sections[spikeSection] = ss
	}
	return snap, nil
}

// failureOutcome is the cross-process repair path: gather the typed
// evidence, agree on membership over the transport, cross-check the
// survivors' view and repair cut, and harvest the buddy-replicated state
// into a snapshot every survivor holds identically. Any step that cannot
// complete safely aborts — the supervisor then falls back to a checkpoint
// restart, which is slower but equally bit-exact.
func failureOutcome(a RankAssignment, rc RankConfig, t comm.Transport, tr Trainer,
	iter int, cause error) (*RankOutcome, error) {

	abort := func(reason string) (*RankOutcome, error) {
		return &RankOutcome{Iter: iter, Aborted: true, Reason: reason}, nil
	}
	if errors.Is(cause, comm.ErrClosed) {
		// Local close (supervisor shutdown): nothing to agree about.
		return abort("closed: " + cause.Error())
	}
	dl := rc.Deadlines.WithDefaults()
	evidence := comm.BeginRecovery(t)
	if r, ok := comm.DeadPeer(cause); ok {
		evidence = append(evidence, r)
	}
	if errors.Is(cause, comm.ErrIntegrity) {
		// Detected silent corruption in our own resident or staged state:
		// offer ourselves as evidence so the survivors rebuild this shard
		// from its buddy replica instead of trusting it.
		evidence = append(evidence, a.Rank)
	}
	rc.beacon("agree", iter)
	m, err := comm.AgreeOverTransport(t, evidence, comm.AgreeConfig{
		Epoch: a.Epoch, Attempt: 0, Deadlines: dl,
	})
	rc.beacon("", iter)
	switch {
	case errors.Is(err, comm.ErrEvicted):
		return abort("evicted")
	case errors.Is(err, comm.ErrNoQuorum):
		return abort("no-quorum")
	case err != nil:
		return abort("agreement: " + err.Error())
	}

	rc.beacon("harvest", iter)
	defer rc.beacon("", iter)
	snap, tCut, err := wireHarvest(a, t, dl, tr, m)
	if err != nil {
		return &RankOutcome{
			Iter: iter, Membership: m, Aborted: true,
			Reason: "harvest: " + err.Error(),
		}, nil
	}
	return &RankOutcome{Iter: tCut, Membership: m, Snapshot: snap}, nil
}

// wireHarvest rebuilds the full trainer state across the survivors of an
// agreed failure. Phase one exchanges harvest metadata — a hash of the
// agreed dead set (divergent views abort rather than assemble a franken-
// snapshot) and each survivor's committed step phases, whose minimum is
// the repair cut. Phase two has each survivor broadcast every chunk it is
// the chunkSource for (owned live state, or the buddy shadow of a dead
// owner), at the cut, to all other survivors.
func wireHarvest(a RankAssignment, t comm.Transport, dl comm.Deadlines,
	tr Trainer, m comm.Membership) (*checkpoint.Snapshot, int, error) {

	wp, ok := tr.(*WeiPipe)
	if !ok {
		return nil, 0, fmt.Errorf("pipeline: elastic repair needs WeiPipe trainers, got %T", tr)
	}
	survivors := m.Survivors()
	deadHash := hashDeadSet(a.Epoch, m)
	ownChunk := (a.Rank + 1) % a.World
	buddyChunk := -1
	if c, ok := wp.BuddyChunk(); ok {
		buddyChunk = c
	}

	// Phase one: meta exchange.
	metaTag := Tag{Kind: comm.KindCtl, A: harvestTagMeta, B: int(a.Epoch)}
	meta := []float32{
		math.Float32frombits(uint32(deadHash)),
		float32(wp.CompletedStepPhases()),
		float32(ownChunk),
		float32(buddyChunk),
	}
	for _, r := range survivors {
		if r == a.Rank {
			continue
		}
		if err := t.Send(r, metaTag, meta); err != nil {
			return nil, 0, err
		}
	}
	tCut := wp.CompletedStepPhases()
	for _, r := range survivors {
		if r == a.Rank {
			continue
		}
		got, err := t.RecvTimeout(r, metaTag, dl.Barrier)
		if err != nil {
			return nil, 0, err
		}
		if len(got) != 4 {
			comm.Release(got)
			return nil, 0, fmt.Errorf("pipeline: malformed harvest meta from rank %d", r)
		}
		if math.Float32bits(got[0]) != uint32(deadHash) {
			comm.Release(got)
			return nil, 0, fmt.Errorf("pipeline: rank %d agreed a different dead set", r)
		}
		if c := int(got[1]); c < tCut {
			tCut = c
		}
		comm.Release(got)
	}

	// Phase two: chunk-state exchange at the cut.
	mdl := wp.Model()
	offsets := moduleOffsets(mdl)
	snap := newRepairSnapshot(mdl, tCut)
	optStep := -1
	sources := make([]int, a.World) // chunk -> serving survivor
	for c := 0; c < a.World; c++ {
		src, fromBuddy, err := chunkSource(c, m)
		if err != nil {
			return nil, 0, err
		}
		sources[c] = src
		if src != a.Rank {
			continue
		}
		var st StateExport
		if fromBuddy {
			st, err = wp.ExportBuddyStateAt(tCut)
		} else {
			st, err = wp.ExportOwnedStateAt(tCut)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("pipeline: harvest chunk %d: %w", c, err)
		}
		payload := stateExportPayload(c, st)
		chunkTag := Tag{Kind: comm.KindCtl, A: harvestTagBase + c, B: int(a.Epoch)}
		for _, r := range survivors {
			if r == a.Rank {
				continue
			}
			if err := t.Send(r, chunkTag, payload); err != nil {
				return nil, 0, err
			}
		}
		if err := placeHarvested(snap, wp, offsets, c, st, &optStep); err != nil {
			return nil, 0, err
		}
	}
	for c := 0; c < a.World; c++ {
		if sources[c] == a.Rank {
			continue
		}
		chunkTag := Tag{Kind: comm.KindCtl, A: harvestTagBase + c, B: int(a.Epoch)}
		got, err := t.RecvTimeout(sources[c], chunkTag, dl.Barrier)
		if err != nil {
			return nil, 0, err
		}
		gc, st, perr := parseStateExport(got)
		comm.Release(got)
		if perr != nil {
			return nil, 0, perr
		}
		if gc != c {
			return nil, 0, fmt.Errorf("pipeline: rank %d served chunk %d, expected %d", sources[c], gc, c)
		}
		if err := placeHarvested(snap, wp, offsets, c, st, &optStep); err != nil {
			return nil, 0, err
		}
	}
	snap.Sections["adam.step"] = []float32{float32(optStep)}
	if ss, err := wp.exportSpikeAt(tCut); err == nil && ss != nil {
		snap.Sections[spikeSection] = ss
	}
	return snap, tCut, nil
}

func placeHarvested(snap *checkpoint.Snapshot, ref *WeiPipe, offsets []int,
	c int, st StateExport, optStep *int) error {
	if err := placeChunkState(snap, ref, offsets, c, st); err != nil {
		return err
	}
	if *optStep == -1 {
		*optStep = st.Step
	} else if *optStep != st.Step {
		return fmt.Errorf("pipeline: inconsistent optimizer steps across chunks: %d vs %d", *optStep, st.Step)
	}
	return nil
}

// hashDeadSet fingerprints (epoch, oldSize, dead...) so survivors can
// verify they agreed on the same membership before mixing chunk states.
func hashDeadSet(epoch uint32, m comm.Membership) uint32 {
	h := fnv.New32a()
	var b [4]byte
	put := func(v uint32) {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:])
	}
	put(epoch)
	put(uint32(m.OldSize))
	for _, d := range m.Dead {
		put(uint32(d))
	}
	return h.Sum32()
}
