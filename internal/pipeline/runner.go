package pipeline

import (
	"fmt"
	"sync"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/trace"
)

// Owner is implemented by every trainer; it reports which contiguous module
// range of the local Model() holds authoritative (post-step) weights. Data-
// parallel strategies own the whole model on every rank; pipeline
// strategies own their stage; WeiPipe workers own their chunk.
type Owner interface {
	OwnedModules() (lo, hi int)
}

// OwnedModules implements Owner for the serial reference (whole model).
func (s *Serial) OwnedModules() (int, int) { return 0, len(s.mdl.Modules) }

// OwnedModules implements Owner for DP (whole model on every rank).
func (d *DP) OwnedModules() (int, int) { return 0, len(d.mdl.Modules) }

// OwnedModules implements Owner for FSDP (buffer refreshed post-step).
func (f *FSDP) OwnedModules() (int, int) { return 0, len(f.mdl.Modules) }

// OwnedModules implements Owner for the activation-passing stages.
func (p *ppBase) OwnedModules() (int, int) { return p.lo, p.hi }

// OwnedModules implements Owner for WeiPipe (the owned chunk).
func (w *WeiPipe) OwnedModules() (int, int) { return w.chunkRange(w.ownChunk) }

// ClusterResult is the outcome of RunCluster.
type ClusterResult struct {
	// Losses holds the per-iteration mean loss (identical across ranks).
	Losses []float64
	// Weights is the full post-training flat parameter vector, assembled
	// from each rank's owned module range.
	Weights []float32
	// Comm holds each rank's communication meter — the functional TBW
	// measurement (bytes by message kind) the paper's analysis reasons
	// about.
	Comm []*comm.Stats
	// SkippedSteps counts optimizer steps dropped by the non-finite guard
	// or the loss scaler. The skip decision is global, so the count is the
	// same on every rank.
	SkippedSteps int
	// SpikeSteps counts steps the grad-norm spike detector flagged
	// (Options.SpikeWindow); like the skip count, it is global.
	SpikeSteps int
	// Repairs lists the elastic repairs RunResilient performed (empty for
	// plain runs and for checkpoint-only recovery).
	Repairs []RepairEvent
}

// SkipCounter is implemented by trainers that count guard-skipped steps.
type SkipCounter interface {
	SkippedSteps() int
}

// SkippedSteps implements SkipCounter for the serial reference.
func (s *Serial) SkippedSteps() int { return s.skipped }

// SkippedSteps implements SkipCounter for DP.
func (d *DP) SkippedSteps() int { return d.skipped }

// SkippedSteps implements SkipCounter for FSDP.
func (f *FSDP) SkippedSteps() int { return f.skipped }

// SkippedSteps implements SkipCounter for the activation-passing stages.
func (p *ppBase) SkippedSteps() int { return p.skipped }

// SkippedSteps implements SkipCounter for WeiPipe.
func (w *WeiPipe) SkippedSteps() int { return w.skipped }

// SkippedSteps implements SkipCounter for the hybrid trainer.
func (h *WeiPipeDP) SkippedSteps() int { return h.inner.skipped }

// maxSkipped returns the largest per-trainer skip count (they agree on
// every rank that implements SkipCounter; max is robust to mixtures).
func maxSkipped(trainers []Trainer) int {
	out := 0
	for _, tr := range trainers {
		if sc, ok := tr.(SkipCounter); ok && sc.SkippedSteps() > out {
			out = sc.SkippedSteps()
		}
	}
	return out
}

// TotalComm aggregates the per-rank meters.
func (r *ClusterResult) TotalComm() *comm.Stats {
	total := comm.NewStats()
	for _, s := range r.Comm {
		total.Add(s)
	}
	return total
}

// RunCluster trains `iters` iterations of strategy s on p in-process ranks,
// feeding iteration i the microbatch list batchesFn(i) (every rank receives
// the same list). It returns the per-iteration losses and the assembled
// final weights. It is the harness used by tests and examples.
func RunCluster(s Strategy, p int, cfg model.Config, opts Options, iters int,
	batchesFn func(iter int) []data.Batch) (*ClusterResult, error) {

	var codec comm.CodecFunc
	if opts.BF16Wire {
		codec = comm.BeltBF16
	}
	cluster := comm.NewClusterCodec(p, codec)
	defer cluster.Close()
	cluster.AttachTrace(opts.Trace)
	if opts.P2PMode != comm.P2PFrame {
		if err := cluster.SetP2PMode(opts.P2PMode, opts.GroupSize); err != nil {
			return nil, err
		}
	}

	trainers := make([]Trainer, p)
	losses := make([][]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := New(s, cluster.Transport(r), cfg, opts)
			if err != nil {
				errs[r] = err
				return
			}
			trainers[r] = tr
			rt := opts.Trace.Rank(r)
			for i := 0; i < iters; i++ {
				span := rt.Begin()
				loss, err := tr.TrainIteration(batchesFn(i))
				rt.End(span, trace.CodeStep, int64(i), 0)
				if err != nil {
					errs[r] = fmt.Errorf("iteration %d: %w", i, err)
					return
				}
				losses[r] = append(losses[r], loss)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}

	res := &ClusterResult{
		Losses:       losses[0],
		Weights:      AssembleWeights(trainers),
		SkippedSteps: maxSkipped(trainers),
		SpikeSteps:   maxSpikes(trainers),
	}
	for r := 0; r < p; r++ {
		res.Comm = append(res.Comm, cluster.Stats(r))
	}
	return res, nil
}

// AssembleWeights builds the full flat parameter vector from each trainer's
// owned module range. Every module must be owned by at least one trainer.
func AssembleWeights(trainers []Trainer) []float32 {
	mdl := trainers[0].Model()
	nMods := len(mdl.Modules)
	full := make([]float32, mdl.NumParams())
	covered := make([]bool, nMods)

	// module offsets in the flat layout
	offsets := make([]int, nMods+1)
	for i := 0; i < nMods; i++ {
		offsets[i+1] = offsets[i] + mdl.ModuleParamSize(i)
	}
	for _, tr := range trainers {
		lo, hi := tr.(Owner).OwnedModules()
		buf := make([]float32, offsets[hi]-offsets[lo])
		tr.Model().FlattenChunk(lo, hi, buf)
		copy(full[offsets[lo]:offsets[hi]], buf)
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
	}
	for i, ok := range covered {
		if !ok {
			panic(fmt.Sprintf("pipeline: module %d owned by no rank", i))
		}
	}
	return full
}

// LRSetter is implemented by trainers whose optimizer learning rate can be
// changed between iterations (for warm-up/decay schedules).
type LRSetter interface {
	SetLR(lr float64)
}

// SetLR implements LRSetter for the serial reference.
func (s *Serial) SetLR(lr float64) { s.opt.SetLR(lr) }

// SetLR implements LRSetter for DP.
func (d *DP) SetLR(lr float64) { d.opt.SetLR(lr) }

// SetLR implements LRSetter for FSDP (every module shard's optimizer).
func (f *FSDP) SetLR(lr float64) {
	for _, o := range f.opts {
		o.SetLR(lr)
	}
}

// SetLR implements LRSetter for the activation-passing stages.
func (p *ppBase) SetLR(lr float64) { p.opt.SetLR(lr) }

// SetLR implements LRSetter for WeiPipe.
func (w *WeiPipe) SetLR(lr float64) { w.opt.SetLR(lr) }

// SetLR implements LRSetter for the hybrid trainer.
func (h *WeiPipeDP) SetLR(lr float64) { h.inner.SetLR(lr) }

// ReloadMasterFromModel refreshes this worker's owned master chunk from the
// local model buffer — used after loading checkpoint weights into Model().
// The reload is a legitimate mutation of guarded resident state, so the
// integrity guards are re-armed over the fresh values.
func (w *WeiPipe) ReloadMasterFromModel() {
	lo, hi := w.chunkRange(w.ownChunk)
	w.mdl.FlattenChunk(lo, hi, w.masterW)
	w.refreshResidentGuards()
}
