package pipeline

import (
	"math"
	"sync"
	"testing"

	"weipipe/internal/comm"
	"weipipe/internal/data"
)

// TestWeiPipeOverTCP runs WeiPipe-Interleave across a real TCP mesh on
// loopback and checks it against the serial reference — the functional
// analogue of the paper's multi-node deployment.
func TestWeiPipeOverTCP(t *testing.T) {
	const p, iters, n = 2, 1, 4
	wantLoss, wantW := serialReference(t, iters, n)

	addrs, err := comm.LoopbackAddrs(p)
	if err != nil {
		t.Fatal(err)
	}
	trainers := make([]Trainer, p)
	transports := make([]*comm.TCPTransport, p)
	losses := make([]float64, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := comm.DialTCP(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			transports[r] = tr
			trainer, err := New(StrategyWeiPipeInterleave, tr, eqCfg(), eqOpts())
			if err != nil {
				errs[r] = err
				return
			}
			trainers[r] = trainer
			batches := eqBatches(iters, n)
			for i := 0; i < iters; i++ {
				losses[r], errs[r] = trainer.TrainIteration(batches(i))
				if errs[r] != nil {
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for _, tr := range transports {
		if tr != nil {
			tr.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if math.Abs(losses[0]-wantLoss[0]) > 1e-4 || math.Abs(losses[1]-wantLoss[0]) > 1e-4 {
		t.Errorf("TCP losses %v vs serial %v", losses, wantLoss[0])
	}
	got := AssembleWeights(trainers)
	if d := maxAbsDiff(got, wantW); d > 5e-4 {
		t.Errorf("TCP weights diff vs serial = %g", d)
	}
}

// TestOneFOneBOverTCP does the same for the activation-passing baseline.
func TestOneFOneBOverTCP(t *testing.T) {
	const p, iters, n = 2, 1, 4
	wantLoss, wantW := serialReference(t, iters, n)

	addrs, err := comm.LoopbackAddrs(p)
	if err != nil {
		t.Fatal(err)
	}
	trainers := make([]Trainer, p)
	transports := make([]*comm.TCPTransport, p)
	errs := make([]error, p)
	lossCh := make([]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := comm.DialTCP(r, addrs)
			if err != nil {
				errs[r] = err
				return
			}
			transports[r] = tr
			trainer, err := New(Strategy1F1B, tr, eqCfg(), eqOpts())
			if err != nil {
				errs[r] = err
				return
			}
			trainers[r] = trainer
			batches := data.Microbatches(100, n, 2, 13, 6)
			lossCh[r], errs[r] = trainer.TrainIteration(batches)
		}(r)
	}
	wg.Wait()
	for _, tr := range transports {
		if tr != nil {
			tr.Close()
		}
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if math.Abs(lossCh[0]-wantLoss[0]) > 1e-4 {
		t.Errorf("TCP 1F1B loss %v vs serial %v", lossCh[0], wantLoss[0])
	}
	got := AssembleWeights(trainers)
	if d := maxAbsDiff(got, wantW); d > 5e-4 {
		t.Errorf("TCP 1F1B weights diff vs serial = %g", d)
	}
}
