package pipeline

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"weipipe/internal/checkpoint"
	"weipipe/internal/comm"
)

// rankDeadlines is the shrunk budget the in-process RunRank tests use:
// detector in hundreds of milliseconds, protocol deadlines above it.
func rankDeadlines() comm.Deadlines {
	return comm.Deadlines{
		Dial:       10 * time.Second,
		Heartbeat:  20 * time.Millisecond,
		PeerDead:   800 * time.Millisecond,
		Retransmit: 40 * time.Millisecond,
		AgreeRound: 2 * time.Second,
		Barrier:    5 * time.Second,
	}
}

// buddyOpts mirrors what RunRank forces on every multi-rank incarnation,
// so in-process oracles train with the identical configuration.
func buddyOpts() Options {
	o := eqOpts()
	o.Buddy = true
	return o
}

// runIncarnation drives one cluster incarnation with every rank in its own
// goroutine over a real TCP mesh — processes minus the fork. assignFn and
// cfgFn, when set, customise each rank's assignment and config.
func runIncarnation(t *testing.T, world int, epoch uint32, iters int,
	assignFn func(rank int, a *RankAssignment), cfgFn func(rank int, rc *RankConfig)) ([]*RankOutcome, []error) {
	t.Helper()
	addrs, err := comm.LoopbackAddrs(world)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]*RankOutcome, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a := RankAssignment{
				Epoch: epoch, Rank: r, World: world, Addrs: addrs, SeedFrom: -1,
			}
			if assignFn != nil {
				assignFn(r, &a)
			}
			rc := RankConfig{
				Strategy:  StrategyWZB2,
				Cfg:       eqCfg(),
				Opts:      eqOpts(),
				Iters:     iters,
				BatchesFn: eqBatches(iters, 12),
				Deadlines: rankDeadlines(),
			}
			if cfgFn != nil {
				cfgFn(r, &rc)
			}
			outcomes[r], errs[r] = RunRank(a, rc)
		}(r)
	}
	wg.Wait()
	return outcomes, errs
}

// inprocSnapshotAt trains an in-process WZB2 cluster for `cut` iterations
// and captures the coordinated snapshot — the seed state the spare tests
// hand to a fresh incarnation.
func inprocSnapshotAt(t *testing.T, world, cut, iters int) *checkpoint.Snapshot {
	t.Helper()
	cluster := comm.NewCluster(world)
	defer cluster.Close()
	batchesFn := eqBatches(iters, 12)
	trainers := make([]Trainer, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := New(StrategyWZB2, cluster.Transport(r), eqCfg(), buddyOpts())
			if err != nil {
				errs[r] = err
				return
			}
			trainers[r] = tr
			for i := 0; i < cut; i++ {
				if _, err := tr.TrainIteration(batchesFn(i)); err != nil {
					errs[r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("oracle rank %d: %v", r, err)
		}
	}
	snap, err := CaptureSnapshot(trainers, cut)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// severableTransport installs the real TCP dial for one rank but captures
// the handle so a test can sever it mid-run the way a SIGKILL would —
// connections drop, no goodbye.
func severableTransport(dl comm.Deadlines, capture func(comm.Transport)) func(RankAssignment) (comm.Transport, error) {
	return func(a RankAssignment) (comm.Transport, error) {
		opts := dl.TCPOptions()
		opts.Epoch = a.Epoch
		tr, err := comm.DialTCPOpts(a.Rank, a.Addrs, opts)
		if err == nil {
			capture(tr)
		}
		return tr, err
	}
}

// A fault-free cross-process run: every rank completes, all agree on the
// final weights bit-for-bit, and the trajectory matches the in-process
// cluster of the same world size exactly.
func TestRunRankPlainTCPMatchesInproc(t *testing.T) {
	const world, iters = 3, 4
	base := runtime.NumGoroutine()
	outcomes, errs := runIncarnation(t, world, 1, iters, nil, nil)
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	ref, err := RunCluster(StrategyWZB2, world, eqCfg(), buddyOpts(), iters, eqBatches(iters, 12))
	if err != nil {
		t.Fatal(err)
	}
	for r, o := range outcomes {
		if !o.Done {
			t.Fatalf("rank %d did not complete: %+v", r, o)
		}
		if o.WeightsHash != outcomes[0].WeightsHash {
			t.Fatalf("rank %d weight hash %x != rank 0's %x", r, o.WeightsHash, outcomes[0].WeightsHash)
		}
		bitIdentical(t, "cross-process vs in-proc", o.Losses, ref.Losses, o.Weights, ref.Weights)
	}
	waitPipelineGoroutines(t, base)
}

// Kill one rank mid-run: the survivors must agree on the dead set over the
// wire, harvest identical repair snapshots from buddy replicas, and a
// shrunken next incarnation must continue bit-identically to a fresh
// in-process cluster started from the same harvested state.
func TestRunRankElasticShrinkRecoveryTCP(t *testing.T) {
	const world, iters = 3, 6
	base := runtime.NumGoroutine()

	var mu sync.Mutex
	var victim comm.Transport
	outcomes, errs := runIncarnation(t, world, 1, iters, nil, func(r int, rc *RankConfig) {
		if r == 1 {
			rc.Transport = severableTransport(rc.Deadlines, func(tr comm.Transport) {
				mu.Lock()
				victim = tr
				mu.Unlock()
			})
			rc.OnIteration = func(iter int, loss float64) {
				if iter == 2 {
					mu.Lock()
					victim.Close()
					mu.Unlock()
				}
			}
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d returned hard error: %v", r, err)
		}
	}
	if !outcomes[1].Aborted {
		t.Fatalf("killed rank reported %+v, want abort", outcomes[1])
	}
	for _, r := range []int{0, 2} {
		o := outcomes[r]
		if o.Aborted || o.Snapshot == nil {
			t.Fatalf("survivor %d failed to harvest: %+v (reason %q)", r, o, o.Reason)
		}
		if len(o.Membership.Dead) != 1 || o.Membership.Dead[0] != 1 {
			t.Fatalf("survivor %d agreed dead set %v, want [1]", r, o.Membership.Dead)
		}
		if o.Iter < 2 || o.Iter >= iters {
			t.Fatalf("survivor %d repair cut %d, want within [2, %d)", r, o.Iter, iters)
		}
	}
	if a, b := outcomes[0], outcomes[2]; a.Iter != b.Iter ||
		hashWeights(a.Snapshot.Weights) != hashWeights(b.Snapshot.Weights) {
		t.Fatalf("survivors harvested divergent snapshots: cut %d vs %d", a.Iter, b.Iter)
	}
	cut := outcomes[0].Iter
	snap := outcomes[0].Snapshot

	// Next incarnation: shrink to 2 survivors at a new epoch on a fresh
	// mesh, both seeded from the snapshot they already hold.
	out2, errs2 := runIncarnation(t, 2, 2, iters, func(r int, a *RankAssignment) {
		a.StartIter = cut
	}, func(r int, rc *RankConfig) {
		rc.Snapshot = snap
	})
	for r, err := range errs2 {
		if err != nil {
			t.Fatalf("shrunken rank %d: %v", r, err)
		}
	}
	ref, err := RunResilient(StrategyWZB2, 2, eqCfg(), eqOpts(), iters, eqBatches(iters, 12),
		inprocFactory(2), ResilientOptions{Elastic: ElasticShrink, InitialSnapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	for r, o := range out2 {
		if !o.Done {
			t.Fatalf("shrunken rank %d did not complete: %+v (reason %q)", r, o, o.Reason)
		}
		bitIdentical(t, "post-shrink vs in-proc from snapshot",
			o.Losses[cut:], ref.Losses[cut:], o.Weights, ref.Weights)
	}
	waitPipelineGoroutines(t, base)
}

// Spare admission over the wire: the next incarnation keeps the world size
// by seeding a fresh rank (which never heard the old mesh) from rank 0's
// snapshot broadcast, then training continues bit-identically to the
// uninterrupted same-world run.
func TestRunRankSpareSeedMembershipTCP(t *testing.T) {
	const world, iters = 3, 6
	const cut = 3
	base := runtime.NumGoroutine()
	snap := inprocSnapshotAt(t, world, cut, iters)

	// Ranks 0 and 1 are survivors holding the snapshot; rank 2 plays the
	// admitted spare: no snapshot, seeded over the new mesh by rank 0.
	outcomes, errs := runIncarnation(t, world, 2, iters, func(r int, a *RankAssignment) {
		a.StartIter = cut
		a.SeedFrom = 0
		a.SeedTo = []int{2}
	}, func(r int, rc *RankConfig) {
		if r != 2 {
			rc.Snapshot = snap
		}
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	ref, err := RunCluster(StrategyWZB2, world, eqCfg(), buddyOpts(), iters, eqBatches(iters, 12))
	if err != nil {
		t.Fatal(err)
	}
	for r, o := range outcomes {
		if !o.Done {
			t.Fatalf("rank %d did not complete: %+v (reason %q)", r, o, o.Reason)
		}
		bitIdentical(t, "spare-seeded vs uninterrupted",
			o.Losses[cut:], ref.Losses[cut:], o.Weights, ref.Weights)
	}
	waitPipelineGoroutines(t, base)
}

// A rank that dies between iterations (no training traffic in flight) is
// still detected at the per-iteration loss barrier — and a 2-rank world
// losing one rank must abort on lost quorum rather than continue as a
// half-brain.
func TestRunRankBarrierDetectsPeerDeath(t *testing.T) {
	const world, iters = 2, 8
	base := runtime.NumGoroutine()
	var mu sync.Mutex
	var victim comm.Transport
	outcomes, errs := runIncarnation(t, world, 1, iters, nil, func(r int, rc *RankConfig) {
		if r == 1 {
			rc.Transport = severableTransport(rc.Deadlines, func(tr comm.Transport) {
				mu.Lock()
				victim = tr
				mu.Unlock()
			})
			rc.OnIteration = func(iter int, loss float64) {
				if iter == 3 {
					mu.Lock()
					victim.Close()
					mu.Unlock()
				}
			}
		}
	})
	if errs[0] != nil {
		t.Fatalf("survivor: %v", errs[0])
	}
	o := outcomes[0]
	if !o.Aborted {
		t.Fatalf("survivor of 2-rank split continued: %+v", o)
	}
	if o.Reason != "no-quorum" {
		t.Fatalf("survivor aborted with %q, want no-quorum", o.Reason)
	}
	waitPipelineGoroutines(t, base)
}

// A rank parked inside BeaconBarrier (checkpoint capture, agreement) must
// never be flagged by the straggler watchdog, while a genuinely silent
// active rank still is.
func TestWatchdogBarrierBeaconExempt(t *testing.T) {
	board := NewProgressBoard(2)
	var mu sync.Mutex
	flagged := map[int]bool{}
	wd := startWatchdog(WatchdogConfig{
		Interval: 5 * time.Millisecond,
		MinStall: 60 * time.Millisecond,
		Multiple: 2,
		OnStraggler: func(rep StragglerReport) {
			mu.Lock()
			flagged[rep.Rank] = true
			mu.Unlock()
		},
	}, board, func(int) {})
	defer wd.Stop()
	wd.NoteIteration(10 * time.Millisecond) // arm the detector

	board.SetIdle(0, false) // active, then silent: a true straggler
	board.SetIdle(1, false)
	err := BeaconBarrier(board, 1, 10*time.Millisecond, func() error {
		time.Sleep(300 * time.Millisecond) // long off-wire barrier
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !flagged[0] {
		t.Error("silent active rank was never flagged; watchdog is blind")
	}
	if flagged[1] {
		t.Error("barrier-parked beaconing rank was flagged as a straggler")
	}
}
