package tp

import (
	"math"
	"sync"
	"testing"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/optim"
	"weipipe/internal/pipeline"
	"weipipe/internal/tensor"
)

func tpCfg() model.Config {
	return model.Config{Vocab: 13, Hidden: 8, Layers: 3, Heads: 4, FFNDim: 12, MaxSeq: 6, Seed: 11}
}

func adamCfg() optim.AdamWConfig {
	c := optim.DefaultAdamW(0.01)
	c.Eps = 1e-5
	return c
}

// runTP trains one iteration on tpSize ranks and returns each rank's loss
// and worker.
func runTP(t *testing.T, tpSize, iters int) ([]float64, []*Worker) {
	t.Helper()
	cluster := comm.NewCluster(tpSize)
	workers := make([]*Worker, tpSize)
	losses := make([]float64, tpSize)
	errs := make([]error, tpSize)
	var wg sync.WaitGroup
	for r := 0; r < tpSize; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w, err := New(cluster.Transport(r), tpCfg())
			if err != nil {
				errs[r] = err
				return
			}
			w.SetAdam(adamCfg())
			workers[r] = w
			for i := 0; i < iters; i++ {
				batches := data.Microbatches(uint64(30+i), 4, 2, 13, 6)
				losses[r], errs[r] = w.TrainIteration(batches)
				if errs[r] != nil {
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return losses, workers
}

// serialRef trains the serial reference on identical data.
func serialRef(t *testing.T, iters int) (*pipeline.Serial, []float64) {
	t.Helper()
	s := pipeline.NewSerial(tpCfg(), pipeline.Options{Adam: adamCfg()})
	var losses []float64
	for i := 0; i < iters; i++ {
		batches := data.Microbatches(uint64(30+i), 4, 2, 13, 6)
		loss, err := s.TrainIteration(batches)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, loss)
	}
	return s, losses
}

func TestTPLossMatchesSerial(t *testing.T) {
	for _, tpSize := range []int{2, 4} {
		losses, _ := runTP(t, tpSize, 1)
		_, ref := serialRef(t, 1)
		for r := range losses {
			if math.Abs(losses[r]-ref[0]) > 1e-5 {
				t.Errorf("T=%d rank %d: loss %.6f vs serial %.6f", tpSize, r, losses[r], ref[0])
			}
		}
	}
}

func TestTPWeightsMatchSerialAfterStep(t *testing.T) {
	const iters = 2
	_, workers := runTP(t, 2, iters)
	ref, _ := serialRef(t, iters)

	// Reassemble full weights of every layer (needs both ranks running the
	// gathers concurrently).
	cfg := tpCfg()
	for li := 0; li < cfg.Layers; li++ {
		fulls := make([]map[string]*tensor.Tensor, 2)
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				fulls[r], errs[r] = workers[r].FullBlockWeights(li)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d gather: %v", r, err)
			}
		}
		refBlock := ref.Model().Blocks[li]
		want := map[string]*tensor.Tensor{
			"wq": refBlock.Attn.Wq, "wk": refBlock.Attn.Wk, "wv": refBlock.Attn.Wv,
			"wo": refBlock.Attn.Wo, "w1": refBlock.Ffn.W1, "w3": refBlock.Ffn.W3,
			"w2": refBlock.Ffn.W2, "norm1.g": refBlock.Norm1.Gain, "norm2.g": refBlock.Norm2.Gain,
		}
		for name, wantT := range want {
			got := fulls[0][name]
			if got.Size() != wantT.Size() {
				t.Fatalf("layer %d %s: size %d vs %d", li, name, got.Size(), wantT.Size())
			}
			for i := range got.Data {
				if d := math.Abs(float64(got.Data[i] - wantT.Data[i])); d > 5e-4 {
					t.Fatalf("layer %d %s[%d]: tp %v vs serial %v", li, name, i, got.Data[i], wantT.Data[i])
				}
			}
			// both ranks must reassemble identically
			for i := range got.Data {
				if got.Data[i] != fulls[1][name].Data[i] {
					t.Fatalf("layer %d %s: ranks disagree at %d", li, name, i)
				}
			}
		}
	}
}

func TestTPReplicatedParamsStayInSync(t *testing.T) {
	_, workers := runTP(t, 2, 2)
	a := workers[0].embed.Params().Flatten()
	b := workers[1].embed.Params().Flatten()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("embedding diverged at %d", i)
		}
	}
	ha := workers[0].head.Params().Flatten()
	hb := workers[1].head.Params().Flatten()
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("head diverged at %d", i)
		}
	}
}

func TestTPTrafficIsActivationSized(t *testing.T) {
	// TP's all-reduces move activation-sized tensors four times per layer
	// per microbatch — the bandwidth hunger the paper contrasts WeiPipe
	// against. Verify the traffic scales with G·S.
	cluster := comm.NewCluster(2)
	run := func(g, s int) int64 {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		before := cluster.Stats(0).TotalSentBytes() + cluster.Stats(1).TotalSentBytes()
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				cfg := tpCfg()
				cfg.MaxSeq = s
				w, err := New(cluster.Transport(r), cfg)
				if err != nil {
					errs[r] = err
					return
				}
				w.SetAdam(adamCfg())
				_, errs[r] = w.TrainIteration(data.Microbatches(9, 2, g, 13, s))
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return cluster.Stats(0).TotalSentBytes() + cluster.Stats(1).TotalSentBytes() - before
	}
	base := run(2, 6)
	bigS := run(2, 12)
	if bigS < base*18/10 {
		t.Fatalf("TP traffic did not scale with S: %d vs %d", bigS, base)
	}
}

func TestTPRejectsIndivisibleShapes(t *testing.T) {
	cluster := comm.NewCluster(3)
	if _, err := New(cluster.Transport(0), tpCfg()); err == nil {
		t.Fatal("4 heads on 3 ranks accepted")
	}
}
