// Package tp implements Megatron-style tensor parallelism as an additional
// substrate: every rank of a TP group holds a vertical shard of each
// transformer layer (a subset of attention heads; a column block of the
// FFN), activations are replicated, and two ring all-reduces per layer per
// direction stitch the partial results together.
//
// The paper names the WeiPipe × TP combination as unexplored future work
// and uses TP's bandwidth-hunger as motivation ("requires frequent and
// fine-grained collective communication"); this package makes both
// concrete: a functional TP trainer verified against the serial reference,
// and (in internal/schedule) a cost model showing TP's per-layer
// activation-sized all-reduces collapsing on slow links.
package tp

import (
	"fmt"

	"weipipe/internal/comm"
	"weipipe/internal/data"
	"weipipe/internal/model"
	"weipipe/internal/nn"
	"weipipe/internal/optim"
	"weipipe/internal/tensor"
)

// Block is one tensor-parallel transformer layer shard: the norms are
// replicated, attention holds heads/T heads, the FFN holds F/T columns.
type Block struct {
	Norm1 *nn.RMSNorm
	Attn  *nn.Attention
	Norm2 *nn.RMSNorm
	Ffn   *nn.FFN
}

// Worker is one rank of a TP group. All ranks see the same microbatches
// (activations are replicated); each updates its own shards plus its copy
// of the replicated parameters (which receive identical gradients on every
// rank, so the copies never diverge).
type Worker struct {
	t      comm.Transport
	cfg    model.Config
	embed  *nn.Embedding // replicated
	blocks []*Block
	head   *nn.OutputHead // replicated
	opt    *optim.AdamW
	seq    int
}

// New builds rank t.Rank() of a TP group of size t.Size() by slicing the
// deterministic full model built from cfg. Heads and FFNDim must divide by
// the group size.
func New(t comm.Transport, cfg model.Config) (*Worker, error) {
	cfg = cfg.WithDefaults()
	tpSize := t.Size()
	if cfg.Heads%tpSize != 0 {
		return nil, fmt.Errorf("tp: %d heads not divisible by %d ranks", cfg.Heads, tpSize)
	}
	if cfg.FFNDim%tpSize != 0 {
		return nil, fmt.Errorf("tp: FFN dim %d not divisible by %d ranks", cfg.FFNDim, tpSize)
	}
	full := model.Build(cfg)
	r := t.Rank()
	w := &Worker{t: t, cfg: cfg}

	// Replicated edges: deep copies so shard construction can't alias.
	w.embed = full.Embed
	w.head = full.Head

	headsLocal := cfg.Heads / tpSize
	headDim := cfg.Hidden / cfg.Heads
	fLocal := cfg.FFNDim / tpSize
	rng := tensor.NewRNG(cfg.Seed ^ 0x7079) // only shapes matter; weights overwritten
	rope := nn.NewRopeTable(cfg.MaxSeq, headDim)
	for li, fb := range full.Blocks {
		b := &Block{
			Norm1: fb.Norm1,
			Norm2: fb.Norm2,
			Attn:  nn.NewAttentionSharded(fmt.Sprintf("block%d.attn", li), cfg.Hidden, headsLocal, headDim, rope, rng),
			Ffn:   nn.NewFFN(fmt.Sprintf("block%d.ffn", li), cfg.Hidden, fLocal, rng),
		}
		// Attention: Wq/Wk/Wv column blocks (this rank's heads), Wo the
		// matching row block.
		lo := r * headsLocal * headDim
		hi := lo + headsLocal*headDim
		copyCols(b.Attn.Wq, fb.Attn.Wq, lo, hi)
		copyCols(b.Attn.Wk, fb.Attn.Wk, lo, hi)
		copyCols(b.Attn.Wv, fb.Attn.Wv, lo, hi)
		copyRows(b.Attn.Wo, fb.Attn.Wo, lo, hi)
		// FFN: W1/W3 column blocks, W2 the matching row block.
		flo := r * fLocal
		fhi := flo + fLocal
		copyCols(b.Ffn.W1, fb.Ffn.W1, flo, fhi)
		copyCols(b.Ffn.W3, fb.Ffn.W3, flo, fhi)
		copyRows(b.Ffn.W2, fb.Ffn.W2, flo, fhi)
		w.blocks = append(w.blocks, b)
	}
	w.opt = optim.NewAdamW(w.paramSize(), optim.DefaultAdamW(1e-3))
	return w, nil
}

// SetAdam replaces the optimizer configuration (call before training).
func (w *Worker) SetAdam(cfg optim.AdamWConfig) {
	w.opt = optim.NewAdamW(w.paramSize(), cfg)
}

// copyCols copies columns [lo,hi) of src into dst (same row count).
func copyCols(dst, src *tensor.Tensor, lo, hi int) {
	rows, sc, dc := src.Rows(), src.Cols(), dst.Cols()
	if dst.Rows() != rows || dc != hi-lo {
		panic("tp: copyCols shape mismatch")
	}
	for i := 0; i < rows; i++ {
		copy(dst.Data[i*dc:(i+1)*dc], src.Data[i*sc+lo:i*sc+hi])
	}
}

// copyRows copies rows [lo,hi) of src into dst (same column count).
func copyRows(dst, src *tensor.Tensor, lo, hi int) {
	c := src.Cols()
	if dst.Cols() != c || dst.Rows() != hi-lo {
		panic("tp: copyRows shape mismatch")
	}
	copy(dst.Data, src.Data[lo*c:hi*c])
}

// params returns every local parameter set in update order.
func (w *Worker) params() []*nn.ParamSet {
	out := []*nn.ParamSet{w.embed.Params()}
	for _, b := range w.blocks {
		out = append(out, b.Norm1.Params(), b.Attn.Params(), b.Norm2.Params(), b.Ffn.Params())
	}
	return append(out, w.head.Params())
}

func (w *Worker) paramSize() int {
	n := 0
	for _, p := range w.params() {
		n += p.Size()
	}
	return n
}

// blockCaches is the per-microbatch cache bundle of one layer.
type blockCaches struct {
	n1, at, n2, ff *nn.Cache
}

// forward runs the full replicated-activation forward for one microbatch
// and returns the loss (identical on every rank).
func (w *Worker) forward(b data.Batch, embedC *nn.Cache, bcs []*blockCaches, headC *nn.Cache) (float64, error) {
	x := w.embed.ForwardTokens(b.Tokens, embedC)
	for li, blk := range w.blocks {
		bc := bcs[li]
		x1 := blk.Norm1.Forward(x, bc.n1)
		ao := blk.Attn.Forward(x1, bc.at) // partial over this rank's heads
		w.seq++
		if err := comm.RingAllReduceSum(w.t, ao.Data, w.seq); err != nil {
			return 0, err
		}
		y := tensor.New(x.Shape()...)
		tensor.Add(y, x, ao)

		y1 := blk.Norm2.Forward(y, bc.n2)
		fo := blk.Ffn.Forward(y1, bc.ff) // partial over this rank's columns
		w.seq++
		if err := comm.RingAllReduceSum(w.t, fo.Data, w.seq); err != nil {
			return 0, err
		}
		z := tensor.New(x.Shape()...)
		tensor.Add(z, y, fo)
		x = z
	}
	return w.head.ForwardLoss(x, b.Targets, headC), nil
}

// backward propagates from the loss, accumulating local weight gradients
// into grads (aligned with params()).
func (w *Worker) backward(embedC *nn.Cache, bcs []*blockCaches, headC *nn.Cache, grads []*nn.ParamSet) error {
	dy := w.head.BackwardFromLoss(headC)
	w.head.BackwardParams(headC, grads[len(grads)-1])

	for li := len(w.blocks) - 1; li >= 0; li-- {
		blk := w.blocks[li]
		bc := bcs[li]
		gi := 1 + 4*li // grads index of norm1

		// FFN branch: z = y + allreduce(ffn(norm2(y)))
		dy1Partial := blk.Ffn.BackwardInput(dy, bc.ff)
		blk.Ffn.BackwardParams(bc.ff, grads[gi+3])
		w.seq++
		if err := comm.RingAllReduceSum(w.t, dy1Partial.Data, w.seq); err != nil {
			return err
		}
		dyFfn := blk.Norm2.BackwardInput(dy1Partial, bc.n2)
		blk.Norm2.BackwardParams(bc.n2, grads[gi+2])
		dyMid := tensor.New(dy.Shape()...)
		tensor.Add(dyMid, dy, dyFfn)

		// Attention branch: y = x + allreduce(attn(norm1(x)))
		dx1Partial := blk.Attn.BackwardInput(dyMid, bc.at)
		blk.Attn.BackwardParams(bc.at, grads[gi+1])
		w.seq++
		if err := comm.RingAllReduceSum(w.t, dx1Partial.Data, w.seq); err != nil {
			return err
		}
		dxAttn := blk.Norm1.BackwardInput(dx1Partial, bc.n1)
		blk.Norm1.BackwardParams(bc.n1, grads[gi])
		dx := tensor.New(dy.Shape()...)
		tensor.Add(dx, dyMid, dxAttn)
		dy = dx
	}
	w.embed.BackwardInput(dy, embedC)
	w.embed.BackwardParams(embedC, grads[0])
	return nil
}

// TrainIteration processes the microbatches (grad accumulation) and steps
// the local optimizer. Returns the mean loss.
func (w *Worker) TrainIteration(batches []data.Batch) (float64, error) {
	paramSets := w.params()
	grads := make([]*nn.ParamSet, len(paramSets))
	for i, p := range paramSets {
		grads[i] = p.NewLike()
	}
	var lossSum float64
	for _, b := range batches {
		embedC := nn.NewCache(b.G(), b.S())
		headC := nn.NewCache(b.G(), b.S())
		bcs := make([]*blockCaches, len(w.blocks))
		for i := range bcs {
			bcs[i] = &blockCaches{
				n1: nn.NewCache(b.G(), b.S()), at: nn.NewCache(b.G(), b.S()),
				n2: nn.NewCache(b.G(), b.S()), ff: nn.NewCache(b.G(), b.S()),
			}
		}
		loss, err := w.forward(b, embedC, bcs, headC)
		if err != nil {
			return 0, err
		}
		lossSum += loss
		if err := w.backward(embedC, bcs, headC, grads); err != nil {
			return 0, err
		}
	}

	// Flatten local params and grads; average grads over microbatches; step.
	flatW := make([]float32, 0, w.paramSize())
	flatG := make([]float32, 0, w.paramSize())
	for i, p := range paramSets {
		flatW = append(flatW, p.Flatten()...)
		flatG = append(flatG, grads[i].Flatten()...)
	}
	inv := float32(1.0 / float64(len(batches)))
	for i := range flatG {
		flatG[i] *= inv
	}
	w.opt.Step(flatW, flatG)
	off := 0
	for _, p := range paramSets {
		p.SetFlat(flatW[off : off+p.Size()])
		off += p.Size()
	}
	return lossSum / float64(len(batches)), nil
}

// FullBlockWeights reassembles the full (unsharded) weights of layer li by
// all-gathering the shards — used by the equivalence tests.
func (w *Worker) FullBlockWeights(li int) (map[string]*tensor.Tensor, error) {
	blk := w.blocks[li]
	tpSize := w.t.Size()
	out := make(map[string]*tensor.Tensor)
	h := w.cfg.Hidden

	gatherCols := func(name string, shard *tensor.Tensor, fullCols int) error {
		// each rank contributes its column block; transpose trick: gather
		// row-major shards then interleave columns.
		lens := make([]int, tpSize)
		for i := range lens {
			lens[i] = shard.Size()
		}
		w.seq++
		flat, err := comm.AllGather(w.t, shard.Data, lens, w.seq)
		if err != nil {
			return err
		}
		full := tensor.New(shard.Rows(), fullCols)
		cw := shard.Cols()
		for rk := 0; rk < tpSize; rk++ {
			part := flat[rk*shard.Size() : (rk+1)*shard.Size()]
			for i := 0; i < shard.Rows(); i++ {
				copy(full.Data[i*fullCols+rk*cw:i*fullCols+(rk+1)*cw], part[i*cw:(i+1)*cw])
			}
		}
		out[name] = full
		return nil
	}
	gatherRows := func(name string, shard *tensor.Tensor, fullRows int) error {
		lens := make([]int, tpSize)
		for i := range lens {
			lens[i] = shard.Size()
		}
		w.seq++
		flat, err := comm.AllGather(w.t, shard.Data, lens, w.seq)
		if err != nil {
			return err
		}
		out[name] = tensor.FromSlice(flat, fullRows, shard.Cols())
		return nil
	}

	if err := gatherCols("wq", blk.Attn.Wq, h); err != nil {
		return nil, err
	}
	if err := gatherCols("wk", blk.Attn.Wk, h); err != nil {
		return nil, err
	}
	if err := gatherCols("wv", blk.Attn.Wv, h); err != nil {
		return nil, err
	}
	if err := gatherRows("wo", blk.Attn.Wo, h); err != nil {
		return nil, err
	}
	if err := gatherCols("w1", blk.Ffn.W1, w.cfg.FFNDim); err != nil {
		return nil, err
	}
	if err := gatherCols("w3", blk.Ffn.W3, w.cfg.FFNDim); err != nil {
		return nil, err
	}
	if err := gatherRows("w2", blk.Ffn.W2, w.cfg.FFNDim); err != nil {
		return nil, err
	}
	out["norm1.g"] = blk.Norm1.Gain.Clone()
	out["norm2.g"] = blk.Norm2.Gain.Clone()
	return out, nil
}
