// Package schedule compiles each parallel-training strategy into a
// discrete-event task graph for internal/sim: per-worker compute ops in the
// strategy's program order, link tasks for every point-to-point transfer on
// the ring, and fabric tasks for ring collectives. Task durations come from
// the analytic cost model and the cluster topology.
package schedule

import (
	"fmt"

	"weipipe/internal/cluster"
	"weipipe/internal/cost"
	"weipipe/internal/sim"
)

// Spec bundles the inputs of a schedule build.
type Spec struct {
	W   cost.Workload
	GPU cluster.GPUSpec
	Top cluster.Topology
	// Overlap enables communication/computation overlap (the paper's
	// batch_isend_irecv prefetching). Disabling it is an ablation: belt
	// chunks are only forwarded after the local compute that used them.
	Overlap bool
	// WireFP32 doubles every wire payload, ablating the paper's fp16/bf16
	// wire format against full-precision transfers.
	WireFP32 bool
	// BeltBuffers overrides WeiPipe's per-worker, per-belt chunk buffer
	// depth (default 2). Deeper buffers trade memory for belt slack.
	BeltBuffers int
	// TerminalGradAllReduce replaces WeiPipe's in-transit gradient
	// accumulation with an end-of-iteration ring all-reduce of the full
	// gradient — the design alternative the D belt avoids.
	TerminalGradAllReduce bool
	// LinkScale multiplies every point-to-point link duration (0 means 1,
	// the uncalibrated model). It is the calibration knob the functional
	// runtime's overlap telemetry feeds: the ratio of overlapped to
	// blocking belt stall (cost.OverlapMeasurement.SuggestedLinkScale)
	// expresses how much of the modelled link time the async engine
	// actually exposes to compute.
	LinkScale float64
	// P2PMode selects the transport link model, mirroring the runtime's
	// per-link packaging modes. "" or "frame" reproduces the baseline
	// protocol exactly (one link task per belt hop, each paying the
	// link latency). "batched" models the sender's burst coalescing: the
	// forward-belt hop is each tick's envelope carrier and pays the
	// latency; the backward and gradient frames the tick makes ready on
	// the same link ride that envelope — bandwidth cost only, no
	// envelope (and no send count) of their own. Dependencies are
	// untouched, so batching never delays a frame that frame mode would
	// have sent — it only amortizes the per-envelope latency, the burst
	// protocol's win. "duplex" gives each belt its own lane per link
	// (independent engines at full bandwidth: acks and the runtime's ctl
	// lane are not modelled, but belts no longer queue behind each other
	// — no head-of-line blocking). "auto" picks per link: batched on
	// group-boundary or high-latency links, duplex otherwise, mirroring
	// the runtime controller's topology seeding and RTT threshold.
	P2PMode string
}

// wireScale returns the payload multiplier of the wire-format ablation.
func (s Spec) wireScale() float64 {
	if s.WireFP32 {
		return 2
	}
	return 1
}

// linkScale returns the calibrated link-duration multiplier.
func (s Spec) linkScale() float64 {
	if s.LinkScale > 0 {
		return s.LinkScale
	}
	return 1
}

// p2pLinkBatched reports whether ring link i (rank i → i+1) runs the
// batched packaging under the spec's P2P mode. "auto" consults the same
// inputs that seed the runtime controller: the topology tier (boundary
// links batch) and the link's latency against the calibrated RTT
// threshold.
func (s Spec) p2pLinkBatched(i int) bool {
	switch s.P2PMode {
	case "batched":
		return true
	case "auto":
		return s.Top.BoundaryLink(i) || cost.P2PTopoBatched(s.Top.Latency[i])
	}
	return false
}

// p2pLinkDuplex reports whether ring link i runs per-belt lanes.
func (s Spec) p2pLinkDuplex(i int) bool {
	switch s.P2PMode {
	case "duplex":
		return true
	case "auto":
		return !s.p2pLinkBatched(i)
	}
	return false
}

// validP2PMode reports whether the spec names a known P2P link model.
func (s Spec) validP2PMode() bool {
	switch s.P2PMode {
	case "", "frame", "batched", "duplex", "auto":
		return true
	}
	return false
}

// Build compiles the named strategy. Strategy names match the pipeline
// package's Strategy constants.
func Build(strategy string, spec Spec) ([]sim.Task, error) {
	spec.W = spec.W.WithDefaults()
	if spec.W.P != spec.Top.P {
		return nil, fmt.Errorf("schedule: workload P=%d but topology P=%d", spec.W.P, spec.Top.P)
	}
	if spec.W.L%spec.W.P != 0 {
		return nil, fmt.Errorf("schedule: %d layers not divisible by %d workers", spec.W.L, spec.W.P)
	}
	if spec.W.N%spec.W.P != 0 {
		return nil, fmt.Errorf("schedule: %d microbatches not divisible by %d workers", spec.W.N, spec.W.P)
	}
	if !spec.validP2PMode() {
		return nil, fmt.Errorf("schedule: unknown p2p mode %q (want frame, batched, duplex, or auto)", spec.P2PMode)
	}
	switch strategy {
	case "gpipe", "1f1b", "zb1", "zb2":
		return buildPP(strategy, spec)
	case "weipipe-naive":
		return buildWeiPipeNaive(spec)
	case "weipipe-interleave", "wzb1", "wzb2":
		return buildWeiPipe(strategy, spec)
	case "wzb2g":
		return buildWeiPipeGrouped(spec)
	case "fsdp":
		return buildFSDP(spec)
	case "dp":
		return buildDP(spec)
	case "tp":
		return buildTP(spec)
	case "sp":
		return buildSP(spec)
	default:
		return nil, fmt.Errorf("schedule: unknown strategy %q", strategy)
	}
}

// Traffic is the per-iteration point-to-point wire volume of a schedule,
// classified by link tier against the topology's group boundaries. It is
// the simulator-side counterpart of comm.Stats' measured intra/inter split.
type Traffic struct {
	// IntraBytes/IntraSends cover transfers that stay inside a topology
	// group: ring links within a group and the group-fabric ("x<g>")
	// transfers of the grouped belt.
	IntraBytes float64
	IntraSends int
	// InterBytes/InterSends cover transfers crossing a group boundary —
	// the slow links hierarchical clusters are gated by.
	InterBytes float64
	InterSends int
}

// BuildTraffic compiles the strategy like Build and additionally returns
// the schedule's link-tier traffic accounting. Collective-fabric time is
// not included (it carries no per-link byte attribution).
func BuildTraffic(strategy string, spec Spec) ([]sim.Task, Traffic, error) {
	tasks, err := Build(strategy, spec)
	if err != nil {
		return nil, Traffic{}, err
	}
	var tr Traffic
	for _, t := range tasks {
		if t.Bytes <= 0 || len(t.Resource) == 0 {
			continue
		}
		inter := false
		switch t.Resource[0] {
		case 'l', 'r':
			var link int
			if _, err := fmt.Sscanf(t.Resource[1:], "%d", &link); err != nil {
				continue
			}
			inter = spec.Top.BoundaryLink(link)
		case 'x':
			// group-fabric transfers are intra by construction
		default:
			continue
		}
		if inter {
			tr.InterBytes += t.Bytes
			if !t.Coalesced {
				tr.InterSends++
			}
		} else {
			tr.IntraBytes += t.Bytes
			if !t.Coalesced {
				tr.IntraSends++
			}
		}
	}
	return tasks, tr, nil
}

// builder accumulates tasks with per-worker program-order chaining.
type builder struct {
	tasks []sim.Task
	last  map[int]int   // last program-order compute task per worker
	prog  map[int][]int // per-worker compute ids in program order
	spec  Spec
}

func newBuilder(spec Spec) *builder {
	return &builder{last: make(map[int]int), prog: make(map[int][]int), spec: spec}
}

// raw appends a task without program-order chaining and returns its id.
func (b *builder) raw(res string, worker int, dur float64, kind, label string, deps []int) int {
	id := len(b.tasks)
	d := make([]int, len(deps))
	copy(d, deps)
	b.tasks = append(b.tasks, sim.Task{
		ID: id, Resource: res, Worker: worker, Dur: dur, Deps: d, Kind: kind, Label: label,
	})
	return id
}

// compute appends a compute task on worker w, chained after the worker's
// previous compute task.
func (b *builder) compute(w int, dur float64, kind, label string, deps ...int) int {
	if prev, ok := b.last[w]; ok {
		deps = append(deps, prev)
	}
	id := b.raw(fmt.Sprintf("w%d", w), w, dur, kind, label, deps)
	b.last[w] = id
	b.prog[w] = append(b.prog[w], id)
	return id
}

// successorOf returns the compute task following id in worker w's program
// order, or -1 if id is the worker's last op.
func (b *builder) successorOf(w, id int) int {
	prog := b.prog[w]
	for i, t := range prog {
		if t == id {
			if i+1 < len(prog) {
				return prog[i+1]
			}
			return -1
		}
	}
	return -1
}

// linkFwd appends a transfer on ring link from→from+1.
func (b *builder) linkFwd(from int, bytes float64, label string, deps ...int) int {
	dur := (bytes*b.spec.wireScale()/b.spec.Top.SendBW[from] + b.spec.Top.Latency[from]) * b.spec.linkScale()
	id := b.raw(fmt.Sprintf("l%d", from), -1, dur, "comm", label, deps)
	b.tasks[id].Bytes = bytes * b.spec.wireScale()
	return id
}

// linkPiggyback appends a transfer that rides a concurrent carrier
// transfer's burst envelope on ring link from→from+1 (the batched link
// model): it pays the link's bandwidth cost for its payload but no
// latency — the envelope's latency is charged to the carrier — and it
// opens no envelope of its own (Coalesced, skipped by send counting).
func (b *builder) linkPiggyback(from int, bytes float64, label string, deps ...int) int {
	dur := bytes * b.spec.wireScale() / b.spec.Top.SendBW[from] * b.spec.linkScale()
	id := b.raw(fmt.Sprintf("l%d", from), -1, dur, "comm", label, deps)
	b.tasks[id].Bytes = bytes * b.spec.wireScale()
	b.tasks[id].Coalesced = true
	return id
}

// linkLane appends a transfer on a dedicated lane of ring link
// from→from+1 (the duplex link model): resource "l<from><lane>" is its
// own engine at the link's full bandwidth, so belts on different lanes
// of one link never queue behind each other. BuildTraffic still
// classifies lane tasks by the link number (Sscanf stops at the lane
// letter).
func (b *builder) linkLane(from int, lane byte, bytes float64, label string, deps ...int) int {
	dur := (bytes*b.spec.wireScale()/b.spec.Top.SendBW[from] + b.spec.Top.Latency[from]) * b.spec.linkScale()
	id := b.raw(fmt.Sprintf("l%d%c", from, lane), -1, dur, "comm", label, deps)
	b.tasks[id].Bytes = bytes * b.spec.wireScale()
	return id
}

// linkRev appends a transfer on the reverse direction of ring link
// `link` (i.e. from link+1 down to link); full-duplex links give the
// reverse direction its own engine with the same bandwidth.
func (b *builder) linkRev(link int, bytes float64, label string, deps ...int) int {
	dur := (bytes*b.spec.wireScale()/b.spec.Top.SendBW[link] + b.spec.Top.Latency[link]) * b.spec.linkScale()
	id := b.raw(fmt.Sprintf("r%d", link), -1, dur, "comm", label, deps)
	b.tasks[id].Bytes = bytes * b.spec.wireScale()
	return id
}

// groupFabric appends a non-adjacent intra-group transfer (a grouped-belt
// injection or shard handoff inside group g): it occupies the group's
// fabric resource "x<g>" and is priced at the group's slowest intra link.
func (b *builder) groupFabric(g int, bytes float64, label string, deps ...int) int {
	bw, lat := b.spec.Top.GroupFabric(g)
	dur := (bytes*b.spec.wireScale()/bw + lat) * b.spec.linkScale()
	id := b.raw(fmt.Sprintf("x%d", g), -1, dur, "comm", label, deps)
	b.tasks[id].Bytes = bytes * b.spec.wireScale()
	return id
}

// fabric appends a collective occupying the shared fabric.
func (b *builder) fabric(dur float64, label string, deps ...int) int {
	return b.raw("fabric", -1, dur, "coll", label, deps)
}

// ---- per-stage / per-chunk durations ---------------------------------------

// stageTimes returns the F/B/W durations of worker r's stage (L/P layers,
// plus the LM head on the last stage; the embedding lookup is negligible).
func stageTimes(w cost.Workload, t cost.OpTimes, r int) (f, bp, wp float64) {
	lp := float64(w.L) / float64(w.P)
	f = lp * t.F
	bp = lp * t.B
	wp = lp * t.W
	if r == w.P-1 {
		f += t.HeadF
		bp += t.HeadB
		wp += t.HeadW
	}
	return
}

// chunkBytes returns the fp16 wire size of chunk c's weights (gradient
// chunks are the same size).
func chunkBytes(w cost.Workload, c int) float64 {
	lp := float64(w.L) / float64(w.P)
	bytes := lp * w.LayerWeightBytes()
	if c == 0 {
		bytes += w.EmbedParams() * 2
	}
	if c == w.P-1 {
		bytes += w.HeadParams() * 2
	}
	return bytes
}

// ---- activation-passing pipelines -------------------------------------------

func buildPP(strategy string, spec Spec) ([]sim.Task, error) {
	w := spec.W
	t := w.Times(spec.GPU)
	p := w.P
	n := w.N
	actBytes := w.ActBoundaryBytes()
	b := newBuilder(spec)

	// Pre-create compute ops in each rank's program order; cross-rank link
	// tasks are appended afterwards and wired by mutating Deps.
	type opRef struct{ f, bi, bw int } // forward, B pass, W pass task ids
	ops := make([][]opRef, p)
	for r := 0; r < p; r++ {
		ops[r] = make([]opRef, n)
		for m := range ops[r] {
			ops[r][m] = opRef{f: -1, bi: -1, bw: -1}
		}
	}

	for r := 0; r < p; r++ {
		fDur, bDur, wDur := stageTimes(w, t, r)
		emitF := func(m int) {
			ops[r][m].f = b.compute(r, fDur, "F", fmt.Sprintf("F%d@w%d", m, r))
		}
		emitB := func(m int) {
			ops[r][m].bi = b.compute(r, bDur, "B", fmt.Sprintf("B%d@w%d", m, r))
		}
		emitW := func(m int) {
			ops[r][m].bw = b.compute(r, wDur, "W", fmt.Sprintf("W%d@w%d", m, r))
		}
		warmup := p - 1 - r
		if warmup > n {
			warmup = n
		}
		switch strategy {
		case "gpipe":
			for m := 0; m < n; m++ {
				emitF(m)
			}
			for m := n - 1; m >= 0; m-- {
				emitB(m)
				emitW(m)
			}
		case "1f1b":
			for m := 0; m < warmup; m++ {
				emitF(m)
			}
			for m := warmup; m < n; m++ {
				emitF(m)
				emitB(m - warmup)
				emitW(m - warmup)
			}
			for m := n - warmup; m < n; m++ {
				emitB(m)
				emitW(m)
			}
		case "zb1", "zb2":
			var pending []int
			limit := warmup
			if strategy == "zb2" {
				limit = n + 1 // never drain early
			}
			if limit < 1 {
				limit = 1
			}
			for m := 0; m < warmup; m++ {
				emitF(m)
			}
			for m := warmup; m < n; m++ {
				emitF(m)
				emitB(m - warmup)
				pending = append(pending, m-warmup)
				if len(pending) > limit {
					emitW(pending[0])
					pending = pending[1:]
				}
			}
			for m := n - warmup; m < n; m++ {
				emitB(m)
				pending = append(pending, m)
			}
			for _, m := range pending {
				emitW(m)
			}
		}
	}

	// Activation transfers r→r+1: F at r+1 waits on the link task, which
	// waits on F at r. Megatron-style stage-boundary sends are blocking —
	// the sender's next compute op also waits for the transfer — which is
	// exactly the coupling WeiPipe's weight prefetching avoids.
	for r := 0; r < p-1; r++ {
		for m := 0; m < n; m++ {
			lt := b.linkFwd(r, actBytes, fmt.Sprintf("act%d@l%d", m, r), ops[r][m].f)
			b.tasks[ops[r+1][m].f].Deps = append(b.tasks[ops[r+1][m].f].Deps, lt)
			if succ := b.successorOf(r, ops[r][m].f); succ >= 0 {
				b.tasks[succ].Deps = append(b.tasks[succ].Deps, lt)
			}
		}
	}
	// Gradient transfers r+1→r (reverse direction of link r), also blocking
	// on the sender.
	for r := 0; r < p-1; r++ {
		for m := 0; m < n; m++ {
			lt := b.linkRev(r, actBytes, fmt.Sprintf("grad%d@r%d", m, r), ops[r+1][m].bi)
			b.tasks[ops[r][m].bi].Deps = append(b.tasks[ops[r][m].bi].Deps, lt)
			if succ := b.successorOf(r+1, ops[r+1][m].bi); succ >= 0 {
				b.tasks[succ].Deps = append(b.tasks[succ].Deps, lt)
			}
		}
	}
	return b.tasks, nil
}

// ---- WeiPipe-Naive (lockstep rotation) ---------------------------------------

// buildWeiPipeNaive models the paper's Figure-1 schedule faithfully: the
// two weight flows ride one shared belt rotation, each worker performs
// exactly one stage op per turn (a forward stage, or a fused backward
// stage taking ≈2× as long), and every turn ends with a global barrier —
// the rotation cannot advance past a busy worker. Both flows plus the
// gradient flow cross every link every turn whether or not they are used,
// which is the redundant transmission WeiPipe-Interleave eliminates. The
// bubble the paper attributes to Naive (forward workers idling while any
// worker is in its longer backward turn) emerges from the barriers.
func buildWeiPipeNaive(spec Spec) ([]sim.Task, error) {
	w := spec.W
	t := w.Times(spec.GPU)
	p := w.P
	rounds := w.N / p
	b := newBuilder(spec)

	chunkDur := func(c int, backward bool) float64 {
		lp := float64(w.L) / float64(p)
		d := lp * t.F
		if backward {
			d = lp * (t.B + t.W)
		}
		if c == p-1 {
			if backward {
				d += t.HeadB + t.HeadW
			} else {
				d += t.HeadF
			}
		}
		return d
	}

	totalTurns := 2*rounds*p + p - 1
	prevBarrier := -1
	maxBytes := chunkBytes(w, 0)
	if hb := chunkBytes(w, p-1); hb > maxBytes {
		maxBytes = hb
	}
	for turn := 0; turn < totalTurns; turn++ {
		var turnTasks []int
		for worker := 0; worker < p; worker++ {
			l := turn - worker // worker's local turn
			if l < 0 || l >= 2*rounds*p {
				continue
			}
			k := l / (2 * p)
			r := l % (2 * p)
			deps := []int{}
			if prevBarrier >= 0 {
				deps = append(deps, prevBarrier)
			}
			var id int
			if r < p {
				id = b.compute(worker, chunkDur(r, false), "F",
					fmt.Sprintf("F c%d k%d@w%d", r, k, worker), deps...)
			} else {
				c := 2*p - 1 - r
				id = b.compute(worker, chunkDur(c, true), "B",
					fmt.Sprintf("B+W c%d k%d@w%d", c, k, worker), deps...)
			}
			turnTasks = append(turnTasks, id)
		}
		// Both weight flows plus the gradient flow hop every link every
		// turn, used or not (Naive's redundant transmission).
		for link := 0; link < p; link++ {
			deps := []int{}
			if prevBarrier >= 0 {
				deps = append(deps, prevBarrier)
			}
			for flow := 0; flow < 3; flow++ {
				turnTasks = append(turnTasks,
					b.linkFwd(link, maxBytes, fmt.Sprintf("belt t%d l%d f%d", turn, link, flow), deps...))
			}
		}
		prevBarrier = b.raw("barrier", -1, 0, "coll", fmt.Sprintf("turn%d", turn), turnTasks)
	}
	return b.tasks, nil
}

// ---- WeiPipe (weight-passing) -------------------------------------------------

func buildWeiPipe(strategy string, spec Spec) ([]sim.Task, error) {
	w := spec.W
	t := w.Times(spec.GPU)
	p := w.P
	rounds := w.N / p
	uses := rounds * p
	b := newBuilder(spec)

	chunkF := make([]float64, p)
	chunkB := make([]float64, p)
	chunkW := make([]float64, p)
	lp := float64(w.L) / float64(p)
	for c := 0; c < p; c++ {
		chunkF[c] = lp * t.F
		chunkB[c] = lp * t.B
		chunkW[c] = lp * t.W
		if c == p-1 {
			chunkF[c] += t.HeadF
			chunkB[c] += t.HeadB
			chunkW[c] += t.HeadW
		}
	}

	// Compute ops per (chunk, use): fOp/bOp/wOp[c][use]. The worker of use
	// j is j mod p. Program order is emitted per worker below; link tasks
	// are wired afterwards.
	mk := func() [][]int {
		m := make([][]int, p)
		for c := range m {
			m[c] = make([]int, uses)
			for j := range m[c] {
				m[c][j] = -1
			}
		}
		return m
	}
	fOp, bOp, wOp := mk(), mk(), mk()

	for worker := 0; worker < p; worker++ {
		use := func(k int) int { return k*p + worker }
		emitF := func(k, c int) {
			fOp[c][use(k)] = b.compute(worker, chunkF[c], "F", fmt.Sprintf("F c%d k%d@w%d", c, k, worker))
		}
		emitB := func(k, c int) {
			bOp[c][use(k)] = b.compute(worker, chunkB[c], "B", fmt.Sprintf("B c%d k%d@w%d", c, k, worker))
		}
		emitW := func(k, c int) {
			wOp[c][use(k)] = b.compute(worker, chunkW[c], "W", fmt.Sprintf("W c%d k%d@w%d", c, k, worker))
		}
		switch strategy {
		case "weipipe-naive":
			for k := 0; k < rounds; k++ {
				for c := 0; c < p; c++ {
					emitF(k, c)
				}
				for c := p - 1; c >= 0; c-- {
					emitB(k, c)
					emitW(k, c)
				}
			}
		case "weipipe-interleave":
			for k := 0; k <= rounds; k++ {
				for step := 0; step < p; step++ {
					if k < rounds {
						emitF(k, step)
					}
					if k >= 1 {
						emitB(k-1, p-1-step)
						emitW(k-1, p-1-step)
					}
				}
			}
		case "wzb1":
			type pw struct{ k, c int }
			var queue []pw
			for k := 0; k <= rounds; k++ {
				for step := 0; step < p; step++ {
					if k < rounds {
						emitF(k, step)
					}
					if k >= 1 {
						c := p - 1 - step
						emitB(k-1, c)
						queue = append(queue, pw{k - 1, c})
						if len(queue) > 1 {
							q := queue[0]
							queue = queue[1:]
							emitW(q.k, q.c)
						}
					}
				}
			}
			for _, q := range queue {
				emitW(q.k, q.c)
			}
		case "wzb2":
			for k := 0; k <= rounds; k++ {
				for step := 0; step < p; step++ {
					if k < rounds {
						emitF(k, step)
					}
					if k >= 1 {
						emitB(k-1, p-1-step)
					}
				}
				if k >= 1 {
					for c := 0; c < p; c++ {
						emitW(k-1, c)
					}
				}
			}
		}
	}

	// Belt link tasks. Forward and backward weight belts hop j−1 → j with
	// store-and-forward relaying (with Overlap) or compute-gated relaying
	// (without). The D belt hop j−1 → j carries the accumulator and always
	// depends on the producer's W pass.
	//
	// Flow control: a worker holds at most beltBuffers in-flight chunks per
	// belt, so the hop delivering its n-th chunk of a belt waits for the
	// compute that consumed its (n−beltBuffers)-th — finite buffering is
	// what paces the ring.
	beltBuffers := spec.BeltBuffers
	if beltBuffers <= 0 {
		beltBuffers = 2
	}

	// consumption order per worker per belt: fwd belt in (k, c) order, bwd
	// belt in (k, P−1−c) order. earlierConsumer returns the compute op that
	// consumed the chunk `beltBuffers` arrivals earlier at worker wk, or -1.
	fwdEarlier := func(wk, k, c int) int {
		idx := k*p + c - beltBuffers
		if idx < 0 {
			return -1
		}
		return fOp[idx%p][(idx/p)*p+wk]
	}
	bwdEarlier := func(wk, k, c int) int {
		idx := k*p + (p - 1 - c) - beltBuffers
		if idx < 0 {
			return -1
		}
		return bOp[p-1-idx%p][(idx/p)*p+wk]
	}

	for c := 0; c < p; c++ {
		bytes := chunkBytes(w, c)
		var prevFLink, prevBLink = -1, -1
		for j := 1; j < uses; j++ {
			from := (j - 1) % p
			dst := j % p
			k := j / p
			fdeps := []int{}
			bdeps := []int{}
			if prevFLink >= 0 {
				fdeps = append(fdeps, prevFLink)
			}
			if prevBLink >= 0 {
				bdeps = append(bdeps, prevBLink)
			}
			if e := fwdEarlier(dst, k, c); e >= 0 {
				fdeps = append(fdeps, e)
			}
			if e := bwdEarlier(dst, k, c); e >= 0 {
				bdeps = append(bdeps, e)
			}
			if !spec.Overlap {
				fdeps = append(fdeps, fOp[c][j-1])
				bdeps = append(bdeps, bOp[c][j-1])
			}
			dBytes := bytes
			if spec.TerminalGradAllReduce {
				dBytes = 0 // ablation: no D belt; gradients all-reduced at the end
			}
			var fl, bl, dl int
			switch {
			case spec.p2pLinkBatched(from):
				// Batched: the forward hop is the tick's envelope carrier;
				// the same-tick backward and gradient frames ride it —
				// bandwidth cost only, no envelope of their own.
				fl = b.linkFwd(from, bytes, fmt.Sprintf("Wf c%d u%d", c, j), fdeps...)
				bl = b.linkPiggyback(from, bytes, fmt.Sprintf("Wb c%d u%d", c, j), bdeps...)
				dl = b.linkPiggyback(from, dBytes, fmt.Sprintf("D c%d u%d", c, j), wOp[c][j-1])
			case spec.p2pLinkDuplex(from):
				// Duplex: each belt gets its own lane on the link.
				fl = b.linkFwd(from, bytes, fmt.Sprintf("Wf c%d u%d", c, j), fdeps...)
				bl = b.linkLane(from, 'b', bytes, fmt.Sprintf("Wb c%d u%d", c, j), bdeps...)
				dl = b.linkLane(from, 'd', dBytes, fmt.Sprintf("D c%d u%d", c, j), wOp[c][j-1])
			default:
				fl = b.linkFwd(from, bytes, fmt.Sprintf("Wf c%d u%d", c, j), fdeps...)
				bl = b.linkFwd(from, bytes, fmt.Sprintf("Wb c%d u%d", c, j), bdeps...)
				dl = b.linkFwd(from, dBytes, fmt.Sprintf("D c%d u%d", c, j), wOp[c][j-1])
			}
			b.tasks[fOp[c][j]].Deps = append(b.tasks[fOp[c][j]].Deps, fl)
			b.tasks[bOp[c][j]].Deps = append(b.tasks[bOp[c][j]].Deps, bl)
			b.tasks[wOp[c][j]].Deps = append(b.tasks[wOp[c][j]].Deps, dl)
			prevFLink, prevBLink = fl, bl
		}
	}
	if spec.TerminalGradAllReduce {
		deps := make([]int, 0, p)
		for worker := 0; worker < p; worker++ {
			if id, ok := b.last[worker]; ok {
				deps = append(deps, id)
			}
		}
		b.fabric(spec.Top.RingAllReduceTime(w.TotalParams()*2*spec.wireScale()), "grad allreduce", deps...)
	}
	return b.tasks, nil
}

// ---- WeiPipe grouped belt (wzb2g) ------------------------------------------

// buildWeiPipeGrouped models the topology-aware grouped belt: the wzb2
// compute schedule, with weight-belt circulation confined to each topology
// group and a once-per-iteration deduplicated shard exchange between the
// groups' holders. Only the exchange crosses group boundaries — one copy of
// each chunk per boundary link per iteration, serving both weight belts and
// every round — while the flat belt would drag both belts across every
// boundary link every round. Intra-group injections (holder → group-first)
// are modelled honestly on the group fabric, including the round-0 injection
// the flat model treats as free.
func buildWeiPipeGrouped(spec Spec) ([]sim.Task, error) {
	w := spec.W
	p := w.P
	m := spec.Top.GroupSize()
	if m <= 1 || p%m != 0 {
		// Degenerate partition: the runtime falls back to the flat belt
		// (pipeline.normalizeGroupSize), so the model does too.
		return buildWeiPipe("wzb2", spec)
	}
	nG := p / m
	t := w.Times(spec.GPU)
	rounds := w.N / p
	uses := rounds * p
	b := newBuilder(spec)

	chunkF := make([]float64, p)
	chunkB := make([]float64, p)
	chunkW := make([]float64, p)
	lp := float64(w.L) / float64(p)
	for c := 0; c < p; c++ {
		chunkF[c] = lp * t.F
		chunkB[c] = lp * t.B
		chunkW[c] = lp * t.W
		if c == p-1 {
			chunkF[c] += t.HeadF
			chunkB[c] += t.HeadB
			chunkW[c] += t.HeadW
		}
	}

	mk := func() [][]int {
		g := make([][]int, p)
		for c := range g {
			g[c] = make([]int, uses)
			for j := range g[c] {
				g[c][j] = -1
			}
		}
		return g
	}
	fOp, bOp, wOp := mk(), mk(), mk()

	// Compute grid: identical to flat wzb2 — the grouped belt changes how
	// weights travel, never what each worker computes (bit-identity).
	for worker := 0; worker < p; worker++ {
		use := func(k int) int { return k*p + worker }
		for k := 0; k <= rounds; k++ {
			for step := 0; step < p; step++ {
				if k < rounds {
					c := step
					fOp[c][use(k)] = b.compute(worker, chunkF[c], "F", fmt.Sprintf("F c%d k%d@w%d", c, k, worker))
				}
				if k >= 1 {
					c := p - 1 - step
					bOp[c][use(k-1)] = b.compute(worker, chunkB[c], "B", fmt.Sprintf("B c%d k%d@w%d", c, k-1, worker))
				}
			}
			if k >= 1 {
				for c := 0; c < p; c++ {
					wOp[c][use(k-1)] = b.compute(worker, chunkW[c], "W", fmt.Sprintf("W c%d k%d@w%d", c, k-1, worker))
				}
			}
		}
	}

	owner := func(c int) int { return (c - 1 + p) % p }
	holderIn := func(g, c int) int { return g*m + c%m }

	// Shard exchange: the owner's fresh copy of chunk c reaches its own
	// group's holder (group-fabric hop, unless the owner holds it itself),
	// then store-and-forwards around the holder ring, one boundary-link hop
	// per group. arrive[g][c] is the task after which chunk c is cached in
	// group g (-1: cached with no wire hop).
	arrive := make([][]int, nG)
	for g := range arrive {
		arrive[g] = make([]int, p)
		for c := range arrive[g] {
			arrive[g][c] = -1
		}
	}
	for c := 0; c < p; c++ {
		bytes := chunkBytes(w, c)
		og := owner(c) / m
		prev := -1
		if holderIn(og, c) != owner(c) {
			prev = b.groupFabric(og, bytes, fmt.Sprintf("xchg c%d hop0", c))
			arrive[og][c] = prev
		}
		for s := 1; s < nG; s++ {
			fromG := (og + s - 1) % nG
			toG := (og + s) % nG
			deps := []int{}
			if prev >= 0 {
				deps = append(deps, prev)
			}
			prev = b.linkFwd((fromG+1)*m-1, bytes, fmt.Sprintf("xchg c%d g%d", c, toG), deps...)
			arrive[toG][c] = prev
		}
	}

	// Flow control, as in the flat belt: a worker holds at most beltBuffers
	// in-flight chunks per belt.
	beltBuffers := spec.BeltBuffers
	if beltBuffers <= 0 {
		beltBuffers = 2
	}
	fwdEarlier := func(wk, k, c int) int {
		idx := k*p + c - beltBuffers
		if idx < 0 {
			return -1
		}
		return fOp[idx%p][(idx/p)*p+wk]
	}
	bwdEarlier := func(wk, k, c int) int {
		idx := k*p + (p - 1 - c) - beltBuffers
		if idx < 0 {
			return -1
		}
		return bOp[p-1-idx%p][(idx/p)*p+wk]
	}

	// Weight-belt wiring. Within a group the chunk hops rank-adjacent links
	// exactly like the flat belt; at each group-first rank the chunk is
	// (re-)injected from the group's holder cache over the group fabric,
	// paced by the holder's own consumption one round earlier. The group-last
	// rank never forwards — weight belts never touch a boundary link.
	wireBelt := func(op [][]int, name string, earlier func(wk, k, c int) int, emit func(link int, bytes float64, label string, deps []int) int) {
		for c := 0; c < p; c++ {
			bytes := chunkBytes(w, c)
			prevLink := -1 // segment-local store-and-forward chain
			for j := 0; j < uses; j++ {
				dst := j % p
				k := j / p
				if dst%m == 0 {
					g := dst / m
					hold := holderIn(g, c)
					if hold == dst {
						// Self-held chunk: a local cache copy, no wire task.
						if a := arrive[g][c]; a >= 0 {
							b.tasks[op[c][j]].Deps = append(b.tasks[op[c][j]].Deps, a)
						}
						prevLink = -1
						continue
					}
					deps := []int{}
					if a := arrive[g][c]; a >= 0 {
						deps = append(deps, a)
					}
					if k >= 1 {
						deps = append(deps, op[c][(k-1)*p+hold])
					}
					if e := earlier(dst, k, c); e >= 0 {
						deps = append(deps, e)
					}
					inj := b.groupFabric(g, bytes, fmt.Sprintf("%s c%d u%d inj", name, c, j), deps...)
					b.tasks[op[c][j]].Deps = append(b.tasks[op[c][j]].Deps, inj)
					prevLink = inj
					continue
				}
				deps := []int{}
				if prevLink >= 0 {
					deps = append(deps, prevLink)
				} else if a := arrive[dst/m][c]; a >= 0 {
					// The segment started at a self-held group-first rank:
					// its first forward still needs the shard to be cached.
					deps = append(deps, a)
				}
				if e := earlier(dst, k, c); e >= 0 {
					deps = append(deps, e)
				}
				if !spec.Overlap {
					deps = append(deps, op[c][j-1])
				}
				lt := emit(dst-1, bytes, fmt.Sprintf("%s c%d u%d", name, c, j), deps)
				b.tasks[op[c][j]].Deps = append(b.tasks[op[c][j]].Deps, lt)
				prevLink = lt
			}
		}
	}
	// Belt packaging per link mode: the forward belt always opens the
	// envelope (carrier, pays latency); on a batched link the backward
	// belt's same-tick frame rides it (bandwidth only, no envelope of its
	// own), and on a duplex link it moves to the 'b' lane. Group-fabric
	// injections are per belt in every mode — bursts are a ring-link
	// packaging, and the grouped exchange already deduplicated the
	// boundary traffic.
	emitFwd := func(link int, bytes float64, label string, deps []int) int {
		return b.linkFwd(link, bytes, label, deps...)
	}
	emitWb := func(link int, bytes float64, label string, deps []int) int {
		switch {
		case spec.p2pLinkBatched(link):
			return b.linkPiggyback(link, bytes, label, deps...)
		case spec.p2pLinkDuplex(link):
			return b.linkLane(link, 'b', bytes, label, deps...)
		}
		return b.linkFwd(link, bytes, label, deps...)
	}
	wireBelt(fOp, "Wf", fwdEarlier, emitFwd)
	wireBelt(bOp, "Wb", bwdEarlier, emitWb)

	// The D belt is untouched by grouping: in-transit gradient accumulation
	// is a strict left-fold around the full ring (bit-identity requires the
	// flat order), so it hops every link exactly as in wzb2. Packaging
	// still applies per link: weight belts never cross group boundaries,
	// so on a batched boundary link the use's first gradient frame is the
	// flush's own envelope carrier and the remaining chunks ride it; a
	// duplex link moves the belt to the 'd' lane.
	for c := 0; c < p; c++ {
		dBytes := chunkBytes(w, c)
		if spec.TerminalGradAllReduce {
			dBytes = 0
		}
		for j := 1; j < uses; j++ {
			link := (j - 1) % p
			var dl int
			switch {
			case c > 0 && spec.p2pLinkBatched(link):
				dl = b.linkPiggyback(link, dBytes, fmt.Sprintf("D c%d u%d", c, j), wOp[c][j-1])
			case spec.p2pLinkDuplex(link):
				dl = b.linkLane(link, 'd', dBytes, fmt.Sprintf("D c%d u%d", c, j), wOp[c][j-1])
			default:
				dl = b.linkFwd(link, dBytes, fmt.Sprintf("D c%d u%d", c, j), wOp[c][j-1])
			}
			b.tasks[wOp[c][j]].Deps = append(b.tasks[wOp[c][j]].Deps, dl)
		}
	}
	if spec.TerminalGradAllReduce {
		deps := make([]int, 0, p)
		for worker := 0; worker < p; worker++ {
			if id, ok := b.last[worker]; ok {
				deps = append(deps, id)
			}
		}
		b.fabric(spec.Top.RingAllReduceTime(w.TotalParams()*2*spec.wireScale()), "grad allreduce", deps...)
	}
	return b.tasks, nil
}

// ---- FSDP -----------------------------------------------------------------

// buildFSDP simulates one representative data-parallel rank plus the shared
// collective fabric; all ranks are symmetric, so the representative's
// makespan is the iteration time.
func buildFSDP(spec Spec) ([]sim.Task, error) {
	w := spec.W
	t := w.Times(spec.GPU)
	top := spec.Top
	nLocal := w.N / w.P
	b := newBuilder(spec)

	// modules: embed, L layers, head
	nMods := w.L + 2
	modBytes := func(i int) float64 {
		switch i {
		case 0:
			return w.EmbedParams() * 2
		case nMods - 1:
			return w.HeadParams() * 2
		default:
			return w.LayerWeightBytes()
		}
	}
	modF := func(i int) float64 {
		switch i {
		case 0:
			return 0
		case nMods - 1:
			return t.HeadF
		default:
			return t.F
		}
	}
	modBW := func(i int) float64 {
		switch i {
		case 0:
			return 0
		case nMods - 1:
			return t.HeadB + t.HeadW
		default:
			return t.B + t.W
		}
	}

	// ZeRO-3 gathers sit on the critical path: with the small per-GPU
	// microbatches of the paper's configurations, DeepSpeed's prefetch
	// cannot hide the gathers behind compute, so each module's all-gather
	// blocks the compute that needs it and is itself gated on the previous
	// compute — the collective-communication dependence the paper contrasts
	// with WeiPipe's fully-prefetchable P2P belts.
	for m := 0; m < nLocal; m++ {
		fwdCompute := make([]int, nMods)
		for i := 0; i < nMods; i++ {
			deps := []int{}
			if prev, ok := b.last[0]; ok {
				deps = append(deps, prev)
			}
			g := b.fabric(top.RingAllGatherTime(modBytes(i)), fmt.Sprintf("ag m%d mod%d", m, i), deps...)
			fwdCompute[i] = b.compute(0, modF(i), "F", fmt.Sprintf("F m%d mod%d", m, i), g)
		}
		bwdCompute := make([]int, nMods)
		for i := nMods - 1; i >= 0; i-- {
			deps := []int{}
			if prev, ok := b.last[0]; ok {
				deps = append(deps, prev)
			}
			g := b.fabric(top.RingAllGatherTime(modBytes(i)), fmt.Sprintf("ag-b m%d mod%d", m, i), deps...)
			bwdCompute[i] = b.compute(0, modBW(i), "B", fmt.Sprintf("BW m%d mod%d", m, i), g)
		}
		if m == nLocal-1 {
			// reduce-scatter each module's gradient, overlapped with the
			// remaining backward via the fabric.
			for i := nMods - 1; i >= 0; i-- {
				b.fabric(top.RingAllGatherTime(modBytes(i)), fmt.Sprintf("rs mod%d", i), bwdCompute[i])
			}
		}
	}
	return b.tasks, nil
}

// ---- DP --------------------------------------------------------------------

// buildDP simulates one representative data-parallel rank: full local
// compute per microbatch, with per-layer gradient all-reduces overlapped
// after the last microbatch's W passes (bucketed DDP style).
func buildDP(spec Spec) ([]sim.Task, error) {
	w := spec.W
	t := w.Times(spec.GPU)
	top := spec.Top
	nLocal := w.N / w.P
	b := newBuilder(spec)

	for m := 0; m < nLocal; m++ {
		b.compute(0, float64(w.L)*t.F+t.HeadF, "F", fmt.Sprintf("F m%d", m))
		last := m == nLocal-1
		if !last {
			b.compute(0, float64(w.L)*(t.B+t.W)+t.HeadB+t.HeadW, "B", fmt.Sprintf("BW m%d", m))
			continue
		}
		// last microbatch: backward layer by layer so all-reduces overlap
		bw := b.compute(0, t.HeadB+t.HeadW, "B", "BW head")
		b.fabric(top.RingAllReduceTime(w.HeadParams()*2), "ar head", bw)
		for l := w.L - 1; l >= 0; l-- {
			bw = b.compute(0, t.B+t.W, "B", fmt.Sprintf("BW l%d", l))
			b.fabric(top.RingAllReduceTime(w.LayerWeightBytes()), fmt.Sprintf("ar l%d", l), bw)
		}
		b.fabric(top.RingAllReduceTime(w.EmbedParams()*2), "ar embed", bw)
	}
	return b.tasks, nil
}

// ---- Tensor parallelism -----------------------------------------------------

// buildTP simulates one representative rank of a Megatron-style TP group
// (all ranks are symmetric): each layer's compute is 1/P of the full layer,
// but every layer requires two activation-sized ring all-reduces in the
// forward and two in the backward — all blocking, since they sit in the
// middle of the layer. This is the bandwidth hunger the paper contrasts
// WeiPipe's fixed-size weight traffic against.
func buildTP(spec Spec) ([]sim.Task, error) {
	w := spec.W
	t := w.Times(spec.GPU)
	top := spec.Top
	p := float64(w.P)
	b := newBuilder(spec)
	actBytes := w.ActBoundaryBytes() * spec.wireScale()

	coll := func(label string) {
		deps := []int{}
		if prev, ok := b.last[0]; ok {
			deps = append(deps, prev)
		}
		g := b.fabric(top.RingAllReduceTime(actBytes), label, deps...)
		// blocking: thread the collective into program order
		b.compute(0, 0, "F", label+" sync", g)
	}

	for m := 0; m < w.N; m++ {
		for l := 0; l < w.L; l++ {
			b.compute(0, t.F/p/2, "F", fmt.Sprintf("F attn m%d l%d", m, l))
			coll(fmt.Sprintf("ar-f1 m%d l%d", m, l))
			b.compute(0, t.F/p/2, "F", fmt.Sprintf("F ffn m%d l%d", m, l))
			coll(fmt.Sprintf("ar-f2 m%d l%d", m, l))
		}
		b.compute(0, t.HeadF, "F", fmt.Sprintf("F head m%d", m))
		b.compute(0, t.HeadB+t.HeadW, "B", fmt.Sprintf("BW head m%d", m))
		for l := w.L - 1; l >= 0; l-- {
			b.compute(0, (t.B+t.W)/p/2, "B", fmt.Sprintf("BW ffn m%d l%d", m, l))
			coll(fmt.Sprintf("ar-b1 m%d l%d", m, l))
			b.compute(0, (t.B+t.W)/p/2, "B", fmt.Sprintf("BW attn m%d l%d", m, l))
			coll(fmt.Sprintf("ar-b2 m%d l%d", m, l))
		}
	}
	return b.tasks, nil
}

// ---- Sequence parallelism ----------------------------------------------------

// buildSP simulates one representative rank of a sequence-parallel group
// (allgather-KV variant): compute splits 1/P along the sequence, but every
// layer all-gathers keys and values forward and reduce-scatters their
// gradients backward — activation-sized collectives on the critical path,
// plus a DP-style replicated-weight gradient all-reduce per iteration.
func buildSP(spec Spec) ([]sim.Task, error) {
	w := spec.W
	t := w.Times(spec.GPU)
	top := spec.Top
	p := float64(w.P)
	b := newBuilder(spec)
	kvBytes := w.ActBoundaryBytes() * spec.wireScale() // one of K or V, full sequence

	coll := func(label string, bytes float64) {
		deps := []int{}
		if prev, ok := b.last[0]; ok {
			deps = append(deps, prev)
		}
		g := b.fabric(top.RingAllGatherTime(bytes), label, deps...)
		b.compute(0, 0, "F", label+" sync", g)
	}

	for m := 0; m < w.N; m++ {
		for l := 0; l < w.L; l++ {
			coll(fmt.Sprintf("ag-kv m%d l%d", m, l), 2*kvBytes)
			b.compute(0, t.F/p, "F", fmt.Sprintf("F m%d l%d", m, l))
		}
		b.compute(0, t.HeadF/p, "F", fmt.Sprintf("F head m%d", m))
		b.compute(0, (t.HeadB+t.HeadW)/p, "B", fmt.Sprintf("BW head m%d", m))
		for l := w.L - 1; l >= 0; l-- {
			b.compute(0, (t.B+t.W)/p, "B", fmt.Sprintf("BW m%d l%d", m, l))
			coll(fmt.Sprintf("rs-kv m%d l%d", m, l), 2*kvBytes)
		}
	}
	// replicated-weight gradient all-reduce
	deps := []int{}
	if prev, ok := b.last[0]; ok {
		deps = append(deps, prev)
	}
	b.fabric(top.RingAllReduceTime(w.TotalParams()*2*spec.wireScale()), "grad allreduce", deps...)
	return b.tasks, nil
}
