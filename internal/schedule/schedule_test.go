package schedule

import (
	"testing"

	"weipipe/internal/cluster"
	"weipipe/internal/cost"
	"weipipe/internal/sim"
)

var allStrategies = []string{
	"gpipe", "1f1b", "zb1", "zb2",
	"weipipe-naive", "weipipe-interleave", "wzb1", "wzb2", "wzb2g",
	"fsdp", "dp",
}

func runStrategy(t *testing.T, strategy string, w cost.Workload, top cluster.Topology) *sim.Result {
	t.Helper()
	spec := Spec{W: w, GPU: cluster.A800(), Top: top, Overlap: true}
	tasks, err := Build(strategy, spec)
	if err != nil {
		t.Fatalf("%s build: %v", strategy, err)
	}
	res, err := sim.Run(tasks)
	if err != nil {
		t.Fatalf("%s run: %v", strategy, err)
	}
	return res
}

// throughput in tokens/second/GPU.
func tput(w cost.Workload, res *sim.Result) float64 {
	return w.Tokens() / (res.Makespan * float64(w.P))
}

func smallWorkload(p int) cost.Workload {
	return cost.Workload{H: 1024, S: 4096, G: 4, L: 2 * p, N: 4 * p, P: p, Recompute: true}.WithDefaults()
}

func TestAllStrategiesBuildAndRun(t *testing.T) {
	for _, p := range []int{2, 4} {
		w := smallWorkload(p)
		top := cluster.NVLinkSingle(p)
		for _, s := range allStrategies {
			wl := w
			if s == "zb1" || s == "zb2" {
				wl.Recompute = false
			}
			res := runStrategy(t, s, wl, top)
			if res.Makespan <= 0 {
				t.Errorf("%s p=%d: makespan %v", s, p, res.Makespan)
			}
			if br := res.BubbleRatio(); br < 0 || br >= 1 {
				t.Errorf("%s p=%d: bubble %v", s, p, br)
			}
		}
	}
}

func TestComputeLowerBound(t *testing.T) {
	// No schedule can beat the serial compute of its own critical path:
	// makespan ≥ per-worker compute (F+B+W for all its microbatch-stages).
	p := 4
	w := smallWorkload(p)
	top := cluster.NVLinkSingle(p)
	tms := w.Times(cluster.A800())
	lp := float64(w.L) / float64(p)
	perWorker := float64(w.N) * lp * (tms.F + tms.B + tms.W) // stage work for N mbs
	for _, s := range []string{"1f1b", "gpipe", "weipipe-interleave", "weipipe-naive"} {
		res := runStrategy(t, s, w, top)
		if res.Makespan < perWorker {
			t.Errorf("%s makespan %v below compute bound %v", s, res.Makespan, perWorker)
		}
	}
}

func TestWeiPipeWinsLongContextEthernet(t *testing.T) {
	// The headline claim: with long context (large G·S/H) on an
	// Ethernet-constrained ring, WeiPipe-Interleave out-throughputs 1F1B
	// and FSDP.
	p := 8
	w := cost.Workload{H: 2048, S: 16384, G: 4, L: 32, N: 32, P: p, Recompute: true}.WithDefaults()
	top := cluster.NVLinkEthernet(p, 4)

	wp := tput(w, runStrategy(t, "weipipe-interleave", w, top))
	f1b := tput(w, runStrategy(t, "1f1b", w, top))
	fsdp := tput(w, runStrategy(t, "fsdp", w, top))

	if wp <= f1b {
		t.Errorf("weipipe %v ≤ 1f1b %v on ethernet long-context", wp, f1b)
	}
	if wp <= fsdp {
		t.Errorf("weipipe %v ≤ fsdp %v on ethernet long-context", wp, fsdp)
	}
	// paper reports ~30–80% gains; require at least 15% here
	if wp < 1.15*maxf(f1b, fsdp) {
		t.Errorf("weipipe advantage too small: wp=%v 1f1b=%v fsdp=%v", wp, f1b, fsdp)
	}
}

func TestShortContextNVLinkCanFavorBaselines(t *testing.T) {
	// Table 4's honest negative result: small model / short activations on
	// pure NVLink lets the zero-bubble baselines catch up or win.
	p := 8
	w := cost.Workload{H: 4096, S: 512, G: 1, L: 16, N: 32, P: p, Recompute: false}.WithDefaults()
	top := cluster.NVLinkSingle(p)
	wp := tput(w, runStrategy(t, "weipipe-interleave", w, top))
	zb2 := tput(w, runStrategy(t, "zb2", w, top))
	if zb2 < wp*0.9 {
		t.Errorf("expected zb2 (%v) competitive with weipipe (%v) at short context on NVLink", zb2, wp)
	}
}

func TestInterleaveBeatsNaive(t *testing.T) {
	p := 4
	w := smallWorkload(p)
	top := cluster.NVLinkSingle(p)
	inter := runStrategy(t, "weipipe-interleave", w, top)
	naive := runStrategy(t, "weipipe-naive", w, top)
	if inter.Makespan >= naive.Makespan {
		t.Errorf("interleave %v not faster than naive %v", inter.Makespan, naive.Makespan)
	}
	if inter.BubbleRatio() >= naive.BubbleRatio() {
		t.Errorf("interleave bubble %v not below naive %v", inter.BubbleRatio(), naive.BubbleRatio())
	}
}

func TestZeroBubbleReducesBubble(t *testing.T) {
	p := 4
	w := smallWorkload(p)
	w.Recompute = false
	top := cluster.NVLinkSingle(p)
	f1b := runStrategy(t, "1f1b", w, top)
	zb2 := runStrategy(t, "zb2", w, top)
	if zb2.BubbleRatio() >= f1b.BubbleRatio() {
		t.Errorf("zb2 bubble %v not below 1f1b %v", zb2.BubbleRatio(), f1b.BubbleRatio())
	}
}

func TestOverlapAblation(t *testing.T) {
	// Disabling communication/computation overlap must not speed WeiPipe up.
	p := 4
	w := cost.Workload{H: 2048, S: 8192, G: 4, L: 8, N: 16, P: p, Recompute: true}.WithDefaults()
	top := cluster.NVLinkEthernet(p, 2)
	spec := Spec{W: w, GPU: cluster.A800(), Top: top, Overlap: true}
	on, err := Build("weipipe-interleave", spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Overlap = false
	off, err := Build("weipipe-interleave", spec)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := sim.Run(on)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := sim.Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.Makespan > rOff.Makespan+1e-9 {
		t.Errorf("overlap on (%v) slower than off (%v)", rOn.Makespan, rOff.Makespan)
	}
}

func TestBuildValidation(t *testing.T) {
	w := smallWorkload(4)
	if _, err := Build("nope", Spec{W: w, GPU: cluster.A800(), Top: cluster.NVLinkSingle(4)}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := Build("1f1b", Spec{W: w, GPU: cluster.A800(), Top: cluster.NVLinkSingle(8)}); err == nil {
		t.Fatal("P mismatch accepted")
	}
	bad := w
	bad.N = 7
	if _, err := Build("1f1b", Spec{W: bad, GPU: cluster.A800(), Top: cluster.NVLinkSingle(4)}); err == nil {
		t.Fatal("indivisible N accepted")
	}
}

func TestWeiPipeCommVolumeIndependentOfSeqLen(t *testing.T) {
	// Doubling S (halving G to keep tokens fixed) must leave WeiPipe's wire
	// bytes unchanged while 1F1B's activation messages stay as big (G·S
	// fixed here, so compare against G·S growth instead): directly assert
	// chunk bytes don't depend on S or G.
	a := cost.Workload{H: 1024, S: 4096, G: 16, L: 8, N: 8, P: 4}.WithDefaults()
	b := cost.Workload{H: 1024, S: 16384, G: 64, L: 8, N: 8, P: 4}.WithDefaults()
	if chunkBytes(a, 1) != chunkBytes(b, 1) {
		t.Fatal("chunk bytes must not depend on S or G")
	}
	if a.ActBoundaryBytes() >= b.ActBoundaryBytes() {
		t.Fatal("activation bytes must grow with G·S")
	}
}

func TestGroupedScheduleBuildsOnGroupedTopologies(t *testing.T) {
	// wzb2g must be legal (no deadlock) on hierarchical rings at several
	// scales and with overlap on and off.
	for _, p := range []int{4, 8, 16} {
		w := smallWorkload(p)
		for _, overlap := range []bool{true, false} {
			spec := Spec{W: w, GPU: cluster.A800(), Top: cluster.NVLinkEthernet(p, p/2), Overlap: overlap}
			tasks, err := Build("wzb2g", spec)
			if err != nil {
				t.Fatalf("p=%d overlap=%v build: %v", p, overlap, err)
			}
			if _, err := sim.Run(tasks); err != nil {
				t.Fatalf("p=%d overlap=%v run: %v", p, overlap, err)
			}
		}
	}
}

func TestGroupedScheduleCutsInterGroupTraffic(t *testing.T) {
	// The tentpole claim in the simulator: on hierarchical topologies the
	// grouped belt moves strictly fewer bytes across group boundaries than
	// the flat belt, and no worse than TawPipe's headline direction — the
	// slow links stop carrying both weight belts every round.
	for _, tc := range []struct {
		top cluster.Topology
	}{
		{cluster.NVLinkEthernet(16, 4)},
		{cluster.PCIeEthernet(16, 4)},
		{cluster.NVLinkEthernet(32, 8)},
	} {
		p := tc.top.P
		w := smallWorkload(p)
		spec := Spec{W: w, GPU: cluster.A800(), Top: tc.top, Overlap: true}
		flatTasks, flat, err := BuildTraffic("wzb2", spec)
		if err != nil {
			t.Fatal(err)
		}
		groupedTasks, grouped, err := BuildTraffic("wzb2g", spec)
		if err != nil {
			t.Fatal(err)
		}
		if grouped.InterBytes >= flat.InterBytes {
			t.Errorf("%s: grouped inter bytes %.3g not below flat %.3g",
				tc.top.Name, grouped.InterBytes, flat.InterBytes)
		}
		if grouped.InterSends >= flat.InterSends {
			t.Errorf("%s: grouped inter sends %d not below flat %d",
				tc.top.Name, grouped.InterSends, flat.InterSends)
		}
		// Ethernet is the bottleneck: less boundary traffic must not model
		// slower end-to-end.
		rFlat, err := sim.Run(flatTasks)
		if err != nil {
			t.Fatal(err)
		}
		rGrouped, err := sim.Run(groupedTasks)
		if err != nil {
			t.Fatal(err)
		}
		if rGrouped.Makespan > rFlat.Makespan+1e-9 {
			t.Errorf("%s: grouped makespan %v above flat %v",
				tc.top.Name, rGrouped.Makespan, rFlat.Makespan)
		}
	}
}

func TestTrafficClassificationFlat(t *testing.T) {
	// On a uniform ring everything is one group: flat wzb2 traffic must be
	// all-intra; on a two-group ring the D belt and both weight belts cross
	// the boundary links.
	p := 8
	w := smallWorkload(p)
	_, uni, err := BuildTraffic("wzb2", Spec{W: w, GPU: cluster.A800(), Top: cluster.NVLinkSingle(p)})
	if err != nil {
		t.Fatal(err)
	}
	if uni.InterBytes != 0 || uni.InterSends != 0 {
		t.Errorf("uniform ring classified inter traffic: %+v", uni)
	}
	if uni.IntraBytes <= 0 {
		t.Errorf("uniform ring recorded no traffic: %+v", uni)
	}
	_, two, err := BuildTraffic("wzb2", Spec{W: w, GPU: cluster.A800(), Top: cluster.NVLinkEthernet(p, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if two.InterBytes <= 0 || two.InterSends <= 0 {
		t.Errorf("grouped ring recorded no inter traffic for flat belt: %+v", two)
	}
	// Same schedule, same totals — only the classification moves.
	if got, want := two.IntraBytes+two.InterBytes, uni.IntraBytes; !closeEnough(got, want) {
		t.Errorf("total traffic changed with topology: %v vs %v", got, want)
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(a+b)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestTPAndSPSchedulesBuildAndRun(t *testing.T) {
	w := cost.Workload{H: 1024, S: 4096, G: 4, L: 8, N: 8, P: 4, Recompute: true}.WithDefaults()
	for _, topo := range []cluster.Topology{cluster.NVLinkSingle(4), cluster.NVLinkEthernet(4, 2)} {
		tp := runStrategy(t, "tp", w, topo)
		sp := runStrategy(t, "sp", w, topo)
		if tp.Makespan <= 0 || sp.Makespan <= 0 {
			t.Fatalf("%s: zero makespan", topo.Name)
		}
	}
	// Both collapse on Ethernet relative to NVLink, far more than WeiPipe.
	nvl := cluster.NVLinkSingle(4)
	eth := cluster.NVLinkEthernet(4, 2)
	ratio := func(s string) float64 {
		return runStrategy(t, s, w, eth).Makespan / runStrategy(t, s, w, nvl).Makespan
	}
	if ratio("tp") < 3 || ratio("sp") < 3 {
		t.Errorf("tp/sp slowdown on ethernet too small: %f %f", ratio("tp"), ratio("sp"))
	}
	// WeiPipe also slows at this small compute (its belts outweigh the tiny
	// per-turn FLOPs), but far less than the activation-collective schemes.
	wr := ratio("weipipe-interleave")
	if wr >= ratio("tp") || wr >= ratio("sp") {
		t.Errorf("weipipe slowdown %f not below tp %f / sp %f", wr, ratio("tp"), ratio("sp"))
	}
}
