package schedule

import (
	"fmt"
	"strings"
	"testing"

	"weipipe/internal/cluster"
	"weipipe/internal/sim"
)

// The simulator's P2P link models mirror the runtime transport's modes:
// frame must compile to the exact seed schedule, batched must cut envelope
// sends without touching bytes or dependencies (so modelled time never
// regresses), duplex must split belts onto per-link lanes that the traffic
// accounting still classifies by link, and auto must mix the two by
// topology tier.

// p2pSpec builds a spec for the given strategy scale, topology, and mode.
func p2pSpec(p int, top cluster.Topology, mode string) Spec {
	w := smallWorkload(p)
	return Spec{W: w, GPU: cluster.A800(), Top: top, Overlap: true, P2PMode: mode}
}

// taskFingerprint renders the structural identity of a task list.
func taskFingerprint(tasks []sim.Task) []string {
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = fmt.Sprintf("%s|%d|%.9g|%s|%s|%.9g|%v|%v", t.Resource, t.Worker, t.Dur, t.Kind, t.Label, t.Bytes, t.Coalesced, t.Deps)
	}
	return out
}

// TestP2PModeFrameIsByteIdenticalToDefault: naming the frame mode must
// compile through the exact same code path as the seed's empty-mode spec —
// task for task, dependency for dependency.
func TestP2PModeFrameIsByteIdenticalToDefault(t *testing.T) {
	cases := []struct {
		strategy string
		top      cluster.Topology
	}{
		{"wzb2", cluster.NVLinkSingle(8)},
		{"wzb2g", cluster.NVLinkEthernet(8, 4)},
	}
	for _, tc := range cases {
		seed, err := Build(tc.strategy, p2pSpec(8, tc.top, ""))
		if err != nil {
			t.Fatalf("%s seed: %v", tc.strategy, err)
		}
		framed, err := Build(tc.strategy, p2pSpec(8, tc.top, "frame"))
		if err != nil {
			t.Fatalf("%s frame: %v", tc.strategy, err)
		}
		a, b := taskFingerprint(seed), taskFingerprint(framed)
		if len(a) != len(b) {
			t.Fatalf("%s: frame mode changed task count: %d vs %d", tc.strategy, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s task %d diverged:\n  seed:  %s\n  frame: %s", tc.strategy, i, a[i], b[i])
			}
		}
	}
}

// TestP2PModeBatchedCutsSendsKeepsBytes: the batched link model must emit
// strictly fewer envelope sends for identical bytes, and — because rider
// dependencies are untouched — never a longer makespan.
func TestP2PModeBatchedCutsSendsKeepsBytes(t *testing.T) {
	for _, tc := range []struct {
		strategy string
		top      cluster.Topology
	}{
		{"wzb2", cluster.NVLinkEthernet(8, 4)},
		{"wzb2g", cluster.NVLinkEthernet(8, 4)},
	} {
		frameTasks, frame, err := BuildTraffic(tc.strategy, p2pSpec(8, tc.top, "frame"))
		if err != nil {
			t.Fatal(err)
		}
		batchedTasks, batched, err := BuildTraffic(tc.strategy, p2pSpec(8, tc.top, "batched"))
		if err != nil {
			t.Fatal(err)
		}
		fSends, bSends := frame.InterSends+frame.IntraSends, batched.InterSends+batched.IntraSends
		if bSends >= fSends {
			t.Errorf("%s: batched sends %d not below frame %d", tc.strategy, bSends, fSends)
		}
		if frame.InterBytes+frame.IntraBytes != batched.InterBytes+batched.IntraBytes {
			t.Errorf("%s: batched changed wire bytes: %.0f vs %.0f", tc.strategy,
				batched.InterBytes+batched.IntraBytes, frame.InterBytes+frame.IntraBytes)
		}
		coalesced := 0
		for _, task := range batchedTasks {
			if task.Coalesced {
				coalesced++
				if task.Kind != "comm" || task.Resource[0] != 'l' {
					t.Fatalf("%s: coalesced non-link task %s (%s)", tc.strategy, task.Label, task.Resource)
				}
			}
		}
		if coalesced != fSends-bSends {
			t.Errorf("%s: %d coalesced riders but send count dropped by %d", tc.strategy, coalesced, fSends-bSends)
		}
		fRes, err := sim.Run(frameTasks)
		if err != nil {
			t.Fatal(err)
		}
		bRes, err := sim.Run(batchedTasks)
		if err != nil {
			t.Fatal(err)
		}
		if bRes.Makespan > fRes.Makespan*(1+1e-9) {
			t.Errorf("%s: batched makespan %.6g regressed past frame %.6g", tc.strategy, bRes.Makespan, fRes.Makespan)
		}
	}
}

// TestP2PModeDuplexLanesClassifyByLink: duplex mode moves the backward
// belt and gradient flushes onto dedicated lanes ("l<i>b"/"l<i>d"); the
// traffic accounting must still attribute lane bytes to the underlying
// link's tier, leaving totals exactly at the frame baseline.
func TestP2PModeDuplexLanesClassifyByLink(t *testing.T) {
	top := cluster.NVLinkEthernet(8, 4)
	_, frame, err := BuildTraffic("wzb2", p2pSpec(8, top, "frame"))
	if err != nil {
		t.Fatal(err)
	}
	tasks, duplex, err := BuildTraffic("wzb2", p2pSpec(8, top, "duplex"))
	if err != nil {
		t.Fatal(err)
	}
	if frame.InterBytes != duplex.InterBytes || frame.IntraBytes != duplex.IntraBytes {
		t.Errorf("duplex re-tiered bytes: inter %.0f vs %.0f, intra %.0f vs %.0f",
			duplex.InterBytes, frame.InterBytes, duplex.IntraBytes, frame.IntraBytes)
	}
	if frame.InterSends+frame.IntraSends != duplex.InterSends+duplex.IntraSends {
		t.Errorf("duplex changed send count: %d vs %d",
			duplex.InterSends+duplex.IntraSends, frame.InterSends+frame.IntraSends)
	}
	lanes := map[byte]bool{}
	for _, task := range tasks {
		if len(task.Resource) >= 3 && task.Resource[0] == 'l' {
			lane := task.Resource[len(task.Resource)-1]
			if lane == 'b' || lane == 'd' {
				lanes[lane] = true
			}
		}
	}
	if !lanes['b'] || !lanes['d'] {
		t.Errorf("duplex schedule has no lane tasks (b=%v d=%v)", lanes['b'], lanes['d'])
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatalf("duplex schedule does not run: %v", err)
	}
}

// TestP2PModeAutoMixesByTier: on a hierarchical topology the auto policy
// batches the slow boundary links and duplexes the fast intra-group ones —
// so its schedule must contain both coalesced riders and lane tasks, with
// total bytes still at the frame baseline.
func TestP2PModeAutoMixesByTier(t *testing.T) {
	top := cluster.NVLinkEthernet(8, 4)
	_, frame, err := BuildTraffic("wzb2", p2pSpec(8, top, "frame"))
	if err != nil {
		t.Fatal(err)
	}
	tasks, auto, err := BuildTraffic("wzb2", p2pSpec(8, top, "auto"))
	if err != nil {
		t.Fatal(err)
	}
	if frame.InterBytes+frame.IntraBytes != auto.InterBytes+auto.IntraBytes {
		t.Errorf("auto changed wire bytes: %.0f vs %.0f",
			auto.InterBytes+auto.IntraBytes, frame.InterBytes+frame.IntraBytes)
	}
	var coalesced, laned bool
	for _, task := range tasks {
		if task.Coalesced {
			coalesced = true
		}
		if task.Resource[0] == 'l' && (strings.HasSuffix(task.Resource, "b") || strings.HasSuffix(task.Resource, "d")) {
			laned = true
		}
	}
	if !coalesced || !laned {
		t.Errorf("auto did not mix models (batched riders=%v, duplex lanes=%v)", coalesced, laned)
	}
	if auto.InterSends >= frame.InterSends {
		t.Errorf("auto did not batch the boundary links: %d inter sends vs frame %d", auto.InterSends, frame.InterSends)
	}
	if _, err := sim.Run(tasks); err != nil {
		t.Fatalf("auto schedule does not run: %v", err)
	}
}

// TestP2PModeInvalidRejected: an unknown mode must fail the build, not
// silently fall back to frame.
func TestP2PModeInvalidRejected(t *testing.T) {
	if _, err := Build("wzb2", p2pSpec(8, cluster.NVLinkSingle(8), "bogus")); err == nil {
		t.Fatal("unknown p2p mode accepted")
	}
}
