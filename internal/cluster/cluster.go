// Package cluster models the hardware the paper evaluated on: A800 GPUs
// arranged in rings whose links are NVLink inside a server, and PCIe or
// Ethernet between servers. The performance simulator consumes these
// descriptions; nothing here executes.
package cluster

import "fmt"

// GPUSpec describes one accelerator.
type GPUSpec struct {
	Name string
	// PeakFLOPS is the fp16/bf16 tensor-core peak in FLOP/s.
	PeakFLOPS float64
	// MFU is the fraction of peak a well-tuned training kernel sustains;
	// throughput models divide by PeakFLOPS·MFU.
	MFU float64
	// MemBytes is the HBM capacity used for OOM detection.
	MemBytes float64
}

// A800 returns the paper's GPU: 312 TFLOPS fp16, 80 GB HBM, and NVLink
// capped at 400 GB/s (vs 600 on A100).
func A800() GPUSpec {
	return GPUSpec{
		Name:      "A800",
		PeakFLOPS: 312e12,
		MFU:       0.45,
		MemBytes:  80 * (1 << 30),
	}
}

// Link bandwidths (bytes/s, effective per direction) and latencies used by
// the topology presets.
const (
	// NVLinkBW is the A800's capped NVLink bandwidth. The 400 GB/s figure
	// is aggregate; an effective 200 GB/s per neighbour direction is what a
	// ring schedule sees.
	NVLinkBW = 200e9
	// NVLinkLatency per message.
	NVLinkLatency = 3e-6
	// PCIeBW is PCIe 4.0 x16 effective bandwidth.
	PCIeBW      = 24e9
	PCIeLatency = 5e-6
	// EthernetBW is the paper's 10 Gb Ethernet between clusters.
	EthernetBW      = 1.25e9
	EthernetLatency = 30e-6
)

// Topology is a unidirectional ring of P workers. Link i carries traffic
// from worker i to worker (i+1) mod P; SendBW/Latency describe each link.
// Collectives (NCCL ring algorithms, per the paper's configuration) are
// bottlenecked by the slowest link.
type Topology struct {
	Name    string
	P       int
	SendBW  []float64
	Latency []float64
	// PerGroup records how many contiguous workers share a fast fabric
	// (a server / NVLink island). 0 means the ring is uniform: one group
	// spanning all P workers. Set by Grouped; consumed by the scheduler's
	// grouped-belt strategy and the traffic-tier accounting.
	PerGroup int
}

// Validate panics on malformed topologies (programming errors).
func (t Topology) Validate() {
	if t.P <= 0 || len(t.SendBW) != t.P || len(t.Latency) != t.P {
		panic(fmt.Sprintf("cluster: malformed topology %q", t.Name))
	}
	for i, bw := range t.SendBW {
		if bw <= 0 || t.Latency[i] < 0 {
			panic(fmt.Sprintf("cluster: bad link %d in %q", i, t.Name))
		}
	}
}

// MinBW returns the slowest link bandwidth (the ring-collective bottleneck).
func (t Topology) MinBW() float64 {
	m := t.SendBW[0]
	for _, bw := range t.SendBW[1:] {
		if bw < m {
			m = bw
		}
	}
	return m
}

// MaxLatency returns the largest per-hop latency.
func (t Topology) MaxLatency() float64 {
	m := t.Latency[0]
	for _, l := range t.Latency[1:] {
		if l > m {
			m = l
		}
	}
	return m
}

// RingAllReduceTime returns the ring all-reduce wall time for `bytes` per
// rank: 2(P−1)/P·bytes over the slowest link plus per-hop latencies.
func (t Topology) RingAllReduceTime(bytes float64) float64 {
	if t.P == 1 {
		return 0
	}
	p := float64(t.P)
	return 2*(p-1)/p*bytes/t.MinBW()*1 /* one full rotation each phase */ +
		2*(p-1)*t.MaxLatency()
}

// RingAllGatherTime returns the ring all-gather (or reduce-scatter) wall
// time for a `bytes`-sized full vector.
func (t Topology) RingAllGatherTime(bytes float64) float64 {
	if t.P == 1 {
		return 0
	}
	p := float64(t.P)
	return (p-1)/p*bytes/t.MinBW() + (p-1)*t.MaxLatency()
}

// uniform builds a ring with identical links.
func uniform(name string, p int, bw, lat float64) Topology {
	t := Topology{Name: name, P: p, SendBW: make([]float64, p), Latency: make([]float64, p)}
	for i := 0; i < p; i++ {
		t.SendBW[i] = bw
		t.Latency[i] = lat
	}
	return t
}

// Grouped builds a ring where workers are packed `perGroup` to a server:
// links within a server use (intraBW, intraLat), links crossing a server
// boundary use (interBW, interLat). The NVLink*/PCIe* presets are thin
// wrappers around this constructor.
func Grouped(name string, p, perGroup int, intraBW, intraLat, interBW, interLat float64) Topology {
	if perGroup <= 0 || p%perGroup != 0 {
		panic(fmt.Sprintf("cluster: %d workers not divisible into groups of %d", p, perGroup))
	}
	t := Topology{Name: name, P: p, SendBW: make([]float64, p), Latency: make([]float64, p), PerGroup: perGroup}
	for i := 0; i < p; i++ {
		if (i+1)%perGroup == 0 { // link i → i+1 leaves the server (incl. wrap)
			t.SendBW[i] = interBW
			t.Latency[i] = interLat
		} else {
			t.SendBW[i] = intraBW
			t.Latency[i] = intraLat
		}
	}
	// Single-group rings never leave the server.
	if p == perGroup {
		for i := range t.SendBW {
			t.SendBW[i] = intraBW
			t.Latency[i] = intraLat
		}
	}
	return t
}

// GroupSize normalizes PerGroup: uniform rings are one group of P.
func (t Topology) GroupSize() int {
	if t.PerGroup <= 0 || t.PerGroup > t.P {
		return t.P
	}
	return t.PerGroup
}

// Groups returns the contiguous [lo, hi) worker ranges sharing a fast
// fabric. A uniform ring is a single group covering every worker.
func (t Topology) Groups() [][2]int {
	m := t.GroupSize()
	gs := make([][2]int, 0, t.P/m)
	for lo := 0; lo < t.P; lo += m {
		gs = append(gs, [2]int{lo, lo + m})
	}
	return gs
}

// GroupOf returns the group index of a worker.
func (t Topology) GroupOf(rank int) int { return rank / t.GroupSize() }

// BoundaryLink reports whether ring link i (worker i → i+1 mod P) crosses
// a group boundary. Uniform rings have no boundary links.
func (t Topology) BoundaryLink(i int) bool {
	m := t.GroupSize()
	return m < t.P && (i+1)%m == 0
}

// GroupFabric returns the (bandwidth, latency) the scheduler should charge
// for a non-adjacent transfer inside group g: the slowest intra-group link
// and the largest intra-group latency. Falls back to the whole-ring
// bottleneck for single-worker groups.
func (t Topology) GroupFabric(g int) (bw, lat float64) {
	m := t.GroupSize()
	lo := g * m
	bw, lat = 0, 0
	for i := lo; i < lo+m; i++ {
		if t.BoundaryLink(i) {
			continue
		}
		if bw == 0 || t.SendBW[i] < bw {
			bw = t.SendBW[i]
		}
		if t.Latency[i] > lat {
			lat = t.Latency[i]
		}
	}
	if bw == 0 { // m == 1: no intra links exist
		return t.MinBW(), t.MaxLatency()
	}
	return bw, lat
}

// NVLinkSingle is an all-NVLink ring (one tightly-coupled server/cluster).
func NVLinkSingle(p int) Topology {
	return uniform(fmt.Sprintf("nvlink-%d", p), p, NVLinkBW, NVLinkLatency)
}

// NVLinkTwoClusters is the paper's first environment (Table 2): p GPUs
// split across two NVLink clusters. Back-solving the paper's own 1F1B
// throughput against its compute-only bound puts the inter-cluster hop at
// ≈1 GB/s — i.e. the clusters are joined by the same 10 Gb Ethernet used in
// the scaling studies, with NVLink only inside each cluster.
func NVLinkTwoClusters(p int) Topology {
	if p%2 != 0 {
		panic("cluster: NVLinkTwoClusters needs an even worker count")
	}
	return Grouped(fmt.Sprintf("nvlink-2x%d", p/2), p, p/2,
		NVLinkBW, NVLinkLatency, EthernetBW, EthernetLatency)
}

// PCIeEthernet is the paper's second environment: PCIe within each cluster
// and 10 Gb Ethernet between clusters (Table 3: 16 GPUs across clusters).
func PCIeEthernet(p, perCluster int) Topology {
	return Grouped(fmt.Sprintf("pcie-eth-%dx%d", p/perCluster, perCluster), p, perCluster,
		PCIeBW, PCIeLatency, EthernetBW, EthernetLatency)
}

// NVLinkEthernet is the scaling-figure environment: NVLink within each
// server, 10 Gb Ethernet between servers (Figures 6–9).
func NVLinkEthernet(p, perServer int) Topology {
	return Grouped(fmt.Sprintf("nvlink-eth-%dx%d", p/perServer, perServer), p, perServer,
		NVLinkBW, NVLinkLatency, EthernetBW, EthernetLatency)
}
