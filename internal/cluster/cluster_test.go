package cluster

import (
	"math"
	"testing"
)

func TestA800Spec(t *testing.T) {
	g := A800()
	if g.PeakFLOPS != 312e12 {
		t.Fatalf("peak = %v", g.PeakFLOPS)
	}
	if g.MemBytes != 80*(1<<30) {
		t.Fatalf("mem = %v", g.MemBytes)
	}
	if g.MFU <= 0 || g.MFU > 1 {
		t.Fatalf("MFU = %v", g.MFU)
	}
}

func TestNVLinkSingleUniform(t *testing.T) {
	top := NVLinkSingle(8)
	top.Validate()
	if top.P != 8 {
		t.Fatalf("P = %d", top.P)
	}
	for i := 0; i < 8; i++ {
		if top.SendBW[i] != NVLinkBW {
			t.Fatalf("link %d BW = %v", i, top.SendBW[i])
		}
	}
	if top.MinBW() != NVLinkBW {
		t.Fatal("MinBW wrong")
	}
}

func TestNVLinkTwoClustersBoundaryLinks(t *testing.T) {
	top := NVLinkTwoClusters(16)
	top.Validate()
	slow := 0
	for i := 0; i < 16; i++ {
		if top.SendBW[i] == EthernetBW {
			slow++
			if i != 7 && i != 15 {
				t.Fatalf("slow link at unexpected position %d", i)
			}
		}
	}
	if slow != 2 {
		t.Fatalf("expected 2 inter-cluster links, got %d", slow)
	}
	if top.MinBW() != EthernetBW {
		t.Fatal("MinBW should be the inter-cluster link")
	}
}

func TestPCIeEthernetTopology(t *testing.T) {
	top := PCIeEthernet(16, 4) // 4 clusters of 4
	top.Validate()
	eth := 0
	for i := 0; i < 16; i++ {
		switch top.SendBW[i] {
		case EthernetBW:
			eth++
		case PCIeBW:
		default:
			t.Fatalf("unexpected BW %v at link %d", top.SendBW[i], i)
		}
	}
	if eth != 4 {
		t.Fatalf("expected 4 ethernet links, got %d", eth)
	}
	if top.MinBW() != EthernetBW {
		t.Fatal("ethernet should bottleneck the ring")
	}
}

func TestSingleGroupHasNoInterLinks(t *testing.T) {
	top := NVLinkEthernet(4, 4) // one server: pure NVLink
	for i := range top.SendBW {
		if top.SendBW[i] != NVLinkBW {
			t.Fatalf("single-server ring has inter link at %d", i)
		}
	}
}

func TestRingCollectiveTimes(t *testing.T) {
	top := NVLinkSingle(4)
	bytes := 1e9
	ar := top.RingAllReduceTime(bytes)
	ag := top.RingAllGatherTime(bytes)
	// all-reduce = 2 phases of all-gather volume
	if math.Abs(ar-2*ag) > 1e-9 {
		t.Fatalf("allreduce %v != 2×allgather %v", ar, ag)
	}
	// 2(P−1)/P·bytes / BW dominates
	want := 2 * 3.0 / 4.0 * bytes / NVLinkBW
	if ar < want || ar > want*1.1 {
		t.Fatalf("allreduce time %v, want ≈ %v", ar, want)
	}
	// P=1 is free
	if NVLinkSingle(1).RingAllReduceTime(bytes) != 0 {
		t.Fatal("P=1 collective should be free")
	}
}

func TestEthernetBottlenecksCollective(t *testing.T) {
	fast := NVLinkSingle(16)
	slow := NVLinkEthernet(16, 4)
	bytes := 1e9
	if slow.RingAllReduceTime(bytes) < 50*fast.RingAllReduceTime(bytes) {
		t.Fatal("ethernet ring should be dramatically slower")
	}
}

func TestValidatePanicsOnBadTopology(t *testing.T) {
	bad := Topology{Name: "bad", P: 2, SendBW: []float64{1}, Latency: []float64{0, 0}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	bad.Validate()
}

func TestGroupedPanicsOnIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PCIeEthernet(10, 4)
}
