package trace

import (
	"strings"
	"testing"
	"time"
)

// TestPerIterationIntegrityInstants: CodeIntegrity/CodeSpike instants land
// in the per-iteration rollup and the summary, and the summary only prints
// the integrity line when something happened.
func TestPerIterationIntegrityInstants(t *testing.T) {
	s := NewSet(1, 64)
	ms := int64(time.Millisecond)
	tr := s.Rank(0)
	tr.Emit(0, 50*ms, CodeStep, 0, 0)
	tr.Emit(100*ms, 50*ms, CodeStep, 1, 0)
	tr.Emit(10*ms, 0, CodeSpike, 0, 1)      // iter 0: one spike verdict
	tr.Emit(110*ms, 0, CodeIntegrity, 1, 3) // iter 1: one detection
	tr.Emit(120*ms, 0, CodeSpike, 1, 0)
	tr.Emit(130*ms, 0, CodeSpike, 1, 1)

	got := PerIteration(s.Events())
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2", len(got))
	}
	if got[0].Spikes != 1 || got[0].Integrity != 0 {
		t.Fatalf("iter 0: spikes=%d integrity=%d", got[0].Spikes, got[0].Integrity)
	}
	if got[1].Spikes != 2 || got[1].Integrity != 1 {
		t.Fatalf("iter 1: spikes=%d integrity=%d", got[1].Spikes, got[1].Integrity)
	}
	sum := Summarize(got)
	if sum.TotalIntegrity != 1 || sum.TotalSpikes != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if !strings.Contains(sum.String(), "integrity       1 detections, 3 grad-norm spikes") {
		t.Fatalf("summary output lacks integrity line:\n%s", sum.String())
	}

	// A clean rollup keeps the classic output shape.
	clean := Summarize(got[:0])
	if strings.Contains(clean.String(), "integrity") {
		t.Fatal("clean summary grew an integrity line")
	}
}
