package trace

import "testing"

// TestEmitZeroAlloc pins the tracing-on hot path at zero allocations per
// span, the same way TestBeltHotPathZeroAlloc pins the belt cycle: the
// ring is preallocated at NewSet, so Begin/End and Emit must only stamp
// the clock, take the mutex and store into an existing slot.
func TestEmitZeroAlloc(t *testing.T) {
	s := NewSet(1, 1<<12)
	tr := s.Rank(0)
	allocs := testing.AllocsPerRun(1000, func() {
		start := tr.Begin()
		tr.End(start, CodeF, 1, 2)
		tr.Emit(start, 10, CodeStall, 3, 4)
		tr.Instant(CodeRetransmit, 5, 6)
	})
	if allocs != 0 {
		t.Fatalf("tracing hot path allocates: %.1f allocs/run, want 0", allocs)
	}
}

// TestNilPathZeroAlloc pins the tracing-off path: a nil tracer must cost
// nothing but the nil checks, or the ≤1% disabled-overhead budget is fiction.
func TestNilPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		start := tr.Begin()
		tr.End(start, CodeF, 1, 2)
		tr.Instant(CodeRetransmit, 5, 6)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocates: %.1f allocs/run, want 0", allocs)
	}
}
