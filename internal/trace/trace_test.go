package trace

import (
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if got := tr.Begin(); got != 0 {
		t.Fatalf("nil Begin = %d", got)
	}
	tr.End(0, CodeF, 1, 2)
	tr.Instant(CodeRetransmit, 1, 2)
	tr.Emit(0, 1, CodeF, 1, 2)
	if tr.Events() != nil {
		t.Fatal("nil Events non-nil")
	}
	if tr.Dropped() != 0 {
		t.Fatal("nil Dropped non-zero")
	}

	var s *Set
	if s.Rank(0) != nil {
		t.Fatal("nil Set.Rank non-nil")
	}
	if s.Size() != 0 || s.Dropped() != 0 || s.Events() != nil {
		t.Fatal("nil Set accessors not zero")
	}
}

func TestBeginEndRecordsSpan(t *testing.T) {
	s := NewSet(2, 16)
	tr := s.Rank(1)
	start := tr.Begin()
	time.Sleep(time.Millisecond)
	tr.End(start, CodeB, 3, 7)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	e := evs[0]
	if e.Code != CodeB || e.Rank != 1 || e.A != 3 || e.B != 7 {
		t.Fatalf("event = %+v", e)
	}
	if e.Dur < int64(500*time.Microsecond) {
		t.Fatalf("duration %v too short", time.Duration(e.Dur))
	}
	if e.Start < 0 {
		t.Fatalf("start %d negative", e.Start)
	}
}

func TestRingWraparound(t *testing.T) {
	s := NewSet(1, 4)
	tr := s.Rank(0)
	for i := 0; i < 10; i++ {
		tr.Emit(int64(i), 1, CodeF, int64(i), 0)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Oldest retained first: events 6..9 survive in emission order.
	for i, e := range evs {
		if want := int64(6 + i); e.A != want || e.Start != want {
			t.Fatalf("evs[%d] = %+v, want A=%d", i, e, want)
		}
	}
	if s.Dropped() != 6 {
		t.Fatalf("set dropped = %d", s.Dropped())
	}
}

func TestEventsBeforeWrapInOrder(t *testing.T) {
	s := NewSet(1, 8)
	tr := s.Rank(0)
	for i := 0; i < 5; i++ {
		tr.Emit(int64(i*10), 5, CodeW, int64(i), 0)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("events = %d", len(evs))
	}
	for i, e := range evs {
		if e.A != int64(i) {
			t.Fatalf("evs[%d].A = %d", i, e.A)
		}
	}
}

// TestConcurrentEmit hammers one tracer from many goroutines; run under
// -race (make race / CI) this pins the emit path as data-race free — the
// real runtime has the compute thread, two belt lanes and transport
// goroutines all emitting into per-rank tracers.
func TestConcurrentEmit(t *testing.T) {
	const workers = 8
	const each = 500
	s := NewSet(2, workers*each)
	tr := s.Rank(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				start := tr.Begin()
				tr.End(start, CodeRecv, int64(w), int64(i))
			}
		}(w)
	}
	// Concurrent readers must see consistent snapshots too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = tr.Events()
			_ = tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if got := len(tr.Events()); got != workers*each {
		t.Fatalf("events = %d, want %d", got, workers*each)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestSetEventsMergedSorted(t *testing.T) {
	s := NewSet(3, 8)
	s.Rank(2).Emit(30, 1, CodeF, 0, 0)
	s.Rank(0).Emit(10, 1, CodeF, 0, 0)
	s.Rank(1).Emit(20, 1, CodeF, 0, 0)
	s.Rank(1).Emit(10, 1, CodeB, 0, 0) // ties with rank 0's: rank order breaks it
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	wantRanks := []int32{0, 1, 1, 2}
	wantStarts := []int64{10, 10, 20, 30}
	for i := range evs {
		if evs[i].Rank != wantRanks[i] || evs[i].Start != wantStarts[i] {
			t.Fatalf("evs[%d] = %+v", i, evs[i])
		}
	}
}

func TestCodeStrings(t *testing.T) {
	for c := CodeStep; c < codeCount; c++ {
		if c.String() == "?" || c.Category() == "?" {
			t.Fatalf("code %d unnamed", c)
		}
	}
	if Code(200).String() != "?" || Code(200).Category() != "?" {
		t.Fatal("out-of-range code not ?")
	}
}

func TestPerIterationMetrics(t *testing.T) {
	s := NewSet(2, 64)
	ms := int64(time.Millisecond)
	for rank := 0; rank < 2; rank++ {
		tr := s.Rank(rank)
		for iter := 0; iter < 2; iter++ {
			base := int64(iter) * 100 * ms
			tr.Emit(base, 50*ms, CodeStep, int64(iter), 0)
			tr.Emit(base+1*ms, 10*ms, CodeF, 0, 0)
			tr.Emit(base+11*ms, 8*ms, CodeB, 0, 0)
			tr.Emit(base+19*ms, 6*ms, CodeW, 0, 0)
			tr.Emit(base+25*ms, 4*ms, CodeOpt, int64(iter), 0)
			tr.Emit(base+30*ms, 2*ms, CodeStall, 0, 1)
			tr.Emit(base+32*ms, 3*ms, CodeStall, 1, 1)
		}
	}
	got := PerIteration(s.Events())
	if len(got) != 4 {
		t.Fatalf("metrics rows = %d, want 4", len(got))
	}
	// Sorted by iter then rank.
	want := []struct{ iter, rank int }{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, m := range got {
		if m.Iter != want[i].iter || m.Rank != want[i].rank {
			t.Fatalf("row %d = iter %d rank %d", i, m.Iter, m.Rank)
		}
		if m.Step != 50*time.Millisecond {
			t.Fatalf("step = %v", m.Step)
		}
		if m.Fwd != 10*time.Millisecond || m.Bwd != 8*time.Millisecond || m.Wgrad != 6*time.Millisecond {
			t.Fatalf("compute = %v/%v/%v", m.Fwd, m.Bwd, m.Wgrad)
		}
		if m.Opt != 4*time.Millisecond {
			t.Fatalf("opt = %v", m.Opt)
		}
		if m.Exposed != 5*time.Millisecond || m.Stalls != 2 {
			t.Fatalf("exposed = %v stalls = %d", m.Exposed, m.Stalls)
		}
		if m.Compute() != 28*time.Millisecond {
			t.Fatalf("compute total = %v", m.Compute())
		}
	}
	sum := Summarize(got)
	if sum.Iters != 2 || sum.Ranks != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.AvgStep != 50*time.Millisecond || sum.AvgExposed != 5*time.Millisecond {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.TotalStalls != 8 {
		t.Fatalf("stalls = %d", sum.TotalStalls)
	}
	if s := sum.String(); len(s) == 0 {
		t.Fatal("empty summary string")
	}
	if len(Summarize(nil).String()) == 0 {
		t.Fatal("empty-summary String failed")
	}
}
