package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSet builds a small deterministic trace via explicit Emit values:
// two ranks, one iteration, covering every lane (compute, belt, comm).
func goldenSet() *Set {
	s := NewSet(2, 64)
	us := int64(1000) // 1 µs in ns
	for rank := 0; rank < 2; rank++ {
		tr := s.Rank(rank)
		base := int64(rank) * 5 * us
		tr.Emit(base, 100*us, CodeStep, 0, 0)
		tr.Emit(base+2*us, 20*us, CodeF, 0, 1)
		tr.Emit(base+25*us, 15*us, CodeB, 0, 1)
		tr.Emit(base+42*us, 10*us, CodeW, 0, 1)
		tr.Emit(base+60*us, 5*us, CodeOpt, 0, 0)
		tr.Emit(base+70*us, 3*us, CodeStall, 0, int64(1-rank))
		tr.Emit(base+1*us, 30*us, CodePrefetch, 0, 2)
		tr.Emit(base+35*us, 12*us, CodeRelay, 1, 3)
		tr.Emit(base+3*us, 2*us, CodeSend, 0, int64(1-rank))
		tr.Emit(base+6*us, 4*us, CodeRecv, 1, int64(1-rank))
		tr.Emit(base+80*us, 0, CodeRetransmit, int64(1-rank), 7)
	}
	return s
}

func goldenMeta() *RunMeta {
	return &RunMeta{
		Strategy: "wzb2", P: 2, N: 4, Hidden: 64, Layers: 4, Seq: 32,
		Batch: 8, Heads: 4, Vocab: 256, Iters: 1, Overlap: true,
	}
}

// TestChromeTraceGolden pins the exact Chrome trace JSON the runtime
// exporter produces against a checked-in golden file. Run with -update to
// regenerate after an intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	blob, err := goldenSet().ChromeTrace(goldenMeta())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("chrome trace drifted from golden file.\ngot:\n%s\nwant:\n%s", blob, want)
	}
}

// TestChromeTraceSchema validates the structural invariants Perfetto needs,
// independent of the byte-exact golden: a traceEvents array of events with
// name/cat/ph/ts/dur/pid/tid, complete events marked "X" with non-negative
// ts, instants marked "i" with zero dur.
func TestChromeTraceSchema(t *testing.T) {
	blob, err := goldenSet().ChromeTrace(goldenMeta())
	if err != nil {
		t.Fatal(err)
	}
	events, meta, err := ParseChrome(blob)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.Strategy != "wzb2" || meta.P != 2 || meta.N != 4 {
		t.Fatalf("meta roundtrip = %+v", meta)
	}
	if len(events) != 22 { // 11 events × 2 ranks
		t.Fatalf("events = %d, want 22", len(events))
	}
	lanes := map[string]bool{}
	for _, e := range events {
		if e.Name == "" || e.Cat == "" || e.Tid == "" {
			t.Fatalf("event missing fields: %+v", e)
		}
		switch e.Ph {
		case "X":
			if e.Dur <= 0 {
				t.Fatalf("complete event with dur %v: %+v", e.Dur, e)
			}
		case "i":
			if e.Dur != 0 {
				t.Fatalf("instant with dur: %+v", e)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
		if e.Ts < 0 {
			t.Fatalf("negative ts: %+v", e)
		}
		if e.Pid != 0 && e.Pid != 1 {
			t.Fatalf("pid out of range: %+v", e)
		}
		lanes[e.Tid] = true
	}
	for _, lane := range []string{"compute", "belt-fwd", "belt-bwd", "comm"} {
		if !lanes[lane] {
			t.Fatalf("lane %q missing from trace", lane)
		}
	}
	// Raw-document check: the weipipe metadata key must be present so
	// -compare can rebuild the simulator side.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["weipipe"]; !ok {
		t.Fatal("weipipe metadata key missing")
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("traceEvents key missing")
	}
}

// TestMarshalChromeNoMeta keeps the meta-less document shape identical to
// what the simulator has always written: a single traceEvents key.
func TestMarshalChromeNoMeta(t *testing.T) {
	blob, err := MarshalChrome([]ChromeEvent{{Name: "F", Cat: "F", Ph: "X", Ts: 1, Dur: 2, Tid: "w0"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc) != 1 {
		t.Fatalf("doc keys = %d, want 1 (traceEvents only)", len(doc))
	}
	events, meta, err := ParseChrome(blob)
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Fatal("meta should be nil")
	}
	if len(events) != 1 || events[0].Name != "F" {
		t.Fatalf("events = %+v", events)
	}
}
