package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// IterMetrics is the structured per-iteration snapshot for one rank: where
// that rank's wall-clock went inside one CodeStep span. Exposed comm is the
// sum of CodeStall spans — time the compute thread sat blocked on a payload
// — which is the measured counterpart of the simulator's bubble.
type IterMetrics struct {
	Rank int
	Iter int

	Step    time.Duration // whole TrainIteration
	Fwd     time.Duration // Σ CodeF
	Bwd     time.Duration // Σ CodeB
	Wgrad   time.Duration // Σ CodeW
	Opt     time.Duration // Σ CodeOpt
	Exposed time.Duration // Σ CodeStall (exposed communication)
	Stalls  int           // number of stall spans

	Integrity int // CodeIntegrity instants (detected corruption)
	Spikes    int // CodeSpike instants (grad-norm anomaly verdicts)
}

// Compute returns the iteration's total compute time (F+B+W+opt).
func (m IterMetrics) Compute() time.Duration {
	return m.Fwd + m.Bwd + m.Wgrad + m.Opt
}

// PerIteration rolls a trace up into per-(rank, iteration) metrics by
// attributing each compute-thread span to the CodeStep span that contains
// it. Results are sorted by iteration then rank.
func PerIteration(events []Event) []IterMetrics {
	type stepKey struct {
		rank int32
		iter int64
	}
	type stepSpan struct {
		start, end int64
	}
	steps := make(map[stepKey]stepSpan)
	for _, e := range events {
		if e.Code == CodeStep {
			steps[stepKey{e.Rank, e.A}] = stepSpan{e.Start, e.Start + e.Dur}
		}
	}
	acc := make(map[stepKey]*IterMetrics, len(steps))
	for k, s := range steps {
		acc[k] = &IterMetrics{
			Rank: int(k.rank),
			Iter: int(k.iter),
			Step: time.Duration(s.end - s.start),
		}
	}
	for _, e := range events {
		var into *IterMetrics
		for k, s := range steps {
			if k.rank == e.Rank && e.Start >= s.start && e.Start < s.end {
				into = acc[k]
				break
			}
		}
		if into == nil {
			continue
		}
		d := time.Duration(e.Dur)
		switch e.Code {
		case CodeF:
			into.Fwd += d
		case CodeB:
			into.Bwd += d
		case CodeW:
			into.Wgrad += d
		case CodeOpt:
			into.Opt += d
		case CodeStall:
			into.Exposed += d
			into.Stalls++
		case CodeIntegrity:
			into.Integrity++
		case CodeSpike:
			into.Spikes++
		}
	}
	out := make([]IterMetrics, 0, len(acc))
	for _, m := range acc {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Iter != out[j].Iter {
			return out[i].Iter < out[j].Iter
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Summary aggregates IterMetrics across ranks and iterations: per-iteration
// step time is the max across ranks (the iteration is as slow as its
// slowest rank), everything else is the mean per rank-iteration.
type Summary struct {
	Iters       int
	Ranks       int
	AvgStep     time.Duration // mean over iterations of max-across-ranks step
	AvgFwd      time.Duration
	AvgBwd      time.Duration
	AvgWgrad    time.Duration
	AvgOpt      time.Duration
	AvgExposed  time.Duration
	TotalStalls int

	// TotalIntegrity and TotalSpikes count detection instants across the
	// whole run; both stay zero in a healthy run with the defenses off.
	TotalIntegrity int
	TotalSpikes    int
}

// Summarize aggregates per-iteration metrics into a run summary.
func Summarize(ms []IterMetrics) Summary {
	var s Summary
	if len(ms) == 0 {
		return s
	}
	stepMax := make(map[int]time.Duration)
	ranks := make(map[int]bool)
	var fwd, bwd, wgrad, opt, exposed time.Duration
	for _, m := range ms {
		if m.Step > stepMax[m.Iter] {
			stepMax[m.Iter] = m.Step
		}
		ranks[m.Rank] = true
		fwd += m.Fwd
		bwd += m.Bwd
		wgrad += m.Wgrad
		opt += m.Opt
		exposed += m.Exposed
		s.TotalStalls += m.Stalls
		s.TotalIntegrity += m.Integrity
		s.TotalSpikes += m.Spikes
	}
	s.Iters = len(stepMax)
	s.Ranks = len(ranks)
	var stepSum time.Duration
	for _, d := range stepMax {
		stepSum += d
	}
	n := time.Duration(len(ms))
	s.AvgStep = stepSum / time.Duration(len(stepMax))
	s.AvgFwd = fwd / n
	s.AvgBwd = bwd / n
	s.AvgWgrad = wgrad / n
	s.AvgOpt = opt / n
	s.AvgExposed = exposed / n
	return s
}

// String renders the summary as the -metrics console block.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iterations      %d  (ranks %d)\n", s.Iters, s.Ranks)
	fmt.Fprintf(&b, "step time       %v  (max across ranks, mean over iters)\n", s.AvgStep.Round(time.Microsecond))
	fmt.Fprintf(&b, "fwd compute     %v  (per rank-iter mean)\n", s.AvgFwd.Round(time.Microsecond))
	fmt.Fprintf(&b, "bwd compute     %v\n", s.AvgBwd.Round(time.Microsecond))
	fmt.Fprintf(&b, "wgrad compute   %v\n", s.AvgWgrad.Round(time.Microsecond))
	fmt.Fprintf(&b, "optimizer       %v\n", s.AvgOpt.Round(time.Microsecond))
	fmt.Fprintf(&b, "exposed comm    %v  (%d stall spans)\n", s.AvgExposed.Round(time.Microsecond), s.TotalStalls)
	if s.TotalIntegrity > 0 || s.TotalSpikes > 0 {
		fmt.Fprintf(&b, "integrity       %d detections, %d grad-norm spikes\n", s.TotalIntegrity, s.TotalSpikes)
	}
	return b.String()
}
