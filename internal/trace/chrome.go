package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// ChromeEvent is one event of the Chrome trace format (chrome://tracing,
// ui.perfetto.dev). Timestamps and durations are microseconds. Both the
// simulator's predicted schedule and the runtime's measured trace marshal
// through this type, so the two sides of a -compare are the same format.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  string            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// RunMeta describes the run that produced a measured trace. It is embedded
// in the trace JSON under the "weipipe" key so downstream tooling
// (weipipe-trace -compare) can rebuild the matching simulator schedule
// without the user re-specifying the topology.
type RunMeta struct {
	Strategy string `json:"strategy"`
	P        int    `json:"p"`
	N        int    `json:"n"`
	Hidden   int    `json:"hidden"`
	Layers   int    `json:"layers"`
	Seq      int    `json:"seq"`
	Batch    int    `json:"batch"`
	Heads    int    `json:"heads,omitempty"`
	Vocab    int    `json:"vocab,omitempty"`
	Iters    int    `json:"iters"`
	Overlap  bool   `json:"overlap,omitempty"`
	// P2PMode records the transport's per-link packaging mode
	// ("frame"/"batched"/"duplex"/"auto", empty = frame) so
	// weipipe-trace -compare rebuilds the simulated schedule with the
	// same link model the run used.
	P2PMode string `json:"p2p_mode,omitempty"`
}

// MarshalChrome renders events as a Chrome trace JSON object. meta, when
// non-nil, is embedded under the "weipipe" key; the "traceEvents" array is
// otherwise the whole document, byte-compatible with what the simulator's
// ChromeTrace has always produced.
func MarshalChrome(events []ChromeEvent, meta *RunMeta) ([]byte, error) {
	doc := map[string]any{"traceEvents": events}
	if meta != nil {
		doc["weipipe"] = meta
	}
	return json.MarshalIndent(doc, "", " ")
}

// ParseChrome decodes a Chrome trace JSON document, returning its events
// and the embedded RunMeta (nil when the trace carries none — e.g. a
// simulator-rendered trace).
func ParseChrome(blob []byte) ([]ChromeEvent, *RunMeta, error) {
	var doc struct {
		TraceEvents []ChromeEvent   `json:"traceEvents"`
		Weipipe     json.RawMessage `json:"weipipe"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, nil, fmt.Errorf("trace: parse chrome trace: %w", err)
	}
	var meta *RunMeta
	if len(doc.Weipipe) > 0 {
		meta = new(RunMeta)
		if err := json.Unmarshal(doc.Weipipe, meta); err != nil {
			return nil, nil, fmt.Errorf("trace: parse run metadata: %w", err)
		}
	}
	return doc.TraceEvents, meta, nil
}

// laneFor maps a code to its track (tid) within a rank's process row.
// Compute-thread spans share one lane so Perfetto nests them under the
// step span; engine lanes and comm spans get their own rows so overlap
// with compute is visible, which is the whole point of the belt engine.
func laneFor(e Event) string {
	switch e.Code {
	case CodePrefetch, CodeRelay:
		if e.A == 0 {
			return "belt-fwd"
		}
		return "belt-bwd"
	case CodeSend, CodeRecv, CodeRetransmit, CodeModeSwitch:
		return "comm"
	default:
		return "compute"
	}
}

// Chrome converts an Event to its ChromeEvent rendering: pid = rank,
// tid = lane, timestamps converted from nanoseconds to microseconds, and
// the code-specific A/B args spelled out by name so the Perfetto UI shows
// "mb: 3, chunk: 1" instead of anonymous integers.
func (e Event) Chrome() ChromeEvent {
	info := codeInfo[e.Code]
	args := map[string]string{"kind": info.cat}
	if info.aName != "" {
		args[info.aName] = strconv.FormatInt(e.A, 10)
	}
	if info.bName != "" {
		args[info.bName] = strconv.FormatInt(e.B, 10)
	}
	ph := "X"
	if e.Dur == 0 {
		ph = "i" // instant event (e.g. a retransmit marker)
	}
	return ChromeEvent{
		Name: info.name,
		Cat:  info.cat,
		Ph:   ph,
		Ts:   float64(e.Start) / 1e3,
		Dur:  float64(e.Dur) / 1e3,
		Pid:  int(e.Rank),
		Tid:  laneFor(e),
		Args: args,
	}
}

// ChromeTrace renders the set's events as a Chrome trace JSON document,
// embedding meta when non-nil. Events are grouped by rank (pid) and lane
// (tid), sorted by lane then start within each rank.
func (s *Set) ChromeTrace(meta *RunMeta) ([]byte, error) {
	evs := s.Events()
	out := make([]ChromeEvent, 0, len(evs))
	for _, e := range evs {
		out = append(out, e.Chrome())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pid != out[j].Pid {
			return out[i].Pid < out[j].Pid
		}
		if out[i].Tid != out[j].Tid {
			return out[i].Tid < out[j].Tid
		}
		return out[i].Ts < out[j].Ts
	})
	return MarshalChrome(out, meta)
}
