// Package trace is the runtime event tracer for real training runs: a
// low-overhead, per-rank ring buffer of timed spans emitted by the pipeline
// runners (F/B/W stages, optimizer steps, checkpoint barriers), the
// overlapped belt engine (prefetch, relay, staged-wait stalls) and the comm
// transports (send, recv, retransmit). It is the measured counterpart of the
// discrete-event simulator: internal/sim predicts where time should go,
// this package records where it actually went, and the compare tooling
// (internal/bench, cmd/weipipe-trace -compare) reports the per-phase delta.
//
// Design constraints, in priority order:
//
//   - Tracing off must be free. Every instrumentation site holds a *Tracer
//     that is nil unless the run enabled tracing; all methods are nil-safe
//     no-ops, so the disabled hot path pays one pointer test.
//   - Tracing on must not allocate on the hot path. Events are fixed-size
//     structs written into a preallocated ring; emitting is a mutex acquire,
//     a slot store and a counter bump. When the ring wraps, the oldest
//     events are overwritten and counted as dropped — a tracer never grows
//     and never stalls the training loop.
//   - Timestamps are monotonic. Start offsets come from time.Since against
//     the Set's epoch, which Go reads from the monotonic clock, so spans
//     are immune to wall-clock steps and comparable across the ranks of one
//     in-process run (they share the epoch).
package trace

import (
	"sort"
	"sync"
	"time"
)

// Code identifies what a span measured. The code implies the category
// (compute, belt, comm, …) and how the A/B arguments are interpreted.
type Code uint8

// Span codes emitted by the instrumentation sites.
const (
	// CodeStep spans one whole TrainIteration. A = iteration index.
	CodeStep Code = iota
	// CodeF/CodeB/CodeW span one compute stage: forward, activation-
	// gradient (B) and weight-gradient (W) passes. A = microbatch,
	// B = chunk/stage index.
	CodeF
	CodeB
	CodeW
	// CodeOpt spans the optimizer step phase (gradient retire + step).
	// A = iteration index.
	CodeOpt
	// CodeCkpt spans a coordinated checkpoint capture. A = completed
	// iterations at the barrier.
	CodeCkpt
	// CodeStall spans the compute thread's exposed wait for a payload it
	// cannot progress without (belt chunk, boundary activation, staged
	// engine buffer). A = comm.Kind, B = source rank. This is the
	// measured analogue of the simulator's bubble.
	CodeStall
	// CodePrefetch spans a belt-engine lane's blocking transport receive —
	// off the critical path by design. A = belt id, B = use index.
	CodePrefetch
	// CodeRelay spans the engine's store-and-forward send of a weight
	// chunk to the ring successor. A = belt id, B = next use index.
	CodeRelay
	// CodeSend spans a transport send enqueue. A = comm.Kind, B = dst rank.
	CodeSend
	// CodeRecv spans a blocking transport receive (any goroutine — the
	// compute thread in blocking mode, an engine lane in overlap mode).
	// A = comm.Kind, B = src rank.
	CodeRecv
	// CodeIntegrity marks a detected integrity failure (instant event):
	// a belt chunk, resident buffer or kernel result whose checksum no
	// longer matched. A = comm.Kind (or -1 for kernel/resident checks),
	// B = chunk index (-1 when not chunked).
	CodeIntegrity
	// CodeRepair marks a recovery/repair restore point (instant event):
	// the trainer's state was rebuilt from a snapshot or checkpoint.
	// A = resumed iteration, B = optimizer step.
	CodeRepair
	// CodeSpike marks a grad-norm spike verdict from the windowed
	// median+MAD detector (instant event). A = iteration, B = 1 when the
	// step was skipped, 0 when only counted.
	CodeSpike
	// CodeRetransmit marks a TCP retransmission burst (instant event).
	// A = peer rank, B = frames re-sent.
	CodeRetransmit
	// CodeModeSwitch marks the auto P2P controller re-deciding a link's
	// wire packaging mode (instant event). A = peer rank, B = the new
	// comm.P2PMode value.
	CodeModeSwitch

	codeCount
)

// codeInfo names a code for the trace export: the Perfetto slice name, the
// category string, and the names of the A/B args.
var codeInfo = [codeCount]struct {
	name, cat, aName, bName string
}{
	CodeStep:       {"step", "step", "iter", ""},
	CodeF:          {"F", "compute", "mb", "chunk"},
	CodeB:          {"B", "compute", "mb", "chunk"},
	CodeW:          {"W", "compute", "mb", "chunk"},
	CodeOpt:        {"opt", "compute", "iter", ""},
	CodeCkpt:       {"ckpt", "ckpt", "iters", ""},
	CodeStall:      {"stall", "stall", "kind", "src"},
	CodePrefetch:   {"prefetch", "belt", "belt", "use"},
	CodeRelay:      {"relay", "belt", "belt", "use"},
	CodeSend:       {"send", "comm", "kind", "dst"},
	CodeRecv:       {"recv", "comm", "kind", "src"},
	CodeIntegrity:  {"integrity", "integrity", "kind", "chunk"},
	CodeRepair:     {"repair", "integrity", "iter", "step"},
	CodeSpike:      {"spike", "integrity", "iter", "skipped"},
	CodeRetransmit: {"retransmit", "comm", "peer", "frames"},
	CodeModeSwitch: {"p2p-mode", "comm", "peer", "mode"},
}

// String returns the code's slice name.
func (c Code) String() string {
	if int(c) < len(codeInfo) {
		return codeInfo[c].name
	}
	return "?"
}

// Category returns the code's category string ("compute", "belt", "comm",
// "stall", "step", "ckpt").
func (c Code) Category() string {
	if int(c) < len(codeInfo) {
		return codeInfo[c].cat
	}
	return "?"
}

// Event is one recorded span. Events are fixed-size so the ring buffer
// holds them inline with no per-event allocation.
type Event struct {
	// Start is nanoseconds since the owning Set's epoch (monotonic).
	Start int64
	// Dur is the span duration in nanoseconds (0 for instant events).
	Dur int64
	// Code identifies what was measured; A and B are code-specific args.
	Code Code
	// Rank is the emitting rank.
	Rank int32
	A, B int64
}

// DefaultCapacity is the per-rank ring size NewSet uses when given a
// non-positive capacity: 64Ki events ≈ 2.6 MB per rank, several thousand
// training iterations of a small run.
const DefaultCapacity = 1 << 16

// Tracer is one rank's event sink. The zero of usefulness is nil: every
// method on a nil Tracer is a no-op, which is how instrumentation sites
// stay free when tracing is off.
type Tracer struct {
	mu    sync.Mutex
	rank  int32
	epoch time.Time
	buf   []Event
	pos   uint64 // total events emitted; slot = pos % len(buf)
}

// Begin returns the current monotonic offset for a span about to start,
// or 0 on a nil tracer (End will then be a no-op too).
func (t *Tracer) Begin() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// End emits a span that started at the Begin-returned offset.
func (t *Tracer) End(start int64, code Code, a, b int64) {
	if t == nil {
		return
	}
	now := int64(time.Since(t.epoch))
	t.Emit(start, now-start, code, a, b)
}

// Instant emits a zero-duration event stamped now.
func (t *Tracer) Instant(code Code, a, b int64) {
	if t == nil {
		return
	}
	t.Emit(int64(time.Since(t.epoch)), 0, code, a, b)
}

// Emit records a fully-specified event. It is the primitive Begin/End and
// Instant build on; tests use it directly to construct deterministic
// traces. Emitting into a full ring overwrites the oldest event.
func (t *Tracer) Emit(start, dur int64, code Code, a, b int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.pos%uint64(len(t.buf))] = Event{
		Start: start, Dur: dur, Code: code, Rank: t.rank, A: a, B: b,
	}
	t.pos++
	t.mu.Unlock()
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pos <= uint64(len(t.buf)) {
		return 0
	}
	return t.pos - uint64(len(t.buf))
}

// Events returns a copy of the retained events in emission order (oldest
// first). Nil tracers return nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	if t.pos <= n {
		out := make([]Event, t.pos)
		copy(out, t.buf[:t.pos])
		return out
	}
	out := make([]Event, 0, n)
	head := t.pos % n
	out = append(out, t.buf[head:]...)
	out = append(out, t.buf[:head]...)
	return out
}

// Set owns one Tracer per rank, all sharing a single monotonic epoch so
// cross-rank timelines align. A nil *Set hands out nil tracers, making
// "tracing off" a single nil literal at the top of a run.
type Set struct {
	epoch   time.Time
	tracers []*Tracer
}

// NewSet creates per-rank tracers with the given ring capacity (events per
// rank; <= 0 selects DefaultCapacity).
func NewSet(ranks, capacity int) *Set {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	s := &Set{epoch: time.Now(), tracers: make([]*Tracer, ranks)}
	for r := range s.tracers {
		s.tracers[r] = &Tracer{
			rank:  int32(r),
			epoch: s.epoch,
			buf:   make([]Event, capacity),
		}
	}
	return s
}

// Rank returns rank r's tracer, or nil when the set is nil or r is out of
// range — so instrumentation can unconditionally call set.Rank(r).
func (s *Set) Rank(r int) *Tracer {
	if s == nil || r < 0 || r >= len(s.tracers) {
		return nil
	}
	return s.tracers[r]
}

// Size returns the number of ranks (0 for a nil set).
func (s *Set) Size() int {
	if s == nil {
		return 0
	}
	return len(s.tracers)
}

// Dropped sums the per-rank overwrite counts.
func (s *Set) Dropped() uint64 {
	if s == nil {
		return 0
	}
	var n uint64
	for _, t := range s.tracers {
		n += t.Dropped()
	}
	return n
}

// Events merges every rank's retained events, sorted by start time (ties
// broken by rank, then code) — the snapshot the exporters and the metrics
// rollup consume.
func (s *Set) Events() []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, t := range s.tracers {
		out = append(out, t.Events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Code < out[j].Code
	})
	return out
}
