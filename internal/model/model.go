// Package model assembles Llama-style transformer models from the layers in
// internal/nn and provides the partitioning helpers the parallel runtimes
// share: contiguous stage ranges for activation-passing pipelines and flat
// weight/gradient chunks for the weight-passing WeiPipe ring.
package model

import (
	"fmt"

	"weipipe/internal/nn"
	"weipipe/internal/tensor"
)

// Config describes a model. Hidden must be divisible by Heads; FFNDim
// defaults to the Llama sizing ≈8·Hidden/3 so that a block carries ≈12H²
// parameters (4H² attention + 8H² FFN), the volume the paper's analysis is
// built on.
type Config struct {
	Vocab  int
	Hidden int
	Layers int
	Heads  int
	FFNDim int // 0 → 8*Hidden/3 rounded up to a multiple of 4
	MaxSeq int
	Seed   uint64
}

// WithDefaults fills derived fields and validates the configuration.
func (c Config) WithDefaults() Config {
	if c.FFNDim == 0 {
		f := (8*c.Hidden + 2) / 3
		c.FFNDim = (f + 3) / 4 * 4
	}
	c.mustValidate()
	return c
}

func (c Config) mustValidate() {
	switch {
	case c.Vocab <= 1:
		panic("model: Vocab must be > 1")
	case c.Hidden <= 0 || c.Layers <= 0 || c.Heads <= 0 || c.MaxSeq <= 0:
		panic("model: non-positive dimension")
	case c.Hidden%c.Heads != 0:
		panic(fmt.Sprintf("model: Hidden %d not divisible by Heads %d", c.Hidden, c.Heads))
	case (c.Hidden/c.Heads)%2 != 0:
		panic("model: head dim must be even for RoPE")
	}
}

// NumModules returns the module count: embedding + Layers blocks + head.
func (c Config) NumModules() int { return c.Layers + 2 }

// Model is a built transformer: Modules[0] is the embedding, Modules[1..L]
// the transformer blocks, Modules[L+1] the output head.
type Model struct {
	Cfg     Config
	Modules []nn.Module
	Embed   *nn.Embedding
	Blocks  []*nn.Block
	Head    *nn.OutputHead
}

// Build constructs a model. The same (Config, Seed) always produces
// bit-identical initial weights, which is how every rank of a distributed
// run starts from the same model without broadcasting it.
func Build(cfg Config) *Model {
	cfg = cfg.WithDefaults()
	rng := tensor.NewRNG(cfg.Seed)
	rope := nn.NewRopeTable(cfg.MaxSeq, cfg.Hidden/cfg.Heads)

	m := &Model{Cfg: cfg}
	m.Embed = nn.NewEmbedding("embed", cfg.Vocab, cfg.Hidden, rng.Split())
	m.Modules = append(m.Modules, m.Embed)
	for i := 0; i < cfg.Layers; i++ {
		b := nn.NewBlock(fmt.Sprintf("block%d", i), cfg.Hidden, cfg.Heads, cfg.FFNDim, rope, rng.Split())
		m.Blocks = append(m.Blocks, b)
		m.Modules = append(m.Modules, b)
	}
	m.Head = nn.NewOutputHead("head", cfg.Hidden, cfg.Vocab, rng.Split())
	m.Modules = append(m.Modules, m.Head)
	return m
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, mod := range m.Modules {
		n += mod.Params().Size()
	}
	return n
}

// ModuleParamSize returns the flat size of module i's parameters.
func (m *Model) ModuleParamSize(i int) int { return m.Modules[i].Params().Size() }

// ChunkSize returns the flat size of modules [lo, hi).
func (m *Model) ChunkSize(lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		n += m.Modules[i].Params().Size()
	}
	return n
}

// FlattenChunk copies the weights of modules [lo, hi) into dst in wire
// order. dst must have length ChunkSize(lo, hi).
func (m *Model) FlattenChunk(lo, hi int, dst []float32) {
	off := 0
	for i := lo; i < hi; i++ {
		p := m.Modules[i].Params()
		p.FlattenInto(dst[off : off+p.Size()])
		off += p.Size()
	}
	if off != len(dst) {
		panic("model: FlattenChunk length mismatch")
	}
}

// SetChunk overwrites the weights of modules [lo, hi) from src in wire order.
func (m *Model) SetChunk(lo, hi int, src []float32) {
	off := 0
	for i := lo; i < hi; i++ {
		p := m.Modules[i].Params()
		p.SetFlat(src[off : off+p.Size()])
		off += p.Size()
	}
	if off != len(src) {
		panic("model: SetChunk length mismatch")
	}
}

// Partition splits the module list into p contiguous ranges, balancing by
// parameter count (a greedy even-cost split that keeps ranges contiguous).
// Every range is non-empty; p must not exceed the module count.
func (m *Model) Partition(p int) [][2]int {
	n := len(m.Modules)
	if p <= 0 || p > n {
		panic(fmt.Sprintf("model: cannot partition %d modules into %d parts", n, p))
	}
	sizes := make([]int, n)
	total := 0
	for i := range sizes {
		sizes[i] = m.Modules[i].Params().Size()
		total += sizes[i]
	}
	bounds := make([][2]int, 0, p)
	lo := 0
	remaining := total
	for r := 0; r < p; r++ {
		// leave at least one module for each remaining range
		maxHi := n - (p - r - 1)
		target := remaining / (p - r)
		hi := lo + 1
		acc := sizes[lo]
		for hi < maxHi && acc+sizes[hi]/2 <= target {
			acc += sizes[hi]
			hi++
		}
		bounds = append(bounds, [2]int{lo, hi})
		remaining -= acc
		lo = hi
	}
	if bounds[p-1][1] != n {
		bounds[p-1][1] = n
	}
	return bounds
}

// PartitionLayersEven ignores parameter sizes and splits the Layers blocks
// evenly across p ranges, attaching the embedding to the first range and the
// head to the last — the paper's "distribute layers evenly" layout. Layers
// must be divisible by p.
func (m *Model) PartitionLayersEven(p int) [][2]int {
	if m.Cfg.Layers%p != 0 {
		panic(fmt.Sprintf("model: %d layers not divisible by %d workers", m.Cfg.Layers, p))
	}
	per := m.Cfg.Layers / p
	bounds := make([][2]int, p)
	for r := 0; r < p; r++ {
		lo := 1 + r*per
		hi := 1 + (r+1)*per
		if r == 0 {
			lo = 0
		}
		if r == p-1 {
			hi = len(m.Modules)
		}
		bounds[r] = [2]int{lo, hi}
	}
	return bounds
}
