package model

import (
	"testing"
	"testing/quick"

	"weipipe/internal/tensor"
)

// Property: for any valid (layers, workers) pair, Partition produces
// contiguous, non-empty, covering ranges whose parameter loads are within
// 2× of each other once the vocab-heavy edges are set aside.
func TestPartitionBalanceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		layers := 2 + rng.Intn(10)
		cfg := Config{Vocab: 50, Hidden: 8, Layers: layers, Heads: 2, MaxSeq: 4, Seed: seed}
		m := Build(cfg)
		maxP := len(m.Modules)
		p := 1 + rng.Intn(maxP)
		bounds := m.Partition(p)
		if len(bounds) != p || bounds[0][0] != 0 || bounds[p-1][1] != len(m.Modules) {
			return false
		}
		for i := 0; i < p; i++ {
			if bounds[i][0] >= bounds[i][1] {
				return false
			}
			if i > 0 && bounds[i][0] != bounds[i-1][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: FlattenChunk∘SetChunk is the identity for any contiguous range.
func TestChunkRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		m := Build(Config{Vocab: 23, Hidden: 8, Layers: 3, Heads: 2, MaxSeq: 4, Seed: seed})
		n := len(m.Modules)
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		size := m.ChunkSize(lo, hi)
		buf := make([]float32, size)
		for i := range buf {
			buf[i] = float32(rng.NormFloat64())
		}
		m.SetChunk(lo, hi, buf)
		got := make([]float32, size)
		m.FlattenChunk(lo, hi, got)
		for i := range buf {
			if got[i] != buf[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: chunk sizes are additive — ChunkSize(a,c) = ChunkSize(a,b) +
// ChunkSize(b,c).
func TestChunkSizeAdditiveProperty(t *testing.T) {
	m := Build(Config{Vocab: 23, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 4, Seed: 1})
	n := len(m.Modules)
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a := int(aRaw) % n
		b := a + int(bRaw)%(n-a)
		c := b + int(cRaw)%(n-b+1)
		return m.ChunkSize(a, c) == m.ChunkSize(a, b)+m.ChunkSize(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
