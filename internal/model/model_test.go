package model

import (
	"testing"

	"weipipe/internal/nn"
	"weipipe/internal/tensor"
)

func tinyCfg() Config {
	return Config{Vocab: 17, Hidden: 8, Layers: 4, Heads: 2, MaxSeq: 8, Seed: 1}
}

func TestWithDefaultsFFNDim(t *testing.T) {
	c := Config{Vocab: 10, Hidden: 1024, Layers: 1, Heads: 32, MaxSeq: 16}.WithDefaults()
	// ≈ 8H/3 rounded to a multiple of 4
	if c.FFNDim < 8*1024/3 || c.FFNDim%4 != 0 || c.FFNDim > 8*1024/3+4 {
		t.Fatalf("FFNDim = %d", c.FFNDim)
	}
}

func TestWithDefaultsValidates(t *testing.T) {
	bad := []Config{
		{Vocab: 1, Hidden: 8, Layers: 1, Heads: 2, MaxSeq: 4},
		{Vocab: 10, Hidden: 9, Layers: 1, Heads: 2, MaxSeq: 4}, // H % heads
		{Vocab: 10, Hidden: 6, Layers: 1, Heads: 2, MaxSeq: 4}, // odd head dim
		{Vocab: 10, Hidden: 8, Layers: 0, Heads: 2, MaxSeq: 4},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			c.WithDefaults()
		}()
	}
}

func TestBuildStructure(t *testing.T) {
	m := Build(tinyCfg())
	if len(m.Modules) != 6 || len(m.Blocks) != 4 {
		t.Fatalf("modules %d blocks %d", len(m.Modules), len(m.Blocks))
	}
	if _, ok := m.Modules[0].(*nn.Embedding); !ok {
		t.Fatal("module 0 not embedding")
	}
	if _, ok := m.Modules[5].(*nn.OutputHead); !ok {
		t.Fatal("last module not head")
	}
	if m.NumParams() <= 0 {
		t.Fatal("no params")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(tinyCfg())
	b := Build(tinyCfg())
	for i := range a.Modules {
		if a.Modules[i].Params().MaxAbsDiff(b.Modules[i].Params()) != 0 {
			t.Fatalf("module %d differs between identically seeded builds", i)
		}
	}
	cfg2 := tinyCfg()
	cfg2.Seed = 2
	c := Build(cfg2)
	if a.Modules[1].Params().MaxAbsDiff(c.Modules[1].Params()) == 0 {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestChunkFlattenRoundTrip(t *testing.T) {
	m := Build(tinyCfg())
	n := m.ChunkSize(1, 3)
	buf := make([]float32, n)
	m.FlattenChunk(1, 3, buf)
	// perturb and write back
	for i := range buf {
		buf[i] += 1
	}
	m.SetChunk(1, 3, buf)
	buf2 := make([]float32, n)
	m.FlattenChunk(1, 3, buf2)
	for i := range buf {
		if buf[i] != buf2[i] {
			t.Fatalf("chunk round trip failed at %d", i)
		}
	}
	// modules outside the chunk untouched
	if m.ChunkSize(0, 1) != m.Modules[0].Params().Size() {
		t.Fatal("ChunkSize wrong for single module")
	}
}

func TestPartitionCoversAllModules(t *testing.T) {
	m := Build(tinyCfg())
	for p := 1; p <= 6; p++ {
		b := m.Partition(p)
		if len(b) != p {
			t.Fatalf("p=%d: got %d ranges", p, len(b))
		}
		if b[0][0] != 0 || b[p-1][1] != len(m.Modules) {
			t.Fatalf("p=%d: ranges %v do not span", p, b)
		}
		for i := 0; i < p; i++ {
			if b[i][0] >= b[i][1] {
				t.Fatalf("p=%d: empty range %v", p, b[i])
			}
			if i > 0 && b[i][0] != b[i-1][1] {
				t.Fatalf("p=%d: gap between %v and %v", p, b[i-1], b[i])
			}
		}
	}
}

func TestPartitionLayersEven(t *testing.T) {
	m := Build(tinyCfg()) // 4 layers, 6 modules
	b := m.PartitionLayersEven(2)
	if b[0] != [2]int{0, 3} || b[1] != [2]int{3, 6} {
		t.Fatalf("bounds = %v", b)
	}
	b4 := m.PartitionLayersEven(4)
	want := [][2]int{{0, 2}, {2, 3}, {3, 4}, {4, 6}}
	for i := range want {
		if b4[i] != want[i] {
			t.Fatalf("bounds4 = %v", b4)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible layer split did not panic")
		}
	}()
	m.PartitionLayersEven(3)
}

func TestBlockParamCountMatchesPaperFormula(t *testing.T) {
	// A block should carry ≈12H² params when FFNDim = 8H/3.
	cfg := Config{Vocab: 100, Hidden: 96, Layers: 1, Heads: 4, MaxSeq: 8, Seed: 1}
	m := Build(cfg)
	h := cfg.Hidden
	got := m.Blocks[0].Params().Size()
	want := 12 * h * h // attention 4H² + FFN 3·H·(8H/3) = 8H², plus 2H norms
	slack := 3 * h     // norm gains + FFN rounding
	if got < want || got > want+8*h+slack {
		t.Fatalf("block params = %d, want ≈ %d", got, want)
	}
	_ = tensor.New(1) // keep import
}
