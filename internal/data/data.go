// Package data generates the deterministic synthetic token streams the
// reproduction trains on. The paper never evaluates model quality — only
// training throughput — so any token source with the right (G, S, V) shape
// exercises the identical code path; determinism is what matters, because
// every parallel strategy must consume exactly the same microbatches for
// the gradient-equivalence tests to be meaningful.
package data

import "weipipe/internal/tensor"

// Batch is one microbatch: G sequences of S tokens plus next-token targets.
type Batch struct {
	Tokens  [][]int
	Targets [][]int
}

// G returns the microbatch size.
func (b Batch) G() int { return len(b.Tokens) }

// S returns the sequence length.
func (b Batch) S() int { return len(b.Tokens[0]) }

// Generator produces deterministic microbatches. The stream models a simple
// Markov-ish source (each token biased toward a neighbourhood of the
// previous one) so the model has actual structure to learn — losses fall
// during the examples rather than hovering at ln(V).
type Generator struct {
	rng   *tensor.RNG
	vocab int
	seq   int
}

// NewGenerator returns a generator for the given vocab size and sequence
// length, seeded deterministically.
func NewGenerator(seed uint64, vocab, seq int) *Generator {
	if vocab < 2 || seq < 1 {
		panic("data: need vocab ≥ 2 and seq ≥ 1")
	}
	return &Generator{rng: tensor.NewRNG(seed), vocab: vocab, seq: seq}
}

// Next produces one microbatch of size g. Targets are the next token in the
// stream (the final target wraps to the sequence start, keeping shapes
// uniform).
func (gen *Generator) Next(g int) Batch {
	b := Batch{
		Tokens:  make([][]int, g),
		Targets: make([][]int, g),
	}
	for gi := 0; gi < g; gi++ {
		seq := make([]int, gen.seq+1)
		seq[0] = gen.rng.Intn(gen.vocab)
		for si := 1; si <= gen.seq; si++ {
			if gen.rng.Float64() < 0.75 {
				// stay near the previous token: learnable structure
				seq[si] = (seq[si-1] + 1 + gen.rng.Intn(3)) % gen.vocab
			} else {
				seq[si] = gen.rng.Intn(gen.vocab)
			}
		}
		b.Tokens[gi] = seq[:gen.seq]
		b.Targets[gi] = seq[1 : gen.seq+1]
	}
	return b
}

// Microbatches returns the n microbatches of one training iteration. All
// strategies must be fed the result of the same call (same seed) in index
// order: microbatch i is processed as the pipeline's i-th microbatch.
func Microbatches(seed uint64, n, g, vocab, seq int) []Batch {
	gen := NewGenerator(seed, vocab, seq)
	out := make([]Batch, n)
	for i := range out {
		out[i] = gen.Next(g)
	}
	return out
}

// Split partitions n microbatches round-robin across p data-parallel ranks:
// rank r receives microbatches r, r+p, r+2p, … . Used by FSDP/DP and by
// WeiPipe, where each worker trains its own microbatches end to end.
func Split(batches []Batch, p int) [][]Batch {
	out := make([][]Batch, p)
	for i, b := range batches {
		out[i%p] = append(out[i%p], b)
	}
	return out
}
