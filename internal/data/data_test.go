package data

import (
	"testing"
)

func TestGeneratorShapes(t *testing.T) {
	g := NewGenerator(1, 16, 8)
	b := g.Next(4)
	if b.G() != 4 || b.S() != 8 {
		t.Fatalf("G/S = %d/%d", b.G(), b.S())
	}
	for gi := range b.Tokens {
		if len(b.Tokens[gi]) != 8 || len(b.Targets[gi]) != 8 {
			t.Fatal("ragged batch")
		}
		for si := range b.Tokens[gi] {
			if tok := b.Tokens[gi][si]; tok < 0 || tok >= 16 {
				t.Fatalf("token %d out of range", tok)
			}
			if tgt := b.Targets[gi][si]; tgt < 0 || tgt >= 16 {
				t.Fatalf("target %d out of range", tgt)
			}
		}
	}
}

func TestTargetsAreShiftedTokens(t *testing.T) {
	g := NewGenerator(2, 32, 6)
	b := g.Next(2)
	for gi := range b.Tokens {
		for si := 0; si < 5; si++ {
			if b.Targets[gi][si] != b.Tokens[gi][si+1] {
				t.Fatalf("target[%d][%d] not next token", gi, si)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Microbatches(7, 3, 2, 16, 4)
	b := Microbatches(7, 3, 2, 16, 4)
	for i := range a {
		for gi := range a[i].Tokens {
			for si := range a[i].Tokens[gi] {
				if a[i].Tokens[gi][si] != b[i].Tokens[gi][si] {
					t.Fatal("same seed diverged")
				}
			}
		}
	}
	c := Microbatches(8, 3, 2, 16, 4)
	same := true
	for i := range a {
		for gi := range a[i].Tokens {
			for si := range a[i].Tokens[gi] {
				if a[i].Tokens[gi][si] != c[i].Tokens[gi][si] {
					same = false
				}
			}
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestSplitRoundRobin(t *testing.T) {
	batches := Microbatches(1, 7, 1, 8, 2)
	parts := Split(batches, 3)
	if len(parts[0]) != 3 || len(parts[1]) != 2 || len(parts[2]) != 2 {
		t.Fatalf("split sizes %d %d %d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	// rank r gets batches r, r+3, ...
	if &parts[1][1].Tokens[0][0] != &batches[4].Tokens[0][0] {
		t.Fatal("round-robin order broken")
	}
}

func TestBadArgsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("vocab=1 did not panic")
		}
	}()
	NewGenerator(1, 1, 4)
}
