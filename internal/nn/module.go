// Package nn implements the Llama-style transformer layers used throughout
// the WeiPipe reproduction, with hand-written backward passes.
//
// The backward pass of every module is split in two, mirroring the
// decoupling that zero-bubble pipeline schedules (ZB1/ZB2 and the paper's
// WZB1/WZB2) rely on:
//
//   - BackwardInput ("B pass"): given dL/dy, computes dL/dx and stashes the
//     per-matmul local gradients that the weight pass needs.
//   - BackwardParams ("W pass"): consumes the stash and accumulates dL/dW.
//
// Calling BackwardInput followed by BackwardParams is numerically identical
// to a fused backward; schedules are free to run the W pass much later (and
// on the paper's WeiPipe ring, on the same worker that ran the B pass).
package nn

import "weipipe/internal/tensor"

// Module is a transformer sub-network with an explicit split backward.
//
// Forward must be pure given (x, cache): calling it twice with the same
// inputs repopulates the same cache, which is what recomputation (gradient
// checkpointing) relies on.
type Module interface {
	// Name identifies the module within its model (e.g. "block3").
	Name() string
	// Params returns the module's parameter set. The returned set aliases
	// the live weights; mutating its tensors updates the module.
	Params() *ParamSet
	// Forward computes the module output for activations x ([G*S, H] for
	// interior modules), recording intermediates needed by backward in cache.
	Forward(x *tensor.Tensor, cache *Cache) *tensor.Tensor
	// BackwardInput computes dL/dx from dL/dy (B pass) and stashes what the
	// W pass needs into cache. It must be called after Forward on the same
	// cache.
	BackwardInput(dy *tensor.Tensor, cache *Cache) *tensor.Tensor
	// BackwardParams accumulates dL/dW into grads (W pass). grads must have
	// the same layout as Params(). It must be called after BackwardInput on
	// the same cache.
	BackwardParams(cache *Cache, grads *ParamSet)
}

// Backward runs the B pass and W pass back to back (the fused form used by
// schedules that do not decouple them, e.g. 1F1B and WeiPipe-Interleave).
func Backward(m Module, dy *tensor.Tensor, cache *Cache, grads *ParamSet) *tensor.Tensor {
	dx := m.BackwardInput(dy, cache)
	m.BackwardParams(cache, grads)
	return dx
}
