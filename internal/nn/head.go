package nn

import (
	"math"

	"weipipe/internal/tensor"
)

// OutputHead is the model's final RMSNorm, the [H, V] language-model
// projection, and a fused mean cross-entropy loss. It sits at the tail of
// the module list; pipeline runtimes call ForwardLoss with targets and then
// start the backward pass from BackwardFromLoss.
type OutputHead struct {
	name   string
	Norm   *RMSNorm
	W      *tensor.Tensor // [H, V]
	params *ParamSet
	// LossScale multiplies the loss gradient at its source (0 means 1) —
	// the hook dynamic fp16 loss scaling uses. Downstream gradients scale
	// linearly; the optimizer unscales before stepping.
	LossScale float32
}

// NewOutputHead builds the final norm + LM head for hidden size h, vocab v.
func NewOutputHead(name string, h, v int, rng *tensor.RNG) *OutputHead {
	o := &OutputHead{
		name: name,
		Norm: NewRMSNorm(name+".norm", h),
		W:    tensor.New(h, v),
	}
	tensor.FillXavier(o.W, rng)
	p := NewParamSet()
	addPrefixed(p, "norm.", o.Norm.Params())
	p.Add("w", o.W)
	o.params = p
	return o
}

// Name implements Module.
func (o *OutputHead) Name() string { return o.name }

// Params implements Module.
func (o *OutputHead) Params() *ParamSet { return o.params }

// ForwardLoss computes the mean cross-entropy of the next-token predictions
// against targets ([G][S] token ids). It returns the scalar loss; the
// softmax probabilities and targets are cached for backward.
func (o *OutputHead) ForwardLoss(x *tensor.Tensor, targets [][]int, cache *Cache) float64 {
	normed := o.Norm.Forward(x, cache.Sub("norm"))
	n := x.Rows()
	v := o.W.Cols()
	logits := alloc(cache, n, v)
	tensor.MatMul(logits, normed, o.W)
	probs := alloc(cache, n, v)
	tensor.SoftmaxRows(probs, logits)

	g := len(targets)
	s := len(targets[0])
	if g*s != n {
		panic("nn: targets shape mismatch")
	}
	tgt := alloc(cache, n)
	flat := tgt.Data
	var loss float64
	for gi := 0; gi < g; gi++ {
		for si := 0; si < s; si++ {
			t := targets[gi][si]
			if t < 0 || t >= v {
				panic("nn: target id out of vocab range")
			}
			p := float64(probs.Data[(gi*s+si)*v+t])
			if p < 1e-30 {
				p = 1e-30
			}
			loss -= math.Log(p)
			flat[gi*s+si] = float32(t)
		}
	}
	cache.X = x
	cache.Put("normed", normed)
	cache.Put("probs", probs)
	cache.Put("targets", tgt)
	return loss / float64(n)
}

// Forward implements Module; the head requires targets, so plain Forward is
// only valid during recomputation after ForwardLoss stashed them.
func (o *OutputHead) Forward(x *tensor.Tensor, cache *Cache) *tensor.Tensor {
	tgt := cache.Get("targets")
	g, s := cache.G, cache.S
	targets := make([][]int, g)
	for gi := 0; gi < g; gi++ {
		targets[gi] = make([]int, s)
		for si := 0; si < s; si++ {
			targets[gi][si] = int(tgt.Data[gi*s+si])
		}
	}
	o.ForwardLoss(x, targets, cache)
	return nil
}

// BackwardFromLoss starts backpropagation from the scalar loss:
// dlogits = (softmax − onehot(target)) / N. It returns dL/dx of the head's
// input and stashes what the W pass needs. Equivalent to
// BackwardInput(nil, cache).
func (o *OutputHead) BackwardFromLoss(cache *Cache) *tensor.Tensor {
	probs := cache.Get("probs")
	tgt := cache.Get("targets")
	n := probs.Rows()
	v := probs.Cols()
	dlogits := alloc(cache, n, v)
	dlogits.CopyFrom(probs)
	invN := float32(1.0 / float64(n))
	if o.LossScale != 0 {
		invN *= o.LossScale
	}
	for i := 0; i < n; i++ {
		row := dlogits.Data[i*v : (i+1)*v]
		row[int(tgt.Data[i])] -= 1
		for j := range row {
			row[j] *= invN
		}
	}

	dnormed := alloc(cache, n, o.W.Rows())
	tensor.MatMulTB(dnormed, dlogits, o.W)
	dx := o.Norm.BackwardInput(dnormed, cache.Sub("norm"))

	cache.Put("dlogits", dlogits)
	return dx
}

// BackwardInput implements Module; dy is ignored because the head owns the
// loss (the gradient source).
func (o *OutputHead) BackwardInput(dy *tensor.Tensor, cache *Cache) *tensor.Tensor {
	return o.BackwardFromLoss(cache)
}

// BackwardParams implements Module (W pass).
func (o *OutputHead) BackwardParams(cache *Cache, grads *ParamSet) {
	normed := cache.Get("normed")
	dlogits := cache.Get("dlogits")
	tensor.MatMulTAAcc(grads.Get("w"), normed, dlogits)
	o.Norm.BackwardParams(cache.Sub("norm"), subGrads(grads, "norm."))
}

// ForwardLogits computes the final-norm + LM projection without a loss —
// the inference path used by generation.
func (o *OutputHead) ForwardLogits(x *tensor.Tensor, cache *Cache) *tensor.Tensor {
	normed := o.Norm.Forward(x, cache.Sub("norm"))
	logits := alloc(cache, x.Rows(), o.W.Cols())
	tensor.MatMul(logits, normed, o.W)
	return logits
}
