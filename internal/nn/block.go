package nn

import "weipipe/internal/tensor"

// Block is one Llama-style transformer layer:
//
//	y = x + Attention(RMSNorm(x))
//	z = y + FFN(RMSNorm(y))
//
// A Block is the unit of weight circulation in WeiPipe and the unit of stage
// assignment in the activation-passing baselines.
type Block struct {
	name   string
	Norm1  *RMSNorm
	Attn   *Attention
	Norm2  *RMSNorm
	Ffn    *FFN
	params *ParamSet

	// One-entry memo of the per-sub-layer views of the last gradient set seen
	// by BackwardParams. Pipeline runners accumulate every microbatch of an
	// iteration into one ParamSet, so the views are rebuilt once per
	// iteration instead of once per W pass (which would allocate in the
	// steady-state hot path).
	lastGrads *ParamSet
	gradViews [4]*ParamSet
}

// NewBlock builds a transformer layer with hidden size h, the given head
// count, FFN inner size f, and the shared rotary table rope (may be nil).
func NewBlock(name string, h, heads, f int, rope *RopeTable, rng *tensor.RNG) *Block {
	b := &Block{
		name:  name,
		Norm1: NewRMSNorm(name+".norm1", h),
		Attn:  NewAttention(name+".attn", h, heads, rope, rng.Split()),
		Norm2: NewRMSNorm(name+".norm2", h),
		Ffn:   NewFFN(name+".ffn", h, f, rng.Split()),
	}
	p := NewParamSet()
	addPrefixed(p, "norm1.", b.Norm1.Params())
	addPrefixed(p, "attn.", b.Attn.Params())
	addPrefixed(p, "norm2.", b.Norm2.Params())
	addPrefixed(p, "ffn.", b.Ffn.Params())
	b.params = p
	return b
}

func addPrefixed(dst *ParamSet, prefix string, src *ParamSet) {
	for _, n := range src.Names() {
		dst.Add(prefix+n, src.Get(n))
	}
}

// Name implements Module.
func (b *Block) Name() string { return b.name }

// Params implements Module. The set aliases the sub-layers' tensors, so
// SetFlat on a block updates attention and FFN weights in place.
func (b *Block) Params() *ParamSet { return b.params }

// Forward implements Module.
func (b *Block) Forward(x *tensor.Tensor, cache *Cache) *tensor.Tensor {
	x1 := b.Norm1.Forward(x, cache.Sub("norm1"))
	ao := b.Attn.Forward(x1, cache.Sub("attn"))
	y := alloc(cache, x.Shape()...)
	tensor.Add(y, x, ao)

	y1 := b.Norm2.Forward(y, cache.Sub("norm2"))
	fo := b.Ffn.Forward(y1, cache.Sub("ffn"))
	z := alloc(cache, x.Shape()...)
	tensor.Add(z, y, fo)

	cache.X = x
	return z
}

// BackwardInput implements Module (B pass).
func (b *Block) BackwardInput(dz *tensor.Tensor, cache *Cache) *tensor.Tensor {
	// FFN residual branch: z = y + ffn(norm2(y)).
	dy1 := b.Ffn.BackwardInput(dz, cache.Sub("ffn"))
	dyFfn := b.Norm2.BackwardInput(dy1, cache.Sub("norm2"))
	dy := alloc(cache, dz.Shape()...)
	tensor.Add(dy, dz, dyFfn)

	// Attention residual branch: y = x + attn(norm1(x)).
	dx1 := b.Attn.BackwardInput(dy, cache.Sub("attn"))
	dxAttn := b.Norm1.BackwardInput(dx1, cache.Sub("norm1"))
	dx := alloc(cache, dz.Shape()...)
	tensor.Add(dx, dy, dxAttn)
	return dx
}

// BackwardParams implements Module (W pass).
func (b *Block) BackwardParams(cache *Cache, grads *ParamSet) {
	v := b.views(grads)
	b.Norm1.BackwardParams(cache.Sub("norm1"), v[0])
	b.Attn.BackwardParams(cache.Sub("attn"), v[1])
	b.Norm2.BackwardParams(cache.Sub("norm2"), v[2])
	b.Ffn.BackwardParams(cache.Sub("ffn"), v[3])
}

// views returns the memoized sub-layer views of grads, rebuilding them only
// when a different gradient set is presented.
func (b *Block) views(grads *ParamSet) *[4]*ParamSet {
	if b.lastGrads != grads {
		b.gradViews = [4]*ParamSet{
			subGrads(grads, "norm1."),
			subGrads(grads, "attn."),
			subGrads(grads, "norm2."),
			subGrads(grads, "ffn."),
		}
		b.lastGrads = grads
	}
	return &b.gradViews
}

// subGrads returns a view of grads restricted to names with the given
// prefix, renamed without it, aliasing the underlying tensors.
func subGrads(grads *ParamSet, prefix string) *ParamSet {
	out := NewParamSet()
	for _, n := range grads.Names() {
		if len(n) > len(prefix) && n[:len(prefix)] == prefix {
			out.Add(n[len(prefix):], grads.Get(n))
		}
	}
	return out
}
