package nn

import "weipipe/internal/tensor"

// Block is one Llama-style transformer layer:
//
//	y = x + Attention(RMSNorm(x))
//	z = y + FFN(RMSNorm(y))
//
// A Block is the unit of weight circulation in WeiPipe and the unit of stage
// assignment in the activation-passing baselines.
type Block struct {
	name   string
	Norm1  *RMSNorm
	Attn   *Attention
	Norm2  *RMSNorm
	Ffn    *FFN
	params *ParamSet
}

// NewBlock builds a transformer layer with hidden size h, the given head
// count, FFN inner size f, and the shared rotary table rope (may be nil).
func NewBlock(name string, h, heads, f int, rope *RopeTable, rng *tensor.RNG) *Block {
	b := &Block{
		name:  name,
		Norm1: NewRMSNorm(name+".norm1", h),
		Attn:  NewAttention(name+".attn", h, heads, rope, rng.Split()),
		Norm2: NewRMSNorm(name+".norm2", h),
		Ffn:   NewFFN(name+".ffn", h, f, rng.Split()),
	}
	p := NewParamSet()
	addPrefixed(p, "norm1.", b.Norm1.Params())
	addPrefixed(p, "attn.", b.Attn.Params())
	addPrefixed(p, "norm2.", b.Norm2.Params())
	addPrefixed(p, "ffn.", b.Ffn.Params())
	b.params = p
	return b
}

func addPrefixed(dst *ParamSet, prefix string, src *ParamSet) {
	for _, n := range src.Names() {
		dst.Add(prefix+n, src.Get(n))
	}
}

// Name implements Module.
func (b *Block) Name() string { return b.name }

// Params implements Module. The set aliases the sub-layers' tensors, so
// SetFlat on a block updates attention and FFN weights in place.
func (b *Block) Params() *ParamSet { return b.params }

// Forward implements Module.
func (b *Block) Forward(x *tensor.Tensor, cache *Cache) *tensor.Tensor {
	x1 := b.Norm1.Forward(x, cache.Sub("norm1"))
	ao := b.Attn.Forward(x1, cache.Sub("attn"))
	y := tensor.New(x.Shape()...)
	tensor.Add(y, x, ao)

	y1 := b.Norm2.Forward(y, cache.Sub("norm2"))
	fo := b.Ffn.Forward(y1, cache.Sub("ffn"))
	z := tensor.New(x.Shape()...)
	tensor.Add(z, y, fo)

	cache.X = x
	return z
}

// BackwardInput implements Module (B pass).
func (b *Block) BackwardInput(dz *tensor.Tensor, cache *Cache) *tensor.Tensor {
	// FFN residual branch: z = y + ffn(norm2(y)).
	dy1 := b.Ffn.BackwardInput(dz, cache.Sub("ffn"))
	dyFfn := b.Norm2.BackwardInput(dy1, cache.Sub("norm2"))
	dy := tensor.New(dz.Shape()...)
	tensor.Add(dy, dz, dyFfn)

	// Attention residual branch: y = x + attn(norm1(x)).
	dx1 := b.Attn.BackwardInput(dy, cache.Sub("attn"))
	dxAttn := b.Norm1.BackwardInput(dx1, cache.Sub("norm1"))
	dx := tensor.New(dz.Shape()...)
	tensor.Add(dx, dy, dxAttn)
	return dx
}

// BackwardParams implements Module (W pass).
func (b *Block) BackwardParams(cache *Cache, grads *ParamSet) {
	b.Norm1.BackwardParams(cache.Sub("norm1"), subGrads(grads, "norm1."))
	b.Attn.BackwardParams(cache.Sub("attn"), subGrads(grads, "attn."))
	b.Norm2.BackwardParams(cache.Sub("norm2"), subGrads(grads, "norm2."))
	b.Ffn.BackwardParams(cache.Sub("ffn"), subGrads(grads, "ffn."))
}

// subGrads returns a view of grads restricted to names with the given
// prefix, renamed without it, aliasing the underlying tensors.
func subGrads(grads *ParamSet, prefix string) *ParamSet {
	out := NewParamSet()
	for _, n := range grads.Names() {
		if len(n) > len(prefix) && n[:len(prefix)] == prefix {
			out.Add(n[len(prefix):], grads.Get(n))
		}
	}
	return out
}
