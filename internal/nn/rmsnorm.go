package nn

import (
	"weipipe/internal/tensor"
)

// rmsEps is the variance floor used by RMSNorm, matching Llama's 1e-5.
const rmsEps = 1e-5

// RMSNorm is root-mean-square layer normalisation with a learned gain:
// y_j = g_j * x_j / sqrt(mean_j(x_j²) + eps), applied row-wise over the
// hidden dimension.
type RMSNorm struct {
	name string
	// Gain is the learned per-channel scale g, shape [H].
	Gain   *tensor.Tensor
	params *ParamSet
}

// NewRMSNorm returns an RMSNorm over hidden size h with unit gain.
func NewRMSNorm(name string, h int) *RMSNorm {
	g := tensor.New(h)
	g.Fill(1)
	p := NewParamSet()
	p.Add("g", g)
	return &RMSNorm{name: name, Gain: g, params: p}
}

// Name implements Module.
func (m *RMSNorm) Name() string { return m.name }

// Params implements Module.
func (m *RMSNorm) Params() *ParamSet { return m.params }

// Forward implements Module. x is [rows, H]. The row-wise normalisation
// runs through the tensor.Backend seam (tensor.RMSNormRows), which also
// stores 1/rms per row for the backward pass.
func (m *RMSNorm) Forward(x *tensor.Tensor, cache *Cache) *tensor.Tensor {
	h := m.Gain.Size()
	rows := x.Size() / h
	y := alloc(cache, rows, h)
	inv := alloc(cache, rows) // 1/rms per row
	tensor.RMSNormRows(y, inv, x, m.Gain, rmsEps)
	cache.X = x
	cache.Put("inv", inv)
	return y
}

// BackwardInput implements Module (B pass).
//
// With r = 1/rms(x):  dx_j = r·g_j·dy_j − x_j · r³/H · Σ_k dy_k·g_k·x_k.
func (m *RMSNorm) BackwardInput(dy *tensor.Tensor, cache *Cache) *tensor.Tensor {
	h := m.Gain.Size()
	x := cache.X
	inv := cache.Get("inv")
	rows := x.Size() / h
	dx := alloc(cache, rows, h)
	g := m.Gain.Data
	for i := 0; i < rows; i++ {
		xr := x.Data[i*h : (i+1)*h]
		dyr := dy.Data[i*h : (i+1)*h]
		dxr := dx.Data[i*h : (i+1)*h]
		r := inv.Data[i]
		var dot float64
		for j := range xr {
			dot += float64(dyr[j]) * float64(g[j]) * float64(xr[j])
		}
		c := r * r * r * float32(dot) / float32(h)
		for j := range xr {
			dxr[j] = r*g[j]*dyr[j] - xr[j]*c
		}
	}
	cache.Put("dy", dy)
	return dx
}

// BackwardParams implements Module (W pass): dg_j = Σ_rows dy_j·x_j·r.
func (m *RMSNorm) BackwardParams(cache *Cache, grads *ParamSet) {
	h := m.Gain.Size()
	x := cache.X
	inv := cache.Get("inv")
	dy := cache.Get("dy")
	dg := grads.Get("g").Data
	rows := x.Size() / h
	for i := 0; i < rows; i++ {
		xr := x.Data[i*h : (i+1)*h]
		dyr := dy.Data[i*h : (i+1)*h]
		r := inv.Data[i]
		for j := range xr {
			dg[j] += dyr[j] * xr[j] * r
		}
	}
}
