package nn

import (
	"math"
	"testing"
	"testing/quick"

	"weipipe/internal/tensor"
)

func TestRMSNormUnitGainNormalises(t *testing.T) {
	m := NewRMSNorm("n", 16)
	rng := tensor.NewRNG(1)
	x := tensor.New(4, 16)
	tensor.FillNormal(x, rng, 3)
	y := m.Forward(x, NewCache(1, 4))
	for i := 0; i < 4; i++ {
		var ss float64
		for _, v := range y.Data[i*16 : (i+1)*16] {
			ss += float64(v) * float64(v)
		}
		rms := math.Sqrt(ss / 16)
		if math.Abs(rms-1) > 1e-2 {
			t.Fatalf("row %d rms = %v, want ≈1", i, rms)
		}
	}
}

func TestRMSNormGainScales(t *testing.T) {
	m := NewRMSNorm("n", 4)
	m.Gain.Data[2] = 5
	x := tensor.New(1, 4)
	x.Fill(1)
	y := m.Forward(x, NewCache(1, 1))
	if math.Abs(float64(y.Data[2]/y.Data[0])-5) > 1e-5 {
		t.Fatalf("gain not applied: %v", y.Data)
	}
}

func TestRopeRoundTripAndNormPreservation(t *testing.T) {
	rope := NewRopeTable(16, 8)
	rng := tensor.NewRNG(2)
	q := tensor.New(16, 8)
	tensor.FillNormal(q, rng, 1)
	orig := q.Clone()

	rope.Apply(q)
	// rotation preserves per-position norm
	for pos := 0; pos < 16; pos++ {
		var a, b float64
		for i := 0; i < 8; i++ {
			a += float64(orig.Data[pos*8+i]) * float64(orig.Data[pos*8+i])
			b += float64(q.Data[pos*8+i]) * float64(q.Data[pos*8+i])
		}
		if math.Abs(a-b) > 1e-3 {
			t.Fatalf("pos %d: norm %v -> %v", pos, a, b)
		}
	}
	rope.ApplyInverse(q)
	for i := range q.Data {
		if math.Abs(float64(q.Data[i]-orig.Data[i])) > 1e-5 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, q.Data[i], orig.Data[i])
		}
	}
}

func TestRopeRelativeProperty(t *testing.T) {
	// RoPE's defining property: dot(R_m q, R_n k) depends only on n−m.
	rope := NewRopeTable(32, 8)
	rng := tensor.NewRNG(3)
	q := tensor.New(1, 8)
	k := tensor.New(1, 8)
	tensor.FillNormal(q, rng, 1)
	tensor.FillNormal(k, rng, 1)

	dotAt := func(m, n int) float64 {
		buf := tensor.New(32, 8)
		for i := 0; i < 8; i++ {
			buf.Data[m*8+i] = q.Data[i]
		}
		buf2 := tensor.New(32, 8)
		for i := 0; i < 8; i++ {
			buf2.Data[n*8+i] = k.Data[i]
		}
		rope.Apply(buf)
		rope.Apply(buf2)
		var s float64
		for i := 0; i < 8; i++ {
			s += float64(buf.Data[m*8+i]) * float64(buf2.Data[n*8+i])
		}
		return s
	}
	d1 := dotAt(0, 3)
	d2 := dotAt(7, 10)
	d3 := dotAt(20, 23)
	if math.Abs(d1-d2) > 1e-3 || math.Abs(d1-d3) > 1e-3 {
		t.Fatalf("relative property violated: %v %v %v", d1, d2, d3)
	}
}

func TestRopeApplyAllMatchesPerHead(t *testing.T) {
	const S, heads, d = 4, 2, 6
	rope := NewRopeTable(S, d)
	rng := tensor.NewRNG(4)
	full := tensor.New(2*S, heads*d) // G=2
	tensor.FillNormal(full, rng, 1)
	want := full.Clone()

	// reference: gather each (g,h), rotate, scatter
	for g := 0; g < 2; g++ {
		for h := 0; h < heads; h++ {
			buf := tensor.New(S, d)
			gatherHead(buf, want, g, h, S, d, heads*d)
			rope.Apply(buf)
			scatterHead(want, buf, g, h, S, d, heads*d)
		}
	}
	rope.ApplyAll(full, S, heads, 1)
	for i := range full.Data {
		if math.Abs(float64(full.Data[i]-want.Data[i])) > 1e-6 {
			t.Fatalf("ApplyAll mismatch at %d", i)
		}
	}
}

func TestAttentionCausality(t *testing.T) {
	// Changing the input at position j must not change outputs at positions
	// i < j (within the same sequence), and must not change the other
	// sequence in the batch at all.
	const H, heads, S, G = 8, 2, 6, 2
	rng := tensor.NewRNG(5)
	rope := NewRopeTable(S, H/heads)
	a := NewAttention("attn", H, heads, rope, rng)

	x := tensor.New(G*S, H)
	tensor.FillNormal(x, rng, 1)
	y1 := a.Forward(x, NewCache(G, S))

	x2 := x.Clone()
	const j = 3
	for c := 0; c < H; c++ {
		x2.Data[j*H+c] += 1.5 // perturb position j of sequence 0
	}
	y2 := a.Forward(x2, NewCache(G, S))

	for i := 0; i < S; i++ {
		var diff float64
		for c := 0; c < H; c++ {
			diff += math.Abs(float64(y1.Data[i*H+c] - y2.Data[i*H+c]))
		}
		if i < j && diff > 1e-5 {
			t.Errorf("seq0 pos %d (< %d) changed by %v: causality broken", i, j, diff)
		}
		if i >= j && diff < 1e-7 {
			t.Errorf("seq0 pos %d (>= %d) unchanged: attention inert", i, j)
		}
	}
	// sequence 1 untouched
	for i := S; i < 2*S; i++ {
		for c := 0; c < H; c++ {
			if y1.Data[i*H+c] != y2.Data[i*H+c] {
				t.Fatalf("batch leakage at pos %d", i)
			}
		}
	}
}

func TestAttentionProbsRowsSumToOne(t *testing.T) {
	const H, heads, S, G = 8, 2, 5, 1
	rng := tensor.NewRNG(6)
	a := NewAttention("attn", H, heads, nil, rng)
	x := tensor.New(G*S, H)
	tensor.FillNormal(x, rng, 1)
	c := NewCache(G, S)
	a.Forward(x, c)
	probs := c.Get("probs")
	for r := 0; r < probs.Rows(); r++ {
		var sum float64
		row := probs.Data[r*S : (r+1)*S]
		for j, v := range row {
			sum += float64(v)
			// causal: key j beyond query position must have zero prob
			if j > r%S && v != 0 {
				t.Fatalf("prob row %d has mass at masked col %d: %v", r, j, v)
			}
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("prob row %d sums to %v", r, sum)
		}
	}
}

func TestHeadUniformLossIsLogV(t *testing.T) {
	const H, V = 8, 11
	rng := tensor.NewRNG(7)
	o := NewOutputHead("head", H, V, rng)
	o.W.Zero() // zero logits → uniform distribution
	x := tensor.New(3, H)
	tensor.FillNormal(x, rng, 1)
	targets := [][]int{{1, 5, 9}}
	loss := o.ForwardLoss(x, targets, NewCache(1, 3))
	if math.Abs(loss-math.Log(V)) > 1e-5 {
		t.Fatalf("uniform loss = %v, want ln(%d) = %v", loss, V, math.Log(V))
	}
}

func TestHeadGradientSumsToZeroOverVocab(t *testing.T) {
	// softmax−onehot rows sum to 0, so dlogits rows must too.
	const H, V = 8, 7
	rng := tensor.NewRNG(8)
	o := NewOutputHead("head", H, V, rng)
	x := tensor.New(4, H)
	tensor.FillNormal(x, rng, 1)
	c := NewCache(1, 4)
	o.ForwardLoss(x, [][]int{{0, 1, 2, 3}}, c)
	o.BackwardFromLoss(c)
	dl := c.Get("dlogits")
	for r := 0; r < 4; r++ {
		var s float64
		for _, v := range dl.Data[r*V : (r+1)*V] {
			s += float64(v)
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("dlogits row %d sums to %v", r, s)
		}
	}
}

func TestEmbeddingLookupAndScatter(t *testing.T) {
	const V, H = 5, 3
	rng := tensor.NewRNG(9)
	e := NewEmbedding("emb", V, H, rng)
	c := NewCache(1, 2)
	out := e.ForwardTokens([][]int{{2, 2}}, c)
	for j := 0; j < H; j++ {
		if out.Data[j] != e.W.Data[2*H+j] || out.Data[H+j] != e.W.Data[2*H+j] {
			t.Fatalf("lookup wrong: %v", out.Data)
		}
	}
	// repeated token accumulates both rows of dy
	dy := tensor.New(2, H)
	dy.Fill(1)
	e.BackwardInput(dy, c)
	g := e.Params().NewLike()
	e.BackwardParams(c, g)
	dw := g.Get("w")
	for j := 0; j < H; j++ {
		if dw.Data[2*H+j] != 2 {
			t.Fatalf("scatter-add wrong: %v", dw.Data)
		}
	}
	// untouched rows stay zero
	if dw.Data[0] != 0 || dw.Data[4*H] != 0 {
		t.Fatal("grad leaked to unused rows")
	}
}

func TestParamSetFlattenRoundTrip(t *testing.T) {
	p := NewParamSet()
	a := tensor.New(2, 3)
	b := tensor.New(4)
	for i := range a.Data {
		a.Data[i] = float32(i)
	}
	for i := range b.Data {
		b.Data[i] = float32(10 + i)
	}
	p.Add("a", a)
	p.Add("b", b)
	if p.Size() != 10 {
		t.Fatalf("Size = %d", p.Size())
	}
	flat := p.Flatten()
	q := p.NewLike()
	q.SetFlat(flat)
	if q.MaxAbsDiff(p) != 0 {
		t.Fatal("SetFlat(Flatten) not identity")
	}
	q.AddFlat(flat)
	want := p.Clone()
	want.Scale(2)
	if q.MaxAbsDiff(want) != 0 {
		t.Fatal("AddFlat wrong")
	}
}

func TestParamSetFlattenOrderIsDeterministicProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		mk := func() *ParamSet {
			b := NewBlock("b", 8, 2, 12, nil, tensor.NewRNG(seed))
			_ = rng
			return b.Params()
		}
		p1, p2 := mk(), mk()
		f1, f2 := p1.Flatten(), p2.Flatten()
		for i := range f1 {
			if f1[i] != f2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockParamsAliasSubLayers(t *testing.T) {
	rng := tensor.NewRNG(10)
	b := NewBlock("b", 8, 2, 12, nil, rng)
	flat := b.Params().Flatten()
	for i := range flat {
		flat[i] += 1
	}
	b.Params().SetFlat(flat)
	// Wq must have moved
	if b.Attn.Wq.Data[0] == 0 {
		t.Skip("unlikely zero")
	}
	got := b.Params().Flatten()
	for i := range got {
		if got[i] != flat[i] {
			t.Fatal("SetFlat did not propagate to sub-layers")
		}
	}
}

func TestCacheSubAndTake(t *testing.T) {
	c := NewCache(2, 3)
	if c.Tokens() != 6 {
		t.Fatalf("Tokens = %d", c.Tokens())
	}
	s1 := c.Sub("a")
	s2 := c.Sub("a")
	if s1 != s2 {
		t.Fatal("Sub must return the same child")
	}
	x := tensor.New(1)
	c.Put("k", x)
	if !c.Has("k") {
		t.Fatal("Has false after Put")
	}
	if c.Take("k") != x {
		t.Fatal("Take returned wrong tensor")
	}
	if c.Has("k") {
		t.Fatal("Take did not remove")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get on missing key did not panic")
		}
	}()
	c.Get("k")
}
