package nn

import (
	"math"
	"testing"
	"testing/quick"

	"weipipe/internal/tensor"
)

// Property: RMSNorm is scale-invariant in its input — y(αx) == y(x) for
// α > 0 (the RMS divides the scale back out).
func TestRMSNormScaleInvarianceProperty(t *testing.T) {
	f := func(seed uint64, alphaRaw uint8) bool {
		alpha := float32(alphaRaw%50)/10 + 0.5 // 0.5 .. 5.4
		rng := tensor.NewRNG(seed)
		m := NewRMSNorm("n", 8)
		tensor.FillNormal(m.Gain, rng, 1)
		x := tensor.New(3, 8)
		tensor.FillNormal(x, rng, 2)
		xs := x.Clone()
		tensor.Scale(xs, xs, alpha)

		y := m.Forward(x, NewCache(1, 3))
		ys := m.Forward(xs, NewCache(1, 3))
		for i := range y.Data {
			// eps breaks exact invariance for tiny inputs; allow slack
			if math.Abs(float64(y.Data[i]-ys.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: attention output is linear in V — scaling Wv scales the
// pre-projection context linearly, so out(x; αWv) == α·out(x; Wv) with Wo
// fixed... (softmax depends only on q, k).
func TestAttentionLinearInVProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		a := NewAttention("a", 8, 2, nil, rng)
		x := tensor.New(2*4, 8)
		tensor.FillNormal(x, rng, 1)
		y1 := a.Forward(x, NewCache(2, 4))
		tensor.Scale(a.Wv, a.Wv, 3)
		y3 := a.Forward(x, NewCache(2, 4))
		for i := range y1.Data {
			if math.Abs(float64(y3.Data[i]-3*y1.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the head's cross-entropy is invariant to a constant shift of
// every logit (softmax normalisation).
func TestHeadShiftInvarianceProperty(t *testing.T) {
	f := func(seed uint64, shiftRaw int8) bool {
		rng := tensor.NewRNG(seed)
		o := NewOutputHead("h", 8, 7, rng)
		x := tensor.New(3, 8)
		tensor.FillNormal(x, rng, 1)
		targets := [][]int{{1, 3, 5}}
		base := o.ForwardLoss(x, targets, NewCache(1, 3))

		// shift all logits by adding a constant column bias via W: append
		// the shift through a rank-1 update is complex; instead verify via
		// direct softmax property on a second head whose W columns all get
		// the same constant added per row — equivalent to shifting logits
		// by c·Σnormed which differs per row; so instead test the loss of
		// explicitly shifted logits through Sample-free math:
		shift := float32(shiftRaw) / 8
		logits := o.ForwardLogits(x, NewCache(1, 3))
		l1 := ceOf(logits, targets[0])
		for i := range logits.Data {
			logits.Data[i] += shift
		}
		l2 := ceOf(logits, targets[0])
		return math.Abs(l1-l2) < 1e-4 && base > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// ceOf computes mean cross-entropy of [n, V] logits against targets.
func ceOf(logits *tensor.Tensor, targets []int) float64 {
	n := logits.Rows()
	v := logits.Cols()
	probs := tensor.New(n, v)
	tensor.SoftmaxRows(probs, logits)
	var loss float64
	for i := 0; i < n; i++ {
		loss -= math.Log(float64(probs.Data[i*v+targets[i]]))
	}
	return loss / float64(n)
}

// Property: Block backward propagates exactly one gradient per input
// element — feeding dz of zeros yields dx of zeros (no gradient leakage),
// and the residual path guarantees dx ≠ 0 for non-zero dz.
func TestBlockGradientFlowProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		b := NewBlock("b", 8, 2, 12, nil, rng)
		x := tensor.New(2*3, 8)
		tensor.FillNormal(x, rng, 1)
		c := NewCache(2, 3)
		b.Forward(x, c)

		zero := tensor.New(2*3, 8)
		dx0 := b.BackwardInput(zero, c)
		if dx0.MaxAbs() != 0 {
			return false
		}
		c2 := NewCache(2, 3)
		b.Forward(x, c2)
		dz := tensor.New(2*3, 8)
		tensor.FillNormal(dz, rng, 1)
		dx := b.BackwardInput(dz, c2)
		return dx.MaxAbs() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
