package nn

import "weipipe/internal/tensor"

// FFN is the SwiGLU feed-forward network used by Llama-style models:
//
//	y = (SiLU(x·W1) ⊙ (x·W3)) · W2
//
// with W1, W3 of shape [H, F] and W2 of shape [F, H]. With F ≈ 8H/3 the
// three matrices hold ≈8H² parameters, which together with attention's 4H²
// gives the 12H² per-layer weight volume the paper's analysis uses.
type FFN struct {
	name   string
	W1     *tensor.Tensor // gate proj [H, F]
	W3     *tensor.Tensor // up proj   [H, F]
	W2     *tensor.Tensor // down proj [F, H]
	params *ParamSet
}

// NewFFN builds a SwiGLU FFN with hidden size h and inner size f.
func NewFFN(name string, h, f int, rng *tensor.RNG) *FFN {
	m := &FFN{
		name: name,
		W1:   tensor.New(h, f),
		W3:   tensor.New(h, f),
		W2:   tensor.New(f, h),
	}
	tensor.FillXavier(m.W1, rng)
	tensor.FillXavier(m.W3, rng)
	tensor.FillXavier(m.W2, rng)
	p := NewParamSet()
	p.Add("w1", m.W1)
	p.Add("w3", m.W3)
	p.Add("w2", m.W2)
	m.params = p
	return m
}

// Name implements Module.
func (m *FFN) Name() string { return m.name }

// Params implements Module.
func (m *FFN) Params() *ParamSet { return m.params }

// Forward implements Module. x is [rows, H].
func (m *FFN) Forward(x *tensor.Tensor, cache *Cache) *tensor.Tensor {
	rows := x.Rows()
	f := m.W1.Cols()
	h := m.W2.Cols()

	u := alloc(cache, rows, f)
	up := alloc(cache, rows, f)
	tensor.MatMul(u, x, m.W1)
	tensor.MatMul(up, x, m.W3)

	hid := alloc(cache, rows, f)
	tensor.SiLU(hid, u)
	tensor.Mul(hid, hid, up)

	y := alloc(cache, rows, h)
	tensor.MatMul(y, hid, m.W2)

	cache.X = x
	cache.Put("u", u)
	cache.Put("up", up)
	cache.Put("hid", hid)
	return y
}

// BackwardInput implements Module (B pass).
func (m *FFN) BackwardInput(dy *tensor.Tensor, cache *Cache) *tensor.Tensor {
	x := cache.X
	u := cache.Get("u")
	up := cache.Get("up")
	rows := x.Rows()
	f := m.W1.Cols()

	dhid := alloc(cache, rows, f)
	tensor.MatMulTB(dhid, dy, m.W2) // dhid = dy·W2ᵀ

	// hid = silu(u) ⊙ up
	dup := alloc(cache, rows, f)
	tensor.SiLU(dup, u)        // reuse: silu(u)
	tensor.Mul(dup, dup, dhid) // dup = dhid ⊙ silu(u)

	du := alloc(cache, rows, f)
	tensor.Mul(du, dhid, up)       // dhid ⊙ up
	tensor.SiLUBackward(du, u, du) // du = (dhid⊙up) · silu'(u)

	dx := alloc(cache, rows, x.Cols())
	tensor.MatMulTB(dx, du, m.W1)
	tensor.MatMulTBAcc(dx, dup, m.W3)

	cache.Put("du", du)
	cache.Put("dup", dup)
	cache.Put("dy", dy)
	return dx
}

// BackwardParams implements Module (W pass).
func (m *FFN) BackwardParams(cache *Cache, grads *ParamSet) {
	x := cache.X
	hid := cache.Get("hid")
	du := cache.Get("du")
	dup := cache.Get("dup")
	dy := cache.Get("dy")
	tensor.MatMulTAAcc(grads.Get("w1"), x, du)
	tensor.MatMulTAAcc(grads.Get("w3"), x, dup)
	tensor.MatMulTAAcc(grads.Get("w2"), hid, dy)
}
