package nn

import (
	"math"
	"testing"

	"weipipe/internal/tensor"
)

// tinyNet is a full miniature model: embedding, two blocks, output head.
type tinyNet struct {
	embed  *Embedding
	blocks []*Block
	head   *OutputHead
	g, s   int
}

func newTinyNet(t testing.TB, seed uint64) *tinyNet {
	t.Helper()
	const (
		V     = 13
		H     = 8
		heads = 2
		F     = 12
		L     = 2
		S     = 5
		G     = 2
	)
	rng := tensor.NewRNG(seed)
	rope := NewRopeTable(S, H/heads)
	net := &tinyNet{g: G, s: S}
	net.embed = NewEmbedding("embed", V, H, rng.Split())
	for i := 0; i < L; i++ {
		net.blocks = append(net.blocks, NewBlock("block", H, heads, F, rope, rng.Split()))
	}
	net.head = NewOutputHead("head", H, V, rng.Split())
	return net
}

func (n *tinyNet) modules() []Module {
	ms := []Module{n.embed}
	for _, b := range n.blocks {
		ms = append(ms, b)
	}
	ms = append(ms, n.head)
	return ms
}

func (n *tinyNet) data(seed uint64) (tokens, targets [][]int) {
	rng := tensor.NewRNG(seed)
	tokens = make([][]int, n.g)
	targets = make([][]int, n.g)
	for gi := 0; gi < n.g; gi++ {
		tokens[gi] = make([]int, n.s)
		targets[gi] = make([]int, n.s)
		for si := 0; si < n.s; si++ {
			tokens[gi][si] = rng.Intn(13)
			targets[gi][si] = rng.Intn(13)
		}
	}
	return tokens, targets
}

// loss runs a pure forward pass and returns the scalar loss.
func (n *tinyNet) loss(tokens, targets [][]int) float64 {
	c := NewCache(n.g, n.s)
	x := n.embed.ForwardTokens(tokens, c)
	for _, b := range n.blocks {
		x = b.Forward(x, NewCache(n.g, n.s))
	}
	return n.head.ForwardLoss(x, targets, NewCache(n.g, n.s))
}

// lossAndGrads runs forward + full backward, returning loss and per-module
// gradient sets aligned with modules().
func (n *tinyNet) lossAndGrads(tokens, targets [][]int) (float64, []*ParamSet) {
	mods := n.modules()
	caches := make([]*Cache, len(mods))
	for i := range caches {
		caches[i] = NewCache(n.g, n.s)
	}
	x := n.embed.ForwardTokens(tokens, caches[0])
	for i, b := range n.blocks {
		x = b.Forward(x, caches[i+1])
	}
	loss := n.head.ForwardLoss(x, targets, caches[len(mods)-1])

	grads := make([]*ParamSet, len(mods))
	for i, m := range mods {
		grads[i] = m.Params().NewLike()
	}
	var dy *tensor.Tensor
	for i := len(mods) - 1; i >= 0; i-- {
		dy = mods[i].BackwardInput(dy, caches[i])
		mods[i].BackwardParams(caches[i], grads[i])
	}
	return loss, grads
}

// checkGradFD compares an analytic gradient against a central finite
// difference on the loss, for a sample of parameter indices.
func checkGradFD(t *testing.T, net *tinyNet, tokens, targets [][]int,
	param *tensor.Tensor, grad *tensor.Tensor, name string) {
	t.Helper()
	const eps = 3e-3
	rng := tensor.NewRNG(99)
	nSamples := 6
	if param.Size() < nSamples {
		nSamples = param.Size()
	}
	for k := 0; k < nSamples; k++ {
		i := rng.Intn(param.Size())
		orig := param.Data[i]
		param.Data[i] = orig + eps
		lp := net.loss(tokens, targets)
		param.Data[i] = orig - eps
		lm := net.loss(tokens, targets)
		param.Data[i] = orig
		fd := (lp - lm) / (2 * eps)
		an := float64(grad.Data[i])
		tol := 3e-3 + 0.03*math.Abs(fd)
		if math.Abs(fd-an) > tol {
			t.Errorf("%s[%d]: analytic %.6f vs finite-diff %.6f", name, i, an, fd)
		}
	}
}

func TestGradCheckFullModel(t *testing.T) {
	net := newTinyNet(t, 1)
	tokens, targets := net.data(2)
	loss, grads := net.lossAndGrads(tokens, targets)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("bad loss %v", loss)
	}
	mods := net.modules()
	for mi, m := range mods {
		ps := m.Params()
		for _, pname := range ps.Names() {
			checkGradFD(t, net, tokens, targets, ps.Get(pname), grads[mi].Get(pname),
				m.Name()+"/"+pname)
		}
	}
}

func TestSplitBackwardMatchesFused(t *testing.T) {
	// Running B then W (split) must equal running nn.Backward (fused) —
	// the property zero-bubble schedules depend on.
	net := newTinyNet(t, 3)
	tokens, targets := net.data(4)
	_, split := net.lossAndGrads(tokens, targets)

	net2 := newTinyNet(t, 3)
	mods := net2.modules()
	caches := make([]*Cache, len(mods))
	for i := range caches {
		caches[i] = NewCache(net2.g, net2.s)
	}
	x := net2.embed.ForwardTokens(tokens, caches[0])
	for i, b := range net2.blocks {
		x = b.Forward(x, caches[i+1])
	}
	net2.head.ForwardLoss(x, targets, caches[len(mods)-1])
	fused := make([]*ParamSet, len(mods))
	var dy *tensor.Tensor
	for i := len(mods) - 1; i >= 0; i-- {
		fused[i] = mods[i].Params().NewLike()
		dy = Backward(mods[i], dy, caches[i], fused[i])
	}
	for i := range mods {
		if d := split[i].MaxAbsDiff(fused[i]); d > 1e-6 {
			t.Errorf("module %d: split vs fused grads differ by %v", i, d)
		}
	}
}

func TestBackwardParamsAccumulates(t *testing.T) {
	// Two microbatches accumulated into one grad set must equal the sum of
	// the per-microbatch grads.
	net := newTinyNet(t, 5)
	tok1, tgt1 := net.data(6)
	tok2, tgt2 := net.data(7)

	_, g1 := net.lossAndGrads(tok1, tgt1)
	_, g2 := net.lossAndGrads(tok2, tgt2)
	for i := range g1 {
		g1[i].AddInto(g2[i])
	}

	// accumulate both into a single set
	mods := net.modules()
	acc := make([]*ParamSet, len(mods))
	for i, m := range mods {
		acc[i] = m.Params().NewLike()
	}
	for _, d := range []struct{ tok, tgt [][]int }{{tok1, tgt1}, {tok2, tgt2}} {
		caches := make([]*Cache, len(mods))
		for i := range caches {
			caches[i] = NewCache(net.g, net.s)
		}
		x := net.embed.ForwardTokens(d.tok, caches[0])
		for i, b := range net.blocks {
			x = b.Forward(x, caches[i+1])
		}
		net.head.ForwardLoss(x, d.tgt, caches[len(mods)-1])
		var dy *tensor.Tensor
		for i := len(mods) - 1; i >= 0; i-- {
			dy = mods[i].BackwardInput(dy, caches[i])
			mods[i].BackwardParams(caches[i], acc[i])
		}
	}
	for i := range mods {
		if d := acc[i].MaxAbsDiff(g1[i]); d > 1e-5 {
			t.Errorf("module %d: accumulated grads differ by %v", i, d)
		}
	}
}

func TestRecomputationReproducesGrads(t *testing.T) {
	// Forward, drop intermediates (keep only X), re-run Forward, then
	// backward: grads must match the no-recompute run exactly.
	net := newTinyNet(t, 8)
	tokens, targets := net.data(9)
	_, want := net.lossAndGrads(tokens, targets)

	mods := net.modules()
	caches := make([]*Cache, len(mods))
	for i := range caches {
		caches[i] = NewCache(net.g, net.s)
	}
	x := net.embed.ForwardTokens(tokens, caches[0])
	inputs := make([]*tensor.Tensor, len(mods))
	for i, b := range net.blocks {
		inputs[i+1] = x
		x = b.Forward(x, caches[i+1])
	}
	inputs[len(mods)-1] = x
	net.head.ForwardLoss(x, targets, caches[len(mods)-1])

	// Drop everything except X (and the token/target stashes the edge
	// modules need to re-run).
	for i := 1; i < len(mods)-1; i++ {
		caches[i].DropAllButX()
	}

	grads := make([]*ParamSet, len(mods))
	var dy *tensor.Tensor
	for i := len(mods) - 1; i >= 0; i-- {
		grads[i] = mods[i].Params().NewLike()
		if i > 0 && i < len(mods)-1 {
			// recompute: forward again from the saved input
			mods[i].Forward(caches[i].X, caches[i])
		}
		dy = mods[i].BackwardInput(dy, caches[i])
		mods[i].BackwardParams(caches[i], grads[i])
	}
	for i := range mods {
		if d := grads[i].MaxAbsDiff(want[i]); d > 1e-6 {
			t.Errorf("module %d: recompute grads differ by %v", i, d)
		}
	}
}
