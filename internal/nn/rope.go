package nn

import (
	"math"

	"weipipe/internal/tensor"
)

// ropeBase is the frequency base of rotary position embeddings (Llama: 1e4).
const ropeBase = 10000.0

// RopeTable precomputes the cos/sin rotation factors for sequences up to
// maxSeq positions and a per-head dimension headDim (must be even).
type RopeTable struct {
	headDim int
	cos     []float32 // [maxSeq * headDim/2]
	sin     []float32
}

// NewRopeTable builds the rotation table.
func NewRopeTable(maxSeq, headDim int) *RopeTable {
	if headDim%2 != 0 {
		panic("nn: RoPE head dim must be even")
	}
	half := headDim / 2
	t := &RopeTable{
		headDim: headDim,
		cos:     make([]float32, maxSeq*half),
		sin:     make([]float32, maxSeq*half),
	}
	for pos := 0; pos < maxSeq; pos++ {
		for i := 0; i < half; i++ {
			theta := float64(pos) * math.Pow(ropeBase, -2*float64(i)/float64(headDim))
			t.cos[pos*half+i] = float32(math.Cos(theta))
			t.sin[pos*half+i] = float32(math.Sin(theta))
		}
	}
	return t
}

// Apply rotates q (shape [S, headDim], one head of one sequence) in place by
// the position-dependent angles. Pairs are (2i, 2i+1).
func (t *RopeTable) Apply(q *tensor.Tensor) {
	t.rotate(q, 1)
}

// ApplyInverse applies the inverse rotation in place. Because rotation is
// orthogonal, this is exactly the backward map for gradients: if y = R·x
// then dx = Rᵀ·dy = R⁻¹·dy.
func (t *RopeTable) ApplyInverse(q *tensor.Tensor) {
	t.rotate(q, -1)
}

// ApplyAllOffset is ApplyAll with a global position offset: row r encodes
// position offset + (r % seqLen). Sequence-parallel ranks use it to rotate
// their local token slice by its true positions.
func (t *RopeTable) ApplyAllOffset(q *tensor.Tensor, seqLen, heads int, dir float32, offset int) {
	d := t.headDim
	half := d / 2
	rows := q.Rows()
	width := q.Cols()
	if width != heads*d {
		panic("nn: RoPE ApplyAllOffset width mismatch")
	}
	for r := 0; r < rows; r++ {
		pos := offset + r%seqLen
		row := q.Data[r*width : (r+1)*width]
		for h := 0; h < heads; h++ {
			seg := row[h*d : (h+1)*d]
			for i := 0; i < half; i++ {
				c := t.cos[pos*half+i]
				sn := t.sin[pos*half+i] * dir
				a, b := seg[2*i], seg[2*i+1]
				seg[2*i] = a*c - b*sn
				seg[2*i+1] = a*sn + b*c
			}
		}
	}
}

// ApplyAll rotates every head segment of q, where q is [G*S, heads*headDim]
// and the position of row r is r % seqLen. dir=+1 rotates forward, dir=-1
// applies the inverse (gradient) rotation.
func (t *RopeTable) ApplyAll(q *tensor.Tensor, seqLen, heads int, dir float32) {
	d := t.headDim
	half := d / 2
	rows := q.Rows()
	width := q.Cols()
	if width != heads*d {
		panic("nn: RoPE ApplyAll width mismatch")
	}
	for r := 0; r < rows; r++ {
		pos := r % seqLen
		row := q.Data[r*width : (r+1)*width]
		for h := 0; h < heads; h++ {
			seg := row[h*d : (h+1)*d]
			for i := 0; i < half; i++ {
				c := t.cos[pos*half+i]
				sn := t.sin[pos*half+i] * dir
				a, b := seg[2*i], seg[2*i+1]
				seg[2*i] = a*c - b*sn
				seg[2*i+1] = a*sn + b*c
			}
		}
	}
}

func (t *RopeTable) rotate(q *tensor.Tensor, dir float32) {
	d := t.headDim
	half := d / 2
	s := q.Size() / d
	for pos := 0; pos < s; pos++ {
		row := q.Data[pos*d : (pos+1)*d]
		for i := 0; i < half; i++ {
			c := t.cos[pos*half+i]
			sn := t.sin[pos*half+i] * dir
			a, b := row[2*i], row[2*i+1]
			row[2*i] = a*c - b*sn
			row[2*i+1] = a*sn + b*c
		}
	}
}
