package nn

import (
	"fmt"

	"weipipe/internal/tensor"
)

// Cache carries a module's forward intermediates to its backward passes. One
// Cache instance corresponds to one (module, microbatch) pair; pipeline
// runtimes keep a cache per in-flight microbatch and drop it after the W
// pass, which is exactly the activation-memory lifetime the paper's memory
// analysis accounts for.
type Cache struct {
	// G and S are the microbatch size and sequence length of the activations
	// flowing through the module.
	G, S int
	// X is the module input, saved by Forward (the only thing kept when
	// recomputation is enabled — see Block.ForwardCheckpointed).
	X *tensor.Tensor
	// Arena, when non-nil, supplies every tensor the module allocates during
	// its forward and backward passes. The owner (a pipeline runner) resets
	// it once the microbatch's W pass has consumed the stash; with a nil
	// arena modules fall back to fresh heap tensors. Sub-caches inherit it.
	Arena *tensor.Arena

	stash    map[string]*tensor.Tensor
	children map[string]*Cache
}

// NewCache returns a cache for a microbatch of G sequences of length S.
func NewCache(g, s int) *Cache {
	return &Cache{G: g, S: s, stash: make(map[string]*tensor.Tensor)}
}

// Tokens returns the number of token positions (G*S).
func (c *Cache) Tokens() int { return c.G * c.S }

// Put stashes t under key, replacing any previous entry.
func (c *Cache) Put(key string, t *tensor.Tensor) {
	c.stash[key] = t
}

// Get returns the stashed tensor for key, panicking if absent (a missing
// stash is always a schedule bug: backward ran without its forward).
func (c *Cache) Get(key string) *tensor.Tensor {
	t, ok := c.stash[key]
	if !ok {
		panic(fmt.Sprintf("nn: cache miss for %q (backward before forward?)", key))
	}
	return t
}

// Take returns and removes the stashed tensor for key, freeing it for GC.
func (c *Cache) Take(key string) *tensor.Tensor {
	t := c.Get(key)
	delete(c.stash, key)
	return t
}

// Has reports whether key is stashed.
func (c *Cache) Has(key string) bool {
	_, ok := c.stash[key]
	return ok
}

// DropAllButX clears every stashed intermediate and child cache, keeping
// only the input X. Used by recomputation: after the forward pass only X
// survives; backward re-runs Forward to rebuild the rest.
func (c *Cache) DropAllButX() {
	c.stash = make(map[string]*tensor.Tensor)
	c.children = nil
}

// Sub returns the child cache for a named sub-module, creating it on first
// use. Composite modules (Block) give each sub-layer its own namespace.
func (c *Cache) Sub(name string) *Cache {
	if c.children == nil {
		c.children = make(map[string]*Cache)
	}
	child, ok := c.children[name]
	if !ok {
		child = NewCache(c.G, c.S)
		child.Arena = c.Arena
		c.children[name] = child
	}
	return child
}

// alloc returns a scratch tensor from the cache's arena, or a fresh heap
// tensor when no arena is attached. Modules route every intermediate through
// it so steady-state training steps reuse buffers instead of allocating.
func alloc(c *Cache, shape ...int) *tensor.Tensor {
	if c.Arena != nil {
		return c.Arena.New(shape...)
	}
	return tensor.New(shape...)
}

// sliceRows returns a row view of t, recycling the view header through the
// cache's arena when one is attached.
func sliceRows(c *Cache, t *tensor.Tensor, lo, hi int) *tensor.Tensor {
	if c.Arena != nil {
		return c.Arena.SliceRows(t, lo, hi)
	}
	return t.SliceRows(lo, hi)
}
