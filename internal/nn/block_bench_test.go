package nn

import (
	"testing"

	"weipipe/internal/tensor"
)

// benchBlock builds a small transformer block plus the input/cache/grads
// state a steady-state training step reuses.
func benchBlock() (*Block, *tensor.Tensor, *ParamSet) {
	rng := tensor.NewRNG(7)
	const h, heads, f, s = 128, 4, 256, 64
	rope := NewRopeTable(s, h/heads)
	blk := NewBlock("b", h, heads, f, rope, rng)
	x := tensor.New(s, h)
	tensor.FillUniform(x, rng, -1, 1)
	grads := blk.Params().NewLike()
	return blk, x, grads
}

func BenchmarkBlockForwardBackward(b *testing.B) {
	blk, x, grads := benchBlock()
	arena := tensor.NewArena()
	cache := NewCache(1, x.Rows())
	cache.Arena = arena
	dy := tensor.New(x.Shape()...)
	dy.Fill(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		out := blk.Forward(x, cache)
		dx := blk.BackwardInput(dy, cache)
		blk.BackwardParams(cache, grads)
		_, _ = out, dx
	}
}

// BenchmarkBlockForwardBackwardNoArena is the pre-arena allocation path kept
// as a comparison point: every intermediate comes from tensor.New.
func BenchmarkBlockForwardBackwardNoArena(b *testing.B) {
	blk, x, grads := benchBlock()
	cache := NewCache(1, x.Rows())
	dy := tensor.New(x.Shape()...)
	dy.Fill(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := blk.Forward(x, cache)
		dx := blk.BackwardInput(dy, cache)
		blk.BackwardParams(cache, grads)
		_, _ = out, dx
	}
}
