package nn

import (
	"math"

	"weipipe/internal/tensor"
)

// negInf is the additive causal-mask value; after the softmax's max-subtract
// it underflows to exactly zero probability.
const negInf = float32(-1e30)

// Attention is causal multi-head self-attention with rotary position
// embeddings and no biases (Llama style). Weights are stored [in, out].
type Attention struct {
	name    string
	Heads   int
	HeadDim int
	Wq      *tensor.Tensor // [H, H]
	Wk      *tensor.Tensor // [H, H]
	Wv      *tensor.Tensor // [H, H]
	Wo      *tensor.Tensor // [H, H]
	rope    *RopeTable
	params  *ParamSet
}

// NewAttention builds an attention layer for hidden size h with the given
// head count; rope supplies the rotary table (nil disables RoPE).
func NewAttention(name string, h, heads int, rope *RopeTable, rng *tensor.RNG) *Attention {
	if h%heads != 0 {
		panic("nn: hidden size must divide head count")
	}
	return NewAttentionSharded(name, h, heads, h/heads, rope, rng)
}

// NewAttentionSharded builds an attention layer that computes only `heads`
// heads of dimension headDim over inputs of width inDim: the projections
// are [inDim, heads·headDim] (and Wo [heads·headDim, inDim]), so the
// output is a partial sum that a tensor-parallel group all-reduces. With
// heads·headDim == inDim this is the ordinary full layer.
func NewAttentionSharded(name string, inDim, heads, headDim int, rope *RopeTable, rng *tensor.RNG) *Attention {
	width := heads * headDim
	a := &Attention{
		name:    name,
		Heads:   heads,
		HeadDim: headDim,
		Wq:      tensor.New(inDim, width),
		Wk:      tensor.New(inDim, width),
		Wv:      tensor.New(inDim, width),
		Wo:      tensor.New(width, inDim),
		rope:    rope,
	}
	tensor.FillXavier(a.Wq, rng)
	tensor.FillXavier(a.Wk, rng)
	tensor.FillXavier(a.Wv, rng)
	tensor.FillXavier(a.Wo, rng)
	p := NewParamSet()
	p.Add("wq", a.Wq)
	p.Add("wk", a.Wk)
	p.Add("wv", a.Wv)
	p.Add("wo", a.Wo)
	a.params = p
	return a
}

// Name implements Module.
func (a *Attention) Name() string { return a.name }

// Params implements Module.
func (a *Attention) Params() *ParamSet { return a.params }

// Forward implements Module. x is [G*S, H].
func (a *Attention) Forward(x *tensor.Tensor, cache *Cache) *tensor.Tensor {
	g, s := cache.G, cache.S
	inDim := a.Wq.Rows()
	width := a.Heads * a.HeadDim
	d := a.HeadDim
	tokens := g * s

	q := alloc(cache, tokens, width)
	k := alloc(cache, tokens, width)
	v := alloc(cache, tokens, width)
	tensor.MatMul(q, x, a.Wq)
	tensor.MatMul(k, x, a.Wk)
	tensor.MatMul(v, x, a.Wv)
	if a.rope != nil {
		a.rope.ApplyAll(q, s, a.Heads, 1)
		a.rope.ApplyAll(k, s, a.Heads, 1)
	}

	// probs[(gi*Heads+hi)*S + i][j] = attention weight of query i on key j.
	probs := alloc(cache, g*a.Heads*s, s)
	ctx := alloc(cache, tokens, width)
	scale := float32(1.0 / math.Sqrt(float64(d)))

	qh := alloc(cache, s, d)
	kh := alloc(cache, s, d)
	vh := alloc(cache, s, d)
	scores := alloc(cache, s, s)
	ctxh := alloc(cache, s, d)
	for gi := 0; gi < g; gi++ {
		for hi := 0; hi < a.Heads; hi++ {
			gatherHead(qh, q, gi, hi, s, d, width)
			gatherHead(kh, k, gi, hi, s, d, width)
			gatherHead(vh, v, gi, hi, s, d, width)
			tensor.MatMulTB(scores, qh, kh)
			for i := 0; i < s; i++ {
				row := scores.Data[i*s : (i+1)*s]
				for j := 0; j <= i; j++ {
					row[j] *= scale
				}
				for j := i + 1; j < s; j++ {
					row[j] = negInf
				}
			}
			ph := sliceRows(cache, probs, (gi*a.Heads+hi)*s, (gi*a.Heads+hi+1)*s)
			tensor.SoftmaxRows(ph, scores)
			tensor.MatMul(ctxh, ph, vh)
			scatterHead(ctx, ctxh, gi, hi, s, d, width)
		}
	}

	out := alloc(cache, tokens, inDim)
	tensor.MatMul(out, ctx, a.Wo)

	cache.X = x
	cache.Put("q", q)
	cache.Put("k", k)
	cache.Put("v", v)
	cache.Put("probs", probs)
	cache.Put("ctx", ctx)
	return out
}

// BackwardInput implements Module (B pass).
func (a *Attention) BackwardInput(dy *tensor.Tensor, cache *Cache) *tensor.Tensor {
	g, s := cache.G, cache.S
	inDim := a.Wq.Rows()
	width := a.Heads * a.HeadDim
	d := a.HeadDim
	tokens := g * s
	scale := float32(1.0 / math.Sqrt(float64(d)))

	q := cache.Get("q")
	k := cache.Get("k")
	v := cache.Get("v")
	probs := cache.Get("probs")

	dctx := alloc(cache, tokens, width)
	tensor.MatMulTB(dctx, dy, a.Wo) // dctx = dy·Woᵀ

	dq := alloc(cache, tokens, width)
	dk := alloc(cache, tokens, width)
	dv := alloc(cache, tokens, width)

	qh := alloc(cache, s, d)
	kh := alloc(cache, s, d)
	vh := alloc(cache, s, d)
	dctxh := alloc(cache, s, d)
	dp := alloc(cache, s, s)
	ds := alloc(cache, s, s)
	dqh := alloc(cache, s, d)
	dkh := alloc(cache, s, d)
	dvh := alloc(cache, s, d)
	for gi := 0; gi < g; gi++ {
		for hi := 0; hi < a.Heads; hi++ {
			gatherHead(qh, q, gi, hi, s, d, width)
			gatherHead(kh, k, gi, hi, s, d, width)
			gatherHead(vh, v, gi, hi, s, d, width)
			gatherHead(dctxh, dctx, gi, hi, s, d, width)
			ph := sliceRows(cache, probs, (gi*a.Heads+hi)*s, (gi*a.Heads+hi+1)*s)

			tensor.MatMulTB(dp, dctxh, vh)  // dp = dctx·vᵀ
			tensor.MatMulTA(dvh, ph, dctxh) // dv = pᵀ·dctx
			tensor.SoftmaxRowsBackward(ds, ph, dp)
			// masked entries have p=0 ⇒ ds=0; scale folds into dq/dk.
			tensor.MatMul(dqh, ds, kh) // dq = ds·k
			tensor.Scale(dqh, dqh, scale)
			tensor.MatMulTA(dkh, ds, qh) // dk = dsᵀ·q
			tensor.Scale(dkh, dkh, scale)

			scatterHead(dq, dqh, gi, hi, s, d, width)
			scatterHead(dk, dkh, gi, hi, s, d, width)
			scatterHead(dv, dvh, gi, hi, s, d, width)
		}
	}

	// Undo RoPE: grads of pre-rotation q/k are the inverse rotation.
	if a.rope != nil {
		a.rope.ApplyAll(dq, s, a.Heads, -1)
		a.rope.ApplyAll(dk, s, a.Heads, -1)
	}

	dx := alloc(cache, tokens, inDim)
	tensor.MatMulTB(dx, dq, a.Wq)
	tensor.MatMulTBAcc(dx, dk, a.Wk)
	tensor.MatMulTBAcc(dx, dv, a.Wv)

	// Stash the pre-projection gradients for the W pass.
	cache.Put("dq", dq)
	cache.Put("dk", dk)
	cache.Put("dv", dv)
	cache.Put("dy", dy)
	return dx
}

// BackwardParams implements Module (W pass).
func (a *Attention) BackwardParams(cache *Cache, grads *ParamSet) {
	x := cache.X
	ctx := cache.Get("ctx")
	dq := cache.Get("dq")
	dk := cache.Get("dk")
	dv := cache.Get("dv")
	dy := cache.Get("dy")
	tensor.MatMulTAAcc(grads.Get("wq"), x, dq)
	tensor.MatMulTAAcc(grads.Get("wk"), x, dk)
	tensor.MatMulTAAcc(grads.Get("wv"), x, dv)
	tensor.MatMulTAAcc(grads.Get("wo"), ctx, dy)
}

// gatherHead copies head hi of batch gi from full ([G*S, H]) into dst [S, d].
func gatherHead(dst, full *tensor.Tensor, gi, hi, s, d, h int) {
	for i := 0; i < s; i++ {
		src := full.Data[(gi*s+i)*h+hi*d : (gi*s+i)*h+hi*d+d]
		copy(dst.Data[i*d:(i+1)*d], src)
	}
}

// scatterHead copies src [S, d] into head hi of batch gi of full ([G*S, H]).
func scatterHead(full, src *tensor.Tensor, gi, hi, s, d, h int) {
	for i := 0; i < s; i++ {
		dst := full.Data[(gi*s+i)*h+hi*d : (gi*s+i)*h+hi*d+d]
		copy(dst, src.Data[i*d:(i+1)*d])
	}
}
