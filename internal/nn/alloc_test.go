package nn

import (
	"testing"

	"weipipe/internal/tensor"
)

// Steady-state Block passes with an arena-backed cache must not allocate.
// The shapes are kept below the matmul parallel threshold so every kernel
// runs inline; the first iterations grow the arena to its high-water mark
// and build the sub-cache tree, after which each round only reuses them.
func TestBlockForwardSteadyStateZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(11)
	const h, heads, f, s = 32, 2, 64, 8
	rope := NewRopeTable(s, h/heads)
	blk := NewBlock("b", h, heads, f, rope, rng)
	x := tensor.New(s, h)
	tensor.FillUniform(x, rng, -1, 1)

	arena := tensor.NewArena()
	cache := NewCache(1, s)
	cache.Arena = arena

	// Warm up: arena growth, sub-cache creation, stash-map sizing.
	for i := 0; i < 3; i++ {
		arena.Reset()
		blk.Forward(x, cache)
	}

	allocs := testing.AllocsPerRun(50, func() {
		arena.Reset()
		blk.Forward(x, cache)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Block.Forward allocates %v times per run, want 0", allocs)
	}
}

// The full fwd + B + W round must also be allocation-free once the gradient
// sub-views are memoized.
func TestBlockTrainStepSteadyStateAllocBound(t *testing.T) {
	rng := tensor.NewRNG(13)
	const h, heads, f, s = 32, 2, 64, 8
	rope := NewRopeTable(s, h/heads)
	blk := NewBlock("b", h, heads, f, rope, rng)
	x := tensor.New(s, h)
	tensor.FillUniform(x, rng, -1, 1)
	dy := tensor.New(s, h)
	dy.Fill(0.01)
	grads := blk.Params().NewLike()

	arena := tensor.NewArena()
	cache := NewCache(1, s)
	cache.Arena = arena

	for i := 0; i < 3; i++ {
		arena.Reset()
		blk.Forward(x, cache)
		blk.BackwardInput(dy, cache)
		blk.BackwardParams(cache, grads)
	}

	allocs := testing.AllocsPerRun(50, func() {
		arena.Reset()
		blk.Forward(x, cache)
		blk.BackwardInput(dy, cache)
		blk.BackwardParams(cache, grads)
	})
	if allocs != 0 {
		t.Fatalf("steady-state train step allocates %v times per run, want 0", allocs)
	}
}
