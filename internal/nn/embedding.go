package nn

import "weipipe/internal/tensor"

// Embedding maps token ids to hidden vectors via a learned table W of shape
// [V, H]. It sits at the head of the module list; pipeline runtimes feed it
// tokens rather than activations, so it implements Module with a tokens
// side-channel in the cache ("tokens" stash set by ForwardTokens).
type Embedding struct {
	name   string
	W      *tensor.Tensor // [V, H]
	params *ParamSet
}

// NewEmbedding builds an embedding table for vocab size v, hidden size h.
func NewEmbedding(name string, v, h int, rng *tensor.RNG) *Embedding {
	e := &Embedding{name: name, W: tensor.New(v, h)}
	tensor.FillNormal(e.W, rng, 0.02)
	p := NewParamSet()
	p.Add("w", e.W)
	e.params = p
	return e
}

// Name implements Module.
func (e *Embedding) Name() string { return e.name }

// Params implements Module.
func (e *Embedding) Params() *ParamSet { return e.params }

// ForwardTokens looks up each token's embedding. tokens is [G][S]; the
// output is [G*S, H]. The token ids are stashed for the W pass.
func (e *Embedding) ForwardTokens(tokens [][]int, cache *Cache) *tensor.Tensor {
	g := len(tokens)
	s := len(tokens[0])
	h := e.W.Cols()
	v := e.W.Rows()
	out := alloc(cache, g*s, h)
	toks := alloc(cache, g*s) // token ids as float payload for the cache
	flat := toks.Data
	for gi, seq := range tokens {
		for si, tok := range seq {
			if tok < 0 || tok >= v {
				panic("nn: token id out of vocab range")
			}
			copy(out.Data[(gi*s+si)*h:(gi*s+si+1)*h], e.W.Data[tok*h:(tok+1)*h])
			flat[gi*s+si] = float32(tok)
		}
	}
	cache.Put("tokens", toks)
	return out
}

// Forward implements Module by requiring that ForwardTokens stashed the
// token ids earlier (x is ignored; embeddings have no tensor input). This
// lets generic per-module loops treat the embedding uniformly during
// recomputation.
func (e *Embedding) Forward(x *tensor.Tensor, cache *Cache) *tensor.Tensor {
	toks := cache.Get("tokens")
	h := e.W.Cols()
	n := toks.Size()
	out := alloc(cache, n, h)
	for i := 0; i < n; i++ {
		tok := int(toks.Data[i])
		copy(out.Data[i*h:(i+1)*h], e.W.Data[tok*h:(tok+1)*h])
	}
	return out
}

// BackwardInput implements Module. Token ids have no gradient; the dy is
// stashed for the W pass and nil is returned.
func (e *Embedding) BackwardInput(dy *tensor.Tensor, cache *Cache) *tensor.Tensor {
	cache.Put("dy", dy)
	return nil
}

// BackwardParams implements Module (W pass): scatter-add dy rows into the
// rows of dW selected by the token ids.
func (e *Embedding) BackwardParams(cache *Cache, grads *ParamSet) {
	toks := cache.Get("tokens")
	dy := cache.Get("dy")
	dw := grads.Get("w")
	h := e.W.Cols()
	for i := 0; i < toks.Size(); i++ {
		tok := int(toks.Data[i])
		dst := dw.Data[tok*h : (tok+1)*h]
		src := dy.Data[i*h : (i+1)*h]
		for j := range dst {
			dst[j] += src[j]
		}
	}
}
