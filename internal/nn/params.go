package nn

import (
	"fmt"

	"weipipe/internal/tensor"
)

// ParamSet is an ordered collection of named tensors. The order is the wire
// order: Flatten/AddFlat/SetFlat lay parameters out deterministically, which
// is what lets WeiPipe circulate a module's weights as one flat chunk.
type ParamSet struct {
	names   []string
	tensors map[string]*tensor.Tensor
	size    int
}

// NewParamSet returns an empty set.
func NewParamSet() *ParamSet {
	return &ParamSet{tensors: make(map[string]*tensor.Tensor)}
}

// Add registers t under name. Names must be unique.
func (p *ParamSet) Add(name string, t *tensor.Tensor) {
	if _, ok := p.tensors[name]; ok {
		panic(fmt.Sprintf("nn: duplicate param %q", name))
	}
	p.names = append(p.names, name)
	p.tensors[name] = t
	p.size += t.Size()
}

// Get returns the tensor registered under name.
func (p *ParamSet) Get(name string) *tensor.Tensor {
	t, ok := p.tensors[name]
	if !ok {
		panic(fmt.Sprintf("nn: unknown param %q", name))
	}
	return t
}

// Names returns the parameter names in wire order. Callers must not mutate.
func (p *ParamSet) Names() []string { return p.names }

// Size returns the total number of scalar parameters.
func (p *ParamSet) Size() int { return p.size }

// NewLike returns a zero-filled set with the same names and shapes, used for
// gradient accumulators.
func (p *ParamSet) NewLike() *ParamSet {
	out := NewParamSet()
	for _, n := range p.names {
		out.Add(n, tensor.New(p.tensors[n].Shape()...))
	}
	return out
}

// Clone returns a deep copy.
func (p *ParamSet) Clone() *ParamSet {
	out := NewParamSet()
	for _, n := range p.names {
		out.Add(n, p.tensors[n].Clone())
	}
	return out
}

// Zero zeroes every tensor in the set.
func (p *ParamSet) Zero() {
	for _, n := range p.names {
		p.tensors[n].Zero()
	}
}

// Flatten appends all parameters, in wire order, into a new flat vector.
func (p *ParamSet) Flatten() []float32 {
	out := make([]float32, 0, p.size)
	for _, n := range p.names {
		out = append(out, p.tensors[n].Data...)
	}
	return out
}

// FlattenInto copies all parameters into dst, which must have length Size().
func (p *ParamSet) FlattenInto(dst []float32) {
	if len(dst) != p.size {
		panic(fmt.Sprintf("nn: FlattenInto needs %d elems, got %d", p.size, len(dst)))
	}
	off := 0
	for _, n := range p.names {
		d := p.tensors[n].Data
		copy(dst[off:off+len(d)], d)
		off += len(d)
	}
}

// SetFlat overwrites all parameters from a flat vector in wire order.
func (p *ParamSet) SetFlat(src []float32) {
	if len(src) != p.size {
		panic(fmt.Sprintf("nn: SetFlat needs %d elems, got %d", p.size, len(src)))
	}
	off := 0
	for _, n := range p.names {
		d := p.tensors[n].Data
		copy(d, src[off:off+len(d)])
		off += len(d)
	}
}

// AddFlat adds a flat vector into the parameters in wire order (used to fold
// a received gradient chunk into a local accumulator).
func (p *ParamSet) AddFlat(src []float32) {
	if len(src) != p.size {
		panic(fmt.Sprintf("nn: AddFlat needs %d elems, got %d", p.size, len(src)))
	}
	off := 0
	for _, n := range p.names {
		d := p.tensors[n].Data
		for i := range d {
			d[i] += src[off+i]
		}
		off += len(d)
	}
}

// AddInto accumulates src into p elementwise; layouts must match.
func (p *ParamSet) AddInto(src *ParamSet) {
	if src.size != p.size || len(src.names) != len(p.names) {
		panic("nn: AddInto layout mismatch")
	}
	for _, n := range p.names {
		tensor.AddInto(p.tensors[n], src.tensors[n])
	}
}

// Scale multiplies every parameter by s.
func (p *ParamSet) Scale(s float32) {
	for _, n := range p.names {
		t := p.tensors[n]
		tensor.Scale(t, t, s)
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// layout-identical sets (used by equivalence tests).
func (p *ParamSet) MaxAbsDiff(o *ParamSet) float32 {
	var m float32
	for _, n := range p.names {
		a, b := p.tensors[n].Data, o.tensors[n].Data
		for i := range a {
			d := a[i] - b[i]
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
	}
	return m
}
