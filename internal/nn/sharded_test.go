package nn

import (
	"math"
	"testing"

	"weipipe/internal/tensor"
)

// Direct finite-difference checks for the sharded (rectangular) attention
// path that tensor parallelism builds on: heads·headDim < inDim.

// shardedLoss runs x → sharded attention → scalar pseudo-loss Σ y⊙w.
func shardedLoss(a *Attention, x *tensor.Tensor, weights *tensor.Tensor, g, s int) float64 {
	c := NewCache(g, s)
	y := a.Forward(x, c)
	return tensor.Dot(y, weights)
}

func TestShardedAttentionGradCheck(t *testing.T) {
	const (
		inDim   = 8
		heads   = 1 // one head of two → a genuine shard
		headDim = 4
		G, S    = 2, 5
	)
	rng := tensor.NewRNG(17)
	rope := NewRopeTable(S, headDim)
	a := NewAttentionSharded("shard", inDim, heads, headDim, rope, rng)

	x := tensor.New(G*S, inDim)
	tensor.FillNormal(x, rng, 1)
	lossW := tensor.New(G*S, inDim)
	tensor.FillNormal(lossW, rng, 1)

	// analytic grads
	cache := NewCache(G, S)
	a.Forward(x, cache)
	dx := a.BackwardInput(lossW, cache)
	grads := a.Params().NewLike()
	a.BackwardParams(cache, grads)

	const eps = 2e-3
	checkFD := func(param, grad *tensor.Tensor, name string) {
		t.Helper()
		idxRng := tensor.NewRNG(5)
		for k := 0; k < 5; k++ {
			i := idxRng.Intn(param.Size())
			orig := param.Data[i]
			param.Data[i] = orig + eps
			lp := shardedLoss(a, x, lossW, G, S)
			param.Data[i] = orig - eps
			lm := shardedLoss(a, x, lossW, G, S)
			param.Data[i] = orig
			fd := (lp - lm) / (2 * eps)
			an := float64(grad.Data[i])
			if math.Abs(fd-an) > 2e-3+0.03*math.Abs(fd) {
				t.Errorf("%s[%d]: analytic %.6f vs fd %.6f", name, i, an, fd)
			}
		}
	}
	for _, n := range []string{"wq", "wk", "wv", "wo"} {
		checkFD(a.Params().Get(n), grads.Get(n), n)
	}
	checkFD(x, dx, "x")
}

func TestShardedHeadsPartitionFullAttention(t *testing.T) {
	// Two half-shards' outputs must sum to the full layer's output when
	// their weights are the column/row blocks of the full weights.
	const h, heads, S, G = 8, 2, 4, 1
	rng := tensor.NewRNG(23)
	rope := NewRopeTable(S, h/heads)
	full := NewAttention("full", h, heads, rope, rng)

	mk := func(r int) *Attention {
		sh := NewAttentionSharded("sh", h, 1, h/heads, rope, tensor.NewRNG(1))
		lo := r * (h / heads)
		hi := lo + h/heads
		for i := 0; i < h; i++ {
			copy(sh.Wq.Data[i*(h/heads):(i+1)*(h/heads)], full.Wq.Data[i*h+lo:i*h+hi])
			copy(sh.Wk.Data[i*(h/heads):(i+1)*(h/heads)], full.Wk.Data[i*h+lo:i*h+hi])
			copy(sh.Wv.Data[i*(h/heads):(i+1)*(h/heads)], full.Wv.Data[i*h+lo:i*h+hi])
		}
		copy(sh.Wo.Data, full.Wo.Data[lo*h:hi*h])
		return sh
	}
	x := tensor.New(G*S, h)
	tensor.FillNormal(x, rng, 1)
	want := full.Forward(x, NewCache(G, S))

	sum := tensor.New(G*S, h)
	for r := 0; r < heads; r++ {
		part := mk(r).Forward(x, NewCache(G, S))
		tensor.AddInto(sum, part)
	}
	for i := range want.Data {
		if math.Abs(float64(sum.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("shard sum differs at %d: %v vs %v", i, sum.Data[i], want.Data[i])
		}
	}
}
