package comm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"weipipe/internal/tensor"
)

// TCP wire framing. Every frame is:
//
//	src u32 | kind u32 | epoch u32 | a i64 | b i64 | seq u64 | n u64 | crc u32 | payload n elems
//
// all little-endian. The kind field carries the application Kind in its low
// byte and the payload codec in its second byte (bits 8–15): CodecF32
// payloads are n×4 bytes of float32, CodecBF16 payloads are n×2 bytes of
// bfloat16 — the belt's half-width wire format. epoch is the cluster
// incarnation the sender belongs to: after an elastic repair the survivors
// rebuild the mesh under a bumped epoch, and a receiver drops (without
// acknowledging, and without refreshing liveness) any frame from a stale
// epoch — the split-brain fence that keeps a zombie segment of a
// partitioned ring from ever feeding frames into the repaired one. seq is
// the per-link data sequence number (1-based; 0 marks unsequenced control
// frames), used for redelivery dedup and reordering. crc is CRC32 (IEEE)
// over the header bytes before the crc field and the payload, so both a
// corrupted length field and a corrupted payload are detected. Control
// frames reuse the same layout with kind values outside the application
// Kind space: acks carry the cumulative acknowledged sequence in a,
// heartbeats are empty.
const (
	frameHeaderLen = 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4
	frameCRCOffset = frameHeaderLen - 4

	// Control frame kinds, disjoint from the application Kind space.
	ctlAck       uint32 = 0xFFFFFFF0
	ctlHeartbeat uint32 = 0xFFFFFFF1
	// ctlBurst is a burst envelope (the batched P2P mode): its payload is
	// a back-to-back run of complete inner frames, each carrying its own
	// header and CRC. For a burst header, a counts the inner frames and n
	// counts payload BYTES (not elements). The envelope CRC covers the
	// header only — see burst.go.
	ctlBurst uint32 = 0xFFFFFFF2

	// maxAppKind is the largest application Kind a frame may carry.
	maxAppKind = uint32(kindCount) - 1

	// codecShift positions the codec byte inside the kind field.
	codecShift = 8

	// defaultMaxFrameElems bounds the payload element count a decoder will
	// allocate for (1 GiB of float32s); DialTCPOpts can lower it.
	defaultMaxFrameElems = 1 << 28
)

// frameHeader is the decoded fixed-size frame prefix.
type frameHeader struct {
	src   int
	kind  uint32 // raw kind field; low byte is the app Kind for data frames
	epoch uint32 // cluster incarnation of the sender
	codec WireCodec
	a, b  int64
	seq   uint64
	n     int
	crc   uint32
}

// tag returns the application tag of a data frame.
func (h frameHeader) tag() Tag {
	return Tag{Kind: Kind(h.kind & 0xff), A: int(h.a), B: int(h.b)}
}

// isCtl reports whether the frame is a control (ack/heartbeat/burst) frame.
func (h frameHeader) isCtl() bool {
	return h.kind == ctlAck || h.kind == ctlHeartbeat || h.kind == ctlBurst
}

// parseFrameHeader validates and decodes a frame header. size bounds the
// src field (size <= 0 skips the check, for fuzzing); maxElems bounds the
// payload element count (<= 0 selects the default). All failures return a
// *CorruptionError — the decoder never panics and never allocates based on
// an unvalidated length.
func parseFrameHeader(hdr []byte, size, maxElems int) (frameHeader, error) {
	if len(hdr) != frameHeaderLen {
		return frameHeader{}, &CorruptionError{Reason: fmt.Sprintf("header length %d != %d", len(hdr), frameHeaderLen)}
	}
	if maxElems <= 0 {
		maxElems = defaultMaxFrameElems
	}
	h := frameHeader{
		src:   int(int32(binary.LittleEndian.Uint32(hdr[0:4]))),
		kind:  binary.LittleEndian.Uint32(hdr[4:8]),
		epoch: binary.LittleEndian.Uint32(hdr[8:12]),
		a:     int64(binary.LittleEndian.Uint64(hdr[12:20])),
		b:     int64(binary.LittleEndian.Uint64(hdr[20:28])),
		seq:   binary.LittleEndian.Uint64(hdr[28:36]),
		crc:   binary.LittleEndian.Uint32(hdr[frameCRCOffset:frameHeaderLen]),
	}
	n := binary.LittleEndian.Uint64(hdr[36:44])
	if h.src < 0 || (size > 0 && h.src >= size) {
		return frameHeader{}, &CorruptionError{Reason: fmt.Sprintf("source rank %d out of range", h.src)}
	}
	if !h.isCtl() {
		if h.kind>>(2*codecShift) != 0 || h.kind&0xff > maxAppKind {
			return frameHeader{}, &CorruptionError{Reason: fmt.Sprintf("unknown frame kind %#x", h.kind)}
		}
		codec := WireCodec(h.kind >> codecShift)
		if codec >= codecCount {
			return frameHeader{}, &CorruptionError{Reason: fmt.Sprintf("unknown payload codec %d", codec)}
		}
		h.codec = codec
	}
	if h.kind == ctlBurst {
		// Burst envelopes size their payload in bytes, bounded by the
		// largest legal burst rather than the per-frame element cap.
		if h.seq != 0 || h.a < 0 || h.a > maxBurstFrames || n > burstByteCap(maxElems) {
			return frameHeader{}, &CorruptionError{Reason: fmt.Sprintf("implausible burst envelope (count %d, %d bytes)", h.a, n)}
		}
		h.n = int(n)
		return h, nil
	}
	if n > uint64(maxElems) {
		return frameHeader{}, &CorruptionError{Reason: fmt.Sprintf("implausible payload length %d elems", n)}
	}
	h.n = int(n)
	return h, nil
}

// kindField builds a data frame's kind field from the app Kind and codec.
func kindField(kind Kind, codec WireCodec) uint32 {
	return uint32(kind) | uint32(codec)<<codecShift
}

// encodeFrame builds a complete wire frame (header + CRC + payload),
// encoding the payload at the codec's width.
func encodeFrame(src int, kind, epoch uint32, a, b int64, seq uint64, codec WireCodec, payload []float32) []byte {
	frame := make([]byte, frameHeaderLen+len(payload)*codec.bytesPerElem())
	binary.LittleEndian.PutUint32(frame[0:4], uint32(src))
	binary.LittleEndian.PutUint32(frame[4:8], kind)
	binary.LittleEndian.PutUint32(frame[8:12], epoch)
	binary.LittleEndian.PutUint64(frame[12:20], uint64(a))
	binary.LittleEndian.PutUint64(frame[20:28], uint64(b))
	binary.LittleEndian.PutUint64(frame[28:36], seq)
	binary.LittleEndian.PutUint64(frame[36:44], uint64(len(payload)))
	if codec == CodecBF16 {
		tensor.PackBF16LE(frame[frameHeaderLen:], payload)
	} else {
		for i, v := range payload {
			binary.LittleEndian.PutUint32(frame[frameHeaderLen+i*4:], math.Float32bits(v))
		}
	}
	binary.LittleEndian.PutUint32(frame[frameCRCOffset:frameHeaderLen], frameCRC(frame))
	return frame
}

// encodeCtlFrame builds a control frame (ack/heartbeat); control payloads
// are always empty and carry no codec.
func encodeCtlFrame(src int, kind, epoch uint32, a int64) []byte {
	return encodeFrame(src, kind, epoch, a, 0, 0, CodecF32, nil)
}

// frameCRC computes the checksum of an encoded frame: the header bytes
// before the CRC field plus the payload bytes.
func frameCRC(frame []byte) uint32 {
	crc := crc32.NewIEEE()
	crc.Write(frame[:frameCRCOffset])
	crc.Write(frame[frameHeaderLen:])
	return crc.Sum32()
}

// readFrame reads and validates one frame from r. It returns the header and
// the decoded payload (drawn from the payload pool; the caller owns it).
// A *CorruptionError with synced == true means the frame was discarded but
// the stream position is still aligned on a frame boundary (the header was
// plausible; only the payload failed its checksum), so the caller may keep
// reading; any other error means the connection must be torn down.
func readFrame(r io.Reader, size, maxElems int) (h frameHeader, payload []float32, synced bool, err error) {
	hdr := make([]byte, frameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return frameHeader{}, nil, false, err
	}
	h, err = parseFrameHeader(hdr, size, maxElems)
	if err != nil {
		return frameHeader{}, nil, false, err
	}
	buf := make([]byte, h.n*h.codec.bytesPerElem())
	if _, err := io.ReadFull(r, buf); err != nil {
		return frameHeader{}, nil, false, err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:frameCRCOffset])
	crc.Write(buf)
	if got := crc.Sum32(); got != h.crc {
		// The length field was covered by the header checks and the payload
		// was fully consumed: the stream is still frame-aligned.
		return frameHeader{}, nil, true, &CorruptionError{Reason: fmt.Sprintf("payload CRC mismatch (got %#x want %#x)", got, h.crc)}
	}
	return h, decodePayload(h, buf), true, nil
}

// decodePayload expands a validated frame's raw payload bytes into a
// pooled []float32 at the codec's width. The caller owns the result.
func decodePayload(h frameHeader, buf []byte) []float32 {
	payload := GetBuf(h.n)
	if h.codec == CodecBF16 {
		tensor.UnpackBF16LE(payload, buf)
	} else {
		for i := range payload {
			payload[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	}
	return payload
}
