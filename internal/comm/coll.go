package comm

import "fmt"

// This file implements ring collectives on top of the P2P Transport. They
// follow NCCL's ring algorithms (the configuration the paper measured
// against): all-reduce is reduce-scatter + all-gather, each moving
// (p−1)/p · bytes per rank per phase around the ring.
//
// Every collective call takes a seq number that must be identical across
// ranks for one logical operation and unique per operation between any two
// operations that could otherwise interleave; it namespaces the wire tags.

// ShardRanges splits a vector of length n into p contiguous shards as evenly
// as possible: shard i is [i*n/p, (i+1)*n/p).
func ShardRanges(n, p int) [][2]int {
	out := make([][2]int, p)
	for i := 0; i < p; i++ {
		out[i] = [2]int{i * n / p, (i + 1) * n / p}
	}
	return out
}

// RingAllReduceSum sums data elementwise across all ranks, in place, using
// the 2(p−1)-step ring algorithm. All ranks must pass equal-length slices.
func RingAllReduceSum(t Transport, data []float32, seq int) error {
	p := t.Size()
	if p == 1 {
		return nil
	}
	r := t.Rank()
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	shards := ShardRanges(len(data), p)

	// Phase 1: reduce-scatter. After p−1 steps rank r holds the full sum of
	// shard (r+1) mod p.
	for step := 0; step < p-1; step++ {
		sendID := (r - step + p) % p
		recvID := (r - step - 1 + p) % p
		s := shards[sendID]
		if err := t.Send(next, Tag{Kind: KindColl, A: seq, B: step}, data[s[0]:s[1]]); err != nil {
			return err
		}
		buf, err := t.Recv(prev, Tag{Kind: KindColl, A: seq, B: step})
		if err != nil {
			return err
		}
		rg := shards[recvID]
		dst := data[rg[0]:rg[1]]
		if len(buf) != len(dst) {
			return fmt.Errorf("comm: allreduce shard size mismatch %d != %d", len(buf), len(dst))
		}
		for i := range dst {
			dst[i] += buf[i]
		}
		Release(buf)
	}
	// Phase 2: all-gather the reduced shards.
	for step := 0; step < p-1; step++ {
		sendID := (r + 1 - step + p) % p
		recvID := (r - step + p) % p
		s := shards[sendID]
		if err := t.Send(next, Tag{Kind: KindColl, A: seq, B: p + step}, data[s[0]:s[1]]); err != nil {
			return err
		}
		buf, err := t.Recv(prev, Tag{Kind: KindColl, A: seq, B: p + step})
		if err != nil {
			return err
		}
		rg := shards[recvID]
		copy(data[rg[0]:rg[1]], buf)
		Release(buf)
	}
	return nil
}

// ReduceScatterSum sums data across ranks and returns this rank's shard
// (shard boundaries per ShardRanges). data is clobbered.
func ReduceScatterSum(t Transport, data []float32, seq int) ([]float32, error) {
	p := t.Size()
	r := t.Rank()
	shards := ShardRanges(len(data), p)
	if p == 1 {
		out := make([]float32, len(data))
		copy(out, data)
		return out, nil
	}
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendID := (r - step + p) % p
		recvID := (r - step - 1 + p) % p
		s := shards[sendID]
		if err := t.Send(next, Tag{Kind: KindColl, A: seq, B: step}, data[s[0]:s[1]]); err != nil {
			return nil, err
		}
		buf, err := t.Recv(prev, Tag{Kind: KindColl, A: seq, B: step})
		if err != nil {
			return nil, err
		}
		rg := shards[recvID]
		dst := data[rg[0]:rg[1]]
		for i := range dst {
			dst[i] += buf[i]
		}
		Release(buf)
	}
	// After p−1 steps this rank holds the full sum of shard (r+1) mod p, and
	// shard r sits on rank r−1 — rotate one more hop forward so rank r owns
	// shard r, the layout FSDP expects.
	ownedID := (r + 1) % p
	og := shards[ownedID]
	if err := t.Send(next, Tag{Kind: KindColl, A: seq, B: p}, data[og[0]:og[1]]); err != nil {
		return nil, err
	}
	buf, err := t.Recv(prev, Tag{Kind: KindColl, A: seq, B: p})
	if err != nil {
		return nil, err
	}
	myRange := shards[r]
	if len(buf) != myRange[1]-myRange[0] {
		return nil, fmt.Errorf("comm: reduce-scatter final shard mismatch")
	}
	return buf, nil
}

// AllGather concatenates each rank's shard into the full vector. shardLens
// gives every rank's shard length (all ranks pass the same slice); mine must
// have length shardLens[rank].
func AllGather(t Transport, mine []float32, shardLens []int, seq int) ([]float32, error) {
	p := t.Size()
	r := t.Rank()
	if len(shardLens) != p {
		return nil, fmt.Errorf("comm: shardLens has %d entries for %d ranks", len(shardLens), p)
	}
	if len(mine) != shardLens[r] {
		return nil, fmt.Errorf("comm: shard length %d != declared %d", len(mine), shardLens[r])
	}
	offsets := make([]int, p+1)
	for i := 0; i < p; i++ {
		offsets[i+1] = offsets[i] + shardLens[i]
	}
	out := make([]float32, offsets[p])
	copy(out[offsets[r]:offsets[r+1]], mine)
	if p == 1 {
		return out, nil
	}
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendID := (r - step + p) % p
		recvID := (r - step - 1 + p) % p
		if err := t.Send(next, Tag{Kind: KindColl, A: seq, B: step}, out[offsets[sendID]:offsets[sendID+1]]); err != nil {
			return nil, err
		}
		buf, err := t.Recv(prev, Tag{Kind: KindColl, A: seq, B: step})
		if err != nil {
			return nil, err
		}
		copy(out[offsets[recvID]:offsets[recvID+1]], buf)
		Release(buf)
	}
	return out, nil
}

// Broadcast distributes root's data to every rank around the ring and
// returns each rank's copy (root gets its input back unmodified).
func Broadcast(t Transport, root int, data []float32, seq int) ([]float32, error) {
	p := t.Size()
	if p == 1 {
		return data, nil
	}
	r := t.Rank()
	next := (r + 1) % p
	prev := (r - 1 + p) % p
	if r == root {
		if err := t.Send(next, Tag{Kind: KindColl, A: seq, B: 0}, data); err != nil {
			return nil, err
		}
		return data, nil
	}
	buf, err := t.Recv(prev, Tag{Kind: KindColl, A: seq, B: 0})
	if err != nil {
		return nil, err
	}
	if next != root {
		if err := t.Send(next, Tag{Kind: KindColl, A: seq, B: 0}, buf); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Barrier blocks until every rank has entered it.
func Barrier(t Transport, seq int) error {
	p := t.Size()
	if p == 1 {
		return nil
	}
	r := t.Rank()
	if r == 0 {
		for src := 1; src < p; src++ {
			if _, err := t.Recv(src, Tag{Kind: KindColl, A: seq, B: -1}); err != nil {
				return err
			}
		}
		for dst := 1; dst < p; dst++ {
			if err := t.Send(dst, Tag{Kind: KindColl, A: seq, B: -2}, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := t.Send(0, Tag{Kind: KindColl, A: seq, B: -1}, nil); err != nil {
		return err
	}
	_, err := t.Recv(0, Tag{Kind: KindColl, A: seq, B: -2})
	return err
}

// AllReduceScalarSum sums one float64 across ranks (used for loss logging).
func AllReduceScalarSum(t Transport, v float64, seq int) (float64, error) {
	buf := []float32{float32(v)}
	if err := RingAllReduceSum(t, buf, seq); err != nil {
		return 0, err
	}
	return float64(buf[0]), nil
}
