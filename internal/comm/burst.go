package comm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Burst envelopes — the batched P2P mode's wire unit.
//
// A burst is a control frame (kind ctlBurst) whose payload is a
// back-to-back run of complete inner frames, each retaining its own
// header, sequence number, and CRC:
//
//	envelope header (a = inner count, n = payload BYTES, CRC over the
//	header only) | inner frame | inner frame | ...
//
// The envelope CRC deliberately excludes the payload: every inner frame
// already seals itself, so re-checksumming the concatenation would turn
// one flipped bit anywhere in the burst into the loss of every frame in
// it. With header-only sealing, a corrupt byte inside one inner frame
// fails only that frame's CRC — its siblings decode and deliver, the
// damaged frame stays unacknowledged, and the sender retransmits just it.
// Corruption that lands in an inner *header* (so the decoder can no
// longer find the next frame boundary) ends decoding of the rest of the
// burst; the envelope's byte count still bounds the read, so the outer
// stream stays frame-aligned and the usual retransmission path repairs
// the tail.
//
// Receivers are permanently burst-capable regardless of their own
// configured mode: the mode is a sender-local packaging decision, which
// is what makes mid-run mode switches trivially safe.
const (
	// maxBurstFrames bounds the inner frames per envelope; the send
	// window (32) never exceeds it, so one drain is at most one full
	// envelope plus change.
	maxBurstFrames = 64
)

// burstByteCap bounds a plausible envelope payload: one maximal data
// frame's payload plus headers for a full envelope of frames. Any single
// legal frame fits (so oversized payloads travel as a burst of one), and
// a corrupt length field cannot make the decoder allocate more than the
// transport's existing per-frame cap already allows.
func burstByteCap(maxElems int) uint64 {
	if maxElems <= 0 {
		maxElems = defaultMaxFrameElems
	}
	return uint64(maxElems)*4 + maxBurstFrames*frameHeaderLen
}

// encodeBurstHeader builds the envelope header for a burst of count inner
// frames totalling payloadBytes of encoded wire. The CRC covers the
// header only (see the package comment above).
func encodeBurstHeader(src int, epoch uint32, count int, payloadBytes int) []byte {
	hdr := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(src))
	binary.LittleEndian.PutUint32(hdr[4:8], ctlBurst)
	binary.LittleEndian.PutUint32(hdr[8:12], epoch)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(count))
	binary.LittleEndian.PutUint64(hdr[36:44], uint64(payloadBytes))
	binary.LittleEndian.PutUint32(hdr[frameCRCOffset:frameHeaderLen], frameCRC(hdr))
	return hdr
}

// splitBursts groups already-encoded wire frames into envelope-sized runs
// respecting maxBurstFrames and the receiver's byte cap. A frame larger
// than the cap on its own (impossible for legal frames, but the bound is
// defensive) travels as a run of one.
func splitBursts(maxElems int, wires [][]byte) [][][]byte {
	cap64 := burstByteCap(maxElems)
	var groups [][][]byte
	var cur [][]byte
	var curBytes uint64
	for _, w := range wires {
		if len(cur) > 0 && (len(cur) >= maxBurstFrames || curBytes+uint64(len(w)) > cap64) {
			groups = append(groups, cur)
			cur, curBytes = nil, 0
		}
		cur = append(cur, w)
		curBytes += uint64(len(w))
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// flattenBurst builds one contiguous wire image of an envelope — header
// plus inner frames — for write paths that need a single buffer (the
// chaos injector flips bytes in place; writev paths skip the copy).
func flattenBurst(src int, epoch uint32, wires [][]byte) []byte {
	total := 0
	for _, w := range wires {
		total += len(w)
	}
	out := make([]byte, 0, frameHeaderLen+total)
	out = append(out, encodeBurstHeader(src, epoch, len(wires), total)...)
	for _, w := range wires {
		out = append(out, w...)
	}
	return out
}

// burstFrame is one decoded inner frame of a burst — either a payload or
// the *CorruptionError that frame (or the envelope's tail) produced.
type burstFrame struct {
	h       frameHeader
	payload []float32
	err     error
}

// decodeBurst splits an envelope's payload into its inner frames. Intact
// frames come back decoded (payloads drawn from the pool; the caller owns
// them). An inner frame whose payload fails its CRC becomes a
// *CorruptionError entry — its siblings are unaffected. A malformed
// structure — truncated inner frame, implausible inner header, nested
// envelope, or a frame-count mismatch against the envelope header — ends
// decoding with one final terminal *CorruptionError entry; frames decoded
// before the damage still deliver. The envelope's byte count was read in
// full before decoding, so every outcome leaves the outer stream aligned.
func decodeBurst(buf []byte, count, size, maxElems int) []burstFrame {
	out := make([]burstFrame, 0, count)
	terminal := func(reason string) []burstFrame {
		return append(out, burstFrame{err: &CorruptionError{Reason: "burst: " + reason}})
	}
	off := 0
	for off < len(buf) {
		if len(out) >= count {
			return terminal(fmt.Sprintf("more than %d inner frames", count))
		}
		if off+frameHeaderLen > len(buf) {
			return terminal("truncated inner frame header")
		}
		hdr := buf[off : off+frameHeaderLen]
		h, err := parseFrameHeader(hdr, size, maxElems)
		if err != nil {
			return terminal(fmt.Sprintf("implausible inner header: %v", err))
		}
		if h.kind == ctlBurst {
			return terminal("nested burst envelope")
		}
		pb := h.n * h.codec.bytesPerElem()
		if off+frameHeaderLen+pb > len(buf) {
			return terminal("truncated inner payload")
		}
		body := buf[off+frameHeaderLen : off+frameHeaderLen+pb]
		crc := crc32.NewIEEE()
		crc.Write(hdr[:frameCRCOffset])
		crc.Write(body)
		if got := crc.Sum32(); got != h.crc {
			// One damaged frame; the header was plausible so the next
			// boundary is still known. Skip it, keep its siblings.
			out = append(out, burstFrame{err: &CorruptionError{Reason: fmt.Sprintf("inner payload CRC mismatch (got %#x want %#x)", got, h.crc)}})
			off += frameHeaderLen + pb
			continue
		}
		out = append(out, burstFrame{h: h, payload: decodePayload(h, body)})
		off += frameHeaderLen + pb
	}
	if len(out) != count {
		return terminal(fmt.Sprintf("inner frame count %d != envelope's %d", len(out), count))
	}
	return out
}

// releaseBurstFrames returns any decoded payloads of a pending burst to
// the pool (connection teardown with frames still queued).
func releaseBurstFrames(frames []burstFrame) {
	for _, bf := range frames {
		Release(bf.payload)
	}
}

// frameReader decodes a connection's wire stream one frame at a time,
// transparently unpacking burst envelopes: a burst's inner frames are
// queued and handed out on subsequent calls before the socket is read
// again. This is what makes every receiver mode-agnostic — plain frames
// and bursts interleave freely on the same connection.
type frameReader struct {
	r        io.Reader
	size     int
	maxElems int
	pending  []burstFrame
}

// next returns the next frame. The synced flag and error semantics match
// readFrame: synced == true with a *CorruptionError means one frame was
// lost but the stream (and the reader's queue) remain aligned, so the
// caller may keep reading; any other error requires connection teardown.
func (fr *frameReader) next() (h frameHeader, payload []float32, synced bool, err error) {
	for {
		if len(fr.pending) > 0 {
			bf := fr.pending[0]
			fr.pending = fr.pending[1:]
			if bf.err != nil {
				return frameHeader{}, nil, true, bf.err
			}
			return bf.h, bf.payload, true, nil
		}
		hdr := make([]byte, frameHeaderLen)
		if _, err := io.ReadFull(fr.r, hdr); err != nil {
			return frameHeader{}, nil, false, err
		}
		h, err := parseFrameHeader(hdr, fr.size, fr.maxElems)
		if err != nil {
			return frameHeader{}, nil, false, err
		}
		if h.kind != ctlBurst {
			// Plain frame: read and verify its payload in place.
			buf := make([]byte, h.n*h.codec.bytesPerElem())
			if _, err := io.ReadFull(fr.r, buf); err != nil {
				return frameHeader{}, nil, false, err
			}
			crc := crc32.NewIEEE()
			crc.Write(hdr[:frameCRCOffset])
			crc.Write(buf)
			if got := crc.Sum32(); got != h.crc {
				return frameHeader{}, nil, true, &CorruptionError{Reason: fmt.Sprintf("payload CRC mismatch (got %#x want %#x)", got, h.crc)}
			}
			return h, decodePayload(h, buf), true, nil
		}
		// Burst envelope. The header seals itself; a mismatch means the
		// byte count cannot be trusted, so alignment is lost.
		if got := frameCRC(hdr); got != h.crc {
			return frameHeader{}, nil, false, &CorruptionError{Reason: fmt.Sprintf("burst envelope CRC mismatch (got %#x want %#x)", got, h.crc)}
		}
		buf := make([]byte, h.n)
		if _, err := io.ReadFull(fr.r, buf); err != nil {
			return frameHeader{}, nil, false, err
		}
		fr.pending = decodeBurst(buf, int(h.a), fr.size, fr.maxElems)
	}
}

// drop releases any queued inner frames (teardown mid-burst).
func (fr *frameReader) drop() {
	releaseBurstFrames(fr.pending)
	fr.pending = nil
}
