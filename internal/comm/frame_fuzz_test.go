package comm

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// Frame decoding faces the raw network: any byte sequence — truncated
// headers, bogus lengths, corrupted payloads — must come back as an error,
// never a panic and never an allocation sized by unvalidated input.

func FuzzParseFrameHeader(f *testing.F) {
	f.Add(encodeFrame(1, uint32(KindWeight), 0, 3, 4, 9, CodecF32, []float32{1, 2})[:frameHeaderLen])
	f.Add(encodeCtlFrame(0, ctlAck, 0, 17)[:frameHeaderLen])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, frameHeaderLen))
	f.Add(bytes.Repeat([]byte{0x00}, frameHeaderLen-1))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := parseFrameHeader(data, 8, 1<<16)
		if err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("non-corruption error from parser: %v", err)
			}
			return
		}
		if h.n < 0 || h.n > 1<<16 {
			t.Fatalf("accepted implausible payload length %d", h.n)
		}
		if h.src < 0 || h.src >= 8 {
			t.Fatalf("accepted out-of-range source %d", h.src)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	good := encodeFrame(2, uint32(KindGrad), 7, -1, 7, 42, CodecF32, []float32{1.5, -2.5, 0})
	f.Add(good)
	f.Add(good[:len(good)-3]) // truncated payload
	f.Add(good[:frameHeaderLen-5])
	flipped := append([]byte(nil), good...)
	flipped[frameHeaderLen] ^= 0x10 // payload corruption
	f.Add(flipped)
	badLen := append([]byte(nil), good...)
	badLen[36] = 0xFF // huge element count
	badLen[42] = 0xFF
	f.Add(badLen)
	f.Add(append(append([]byte(nil), good...), good...)) // two frames back to back
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			h, payload, _, err := readFrame(r, 8, 1<<12)
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				var ce *CorruptionError
				if !errors.As(err, &ce) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(payload) != h.n {
				t.Fatalf("payload length %d != header %d", len(payload), h.n)
			}
			Release(payload)
		}
	})
}

// A frame that round-trips through the codec must decode to exactly what
// was encoded.
func TestFrameRoundTrip(t *testing.T) {
	payload := []float32{0, -1.25, 3e9, 1e-30}
	wire := encodeFrame(3, uint32(KindAct), 5, -9, 1<<40, 77, CodecF32, payload)
	h, got, synced, err := readFrame(bytes.NewReader(wire), 4, 0)
	if err != nil || !synced {
		t.Fatalf("decode: %v (synced=%v)", err, synced)
	}
	if h.src != 3 || h.kind != uint32(KindAct) || h.epoch != 5 || h.a != -9 || h.b != 1<<40 || h.seq != 77 {
		t.Fatalf("header mismatch: %+v", h)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got[i], payload[i])
		}
	}
	Release(got)
}

// Corrupting any single payload byte must be caught by the CRC, with the
// stream still frame-aligned (synced) so the connection survives.
func TestFramePayloadCorruptionDetected(t *testing.T) {
	wire := encodeFrame(1, uint32(KindWeight), 0, 0, 0, 5, CodecF32, []float32{1, 2, 3})
	for off := frameHeaderLen; off < len(wire); off++ {
		bad := append([]byte(nil), wire...)
		bad[off] ^= 0x01
		_, _, synced, err := readFrame(bytes.NewReader(bad), 4, 0)
		if err == nil {
			t.Fatalf("corruption at byte %d undetected", off)
		}
		if !synced {
			t.Fatalf("corruption at byte %d lost frame alignment", off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corruption at byte %d: wrong error class %v", off, err)
		}
	}
}
