package comm

import (
	"reflect"
	"testing"
)

// FuzzMembershipEvidence hammers the membership-evidence decoder with
// arbitrary bytes, both directly and through the float32 byte-packing
// layer it rides over the wire. The decoder must never panic, and any
// input it accepts must re-encode to the identical byte string (no two
// wire forms for one evidence value — that would let a malformed frame
// masquerade as a different rank's testimony).
func FuzzMembershipEvidence(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeEvidence(Evidence{OldSize: 1}))
	f.Add(EncodeEvidence(Evidence{Epoch: 9, OldSize: 4, Round: 3, From: 2, Dead: []int{0, 3}}))
	f.Add(EncodeEvidence(Evidence{Epoch: 1 << 20, OldSize: 300, Round: 1, From: 299, Dead: []int{5}}))
	trunc := EncodeEvidence(Evidence{OldSize: 4, From: 1, Dead: []int{0, 2, 3}})
	f.Add(trunc[:len(trunc)-3])
	f.Add(append(append([]byte{}, trunc...), 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvidence(data)
		if err == nil {
			re := EncodeEvidence(ev)
			if !reflect.DeepEqual(re, data) {
				t.Fatalf("accepted input is not canonical: %x -> %+v -> %x", data, ev, re)
			}
			if ev.From >= ev.OldSize || ev.From < 0 {
				t.Fatalf("accepted out-of-range From: %+v", ev)
			}
			for i, d := range ev.Dead {
				if d < 0 || d >= ev.OldSize || (i > 0 && d <= ev.Dead[i-1]) {
					t.Fatalf("accepted invalid dead set: %+v", ev)
				}
			}
		}

		// The same bytes through the f32 packing layer: pack/unpack is the
		// identity on byte strings, and unpacking arbitrary payloads never
		// panics either.
		p := PackBytes(data)
		back, err := UnpackBytes(p)
		if err != nil {
			t.Fatalf("UnpackBytes(PackBytes(%d bytes)): %v", len(data), err)
		}
		if len(back) != len(data) || (len(data) > 0 && !reflect.DeepEqual(back, data)) {
			t.Fatalf("pack roundtrip mangled %d bytes", len(data))
		}
		if len(p) > 0 {
			UnpackBytes(p[:len(p)-1]) // truncated payload must not panic
		}
	})
}
