package comm

import (
	"sync"
	"testing"
	"time"

	"weipipe/internal/trace"
)

// TestInprocTraceSpans checks that an attached trace set observes tagged
// send and recv spans from both the copying and donating send paths.
func TestInprocTraceSpans(t *testing.T) {
	c := NewCluster(2)
	set := trace.NewSet(2, 64)
	c.AttachTrace(set)
	t0, t1 := c.Transport(0), c.Transport(1)

	if err := t0.Send(1, Tag{Kind: KindAct, A: 1}, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	owned := GetBuf(2)
	owned[0], owned[1] = 3, 4
	if err := SendOwned(t0, 1, Tag{Kind: KindWeight, A: 2}, owned); err != nil {
		t.Fatal(err)
	}
	for _, tag := range []Tag{{Kind: KindAct, A: 1}, {Kind: KindWeight, A: 2}} {
		p, err := t1.Recv(0, tag)
		if err != nil {
			t.Fatal(err)
		}
		Release(p)
	}

	sends := map[Kind]bool{}
	recvs := map[Kind]bool{}
	for _, e := range set.Events() {
		switch e.Code {
		case trace.CodeSend:
			if e.Rank != 0 || e.B != 1 {
				t.Fatalf("send span from wrong endpoint: %+v", e)
			}
			sends[Kind(e.A)] = true
		case trace.CodeRecv:
			if e.Rank != 1 || e.B != 0 {
				t.Fatalf("recv span from wrong endpoint: %+v", e)
			}
			recvs[Kind(e.A)] = true
		}
	}
	for _, k := range []Kind{KindAct, KindWeight} {
		if !sends[k] {
			t.Fatalf("no send span for kind %d", k)
		}
		if !recvs[k] {
			t.Fatalf("no recv span for kind %d", k)
		}
	}

	// Detach: subsequent traffic must emit nothing new.
	n := len(set.Events())
	c.AttachTrace(nil)
	if err := t0.Send(1, Tag{Kind: KindCtl}, []float32{5}); err != nil {
		t.Fatal(err)
	}
	p, err := t1.Recv(0, Tag{Kind: KindCtl})
	if err != nil {
		t.Fatal(err)
	}
	Release(p)
	if got := len(set.Events()); got != n {
		t.Fatalf("detached cluster still traced: %d -> %d events", n, got)
	}
}

// TestTCPTraceSpans checks the mesh transport's per-rank tracer sees send
// and recv spans across a real socket pair.
func TestTCPTraceSpans(t *testing.T) {
	set := trace.NewSet(2, 256)
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]*TCPTransport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ts[r], errs[r] = DialTCPOpts(r, addrs, TCPOptions{
				DialTimeout: 5 * time.Second,
				Trace:       set.Rank(r),
			})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()

	if err := ts[0].Send(1, Tag{Kind: KindGrad, A: 7}, []float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p, err := ts[1].Recv(0, Tag{Kind: KindGrad, A: 7})
	if err != nil {
		t.Fatal(err)
	}
	Release(p)

	var sawSend, sawRecv bool
	for _, e := range set.Events() {
		if e.Code == trace.CodeSend && e.Rank == 0 && Kind(e.A) == KindGrad && e.B == 1 {
			sawSend = true
		}
		if e.Code == trace.CodeRecv && e.Rank == 1 && Kind(e.A) == KindGrad && e.B == 0 {
			sawRecv = true
		}
	}
	if !sawSend || !sawRecv {
		t.Fatalf("missing tcp spans: send=%v recv=%v", sawSend, sawRecv)
	}
}
