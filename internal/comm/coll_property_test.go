package comm

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"weipipe/internal/tensor"
)

// Property suite for the ring collectives: for random rank counts, vector
// sizes and values, the results must equal the locally-computed reference.

func runAllRanks(t *testing.T, p int, fn func(tr Transport) error) bool {
	t.Helper()
	c := NewCluster(p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(c.Transport(r))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Log(err)
			return false
		}
	}
	return true
}

func TestAllReduceSumProperty(t *testing.T) {
	f := func(seed uint64, pRaw, nRaw uint8) bool {
		p := int(pRaw%6) + 1
		n := int(nRaw%50) + 1
		rng := tensor.NewRNG(seed)
		inputs := make([][]float32, p)
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			inputs[r] = make([]float32, n)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.NormFloat64())
				want[i] += float64(inputs[r][i])
			}
		}
		var mu sync.Mutex
		outputs := make([][]float32, p)
		ok := runAllRanks(t, p, func(tr Transport) error {
			buf := append([]float32(nil), inputs[tr.Rank()]...)
			if err := RingAllReduceSum(tr, buf, 1); err != nil {
				return err
			}
			mu.Lock()
			outputs[tr.Rank()] = buf
			mu.Unlock()
			return nil
		})
		if !ok {
			return false
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if math.Abs(float64(outputs[r][i])-want[i]) > 1e-4*float64(p) {
					return false
				}
			}
			// all ranks bit-identical (each element reduced at one rank
			// then broadcast unchanged)
			for i := 0; i < n; i++ {
				if outputs[r][i] != outputs[0][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterThenGatherIsAllReduce(t *testing.T) {
	// Property: reduce-scatter followed by all-gather of the shards equals
	// all-reduce — the decomposition NCCL (and our FSDP) relies on.
	f := func(seed uint64, pRaw, nRaw uint8) bool {
		p := int(pRaw%5) + 1
		n := int(nRaw%40) + p // ensure n ≥ p
		rng := tensor.NewRNG(seed)
		inputs := make([][]float32, p)
		for r := 0; r < p; r++ {
			inputs[r] = make([]float32, n)
			for i := range inputs[r] {
				inputs[r][i] = float32(rng.NormFloat64())
			}
		}
		shards := ShardRanges(n, p)
		lens := make([]int, p)
		for i, s := range shards {
			lens[i] = s[1] - s[0]
		}
		var mu sync.Mutex
		viaRS := make([][]float32, p)
		viaAR := make([][]float32, p)
		ok := runAllRanks(t, p, func(tr Transport) error {
			buf := append([]float32(nil), inputs[tr.Rank()]...)
			shard, err := ReduceScatterSum(tr, buf, 1)
			if err != nil {
				return err
			}
			full, err := AllGather(tr, shard, lens, 2)
			if err != nil {
				return err
			}
			buf2 := append([]float32(nil), inputs[tr.Rank()]...)
			if err := RingAllReduceSum(tr, buf2, 3); err != nil {
				return err
			}
			mu.Lock()
			viaRS[tr.Rank()] = full
			viaAR[tr.Rank()] = buf2
			mu.Unlock()
			return nil
		})
		if !ok {
			return false
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if math.Abs(float64(viaRS[r][i]-viaAR[r][i])) > 1e-4*float64(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastProperty(t *testing.T) {
	f := func(seed uint64, pRaw, rootRaw, nRaw uint8) bool {
		p := int(pRaw%6) + 1
		root := int(rootRaw) % p
		n := int(nRaw%30) + 1
		rng := tensor.NewRNG(seed)
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		var mu sync.Mutex
		out := make([][]float32, p)
		ok := runAllRanks(t, p, func(tr Transport) error {
			var data []float32
			if tr.Rank() == root {
				data = append([]float32(nil), src...)
			}
			got, err := Broadcast(tr, root, data, 1)
			if err != nil {
				return err
			}
			mu.Lock()
			out[tr.Rank()] = got
			mu.Unlock()
			return nil
		})
		if !ok {
			return false
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if out[r][i] != src[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
