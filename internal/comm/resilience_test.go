package comm

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to at most
// base (plus a small slack for runtime helpers), failing after 3 seconds.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRecvTimeoutInproc(t *testing.T) {
	c := NewCluster(2)
	defer c.Close()
	tr := c.Transport(0)
	start := time.Now()
	_, err := tr.RecvTimeout(1, Tag{Kind: KindAct, A: 1}, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout error, got %v", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Src != 1 {
		t.Fatalf("want *TimeoutError with Src=1, got %#v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("returned after %v, before the deadline", elapsed)
	}
	if got := c.Stats(0).Faults(1).Timeouts; got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
}

func TestRecvTimeoutDeliveredInTime(t *testing.T) {
	c := NewCluster(2)
	defer c.Close()
	go func() {
		time.Sleep(10 * time.Millisecond)
		c.Transport(1).Send(0, Tag{A: 5}, []float32{7})
	}()
	got, err := c.Transport(0).RecvTimeout(1, Tag{A: 5}, time.Second)
	if err != nil || got[0] != 7 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// Close must fail every pending Recv — a blocked runner has to come home
// when its endpoint dies (regression: Recv used to hang forever).
func TestCloseFailsPendingRecvInproc(t *testing.T) {
	c := NewCluster(2)
	tr := c.Transport(0)
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := tr.Recv(1, Tag{Kind: KindGrad, A: i})
			errc <- err
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let both park in Recv
	tr.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("want ErrClosed, got %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Recv still blocked after Close")
		}
	}
}

func TestCloseFailsPendingRecvTCP(t *testing.T) {
	trs := dialMesh(t, 2)
	errc := make(chan error, 1)
	go func() {
		_, err := trs[0].Recv(1, Tag{Kind: KindGrad, A: 1})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	trs[0].Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Recv returned data after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv still blocked after Close")
	}
}

// dropPattern sends n tagged messages through a FaultTransport and returns
// which ordinals were dropped (observed via receive timeouts).
func dropPattern(t *testing.T, seed uint64, n int) []bool {
	t.Helper()
	c := NewCluster(2)
	defer c.Close()
	ft := NewFaultTransport(c.Transport(0), FaultConfig{
		Seed:    seed,
		Default: LinkFaults{DropProb: 0.3},
	})
	for i := 0; i < n; i++ {
		if err := ft.Send(1, Tag{Kind: KindAct, A: i}, []float32{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pat := make([]bool, n)
	rx := c.Transport(1)
	for i := 0; i < n; i++ {
		_, err := rx.RecvTimeout(0, Tag{Kind: KindAct, A: i}, 30*time.Millisecond)
		pat[i] = errors.Is(err, ErrTimeout)
	}
	drops, _, _, _, sends := ft.Injected()
	if sends != int64(n) {
		t.Fatalf("sends = %d, want %d", sends, n)
	}
	got := 0
	for _, d := range pat {
		if d {
			got++
		}
	}
	if int64(got) != drops {
		t.Fatalf("observed %d missing messages, injector reports %d drops", got, drops)
	}
	return pat
}

// Fault decisions must be a pure function of the seed: the same scenario
// replays identically, and a different seed gives a different pattern.
func TestFaultTransportDeterministic(t *testing.T) {
	const n = 120
	a := dropPattern(t, 42, n)
	b := dropPattern(t, 42, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at message %d", i)
		}
	}
	other := dropPattern(t, 43, n)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestFaultTransportDup(t *testing.T) {
	c := NewCluster(2)
	defer c.Close()
	ft := NewFaultTransport(c.Transport(0), FaultConfig{Default: LinkFaults{DupProb: 1}})
	ft.Send(1, Tag{A: 1}, []float32{9})
	rx := c.Transport(1)
	for i := 0; i < 2; i++ {
		got, err := rx.RecvTimeout(0, Tag{A: 1}, time.Second)
		if err != nil || got[0] != 9 {
			t.Fatalf("copy %d: %v %v", i, got, err)
		}
	}
}

func TestFaultTransportReorder(t *testing.T) {
	c := NewCluster(2)
	defer c.Close()
	ft := NewFaultTransport(c.Transport(0), FaultConfig{Default: LinkFaults{ReorderProb: 1}})
	ft.Send(1, Tag{Kind: KindAct}, []float32{1}) // held
	ft.Send(1, Tag{Kind: KindAct}, []float32{2}) // held; releases 1
	got, err := c.Transport(1).RecvTimeout(0, Tag{Kind: KindAct}, time.Second)
	if err != nil || got[0] != 1 {
		t.Fatalf("after swap, first delivery = %v (%v), want 1", got, err)
	}
	if err := ft.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err = c.Transport(1).RecvTimeout(0, Tag{Kind: KindAct}, time.Second)
	if err != nil || got[0] != 2 {
		t.Fatalf("flushed delivery = %v (%v), want 2", got, err)
	}
}

func TestFaultTransportCrashAtSend(t *testing.T) {
	c := NewCluster(2)
	defer c.Close()
	ft := NewFaultTransport(c.Transport(0), FaultConfig{CrashAtSend: 3})
	for i := 1; i <= 2; i++ {
		if err := ft.Send(1, Tag{A: i}, []float32{1}); err != nil {
			t.Fatalf("send %d before crash: %v", i, err)
		}
	}
	if err := ft.Send(1, Tag{A: 3}, []float32{1}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash send: want ErrCrashed, got %v", err)
	}
	if !ft.Crashed() {
		t.Fatal("Crashed() = false after scheduled crash")
	}
	if err := ft.Send(1, Tag{A: 4}, []float32{1}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash send: want ErrCrashed, got %v", err)
	}
	if _, err := ft.Recv(1, Tag{A: 1}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash recv: want ErrCrashed, got %v", err)
	}
	// The crash closed the underlying endpoint: its own pending state fails.
	if _, err := c.Transport(0).Recv(1, Tag{A: 9}); err == nil {
		t.Fatal("underlying transport survived the crash")
	}
}

// chaosMesh brings up a 2-rank TCP mesh with aggressive frame-level fault
// injection and test-scale timeouts.
func chaosMesh(t *testing.T, chaos *ChaosConfig, peerDead time.Duration) []*TCPTransport {
	t.Helper()
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := TCPOptions{
		DialTimeout:       5 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		PeerDeadTimeout:   peerDead,
		RetransmitTimeout: 40 * time.Millisecond,
		ReconnectBackoff:  5 * time.Millisecond,
		Chaos:             chaos,
	}
	trs := make([]*TCPTransport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = DialTCPOpts(r, addrs, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

// The reliability layer must mask every chaos fault: with drops, dups,
// reordering, corruption and periodic connection resets injected below the
// sequence layer, a long same-tag stream still arrives complete and in
// order.
func TestTCPChaosMaskedDelivery(t *testing.T) {
	trs := chaosMesh(t, &ChaosConfig{
		Seed:       7,
		Drop:       0.15,
		Dup:        0.15,
		Reorder:    0.10,
		Corrupt:    0.08,
		ResetEvery: 41,
	}, 10*time.Second)
	const n = 250
	var wg sync.WaitGroup
	for dir := 0; dir < 2; dir++ {
		src, dst := dir, 1-dir
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := trs[src].Send(dst, Tag{Kind: KindAct}, []float32{float32(i)}); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				got, err := trs[dst].RecvTimeout(src, Tag{Kind: KindAct}, 20*time.Second)
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if got[0] != float32(i) {
					t.Errorf("order broken at %d: got %v", i, got[0])
					Release(got)
					return
				}
				Release(got)
			}
		}()
	}
	wg.Wait()
	// The chaos parameters guarantee faults happened; the counters must show
	// the machinery actually working, not the test passing vacuously.
	total := NewStats()
	total.Add(trs[0].CommStats())
	total.Add(trs[1].CommStats())
	f := total.TotalFaults()
	if f.Retransmits == 0 {
		t.Error("no retransmissions recorded under 15% frame drop")
	}
	if f.DupFrames == 0 {
		t.Error("no duplicate frames recorded under 15% dup injection")
	}
	if f.CorruptFrames == 0 {
		t.Error("no corrupt frames recorded under 8% corruption injection")
	}
	if f.Reconnects == 0 {
		t.Error("no reconnections recorded with ResetEvery=41")
	}
}

// A peer that vanishes (process killed) must be detected by heartbeat
// silence and declared dead, failing pending receives with *PeerDeadError
// instead of hanging.
func TestTCPPeerDeathFailsPendingRecv(t *testing.T) {
	trs := chaosMesh(t, nil, 300*time.Millisecond)
	errc := make(chan error, 1)
	go func() {
		_, err := trs[0].Recv(1, Tag{Kind: KindGrad, A: 1})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	trs[1].Close() // rank 1 "dies": connections drop, no reconnection follows
	select {
	case err := <-errc:
		var pd *PeerDeadError
		if !errors.As(err, &pd) || pd.Rank != 1 {
			t.Fatalf("want *PeerDeadError{Rank: 1}, got %v", err)
		}
		if !errors.Is(err, ErrPeerDead) {
			t.Fatalf("error does not match ErrPeerDead sentinel: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer death not detected; Recv still blocked")
	}
}

// A peer that never comes up must fail DialTCP with a per-peer error after
// the configured timeout — and leak nothing.
func TestTCPDialTimeout(t *testing.T) {
	base := runtime.NumGoroutine()
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = DialTCPOpts(0, addrs, TCPOptions{DialTimeout: 250 * time.Millisecond})
	if err == nil {
		t.Fatal("dial with absent peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dial failure took %v, deadline was 250ms", elapsed)
	}
	waitGoroutines(t, base)
}

func TestTCPCloseLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	trs := dialMesh(t, 3)
	go trs[0].Send(1, Tag{A: 1}, []float32{1})
	trs[1].Recv(0, Tag{A: 1})
	for _, tr := range trs {
		tr.Close()
	}
	waitGoroutines(t, base)
}

func TestTCPRecvTimeoutCounts(t *testing.T) {
	trs := dialMesh(t, 2)
	_, err := trs[0].RecvTimeout(1, Tag{A: 1}, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	if got := trs[0].CommStats().Faults(1).Timeouts; got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
}

func TestStatsStringIncludesFaults(t *testing.T) {
	s := newStats()
	s.record(KindWeight, 10, 4)
	s.recordRetransmit(1, 3)
	s.recordDup(1)
	out := s.String()
	if want := "peer1[rtx=3 to=0 rc=0 hb=0 crc=0 dup=1 stale=0]"; !contains(out, want) {
		t.Fatalf("stats string %q missing %q", out, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
