package comm

import "weipipe/internal/tensor"

// Wire codecs. A transport can negotiate a per-Tag payload encoding: belt
// traffic (whole weight and weight-gradient chunks) tolerates bf16 rounding
// and halves its wire bytes — the paper's communication-volume recipe —
// while control scalars, collectives and activation tensors stay f32.
//
// The codec is a property of the *send*: the payload is rounded through the
// codec's value domain at the send boundary (in process) or encoded at that
// width on the wire (TCP), so both transports deliver bit-identical values
// for the same codec choice.

// WireCodec names a payload encoding.
type WireCodec uint8

const (
	// CodecF32 ships payloads as 4-byte float32 (the default, lossless).
	CodecF32 WireCodec = iota
	// CodecBF16 ships payloads as 2-byte bfloat16 (round-to-nearest-even),
	// halving wire bytes at ~3 decimal digits of mantissa.
	CodecBF16

	// codecCount is one past the highest codec; the frame decoder validates
	// against it.
	codecCount
)

// bytesPerElem returns the wire width of one element under the codec.
func (c WireCodec) bytesPerElem() int {
	if c == CodecBF16 {
		return 2
	}
	return 4
}

// CodecFunc selects the codec for a message tag. A nil CodecFunc means
// CodecF32 for everything.
type CodecFunc func(Tag) WireCodec

// BeltBF16 is the codec policy matching the paper's wire format: weight and
// weight-gradient belt chunks (and their buddy-replication copies) travel
// in bf16; everything else — activations, collectives, control — stays f32.
func BeltBF16(tag Tag) WireCodec {
	switch tag.Kind {
	case KindWeight, KindGrad, KindBuddy:
		return CodecBF16
	}
	return CodecF32
}

// CodecProvider is implemented by transports that can report which wire
// codec a tag's payload travels under. The integrity layer uses it to seal
// chunk checksums over the canonical wire-value domain even when the
// trainer options don't spell the codec out (a caller-built transport).
type CodecProvider interface {
	// WireCodec returns the codec applied to payloads sent under tag.
	WireCodec(tag Tag) WireCodec
}

// codecFor resolves f(tag) with the nil-policy default.
func codecFor(f CodecFunc, tag Tag) WireCodec {
	if f == nil {
		return CodecF32
	}
	return f(tag)
}

// applyCodec projects payload into the codec's value domain in place. The
// in-process transport uses it so receivers observe exactly the values a
// wire round-trip would produce.
func applyCodec(c WireCodec, payload []float32) {
	if c == CodecBF16 {
		tensor.RoundBF16Slice(payload)
	}
}
