package comm

import (
	"fmt"
	"time"
)

// Group is a Transport view of a subset of a parent transport's ranks —
// the analogue of an MPI sub-communicator. Hybrid 2-D parallelism uses
// groups to run WeiPipe rings inside data-parallel replicas: each inner
// ring is a group, and each cross-replica gradient exchange is another.
//
// Tags are salted with the group id so that two groups (or a group and its
// parent) can never cross-match messages even when their protocols reuse
// the same (Kind, A, B) tuples.
type Group struct {
	parent Transport
	ranks  []int // group rank -> parent rank
	me     int   // my group rank
	salt   int
}

// NewGroup builds the group view of parent for the given parent ranks.
// salt must be unique among all groups sharing the parent (and non-zero to
// stay disjoint from un-salted parent traffic). The calling rank must be a
// member.
func NewGroup(parent Transport, ranks []int, salt int) (*Group, error) {
	if salt == 0 {
		return nil, fmt.Errorf("comm: group salt must be non-zero")
	}
	if len(ranks) == 0 {
		return nil, fmt.Errorf("comm: empty group")
	}
	me := -1
	seen := make(map[int]bool, len(ranks))
	for i, r := range ranks {
		if r < 0 || r >= parent.Size() {
			return nil, fmt.Errorf("comm: group rank %d outside parent size %d", r, parent.Size())
		}
		if seen[r] {
			return nil, fmt.Errorf("comm: duplicate rank %d in group", r)
		}
		seen[r] = true
		if r == parent.Rank() {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("comm: rank %d is not a member of the group %v", parent.Rank(), ranks)
	}
	return &Group{parent: parent, ranks: append([]int(nil), ranks...), me: me, salt: salt}, nil
}

// saltTag folds the group salt into the tag's B field high bits.
func (g *Group) saltTag(tag Tag) Tag {
	tag.B ^= g.salt << 55
	return tag
}

// Rank implements Transport (the group-local rank).
func (g *Group) Rank() int { return g.me }

// Size implements Transport (the group size).
func (g *Group) Size() int { return len(g.ranks) }

// Send implements Transport.
func (g *Group) Send(dst int, tag Tag, data []float32) error {
	if dst < 0 || dst >= len(g.ranks) {
		return fmt.Errorf("comm: group send to invalid rank %d", dst)
	}
	return g.parent.Send(g.ranks[dst], g.saltTag(tag), data)
}

// SendOwned implements OwnedSender: donation passes straight through to the
// parent (with the group's rank mapping and tag salt), so a zero-copy
// parent keeps the handoff zero-copy inside a group. Ownership transfers
// even on the invalid-rank error path, matching the package contract.
func (g *Group) SendOwned(dst int, tag Tag, payload []float32) error {
	if dst < 0 || dst >= len(g.ranks) {
		Release(payload)
		return fmt.Errorf("comm: group send to invalid rank %d", dst)
	}
	return SendOwned(g.parent, g.ranks[dst], g.saltTag(tag), payload)
}

// CommStats implements Meter when the parent does; groups share the
// parent's meter (their traffic is parent traffic). Returns nil otherwise.
func (g *Group) CommStats() *Stats {
	if m, ok := g.parent.(Meter); ok {
		return m.CommStats()
	}
	return nil
}

// Recv implements Transport.
func (g *Group) Recv(src int, tag Tag) ([]float32, error) {
	if src < 0 || src >= len(g.ranks) {
		return nil, fmt.Errorf("comm: group recv from invalid rank %d", src)
	}
	return g.parent.Recv(g.ranks[src], g.saltTag(tag))
}

// RecvTimeout implements Transport.
func (g *Group) RecvTimeout(src int, tag Tag, timeout time.Duration) ([]float32, error) {
	if src < 0 || src >= len(g.ranks) {
		return nil, fmt.Errorf("comm: group recv from invalid rank %d", src)
	}
	return g.parent.RecvTimeout(g.ranks[src], g.saltTag(tag), timeout)
}

// Close implements Transport; closing a group is a no-op (the parent owns
// the resources).
func (g *Group) Close() error { return nil }

var _ Transport = (*Group)(nil)
