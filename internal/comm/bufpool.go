package comm

import (
	"math/bits"
	"sync"
)

// Payload buffer recycling. Every Send copies its payload at the boundary
// (isolation between ranks), which in a training iteration means thousands of
// multi-kilobyte allocations for weight, gradient and activation payloads.
// The pool recycles those buffers through size-classed sync.Pools: Send draws
// its copy from the pool, and receivers hand exhausted payloads back with
// Release once they have folded them into local state.
//
// Classes grow by powers of two from bufMinLen elements; a buffer is filed
// under the largest class not exceeding its capacity, so anything fetched
// from class c is guaranteed to hold bufMinLen<<c elements.

const (
	bufMinLen     = 64
	bufNumClasses = 22 // largest class: 64<<21 ≈ 134M floats (536 MB)
)

var bufPools [bufNumClasses]sync.Pool

// hdrPool recycles the *[]float32 headers that carry buffers in and out of
// the size-classed pools. Without it every Release heap-allocates the header
// it hands to sync.Pool.Put, which would put one allocation on the belt
// engine's per-chunk hot path (see TestBeltHotPathZeroAlloc).
var hdrPool = sync.Pool{New: func() any { return new([]float32) }}

// bufClassCeil returns the smallest class whose guaranteed capacity holds n
// elements, or bufNumClasses if n exceeds every class.
func bufClassCeil(n int) int {
	if n <= bufMinLen {
		return 0
	}
	return bits.Len(uint(n-1) >> 6)
}

// bufClassFloor returns the largest class whose guaranteed capacity is at
// most c elements, or -1 if c is below the smallest class.
func bufClassFloor(c int) int {
	if c < bufMinLen {
		return -1
	}
	f := bits.Len(uint(c)>>6) - 1
	if f >= bufNumClasses {
		f = bufNumClasses - 1
	}
	return f
}

// GetBuf returns a length-n buffer with arbitrary contents, recycled from the
// pool when one is available. The caller owns it until it is passed to
// Release (or retained forever). Callers must overwrite all n elements.
func GetBuf(n int) []float32 {
	if n == 0 {
		return nil
	}
	if c := bufClassCeil(n); c < bufNumClasses {
		if v := bufPools[c].Get(); v != nil {
			h := v.(*[]float32)
			buf := (*h)[:n]
			*h = nil
			hdrPool.Put(h)
			return buf
		}
		return make([]float32, n, bufMinLen<<c)
	}
	return make([]float32, n)
}

// Release hands a payload buffer back to the transport pool for reuse by a
// later Send. The caller must own buf exclusively and must not touch it
// afterwards. Payloads that were retained — wrapped in a tensor that outlives
// the call, or returned to other code — must never be released. Releasing
// foreign buffers is safe but pointless; nil and tiny buffers are dropped.
func Release(buf []float32) {
	c := bufClassFloor(cap(buf))
	if c < 0 {
		return
	}
	h := hdrPool.Get().(*[]float32)
	*h = buf[:cap(buf)]
	bufPools[c].Put(h)
}
