package comm

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"
)

// randomPayload builds a body+trailer buffer of n body elements with
// pseudo-random finite values.
func randomPayload(rng *rand.Rand, n int) []float32 {
	buf := make([]float32, n+ChecksumTrailerLen)
	for i := 0; i < n; i++ {
		buf[i] = float32(rng.NormFloat64())
	}
	return buf
}

func TestSealVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, codec := range []WireCodec{CodecF32, CodecBF16} {
		for _, n := range []int{1, 7, 128, 1000} {
			buf := randomPayload(rng, n)
			RoundToWire(codec, ChunkBody(buf))
			SealChunk(buf)
			if _, _, ok := VerifyChunk(buf); !ok {
				t.Fatalf("codec %v n=%d: fresh seal did not verify", codec, n)
			}
		}
	}
}

// TestSealSurvivesWireCodec is the core trailer property: a chunk sealed at
// its origin (over codec-rounded values) still verifies after any number of
// encode/decode round trips through that codec, because rounding is
// idempotent and the trailer's byte-valued floats are exact in bf16.
func TestSealSurvivesWireCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := randomPayload(rng, 513)
	RoundToWire(CodecBF16, ChunkBody(buf))
	SealChunk(buf)
	for hop := 0; hop < 3; hop++ {
		// Simulate a wire hop: every element (trailer included) goes through
		// the bf16 encode/decode pair.
		applyCodec(CodecBF16, buf)
		if want, got, ok := VerifyChunk(buf); !ok {
			t.Fatalf("hop %d: want %08x got %08x", hop, want, got)
		}
	}
}

func TestVerifyCatchesBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, codec := range []WireCodec{CodecF32, CodecBF16} {
		buf := randomPayload(rng, 257)
		RoundToWire(codec, ChunkBody(buf))
		SealChunk(buf)
		for trial := 0; trial < 64; trial++ {
			idx := rng.Intn(len(buf) - ChecksumTrailerLen)
			bit := uint(rng.Intn(31)) // avoid the sign of a zero edge case only at bit 31? keep all but NaN payload subtleties
			old := buf[idx]
			flipped := math.Float32frombits(math.Float32bits(old) ^ 1<<bit)
			if flipped == old {
				continue // flipping a zeroed mantissa bit of ±0 may round-trip
			}
			buf[idx] = flipped
			if _, _, ok := VerifyChunk(buf); ok {
				t.Fatalf("codec %v: flip idx=%d bit=%d went undetected", codec, idx, bit)
			}
			buf[idx] = old
			if _, _, ok := VerifyChunk(buf); !ok {
				t.Fatalf("codec %v: restore did not verify", codec)
			}
		}
	}
}

func TestVerifyCatchesTrailerCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	buf := randomPayload(rng, 64)
	SealChunk(buf)
	trailer := buf[len(buf)-ChecksumTrailerLen:]
	old := trailer[2]
	trailer[2] = old + 1
	if trailer[2] == old {
		t.Skip("degenerate trailer byte")
	}
	if _, _, ok := VerifyChunk(buf); ok {
		t.Fatal("corrupted trailer byte went undetected")
	}
}

// TestVerifyRejectsNonByteTrailer: a trailer whose floats are not exact
// bytes (e.g. damaged by a lossy codec that doesn't preserve 0..255, or by
// random corruption) must fail closed rather than decode to garbage.
func TestVerifyRejectsNonByteTrailer(t *testing.T) {
	buf := make([]float32, 8+ChecksumTrailerLen)
	SealChunk(buf)
	buf[8] = 0.5 // trailer byte 0 no longer byte-valued
	if _, _, ok := VerifyChunk(buf); ok {
		t.Fatal("non-byte trailer accepted")
	}
	buf[8] = 256
	if _, _, ok := VerifyChunk(buf); ok {
		t.Fatal("out-of-range trailer accepted")
	}
	buf[8] = float32(math.NaN())
	if _, _, ok := VerifyChunk(buf); ok {
		t.Fatal("NaN trailer accepted")
	}
}

func TestChecksumSliceMatchesSeal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	buf := randomPayload(rng, 300)
	SealChunk(buf)
	want, got, ok := VerifyChunk(buf)
	if !ok {
		t.Fatal("fresh seal did not verify")
	}
	if want != got {
		t.Fatalf("want %08x got %08x", want, got)
	}
	if c := ChecksumSlice(ChunkBody(buf)); c != want {
		t.Fatalf("ChecksumSlice %08x, trailer %08x", c, want)
	}
	// Cross-check the slicing-by-4 implementation against the stdlib over
	// the equivalent byte stream.
	body := ChunkBody(buf)
	raw := make([]byte, 4*len(body))
	for i, v := range body {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if ref := crc32.ChecksumIEEE(raw); ref != want {
		t.Fatalf("ChecksumSlice %08x disagrees with crc32.ChecksumIEEE %08x", want, ref)
	}
}

func TestChecksumSliceZeroAlloc(t *testing.T) {
	buf := make([]float32, 4096)
	for i := range buf {
		buf[i] = float32(i) * 0.25
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = ChecksumSlice(buf)
	})
	if allocs != 0 {
		t.Fatalf("ChecksumSlice allocates %.1f per call, want 0", allocs)
	}
}

// FuzzChunkChecksum fuzzes the full seal→(optional bf16 wire hop)→verify
// path: whatever the body bytes, a sealed chunk must verify, and any
// single-bit body flip must be caught.
func FuzzChunkChecksum(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0}, uint8(0), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(17), true)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f}, uint8(30), true)
	f.Fuzz(func(t *testing.T, raw []byte, flipBit uint8, bf16 bool) {
		n := len(raw) / 4
		if n == 0 || n > 1<<12 {
			t.Skip()
		}
		buf := make([]float32, n+ChecksumTrailerLen)
		for i := 0; i < n; i++ {
			bits := uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 | uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
			buf[i] = math.Float32frombits(bits)
		}
		codec := CodecF32
		if bf16 {
			codec = CodecBF16
		}
		RoundToWire(codec, ChunkBody(buf))
		SealChunk(buf)
		if _, _, ok := VerifyChunk(buf); !ok {
			t.Fatal("sealed chunk does not verify")
		}
		// One wire hop must preserve the seal.
		applyCodec(codec, buf)
		if _, _, ok := VerifyChunk(buf); !ok {
			t.Fatal("seal broken by its own codec")
		}
		// A body bit flip must break it — unless the flip is invisible in
		// the checksummed domain (same bit pattern after the round trip).
		idx := int(flipBit) % n
		bit := uint(flipBit % 32)
		old := math.Float32bits(buf[idx])
		buf[idx] = math.Float32frombits(old ^ 1<<bit)
		if math.Float32bits(buf[idx]) == old {
			t.Skip()
		}
		if _, _, ok := VerifyChunk(buf); ok {
			t.Fatalf("bit flip idx=%d bit=%d undetected", idx, bit)
		}
	})
}
