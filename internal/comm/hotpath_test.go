package comm

import "testing"

// TestBeltHotPathZeroAlloc pins the allocation count of the overlapped belt
// engine's per-chunk transport cycle: GetBuf → SendOwned → Recv → Release.
// The engine runs this cycle for every weight hop (R·p per belt per rank per
// iteration) with multi-megabyte payloads, so a single allocation here turns
// into steady GC pressure under training. With a warmed buffer pool and
// mailbox freelist the cycle must not allocate at all: SendOwned donates the
// buffer (no copy), deliver reuses a recycled queue slice, and Release hands
// the buffer back through a recycled header.
func TestBeltHotPathZeroAlloc(t *testing.T) {
	c := NewCluster(2)
	defer c.Close()
	sender, ok := c.Transport(0).(OwnedSender)
	if !ok {
		t.Fatal("inproc transport must implement OwnedSender")
	}
	recv := c.Transport(1)
	tag := Tag{Kind: KindWeight, A: 1, B: 7}
	const n = 4096

	cycle := func() {
		buf := GetBuf(n)
		if err := sender.SendOwned(1, tag, buf); err != nil {
			t.Fatalf("SendOwned: %v", err)
		}
		payload, err := recv.Recv(0, tag)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		Release(payload)
	}
	for i := 0; i < 8; i++ {
		cycle() // warm the pools and the mailbox queue freelist
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs > 0 {
		t.Fatalf("belt hot path allocates %.1f times per SendOwned/Recv/Release cycle, want 0", allocs)
	}
}
