package comm

import (
	"fmt"
	"hash/crc32"
	"math"
)

// End-to-end chunk integrity. The TCP frame CRC (PR 2) protects a payload
// while it is *on the wire*; nothing protects it while it sits in a relay
// rank's staging buffer, survives a lossy re-encode, or waits in a mailbox.
// This file adds a checksum that travels *with* the data: the chunk's
// origin seals a CRC32 trailer over the payload, every relay hop forwards
// it untouched, and the consumer verifies it just before use — so a bit
// flipped anywhere along the multi-hop belt path is detected at the point
// of consumption, no matter which hop's memory it happened in.
//
// The trailer must itself survive the belt's lossy wire codecs (bf16, and
// the optional f16 master-weight rounding). It therefore carries the CRC as
// four float32 elements, each holding one checksum byte as an exact small
// integer: every integer in [0, 255] is exactly representable in bf16
// (8 significant bits) and f16 (11), so round-to-nearest-even re-encoding
// is the identity on trailer elements. The checksum is computed over the
// payload's *canonical wire-value domain* — the origin first projects the
// payload through the link codec (RoundToWire), which is idempotent, so
// the values the consumer receives after any number of lossy re-encodes
// are bit-identical to the values the CRC covered.

// ChecksumTrailerLen is the number of float32 elements a sealed chunk
// carries after its payload: four, one per CRC32 byte.
const ChecksumTrailerLen = 4

// crcTable is the table for the IEEE polynomial (the same one the TCP
// frame layer uses), built once.
var crcTable = crc32.MakeTable(crc32.IEEE)

// crcSlicing extends crcTable to slicing-by-4: table k advances a byte
// that still has k more bytes behind it in the same word. Four lookups
// retire a whole float32 per step, so checksumming needs no staging
// buffer (and no heap traffic — crc32.Update's []byte argument escapes).
var crcSlicing = makeSlicingTables()

func makeSlicingTables() *[4][256]uint32 {
	var t [4][256]uint32
	for i := 0; i < 256; i++ {
		c := crcTable[i]
		t[0][i] = c
		for k := 1; k < 4; k++ {
			c = crcTable[c&0xff] ^ (c >> 8)
			t[k][i] = c
		}
	}
	return &t
}

// ChecksumSlice returns the CRC32 (IEEE) over the little-endian bit
// patterns of payload — bit-identical to crc32.ChecksumIEEE of the same
// bytes. It allocates nothing: each float32 is folded into the running CRC
// directly as a 4-byte little-endian word.
func ChecksumSlice(payload []float32) uint32 {
	t := crcSlicing
	crc := ^uint32(0)
	for _, v := range payload {
		crc ^= math.Float32bits(v)
		crc = t[3][crc&0xff] ^ t[2][crc>>8&0xff] ^ t[1][crc>>16&0xff] ^ t[0][crc>>24]
	}
	return ^crc
}

// RoundToWire projects payload into the codec's value domain in place —
// the canonical form a receiver observes after a wire round-trip. Origins
// seal checksums over this domain so lossy re-encoding verifies cleanly.
func RoundToWire(c WireCodec, payload []float32) { applyCodec(c, payload) }

// SealChunk writes the checksum trailer into the last ChecksumTrailerLen
// elements of buf, covering everything before them. The caller must have
// already projected the body into the wire-value domain (RoundToWire);
// SealChunk itself is codec-agnostic.
func SealChunk(buf []float32) {
	body := buf[:len(buf)-ChecksumTrailerLen]
	crc := ChecksumSlice(body)
	t := buf[len(buf)-ChecksumTrailerLen:]
	t[0] = float32(crc & 0xff)
	t[1] = float32((crc >> 8) & 0xff)
	t[2] = float32((crc >> 16) & 0xff)
	t[3] = float32((crc >> 24) & 0xff)
}

// trailerCRC reassembles the CRC carried by a sealed chunk's trailer.
// ok=false means the trailer elements are not byte-valued — itself a
// corruption (or a buffer that was never sealed).
func trailerCRC(buf []float32) (crc uint32, ok bool) {
	t := buf[len(buf)-ChecksumTrailerLen:]
	for i := 3; i >= 0; i-- {
		v := t[i]
		b := uint32(v)
		if float32(b) != v || b > 0xff {
			return 0, false
		}
		crc = crc<<8 | b
	}
	return crc, true
}

// VerifyChunk checks a sealed chunk. It returns the carried and recomputed
// checksums and whether they agree; callers wrap a mismatch into an
// IntegrityError with their site context.
func VerifyChunk(buf []float32) (want, got uint32, ok bool) {
	if len(buf) < ChecksumTrailerLen {
		return 0, 0, false
	}
	want, tok := trailerCRC(buf)
	got = ChecksumSlice(buf[:len(buf)-ChecksumTrailerLen])
	return want, got, tok && want == got
}

// ChunkBody returns the payload of a sealed chunk, without the trailer.
func ChunkBody(buf []float32) []float32 { return buf[:len(buf)-ChecksumTrailerLen] }

// IntegritySite names where an integrity check ran, for error reports and
// telemetry.
type IntegritySite string

// The detection points of the integrity layer (DESIGN.md §15).
const (
	// SiteBelt: a weight- or gradient-belt chunk verified at consumption.
	SiteBelt IntegritySite = "belt"
	// SiteRetire: the fully-accumulated gradient verified at its owner.
	SiteRetire IntegritySite = "retire"
	// SiteBuddy: a buddy-replication copy verified before shadow replay.
	SiteBuddy IntegritySite = "buddy"
	// SiteWeights: the resident fp32 master weights guard.
	SiteWeights IntegritySite = "resident-weights"
	// SiteMoments: the resident optimizer-moment guard.
	SiteMoments IntegritySite = "resident-moments"
	// SiteKernel: an ABFT matmul check (tensor layer).
	SiteKernel IntegritySite = "kernel"
	// SiteCheckpoint: a per-tensor checkpoint digest (checkpoint layer).
	SiteCheckpoint IntegritySite = "checkpoint"
)

// IntegrityError reports detected silent data corruption: a sealed chunk,
// resident buffer or kernel result whose checksum no longer matches. It
// matches ErrIntegrity, and RunResilient treats the detecting rank's state
// as lost — the same evidence → agreement → buddy-harvest/checkpoint
// repair path a crash takes — rather than training on the corrupt values.
type IntegrityError struct {
	// Rank is the rank that detected the mismatch.
	Rank int
	// Site is the detection point.
	Site IntegritySite
	// Kind is the message kind for belt-side checks (KindCtl for resident
	// and kernel checks, which never crossed a transport).
	Kind Kind
	// Chunk is the belt chunk (or owned-chunk) index, -1 when not chunked.
	Chunk int
	// Want is the checksum carried by the trailer (or cached by the
	// resident guard); Got is the one recomputed over the data.
	Want, Got uint32
	// Cause carries a lower-layer error (an ABFT report), may be nil.
	Cause error
}

func (e *IntegrityError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("comm: integrity failure at rank %d site %s: %v", e.Rank, e.Site, e.Cause)
	}
	return fmt.Sprintf("comm: integrity failure at rank %d site %s kind %d chunk %d: checksum %08x, want %08x",
		e.Rank, e.Site, e.Kind, e.Chunk, e.Got, e.Want)
}

// Is implements errors.Is matching against ErrIntegrity.
func (e *IntegrityError) Is(target error) bool { return target == ErrIntegrity }

// Unwrap exposes the underlying cause (an ABFT report), when any.
func (e *IntegrityError) Unwrap() error { return e.Cause }
