package comm

import (
	"fmt"

	"weipipe/internal/cost"
)

// P2P link modes.
//
// The TCP transport packages every payload the same way on the wire — a
// CRC'd frame with a sequence number — but *how* frames reach the socket
// is a per-link policy, the P2P mode:
//
//   - P2PFrame (the default) is the baseline protocol: the writer drains
//     its queue into one writev of individual frames, ctl (ack/heartbeat)
//     frames share the data connection.
//   - P2PBatched coalesces everything a schedule tick made ready — the
//     belt injects weight chunk + gradient chunk + pending ctl traffic
//     back-to-back — into burst envelopes: one wire write, one envelope
//     header, per-frame overhead amortized. The win is on high-RTT links.
//   - P2PDuplex adds a second connection per link, a ctl lane carrying
//     acks and heartbeats with its own writer goroutine, so a blocked
//     bulk-data write can never delay the ack that un-stalls the peer
//     (no head-of-line blocking between inbound prefetch and outbound
//     retire). The win is on fast links.
//   - P2PAuto picks per link: seeded from the topology tier (cross-group
//     links start batched, intra-group links duplex), then re-decided
//     online from the measured ack-RTT EWMA against cost.P2PBatchRTTSec.
//
// Bit-identity across modes is structural, not tested-for-luck: modes are
// sender-local packaging decisions, every receiver accepts plain frames,
// burst envelopes, and ctl-lane connections unconditionally, and every
// payload — however it arrived — funnels through the same
// sequence/dedup/mailbox delivery path. A mid-run mode switch (auto
// re-decision or SetLinkMode) therefore changes wire layout only, never
// delivery order or payload bytes.
type P2PMode uint8

const (
	// P2PFrame is the baseline one-frame-at-a-time protocol.
	P2PFrame P2PMode = iota
	// P2PBatched coalesces same-tick sends into burst envelopes.
	P2PBatched
	// P2PDuplex runs a dedicated ctl lane per link.
	P2PDuplex
	// P2PAuto picks batched or duplex per link from topology + RTT.
	P2PAuto

	p2pModeCount
)

// String renders the mode as its CLI spelling.
func (m P2PMode) String() string {
	switch m {
	case P2PFrame:
		return "frame"
	case P2PBatched:
		return "batched"
	case P2PDuplex:
		return "duplex"
	case P2PAuto:
		return "auto"
	}
	return fmt.Sprintf("P2PMode(%d)", uint8(m))
}

// ParseP2PMode parses the -p2p-mode CLI spelling. The empty string is the
// baseline frame mode.
func ParseP2PMode(s string) (P2PMode, error) {
	switch s {
	case "", "frame":
		return P2PFrame, nil
	case "batched":
		return P2PBatched, nil
	case "duplex":
		return P2PDuplex, nil
	case "auto":
		return P2PAuto, nil
	}
	return P2PFrame, fmt.Errorf("comm: unknown p2p mode %q (want frame, batched, duplex, or auto)", s)
}

// autoSeedMode is the auto policy's starting point for a link before any
// RTT measurement exists: with a group topology declared, cross-group
// (boundary) links start batched and intra-group links duplex — the same
// tier split cluster.Topology.BoundaryLink draws. Without one, links
// start duplex and the first RTT samples take over.
func autoSeedMode(groupSize, rank, peer int) P2PMode {
	if groupSize > 0 && rank/groupSize != peer/groupSize {
		return P2PBatched
	}
	return P2PDuplex
}

// autoDecide re-evaluates a link's mode from its ack-RTT EWMA (seconds).
// cur feeds the hysteresis band; thresholdSec <= 0 uses the calibrated
// default.
func autoDecide(rttSec float64, cur P2PMode, thresholdSec float64) P2PMode {
	if cost.SuggestP2PBatched(rttSec, cur == P2PBatched, thresholdSec) {
		return P2PBatched
	}
	return P2PDuplex
}
