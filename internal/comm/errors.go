package comm

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors for the failure model. Concrete errors carry details and
// match these via errors.Is, so callers can branch on the failure class
// without parsing strings.
var (
	// ErrClosed reports that the transport was closed locally (a clean
	// shutdown, not a fault).
	ErrClosed = errors.New("comm: transport closed")
	// ErrTimeout reports that a RecvTimeout deadline expired.
	ErrTimeout = errors.New("comm: receive timed out")
	// ErrCorrupt reports a frame that failed CRC or header validation.
	ErrCorrupt = errors.New("comm: corrupt frame")
	// ErrPeerDead reports that a peer was declared dead (heartbeat silence
	// plus exhausted reconnection attempts).
	ErrPeerDead = errors.New("comm: peer dead")
	// ErrCrashed reports that this rank was killed by an injected fault
	// (FaultConfig.CrashAtSend); all subsequent operations fail with it.
	ErrCrashed = errors.New("comm: rank crashed (injected fault)")
	// ErrNoQuorum reports that membership agreement finished with the
	// survivors holding at most half the old world: this segment of a
	// partitioned cluster must not continue training (the split-brain
	// guard), so the caller aborts to standby or checkpoint restart.
	ErrNoQuorum = errors.New("comm: membership quorum lost")
	// ErrEvicted reports that the cluster's agreed dead set names this
	// rank: the survivors repaired around it, so it must stop training
	// and rejoin (if at all) as a fresh spare under a new epoch.
	ErrEvicted = errors.New("comm: evicted from membership")
	// ErrIntegrity reports detected silent data corruption: an end-to-end
	// chunk checksum, resident-state guard, ABFT kernel check or checkpoint
	// digest that no longer matches its data (see IntegrityError).
	ErrIntegrity = errors.New("comm: integrity checksum mismatch")
)

// TimeoutError is returned by RecvTimeout when no matching message arrived
// within the deadline. It matches ErrTimeout.
type TimeoutError struct {
	Src     int
	Tag     Tag
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("comm: recv from rank %d tag %v timed out after %v", e.Src, e.Tag, e.Timeout)
}

// Is implements errors.Is matching against ErrTimeout.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// PeerDeadError is the terminal failure of one peer link: the peer missed
// heartbeats and every reconnection attempt within the grace window failed.
// It fails all pending and future receives of the transport, so every
// blocked runner reaches its abort path. It matches ErrPeerDead.
type PeerDeadError struct {
	Rank  int
	Cause error
}

func (e *PeerDeadError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("comm: peer rank %d dead: %v", e.Rank, e.Cause)
	}
	return fmt.Sprintf("comm: peer rank %d dead", e.Rank)
}

// Is implements errors.Is matching against ErrPeerDead.
func (e *PeerDeadError) Is(target error) bool { return target == ErrPeerDead }

// Unwrap exposes the underlying cause.
func (e *PeerDeadError) Unwrap() error { return e.Cause }

// CorruptionError reports a frame that failed validation (bad header fields,
// implausible length, or CRC mismatch). It matches ErrCorrupt.
type CorruptionError struct {
	Reason string
}

func (e *CorruptionError) Error() string { return "comm: corrupt frame: " + e.Reason }

// Is implements errors.Is matching against ErrCorrupt.
func (e *CorruptionError) Is(target error) bool { return target == ErrCorrupt }
