package comm

import (
	"errors"
	"testing"
	"time"
)

// Transport-level P2P mode tests: the batched/duplex/auto packaging must
// change wire layout only — delivery order, payload bytes, Close and
// RecvTimeout semantics, and exactly-once delivery under retransmission
// are mode-invariant.

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Batched mode must actually put burst envelopes on the wire while
// delivering every payload intact and in order.
func TestP2PModeTCPBatchedDelivers(t *testing.T) {
	trs := dialMeshOpts(t, 2, TCPOptions{P2PMode: P2PBatched, HeartbeatInterval: 20 * time.Millisecond})
	const n = 40
	go func() {
		for i := 0; i < n; i++ {
			trs[0].Send(1, Tag{Kind: KindWeight, A: i}, []float32{float32(i), -float32(i)})
		}
	}()
	for i := 0; i < n; i++ {
		got, err := trs[1].Recv(0, Tag{Kind: KindWeight, A: i})
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(got) != 2 || got[0] != float32(i) || got[1] != -float32(i) {
			t.Fatalf("recv %d: got %v", i, got)
		}
	}
	envelopes, frames := trs[0].CommStats().Bursts()
	if envelopes == 0 || frames < envelopes {
		t.Fatalf("batched sender opened no burst envelopes (%d envelopes / %d frames)", envelopes, frames)
	}
	if w := trs[0].CommStats().WireWrites(); w >= frames {
		t.Fatalf("batching amortized nothing: %d wire writes for %d framed sends", w, frames)
	}
}

// Duplex mode must bring up the ctl lane and move ack/heartbeat traffic
// onto it.
func TestP2PModeTCPDuplexCtlLane(t *testing.T) {
	trs := dialMeshOpts(t, 2, TCPOptions{
		P2PMode:           P2PDuplex,
		HeartbeatInterval: 10 * time.Millisecond,
		ReconnectBackoff:  5 * time.Millisecond,
	})
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			trs[0].Send(1, Tag{Kind: KindWeight, A: i}, []float32{1})
			if _, err := trs[1].Recv(0, Tag{Kind: KindWeight, A: i}); err != nil {
				return
			}
		}
	}()
	waitFor(t, 5*time.Second, "ctl-lane traffic", func() bool {
		return trs[0].CommStats().CtlLaneFrames() > 0 || trs[1].CommStats().CtlLaneFrames() > 0
	})
	if m := trs[0].LinkMode(1); m != P2PDuplex {
		t.Fatalf("link mode = %v, want duplex", m)
	}
}

// Close must fail pending receives promptly in every mode — including
// duplex, where a second lane's goroutines must also unwind.
func TestP2PModeCloseFailsPendingRecvs(t *testing.T) {
	for _, mode := range []P2PMode{P2PBatched, P2PDuplex} {
		t.Run(mode.String(), func(t *testing.T) {
			trs := dialMeshOpts(t, 2, TCPOptions{
				P2PMode:           mode,
				HeartbeatInterval: 10 * time.Millisecond,
				ReconnectBackoff:  5 * time.Millisecond,
			})
			errc := make(chan error, 2)
			for _, tr := range trs {
				go func(tr *TCPTransport) {
					_, err := tr.Recv(1-tr.Rank(), Tag{Kind: KindGrad, A: 7})
					errc <- err
				}(tr)
			}
			time.Sleep(20 * time.Millisecond) // let both receivers block
			for _, tr := range trs {
				tr.Close()
			}
			for i := 0; i < 2; i++ {
				select {
				case err := <-errc:
					if !errors.Is(err, ErrClosed) {
						t.Fatalf("pending recv returned %v, want ErrClosed", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatalf("pending recv %d did not fail after Close", i)
				}
			}
		})
	}
}

// A dropped burst must be repaired by retransmission without any payload
// arriving twice: after every message is received once, the mailbox is
// empty.
func TestP2PModeRetransmitAfterBurstNoDoubleDelivery(t *testing.T) {
	trs := dialMeshOpts(t, 2, TCPOptions{
		P2PMode:           P2PBatched,
		HeartbeatInterval: 10 * time.Millisecond,
		RetransmitTimeout: 20 * time.Millisecond,
		ReconnectBackoff:  5 * time.Millisecond,
		Chaos:             &ChaosConfig{Seed: 99, Drop: 0.25, Dup: 0.2, Reorder: 0.1},
	})
	const n = 60
	go func() {
		for i := 0; i < n; i++ {
			trs[0].Send(1, Tag{Kind: KindGrad, A: i}, []float32{float32(i) * 0.5})
		}
	}()
	for i := 0; i < n; i++ {
		got, err := trs[1].RecvTimeout(0, Tag{Kind: KindGrad, A: i}, 10*time.Second)
		if err != nil {
			t.Fatalf("recv %d under chaos: %v", i, err)
		}
		if len(got) != 1 || got[0] != float32(i)*0.5 {
			t.Fatalf("recv %d: got %v", i, got)
		}
	}
	// Exactly-once: no retransmitted or duplicated frame may deliver a
	// second copy of an already-consumed payload.
	if _, err := trs[1].RecvTimeout(0, Tag{Kind: KindGrad, A: n / 2}, 150*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("duplicate delivery: second recv of a consumed tag returned %v, want ErrTimeout", err)
	}
}

// The auto controller must re-decide a link's mode mid-run once measured
// RTTs exist, without disturbing delivery. A threshold of effectively zero
// forces the duplex-seeded loopback links to switch to batched.
func TestP2PModeAutoSwitchesUnderDelay(t *testing.T) {
	trs := dialMeshOpts(t, 2, TCPOptions{
		P2PMode:           P2PAuto,
		HeartbeatInterval: 10 * time.Millisecond,
		RetransmitTimeout: 50 * time.Millisecond,
		AutoRTTSec:        1e-12, // every real RTT reads as high-latency
	})
	if m := trs[0].LinkMode(1); m != P2PDuplex {
		t.Fatalf("auto seed on a flat mesh = %v, want duplex", m)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			trs[0].Send(1, Tag{Kind: KindWeight, A: i}, []float32{2})
			if _, err := trs[1].Recv(0, Tag{Kind: KindWeight, A: i}); err != nil {
				return
			}
		}
	}()
	waitFor(t, 5*time.Second, "auto re-decision to batched", func() bool {
		return trs[0].CommStats().P2PModeSwitches() >= 1 && trs[0].LinkMode(1) == P2PBatched
	})
	if rtt := trs[0].CommStats().LinkRTT(1); rtt <= 0 {
		t.Fatalf("re-decision without a recorded RTT EWMA")
	}
}

// SetLinkMode pins a link against the auto controller and records the
// switch; traffic keeps flowing across the change.
func TestP2PModeSetLinkModePins(t *testing.T) {
	trs := dialMeshOpts(t, 2, TCPOptions{P2PMode: P2PAuto, AutoRTTSec: 1e-12})
	if err := trs[0].SetLinkMode(1, P2PFrame); err != nil {
		t.Fatal(err)
	}
	if m := trs[0].LinkMode(1); m != P2PFrame {
		t.Fatalf("pinned mode = %v, want frame", m)
	}
	if trs[0].CommStats().P2PModeSwitches() < 1 {
		t.Fatalf("pinning recorded no mode switch")
	}
	// The pin must hold against the auto controller despite the forcing
	// threshold; traffic still delivers.
	for i := 0; i < 20; i++ {
		go trs[0].Send(1, Tag{Kind: KindWeight, A: i}, []float32{3})
		if _, err := trs[1].RecvTimeout(0, Tag{Kind: KindWeight, A: i}, 5*time.Second); err != nil {
			t.Fatalf("recv %d after pin: %v", i, err)
		}
	}
	if m := trs[0].LinkMode(1); m != P2PFrame {
		t.Fatalf("auto controller overrode the pin: %v", m)
	}
	if err := trs[0].SetLinkMode(2, P2PFrame); err == nil {
		t.Fatalf("SetLinkMode accepted an out-of-range peer")
	}
}
