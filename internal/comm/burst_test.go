package comm

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// The burst decoder faces the raw network inside an envelope: truncated
// inner frames, corrupt inner CRCs, count mismatches, nested envelopes.
// One damaged inner frame must surface as a typed *CorruptionError without
// poisoning its intact siblings, and no input may panic or allocate based
// on unvalidated lengths.

// burstInner builds a small valid data frame for burst tests.
func burstInner(seq uint64, codec WireCodec, payload []float32) []byte {
	return encodeFrame(1, kindField(KindWeight, codec), 3, int64(seq), 0, seq, codec, payload)
}

func FuzzBatchFrameDecode(f *testing.F) {
	in1 := burstInner(11, CodecF32, []float32{1, 2, 3})
	in2 := burstInner(12, CodecBF16, []float32{-0.5, 4})
	in3 := burstInner(13, CodecF32, nil)
	good := flattenBurst(1, 3, [][]byte{in1, in2, in3})
	f.Add(good)
	f.Add(good[:len(good)-5])                // truncated inner payload
	f.Add(good[:frameHeaderLen+len(in1)+10]) // truncated inner header
	corrupt := append([]byte(nil), good...)  // corrupt first inner payload byte
	corrupt[frameHeaderLen+frameHeaderLen] ^= 0x40
	f.Add(corrupt)
	// Envelope count disagrees with the inner frames actually present.
	short := append(encodeBurstHeader(1, 3, 3, len(in1)+len(in2)), append(append([]byte(nil), in1...), in2...)...)
	f.Add(short)
	// Nested envelope: a burst whose payload starts with another burst.
	f.Add(flattenBurst(1, 3, [][]byte{good}))
	// A plain frame followed by a burst on the same stream.
	f.Add(append(append([]byte(nil), in1...), good...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, frameHeaderLen*2))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &frameReader{r: bytes.NewReader(data), size: 8, maxElems: 1 << 12}
		defer fr.drop()
		for {
			h, payload, synced, err := fr.next()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				var ce *CorruptionError
				if !errors.As(err, &ce) {
					t.Fatalf("unexpected error class: %v", err)
				}
				if !synced {
					return // alignment lost: the connection would be torn down
				}
				continue // one frame lost, stream still aligned — keep reading
			}
			if h.kind == ctlBurst {
				t.Fatalf("reader surfaced a raw burst envelope")
			}
			if len(payload) != h.n {
				t.Fatalf("payload length %d != header %d", len(payload), h.n)
			}
			Release(payload)
		}
	})
}

// A burst of mixed-codec frames must decode to exactly the frames that
// went in, in order, through the mode-agnostic reader.
func TestBurstRoundTrip(t *testing.T) {
	payloads := [][]float32{{1.5, -2.5, 0}, {8, 9}, nil}
	codecs := []WireCodec{CodecF32, CodecBF16, CodecF32}
	var wires [][]byte
	for i, p := range payloads {
		wires = append(wires, burstInner(uint64(20+i), codecs[i], p))
	}
	fr := &frameReader{r: bytes.NewReader(flattenBurst(1, 3, wires)), size: 8, maxElems: 1 << 12}
	for i, want := range payloads {
		h, got, synced, err := fr.next()
		if err != nil || !synced {
			t.Fatalf("frame %d: %v (synced=%v)", i, err, synced)
		}
		if h.seq != uint64(20+i) || h.epoch != 3 || len(got) != len(want) {
			t.Fatalf("frame %d: header/payload mismatch: %+v (%d elems)", i, h, len(got))
		}
		for j := range want {
			if codecs[i] == CodecF32 && got[j] != want[j] {
				t.Fatalf("frame %d payload[%d] = %v, want %v", i, j, got[j], want[j])
			}
		}
		Release(got)
	}
	if _, _, _, err := fr.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after the burst, got %v", err)
	}
}

// One corrupt inner payload must fail only that frame: its siblings decode
// and deliver, and the error is a synced *CorruptionError so the stream
// (and the reader) keep going.
func TestBurstCorruptInnerIsolated(t *testing.T) {
	in1 := burstInner(1, CodecF32, []float32{1, 2})
	in2 := burstInner(2, CodecF32, []float32{3, 4})
	in3 := burstInner(3, CodecF32, []float32{5, 6})
	wire := flattenBurst(1, 0, [][]byte{in1, in2, in3})
	// Flip a payload byte of the middle inner frame.
	wire[frameHeaderLen+len(in1)+frameHeaderLen] ^= 0x01
	fr := &frameReader{r: bytes.NewReader(wire), size: 8, maxElems: 1 << 12}

	h, p, synced, err := fr.next()
	if err != nil || h.seq != 1 {
		t.Fatalf("first sibling: %v (seq %d)", err, h.seq)
	}
	Release(p)
	_, _, synced, err = fr.next()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt inner frame: wrong error class %v", err)
	}
	if !synced {
		t.Fatalf("corrupt inner frame lost stream alignment")
	}
	h, p, _, err = fr.next()
	if err != nil || h.seq != 3 {
		t.Fatalf("sibling after the damage: %v (seq %d)", err, h.seq)
	}
	Release(p)
}

// Structural damage — count mismatch, truncation, nesting — ends the burst
// with one terminal typed error; frames decoded before the damage still
// deliver, and the outer stream stays aligned (synced) because the
// envelope's byte count bounded the read.
func TestBurstTerminalCases(t *testing.T) {
	in1 := burstInner(1, CodecF32, []float32{1})
	in2 := burstInner(2, CodecF32, []float32{2})
	cases := []struct {
		name    string
		wire    []byte
		deliver int // intact frames before the terminal error
	}{
		{
			name:    "count mismatch",
			wire:    append(encodeBurstHeader(1, 0, 3, len(in1)+len(in2)), append(append([]byte(nil), in1...), in2...)...),
			deliver: 2,
		},
		{
			name:    "truncated inner payload",
			wire:    flattenBurst(1, 0, [][]byte{in1, in2})[:frameHeaderLen+len(in1)+len(in2)-2],
			deliver: 1,
		},
		{
			name:    "nested envelope",
			wire:    flattenBurst(1, 0, [][]byte{in1, flattenBurst(1, 0, [][]byte{in2})}),
			deliver: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Fix up the envelope's byte count for the truncated case: the
			// receiver reads exactly n bytes, so model a sender whose count
			// field survived but whose payload was cut.
			wire := tc.wire
			if tc.name == "truncated inner payload" {
				hdr := encodeBurstHeader(1, 0, 2, len(wire)-frameHeaderLen)
				wire = append(hdr, wire[frameHeaderLen:]...)
			}
			fr := &frameReader{r: bytes.NewReader(wire), size: 8, maxElems: 1 << 12}
			delivered := 0
			for {
				_, p, synced, err := fr.next()
				if err == nil {
					delivered++
					Release(p)
					continue
				}
				if errors.Is(err, io.EOF) {
					t.Fatalf("burst ended without a terminal error (%d delivered)", delivered)
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("wrong terminal error class: %v", err)
				}
				if !synced {
					t.Fatalf("terminal burst error lost stream alignment")
				}
				break
			}
			if delivered != tc.deliver {
				t.Fatalf("delivered %d intact frames before the damage, want %d", delivered, tc.deliver)
			}
		})
	}
}

// A corrupt envelope header is unrecoverable: its byte count cannot be
// trusted, so the reader reports an unsynced corruption (connection
// teardown + retransmission path).
func TestBurstEnvelopeHeaderCorruption(t *testing.T) {
	wire := flattenBurst(1, 0, [][]byte{burstInner(1, CodecF32, []float32{1})})
	wire[12] ^= 0x01 // count field, sealed by the envelope CRC
	_, _, synced, err := (&frameReader{r: bytes.NewReader(wire), size: 8, maxElems: 1 << 12}).next()
	if err == nil || synced {
		t.Fatalf("corrupt envelope header: err=%v synced=%v, want unsynced corruption", err, synced)
	}
}

// splitBursts must respect both the frame-count and byte caps, preserve
// order, and carry an oversized frame as a run of one.
func TestBurstSplit(t *testing.T) {
	small := burstInner(1, CodecF32, []float32{1})
	var wires [][]byte
	for i := 0; i < maxBurstFrames+3; i++ {
		wires = append(wires, small)
	}
	groups := splitBursts(1<<12, wires)
	if len(groups) != 2 || len(groups[0]) != maxBurstFrames || len(groups[1]) != 3 {
		t.Fatalf("frame-count split: got %d groups", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(wires) {
		t.Fatalf("split dropped frames: %d != %d", total, len(wires))
	}
	// A frame bigger than the whole cap still travels (as a run of one).
	huge := make([]byte, burstByteCap(4)+1)
	groups = splitBursts(4, [][]byte{huge, small})
	if len(groups) != 2 || len(groups[0]) != 1 {
		t.Fatalf("oversized frame not isolated: %d groups", len(groups))
	}
}
