package comm

import (
	"errors"
	"fmt"
	"time"

	"weipipe/internal/trace"
)

// Cluster is an in-process message fabric connecting n ranks that run as
// goroutines in one address space. It is the default substrate for tests,
// examples and the functional-equivalence suite.
type Cluster struct {
	boxes []*mailbox
	stats []*Stats
	codec CodecFunc
	trace *trace.Set
}

// Stats returns rank's communication meter.
func (c *Cluster) Stats(rank int) *Stats { return c.stats[rank] }

// AttachTrace points every endpoint at its rank's tracer; send and receive
// calls then emit comm spans tagged by Kind and peer. A nil set detaches.
// Transports already handed out observe the change too — they consult the
// cluster per call, and a nil tracer costs one pointer test.
func (c *Cluster) AttachTrace(set *trace.Set) { c.trace = set }

// NewCluster creates a fabric for n ranks.
func NewCluster(n int) *Cluster {
	return NewClusterCodec(n, nil)
}

// NewClusterCodec creates a fabric whose sends encode payloads per codec
// (nil means f32 everywhere). In process there is no wire, so a lossy codec
// is emulated by rounding the payload into the codec's value domain at the
// send boundary and accounting the codec's wire bytes in Stats — receivers
// observe exactly what a TCP mesh with the same codec would deliver.
func NewClusterCodec(n int, codec CodecFunc) *Cluster {
	if n <= 0 {
		panic("comm: cluster size must be positive")
	}
	c := &Cluster{boxes: make([]*mailbox, n), stats: make([]*Stats, n), codec: codec}
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
		c.stats[i] = newStats()
		c.boxes[i].stats = c.stats[i]
	}
	return c
}

// SetP2PMode records the requested P2P link mode on every rank's meter.
// In process there is no wire — no frames, no bursts, no ctl lanes — so
// every mode delivers identically by construction; the call exists so
// inproc reference runs report the mode they modelled (the mode-matrix CI
// job reads it back) and so mode plumbing is exercised on both fabrics.
// Auto seeds per link from groupSize exactly as the TCP transport's
// topology seeding does (groupSize <= 0 means a flat ring: every link
// seeds duplex).
func (c *Cluster) SetP2PMode(mode P2PMode, groupSize int) error {
	if mode >= p2pModeCount {
		return fmt.Errorf("comm: invalid p2p mode %d", mode)
	}
	for rank, st := range c.stats {
		for peer := range c.stats {
			if peer == rank {
				continue
			}
			m := mode
			if m == P2PAuto {
				m = autoSeedMode(groupSize, rank, peer)
			}
			st.recordLinkMode(peer, m)
		}
	}
	return nil
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return len(c.boxes) }

// Transport returns rank's endpoint.
func (c *Cluster) Transport(rank int) Transport {
	if rank < 0 || rank >= len(c.boxes) {
		panic(fmt.Sprintf("comm: rank %d out of range", rank))
	}
	return &inprocTransport{cluster: c, rank: rank, stats: c.stats[rank]}
}

// Transports returns all endpoints in rank order.
func (c *Cluster) Transports() []Transport {
	out := make([]Transport, len(c.boxes))
	for i := range out {
		out[i] = c.Transport(i)
	}
	return out
}

// Close shuts down every mailbox; blocked Recvs return errors.
func (c *Cluster) Close() {
	for _, b := range c.boxes {
		b.close()
	}
}

type inprocTransport struct {
	cluster *Cluster
	rank    int
	stats   *Stats
}

// CommStats implements Meter.
func (t *inprocTransport) CommStats() *Stats { return t.stats }

func (t *inprocTransport) Rank() int { return t.rank }
func (t *inprocTransport) Size() int { return len(t.cluster.boxes) }

// WireCodec implements CodecProvider: the codec a payload sent under tag is
// rounded through at the send boundary.
func (t *inprocTransport) WireCodec(tag Tag) WireCodec { return codecFor(t.cluster.codec, tag) }

func (t *inprocTransport) Send(dst int, tag Tag, data []float32) error {
	if dst < 0 || dst >= t.Size() {
		return fmt.Errorf("comm: send to invalid rank %d", dst)
	}
	tr := t.cluster.trace.Rank(t.rank)
	span := tr.Begin()
	// Copy at the send boundary: the receiver must never alias our buffer.
	// The copy is drawn from the payload pool; the receiver gives it back
	// with Release once consumed.
	payload := GetBuf(len(data))
	copy(payload, data)
	codec := codecFor(t.cluster.codec, tag)
	applyCodec(codec, payload)
	t.stats.recordPeer(t.rank, dst, tag.Kind, len(data), codec.bytesPerElem())
	t.cluster.boxes[dst].deliver(msgKey{src: t.rank, tag: tag}, payload)
	tr.End(span, trace.CodeSend, int64(tag.Kind), int64(dst))
	return nil
}

// SendOwned implements OwnedSender: the donated payload is delivered to the
// receiver without a copy — the zero-copy handoff the overlapped belt engine
// rides. The caller must have drawn payload from GetBuf and must not touch
// it again; the receiver Releases it as usual.
func (t *inprocTransport) SendOwned(dst int, tag Tag, payload []float32) error {
	if dst < 0 || dst >= t.Size() {
		Release(payload)
		return fmt.Errorf("comm: send to invalid rank %d", dst)
	}
	tr := t.cluster.trace.Rank(t.rank)
	span := tr.Begin()
	codec := codecFor(t.cluster.codec, tag)
	applyCodec(codec, payload)
	t.stats.recordPeer(t.rank, dst, tag.Kind, len(payload), codec.bytesPerElem())
	t.cluster.boxes[dst].deliver(msgKey{src: t.rank, tag: tag}, payload)
	tr.End(span, trace.CodeSend, int64(tag.Kind), int64(dst))
	return nil
}

func (t *inprocTransport) Recv(src int, tag Tag) ([]float32, error) {
	return t.RecvTimeout(src, tag, 0)
}

func (t *inprocTransport) RecvTimeout(src int, tag Tag, timeout time.Duration) ([]float32, error) {
	if src < 0 || src >= t.Size() {
		return nil, fmt.Errorf("comm: recv from invalid rank %d", src)
	}
	tr := t.cluster.trace.Rank(t.rank)
	span := tr.Begin()
	payload, err := t.cluster.boxes[t.rank].take(msgKey{src: src, tag: tag}, timeout)
	tr.End(span, trace.CodeRecv, int64(tag.Kind), int64(src))
	if err != nil && errors.Is(err, ErrTimeout) {
		t.stats.recordTimeout(src)
	}
	return payload, err
}

func (t *inprocTransport) Close() error {
	t.cluster.boxes[t.rank].close()
	return nil
}
