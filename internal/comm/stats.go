package comm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stats is a per-rank communication meter, broken down by message Kind.
// It is the functional analogue of the paper's TBW (total bandwidth usage)
// analysis: the equivalence suite uses it to verify that WeiPipe's wire
// volume is made of weights and weight-gradients only and is independent of
// microbatch size and sequence length, while activation-passing pipelines
// scale with G·S·H.
type Stats struct {
	mu        sync.Mutex
	sentBytes map[Kind]int64
	sentMsgs  map[Kind]int64
}

// NewStats returns an empty meter (used for aggregation).
func NewStats() *Stats { return newStats() }

func newStats() *Stats {
	return &Stats{
		sentBytes: make(map[Kind]int64),
		sentMsgs:  make(map[Kind]int64),
	}
}

func (s *Stats) record(kind Kind, elems int) {
	s.mu.Lock()
	s.sentBytes[kind] += int64(elems) * 4 // float32 payload
	s.sentMsgs[kind]++
	s.mu.Unlock()
}

// SentBytes returns the bytes sent under the given kind.
func (s *Stats) SentBytes(kind Kind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentBytes[kind]
}

// SentMsgs returns the message count sent under the given kind.
func (s *Stats) SentMsgs(kind Kind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentMsgs[kind]
}

// TotalSentBytes returns the bytes sent across all kinds.
func (s *Stats) TotalSentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, v := range s.sentBytes {
		t += v
	}
	return t
}

// Add accumulates o into s (used to aggregate per-rank meters).
func (s *Stats) Add(o *Stats) {
	o.mu.Lock()
	kinds := make([]Kind, 0, len(o.sentBytes))
	for k := range o.sentBytes {
		kinds = append(kinds, k)
	}
	bytesCopy := make(map[Kind]int64, len(kinds))
	msgsCopy := make(map[Kind]int64, len(kinds))
	for _, k := range kinds {
		bytesCopy[k] = o.sentBytes[k]
		msgsCopy[k] = o.sentMsgs[k]
	}
	o.mu.Unlock()

	s.mu.Lock()
	for k, v := range bytesCopy {
		s.sentBytes[k] += v
	}
	for k, v := range msgsCopy {
		s.sentMsgs[k] += v
	}
	s.mu.Unlock()
}

// String renders the meter sorted by kind.
func (s *Stats) String() string {
	names := map[Kind]string{
		KindWeight: "weights", KindGrad: "weight-grads", KindAct: "activations",
		KindActGrad: "act-grads", KindColl: "collectives", KindCtl: "control",
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := make([]int, 0, len(s.sentBytes))
	for k := range s.sentBytes {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%dB/%d msgs",
			names[Kind(k)], s.sentBytes[Kind(k)], s.sentMsgs[Kind(k)]))
	}
	return strings.Join(parts, " ")
}

// Meter is implemented by transports that record communication statistics.
type Meter interface {
	// CommStats returns the transport's live meter (shared, concurrency-safe).
	CommStats() *Stats
}
