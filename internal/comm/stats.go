package comm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stats is a per-rank communication meter, broken down by message Kind.
// It is the functional analogue of the paper's TBW (total bandwidth usage)
// analysis: the equivalence suite uses it to verify that WeiPipe's wire
// volume is made of weights and weight-gradients only and is independent of
// microbatch size and sequence length, while activation-passing pipelines
// scale with G·S·H.
type Stats struct {
	mu        sync.Mutex
	sentBytes map[Kind]int64
	sentMsgs  map[Kind]int64
	faults    map[int]*PeerFaults

	// Overlap telemetry. recvWaitNs is the total time receivers spent
	// blocked inside the transport waiting for a matching message (from any
	// goroutine — including a prefetch engine's off-critical-path waits).
	// beltStallNs is recorded by the runners themselves: the compute
	// thread's critical-path wait for belt payloads, comparable between the
	// blocking and the overlapped engines. inflightBytes gauges the bytes
	// delivered to this rank's mailbox but not yet consumed; maxInflight is
	// its high-water mark.
	recvWaitNs    int64
	beltStallNs   int64
	weightStallNs int64 // the KindWeight share of beltStallNs
	computeRecvNs int64 // compute-thread time blocked inside a transport Recv for weights
	inflightBytes int64
	maxInflight   int64

	// Integrity telemetry: end-to-end checksum verifications by payload
	// kind (resident-state and kernel checks record under KindCtl). The
	// maps stay nil until the first check, so runs with integrity off pay
	// nothing.
	integrityChecks map[Kind]int64
	integrityFails  map[Kind]int64

	// Link-tier accounting. When groupSize > 0 every send whose source and
	// destination ranks are known is classified as intra-group (same block
	// of groupSize contiguous ranks — the fast fabric) or inter-group (a
	// boundary crossing — the slow fabric). This is the measured
	// counterpart of the simulator's hierarchical link model: the grouped
	// belt's dedup win shows up here as a drop in interBytes.
	groupSize  int
	intraBytes int64
	intraMsgs  int64
	interBytes int64
	interMsgs  int64

	// P2P mode telemetry. A burst is one batched-mode envelope; a wire
	// write is one kernel write (writev or single buffer) of framed
	// traffic, so wireWrites/burstFrames against SentMsgs measures the
	// per-frame overhead amortization the batched mode exists for.
	// ctlLaneFrames counts ctl frames that travelled on a duplex lane
	// instead of the data connection. modeSwitches counts per-link mode
	// changes (auto re-decisions and explicit SetLinkMode calls). The
	// maps stay nil until the transport arms them, so frame-mode runs
	// pay nothing.
	p2pBursts      int64
	p2pBurstFrames int64
	p2pWireWrites  int64
	p2pCtlFrames   int64
	p2pSwitches    int64
	p2pModes       map[int]uint8 // peer -> current P2PMode value
	linkRTTNs      map[int]int64 // peer -> ack-RTT EWMA, nanoseconds
}

// PeerFaults counts the fault-handling events of one peer link: the
// observability surface of the resilience layer (retransmissions, receive
// timeouts, reconnections, heartbeat misses, CRC failures and duplicate
// frames discarded by the sequence-number dedup).
type PeerFaults struct {
	Retransmits     int64 // frames re-sent because an ack did not arrive in time
	Timeouts        int64 // RecvTimeout deadlines that expired on this peer
	Reconnects      int64 // successful re-establishments of the connection
	HeartbeatMisses int64 // heartbeat intervals that elapsed with no traffic
	CorruptFrames   int64 // frames discarded for CRC mismatch
	DupFrames       int64 // duplicate frames discarded by sequence dedup
	StaleEpochs     int64 // frames/handshakes rejected by the epoch fence
}

func (f PeerFaults) zero() bool {
	return f.Retransmits == 0 && f.Timeouts == 0 && f.Reconnects == 0 &&
		f.HeartbeatMisses == 0 && f.CorruptFrames == 0 && f.DupFrames == 0 &&
		f.StaleEpochs == 0
}

// NewStats returns an empty meter (used for aggregation).
func NewStats() *Stats { return newStats() }

func newStats() *Stats {
	return &Stats{
		sentBytes: make(map[Kind]int64),
		sentMsgs:  make(map[Kind]int64),
		faults:    make(map[int]*PeerFaults),
	}
}

func (s *Stats) record(kind Kind, elems, bytesPerElem int) {
	s.recordPeer(-1, -1, kind, elems, bytesPerElem)
}

// recordPeer is record with link-tier attribution: src/dst are the global
// transport ranks of the send (pass -1 when unknown, e.g. aggregation).
func (s *Stats) recordPeer(src, dst int, kind Kind, elems, bytesPerElem int) {
	b := int64(elems) * int64(bytesPerElem)
	s.mu.Lock()
	s.sentBytes[kind] += b
	s.sentMsgs[kind]++
	if s.groupSize > 0 && src >= 0 && dst >= 0 {
		if src/s.groupSize == dst/s.groupSize {
			s.intraBytes += b
			s.intraMsgs++
		} else {
			s.interBytes += b
			s.interMsgs++
		}
	}
	s.mu.Unlock()
}

// SetGroupSize arms link-tier accounting: sends between ranks in the same
// contiguous block of m ranks count as intra-group, the rest as
// inter-group. m <= 0 disables tier accounting (the default).
func (s *Stats) SetGroupSize(m int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.groupSize = m
	s.mu.Unlock()
}

// GroupSize returns the tier-accounting group size (0 when disabled).
func (s *Stats) GroupSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.groupSize
}

// IntraGroupTraffic returns the bytes and messages sent on intra-group
// links since tier accounting was armed via SetGroupSize.
func (s *Stats) IntraGroupTraffic() (bytes, msgs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.intraBytes, s.intraMsgs
}

// InterGroupTraffic returns the bytes and messages sent across group
// boundaries since tier accounting was armed via SetGroupSize.
func (s *Stats) InterGroupTraffic() (bytes, msgs int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interBytes, s.interMsgs
}

// noteRecvWait accumulates time a receiver spent blocked in the transport.
func (s *Stats) noteRecvWait(d time.Duration) {
	s.mu.Lock()
	s.recvWaitNs += int64(d)
	s.mu.Unlock()
}

// noteInflight moves the delivered-but-unconsumed byte gauge by delta and
// tracks its high-water mark.
func (s *Stats) noteInflight(delta int64) {
	s.mu.Lock()
	s.inflightBytes += delta
	if s.inflightBytes > s.maxInflight {
		s.maxInflight = s.inflightBytes
	}
	s.mu.Unlock()
}

// RecordBeltStall accumulates compute-thread time spent waiting for a belt
// payload. The pipeline runners call it around their critical-path receives
// in both the blocking and the overlapped engines, so the two modes report
// a directly comparable exposed-communication figure.
func (s *Stats) RecordBeltStall(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.mu.Lock()
	s.beltStallNs += int64(d)
	s.mu.Unlock()
}

// RecordBeltStallKind is RecordBeltStall with payload-kind attribution.
// Weight-belt waits are pure communication exposure — every weight chunk
// exists from iteration start, so any wait for one is transport latency the
// overlap engine can hide. Gradient-belt waits are producer serialization
// (the upstream rank must accumulate first) and persist in any engine.
func (s *Stats) RecordBeltStallKind(kind Kind, d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.mu.Lock()
	s.beltStallNs += int64(d)
	if kind == KindWeight {
		s.weightStallNs += int64(d)
	}
	s.mu.Unlock()
}

// RecordComputeRecvWait accumulates time the *compute thread* spent blocked
// inside a transport Recv for a weight-belt payload. This is the
// overlap-engine headline metric: in blocking mode every weight hop is a
// compute-thread transport receive, while in overlapped mode the engine owns
// all weight-belt transport receives, so the compute loop records none — its
// residual wait for staged payloads shows up in BeltStall instead.
func (s *Stats) RecordComputeRecvWait(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.mu.Lock()
	s.computeRecvNs += int64(d)
	s.mu.Unlock()
}

// ComputeRecvWait returns the cumulative compute-thread blocked time inside
// weight-belt transport receives (see RecordComputeRecvWait).
func (s *Stats) ComputeRecvWait() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.computeRecvNs)
}

// RecvWait returns the cumulative blocked-receive time.
func (s *Stats) RecvWait() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.recvWaitNs)
}

// BeltStall returns the cumulative critical-path belt wait recorded by the
// runners via RecordBeltStall.
func (s *Stats) BeltStall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.beltStallNs)
}

// WeightBeltStall returns the KindWeight share of BeltStall: the
// compute thread's exposed wait for weight-belt payloads specifically.
func (s *Stats) WeightBeltStall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.weightStallNs)
}

// InFlightBytes returns the bytes currently delivered but unconsumed.
func (s *Stats) InFlightBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflightBytes
}

// MaxInFlightBytes returns the in-flight gauge's high-water mark.
func (s *Stats) MaxInFlightBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxInflight
}

// RecordIntegrityCheck counts one end-to-end integrity verification of a
// payload of the given kind, and whether it failed.
func (s *Stats) RecordIntegrityCheck(kind Kind, ok bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.integrityChecks == nil {
		s.integrityChecks = make(map[Kind]int64)
		s.integrityFails = make(map[Kind]int64)
	}
	s.integrityChecks[kind]++
	if !ok {
		s.integrityFails[kind]++
	}
	s.mu.Unlock()
}

// IntegrityChecks returns the number of integrity verifications run on
// payloads of the given kind.
func (s *Stats) IntegrityChecks(kind Kind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.integrityChecks[kind]
}

// IntegrityFailures returns the number of failed integrity verifications
// for payloads of the given kind.
func (s *Stats) IntegrityFailures(kind Kind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.integrityFails[kind]
}

// TotalIntegrityChecks sums integrity verifications across all kinds.
func (s *Stats) TotalIntegrityChecks() (checks, failures int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.integrityChecks {
		checks += v
	}
	for _, v := range s.integrityFails {
		failures += v
	}
	return checks, failures
}

// peerFaults returns the (locked-caller) fault record for peer.
func (s *Stats) peerFaults(peer int) *PeerFaults {
	f := s.faults[peer]
	if f == nil {
		f = &PeerFaults{}
		s.faults[peer] = f
	}
	return f
}

func (s *Stats) recordRetransmit(peer int, n int64) {
	s.mu.Lock()
	s.peerFaults(peer).Retransmits += n
	s.mu.Unlock()
}

func (s *Stats) recordTimeout(peer int) {
	s.mu.Lock()
	s.peerFaults(peer).Timeouts++
	s.mu.Unlock()
}

func (s *Stats) recordReconnect(peer int) {
	s.mu.Lock()
	s.peerFaults(peer).Reconnects++
	s.mu.Unlock()
}

func (s *Stats) recordHeartbeatMiss(peer int) {
	s.mu.Lock()
	s.peerFaults(peer).HeartbeatMisses++
	s.mu.Unlock()
}

func (s *Stats) recordCorrupt(peer int) {
	s.mu.Lock()
	s.peerFaults(peer).CorruptFrames++
	s.mu.Unlock()
}

func (s *Stats) recordDup(peer int) {
	s.mu.Lock()
	s.peerFaults(peer).DupFrames++
	s.mu.Unlock()
}

func (s *Stats) recordStaleEpoch(peer int) {
	s.mu.Lock()
	s.peerFaults(peer).StaleEpochs++
	s.mu.Unlock()
}

// recordBurst counts one batched-mode envelope carrying count inner frames.
func (s *Stats) recordBurst(_ int, count int) {
	s.mu.Lock()
	s.p2pBursts++
	s.p2pBurstFrames += int64(count)
	s.mu.Unlock()
}

// recordWireWrite counts one kernel write of framed traffic on a link.
func (s *Stats) recordWireWrite(_ int) {
	s.mu.Lock()
	s.p2pWireWrites++
	s.mu.Unlock()
}

// recordCtlLane counts n ctl frames sent on a duplex ctl lane.
func (s *Stats) recordCtlLane(_ int, n int) {
	s.mu.Lock()
	s.p2pCtlFrames += int64(n)
	s.mu.Unlock()
}

// recordModeSwitch counts one per-link mode change.
func (s *Stats) recordModeSwitch(_ int) {
	s.mu.Lock()
	s.p2pSwitches++
	s.mu.Unlock()
}

// recordLinkMode notes peer's current P2P mode.
func (s *Stats) recordLinkMode(peer int, mode P2PMode) {
	s.mu.Lock()
	if s.p2pModes == nil {
		s.p2pModes = make(map[int]uint8)
	}
	s.p2pModes[peer] = uint8(mode)
	s.mu.Unlock()
}

// recordLinkRTT notes peer's current ack-RTT EWMA.
func (s *Stats) recordLinkRTT(peer int, d time.Duration) {
	s.mu.Lock()
	if s.linkRTTNs == nil {
		s.linkRTTNs = make(map[int]int64)
	}
	s.linkRTTNs[peer] = int64(d)
	s.mu.Unlock()
}

// Bursts returns the batched-mode envelope count and the total inner
// frames they carried.
func (s *Stats) Bursts() (envelopes, frames int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p2pBursts, s.p2pBurstFrames
}

// WireWrites returns the number of kernel writes of framed traffic.
func (s *Stats) WireWrites() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p2pWireWrites
}

// CtlLaneFrames returns the ctl frames sent on duplex ctl lanes.
func (s *Stats) CtlLaneFrames() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p2pCtlFrames
}

// P2PModeSwitches returns the per-link mode changes recorded.
func (s *Stats) P2PModeSwitches() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p2pSwitches
}

// LinkP2PMode returns the last recorded P2P mode of the link to peer
// (P2PFrame when never recorded).
func (s *Stats) LinkP2PMode(peer int) P2PMode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return P2PMode(s.p2pModes[peer])
}

// LinkRTT returns the last recorded ack-RTT EWMA of the link to peer
// (0 when no probe has completed).
func (s *Stats) LinkRTT(peer int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.linkRTTNs[peer])
}

// Faults returns a copy of the fault counters for one peer link.
func (s *Stats) Faults(peer int) PeerFaults {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f := s.faults[peer]; f != nil {
		return *f
	}
	return PeerFaults{}
}

// TotalFaults sums the fault counters across all peers.
func (s *Stats) TotalFaults() PeerFaults {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t PeerFaults
	for _, f := range s.faults {
		t.Retransmits += f.Retransmits
		t.Timeouts += f.Timeouts
		t.Reconnects += f.Reconnects
		t.HeartbeatMisses += f.HeartbeatMisses
		t.CorruptFrames += f.CorruptFrames
		t.DupFrames += f.DupFrames
		t.StaleEpochs += f.StaleEpochs
	}
	return t
}

// SentBytes returns the bytes sent under the given kind.
func (s *Stats) SentBytes(kind Kind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentBytes[kind]
}

// SentMsgs returns the message count sent under the given kind.
func (s *Stats) SentMsgs(kind Kind) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sentMsgs[kind]
}

// TotalSentBytes returns the bytes sent across all kinds.
func (s *Stats) TotalSentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, v := range s.sentBytes {
		t += v
	}
	return t
}

// Add accumulates o into s (used to aggregate per-rank meters).
func (s *Stats) Add(o *Stats) {
	o.mu.Lock()
	kinds := make([]Kind, 0, len(o.sentBytes))
	for k := range o.sentBytes {
		kinds = append(kinds, k)
	}
	bytesCopy := make(map[Kind]int64, len(kinds))
	msgsCopy := make(map[Kind]int64, len(kinds))
	for _, k := range kinds {
		bytesCopy[k] = o.sentBytes[k]
		msgsCopy[k] = o.sentMsgs[k]
	}
	faultsCopy := make(map[int]PeerFaults, len(o.faults))
	for p, f := range o.faults {
		faultsCopy[p] = *f
	}
	recvWait, beltStall, weightStall, maxFly := o.recvWaitNs, o.beltStallNs, o.weightStallNs, o.maxInflight
	computeRecv := o.computeRecvNs
	gsz := o.groupSize
	intraB, intraM, interB, interM := o.intraBytes, o.intraMsgs, o.interBytes, o.interMsgs
	bursts, burstFrames, wireWrites := o.p2pBursts, o.p2pBurstFrames, o.p2pWireWrites
	ctlFrames, switches := o.p2pCtlFrames, o.p2pSwitches
	var icCopy, ifCopy map[Kind]int64
	if o.integrityChecks != nil {
		icCopy = make(map[Kind]int64, len(o.integrityChecks))
		ifCopy = make(map[Kind]int64, len(o.integrityFails))
		for k, v := range o.integrityChecks {
			icCopy[k] = v
		}
		for k, v := range o.integrityFails {
			ifCopy[k] = v
		}
	}
	o.mu.Unlock()

	s.mu.Lock()
	for k, v := range bytesCopy {
		s.sentBytes[k] += v
	}
	for k, v := range msgsCopy {
		s.sentMsgs[k] += v
	}
	for p, f := range faultsCopy {
		t := s.peerFaults(p)
		t.Retransmits += f.Retransmits
		t.Timeouts += f.Timeouts
		t.Reconnects += f.Reconnects
		t.HeartbeatMisses += f.HeartbeatMisses
		t.CorruptFrames += f.CorruptFrames
		t.DupFrames += f.DupFrames
		t.StaleEpochs += f.StaleEpochs
	}
	s.recvWaitNs += recvWait
	s.beltStallNs += beltStall
	s.weightStallNs += weightStall
	s.computeRecvNs += computeRecv
	if s.groupSize == 0 {
		s.groupSize = gsz
	}
	s.intraBytes += intraB
	s.intraMsgs += intraM
	s.interBytes += interB
	s.interMsgs += interM
	// Per-peer mode/RTT maps (p2pModes, linkRTTNs) are deliberately not
	// merged: peer ids collide across aggregated per-rank meters.
	s.p2pBursts += bursts
	s.p2pBurstFrames += burstFrames
	s.p2pWireWrites += wireWrites
	s.p2pCtlFrames += ctlFrames
	s.p2pSwitches += switches
	if maxFly > s.maxInflight {
		s.maxInflight = maxFly
	}
	if icCopy != nil {
		if s.integrityChecks == nil {
			s.integrityChecks = make(map[Kind]int64)
			s.integrityFails = make(map[Kind]int64)
		}
		for k, v := range icCopy {
			s.integrityChecks[k] += v
		}
		for k, v := range ifCopy {
			s.integrityFails[k] += v
		}
	}
	s.mu.Unlock()
}

// String renders the meter sorted by kind.
func (s *Stats) String() string {
	names := map[Kind]string{
		KindWeight: "weights", KindGrad: "weight-grads", KindAct: "activations",
		KindActGrad: "act-grads", KindColl: "collectives", KindCtl: "control",
		KindBuddy: "buddy",
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := make([]int, 0, len(s.sentBytes))
	for k := range s.sentBytes {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%dB/%d msgs",
			names[Kind(k)], s.sentBytes[Kind(k)], s.sentMsgs[Kind(k)]))
	}
	peers := make([]int, 0, len(s.faults))
	for p := range s.faults {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	for _, p := range peers {
		f := s.faults[p]
		if f.zero() {
			continue
		}
		parts = append(parts, fmt.Sprintf(
			"peer%d[rtx=%d to=%d rc=%d hb=%d crc=%d dup=%d stale=%d]",
			p, f.Retransmits, f.Timeouts, f.Reconnects, f.HeartbeatMisses,
			f.CorruptFrames, f.DupFrames, f.StaleEpochs))
	}
	if s.groupSize > 0 && (s.intraMsgs > 0 || s.interMsgs > 0) {
		parts = append(parts, fmt.Sprintf("tiers[m=%d intra=%dB/%d inter=%dB/%d]",
			s.groupSize, s.intraBytes, s.intraMsgs, s.interBytes, s.interMsgs))
	}
	if s.recvWaitNs > 0 || s.beltStallNs > 0 || s.maxInflight > 0 {
		parts = append(parts, fmt.Sprintf("overlap[wait=%s stall=%s maxfly=%dB]",
			time.Duration(s.recvWaitNs).Round(time.Microsecond),
			time.Duration(s.beltStallNs).Round(time.Microsecond), s.maxInflight))
	}
	if s.p2pBursts > 0 || s.p2pCtlFrames > 0 || s.p2pSwitches > 0 {
		parts = append(parts, fmt.Sprintf("p2p[bursts=%d/%d frames writes=%d ctl=%d switches=%d]",
			s.p2pBursts, s.p2pBurstFrames, s.p2pWireWrites, s.p2pCtlFrames, s.p2pSwitches))
	}
	if len(s.integrityChecks) > 0 {
		var checks, fails int64
		for _, v := range s.integrityChecks {
			checks += v
		}
		for _, v := range s.integrityFails {
			fails += v
		}
		parts = append(parts, fmt.Sprintf("integrity[checks=%d fails=%d]", checks, fails))
	}
	return strings.Join(parts, " ")
}

// Meter is implemented by transports that record communication statistics.
type Meter interface {
	// CommStats returns the transport's live meter (shared, concurrency-safe).
	CommStats() *Stats
}
