package comm

import "time"

// Deadlines is the single timeout budget shared by every layer of the
// resilience stack: the transport's failure detector, the membership
// agreement protocol, the training-loop barriers and the supervisor's
// stall monitor all derive their deadlines from one struct instead of
// hardcoding their own. The derivation rules keep the layers ordered so
// they stop racing each other:
//
//		Retransmit  <  Heartbeat  <  PeerDead  <  AgreeRound  <  Barrier
//
//	  - The link-layer failure detector (PeerDead) always fires before any
//	    protocol-level timeout, so a blocked receive fails with a typed
//	    *PeerDeadError naming the culprit instead of an anonymous timeout —
//	    the difference between precise failure evidence and guesswork.
//	  - One agreement round (AgreeRound) outlives PeerDead plus retransmit
//	    slack, so a live-but-slow peer whose frames are being re-sent is
//	    never mistaken for a dead one during evidence exchange.
//	  - The iteration barrier (Barrier) outlives AgreeRound, so ranks that
//	    entered membership agreement are never timed out by peers still
//	    parked at the previous barrier.
type Deadlines struct {
	// Dial bounds the whole initial mesh bring-up.
	Dial time.Duration
	// Heartbeat is the idle-link heartbeat period.
	Heartbeat time.Duration
	// PeerDead is how long a peer may stay silent before the failure
	// detector declares it dead.
	PeerDead time.Duration
	// Retransmit is how long the sender waits for ack progress before
	// re-sending unacknowledged frames.
	Retransmit time.Duration
	// AgreeRound bounds one round of membership-evidence exchange per
	// peer: a survivor that produces no evidence within it is suspected.
	AgreeRound time.Duration
	// Barrier bounds the per-iteration control barrier and the coordinated
	// checkpoint/harvest exchanges.
	Barrier time.Duration
}

// DefaultDeadlines returns the production budget (matching the TCP
// transport's historical defaults, with the protocol deadlines derived).
func DefaultDeadlines() Deadlines {
	return Deadlines{}.WithDefaults()
}

// WithDefaults fills every zero field, deriving the protocol deadlines
// from the transport ones so the ordering contract above holds for any
// partially-specified budget.
func (d Deadlines) WithDefaults() Deadlines {
	if d.PeerDead <= 0 {
		d.PeerDead = 10 * time.Second
	}
	if d.Dial <= 0 {
		d.Dial = 15 * time.Second
	}
	if d.Heartbeat <= 0 {
		d.Heartbeat = d.PeerDead / 20
		if d.Heartbeat > 500*time.Millisecond {
			d.Heartbeat = 500 * time.Millisecond
		}
		if d.Heartbeat < time.Millisecond {
			d.Heartbeat = time.Millisecond
		}
	}
	if d.Retransmit <= 0 {
		d.Retransmit = d.PeerDead / 40
		if d.Retransmit > 250*time.Millisecond {
			d.Retransmit = 250 * time.Millisecond
		}
		if d.Retransmit < time.Millisecond {
			d.Retransmit = time.Millisecond
		}
	}
	if d.AgreeRound <= 0 {
		d.AgreeRound = d.PeerDead + 4*d.Retransmit
	}
	if d.Barrier <= 0 {
		d.Barrier = 2 * d.AgreeRound
	}
	return d
}

// Scaled multiplies every deadline by f (tests shrink the whole budget
// uniformly so the layer ordering is preserved).
func (d Deadlines) Scaled(f float64) Deadlines {
	scale := func(t time.Duration) time.Duration {
		s := time.Duration(float64(t) * f)
		if t > 0 && s < time.Millisecond {
			s = time.Millisecond
		}
		return s
	}
	return Deadlines{
		Dial:       scale(d.Dial),
		Heartbeat:  scale(d.Heartbeat),
		PeerDead:   scale(d.PeerDead),
		Retransmit: scale(d.Retransmit),
		AgreeRound: scale(d.AgreeRound),
		Barrier:    scale(d.Barrier),
	}
}

// TCPOptions maps the transport share of the budget into dial options.
// The caller fills Epoch, Codec, Chaos and Trace.
func (d Deadlines) TCPOptions() TCPOptions {
	d = d.WithDefaults()
	return TCPOptions{
		DialTimeout:       d.Dial,
		HeartbeatInterval: d.Heartbeat,
		PeerDeadTimeout:   d.PeerDead,
		RetransmitTimeout: d.Retransmit,
	}
}
