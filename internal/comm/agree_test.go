package comm

import (
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// testDeadlines is a uniformly-shrunk budget for loopback meshes: the
// failure detector fires in hundreds of milliseconds and the protocol
// deadlines keep their ordering (Retransmit < Heartbeat < PeerDead <
// AgreeRound < Barrier).
func testDeadlines() Deadlines {
	return Deadlines{
		Dial:       5 * time.Second,
		Heartbeat:  20 * time.Millisecond,
		PeerDead:   400 * time.Millisecond,
		Retransmit: 40 * time.Millisecond,
		AgreeRound: time.Second,
		Barrier:    2 * time.Second,
	}
}

// dialMeshOpts brings up an n-rank TCP mesh on loopback with options.
func dialMeshOpts(t *testing.T, n int, opts TCPOptions) []*TCPTransport {
	t.Helper()
	addrs, err := LoopbackAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]*TCPTransport, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = DialTCPOpts(r, addrs, opts)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d dial: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			if tr != nil {
				tr.Close()
			}
		}
	})
	return trs
}

func TestMembershipEvidenceRoundTrip(t *testing.T) {
	cases := []Evidence{
		{Epoch: 0, OldSize: 1, Round: 0, From: 0},
		{Epoch: 7, OldSize: 4, Round: 2, From: 3, Dead: []int{0, 2}},
		{Epoch: 1 << 31, OldSize: 256, Round: 255, From: 17, Dead: []int{0, 1, 2, 3, 250, 255}},
	}
	for _, ev := range cases {
		got, err := DecodeEvidence(EncodeEvidence(ev))
		if err != nil {
			t.Fatalf("decode %+v: %v", ev, err)
		}
		if got.Epoch != ev.Epoch || got.OldSize != ev.OldSize || got.Round != ev.Round ||
			got.From != ev.From || !reflect.DeepEqual(got.Dead, ev.Dead) {
			t.Fatalf("roundtrip %+v -> %+v", ev, got)
		}
	}
	bad := [][]byte{
		nil,
		{'M'},
		EncodeEvidence(cases[1])[:evidenceFixed+1],           // truncated dead set
		append(EncodeEvidence(cases[1]), 0),                  // trailing bytes
		{'X', 'E', 1, 0, 0, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0}, // bad magic
	}
	unsorted := EncodeEvidence(Evidence{OldSize: 4, From: 0, Dead: []int{1, 2}})
	unsorted[evidenceFixed], unsorted[evidenceFixed+2] = unsorted[evidenceFixed+2], unsorted[evidenceFixed] // {2, 1}
	bad = append(bad, unsorted)
	for i, b := range bad {
		if _, err := DecodeEvidence(b); err == nil {
			t.Fatalf("bad input %d accepted", i)
		}
	}
}

// PackBytes rides evidence (and snapshots) over float32 payloads; every
// bit pattern — including ones that alias NaNs — must survive a real TCP
// hop exactly.
func TestMembershipEvidencePackBytesTCP(t *testing.T) {
	trs := dialMeshOpts(t, 2, testDeadlines().TCPOptions())
	msg := make([]byte, 0, 300)
	for i := 0; i < 256; i++ {
		msg = append(msg, byte(i))
	}
	// words that decode to sNaN/qNaN/Inf patterns on the f32 wire
	msg = append(msg, 0x01, 0x00, 0xC0, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x80, 0x7F, 0xAB)
	tag := Tag{Kind: KindCtl, A: agreeTagBase - 1}
	if err := trs[0].Send(1, tag, PackBytes(msg)); err != nil {
		t.Fatal(err)
	}
	pl, err := trs[1].RecvTimeout(0, tag, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnpackBytes(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("packed bytes corrupted over TCP: %d vs %d bytes", len(got), len(msg))
	}
	if math.IsNaN(float64(pl[1])) == false {
		// sanity: the payload really did carry NaN-aliasing words
		t.Log("warning: expected at least one NaN-pattern word in payload")
	}
	Release(pl)
}

// A rank killed mid-run: the survivors' detectors fire, BeginRecovery
// reopens the mailboxes, and transport-level agreement converges every
// survivor on the same dead set with quorum.
func TestMembershipAgreeTCPPeerDeath(t *testing.T) {
	dl := testDeadlines()
	trs := dialMeshOpts(t, 4, dl.TCPOptions())

	// Rank 1 dies abruptly.
	go func() {
		time.Sleep(50 * time.Millisecond)
		trs[1].Close()
	}()

	type result struct {
		m   Membership
		err error
	}
	results := make([]result, 4)
	var wg sync.WaitGroup
	for _, r := range []int{0, 2, 3} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Parked in a receive the dead rank will never serve.
			_, err := trs[r].Recv(1, Tag{Kind: KindWeight, A: 99})
			dead, ok := DeadPeer(err)
			if !ok {
				results[r].err = err
				return
			}
			evidence := append(trs[r].BeginRecovery(), dead)
			results[r].m, results[r].err = AgreeOverTransport(trs[r], evidence,
				AgreeConfig{Epoch: 0, Attempt: 0, Deadlines: dl})
		}(r)
	}
	wg.Wait()

	for _, r := range []int{0, 2, 3} {
		if results[r].err != nil {
			t.Fatalf("rank %d agreement: %v", r, results[r].err)
		}
		if want := []int{1}; !reflect.DeepEqual(results[r].m.Dead, want) {
			t.Fatalf("rank %d dead set %v, want %v", r, results[r].m.Dead, want)
		}
	}
}

// The asymmetric detector case from the issue: rank 0 sees rank 2 dead
// (2's outbound path to 0 is partitioned) while rank 1 still reaches 2 in
// both directions. Evidence flooding spreads 0's condemnation to 1, the
// majority {0,1} converges and keeps quorum, and the fenced-off minority
// {2} ends with ErrNoQuorum — never two progressing segments.
func TestMembershipAgreeAsymmetricPartition(t *testing.T) {
	dl := testDeadlines()
	trs := dialMeshOpts(t, 3, dl.TCPOptions())

	// One-directional partition: everything rank 2 sends toward rank 0 is
	// dropped, including heartbeats and reconnect handshakes.
	trs[2].Blackhole([]int{0}, 30*time.Second)

	type result struct {
		m   Membership
		err error
	}
	results := make([]result, 3)
	detected := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := trs[0].Recv(2, Tag{Kind: KindWeight, A: 7})
		dead, ok := DeadPeer(err)
		if !ok {
			results[0].err = err
			close(detected)
			return
		}
		evidence := append(trs[0].BeginRecovery(), dead)
		close(detected)
		results[0].m, results[0].err = AgreeOverTransport(trs[0], evidence,
			AgreeConfig{Epoch: 0, Deadlines: dl})
	}()
	for _, r := range []int{1, 2} {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-detected // enter agreement once the failure is observed
			results[r].m, results[r].err = AgreeOverTransport(trs[r], trs[r].BeginRecovery(),
				AgreeConfig{Epoch: 0, Deadlines: dl})
		}(r)
	}
	wg.Wait()

	for _, r := range []int{0, 1} {
		if results[r].err != nil {
			t.Fatalf("rank %d agreement: %v", r, results[r].err)
		}
		if want := []int{2}; !reflect.DeepEqual(results[r].m.Dead, want) {
			t.Fatalf("rank %d dead set %v, want %v", r, results[r].m.Dead, want)
		}
	}
	if !errors.Is(results[2].err, ErrNoQuorum) {
		t.Fatalf("fenced-off rank 2: err %v, want ErrNoQuorum (dead set %v)",
			results[2].err, results[2].m.Dead)
	}
}

// A mesh bring-up between mismatched epochs must fail: the handshake is
// the first line of the split-brain fence.
func TestEpochFenceRejectsStaleHandshake(t *testing.T) {
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := testDeadlines().TCPOptions()
	opts.DialTimeout = 700 * time.Millisecond
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := opts
			o.Epoch = uint32(r) // mismatched incarnations
			tr, err := DialTCPOpts(r, addrs, o)
			if tr != nil {
				tr.Close()
			}
			errs[r] = err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d connected across mismatched epochs", r)
		}
	}
}

// A connection that handshook at the right epoch but then emits frames
// from another incarnation: every frame is dropped (no delivery, no ack)
// and — critically — stale traffic does not count as liveness, so the
// zombie peer is still declared dead.
func TestEpochFenceRejectsStaleFrames(t *testing.T) {
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	dl := testDeadlines()
	opts := dl.TCPOptions()
	opts.Epoch = 7

	var tr *TCPTransport
	var dialErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		tr, dialErr = DialTCPOpts(0, addrs, opts)
	}()

	// The fake rank 1: correct handshake, then a steady stream of frames
	// stamped with a stale epoch.
	var conn net.Conn
	for i := 0; i < 200; i++ {
		conn, err = net.Dial("tcp", addrs[0])
		if err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := make([]byte, 12)
	hello[0] = 1 // rank 1
	hello[4] = 7 // matching epoch
	hello[8] = 0 // data lane
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	ack := make([]byte, 12)
	if _, err := io.ReadFull(conn, ack); err != nil {
		t.Fatalf("admission ack: %v", err)
	}
	<-done
	if dialErr != nil {
		t.Fatal(dialErr)
	}
	defer tr.Close()

	stop := make(chan struct{})
	var zombie sync.WaitGroup
	zombie.Add(1)
	go func() {
		defer zombie.Done()
		seq := uint64(1)
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			frame := encodeFrame(1, kindField(KindCtl, CodecF32), 3, /* stale epoch */
				42, 0, seq, CodecF32, []float32{1})
			seq++
			if _, err := conn.Write(frame); err != nil {
				return
			}
		}
	}()
	defer zombie.Wait()
	defer close(stop)

	// Stale frames must never be delivered...
	if _, err := tr.RecvTimeout(1, Tag{Kind: KindCtl, A: 42}, 150*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv of stale-epoch frame: %v, want timeout", err)
	}
	// ...and must not keep the zombie alive: the detector still fires.
	if _, err := tr.RecvTimeout(1, Tag{Kind: KindCtl, A: 42}, 4*dl.PeerDead); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("zombie peer kept alive by stale frames: %v, want ErrPeerDead", err)
	}
	if got := tr.CommStats().Faults(1).StaleEpochs; got == 0 {
		t.Fatal("no stale-epoch frames recorded")
	}
}

// Satellite: Close during backoff-reconnect. Pending RecvTimeouts must
// fail exactly once each with a terminal error, and the transport must
// leak no goroutines — under -race this also hammers the mailbox
// close/reopen paths against concurrent redial machinery.
func TestRecvTimeoutCloseRaceDuringReconnect(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 8; iter++ {
		dl := testDeadlines()
		opts := dl.TCPOptions()
		opts.Chaos = &ChaosConfig{Seed: uint64(1000 + iter), ResetEvery: 4} // constant reconnect churn
		trs := dialMeshOpts(t, 2, opts)

		var wg sync.WaitGroup
		errC := make(chan error, 16)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				_, err := trs[1].RecvTimeout(0, Tag{Kind: KindCtl, A: 7000 + g}, 10*time.Second)
				errC <- err
			}(g)
		}
		// Churn the link so Close lands mid-reconnect: a few sends force
		// resets (ResetEvery=4), then close the receiving side.
		for i := 0; i < 10; i++ {
			trs[0].Send(1, Tag{Kind: KindCtl, A: 6000}, []float32{float32(i)})
			time.Sleep(2 * time.Millisecond)
		}
		trs[1].Close()
		wg.Wait()
		close(errC)
		n := 0
		for err := range errC {
			n++
			if err == nil {
				t.Fatalf("iter %d: pending recv returned success after Close", iter)
			}
			if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrPeerDead) {
				t.Fatalf("iter %d: pending recv failed with %v, want ErrClosed/ErrPeerDead", iter, err)
			}
		}
		if n != 8 {
			t.Fatalf("iter %d: %d recv completions, want 8", iter, n)
		}
		trs[0].Close()
	}
	// All transport goroutines must drain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d -> %d\n%s", base, runtime.NumGoroutine(),
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// After BeginRecovery, receives naming the dead peer fail fast with typed
// evidence instead of burning a timeout, while queued pre-death messages
// are still drained.
func TestBeginRecoveryDeadPeerRecvFailsFast(t *testing.T) {
	dl := testDeadlines()
	trs := dialMeshOpts(t, 2, dl.TCPOptions())
	tag := Tag{Kind: KindCtl, A: 5}
	if err := trs[1].Send(0, tag, []float32{42}); err != nil {
		t.Fatal(err)
	}
	// Wait until delivered, then kill rank 1.
	pl, err := trs[0].RecvTimeout(1, tag, 2*time.Second)
	if err != nil || pl[0] != 42 {
		t.Fatalf("pre-death recv: %v %v", pl, err)
	}
	if err := trs[1].Send(0, tag, []float32{43}); err != nil {
		t.Fatal(err)
	}
	pl, err = trs[0].RecvTimeout(1, tag, 2*time.Second)
	if err != nil || pl[0] != 43 {
		t.Fatalf("queued recv: %v %v", pl, err)
	}
	trs[1].Close()
	if _, err := trs[0].Recv(1, tag); !errors.Is(err, ErrPeerDead) {
		t.Fatalf("blocked recv after death: %v", err)
	}
	dead := trs[0].BeginRecovery()
	if !reflect.DeepEqual(dead, []int{1}) {
		t.Fatalf("BeginRecovery dead set %v", dead)
	}
	start := time.Now()
	_, err = trs[0].RecvTimeout(1, tag, 5*time.Second)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("post-recovery recv from dead peer: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("post-recovery recv from dead peer burned %v instead of failing fast", d)
	}
}
