package comm

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestInprocSendRecv(t *testing.T) {
	c := NewCluster(2)
	t0, t1 := c.Transport(0), c.Transport(1)
	go func() {
		t0.Send(1, Tag{Kind: KindWeight, A: 3, B: 7}, []float32{1, 2, 3})
	}()
	got, err := t1.Recv(0, Tag{Kind: KindWeight, A: 3, B: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestInprocCopiesPayload(t *testing.T) {
	c := NewCluster(2)
	t0, t1 := c.Transport(0), c.Transport(1)
	buf := []float32{1}
	t0.Send(1, Tag{}, buf)
	buf[0] = 99 // mutate after send; receiver must see the original
	got, _ := t1.Recv(0, Tag{})
	if got[0] != 1 {
		t.Fatal("payload aliased across ranks")
	}
}

func TestInprocTagMatching(t *testing.T) {
	c := NewCluster(2)
	t0, t1 := c.Transport(0), c.Transport(1)
	// Send out of order; receives must match by tag, not arrival order.
	t0.Send(1, Tag{Kind: KindAct, A: 2}, []float32{2})
	t0.Send(1, Tag{Kind: KindAct, A: 1}, []float32{1})
	a, _ := t1.Recv(0, Tag{Kind: KindAct, A: 1})
	b, _ := t1.Recv(0, Tag{Kind: KindAct, A: 2})
	if a[0] != 1 || b[0] != 2 {
		t.Fatalf("tag matching broken: %v %v", a, b)
	}
}

func TestInprocFIFOPerTag(t *testing.T) {
	c := NewCluster(2)
	t0, t1 := c.Transport(0), c.Transport(1)
	for i := 0; i < 10; i++ {
		t0.Send(1, Tag{Kind: KindCtl}, []float32{float32(i)})
	}
	for i := 0; i < 10; i++ {
		got, _ := t1.Recv(0, Tag{Kind: KindCtl})
		if got[0] != float32(i) {
			t.Fatalf("FIFO violated: got %v at %d", got[0], i)
		}
	}
}

func TestInprocSelfSend(t *testing.T) {
	c := NewCluster(1)
	tr := c.Transport(0)
	tr.Send(0, Tag{A: 1}, []float32{42})
	got, err := tr.Recv(0, Tag{A: 1})
	if err != nil || got[0] != 42 {
		t.Fatalf("self-send: %v %v", got, err)
	}
}

func TestInprocCloseUnblocksRecv(t *testing.T) {
	c := NewCluster(2)
	t1 := c.Transport(1)
	done := make(chan error, 1)
	go func() {
		_, err := t1.Recv(0, Tag{A: 5})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil error after close")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestInprocInvalidRanks(t *testing.T) {
	c := NewCluster(2)
	tr := c.Transport(0)
	if err := tr.Send(5, Tag{}, nil); err == nil {
		t.Fatal("send to invalid rank succeeded")
	}
	if _, err := tr.Recv(-1, Tag{}); err == nil {
		t.Fatal("recv from invalid rank succeeded")
	}
}

// runRanks runs fn on every rank concurrently and fails the test on error.
func runRanks(t *testing.T, n int, fn func(tr Transport) error) {
	t.Helper()
	c := NewCluster(n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(c.Transport(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestShardRanges(t *testing.T) {
	r := ShardRanges(10, 3)
	if r[0] != [2]int{0, 3} || r[1] != [2]int{3, 6} || r[2] != [2]int{6, 10} {
		t.Fatalf("ShardRanges = %v", r)
	}
	// total coverage, no overlap, even when p > n
	r2 := ShardRanges(2, 4)
	total := 0
	for _, s := range r2 {
		total += s[1] - s[0]
	}
	if total != 2 {
		t.Fatalf("ShardRanges(2,4) covers %d", total)
	}
}

func TestRingAllReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{1, 5, 16, 33} {
			p, n := p, n
			var mu sync.Mutex
			results := make(map[int][]float32)
			runRanks(t, p, func(tr Transport) error {
				data := make([]float32, n)
				for i := range data {
					data[i] = float32(tr.Rank()*100 + i)
				}
				if err := RingAllReduceSum(tr, data, 1); err != nil {
					return err
				}
				mu.Lock()
				results[tr.Rank()] = data
				mu.Unlock()
				return nil
			})
			// expected: sum over ranks of (r*100 + i)
			for r := 0; r < p; r++ {
				for i := 0; i < n; i++ {
					var want float32
					for q := 0; q < p; q++ {
						want += float32(q*100 + i)
					}
					if math.Abs(float64(results[r][i]-want)) > 1e-3 {
						t.Fatalf("p=%d n=%d rank %d elem %d: got %v want %v", p, n, r, i, results[r][i], want)
					}
				}
			}
		}
	}
}

func TestReduceScatterSum(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		const n = 23
		var mu sync.Mutex
		results := make(map[int][]float32)
		runRanks(t, p, func(tr Transport) error {
			data := make([]float32, n)
			for i := range data {
				data[i] = float32(tr.Rank() + i)
			}
			shard, err := ReduceScatterSum(tr, data, 2)
			if err != nil {
				return err
			}
			mu.Lock()
			results[tr.Rank()] = shard
			mu.Unlock()
			return nil
		})
		shards := ShardRanges(n, p)
		for r := 0; r < p; r++ {
			rg := shards[r]
			if len(results[r]) != rg[1]-rg[0] {
				t.Fatalf("p=%d rank %d shard len %d want %d", p, r, len(results[r]), rg[1]-rg[0])
			}
			for i, v := range results[r] {
				var want float32
				for q := 0; q < p; q++ {
					want += float32(q + rg[0] + i)
				}
				if math.Abs(float64(v-want)) > 1e-3 {
					t.Fatalf("p=%d rank %d elem %d: got %v want %v", p, r, i, v, want)
				}
			}
		}
	}
}

func TestAllGather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5} {
		shardLens := make([]int, p)
		for i := range shardLens {
			shardLens[i] = 2 + i // deliberately unequal
		}
		var mu sync.Mutex
		results := make(map[int][]float32)
		runRanks(t, p, func(tr Transport) error {
			mine := make([]float32, shardLens[tr.Rank()])
			for i := range mine {
				mine[i] = float32(tr.Rank()*1000 + i)
			}
			full, err := AllGather(tr, mine, shardLens, 3)
			if err != nil {
				return err
			}
			mu.Lock()
			results[tr.Rank()] = full
			mu.Unlock()
			return nil
		})
		for r := 0; r < p; r++ {
			idx := 0
			for q := 0; q < p; q++ {
				for i := 0; i < shardLens[q]; i++ {
					if results[r][idx] != float32(q*1000+i) {
						t.Fatalf("p=%d rank %d: wrong value at %d", p, r, idx)
					}
					idx++
				}
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, root := range []int{0, 1, 3} {
		var mu sync.Mutex
		results := make(map[int][]float32)
		runRanks(t, 4, func(tr Transport) error {
			var data []float32
			if tr.Rank() == root {
				data = []float32{7, 8, 9}
			}
			out, err := Broadcast(tr, root, data, 4)
			if err != nil {
				return err
			}
			mu.Lock()
			results[tr.Rank()] = out
			mu.Unlock()
			return nil
		})
		for r := 0; r < 4; r++ {
			if len(results[r]) != 3 || results[r][0] != 7 || results[r][2] != 9 {
				t.Fatalf("root=%d rank %d got %v", root, r, results[r])
			}
		}
	}
}

func TestBarrier(t *testing.T) {
	var phase sync.Map
	runRanks(t, 4, func(tr Transport) error {
		phase.Store(tr.Rank(), 1)
		if err := Barrier(tr, 5); err != nil {
			return err
		}
		// after the barrier everyone must have stored phase 1
		for r := 0; r < 4; r++ {
			if _, ok := phase.Load(r); !ok {
				t.Errorf("rank %d passed barrier before rank %d entered", tr.Rank(), r)
			}
		}
		return nil
	})
}

func TestAllReduceScalarSum(t *testing.T) {
	runRanks(t, 3, func(tr Transport) error {
		got, err := AllReduceScalarSum(tr, float64(tr.Rank()+1), 6)
		if err != nil {
			return err
		}
		if got != 6 { // 1+2+3
			t.Errorf("rank %d: scalar sum = %v", tr.Rank(), got)
		}
		return nil
	})
}
