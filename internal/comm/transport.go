// Package comm provides the message-passing substrate the training runtimes
// communicate over: a tagged point-to-point Transport with an in-process
// (goroutine/channel) implementation and a TCP implementation, plus ring
// collectives (all-reduce, all-gather, reduce-scatter, broadcast) built
// purely on P2P — mirroring the paper's NCCL configuration, where the
// collective primitives are ring-based and tree algorithms are disabled.
//
// Sends are asynchronous and buffered (the analogue of the paper's
// batch_isend_irecv prefetching): Send never blocks waiting for the
// receiver, and Recv blocks until a matching message arrives. Payloads are
// always copied at the send boundary, so ranks can never alias each other's
// memory — in-process training observes the same isolation as a network.
package comm

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies a message so tags from different protocol phases can never
// collide.
type Kind uint8

// Message kinds used by the runtimes.
const (
	// KindWeight carries a flat weight chunk (WeiPipe W flow).
	KindWeight Kind = iota
	// KindGrad carries a flat weight-gradient chunk (WeiPipe D flow).
	KindGrad
	// KindAct carries boundary activations (activation-passing PP).
	KindAct
	// KindActGrad carries boundary activation gradients.
	KindActGrad
	// KindColl is reserved for the collective implementations.
	KindColl
	// KindCtl carries small control payloads (loss values, barriers).
	KindCtl
	// KindBuddy carries buddy-replication state (the dual-delivered retired
	// gradient a rank uses to shadow its successor's optimizer shard). It is
	// deliberately distinct from KindWeight/KindGrad so tests can assert the
	// training critical path's message counts are unchanged by replication.
	KindBuddy

	// kindCount is one past the highest Kind. The wire framing validates
	// frame kinds against it, so a Kind added above is accepted on the wire
	// without touching the decoder.
	kindCount
)

// Tag identifies a message stream between two ranks. A and B are
// protocol-defined indices (e.g. chunk id and turn, or microbatch and
// stage); matching is exact on (source, Kind, A, B).
type Tag struct {
	Kind Kind
	A    int
	B    int
}

func (t Tag) String() string {
	return fmt.Sprintf("%d/%d/%d", t.Kind, t.A, t.B)
}

// Transport is one rank's endpoint of a P2P message fabric.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send transmits a copy of data to dst under tag. It does not block
	// waiting for the receiver and may buffer arbitrarily.
	Send(dst int, tag Tag, data []float32) error
	// Recv blocks until a message from src with the given tag arrives and
	// returns its payload. The returned slice is owned by the caller.
	Recv(src int, tag Tag) ([]float32, error)
	// RecvTimeout is Recv with a deadline: if no matching message arrives
	// within timeout it returns a *TimeoutError (matching ErrTimeout).
	// timeout <= 0 waits forever, identical to Recv.
	RecvTimeout(src int, tag Tag, timeout time.Duration) ([]float32, error)
	// Close releases resources. Pending Recvs fail after Close.
	Close() error
}

// msgKey matches incoming messages to receivers.
type msgKey struct {
	src int
	tag Tag
}

// mailbox is an unbounded, tag-matched message buffer shared by the
// in-process and TCP transports. It fails with a cause: closing it with a
// PeerDeadError (for instance) makes every pending and future take return
// that error, so blocked runners learn *why* their receive failed.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][][]float32
	err    error // non-nil once closed
}

func newMailbox() *mailbox {
	m := &mailbox{queues: make(map[msgKey][][]float32)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deliver appends a payload (already owned by the mailbox) for key.
func (m *mailbox) deliver(key msgKey, payload []float32) {
	m.mu.Lock()
	m.queues[key] = append(m.queues[key], payload)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a payload for key is available, the mailbox closes, or
// the timeout expires (timeout <= 0 waits forever).
func (m *mailbox) take(key msgKey, timeout time.Duration) ([]float32, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// sync.Cond has no timed wait; a timer broadcast wakes the loop so it
		// can observe the deadline.
		timer := time.AfterFunc(timeout, m.cond.Broadcast)
		defer timer.Stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.queues[key]; len(q) > 0 {
			payload := q[0]
			if len(q) == 1 {
				delete(m.queues, key)
			} else {
				m.queues[key] = q[1:]
			}
			return payload, nil
		}
		if m.err != nil {
			return nil, fmt.Errorf("comm: waiting for src %d tag %v: %w", key.src, key.tag, m.err)
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return nil, &TimeoutError{Src: key.src, Tag: key.tag, Timeout: timeout}
		}
		m.cond.Wait()
	}
}

// close fails the mailbox with ErrClosed (a clean local shutdown).
func (m *mailbox) close() { m.closeWithErr(ErrClosed) }

// closeWithErr fails all pending and future takes with cause. The first
// cause wins; later calls are no-ops.
func (m *mailbox) closeWithErr(cause error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = cause
	}
	m.mu.Unlock()
	m.cond.Broadcast()
}
