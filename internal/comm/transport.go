// Package comm provides the message-passing substrate the training runtimes
// communicate over: a tagged point-to-point Transport with an in-process
// (goroutine/channel) implementation and a TCP implementation, plus ring
// collectives (all-reduce, all-gather, reduce-scatter, broadcast) built
// purely on P2P — mirroring the paper's NCCL configuration, where the
// collective primitives are ring-based and tree algorithms are disabled.
//
// Sends are asynchronous and buffered (the analogue of the paper's
// batch_isend_irecv prefetching): Send never blocks waiting for the
// receiver, and Recv blocks until a matching message arrives. Payloads are
// always copied at the send boundary, so ranks can never alias each other's
// memory — in-process training observes the same isolation as a network.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind classifies a message so tags from different protocol phases can never
// collide.
type Kind uint8

// Message kinds used by the runtimes.
const (
	// KindWeight carries a flat weight chunk (WeiPipe W flow).
	KindWeight Kind = iota
	// KindGrad carries a flat weight-gradient chunk (WeiPipe D flow).
	KindGrad
	// KindAct carries boundary activations (activation-passing PP).
	KindAct
	// KindActGrad carries boundary activation gradients.
	KindActGrad
	// KindColl is reserved for the collective implementations.
	KindColl
	// KindCtl carries small control payloads (loss values, barriers).
	KindCtl
	// KindBuddy carries buddy-replication state (the dual-delivered retired
	// gradient a rank uses to shadow its successor's optimizer shard). It is
	// deliberately distinct from KindWeight/KindGrad so tests can assert the
	// training critical path's message counts are unchanged by replication.
	KindBuddy

	// kindCount is one past the highest Kind. The wire framing validates
	// frame kinds against it, so a Kind added above is accepted on the wire
	// without touching the decoder.
	kindCount
)

// Tag identifies a message stream between two ranks. A and B are
// protocol-defined indices (e.g. chunk id and turn, or microbatch and
// stage); matching is exact on (source, Kind, A, B).
type Tag struct {
	Kind Kind
	A    int
	B    int
}

func (t Tag) String() string {
	return fmt.Sprintf("%d/%d/%d", t.Kind, t.A, t.B)
}

// Transport is one rank's endpoint of a P2P message fabric.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send transmits a copy of data to dst under tag. It does not block
	// waiting for the receiver and may buffer arbitrarily.
	Send(dst int, tag Tag, data []float32) error
	// Recv blocks until a message from src with the given tag arrives and
	// returns its payload. The returned slice is owned by the caller.
	Recv(src int, tag Tag) ([]float32, error)
	// RecvTimeout is Recv with a deadline: if no matching message arrives
	// within timeout it returns a *TimeoutError (matching ErrTimeout).
	// timeout <= 0 waits forever, identical to Recv.
	RecvTimeout(src int, tag Tag, timeout time.Duration) ([]float32, error)
	// Close releases resources. Pending Recvs fail after Close.
	Close() error
}

// OwnedSender is implemented by transports that support buffer donation:
// SendOwned transfers ownership of a pool-drawn payload to the transport,
// which may deliver it without copying. The caller must not touch (or
// Release) the slice afterwards — the transport releases or re-homes it.
// Plain Send keeps its copy-at-the-boundary contract for callers that reuse
// their slice.
type OwnedSender interface {
	SendOwned(dst int, tag Tag, payload []float32) error
}

// SendOwned donates payload (a GetBuf buffer owned by the caller) to
// transport t for delivery to dst. Transports without a donation path fall
// back to a copying Send followed by Release, so ownership still transfers
// and the caller's obligations are identical either way: after SendOwned the
// payload belongs to the comm layer.
func SendOwned(t Transport, dst int, tag Tag, payload []float32) error {
	if os, ok := t.(OwnedSender); ok {
		return os.SendOwned(dst, tag, payload)
	}
	err := t.Send(dst, tag, payload)
	Release(payload)
	return err
}

// msgKey matches incoming messages to receivers.
type msgKey struct {
	src int
	tag Tag
}

// mailbox is an unbounded, tag-matched message buffer shared by the
// in-process and TCP transports. It fails with a cause: closing it with a
// PeerDeadError (for instance) makes every pending and future take return
// that error, so blocked runners learn *why* their receive failed.
type mailbox struct {
	mu      sync.Mutex
	queues  map[msgKey][][]float32
	waiters map[msgKey]*keyWaiter // parked takes, woken per key
	free    [][][]float32         // recycled empty per-key queues (bounded; see take)
	err     error                 // non-nil once closed

	// stats, when non-nil, receives the overlap telemetry: bytes sitting in
	// the mailbox (delivered but not yet taken — the in-flight gauge) and
	// the time receivers spend blocked in take.
	stats *Stats
}

// keyWaiter parks the takes waiting on one key. Per-key conditions keep
// delivery wakeups targeted: with the overlap engine a rank has several
// goroutines blocked on the same mailbox (two belt lanes plus the compute
// thread), and a shared broadcast would wake all of them on every deliver
// only for all but one to re-park behind the mailbox lock.
type keyWaiter struct {
	cond *sync.Cond
	n    int // parked takes; the entry is removed when it drops to 0
}

func newMailbox() *mailbox {
	return &mailbox{
		queues:  make(map[msgKey][][]float32),
		waiters: make(map[msgKey]*keyWaiter),
	}
}

// deliver appends a payload (already owned by the mailbox) for key. New keys
// reuse a queue slice from the freelist so the steady-state deliver/take
// cycle does not allocate (belt tags never repeat, so without recycling
// every hop would allocate a fresh one-element queue).
func (m *mailbox) deliver(key msgKey, payload []float32) {
	m.mu.Lock()
	q := m.queues[key]
	if q == nil && len(m.free) > 0 {
		q = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
	}
	m.queues[key] = append(q, payload)
	w := m.waiters[key]
	m.mu.Unlock()
	if m.stats != nil {
		m.stats.noteInflight(int64(len(payload)) * 4)
	}
	if w != nil {
		w.cond.Signal()
	}
}

// take blocks until a payload for key is available, the mailbox closes, or
// the timeout expires (timeout <= 0 waits forever).
func (m *mailbox) take(key msgKey, timeout time.Duration) ([]float32, error) {
	var deadline time.Time
	var w *keyWaiter
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
		// sync.Cond has no timed wait; a timer wake lets the loop observe the
		// deadline. The waiter entry is created up front so the timer has a
		// condition to poke.
		m.mu.Lock()
		w = m.waiter(key)
		m.mu.Unlock()
		timer := time.AfterFunc(timeout, w.cond.Broadcast)
		defer timer.Stop()
	}
	var waitStart time.Time // set the first time the take actually blocks
	m.mu.Lock()
	defer m.mu.Unlock()
	defer func() { m.unpark(key, w) }() // w may be set on first block below
	for {
		if q := m.queues[key]; len(q) > 0 {
			payload := q[0]
			if len(q) == 1 {
				delete(m.queues, key)
				q[0] = nil // drop the payload reference before recycling
				if len(m.free) < 8 {
					m.free = append(m.free, q[:0])
				}
			} else {
				m.queues[key] = q[1:]
			}
			if m.stats != nil {
				m.stats.noteInflight(int64(len(payload)) * -4)
				if !waitStart.IsZero() {
					m.stats.noteRecvWait(time.Since(waitStart))
				}
			}
			return payload, nil
		}
		if m.err != nil {
			return nil, fmt.Errorf("comm: waiting for src %d tag %v: %w", key.src, key.tag, m.err)
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return nil, &TimeoutError{Src: key.src, Tag: key.tag, Timeout: timeout}
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		if w == nil {
			w = m.waiter(key)
		}
		w.cond.Wait()
	}
}

// tryTake returns an already-delivered payload for key without blocking.
// It succeeds even on a closed mailbox: delivery outlives failure, so
// evidence that arrived before a peer death is never lost.
func (m *mailbox) tryTake(key msgKey) ([]float32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.queues[key]
	if len(q) == 0 {
		return nil, false
	}
	payload := q[0]
	if len(q) == 1 {
		delete(m.queues, key)
		q[0] = nil
		if len(m.free) < 8 {
			m.free = append(m.free, q[:0])
		}
	} else {
		m.queues[key] = q[1:]
	}
	if m.stats != nil {
		m.stats.noteInflight(int64(len(payload)) * -4)
	}
	return payload, true
}

// waiter returns key's parked-take entry, creating it if needed, and counts
// the caller in. Callers hold m.mu and must pair with unpark.
func (m *mailbox) waiter(key msgKey) *keyWaiter {
	w := m.waiters[key]
	if w == nil {
		w = &keyWaiter{cond: sync.NewCond(&m.mu)}
		m.waiters[key] = w
	}
	w.n++
	return w
}

// unpark counts a take out of its waiter entry (nil if it never parked),
// dropping the entry once nobody waits on the key. Callers hold m.mu.
func (m *mailbox) unpark(key msgKey, w *keyWaiter) {
	if w == nil {
		return
	}
	w.n--
	if w.n == 0 {
		delete(m.waiters, key)
	}
}

// close fails the mailbox with ErrClosed (a clean local shutdown).
func (m *mailbox) close() { m.closeWithErr(ErrClosed) }

// reopen clears a peer-death closure so recovery protocols (membership
// agreement, state harvest) can keep using the healthy links. Only a
// *PeerDeadError cause is cleared: a locally-Closed mailbox stays closed —
// reopening it would race the owner's shutdown. Returns whether the
// mailbox accepts takes afterwards.
func (m *mailbox) reopen() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil {
		return true
	}
	if !errors.Is(m.err, ErrPeerDead) {
		return false
	}
	m.err = nil
	return true
}

// closeWithErr fails all pending and future takes with cause. The first
// cause wins; later calls are no-ops.
func (m *mailbox) closeWithErr(cause error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = cause
	}
	for _, w := range m.waiters {
		w.cond.Broadcast()
	}
	m.mu.Unlock()
}
