package comm

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// Membership agreement is a pure function of the observation union: every
// survivor, given the same evidence, computes the same dead set with no
// coordinator round.

func TestAgreeMembershipUnionsAndSorts(t *testing.T) {
	m := AgreeMembership(5, []int{3, 1}, []int{1}, nil, []int{3})
	if m.OldSize != 5 {
		t.Fatalf("OldSize = %d, want 5", m.OldSize)
	}
	if want := []int{1, 3}; !reflect.DeepEqual(m.Dead, want) {
		t.Fatalf("Dead = %v, want %v", m.Dead, want)
	}
	if want := []int{0, 2, 4}; !reflect.DeepEqual(m.Survivors(), want) {
		t.Fatalf("Survivors = %v, want %v", m.Survivors(), want)
	}
	if !m.IsDead(1) || !m.IsDead(3) || m.IsDead(0) || m.IsDead(2) {
		t.Fatal("IsDead disagrees with the dead set")
	}
}

func TestAgreeMembershipDiscardsOutOfRange(t *testing.T) {
	m := AgreeMembership(3, []int{-1, 0, 3, 7})
	if want := []int{0}; !reflect.DeepEqual(m.Dead, want) {
		t.Fatalf("Dead = %v, want %v (out-of-range observations must be dropped)", m.Dead, want)
	}
}

func TestAgreeMembershipEmptyEvidence(t *testing.T) {
	m := AgreeMembership(4)
	if len(m.Dead) != 0 {
		t.Fatalf("Dead = %v, want empty", m.Dead)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(m.Survivors(), want) {
		t.Fatalf("Survivors = %v, want %v", m.Survivors(), want)
	}
}

func TestDeadPeerExtraction(t *testing.T) {
	wrapped := fmt.Errorf("iteration 3: %w", &PeerDeadError{Rank: 2})
	if r, ok := DeadPeer(wrapped); !ok || r != 2 {
		t.Fatalf("DeadPeer(wrapped PeerDeadError) = (%d, %v), want (2, true)", r, ok)
	}
	if _, ok := DeadPeer(errors.New("plain")); ok {
		t.Fatal("DeadPeer claimed a rank from an error that names none")
	}
	if _, ok := DeadPeer(ErrClosed); ok {
		t.Fatal("DeadPeer claimed a rank from ErrClosed")
	}
}
