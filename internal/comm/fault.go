package comm

import (
	"sync"
	"time"
)

// FaultTransport wraps any Transport with deterministic, seed-keyed fault
// injection: per-link message delay, drop, duplication and reordering, plus
// a scheduled crash of this endpoint after a chosen number of sends. Every
// fault decision is a pure function of (seed, src, dst, per-link send
// ordinal), so a failure scenario observed once is reproducible in a unit
// test by re-running with the same seed.
//
// FaultTransport injects faults at the *message* level, above any
// reliability machinery — a dropped message is gone. It is the tool for
// testing timeout, abort and recovery paths. To exercise faults that the
// hardened TCP transport must mask transparently (frame drop, duplication,
// reordering, connection reset), use ChaosConfig in DialTCPOpts, which
// injects below the sequence-number/redelivery layer.
type FaultTransport struct {
	inner Transport
	cfg   FaultConfig

	mu        sync.Mutex
	sends     int64             // total sends, drives the crash schedule
	linkSends map[int]uint64    // per-destination send ordinal, keys the PRNG
	held      map[int][]float32 // one-deep reorder buffer per destination
	heldTag   map[int]Tag
	crashed   bool

	drops, dups, delays, reorders int64
}

// LinkFaults is the per-link fault distribution. Probabilities are in
// [0, 1] and drawn independently per message.
type LinkFaults struct {
	// DropProb silently discards the message.
	DropProb float64
	// DupProb sends the message twice.
	DupProb float64
	// ReorderProb holds the message back and releases it after the next
	// message to the same destination (swapping their order). A held
	// message is flushed by Flush or Close.
	ReorderProb float64
	// DelayProb sleeps the sender for a deterministic fraction of Delay.
	DelayProb float64
	Delay     time.Duration
}

// FaultConfig configures a FaultTransport.
type FaultConfig struct {
	// Seed keys every fault decision.
	Seed uint64
	// Default applies to every outgoing link unless overridden in Links.
	Default LinkFaults
	// Links overrides the fault distribution for specific destinations.
	Links map[int]LinkFaults
	// CrashAtSend, when positive, kills this endpoint at its CrashAtSend-th
	// Send (1-based): the underlying transport is closed (as a dead process
	// would) and every subsequent operation fails with ErrCrashed.
	CrashAtSend int64
	// StallAtSend, when positive, sleeps this endpoint for StallFor at its
	// StallAtSend-th Send (1-based) before delivering — a deterministic
	// single straggler event (GC pause, page fault storm, slow NIC) for
	// watchdog tests.
	StallAtSend int64
	StallFor    time.Duration
}

// NewFaultTransport wraps inner with fault injection.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	return &FaultTransport{
		inner:     inner,
		cfg:       cfg,
		linkSends: make(map[int]uint64),
		held:      make(map[int][]float32),
		heldTag:   make(map[int]Tag),
	}
}

// splitmix64 is the PRNG core: a bijective mixer with good avalanche, so
// consecutive ordinals give independent-looking draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// faultRoll returns a deterministic uniform draw in [0, 1) for the given
// (seed, src, dst, ordinal, lane). lane separates independent decisions
// (drop vs dup vs …) for the same message.
func faultRoll(seed uint64, src, dst int, ordinal, lane uint64) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(src)<<32|uint64(uint32(dst))) ^ splitmix64(ordinal<<8|lane))
	return float64(h>>11) / float64(1<<53)
}

func (f *FaultTransport) linkFaults(dst int) LinkFaults {
	if lf, ok := f.cfg.Links[dst]; ok {
		return lf
	}
	return f.cfg.Default
}

// Rank implements Transport.
func (f *FaultTransport) Rank() int { return f.inner.Rank() }

// Size implements Transport.
func (f *FaultTransport) Size() int { return f.inner.Size() }

// CommStats implements Meter when the wrapped transport does.
func (f *FaultTransport) CommStats() *Stats {
	if m, ok := f.inner.(Meter); ok {
		return m.CommStats()
	}
	return nil
}

// WireCodec implements CodecProvider when the wrapped transport does
// (message-level fault injection never re-encodes payloads).
func (f *FaultTransport) WireCodec(tag Tag) WireCodec {
	if cp, ok := f.inner.(CodecProvider); ok {
		return cp.WireCodec(tag)
	}
	return CodecF32
}

// Send implements Transport, applying the configured faults.
func (f *FaultTransport) Send(dst int, tag Tag, data []float32) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.sends++
	if f.cfg.CrashAtSend > 0 && f.sends >= f.cfg.CrashAtSend {
		f.crashed = true
		f.mu.Unlock()
		// A crashed process takes its endpoint down with it: peers observe
		// broken connections (or closed mailboxes), not a graceful goodbye.
		f.inner.Close()
		return ErrCrashed
	}
	stall := f.cfg.StallAtSend > 0 && f.sends == f.cfg.StallAtSend && f.cfg.StallFor > 0
	ordinal := f.linkSends[dst]
	f.linkSends[dst] = ordinal + 1
	lf := f.linkFaults(dst)
	src := f.inner.Rank()

	// Decide every fault up front from independent lanes.
	drop := lf.DropProb > 0 && faultRoll(f.cfg.Seed, src, dst, ordinal, 0) < lf.DropProb
	dup := lf.DupProb > 0 && faultRoll(f.cfg.Seed, src, dst, ordinal, 1) < lf.DupProb
	reorder := lf.ReorderProb > 0 && faultRoll(f.cfg.Seed, src, dst, ordinal, 2) < lf.ReorderProb
	delay := time.Duration(0)
	if lf.DelayProb > 0 && lf.Delay > 0 && faultRoll(f.cfg.Seed, src, dst, ordinal, 3) < lf.DelayProb {
		delay = time.Duration(faultRoll(f.cfg.Seed, src, dst, ordinal, 4) * float64(lf.Delay))
	}

	// A held message from a previous reorder decision is released after the
	// current message, completing the swap.
	heldPayload, hasHeld := f.held[dst]
	heldT := f.heldTag[dst]
	if hasHeld {
		delete(f.held, dst)
		delete(f.heldTag, dst)
	}
	if drop {
		f.drops++
	}
	if dup {
		f.dups++
	}
	if reorder && !drop {
		f.reorders++
		hold := GetBuf(len(data))
		copy(hold, data)
		f.held[dst] = hold
		f.heldTag[dst] = tag
	}
	f.mu.Unlock()

	if stall {
		f.mu.Lock()
		f.delays++
		f.mu.Unlock()
		time.Sleep(f.cfg.StallFor)
	}
	if delay > 0 {
		f.mu.Lock()
		f.delays++
		f.mu.Unlock()
		time.Sleep(delay)
	}
	var err error
	if !drop && !reorder {
		err = f.inner.Send(dst, tag, data)
		if err == nil && dup {
			err = f.inner.Send(dst, tag, data)
		}
	}
	if hasHeld {
		if err2 := f.inner.Send(dst, heldT, heldPayload); err == nil {
			err = err2
		}
		Release(heldPayload)
	}
	return err
}

// Flush releases every held (reordered) message immediately, in destination
// order. Call it at a protocol quiesce point if traffic to a destination
// may stop while a message is held.
func (f *FaultTransport) Flush() error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	type pending struct {
		dst     int
		tag     Tag
		payload []float32
	}
	var out []pending
	for dst, payload := range f.held {
		out = append(out, pending{dst, f.heldTag[dst], payload})
		delete(f.held, dst)
		delete(f.heldTag, dst)
	}
	f.mu.Unlock()
	var first error
	for _, p := range out {
		if err := f.inner.Send(p.dst, p.tag, p.payload); first == nil {
			first = err
		}
		Release(p.payload)
	}
	return first
}

// Recv implements Transport.
func (f *FaultTransport) Recv(src int, tag Tag) ([]float32, error) {
	return f.RecvTimeout(src, tag, 0)
}

// RecvTimeout implements Transport.
func (f *FaultTransport) RecvTimeout(src int, tag Tag, timeout time.Duration) ([]float32, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.inner.RecvTimeout(src, tag, timeout)
}

// Close implements Transport.
func (f *FaultTransport) Close() error {
	f.mu.Lock()
	for dst, payload := range f.held {
		Release(payload)
		delete(f.held, dst)
		delete(f.heldTag, dst)
	}
	f.mu.Unlock()
	return f.inner.Close()
}

// BeginRecovery implements Recoverer by forwarding to the wrapped
// transport (a crashed endpoint stays crashed — injected deaths are
// permanent).
func (f *FaultTransport) BeginRecovery() []int {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil
	}
	return BeginRecovery(f.inner)
}

// Crashed reports whether the scheduled crash has fired.
func (f *FaultTransport) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Injected returns the fault counts applied so far (drops, dups, delays,
// reorders) and the total send count.
func (f *FaultTransport) Injected() (drops, dups, delays, reorders, sends int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drops, f.dups, f.delays, f.reorders, f.sends
}

var _ Transport = (*FaultTransport)(nil)
