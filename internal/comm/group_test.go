package comm

import (
	"sync"
	"testing"
)

func TestGroupRankMapping(t *testing.T) {
	cl := NewCluster(6)
	g, err := NewGroup(cl.Transport(4), []int{2, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rank() != 1 || g.Size() != 2 {
		t.Fatalf("rank/size = %d/%d", g.Rank(), g.Size())
	}
}

func TestGroupSendRecvAcrossMapping(t *testing.T) {
	cl := NewCluster(4)
	gA, _ := NewGroup(cl.Transport(1), []int{1, 3}, 5)
	gB, _ := NewGroup(cl.Transport(3), []int{1, 3}, 5)
	if err := gA.Send(1, Tag{Kind: KindGrad, A: 9}, []float32{7}); err != nil {
		t.Fatal(err)
	}
	got, err := gB.Recv(0, Tag{Kind: KindGrad, A: 9})
	if err != nil || got[0] != 7 {
		t.Fatalf("recv: %v %v", got, err)
	}
	// invalid group ranks rejected
	if err := gA.Send(2, Tag{}, nil); err == nil {
		t.Fatal("send to rank beyond group size accepted")
	}
	if _, err := gB.Recv(-1, Tag{}); err == nil {
		t.Fatal("recv from negative rank accepted")
	}
}

func TestGroupCollectivesWork(t *testing.T) {
	// A ring all-reduce inside a group must only involve the group.
	cl := NewCluster(4)
	ranks := []int{0, 2}
	results := make([][]float32, 2)
	var wg sync.WaitGroup
	for i, parent := range ranks {
		wg.Add(1)
		go func(i, parent int) {
			defer wg.Done()
			g, err := NewGroup(cl.Transport(parent), ranks, 9)
			if err != nil {
				t.Error(err)
				return
			}
			data := []float32{float32(i + 1), 10}
			if err := RingAllReduceSum(g, data, 1); err != nil {
				t.Error(err)
				return
			}
			results[i] = data
		}(i, parent)
	}
	wg.Wait()
	for i := range results {
		if results[i][0] != 3 || results[i][1] != 20 {
			t.Fatalf("member %d: %v", i, results[i])
		}
	}
}

func TestGroupCloseIsNoop(t *testing.T) {
	cl := NewCluster(2)
	g, _ := NewGroup(cl.Transport(0), []int{0, 1}, 1)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// parent still usable
	if err := cl.Transport(0).Send(1, Tag{}, []float32{1}); err != nil {
		t.Fatal(err)
	}
}

func TestTagSaltDisjointFromParentTraffic(t *testing.T) {
	cl := NewCluster(2)
	parent0 := cl.Transport(0)
	parent1 := cl.Transport(1)
	g0, _ := NewGroup(parent0, []int{0, 1}, 1)
	g1, _ := NewGroup(parent1, []int{0, 1}, 1)

	tag := Tag{Kind: KindCtl, A: 4, B: 4}
	parent0.Send(1, tag, []float32{1}) // un-salted
	g0.Send(1, tag, []float32{2})      // salted
	gv, err := g1.Recv(0, tag)
	if err != nil || gv[0] != 2 {
		t.Fatalf("group recv got %v %v", gv, err)
	}
	pv, err := parent1.Recv(0, tag)
	if err != nil || pv[0] != 1 {
		t.Fatalf("parent recv got %v %v", pv, err)
	}
}
