package comm

import (
	"sync"
	"testing"
)

func TestGroupRankMapping(t *testing.T) {
	cl := NewCluster(6)
	g, err := NewGroup(cl.Transport(4), []int{2, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rank() != 1 || g.Size() != 2 {
		t.Fatalf("rank/size = %d/%d", g.Rank(), g.Size())
	}
}

func TestGroupSendRecvAcrossMapping(t *testing.T) {
	cl := NewCluster(4)
	gA, _ := NewGroup(cl.Transport(1), []int{1, 3}, 5)
	gB, _ := NewGroup(cl.Transport(3), []int{1, 3}, 5)
	if err := gA.Send(1, Tag{Kind: KindGrad, A: 9}, []float32{7}); err != nil {
		t.Fatal(err)
	}
	got, err := gB.Recv(0, Tag{Kind: KindGrad, A: 9})
	if err != nil || got[0] != 7 {
		t.Fatalf("recv: %v %v", got, err)
	}
	// invalid group ranks rejected
	if err := gA.Send(2, Tag{}, nil); err == nil {
		t.Fatal("send to rank beyond group size accepted")
	}
	if _, err := gB.Recv(-1, Tag{}); err == nil {
		t.Fatal("recv from negative rank accepted")
	}
}

func TestGroupCollectivesWork(t *testing.T) {
	// A ring all-reduce inside a group must only involve the group.
	cl := NewCluster(4)
	ranks := []int{0, 2}
	results := make([][]float32, 2)
	var wg sync.WaitGroup
	for i, parent := range ranks {
		wg.Add(1)
		go func(i, parent int) {
			defer wg.Done()
			g, err := NewGroup(cl.Transport(parent), ranks, 9)
			if err != nil {
				t.Error(err)
				return
			}
			data := []float32{float32(i + 1), 10}
			if err := RingAllReduceSum(g, data, 1); err != nil {
				t.Error(err)
				return
			}
			results[i] = data
		}(i, parent)
	}
	wg.Wait()
	for i := range results {
		if results[i][0] != 3 || results[i][1] != 20 {
			t.Fatalf("member %d: %v", i, results[i])
		}
	}
}

// TestSubRingPartitionMatchesDirectSums is the nested-comm-group property
// test: partition a ring into contiguous groups of m, run ring collectives
// inside every group concurrently, and require each member's result to
// equal the directly-computed reduction over exactly its group's inputs —
// no leakage between sub-rings sharing the parent fabric.
func TestSubRingPartitionMatchesDirectSums(t *testing.T) {
	const p = 8
	val := func(rank, j int) float32 { return float32((rank+1)*100 + j) }
	for _, m := range []int{2, 4, 8} {
		cl := NewCluster(p)
		results := make([][]float32, p)
		gathered := make([][]float32, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				g := r / m
				ranks := make([]int, m)
				for i := range ranks {
					ranks[i] = g*m + i
				}
				grp, err := NewGroup(cl.Transport(r), ranks, 10+g)
				if err != nil {
					t.Error(err)
					return
				}
				data := []float32{val(r, 0), val(r, 1), val(r, 2)}
				if err := RingAllReduceSum(grp, data, 1); err != nil {
					t.Error(err)
					return
				}
				results[r] = data
				mine := []float32{val(r, 7)}
				lens := make([]int, m)
				for i := range lens {
					lens[i] = 1
				}
				all, err := AllGather(grp, mine, lens, 2)
				if err != nil {
					t.Error(err)
					return
				}
				gathered[r] = all
			}(r)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		for r := 0; r < p; r++ {
			g := r / m
			for j := 0; j < 3; j++ {
				var want float32
				for i := 0; i < m; i++ {
					want += val(g*m+i, j)
				}
				if results[r][j] != want {
					t.Fatalf("m=%d rank %d elem %d: got %v want %v", m, r, j, results[r][j], want)
				}
			}
			for i := 0; i < m; i++ {
				if gathered[r][i] != val(g*m+i, 7) {
					t.Fatalf("m=%d rank %d gather slot %d: got %v want %v",
						m, r, i, gathered[r][i], val(g*m+i, 7))
				}
			}
		}
		cl.Close()
	}
}

// TestSubRingFullCoverMatchesWholeRing requires a group covering every rank
// to reproduce the parent-transport collective bit for bit: the group seam
// only remaps ranks and salts tags, never changes reduction order.
func TestSubRingFullCoverMatchesWholeRing(t *testing.T) {
	const p = 4
	input := func(r, j int) float32 { return float32(r)*1.5 + float32(j)*0.25 }
	run := func(useGroup bool) [][]float32 {
		cl := NewCluster(p)
		defer cl.Close()
		out := make([][]float32, p)
		ranks := []int{0, 1, 2, 3}
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var tr Transport = cl.Transport(r)
				if useGroup {
					g, err := NewGroup(tr, ranks, 7)
					if err != nil {
						t.Error(err)
						return
					}
					tr = g
				}
				data := make([]float32, 5)
				for j := range data {
					data[j] = input(r, j)
				}
				if err := RingAllReduceSum(tr, data, 1); err != nil {
					t.Error(err)
					return
				}
				out[r] = data
			}(r)
		}
		wg.Wait()
		return out
	}
	direct := run(false)
	grouped := run(true)
	if t.Failed() {
		t.FailNow()
	}
	for r := 0; r < p; r++ {
		for j := range direct[r] {
			if direct[r][j] != grouped[r][j] {
				t.Fatalf("rank %d elem %d: parent %v vs full-cover group %v",
					r, j, direct[r][j], grouped[r][j])
			}
		}
	}
}

func TestGroupCloseIsNoop(t *testing.T) {
	cl := NewCluster(2)
	g, _ := NewGroup(cl.Transport(0), []int{0, 1}, 1)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// parent still usable
	if err := cl.Transport(0).Send(1, Tag{}, []float32{1}); err != nil {
		t.Fatal(err)
	}
}

func TestTagSaltDisjointFromParentTraffic(t *testing.T) {
	cl := NewCluster(2)
	parent0 := cl.Transport(0)
	parent1 := cl.Transport(1)
	g0, _ := NewGroup(parent0, []int{0, 1}, 1)
	g1, _ := NewGroup(parent1, []int{0, 1}, 1)

	tag := Tag{Kind: KindCtl, A: 4, B: 4}
	parent0.Send(1, tag, []float32{1}) // un-salted
	g0.Send(1, tag, []float32{2})      // salted
	gv, err := g1.Recv(0, tag)
	if err != nil || gv[0] != 2 {
		t.Fatalf("group recv got %v %v", gv, err)
	}
	pv, err := parent1.Recv(0, tag)
	if err != nil || pv[0] != 1 {
		t.Fatalf("parent recv got %v %v", pv, err)
	}
}
