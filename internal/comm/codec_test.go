package comm

import (
	"sync"
	"testing"
	"time"

	"weipipe/internal/tensor"
)

func TestSendOwnedInprocZeroCopy(t *testing.T) {
	// Donation on the in-process fabric must hand the receiver the very
	// buffer the sender gave up — no copy on the hot path.
	cl := NewCluster(2)
	defer cl.Close()
	payload := GetBuf(128)
	for i := range payload {
		payload[i] = float32(i)
	}
	donated := &payload[0]
	if err := SendOwned(cl.Transport(0), 1, Tag{Kind: KindGrad, A: 1, B: 2}, payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Transport(1).Recv(0, Tag{Kind: KindGrad, A: 1, B: 2})
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != donated {
		t.Error("SendOwned copied the payload on the in-process fabric")
	}
	for i := range got {
		if got[i] != float32(i) {
			t.Fatalf("element %d = %v, want %v", i, got[i], float32(i))
		}
	}
	Release(got)
}

func TestSendOwnedInvalidRankReleases(t *testing.T) {
	cl := NewCluster(2)
	defer cl.Close()
	// Ownership transfers even on the error path: the call must not panic
	// and the caller must not need to Release.
	if err := SendOwned(cl.Transport(0), 7, Tag{Kind: KindGrad}, GetBuf(64)); err == nil {
		t.Fatal("send to invalid rank succeeded")
	}
}

func TestSendOwnedFallbackCopies(t *testing.T) {
	// A transport without a donation path still consumes ownership: the
	// helper copies via plain Send and releases the original.
	cl := NewCluster(2)
	defer cl.Close()
	base := cl.Transport(0)
	wrapped := plainTransport{base} // hides the OwnedSender method
	payload := GetBuf(64)
	for i := range payload {
		payload[i] = 3
	}
	donated := &payload[0]
	if err := SendOwned(wrapped, 1, Tag{Kind: KindWeight, A: 9}, payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Transport(1).Recv(0, Tag{Kind: KindWeight, A: 9})
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] == donated {
		t.Error("fallback path delivered the caller's buffer without a copying transport")
	}
	Release(got)
}

// plainTransport strips the OwnedSender method from a Transport.
type plainTransport struct{ t Transport }

func (p plainTransport) Rank() int { return p.t.Rank() }
func (p plainTransport) Size() int { return p.t.Size() }
func (p plainTransport) Send(dst int, tag Tag, data []float32) error {
	return p.t.Send(dst, tag, data)
}
func (p plainTransport) Recv(src int, tag Tag) ([]float32, error) { return p.t.Recv(src, tag) }
func (p plainTransport) RecvTimeout(src int, tag Tag, d time.Duration) ([]float32, error) {
	return p.t.RecvTimeout(src, tag, d)
}
func (p plainTransport) Close() error { return p.t.Close() }

func TestBF16CodecInproc(t *testing.T) {
	// BeltBF16 rounds belt kinds into the bf16 value domain and accounts
	// 2 bytes/elem, while control kinds pass through in full precision.
	cl := NewClusterCodec(2, BeltBF16)
	defer cl.Close()
	vals := []float32{1.0, 3.14159265, -2.718281828, 1e-20, 65504}
	if err := cl.Transport(0).Send(1, Tag{Kind: KindWeight, A: 1}, vals); err != nil {
		t.Fatal(err)
	}
	if err := cl.Transport(0).Send(1, Tag{Kind: KindCtl, A: 1}, vals); err != nil {
		t.Fatal(err)
	}
	w, err := cl.Transport(1).Recv(0, Tag{Kind: KindWeight, A: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		want := tensor.BF16ToF32(tensor.F32ToBF16(v))
		if w[i] != want {
			t.Errorf("weight[%d] = %v, want bf16-rounded %v", i, w[i], want)
		}
	}
	c, err := cl.Transport(1).Recv(0, Tag{Kind: KindCtl, A: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if c[i] != v {
			t.Errorf("ctl[%d] = %v, want exact %v", i, c[i], v)
		}
	}
	Release(w)
	Release(c)
	// Wire accounting: 5 elems × 2 bytes for the belt kind, ×4 for ctl.
	if got := cl.Stats(0).SentBytes(KindWeight); got != 10 {
		t.Errorf("bf16 weight bytes = %d, want 10", got)
	}
	if got := cl.Stats(0).SentBytes(KindCtl); got != 20 {
		t.Errorf("f32 ctl bytes = %d, want 20", got)
	}
}

func TestBF16CodecTCPRoundTrip(t *testing.T) {
	// The TCP frame codec: bf16 payloads travel at 2 bytes/elem, survive
	// CRC validation, and decode to the rounded values the inproc fabric
	// emulates.
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := TCPOptions{DialTimeout: 10 * time.Second, Codec: BeltBF16}
	trs := make([]Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = DialTCPOpts(r, addrs, opts)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()

	vals := []float32{1.0, 3.14159265, -2.718281828, 0.1, -0.0001}
	if err := trs[0].Send(1, Tag{Kind: KindWeight, A: 3, B: 4}, vals); err != nil {
		t.Fatal(err)
	}
	if err := trs[0].Send(1, Tag{Kind: KindCtl, A: 3, B: 4}, vals); err != nil {
		t.Fatal(err)
	}
	w, err := trs[1].Recv(0, Tag{Kind: KindWeight, A: 3, B: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		want := tensor.BF16ToF32(tensor.F32ToBF16(v))
		if w[i] != want {
			t.Errorf("weight[%d] = %v, want bf16-rounded %v", i, w[i], want)
		}
	}
	c, err := trs[1].Recv(0, Tag{Kind: KindCtl, A: 3, B: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if c[i] != v {
			t.Errorf("ctl[%d] = %v, want exact %v", i, c[i], v)
		}
	}
	Release(w)
	Release(c)
	if got := trs[0].(Meter).CommStats().SentBytes(KindWeight); got != 10 {
		t.Errorf("bf16 weight bytes = %d, want 10", got)
	}
}

func TestSendOwnedTCPRoundTrip(t *testing.T) {
	// Donation over TCP: the sender-side buffer is consumed by the link's
	// lazy encoder; the receiver sees the values.
	addrs, err := LoopbackAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := TCPOptions{DialTimeout: 10 * time.Second}
	trs := make([]Transport, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			trs[r], errs[r] = DialTCPOpts(r, addrs, opts)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()

	payload := GetBuf(100)
	for i := range payload {
		payload[i] = float32(i) * 0.5
	}
	if err := SendOwned(trs[0], 1, Tag{Kind: KindGrad, A: 8}, payload); err != nil {
		t.Fatal(err)
	}
	// Self-send donation is delivered locally without a wire trip.
	self := GetBuf(10)
	for i := range self {
		self[i] = 7
	}
	if err := SendOwned(trs[0], 0, Tag{Kind: KindGrad, A: 9}, self); err != nil {
		t.Fatal(err)
	}
	got, err := trs[1].Recv(0, Tag{Kind: KindGrad, A: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != float32(i)*0.5 {
			t.Fatalf("element %d = %v, want %v", i, got[i], float32(i)*0.5)
		}
	}
	Release(got)
	loop, err := trs[0].Recv(0, Tag{Kind: KindGrad, A: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range loop {
		if loop[i] != 7 {
			t.Fatalf("self-send element %d = %v, want 7", i, loop[i])
		}
	}
	Release(loop)
}

func TestGroupSendOwnedZeroCopy(t *testing.T) {
	// A group over an in-process parent keeps the donation zero-copy and
	// applies the tag salt (the sibling group must not see the message).
	cl := NewCluster(4)
	defer cl.Close()
	g02, err := NewGroup(cl.Transport(0), []int{0, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	g02r, err := NewGroup(cl.Transport(2), []int{0, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := GetBuf(64)
	for i := range payload {
		payload[i] = 1
	}
	donated := &payload[0]
	if err := g02.SendOwned(1, Tag{Kind: KindWeight, A: 5}, payload); err != nil {
		t.Fatal(err)
	}
	got, err := g02r.Recv(0, Tag{Kind: KindWeight, A: 5})
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != donated {
		t.Error("group donation copied the payload over an in-process parent")
	}
	Release(got)
}
