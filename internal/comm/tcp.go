package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// TCPTransport is a Transport over a full TCP mesh: every pair of ranks
// shares one connection. Frames are length-prefixed; each connection has a
// dedicated writer goroutine draining an unbounded queue, so Send keeps the
// same never-blocks contract as the in-process transport, and a reader
// goroutine dispatching into the tag-matched mailbox.
type TCPTransport struct {
	rank  int
	size  int
	box   *mailbox
	conns []*tcpConn // index by peer rank; conns[rank] == nil
	ln    net.Listener
	stats *Stats

	closeOnce sync.Once
}

// frame header: src(4) kind(4) a(8) b(8) n(8) — all little-endian.
const frameHeaderLen = 4 + 4 + 8 + 8 + 8

// DialTCP builds the mesh endpoint for rank. addrs lists each rank's listen
// address (host:port); rank listens on addrs[rank], accepts connections from
// higher ranks and dials all lower ranks. The call returns once the mesh is
// fully connected. All ranks must call DialTCP concurrently.
func DialTCP(rank int, addrs []string) (*TCPTransport, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: rank %d out of range of %d addrs", rank, size)
	}
	t := &TCPTransport{
		rank:  rank,
		size:  size,
		box:   newMailbox(),
		conns: make([]*tcpConn, size),
		stats: newStats(),
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addrs[rank], err)
	}
	t.ln = ln

	errc := make(chan error, size)
	var wg sync.WaitGroup

	// Accept from all higher ranks.
	nAccept := size - 1 - rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nAccept; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errc <- err
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				errc <- err
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer <= rank || peer >= size {
				errc <- fmt.Errorf("comm: bad handshake rank %d", peer)
				return
			}
			t.attach(peer, conn)
		}
	}()

	// Dial all lower ranks (with retry: peers may not be listening yet).
	for peer := 0; peer < rank; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			var conn net.Conn
			var err error
			deadline := time.Now().Add(10 * time.Second)
			for {
				conn, err = net.Dial("tcp", addrs[peer])
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					errc <- fmt.Errorf("comm: dial rank %d (%s): %w", peer, addrs[peer], err)
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(rank))
			if _, err := conn.Write(hdr[:]); err != nil {
				errc <- err
				return
			}
			t.attach(peer, conn)
		}(peer)
	}

	wg.Wait()
	select {
	case err := <-errc:
		t.Close()
		return nil, err
	default:
	}
	return t, nil
}

// LoopbackAddrs returns n distinct 127.0.0.1 addresses on free ports, for
// tests and single-machine multi-process examples.
func LoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func (t *TCPTransport) attach(peer int, conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &tcpConn{conn: conn}
	c.cond = sync.NewCond(&c.mu)
	t.conns[peer] = c
	go c.writeLoop()
	go t.readLoop(peer, conn)
}

func (t *TCPTransport) readLoop(peer int, conn net.Conn) {
	hdr := make([]byte, frameHeaderLen)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			t.box.close()
			return
		}
		src := int(binary.LittleEndian.Uint32(hdr[0:4]))
		kind := Kind(binary.LittleEndian.Uint32(hdr[4:8]))
		a := int(int64(binary.LittleEndian.Uint64(hdr[8:16])))
		b := int(int64(binary.LittleEndian.Uint64(hdr[16:24])))
		n := int(binary.LittleEndian.Uint64(hdr[24:32]))
		buf := make([]byte, n*4)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.box.close()
			return
		}
		payload := GetBuf(n)
		for i := range payload {
			payload[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		t.box.deliver(msgKey{src: src, tag: Tag{Kind: kind, A: a, B: b}}, payload)
	}
}

// Rank implements Transport.
func (t *TCPTransport) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCPTransport) Size() int { return t.size }

// CommStats implements Meter.
func (t *TCPTransport) CommStats() *Stats { return t.stats }

// Send implements Transport.
func (t *TCPTransport) Send(dst int, tag Tag, data []float32) error {
	t.stats.record(tag.Kind, len(data))
	if dst == t.rank {
		// self-send: deliver locally, same copy semantics
		payload := GetBuf(len(data))
		copy(payload, data)
		t.box.deliver(msgKey{src: t.rank, tag: tag}, payload)
		return nil
	}
	if dst < 0 || dst >= t.size || t.conns[dst] == nil {
		return fmt.Errorf("comm: send to invalid rank %d", dst)
	}
	frame := make([]byte, frameHeaderLen+len(data)*4)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(t.rank))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(tag.Kind))
	binary.LittleEndian.PutUint64(frame[8:16], uint64(int64(tag.A)))
	binary.LittleEndian.PutUint64(frame[16:24], uint64(int64(tag.B)))
	binary.LittleEndian.PutUint64(frame[24:32], uint64(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint32(frame[frameHeaderLen+i*4:], math.Float32bits(v))
	}
	t.conns[dst].enqueue(frame)
	return nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv(src int, tag Tag) ([]float32, error) {
	if src < 0 || src >= t.size {
		return nil, fmt.Errorf("comm: recv from invalid rank %d", src)
	}
	return t.box.take(msgKey{src: src, tag: tag})
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.closeOnce.Do(func() {
		t.box.close()
		if t.ln != nil {
			t.ln.Close()
		}
		for _, c := range t.conns {
			if c != nil {
				c.close()
			}
		}
	})
	return nil
}

// tcpConn wraps one mesh connection with an unbounded outgoing queue.
type tcpConn struct {
	conn   net.Conn
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
}

func (c *tcpConn) enqueue(frame []byte) {
	c.mu.Lock()
	c.queue = append(c.queue, frame)
	c.mu.Unlock()
	c.cond.Signal()
}

func (c *tcpConn) writeLoop() {
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed && len(c.queue) == 0 {
			c.mu.Unlock()
			return
		}
		batch := c.queue
		c.queue = nil
		c.mu.Unlock()
		for _, frame := range batch {
			if _, err := c.conn.Write(frame); err != nil {
				return
			}
		}
	}
}

func (c *tcpConn) close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cond.Signal()
	c.conn.Close()
}
